package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	if _, err := New(4, 3); err == nil {
		t.Error("tiny width accepted")
	}
	if _, err := New(100, 0); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestNeverUnderestimates(t *testing.T) {
	cm, err := New(512, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]uint32{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(2000))
		cm.Add(k, 1)
		truth[k]++
	}
	for k, want := range truth {
		if got := cm.Estimate(k); got < want {
			t.Fatalf("key %d: estimate %d < true %d", k, got, want)
		}
	}
}

func TestHotKeyDetection(t *testing.T) {
	cm, _ := New(4096, 4)
	rng := rand.New(rand.NewSource(2))
	// One key takes 20% of 50k items over a 10k-key tail.
	for i := 0; i < 50000; i++ {
		if rng.Float64() < 0.2 {
			cm.Add(42, 1)
		} else {
			cm.Add(uint64(100+rng.Intn(10000)), 1)
		}
	}
	hotShare := float64(cm.Estimate(42)) / float64(cm.Total())
	if hotShare < 0.18 || hotShare > 0.25 {
		t.Errorf("hot key share = %.3f, want ≈0.2", hotShare)
	}
	coldShare := float64(cm.Estimate(101)) / float64(cm.Total())
	if coldShare > 0.01 {
		t.Errorf("cold key share = %.4f, too high", coldShare)
	}
}

func TestHalveDecays(t *testing.T) {
	cm, _ := New(256, 3)
	cm.Add(7, 1000)
	if cm.Estimate(7) != 1000 || cm.Total() != 1000 {
		t.Fatalf("pre-halve: est=%d total=%d", cm.Estimate(7), cm.Total())
	}
	cm.Halve()
	if got := cm.Estimate(7); got != 500 {
		t.Errorf("post-halve estimate = %d", got)
	}
	if cm.Total() != 500 {
		t.Errorf("post-halve total = %d", cm.Total())
	}
}

func TestReset(t *testing.T) {
	cm, _ := New(256, 3)
	cm.Add(7, 10)
	cm.Reset()
	if cm.Estimate(7) != 0 || cm.Total() != 0 {
		t.Error("Reset did not zero")
	}
}

func TestConservativeUpdateTighterThanNaive(t *testing.T) {
	// Conservative update: adding distinct keys should not inflate each
	// other's estimates much beyond truth even in a small sketch.
	cm, _ := New(64, 4)
	for k := uint64(0); k < 200; k++ {
		cm.Add(k, 1)
	}
	over := 0
	for k := uint64(0); k < 200; k++ {
		if cm.Estimate(k) > 4 {
			over++
		}
	}
	if over > 100 {
		t.Errorf("%d/200 estimates grossly inflated", over)
	}
}

func TestMonotoneEstimateProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		cm, _ := New(128, 3)
		last := map[uint64]uint32{}
		for _, k16 := range keys {
			k := uint64(k16)
			got := cm.Add(k, 1)
			if got <= last[k] { // strictly grows for the added key
				return false
			}
			last[k] = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOverflowClamp(t *testing.T) {
	cm, _ := New(64, 2)
	cm.Add(1, 1<<31)
	cm.Add(1, 1<<31)
	cm.Add(1, 1<<31) // would overflow uint32
	if got := cm.Estimate(1); got != 1<<32-1 {
		t.Errorf("estimate = %d, want clamped max", got)
	}
}

func BenchmarkAdd(b *testing.B) {
	cm, _ := New(4096, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm.Add(uint64(i&1023), 1)
	}
}
