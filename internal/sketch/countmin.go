// Package sketch provides the count-min sketch the frequency-aware
// (ContRand-style) routing strategy uses to detect hot join keys in
// bounded memory: a width×depth counter matrix with conservative
// update and periodic halving so estimates track the recent stream
// rather than all history.
package sketch

import (
	"fmt"
	"math"
)

// CountMin is a count-min sketch over uint64-hashed keys. It is not
// safe for concurrent use; callers serialize access.
type CountMin struct {
	width  int
	depth  int
	counts [][]uint32
	seeds  []uint64
	total  uint64 // items added since the last halving window reset
}

// New creates a sketch. Width should be a few thousand for percent-level
// hot-key thresholds; depth 3-5 bounds the overestimate probability.
func New(width, depth int) (*CountMin, error) {
	if width < 8 || depth < 1 {
		return nil, fmt.Errorf("sketch: width %d / depth %d too small", width, depth)
	}
	cm := &CountMin{
		width:  width,
		depth:  depth,
		counts: make([][]uint32, depth),
		seeds:  make([]uint64, depth),
	}
	seed := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < depth; i++ {
		cm.counts[i] = make([]uint32, width)
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		cm.seeds[i] = seed | 1 // odd, for multiply-shift hashing
	}
	return cm, nil
}

func (cm *CountMin) cell(row int, key uint64) int {
	h := key * cm.seeds[row]
	h ^= h >> 33
	return int(h % uint64(cm.width))
}

// Add increments the key's count by n using conservative update (only
// the minimal cells grow), and returns the new estimate.
func (cm *CountMin) Add(key uint64, n uint32) uint32 {
	est := cm.Estimate(key)
	target := est + n
	if target < est { // overflow clamp
		target = math.MaxUint32
	}
	for row := 0; row < cm.depth; row++ {
		c := &cm.counts[row][cm.cell(row, key)]
		if *c < target {
			*c = target
		}
	}
	cm.total += uint64(n)
	return target
}

// Estimate returns the (over-)estimate of the key's count.
func (cm *CountMin) Estimate(key uint64) uint32 {
	min := uint32(math.MaxUint32)
	for row := 0; row < cm.depth; row++ {
		if c := cm.counts[row][cm.cell(row, key)]; c < min {
			min = c
		}
	}
	return min
}

// Total returns the number of items added since the last Halve/Reset
// pair of halvings (each Halve also halves the total, keeping
// Estimate/Total a meaningful recent-frequency ratio).
func (cm *CountMin) Total() uint64 { return cm.total }

// Halve decays every counter (and the running total) by half,
// exponentially forgetting old traffic.
func (cm *CountMin) Halve() {
	for _, row := range cm.counts {
		for i := range row {
			row[i] >>= 1
		}
	}
	cm.total >>= 1
}

// Reset zeroes the sketch.
func (cm *CountMin) Reset() {
	for _, row := range cm.counts {
		for i := range row {
			row[i] = 0
		}
	}
	cm.total = 0
}
