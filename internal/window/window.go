// Package window implements time-based sliding window semantics
// (Definition 4 of the source text) and the safe-expiry rule of
// Theorem 1: a stored tuple r of relation R may be discarded once an
// incoming opposite-relation tuple s satisfies s.ts - r.ts > W.
//
// A window may also be unbounded (the full-history join mode §2.2
// attributes to some systems, which BiStream supports alongside
// windowed joins): every pair is in-window and nothing ever expires.
package window

import (
	"fmt"
	"time"
)

// Sliding is a time-based sliding window of fixed span. Timestamps are
// Unix milliseconds in the engine's (virtual) time domain. A
// non-positive span means unbounded (full history); construct one with
// Unbounded to make the intent explicit.
type Sliding struct {
	Span time.Duration
}

// NewSliding returns a window of the given span; span must be positive.
func NewSliding(span time.Duration) (Sliding, error) {
	if span <= 0 {
		return Sliding{}, fmt.Errorf("window: span must be positive, got %v (use Unbounded for full history)", span)
	}
	return Sliding{Span: span}, nil
}

// Unbounded returns the full-history window: joins match the entire
// accumulated stream and no state is ever discarded.
func Unbounded() Sliding { return Sliding{Span: 0} }

// IsUnbounded reports whether the window is the full-history window.
func (w Sliding) IsUnbounded() bool { return w.Span <= 0 }

// SpanMillis returns the window span in milliseconds.
func (w Sliding) SpanMillis() int64 { return w.Span.Milliseconds() }

// Contains reports whether a stored tuple with timestamp storedTS is
// still inside the window relative to the reference timestamp refTS
// (the latest tuple seen). Pairs match when they are within the span in
// either direction, covering both arrival orders of Figure 8. An
// unbounded window contains everything.
func (w Sliding) Contains(storedTS, refTS int64) bool {
	if w.IsUnbounded() {
		return true
	}
	d := refTS - storedTS
	if d < 0 {
		d = -d
	}
	return d <= w.SpanMillis()
}

// Expired applies Theorem 1: storedTS may be discarded once an
// opposite-relation tuple with timestamp oppTS satisfies
// oppTS - storedTS > span. Tuples from the future (storedTS > oppTS)
// are never expired, and nothing expires from an unbounded window.
func (w Sliding) Expired(storedTS, oppTS int64) bool {
	if w.IsUnbounded() {
		return false
	}
	return oppTS-storedTS > w.SpanMillis()
}

// Cutoff returns the largest timestamp that is expired relative to
// oppTS: every stored tuple with ts <= Cutoff(oppTS) is safe to
// discard. For an unbounded window it returns math.MinInt64 (nothing).
func (w Sliding) Cutoff(oppTS int64) int64 {
	if w.IsUnbounded() {
		return -1 << 63
	}
	return oppTS - w.SpanMillis() - 1
}

// String renders the window ("10m sliding window").
func (w Sliding) String() string {
	if w.IsUnbounded() {
		return "full-history (unbounded) window"
	}
	return fmt.Sprintf("%v sliding window", w.Span)
}
