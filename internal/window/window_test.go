package window

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNewSliding(t *testing.T) {
	w, err := NewSliding(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if w.SpanMillis() != 600000 {
		t.Errorf("SpanMillis = %d", w.SpanMillis())
	}
	if _, err := NewSliding(0); err == nil {
		t.Error("zero span accepted")
	}
	if _, err := NewSliding(-time.Second); err == nil {
		t.Error("negative span accepted")
	}
	if !strings.Contains(w.String(), "10m") {
		t.Errorf("String = %q", w.String())
	}
}

func TestContains(t *testing.T) {
	w := Sliding{Span: time.Second} // 1000 ms
	cases := []struct {
		stored, ref int64
		want        bool
	}{
		{0, 0, true},
		{0, 1000, true},
		{0, 1001, false},
		{1000, 0, true}, // future tuples count as in-window
		{1001, 0, false},
	}
	for _, c := range cases {
		if got := w.Contains(c.stored, c.ref); got != c.want {
			t.Errorf("Contains(%d, %d) = %v, want %v", c.stored, c.ref, got, c.want)
		}
	}
}

func TestExpired(t *testing.T) {
	w := Sliding{Span: time.Second}
	if w.Expired(0, 1000) {
		t.Error("exactly at window edge should not be expired")
	}
	if !w.Expired(0, 1001) {
		t.Error("past window edge should be expired")
	}
	if w.Expired(5000, 1000) {
		t.Error("future tuple should never be expired")
	}
}

// Theorem 1 safety: a tuple that is expired can never again satisfy the
// window constraint against the current or any later opposite tuple.
func TestExpiredImpliesNotContained(t *testing.T) {
	w := Sliding{Span: 30 * time.Second}
	f := func(stored, opp int32, later uint16) bool {
		s, o := int64(stored), int64(opp)
		if !w.Expired(s, o) {
			return true
		}
		return !w.Contains(s, o+int64(later))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCutoffConsistentWithExpired(t *testing.T) {
	w := Sliding{Span: time.Minute}
	f := func(stored, opp int32) bool {
		s, o := int64(stored), int64(opp)
		return w.Expired(s, o) == (s <= w.Cutoff(o))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnboundedWindow(t *testing.T) {
	w := Unbounded()
	if !w.IsUnbounded() {
		t.Fatal("Unbounded() not unbounded")
	}
	if (Sliding{Span: time.Second}).IsUnbounded() {
		t.Error("bounded window claims unbounded")
	}
	// Everything is contained, nothing expires, regardless of distance.
	if !w.Contains(0, 1<<60) || !w.Contains(1<<60, 0) {
		t.Error("unbounded window should contain everything")
	}
	if w.Expired(0, 1<<60) {
		t.Error("nothing expires from an unbounded window")
	}
	if w.Cutoff(1<<60) != -1<<63 {
		t.Errorf("Cutoff = %d", w.Cutoff(1<<60))
	}
	if !strings.Contains(w.String(), "full-history") {
		t.Errorf("String = %q", w.String())
	}
	if _, err := NewSliding(0); err == nil {
		t.Error("NewSliding(0) should refuse; Unbounded is explicit")
	}
}
