package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/checkpoint"
	"bistream/internal/faults"
	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/topo"
	"bistream/internal/tuple"
)

// TestColdCrashWithoutCheckpointLosesResults is the companion
// demonstration the checkpoint subsystem exists to refute: without a
// checkpoint provider, a cold crash (fresh core, nothing recovered)
// after the stored tuples were acknowledged loses the window outright —
// S tuples arriving afterwards probe an empty index and their joins are
// silently missing.
func TestColdCrashWithoutCheckpointLosesResults(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
	}, col)

	var rs, ss []*tuple.Tuple
	for i := 0; i < 40; i++ {
		rs = append(rs, tuple.New(tuple.R, uint64(i+1), int64(i)*5, tuple.Int(int64(i%8))))
	}
	ingestAll(t, e, rs)
	// Quiesce: every R tuple is stored AND acknowledged — the broker
	// owes the joiner nothing, so nothing will be redelivered.
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.ColdCrashJoiner(tuple.R, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		ss = append(ss, tuple.New(tuple.S, uint64(1000+i), int64(i)*5+1, tuple.Int(int64(i%8))))
	}
	ingestAll(t, e, ss)
	if err := e.Settle(200*time.Millisecond, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	want := refJoin(rs, ss, pred, 60_000)
	got := col.snapshot()
	if len(want) == 0 {
		t.Fatal("reference join is empty; the demonstration proves nothing")
	}
	if len(got) != 0 {
		t.Fatalf("cold crash without checkpointing still produced %d of %d results; "+
			"expected total loss of the acked window", len(got), len(want))
	}
}

// TestColdCrashWithCheckpointRecoversWindow is the mirror image: same
// schedule, but the engine checkpoints to an in-memory provider. The
// cold-crashed member discards its core, recovers the window from the
// checkpoint store, and the post-crash S tuples find every stored R
// tuple — the result multiset matches the reference join exactly.
func TestColdCrashWithCheckpointRecoversWindow(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate:          pred,
		Window:             time.Minute,
		Shards:             3,
		Checkpoint:         checkpoint.NewMemProvider(),
		CheckpointInterval: 20 * time.Millisecond,
	}, col)

	var rs, ss []*tuple.Tuple
	for i := 0; i < 40; i++ {
		rs = append(rs, tuple.New(tuple.R, uint64(i+1), int64(i)*5, tuple.Int(int64(i%8))))
	}
	ingestAll(t, e, rs)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.ColdCrashJoiner(tuple.R, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		ss = append(ss, tuple.New(tuple.S, uint64(1000+i), int64(i)*5+1, tuple.Int(int64(i%8))))
	}
	ingestAll(t, e, ss)
	if err := e.Settle(200*time.Millisecond, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "cold-crash-recovered")

	recoveries, _ := e.Metrics().Value("joiner.R.0.checkpoint_recoveries")
	if recoveries == 0 {
		t.Error("cold restart did not recover from the checkpoint store")
	}
}

// TestEngineExactlyOnceUnderColdCrashesAndTornCheckpoints is the
// tentpole chaos test: the broker fabric drops, duplicates, delays and
// reorders (entry only), the checkpoint stores tear and fail writes
// mid-checkpoint (each tear is a simulated power loss that persists a
// truncated blob), the network partitions, and joiners on both sides
// are cold-killed mid-join — core discarded, state recovered only from
// the surviving checkpoint epochs plus broker redelivery of unacked
// deliveries. The join's result multiset must still match the
// reference exactly: zero lost, zero duplicated.
func TestEngineExactlyOnceUnderColdCrashesAndTornCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			runColdCrashChaos(t, seed)
		})
	}
}

func runColdCrashChaos(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reg := metrics.NewRegistry()
	inner := broker.New(nil)
	defer inner.Close()
	f := faults.Wrap(inner, faults.Config{
		Seed:    seed,
		Metrics: reg,
		Default: faults.Rule{Drop: 0.03, Dup: 0.03, Delay: 0.05, MaxDelay: time.Millisecond},
		PerExchange: map[string]faults.Rule{
			topo.EntryExchange: {Drop: 0.03, Dup: 0.03, Reorder: 0.05},
		},
	})
	stores := &faults.StoreProvider{
		Inner:   checkpoint.NewMemProvider(),
		Seed:    seed,
		Rule:    faults.StoreRule{Tear: 0.08, Fail: 0.04},
		Metrics: reg,
	}

	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate:          pred,
		Window:             time.Minute,
		Routers:            2,
		Shards:             3,
		RJoiners:           2,
		SJoiners:           2,
		Broker:             f,
		Metrics:            reg,
		Checkpoint:         stores,
		CheckpointInterval: 25 * time.Millisecond,
	}, col)

	deadline := time.Now().Add(60 * time.Second)
	var rs, ss []*tuple.Tuple
	seq := uint64(1)
	ingestBatch := func(n int) {
		for i := 0; i < n; i++ {
			ts := int64(len(rs)+len(ss)) * 5
			r := tuple.New(tuple.R, seq, ts, tuple.Int(rng.Int63n(20)))
			seq++
			s := tuple.New(tuple.S, seq, ts, tuple.Int(rng.Int63n(20)))
			seq++
			rs, ss = append(rs, r), append(ss, s)
			ingestRetry(t, e, r, deadline)
			ingestRetry(t, e, s, deadline)
		}
	}

	for round := 0; round < 6; round++ {
		ingestBatch(30)
		// Hold the round open for a few checkpoint intervals: ingest alone
		// takes single-digit milliseconds, and the point of this run is
		// that checkpoints commit (and tear, and fail) WHILE faults are
		// active, not in the quiet settle afterwards.
		time.Sleep(60 * time.Millisecond)
		switch round {
		case 1:
			if err := e.ColdCrashJoiner(tuple.R, rng.Intn(2), 20*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		case 2:
			f.Cut(50 * time.Millisecond)
		case 3:
			if err := e.ColdCrashJoiner(tuple.S, rng.Intn(2), 20*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		case 4:
			// Cold-kill during a partition: the replacement's recovery
			// reads the store fine (local disk), but its restart races
			// the cut — the supervised retry policy must carry it through.
			f.Cut(50 * time.Millisecond)
			if err := e.ColdCrashJoiner(tuple.R, rng.Intn(2), 30*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
	}

	f.Disable()
	if err := f.Settle(); err != nil {
		t.Fatal(err)
	}
	stores.Disable()
	if err := e.Settle(300*time.Millisecond, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "cold-crash-chaos")

	counter := func(name string) int64 {
		v, _ := reg.Value(name)
		return int64(v)
	}
	for _, rel := range []tuple.Relation{tuple.R, tuple.S} {
		for id := 0; id < 2; id++ {
			prefix := "joiner." + rel.String() + "." + string(rune('0'+id)) + "."
			t.Logf("%s: saves=%d save_errors=%d segs_written=%d recoveries=%d",
				prefix, counter(prefix+"checkpoint_saves"), counter(prefix+"checkpoint_save_errors"),
				counter(prefix+"checkpoint_segments_written"), counter(prefix+"checkpoint_recoveries"))
		}
	}
	t.Logf("store_tear=%d store_fail=%d", counter("faults.store_tear"), counter("faults.store_fail"))
	if counter("faults.drop") == 0 || counter("faults.dup") == 0 {
		t.Errorf("fault injection did not fire: drop=%d dup=%d",
			counter("faults.drop"), counter("faults.dup"))
	}
	if counter("faults.store_tear") == 0 {
		t.Error("no checkpoint write was torn — torn-write recovery untested by this run")
	}
	var recoveries, deduped int64
	for _, rel := range []tuple.Relation{tuple.R, tuple.S} {
		for id := 0; id < 2; id++ {
			prefix := "joiner." + rel.String() + "." + string(rune('0'+id)) + "."
			recoveries += counter(prefix + "checkpoint_recoveries")
		}
		for _, st := range e.JoinerStats(rel) {
			deduped += st.Deduped
		}
	}
	if recoveries == 0 {
		t.Error("no cold-crashed member recovered from its checkpoint store")
	}
	if deduped == 0 {
		t.Error("no redelivered tuple was suppressed — dedup untested by this run")
	}
}

// TestSupervisorReplacesStuckJoiner wedges a member (stopped service,
// queues accumulating) and verifies the supervision loop notices the
// stalled received counter against a growing backlog, cold-replaces the
// member from its checkpoint store, and the join completes
// exactly-once.
func TestSupervisorReplacesStuckJoiner(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	reg := metrics.NewRegistry()
	e := startEngine(t, Config{
		Predicate:          pred,
		Window:             time.Minute,
		Metrics:            reg,
		Checkpoint:         checkpoint.NewMemProvider(),
		CheckpointInterval: 20 * time.Millisecond,
	}, col)

	rs, ss, all := makeWorkload(80, 8, 5, 3)
	half := len(all) / 2
	ingestAll(t, e, all[:half])
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Wedge the R member: stop its service outright. Its durable queues
	// stay bound and keep accumulating; its received counter freezes.
	e.mu.Lock()
	stuck := e.rJoiners[0]
	e.mu.Unlock()
	stuck.Stop()
	ingestAll(t, e, all[half:])

	var replaced atomic.Int32
	sup := e.Supervise(SupervisorConfig{
		Interval: 50 * time.Millisecond,
		Stall:    250 * time.Millisecond,
		OnReplace: func(rel tuple.Relation, id int32) {
			if rel == tuple.R && id == stuck.ID() {
				replaced.Add(1)
			}
		},
	})
	defer sup.Stop()

	waitUntil := time.Now().Add(15 * time.Second)
	for replaced.Load() == 0 && time.Now().Before(waitUntil) {
		time.Sleep(20 * time.Millisecond)
	}
	if replaced.Load() == 0 {
		t.Fatal("supervisor did not replace the wedged member")
	}
	if err := e.Settle(300*time.Millisecond, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "supervisor-replace")
	if v, _ := reg.Value("engine.supervisor_replacements"); v == 0 {
		t.Error("supervisor_replacements counter did not move")
	}
}
