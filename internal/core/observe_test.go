package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bistream/internal/predicate"
	"bistream/internal/router"
	"bistream/internal/tuple"
)

func TestIngestContextCancelled(t *testing.T) {
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: predicate.NewEqui(0, 0),
		Window:    time.Minute,
	}, col)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.IngestContext(ctx, tuple.New(tuple.R, 0, 1, tuple.Int(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := e.Snapshot().TuplesIn; got != 0 {
		t.Errorf("TuplesIn = %d after cancelled ingest, want 0", got)
	}
	if err := e.IngestContext(context.Background(), tuple.New(tuple.R, 0, 1, tuple.Int(1))); err != nil {
		t.Fatalf("live-context ingest: %v", err)
	}
}

func TestIngestContextCancelUnderBackpressure(t *testing.T) {
	col := newCollector()
	e := startEngine(t, Config{
		Predicate:  predicate.NewEqui(0, 0),
		Window:     time.Minute,
		EntryBound: 1,
		Routers:    1,
	}, col)
	// Stop the routers so nothing drains the entry queue, then fill it.
	e.mu.Lock()
	routers := append([]*router.Service(nil), e.routers...)
	e.mu.Unlock()
	for _, r := range routers {
		r.Stop()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		err := e.IngestContext(ctx, tuple.New(tuple.R, 0, 1, tuple.Int(1)))
		cancel()
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			return // blocked ingest was cancelled: the point of the test
		}
		if time.Now().After(deadline) {
			t.Fatal("entry bound never backpressured the publisher")
		}
	}
}

// TestSnapshotMatchesMetrics ingests a known workload and checks the
// structured Snapshot, the legacy Stats shim, and the /metrics
// exposition agree on the same numbers.
func TestSnapshotMatchesMetrics(t *testing.T) {
	col := newCollector()
	e := startEngine(t, Config{
		Predicate:   predicate.NewEqui(0, 0),
		Window:      time.Minute,
		Routers:     2,
		RJoiners:    2,
		SJoiners:    2,
		MetricsAddr: "127.0.0.1:0",
		TraceSample: 1, // stamp every tuple so stage series appear
	}, col)
	const pairs = 50
	for i := 0; i < pairs; i++ {
		ts := int64(1000 + i)
		if err := e.Ingest(tuple.New(tuple.R, 0, ts, tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
		if err := e.Ingest(tuple.New(tuple.S, 0, ts, tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.SchemaVersion != SnapshotSchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", snap.SchemaVersion, SnapshotSchemaVersion)
	}
	if snap.TuplesIn != 2*pairs {
		t.Errorf("TuplesIn = %d, want %d", snap.TuplesIn, 2*pairs)
	}
	if snap.Results != int64(pairs) {
		t.Errorf("Results = %d, want %d", snap.Results, pairs)
	}
	if len(snap.Routers) != 2 || len(snap.RJoiners) != 2 || len(snap.SJoiners) != 2 {
		t.Fatalf("snapshot shape: %d routers, %d+%d joiners",
			len(snap.Routers), len(snap.RJoiners), len(snap.SJoiners))
	}

	// The flat shim must agree with the structured view.
	st := e.Stats()
	if st.TuplesIn != snap.TuplesIn || st.Results != snap.Results {
		t.Errorf("Stats shim (%d,%d) != Snapshot (%d,%d)",
			st.TuplesIn, st.Results, snap.TuplesIn, snap.Results)
	}
	if len(st.RJoiners) != len(snap.RJoiners) {
		t.Errorf("Stats shim has %d R members, snapshot %d", len(st.RJoiners), len(snap.RJoiners))
	}

	// And so must the registry served over HTTP.
	addr := e.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty with MetricsAddr configured")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		fmt.Sprintf("engine_tuples_in_total %d", snap.TuplesIn),
		fmt.Sprintf("engine_results_total %d", snap.Results),
		"router_0_routed_total",
		"joiner_R_0_stored_total",
		"broker_queue_depth",
		"stage_e2e_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Per-member counters must match the snapshot's member views.
	reg := e.Metrics()
	for _, m := range snap.RJoiners {
		name := fmt.Sprintf("joiner.R.%d.stored", m.ID)
		if v, ok := reg.Value(name); !ok || int64(v) != m.Stored {
			t.Errorf("registry %s = %v,%v; snapshot says %d", name, v, ok, m.Stored)
		}
	}
	routedTotal := int64(0)
	for _, r := range snap.Routers {
		routedTotal += r.TuplesRouted
	}
	if routedTotal != snap.TuplesIn {
		t.Errorf("routers routed %d of %d ingested", routedTotal, snap.TuplesIn)
	}
}

// TestScaleUnregistersMetrics checks retired members disappear from the
// registry once their drain completes.
func TestScaleUnregistersMetrics(t *testing.T) {
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: predicate.NewEqui(0, 0),
		Window:    50 * time.Millisecond,
		RJoiners:  2,
	}, col)
	reg := e.Metrics()
	if _, ok := reg.Value("joiner.R.1.stored"); !ok {
		t.Fatal("member 1 instruments missing before scale-in")
	}
	if err := e.ScaleJoiners(tuple.R, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		e.Reap()
		if _, ok := reg.Value("joiner.R.1.stored"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retired member's instruments still registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := reg.Value("joiner.R.0.stored"); !ok {
		t.Error("surviving member's instruments vanished")
	}

	if err := e.ScaleRouters(2); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Value("router.1.routed"); !ok {
		t.Fatal("new router's instruments missing")
	}
	if err := e.ScaleRouters(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Value("router.1.routed"); ok {
		t.Error("retired router's instruments still registered")
	}
}
