// Package core wires the join-biclique engine together: router
// services, the two joiner groups forming the biclique's vertex sets, a
// broker-backed fabric connecting them, and elastic scale in/out of both
// tiers without data migration. It is the system the source text calls
// elastic-biclique and the SIGMOD paper calls BiStream.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"bistream/internal/broker"
	"bistream/internal/checkpoint"
	"bistream/internal/dedup"
	"bistream/internal/index"
	"bistream/internal/joiner"
	"bistream/internal/metrics"
	"bistream/internal/obs"
	"bistream/internal/predicate"
	"bistream/internal/router"
	"bistream/internal/topo"
	"bistream/internal/tuple"
	"bistream/internal/vclock"
	"bistream/internal/window"
)

// Config configures an Engine.
type Config struct {
	// Predicate is the join predicate (required).
	Predicate predicate.Predicate
	// Window is the time-based sliding window span. Required unless
	// FullHistory is set.
	Window time.Duration
	// FullHistory runs the join over the entire accumulated streams
	// instead of a window: nothing ever expires, joiner state grows
	// with the stream, and joiner groups can scale out but not in
	// (scale-in without migration relies on window drain).
	FullHistory bool
	// ArchivePeriod is the chained index's sub-index span P; defaults
	// to Window/16.
	ArchivePeriod time.Duration
	// OrderedIndex selects the joiners' ordered sub-index for non-equi
	// predicates: index.SkipListKind (default) or index.BTreeKind.
	OrderedIndex index.OrderedKind
	// Shards is the number of per-core store shards each joiner
	// partitions its window into; batches of deliveries fan out across
	// the shards in parallel. Zero defaults to GOMAXPROCS; values are
	// clamped to [1, index.MaxShards].
	Shards int
	// Routers is the number of router instances (default 1).
	Routers int
	// RJoiners and SJoiners size the two biclique vertex sets
	// (default 1 each).
	RJoiners, SJoiners int
	// RSubgroups/SSubgroups set the routing strategy per group: 1 =
	// random (broadcast) routing, equal to the group size = pure hash
	// partitioning, in between = the subgroup hybrid. Zero selects
	// automatically: hash for partitionable predicates, random
	// otherwise.
	RSubgroups, SSubgroups int
	// PunctuationInterval paces the ordering protocol's signals
	// (default 20ms, wall clock).
	PunctuationInterval time.Duration
	// Clock supplies the engine's notion of time for statistics and
	// layout drain tracking (default: wall clock). Tuple timestamps are
	// set by sources, not the engine.
	Clock vclock.Clock
	// Broker connects the services. Nil starts a private in-process
	// broker; a wire.Client here runs the engine against a remote
	// brokerd.
	Broker broker.Client
	// OnResult, when set, receives every join result synchronously from
	// the sink and disables the Results channel.
	OnResult func(tuple.JoinResult)
	// ResultBuffer sizes the Results channel (default 4096). When the
	// buffer is full the sink blocks, backpressuring joiners.
	ResultBuffer int
	// Unordered disables the tuple ordering protocol (for the Figure 8
	// anomaly experiment only).
	Unordered bool
	// ContRand enables frequency-aware routing for partitionable
	// predicates: keys whose recent traffic share exceeds HotFraction
	// scatter their stores across the group (restoring balance under
	// skew) while their probes broadcast (preserving correctness);
	// cold keys keep one-copy hash routing.
	ContRand bool
	// HotFraction is the promotion threshold (default 0.01).
	HotFraction float64
	// AdaptiveRouting closes the ContRand loop: an adaptation
	// controller watches the tracker's promotions and live-migrates
	// each newly hot key's stored partition from its hash owners to the
	// scattered owners (metrics under router_adapt_*). Implies
	// ContRand; incompatible with Unordered, because the key migration
	// leans on the ordering protocol's drain barriers.
	AdaptiveRouting bool
	// Metrics is the registry every tier registers its instruments in
	// (router.<id>.*, joiner.<rel>.<id>.*, engine.*, broker.* when the
	// engine owns its broker, stage.* trace histograms). Nil creates a
	// fresh registry, exposed via Engine.Metrics().
	Metrics *metrics.Registry
	// MetricsAddr, when non-empty, serves the observability endpoints
	// (/metrics Prometheus text, /debug/vars JSON, /debug/pprof) for
	// the engine's registry over HTTP. ":0" picks a free port;
	// Engine.MetricsAddr reports the bound address.
	MetricsAddr string
	// TraceSample samples one in N ingested tuples for per-stage
	// latency tracing (stage.route … stage.e2e histograms). Zero uses
	// metrics.DefaultTraceSample; negative disables tracing.
	TraceSample int
	// EntryBound caps the entry queue's backlog (broker MaxLen):
	// Ingest blocks — or IngestContext cancels — once that many raw
	// tuples are unrouted. Zero leaves the entry queue unbounded.
	EntryBound int
	// Checkpoint, when non-nil, enables checkpointed joiners: each
	// member checkpoints its window, ordering and dedup state to its own
	// store from this provider, defers broker acks to checkpoint commits,
	// and recovers that state on ColdCrashJoiner. Nil runs the engine
	// with in-memory joiner state only (warm restarts keep state, cold
	// restarts lose the window).
	Checkpoint checkpoint.Provider
	// CheckpointInterval paces each joiner's checkpoint rounds; zero
	// uses the joiner service default. Shorter intervals tighten the
	// redelivery burst after a cold crash at the cost of more store
	// writes (only the live segment is rewritten per round).
	CheckpointInterval time.Duration
	// Restart governs supervised service restarts (CrashJoiner,
	// ColdCrashJoiner, CrashRouter, the Supervisor). Zero-value fields
	// take the DefaultRetryPolicy defaults.
	Restart RetryPolicy
	// MigrateOnShrink makes windowed joins migrate a removed member's
	// state to the survivors instead of sealing it and waiting a full
	// window for drain. Full-history joins always migrate on scale-in
	// (drain never happens); both paths require the ordering protocol.
	MigrateOnShrink bool
	// MigrationTimeout bounds one donor's migration (drain, transfer,
	// import, cut-over); zero uses migrate.DefaultTimeout.
	MigrationTimeout time.Duration
}

func (c *Config) applyDefaults() error {
	if c.Predicate == nil {
		return errors.New("core: Predicate is required")
	}
	if c.FullHistory {
		if c.Window != 0 {
			return errors.New("core: FullHistory and Window are mutually exclusive")
		}
	} else if c.Window <= 0 {
		return errors.New("core: Window must be positive (or set FullHistory)")
	}
	if c.Routers <= 0 {
		c.Routers = 1
	}
	if c.RJoiners <= 0 {
		c.RJoiners = 1
	}
	if c.SJoiners <= 0 {
		c.SJoiners = 1
	}
	if c.RSubgroups == 0 {
		if c.Predicate.Partitionable() {
			c.RSubgroups = c.RJoiners
		} else {
			c.RSubgroups = 1
		}
	}
	if c.SSubgroups == 0 {
		if c.Predicate.Partitionable() {
			c.SSubgroups = c.SJoiners
		} else {
			c.SSubgroups = 1
		}
	}
	if c.PunctuationInterval <= 0 {
		c.PunctuationInterval = router.DefaultPunctuationInterval
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
	if c.ResultBuffer <= 0 {
		c.ResultBuffer = 4096
	}
	return nil
}

// Stats aggregates the engine's counters.
type Stats struct {
	Routers      []router.Stats
	RJoiners     []joiner.Stats
	SJoiners     []joiner.Stats
	Results      int64
	TuplesIn     int64
	WindowBytes  int64 // total window memory across joiners
	WindowTuples int
}

// sealedJoiner is a scaled-in member draining its window before
// retirement.
type sealedJoiner struct {
	svc      *joiner.Service
	deadline time.Time
}

// layoutChange is one entry of a relation's layout history. New routers
// replay the history so their generation tables match the veterans' —
// a router that only knew the current layout would fan join copies out
// to the current members only and miss the draining ones, losing
// results.
type layoutChange struct {
	members   []int32
	subgroups int
	atTS      int64
}

// Engine is the running join-biclique system.
type Engine struct {
	cfg     Config
	win     window.Sliding
	ownB    *broker.Broker // non-nil when we own the in-process broker
	client  broker.Client
	results chan tuple.JoinResult
	hot     *router.HotTracker // shared ContRand tracker, nil if disabled
	adapter *router.Adapter    // hot-key migration controller, nil if disabled
	reg     *metrics.Registry
	tracer  *metrics.Tracer // nil when tracing is disabled

	// tuplesIn and resultsN are registry counters (atomic), so Stats
	// and the exporter read them without taking e.mu.
	tuplesIn *metrics.Counter // engine.tuples_in
	resultsN *metrics.Counter // engine.results

	// resultSeen dedups result pairs at the sink: the joiners' retry
	// buffer and the broker's at-least-once redelivery can both deliver
	// a result body twice, and the (left seq, right seq) pair identifies
	// it exactly. Touched only by the sink goroutine (dedup.Set is not
	// concurrency-safe). Nil in Unordered mode, where the Figure 8
	// experiment measures duplicate anomalies on purpose.
	resultSeen  *dedup.Set
	resultDedup *metrics.Counter // engine.result_dedup

	migrations     *metrics.Counter // engine.migrations
	migratedTuples *metrics.Counter // engine.migrated_tuples

	mu       sync.Mutex
	routers  []*router.Service
	rJoiners []*joiner.Service
	sJoiners []*joiner.Service
	sealed   []sealedJoiner
	// migrating holds scale-in donors whose window is being moved to the
	// surviving members. They are out of the layout but keep consuming
	// and emitting until the migration's cut-over barrier passes, so
	// they appear in allJoinersLocked. migLock serializes migrations end
	// to end without holding e.mu across the broker transfer.
	migrating []*migratingDonor
	migLock   sync.Mutex
	// deadJoiners records members removed by migration, per relation.
	// Routers filter them from old-generation join fan-out (their queues
	// are deleted); new routers replay the list after the layout history.
	deadJoiners [2][]int32
	migAttempt  uint64 // transfer attempt counter, see topo.MigrateKey
	nextRtr     int32
	nextJid     [2]int32
	seq         uint64
	obsSrv      *obs.Server
	sinkCons    broker.Consumer
	sinkDone    chan struct{}
	sinkStop    chan struct{}
	started     bool
	stopped     bool

	// layoutHist records every layout change per relation so new
	// routers can replay it (see layoutChange).
	layoutHist [2][]layoutChange

	// Counter residue of retired services, so the count-based Quiesce
	// accounting stays balanced after scale-in.
	retiredRouted   int64 // TuplesRouted of removed routers
	retiredFanout   int64 // JoinFanout of removed routers
	retiredReceived int64 // Received of retired joiners
	retiredResults  int64 // Results of retired joiners
}

// New validates the configuration and assembles an engine. Call Start
// to begin processing.
func New(cfg Config) (*Engine, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if !cfg.Predicate.Partitionable() && (cfg.RSubgroups != 1 || cfg.SSubgroups != 1) {
		return nil, fmt.Errorf("core: predicate %v requires subgroups=1 (random routing)", cfg.Predicate)
	}
	if cfg.RSubgroups < 1 || cfg.RSubgroups > cfg.RJoiners {
		return nil, fmt.Errorf("core: RSubgroups %d out of range [1,%d]", cfg.RSubgroups, cfg.RJoiners)
	}
	if cfg.SSubgroups < 1 || cfg.SSubgroups > cfg.SJoiners {
		return nil, fmt.Errorf("core: SSubgroups %d out of range [1,%d]", cfg.SSubgroups, cfg.SJoiners)
	}
	if cfg.AdaptiveRouting {
		if cfg.Unordered {
			return nil, errors.New("core: AdaptiveRouting needs the ordering protocol's drain barrier (Unordered is set)")
		}
		cfg.ContRand = true
	}
	e := &Engine{
		cfg: cfg,
		win: window.Sliding{Span: cfg.Window},
	}
	if cfg.ContRand {
		if !cfg.Predicate.Partitionable() {
			return nil, fmt.Errorf("core: ContRand requires a partitionable predicate")
		}
		hot, err := router.NewHotTracker(router.HotConfig{
			HotFraction: cfg.HotFraction,
			Window:      e.win,
		})
		if err != nil {
			return nil, err
		}
		e.hot = hot
	}
	if cfg.Broker != nil {
		e.client = cfg.Broker
	} else {
		e.ownB = broker.New(cfg.Clock)
		e.client = e.ownB
	}
	if cfg.OnResult == nil {
		e.results = make(chan tuple.JoinResult, cfg.ResultBuffer)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
		e.cfg.Metrics = cfg.Metrics
	}
	e.reg = cfg.Metrics
	if cfg.TraceSample >= 0 {
		every := cfg.TraceSample
		if every == 0 {
			every = metrics.DefaultTraceSample
		}
		e.tracer = metrics.NewTracer(e.reg, every)
	}
	e.tuplesIn = e.reg.Counter("engine.tuples_in")
	e.resultsN = e.reg.Counter("engine.results")
	e.resultDedup = e.reg.Counter("engine.result_dedup")
	e.migrations = e.reg.Counter("engine.migrations")
	e.migratedTuples = e.reg.Counter("engine.migrated_tuples")
	if !cfg.Unordered {
		e.resultSeen = dedup.New(0)
	}
	e.reg.GaugeFunc("engine.routers", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.routers))
	})
	e.reg.GaugeFunc("engine.joiners.R", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.rJoiners))
	})
	e.reg.GaugeFunc("engine.joiners.S", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.sJoiners))
	})
	e.reg.GaugeFunc("engine.sealed", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.sealed))
	})
	e.reg.GaugeFunc("engine.migrating", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.migrating))
	})
	if e.ownB != nil {
		broker.RegisterMetrics(e.ownB, e.reg)
	}
	return e, nil
}

// Metrics returns the engine's metric registry. All tiers register
// their instruments here; obs.Handler(e.Metrics()) serves it over HTTP.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// MetricsAddr returns the bound address of the engine's observability
// server, or "" when Config.MetricsAddr was empty or the engine has
// not started.
func (e *Engine) MetricsAddr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.obsSrv == nil {
		return ""
	}
	return e.obsSrv.Addr()
}

// Start declares the topology and launches routers, joiners and the
// result sink.
func (e *Engine) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return errors.New("core: engine already started")
	}
	// Bound the entry queue before topo.Declare's unbounded declare:
	// the broker treats a MaxLen-free redeclare of an otherwise
	// identical queue as passive, so declaration order sets the bound.
	if e.cfg.EntryBound > 0 {
		if err := e.client.DeclareQueue(topo.EntryQueue, broker.QueueOptions{
			Durable: true, MaxLen: e.cfg.EntryBound,
		}); err != nil {
			return err
		}
	}
	if err := topo.Declare(e.client); err != nil {
		return err
	}
	// Result sink first so no result is dropped. The queue is durable
	// and consumption manual-ack so results survive a broker restart and
	// a sink crash between delivery and handoff redelivers instead of
	// losing the pair.
	const sinkQ = topo.ResultExchange + ".sink"
	if err := e.client.DeclareQueue(sinkQ, broker.QueueOptions{Durable: true}); err != nil {
		return err
	}
	if err := e.client.Bind(sinkQ, topo.ResultExchange, topo.ResultKey); err != nil {
		return err
	}
	cons, err := e.client.Consume(sinkQ, 512, false)
	if err != nil {
		return err
	}
	e.sinkCons = cons
	e.sinkDone = make(chan struct{})
	e.sinkStop = make(chan struct{})
	go e.sinkLoop(cons)

	// Joiners before routers so layout targets exist.
	for i := 0; i < e.cfg.RJoiners; i++ {
		if _, err := e.addJoinerLocked(tuple.R); err != nil {
			return err
		}
	}
	for i := 0; i < e.cfg.SJoiners; i++ {
		if _, err := e.addJoinerLocked(tuple.S); err != nil {
			return err
		}
	}
	for i := 0; i < e.cfg.Routers; i++ {
		if err := e.addRouterLocked(); err != nil {
			return err
		}
	}
	if e.cfg.AdaptiveRouting {
		ad, err := router.NewAdapter(router.AdaptConfig{
			Tracker:    e.hot,
			MigrateKey: e.migrateKey,
			Metrics:    e.reg,
		})
		if err != nil {
			return err
		}
		e.adapter = ad
		ad.Start()
	}
	if e.cfg.MetricsAddr != "" {
		srv, err := obs.Serve(e.cfg.MetricsAddr, e.reg)
		if err != nil {
			return fmt.Errorf("core: metrics server: %w", err)
		}
		e.obsSrv = srv
	}
	// Retirement must not depend on anyone polling Stats: sealed members
	// and parked migration donors are reaped on a timer.
	go e.reapLoop()
	e.started = true
	return nil
}

// reapLoop drives Reap until the engine stops, so sealed joiners
// retire even when no caller ever asks for Stats.
func (e *Engine) reapLoop() {
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-e.sinkStop:
			return
		case <-t.C:
			e.Reap()
		}
	}
}

func (e *Engine) addJoinerLocked(rel tuple.Relation) (*joiner.Service, error) {
	id := e.nextJid[rel]
	e.nextJid[rel]++
	svc, err := e.buildJoinerLocked(rel, id)
	if err != nil {
		return nil, err
	}
	if err := svc.Start(); err != nil {
		return nil, err
	}
	for _, r := range e.routers {
		svc.AddRouter(r.ID())
	}
	if rel == tuple.R {
		e.rJoiners = append(e.rJoiners, svc)
	} else {
		e.sJoiners = append(e.sJoiners, svc)
	}
	return svc, nil
}

// buildJoinerLocked constructs (but does not start) a joiner member with
// an explicit id — the shared path of scale-out (fresh ids) and cold
// restart (reusing a crashed member's id, so the service re-attaches to
// the same durable queues, metric names and checkpoint store). When the
// engine is configured with a checkpoint provider the member recovers
// whatever intact checkpoint its store holds before it starts consuming.
func (e *Engine) buildJoinerLocked(rel tuple.Relation, id int32) (*joiner.Service, error) {
	core, err := joiner.NewCore(joiner.Config{
		ID:            id,
		Rel:           rel,
		Pred:          e.cfg.Predicate,
		Window:        e.win,
		FullHistory:   e.cfg.FullHistory,
		ArchivePeriod: e.cfg.ArchivePeriod,
		OrderedIndex:  e.cfg.OrderedIndex,
		Shards:        e.cfg.Shards,
		Unordered:     e.cfg.Unordered,
		Metrics:       e.reg,
		Trace:         e.tracer,
	})
	if err != nil {
		return nil, err
	}
	svc := joiner.NewService(core, e.client)
	if e.cfg.Checkpoint != nil {
		store, err := e.cfg.Checkpoint.StoreFor(rel, id)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint store for %s-%d: %w", rel, id, err)
		}
		ck := checkpoint.New(checkpoint.Config{
			Store:   store,
			Metrics: e.reg,
			Prefix:  core.MetricsPrefix(),
		})
		if _, err := svc.EnableCheckpointing(ck, e.cfg.CheckpointInterval); err != nil {
			return nil, fmt.Errorf("core: recover %s-%d: %w", rel, id, err)
		}
	}
	return svc, nil
}

func (e *Engine) addRouterLocked() error {
	id := e.nextRtr
	e.nextRtr++
	core, err := router.NewCore(router.Config{
		ID:      id,
		Pred:    e.cfg.Predicate,
		Window:  e.win,
		Hot:     e.hot, // shared across routers so decisions agree
		Metrics: e.reg,
		Trace:   e.tracer,
	})
	if err != nil {
		return err
	}
	svc := router.NewService(core, e.client, e.cfg.Clock, router.ServiceConfig{
		PunctuationInterval: e.cfg.PunctuationInterval,
	})
	// Register the router with every joiner before it can send.
	for _, j := range e.allJoinersLocked() {
		j.AddRouter(id)
	}
	nowTS := e.cfg.Clock.Now().UnixMilli()
	e.ensureHistoryLocked(nowTS)
	// Replay the layout history so the new router's generation table
	// covers every draining membership, not just the current one.
	for _, rel := range []tuple.Relation{tuple.R, tuple.S} {
		for _, ch := range e.layoutHist[rel] {
			if err := svc.SetLayout(rel, ch.members, ch.subgroups, ch.atTS); err != nil {
				return err
			}
		}
		// Members the replayed generations mention but migration has
		// since retired: their queues are gone, never fan out to them.
		for _, dead := range e.deadJoiners[rel] {
			svc.RetireMember(rel, dead)
		}
	}
	if err := svc.Start(); err != nil {
		return err
	}
	e.routers = append(e.routers, svc)
	return nil
}

// ensureHistoryLocked seeds the layout history with the current
// membership on first use and prunes fully drained entries: an entry is
// droppable once a successor exists and the successor is itself older
// than the window (every tuple stored under the entry has expired).
func (e *Engine) ensureHistoryLocked(nowTS int64) {
	for _, rel := range []tuple.Relation{tuple.R, tuple.S} {
		if len(e.layoutHist[rel]) == 0 {
			e.layoutHist[rel] = append(e.layoutHist[rel], layoutChange{
				members:   e.memberIDsLocked(rel),
				subgroups: e.subgroupsLocked(rel),
				atTS:      nowTS,
			})
		}
		if e.cfg.FullHistory {
			continue // nothing ever drains
		}
		hist := e.layoutHist[rel]
		cut := 0
		for cut < len(hist)-1 {
			// hist[cut] retired at hist[cut+1].atTS; it is drained once
			// that instant is a full window (+slack) in the past.
			if nowTS-hist[cut+1].atTS > e.win.SpanMillis()+2000 {
				cut++
			} else {
				break
			}
		}
		if cut > 0 {
			e.layoutHist[rel] = append(hist[:0:0], hist[cut:]...)
		}
	}
}

// recordLayoutLocked appends a layout change to the history (no-op if
// identical to the latest entry).
func (e *Engine) recordLayoutLocked(rel tuple.Relation, nowTS int64) {
	members := e.memberIDsLocked(rel)
	subgroups := e.subgroupsLocked(rel)
	hist := e.layoutHist[rel]
	if n := len(hist); n > 0 {
		last := hist[n-1]
		if last.subgroups == subgroups && equalMembers(last.members, members) {
			return
		}
	}
	e.layoutHist[rel] = append(hist, layoutChange{members: members, subgroups: subgroups, atTS: nowTS})
}

func equalMembers(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (e *Engine) allJoinersLocked() []*joiner.Service {
	out := make([]*joiner.Service, 0, len(e.rJoiners)+len(e.sJoiners)+len(e.sealed)+len(e.migrating))
	out = append(out, e.rJoiners...)
	out = append(out, e.sJoiners...)
	for _, s := range e.sealed {
		out = append(out, s.svc)
	}
	for _, m := range e.migrating {
		if m.svc != nil {
			out = append(out, m.svc)
		}
	}
	return out
}

func (e *Engine) joinersLocked(rel tuple.Relation) *[]*joiner.Service {
	if rel == tuple.R {
		return &e.rJoiners
	}
	return &e.sJoiners
}

func (e *Engine) memberIDsLocked(rel tuple.Relation) []int32 {
	js := *e.joinersLocked(rel)
	ids := make([]int32, len(js))
	for i, j := range js {
		ids[i] = j.ID()
	}
	return ids
}

// subgroupsLocked derives the subgroup count for the current group
// size, preserving the configured strategy: pure hash stays pure hash
// as the group grows; fixed subgroup counts are clamped to the size.
func (e *Engine) subgroupsLocked(rel tuple.Relation) int {
	js := *e.joinersLocked(rel)
	cfgd := e.cfg.RSubgroups
	cfgSize := e.cfg.RJoiners
	if rel == tuple.S {
		cfgd = e.cfg.SSubgroups
		cfgSize = e.cfg.SJoiners
	}
	n := len(js)
	if n == 0 {
		return 1
	}
	if cfgd == cfgSize {
		return n // pure hash tracks the group size
	}
	if cfgd > n {
		return n
	}
	return cfgd
}

// Ingest publishes a raw tuple into the system (the stream-service
// role). Seq is assigned if zero. With a bounded entry queue
// (Config.EntryBound) it blocks while the backlog is full; use
// IngestContext to bound that wait.
func (e *Engine) Ingest(t *tuple.Tuple) error {
	return e.IngestContext(context.Background(), t)
}

// IngestContext is Ingest honoring cancellation: when ctx is done while
// backpressure blocks the publish, it returns ctx.Err() without
// ingesting the tuple.
func (e *Engine) IngestContext(ctx context.Context, t *tuple.Tuple) error {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return errors.New("core: engine not running")
	}
	if t.Seq == 0 {
		e.seq++
		t.Seq = e.seq
	}
	e.mu.Unlock()
	if t.TraceNS == 0 {
		t.TraceNS = e.tracer.Stamp() // nonzero for one in N tuples
	}
	var err error
	if cp, ok := e.client.(broker.ContextPublisher); ok {
		err = cp.PublishContext(ctx, topo.EntryExchange, topo.EntryKey, nil, tuple.Marshal(t))
	} else if err = ctx.Err(); err == nil {
		// Client without context support: best-effort pre-publish check.
		err = e.client.Publish(topo.EntryExchange, topo.EntryKey, nil, tuple.Marshal(t))
	}
	if err == nil {
		// Counted only on success so Quiesce's routed==ingested
		// accounting ignores cancelled publishes.
		e.tuplesIn.Inc()
	}
	return err
}

// Results returns the join result channel (nil when OnResult is set).
func (e *Engine) Results() <-chan tuple.JoinResult { return e.results }

func (e *Engine) sinkLoop(cons broker.Consumer) {
	defer close(e.sinkDone)
	for d := range cons.Deliveries() {
		l, r, err := tuple.UnmarshalPair(d.Body)
		if err != nil {
			_ = cons.Nack(d.Tag, false) // poison: dead-letter for inspection
			continue
		}
		if e.resultSeen != nil && e.resultSeen.SeenOrAdd(dedup.Key{l.Seq, r.Seq}) {
			// The pair already reached the application: a redelivery
			// after a lost ack, or a joiner retry whose first publish did
			// land. Settle it without emitting a duplicate.
			e.resultDedup.Inc()
			_ = cons.Ack(d.Tag)
			continue
		}
		jr := tuple.NewJoinResult(l, r)
		e.resultsN.Inc()
		// e2e latency runs from the later-ingested parent's stamp.
		// With sampled tracing usually only one parent is stamped;
		// a stamp on the older parent (event time as the tiebreak)
		// would measure window dwell, not pipeline latency — skip it.
		var stamp int64
		switch {
		case l.TraceNS != 0 && r.TraceNS != 0:
			stamp = max(l.TraceNS, r.TraceNS)
		case l.TraceNS != 0 && l.TS >= r.TS:
			stamp = l.TraceNS
		case r.TraceNS != 0 && r.TS >= l.TS:
			stamp = r.TraceNS
		}
		e.tracer.Observe(metrics.StageE2E, stamp)
		if e.cfg.OnResult != nil {
			e.cfg.OnResult(jr)
		} else {
			select {
			case e.results <- jr:
			case <-e.sinkStop:
				return // shutting down; unread results stay unacked
			}
		}
		// Ack only after the result reached the application; a crash
		// before this point redelivers the pair and the dedup above
		// keeps the redelivery from duplicating it. A failed ack
		// (connection lost mid-settle) leaves the delivery to be
		// redelivered and suppressed the same way.
		_ = cons.Ack(d.Tag)
	}
}

// ScaleJoiners grows or shrinks one relation's joiner group to n
// members. Growing adds members that only receive new tuples. The
// shrink path depends on the join mode: windowed joins (by default)
// seal removed members — they stop storing immediately, keep serving
// join probes while their window drains, and are retired afterwards —
// while full-history joins, and windowed joins with
// Config.MigrateOnShrink, migrate the removed member's state live to
// the surviving members (see the migration path in migration.go) so no
// stored tuple and no pending result is lost.
func (e *Engine) ScaleJoiners(rel tuple.Relation, n int) error {
	if n < 1 {
		return fmt.Errorf("core: joiner group must keep at least 1 member")
	}
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return errors.New("core: engine not running")
	}
	js := e.joinersLocked(rel)
	shrink := n < len(*js)
	migrateIn := shrink && (e.cfg.FullHistory || e.cfg.MigrateOnShrink)
	if migrateIn && e.cfg.Unordered {
		e.mu.Unlock()
		return fmt.Errorf("core: scale-in migration needs the ordering protocol's drain barrier (Unordered is set)")
	}
	if migrateIn {
		e.mu.Unlock()
		return e.scaleInWithMigration(rel, n)
	}
	defer e.mu.Unlock()
	for len(*js) < n {
		if _, err := e.addJoinerLocked(rel); err != nil {
			return err
		}
	}
	now := e.cfg.Clock.Now()
	for len(*js) > n {
		last := (*js)[len(*js)-1]
		*js = (*js)[:len(*js)-1]
		e.sealed = append(e.sealed, sealedJoiner{
			svc:      last,
			deadline: now.Add(e.cfg.Window + 2*time.Second),
		})
	}
	return e.pushLayoutsLocked(now.UnixMilli())
}

// ScaleRouters grows or shrinks the router tier to n instances.
func (e *Engine) ScaleRouters(n int) error {
	if n < 1 {
		return fmt.Errorf("core: router tier must keep at least 1 instance")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.started || e.stopped {
		return errors.New("core: engine not running")
	}
	for len(e.routers) < n {
		if err := e.addRouterLocked(); err != nil {
			return err
		}
	}
	for len(e.routers) > n {
		last := e.routers[len(e.routers)-1]
		e.routers = e.routers[:len(e.routers)-1]
		// Retire broadcasts the router's tombstone behind everything it
		// already sent, so joiners unregister its frontier exactly when
		// its last envelope has been processed.
		last.Retire()
		st := last.Stats()
		e.retiredRouted += st.TuplesRouted
		e.retiredFanout += st.JoinFanout
	}
	return nil
}

// pushLayoutsLocked propagates the current membership to every router
// and records it in the history replayed into future routers.
func (e *Engine) pushLayoutsLocked(nowTS int64) error {
	e.ensureHistoryLocked(nowTS)
	e.recordLayoutLocked(tuple.R, nowTS)
	e.recordLayoutLocked(tuple.S, nowTS)
	for _, r := range e.routers {
		if err := r.SetLayout(tuple.R, e.memberIDsLocked(tuple.R), e.subgroupsLocked(tuple.R), nowTS); err != nil {
			return err
		}
		if err := r.SetLayout(tuple.S, e.memberIDsLocked(tuple.S), e.subgroupsLocked(tuple.S), nowTS); err != nil {
			return err
		}
	}
	return nil
}

// Reap retires sealed joiners whose drain deadline has passed and
// migration donors that were parked at cut-over (state safely moved,
// donor still catching up to the barrier). It runs on a ticker from
// Start, is also called from Stats, and may be called directly; it
// returns how many members were retired.
func (e *Engine) Reap() int {
	e.mu.Lock()
	now := e.cfg.Clock.Now()
	var retire []*joiner.Service
	keep := e.sealed[:0]
	for _, s := range e.sealed {
		if now.After(s.deadline) {
			retire = append(retire, s.svc)
		} else {
			keep = append(keep, s)
		}
	}
	e.sealed = keep
	var parked []*migratingDonor
	for _, m := range e.migrating {
		if m.parked && m.svc != nil {
			parked = append(parked, m)
		}
	}
	e.mu.Unlock()
	for _, m := range parked {
		if m.svc.Frontier() >= m.barrier && m.svc.RetryBacklog() == 0 {
			retire = append(retire, m.svc)
			e.mu.Lock()
			e.removeMigratingLocked(m)
			e.mu.Unlock()
			e.migrations.Inc()
		}
	}
	for _, svc := range retire {
		st := svc.Stats()
		svc.Retire()
		e.mu.Lock()
		e.retiredReceived += st.Received
		e.retiredResults += st.Results
		e.mu.Unlock()
	}
	return len(retire)
}

// NumJoiners returns the active member count of one group (excluding
// sealed, draining members).
func (e *Engine) NumJoiners(rel tuple.Relation) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(*e.joinersLocked(rel))
}

// NumRouters returns the router instance count.
func (e *Engine) NumRouters() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.routers)
}

// MemberIDs returns the active member ids of one joiner group, in
// layout order. Together with Metrics it lets callers address a
// member's registry subtree ("joiner.<rel>.<id>.").
func (e *Engine) MemberIDs(rel tuple.Relation) []int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.memberIDsLocked(rel)
}

// JoinerStats returns per-member stats of one group. Thin shim over
// the Snapshot view.
func (e *Engine) JoinerStats(rel tuple.Relation) []joiner.Stats {
	members := e.memberSnapshots(rel)
	out := make([]joiner.Stats, len(members))
	for i, m := range members {
		out[i] = m.Stats
	}
	return out
}

// Stats aggregates counters across the engine. Thin shim over
// Snapshot, kept for callers of the original flat API.
func (e *Engine) Stats() Stats {
	snap := e.Snapshot()
	st := Stats{
		Results:      snap.Results,
		TuplesIn:     snap.TuplesIn,
		WindowBytes:  snap.WindowBytes,
		WindowTuples: snap.WindowTuples,
	}
	for _, r := range snap.Routers {
		st.Routers = append(st.Routers, r.Stats)
	}
	for _, j := range snap.RJoiners {
		st.RJoiners = append(st.RJoiners, j.Stats)
	}
	for _, j := range snap.SJoiners {
		st.SJoiners = append(st.SJoiners, j.Stats)
	}
	return st
}

// Quiesce blocks until every queue is drained and every joiner's
// reorder buffer is empty, or the timeout elapses. Punctuation keeps
// flowing on the wall clock, so buffered envelopes eventually release.
func (e *Engine) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if e.quiet() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: quiesce timed out after %v", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// quiet checks drain by counting rather than by queue emptiness,
// because punctuation signals keep queues momentarily non-empty at all
// times: the system is quiet when every ingested tuple has been routed,
// every routed copy has reached a joiner, no joiner is buffering, and
// every emitted result has reached the sink.
func (e *Engine) quiet() bool {
	e.mu.Lock()
	routers := append([]*router.Service(nil), e.routers...)
	joiners := e.allJoinersLocked()
	routed, fanout := e.retiredRouted, e.retiredFanout
	received, emitted := e.retiredReceived, e.retiredResults
	e.mu.Unlock()
	tuplesIn := e.tuplesIn.Value()
	resultsN := e.resultsN.Value()
	for _, r := range routers {
		st := r.Stats()
		routed += st.TuplesRouted
		fanout += st.JoinFanout
	}
	if routed != tuplesIn {
		return false
	}
	var pending int
	for _, j := range joiners {
		st := j.Stats()
		received += st.Received
		emitted += st.Results
		pending += st.Pending
	}
	if pending > 0 {
		return false
	}
	if received != routed+fanout {
		return false
	}
	// During a migration's overlap the donor and a recipient can both
	// emit the same result pair; the sink counts the first in resultsN
	// and the second in resultDedup, so the sum is the emit count.
	return emitted == resultsN+e.resultDedup.Value()
}

// CrashJoiner simulates a *warm* crash/restart of one joiner member
// (for fault testing): the service stops without flushing — in-flight
// unacked deliveries requeue on its durable queues — sits dead for
// down, and restarts against the same queues. Warm means the in-memory
// core survives: the window index, ordering frontiers and dedup filter
// carry over, modeling a process restart on the same machine (or a
// supervisor's restart-in-place). Tuples delivered but unacked at the
// crash are redelivered and suppressed by the core's idempotency
// filter. Contrast ColdCrashJoiner, which models losing the machine:
// the core is discarded and state comes back only from the checkpoint
// store and broker redelivery.
func (e *Engine) CrashJoiner(rel tuple.Relation, idx int, down time.Duration) error {
	e.mu.Lock()
	js := *e.joinersLocked(rel)
	if idx < 0 || idx >= len(js) {
		e.mu.Unlock()
		return fmt.Errorf("core: joiner %s[%d] out of range [0,%d)", rel, idx, len(js))
	}
	svc := js[idx]
	e.mu.Unlock()
	svc.Stop()
	if down > 0 {
		time.Sleep(down)
	}
	return e.cfg.Restart.Run(svc.Start)
}

// ColdCrashJoiner simulates losing a joiner's machine: the member's
// service stops (unacked deliveries requeue on its durable queues), its
// in-memory core — window index, ordering frontiers, dedup filter — is
// discarded entirely, and after down a fresh member with the same id is
// built, recovers whatever the engine's checkpoint provider holds for
// that id, and re-attaches to the same queues. With checkpointing
// configured the restored dedup filter and the sink's result filter
// absorb the redelivery overlap, so the join's result multiset is
// unchanged by the crash. Without a checkpoint provider the fresh core
// starts empty and every already-acknowledged stored tuple is simply
// gone — the data-loss mode the checkpoint subsystem exists to close.
func (e *Engine) ColdCrashJoiner(rel tuple.Relation, idx int, down time.Duration) error {
	e.mu.Lock()
	js := *e.joinersLocked(rel)
	if idx < 0 || idx >= len(js) {
		e.mu.Unlock()
		return fmt.Errorf("core: joiner %s[%d] out of range [0,%d)", rel, idx, len(js))
	}
	old := js[idx]
	id := old.ID()
	e.mu.Unlock()
	old.Stop()
	if down > 0 {
		time.Sleep(down)
	}
	e.mu.Lock()
	svc, err := e.buildJoinerLocked(rel, id)
	routerIDs := make([]int32, 0, len(e.routers))
	for _, r := range e.routers {
		routerIDs = append(routerIDs, r.ID())
	}
	e.mu.Unlock()
	if err != nil {
		return err
	}
	if err := e.cfg.Restart.Run(svc.Start); err != nil {
		return err
	}
	for _, rid := range routerIDs {
		svc.AddRouter(rid)
	}
	// Install the replacement. The slice may have shifted while the
	// member was down (scaling); match by identity, falling back to the
	// original position.
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.joinersLocked(rel)
	for i, s := range *cur {
		if s == old {
			(*cur)[i] = svc
			return nil
		}
	}
	if idx < len(*cur) {
		(*cur)[idx] = svc
	} else {
		*cur = append(*cur, svc)
	}
	return nil
}

// CrashRouter simulates a crash/restart of one router instance. Entry
// tuples it held unacked requeue for its siblings (or its own restart);
// partially published fan-outs repeat on redelivery and are absorbed by
// joiner dedup.
func (e *Engine) CrashRouter(idx int, down time.Duration) error {
	e.mu.Lock()
	if idx < 0 || idx >= len(e.routers) {
		e.mu.Unlock()
		return fmt.Errorf("core: router %d out of range [0,%d)", idx, len(e.routers))
	}
	svc := e.routers[idx]
	e.mu.Unlock()
	svc.Stop()
	if down > 0 {
		time.Sleep(down)
	}
	return e.cfg.Restart.Run(svc.Start)
}

// Settle waits until the pipeline's observable progress counters stop
// changing for idle, or fails after timeout. Unlike Quiesce it does not
// rely on exact count equalities (routed == ingested and the like),
// which fault injection breaks: a duplicated delivery inflates routed
// past tuples_in forever. Stability plus empty reorder/retry buffers is
// the strongest drain signal that survives duplicates and dead letters.
func (e *Engine) Settle(idle, timeout time.Duration) error {
	type fingerprint struct {
		in, out, routed, fanout, received, emitted, deduped, resultDedup int64
		pending, backlog                                                 int
	}
	sample := func() fingerprint {
		e.mu.Lock()
		routers := append([]*router.Service(nil), e.routers...)
		joiners := e.allJoinersLocked()
		e.mu.Unlock()
		fp := fingerprint{
			in:          e.tuplesIn.Value(),
			out:         e.resultsN.Value(),
			resultDedup: e.resultDedup.Value(),
		}
		for _, r := range routers {
			st := r.Stats()
			fp.routed += st.TuplesRouted
			fp.fanout += st.JoinFanout
		}
		for _, j := range joiners {
			st := j.Stats()
			fp.received += st.Received
			fp.emitted += st.Results
			fp.deduped += st.Deduped
			fp.pending += st.Pending
			fp.backlog += j.RetryBacklog()
		}
		return fp
	}
	deadline := time.Now().Add(timeout)
	last := sample()
	lastChange := time.Now()
	for {
		time.Sleep(5 * time.Millisecond)
		cur := sample()
		if cur != last {
			last = cur
			lastChange = time.Now()
		} else if cur.pending == 0 && cur.backlog == 0 && time.Since(lastChange) >= idle {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: settle timed out after %v (pending=%d backlog=%d)",
				timeout, cur.pending, cur.backlog)
		}
	}
}

// Stop halts all services. Buffered envelopes are flushed through the
// joiners so no already-ingested result is silently dropped, then the
// engine's own broker (if any) is closed.
func (e *Engine) Stop() error {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return nil
	}
	e.stopped = true
	routers := e.routers
	joiners := e.allJoinersLocked()
	sink := e.sinkCons
	sinkDone := e.sinkDone
	obsSrv := e.obsSrv
	adapter := e.adapter
	e.mu.Unlock()

	if adapter != nil {
		// Before the routers: an in-flight key migration waits on stamp
		// cursors, which stop advancing once the routers are gone.
		adapter.Stop()
	}
	if obsSrv != nil {
		obsSrv.Close()
	}

	for _, r := range routers {
		r.Stop() // emits a final punctuation
	}
	// Give joiners a moment to consume the final punctuations, then
	// stop them and flush whatever remains.
	_ = e.Quiesce(500 * time.Millisecond)
	for _, j := range joiners {
		j.Stop()
		j.Flush() // release anything still gated by the protocol
	}
	if sink != nil {
		sink.Cancel()
		close(e.sinkStop)
		<-sinkDone
	}
	if e.results != nil {
		close(e.results)
	}
	if e.ownB != nil {
		return e.ownB.Close()
	}
	return nil
}
