package core

// Adaptive routing: the engine side of the detect→decide→move loop.
// The shared HotTracker detects skew and flips per-key placement on the
// routers (detect + decide, internal/router); the Adapter reacts to
// each promotion (internal/router/adapt.go); and migrateKey below is
// the move — it relocates the promoted key's already-stored partition
// from its hash owners to the scattered owners over internal/migrate's
// key-scoped drain-barrier/segment-streaming path.
//
// The donor set is exactly what hash routing targeted before the flip:
// the members of the key's subgroup (hash selects the subgroup,
// round-robin spreads within it — so with subgroups < members the pile
// spans several donors, and with pure hash routing it sits on one).
// Each donor's pile moves to every *other* live member, matching the
// scattered-store geometry the routers use for hot keys.

import (
	"errors"
	"fmt"

	"bistream/internal/index"
	"bistream/internal/migrate"
	"bistream/internal/router"
	"bistream/internal/tuple"
)

// migrateKey relocates one relation's stored partition of a newly hot
// key from its hash owners to the rest of the group. It is the
// Adapter's MigrateKey callback; migLock serializes it against
// whole-member migrations so donors never interleave.
func (e *Engine) migrateKey(rel tuple.Relation, keyHash uint64) (int, error) {
	e.migLock.Lock()
	defer e.migLock.Unlock()
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return 0, errors.New("core: engine not running")
	}
	members := e.memberIDsLocked(rel)
	subgroups := e.subgroupsLocked(rel)
	routers := append([]*router.Service(nil), e.routers...)
	e.mu.Unlock()
	if len(members) < 2 {
		// Scattering across a single member is hash placement; the flip
		// alone is the whole adaptation.
		return 0, nil
	}

	// The placement flipped when the tracker promoted the key, strictly
	// before the Adapter invoked us; today's cursor is therefore at or
	// above the flip point, so a donor frontier past it proves every
	// store copy hash-routed under the cold regime has landed.
	var barrier uint64
	for _, r := range routers {
		if c := r.StampCursor(); c > barrier {
			barrier = c
		}
	}

	// Hash owners of the key under the current layout: the members of
	// subgroup keyHash%subgroups, i.e. every subgroups-th slot of the
	// layout starting there (see router.Group's store target and the
	// mirrored assignFunc in migration.go).
	sub := 0
	if subgroups > 1 {
		sub = int(keyHash % uint64(subgroups))
	}
	var donors []int32
	for i := sub; i < len(members); i += subgroups {
		donors = append(donors, members[i])
	}

	moved := 0
	for _, donorID := range donors {
		donorID := donorID
		recipients := make([]int32, 0, len(members)-1)
		for _, m := range members {
			if m != donorID {
				recipients = append(recipients, m)
			}
		}
		if len(recipients) == 0 {
			continue
		}
		e.mu.Lock()
		e.migAttempt++
		attempt := e.migAttempt
		e.mu.Unlock()
		res, err := migrate.RunKey(migrate.KeyConfig{
			Client:       e.client,
			Metrics:      e.reg,
			Rel:          rel,
			Origin:       donorID,
			KeyHash:      keyHash,
			Attempt:      attempt,
			DrainBarrier: barrier,
			Timeout:      e.cfg.MigrationTimeout,
			Donor: func() migrate.KeyPeer {
				// Re-resolve by id every call: a cold-crashed donor's
				// replacement carries the same id, so the migration rides
				// through the crash against the recovered incarnation.
				e.mu.Lock()
				svc := e.joinerByIDLocked(rel, donorID)
				e.mu.Unlock()
				if svc == nil {
					return nil
				}
				return svc
			},
			Cursor: func() uint64 {
				e.mu.Lock()
				rs := append([]*router.Service(nil), e.routers...)
				e.mu.Unlock()
				var c uint64
				for _, r := range rs {
					if v := r.StampCursor(); v > c {
						c = v
					}
				}
				return c
			},
			Recipients: recipients,
			Import: func(member int32, segs []index.Segment) error {
				return e.importForeign(rel, member, segs)
			},
			Drop: func(seqs []uint64) (int, error) {
				e.mu.Lock()
				svc := e.joinerByIDLocked(rel, donorID)
				e.mu.Unlock()
				if svc == nil {
					return 0, fmt.Errorf("core: key donor %s-%d gone at drop", rel, donorID)
				}
				n := svc.DropKeySeqs(keyHash, seqs)
				// Make the removal durable so a later cold crash does not
				// resurrect the pile. Best-effort: a failure here leaves
				// duplicate storage at worst, which the sink dedup absorbs.
				_ = svc.CheckpointNow()
				return n, nil
			},
		})
		if err != nil {
			return moved, fmt.Errorf("core: key migration %s-%d (key %x): %w", rel, donorID, keyHash, err)
		}
		moved += res.Tuples
	}
	return moved, nil
}

// PinHotKey forces a key's routing placement, overriding the tracker's
// frequency estimate: hot pins scattered-store/broadcast-probe, cold
// pins plain hash routing. Pinning hot also asks the adaptation
// controller (when enabled) to migrate the key's stored pile, exactly
// as an organic promotion would.
func (e *Engine) PinHotKey(keyHash uint64, hot bool) error {
	e.mu.Lock()
	tracker, adapter := e.hot, e.adapter
	e.mu.Unlock()
	if tracker == nil {
		return errors.New("core: ContRand routing not enabled")
	}
	tracker.Pin(keyHash, hot)
	if hot && adapter != nil {
		adapter.Request(keyHash)
	}
	return nil
}

// UnpinHotKey removes a manual pin, returning the key to tracker
// control. A previously pinned-hot key drains like a demotion: probes
// keep broadcasting for a window (+ slack) so tuples scattered under
// the pin stay reachable until they expire.
func (e *Engine) UnpinHotKey(keyHash uint64) error {
	e.mu.Lock()
	tracker := e.hot
	e.mu.Unlock()
	if tracker == nil {
		return errors.New("core: ContRand routing not enabled")
	}
	tracker.Unpin(keyHash, e.cfg.Clock.Now().UnixMilli())
	return nil
}

// HotKeys reports the key hashes the tracker currently routes as hot
// (nil when ContRand is disabled). Diagnostics and tests.
func (e *Engine) HotKeys() []uint64 {
	if e.hot == nil {
		return nil
	}
	return e.hot.HotKeys()
}
