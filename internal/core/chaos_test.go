package core

import (
	"math/rand"
	"testing"
	"time"

	"bistream/internal/predicate"
	"bistream/internal/tuple"
)

// TestEngineExactlyOnceUnderRandomScaling is the chaos property test:
// a random schedule of joiner and router scale operations interleaved
// with ingestion must never lose or duplicate a join result. It runs a
// few seeded scenarios; any failure seed reproduces deterministically.
func TestEngineExactlyOnceUnderRandomScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	for _, seed := range []int64{1, 2, 3, 4, 5, 6} {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		Routers:   2,
		Shards:    3,
		RJoiners:  2,
		SJoiners:  2,
	}, col)

	var rs, ss []*tuple.Tuple
	seq := uint64(1)
	ingestBatch := func(n int) {
		for i := 0; i < n; i++ {
			ts := int64(len(rs)+len(ss)) * 5
			key := tuple.Int(rng.Int63n(25))
			r := tuple.New(tuple.R, seq, ts, key)
			seq++
			s := tuple.New(tuple.S, seq, ts, tuple.Int(rng.Int63n(25)))
			seq++
			rs, ss = append(rs, r), append(ss, s)
			if err := e.Ingest(r); err != nil {
				t.Fatal(err)
			}
			if err := e.Ingest(s); err != nil {
				t.Fatal(err)
			}
		}
	}

	for round := 0; round < 8; round++ {
		ingestBatch(30)
		switch rng.Intn(5) {
		case 0:
			if err := e.ScaleJoiners(tuple.R, 1+rng.Intn(4)); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := e.ScaleJoiners(tuple.S, 1+rng.Intn(4)); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := e.ScaleRouters(1 + rng.Intn(3)); err != nil {
				t.Fatal(err)
			}
		case 3:
			// Scale both groups in the same round.
			if err := e.ScaleJoiners(tuple.R, 1+rng.Intn(4)); err != nil {
				t.Fatal(err)
			}
			if err := e.ScaleJoiners(tuple.S, 1+rng.Intn(4)); err != nil {
				t.Fatal(err)
			}
		default:
			// No scaling this round.
		}
		// Half the rounds continue ingesting immediately; the others
		// drain first, exercising both busy and idle transitions.
		if rng.Intn(2) == 0 {
			if err := e.Quiesce(15 * time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Quiesce(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "chaos")
}
