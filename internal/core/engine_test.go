package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/index"
	"bistream/internal/predicate"
	"bistream/internal/topo"
	"bistream/internal/tuple"
	"bistream/internal/wire"
)

// collector gathers results thread-safely via OnResult.
type collector struct {
	mu   sync.Mutex
	seen map[[2]uint64]int
}

func newCollector() *collector { return &collector{seen: make(map[[2]uint64]int)} }

func (c *collector) add(jr tuple.JoinResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen[jr.Key()]++
}

func (c *collector) snapshot() map[[2]uint64]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[[2]uint64]int, len(c.seen))
	for k, v := range c.seen {
		out[k] = v
	}
	return out
}

// refJoin computes the expected result set: all (r,s) pairs matching
// the predicate within the window.
func refJoin(rs, ss []*tuple.Tuple, pred predicate.Predicate, winMs int64) map[[2]uint64]int {
	want := map[[2]uint64]int{}
	for _, r := range rs {
		for _, s := range ss {
			d := r.TS - s.TS
			if d < 0 {
				d = -d
			}
			if d <= winMs && pred.Match(r, s) {
				want[[2]uint64{r.Seq, s.Seq}] = 1
			}
		}
	}
	return want
}

func startEngine(t *testing.T, cfg Config, col *collector) *Engine {
	t.Helper()
	cfg.OnResult = col.add
	if cfg.PunctuationInterval == 0 {
		cfg.PunctuationInterval = time.Millisecond
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Stop() })
	return e
}

func ingestAll(t *testing.T, e *Engine, tuples []*tuple.Tuple) {
	t.Helper()
	for _, tp := range tuples {
		if err := e.Ingest(tp); err != nil {
			t.Fatal(err)
		}
	}
}

// makeWorkload builds interleaved R and S tuples with the given key
// cardinality and millisecond spacing.
func makeWorkload(n int, keys int64, stepMs int64, seed int64) (rs, ss, all []*tuple.Tuple) {
	rng := rand.New(rand.NewSource(seed))
	seq := uint64(1)
	for i := 0; i < n; i++ {
		ts := int64(i) * stepMs
		r := tuple.New(tuple.R, seq, ts, tuple.Int(rng.Int63n(keys)))
		seq++
		s := tuple.New(tuple.S, seq, ts, tuple.Int(rng.Int63n(keys)))
		seq++
		rs = append(rs, r)
		ss = append(ss, s)
		all = append(all, r, s)
	}
	return rs, ss, all
}

func verifyExactlyOnce(t *testing.T, got, want map[[2]uint64]int, label string) {
	t.Helper()
	for k, n := range got {
		if n > 1 {
			t.Errorf("%s: pair %v produced %d times", label, k, n)
		}
		if want[k] == 0 {
			t.Errorf("%s: unexpected pair %v", label, k)
		}
	}
	missing := 0
	for k := range want {
		if got[k] == 0 {
			missing++
			if missing <= 5 {
				t.Errorf("%s: missing pair %v", label, k)
			}
		}
	}
	if missing > 5 {
		t.Errorf("%s: %d pairs missing in total", label, missing)
	}
}

func TestEngineEquiJoinExactlyOnce(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		Routers:   2,
		RJoiners:  3,
		SJoiners:  3,
	}, col)
	rs, ss, all := makeWorkload(400, 20, 10, 1)
	ingestAll(t, e, all)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "equi")
	st := e.Stats()
	if st.TuplesIn != 800 {
		t.Errorf("TuplesIn = %d", st.TuplesIn)
	}
	if st.Results == 0 {
		t.Error("no results counted")
	}
}

func TestEngineBandJoinRandomRouting(t *testing.T) {
	pred := predicate.NewBand(0, 0, 2)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		Routers:   2,
		RJoiners:  2,
		SJoiners:  3,
	}, col)
	rs, ss, all := makeWorkload(200, 30, 10, 2)
	ingestAll(t, e, all)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "band")
}

func TestEngineThetaJoin(t *testing.T) {
	pred := predicate.NewTheta(0, 0, predicate.LT)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		RJoiners:  2,
		SJoiners:  2,
	}, col)
	rs, ss, all := makeWorkload(120, 50, 10, 3)
	ingestAll(t, e, all)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "theta")
}

func TestEngineWindowExcludesDistantPairs(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Second, // 1s window
	}, col)
	// Same key, 5 seconds apart: no result.
	r := tuple.New(tuple.R, 1, 0, tuple.Int(7))
	s := tuple.New(tuple.S, 2, 5000, tuple.Int(7))
	ingestAll(t, e, []*tuple.Tuple{r, s})
	if err := e.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(col.snapshot()) != 0 {
		t.Errorf("out-of-window pair joined: %v", col.snapshot())
	}
}

func TestEngineScaleOutJoinersNoMissNoDup(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		RJoiners:  2,
		SJoiners:  2,
	}, col)
	rs, ss, all := makeWorkload(300, 15, 10, 4)
	// Ingest first half, scale out both groups, ingest second half.
	half := len(all) / 2
	ingestAll(t, e, all[:half])
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.ScaleJoiners(tuple.R, 4); err != nil {
		t.Fatal(err)
	}
	if err := e.ScaleJoiners(tuple.S, 4); err != nil {
		t.Fatal(err)
	}
	if e.NumJoiners(tuple.R) != 4 || e.NumJoiners(tuple.S) != 4 {
		t.Fatal("scale out did not apply")
	}
	ingestAll(t, e, all[half:])
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "scale-out")
}

func TestEngineScaleInJoinersNoMissNoDup(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		RJoiners:  4,
		SJoiners:  4,
	}, col)
	rs, ss, all := makeWorkload(300, 15, 10, 5)
	half := len(all) / 2
	ingestAll(t, e, all[:half])
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.ScaleJoiners(tuple.R, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.ScaleJoiners(tuple.S, 2); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, e, all[half:])
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "scale-in")
}

func TestEngineScaleRouters(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		Routers:   1,
		RJoiners:  2,
		SJoiners:  2,
	}, col)
	rs, ss, all := makeWorkload(300, 15, 10, 6)
	third := len(all) / 3
	ingestAll(t, e, all[:third])
	if err := e.ScaleRouters(3); err != nil {
		t.Fatal(err)
	}
	if e.NumRouters() != 3 {
		t.Fatal("router scale-out did not apply")
	}
	ingestAll(t, e, all[third:2*third])
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.ScaleRouters(1); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, e, all[2*third:])
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "scale-routers")
}

func TestEngineResultsChannel(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	e, err := New(Config{
		Predicate:           pred,
		Window:              time.Minute,
		PunctuationInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	ingestAll(t, e, []*tuple.Tuple{
		tuple.New(tuple.R, 1, 0, tuple.Int(7)),
		tuple.New(tuple.S, 2, 1, tuple.Int(7)),
	})
	select {
	case jr := <-e.Results():
		if jr.Left.Seq != 1 || jr.Right.Seq != 2 {
			t.Errorf("result = %v", jr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result on channel")
	}
}

func TestEngineOverRemoteBroker(t *testing.T) {
	b := broker.New(nil)
	srv := wire.NewServer(b, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); b.Close() }()
	client, err := wire.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		RJoiners:  2,
		SJoiners:  2,
		Broker:    client,
	}, col)
	rs, ss, all := makeWorkload(100, 10, 10, 7)
	ingestAll(t, e, all)
	if err := e.Quiesce(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "remote")
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Predicate: predicate.NewEqui(0, 0)}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := New(Config{
		Predicate: predicate.NewBand(0, 0, 1), Window: time.Second,
		RJoiners: 2, RSubgroups: 2,
	}); err == nil {
		t.Error("subgroups>1 accepted for band predicate")
	}
	if _, err := New(Config{
		Predicate: predicate.NewEqui(0, 0), Window: time.Second,
		RJoiners: 2, RSubgroups: 5,
	}); err == nil {
		t.Error("out-of-range subgroups accepted")
	}
}

func TestEngineLifecycleErrors(t *testing.T) {
	e, err := New(Config{Predicate: predicate.NewEqui(0, 0), Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(tuple.New(tuple.R, 1, 0, tuple.Int(1))); err == nil {
		t.Error("Ingest before Start accepted")
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Error("double Start accepted")
	}
	if err := e.ScaleJoiners(tuple.R, 0); err == nil {
		t.Error("scale to zero accepted")
	}
	if err := e.ScaleRouters(0); err == nil {
		t.Error("router scale to zero accepted")
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err != nil {
		t.Errorf("double Stop = %v", err)
	}
	if err := e.Ingest(tuple.New(tuple.R, 1, 0, tuple.Int(1))); err == nil {
		t.Error("Ingest after Stop accepted")
	}
}

func TestEngineSequenceAssignment(t *testing.T) {
	col := newCollector()
	e := startEngine(t, Config{Predicate: predicate.NewEqui(0, 0), Window: time.Second}, col)
	tp := tuple.New(tuple.R, 0, 0, tuple.Int(1))
	if err := e.Ingest(tp); err != nil {
		t.Fatal(err)
	}
	if tp.Seq == 0 {
		t.Error("Ingest did not assign a sequence number")
	}
}

func TestEngineSubgroupHybridCorrectness(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate:  pred,
		Window:     time.Minute,
		RJoiners:   4,
		SJoiners:   4,
		RSubgroups: 2,
		SSubgroups: 2,
	}, col)
	rs, ss, all := makeWorkload(200, 10, 10, 8)
	ingestAll(t, e, all)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "subgroup")
}

func TestEngineHashRoutingFanoutIsOne(t *testing.T) {
	// With pure hash partitioning each tuple's join copy goes to exactly
	// one opposite member (the low-communication side of §3.2).
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		RJoiners:  4,
		SJoiners:  4,
	}, col)
	_, _, all := makeWorkload(100, 50, 10, 9)
	ingestAll(t, e, all)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	var routed, fanout int64
	for _, r := range st.Routers {
		routed += r.TuplesRouted
		fanout += r.JoinFanout
	}
	if routed != 200 {
		t.Fatalf("routed = %d", routed)
	}
	if fanout != routed {
		t.Errorf("hash fanout = %d for %d tuples, want equal", fanout, routed)
	}
}

func TestEngineBroadcastFanoutIsGroupSize(t *testing.T) {
	pred := predicate.NewBand(0, 0, 1)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		RJoiners:  3,
		SJoiners:  3,
	}, col)
	_, _, all := makeWorkload(50, 50, 10, 10)
	ingestAll(t, e, all)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	var routed, fanout int64
	for _, r := range st.Routers {
		routed += r.TuplesRouted
		fanout += r.JoinFanout
	}
	if fanout != routed*3 {
		t.Errorf("broadcast fanout = %d for %d tuples with 3 members", fanout, routed)
	}
}

func TestEngineStatsWindowShrinksViaExpiry(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate:     pred,
		Window:        time.Second,
		ArchivePeriod: 100 * time.Millisecond,
	}, col)
	// 20 seconds of event time at 10ms steps: the window holds ~100
	// tuples per relation at a time, not 2000.
	var all []*tuple.Tuple
	seq := uint64(1)
	for i := 0; i < 2000; i++ {
		rel := tuple.R
		if i%2 == 1 {
			rel = tuple.S
		}
		all = append(all, tuple.New(rel, seq, int64(i)*10, tuple.Int(int64(i%10))))
		seq++
	}
	ingestAll(t, e, all)
	if err := e.Quiesce(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.WindowTuples > 600 {
		t.Errorf("WindowTuples = %d; expiry is not bounding memory", st.WindowTuples)
	}
	var expired int64
	for _, j := range st.RJoiners {
		expired += j.Expired
	}
	for _, j := range st.SJoiners {
		expired += j.Expired
	}
	if expired == 0 {
		t.Error("no expiry happened")
	}
}

func BenchmarkEngineEquiEndToEnd(b *testing.B) {
	var n int64
	e, err := New(Config{
		Predicate:           predicate.NewEqui(0, 0),
		Window:              time.Minute,
		RJoiners:            2,
		SJoiners:            2,
		PunctuationInterval: 5 * time.Millisecond,
		OnResult:            func(tuple.JoinResult) { n++ },
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(); err != nil {
		b.Fatal(err)
	}
	defer e.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel := tuple.R
		if i%2 == 1 {
			rel = tuple.S
		}
		tp := tuple.New(rel, uint64(i+1), int64(i), tuple.Int(int64(i%4096)))
		if err := e.Ingest(tp); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Quiesce(30 * time.Second); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(n), "results")
	_ = fmt.Sprint(n)
}

func TestEngineFullHistoryJoin(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate:   pred,
		FullHistory: true,
		RJoiners:    2,
		SJoiners:    2,
	}, col)
	// Pairs separated by a month of event time still join.
	const month = int64(30 * 24 * 3600 * 1000)
	r := tuple.New(tuple.R, 1, 0, tuple.Int(7))
	s := tuple.New(tuple.S, 2, month, tuple.Int(7))
	ingestAll(t, e, []*tuple.Tuple{r, s})
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := col.snapshot()
	if got[[2]uint64{1, 2}] != 1 {
		t.Errorf("full-history pair missing: %v", got)
	}
	// Scale-out works; scale-in migrates the donor's full history onto
	// the survivors instead of refusing.
	if err := e.ScaleJoiners(tuple.R, 3); err != nil {
		t.Fatal(err)
	}
	var rs, ss []*tuple.Tuple
	seq := uint64(100)
	for i := 0; i < 60; i++ {
		rs = append(rs, tuple.New(tuple.R, seq, month+int64(i), tuple.Int(int64(i%8))))
		seq++
	}
	ingestAll(t, e, rs)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.ScaleJoiners(tuple.R, 2); err != nil {
		t.Fatalf("full-history scale-in with migration: %v", err)
	}
	if got := e.NumJoiners(tuple.R); got != 2 {
		t.Fatalf("NumJoiners(R) = %d after scale-in, want 2", got)
	}
	// Probes arriving after the migration must still find every tuple
	// the donor held — including the month-old one.
	for i := 0; i < 60; i++ {
		ss = append(ss, tuple.New(tuple.S, seq, month+int64(i), tuple.Int(int64(i%8))))
		seq++
	}
	ingestAll(t, e, ss)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := refJoin(append(rs, r), append(ss, s), pred, int64(1)<<62)
	verifyExactlyOnce(t, col.snapshot(), want, "full-history scale-in")
	if n := e.Metrics().Counter("engine.migrations").Value(); n == 0 {
		t.Error("engine.migrations counter did not advance")
	}
}

func TestEngineFullHistoryValidation(t *testing.T) {
	if _, err := New(Config{Predicate: predicate.NewEqui(0, 0), FullHistory: true, Window: time.Minute}); err == nil {
		t.Error("FullHistory with Window accepted")
	}
}

func TestEngineContRandExactlyOnceUnderSkew(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate:   pred,
		Window:      time.Minute,
		Routers:     2,
		RJoiners:    3,
		SJoiners:    3,
		ContRand:    true,
		HotFraction: 0.05,
	}, col)
	// 60% of tuples share one key: a hash-routed hotspot, which
	// ContRand scatters. Exactly-once must hold through promotion.
	rng := rand.New(rand.NewSource(11))
	var rs, ss, all []*tuple.Tuple
	seq := uint64(1)
	for i := 0; i < 400; i++ {
		key := int64(7)
		if rng.Float64() > 0.6 {
			key = rng.Int63n(1000) + 100
		}
		ts := int64(i) * 10
		r := tuple.New(tuple.R, seq, ts, tuple.Int(key))
		seq++
		s := tuple.New(tuple.S, seq, ts, tuple.Int(key))
		seq++
		rs, ss, all = append(rs, r), append(ss, s), append(all, r, s)
	}
	ingestAll(t, e, all)
	if err := e.Quiesce(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "contrand")
}

func TestEngineContRandValidation(t *testing.T) {
	if _, err := New(Config{
		Predicate: predicate.NewBand(0, 0, 1), Window: time.Minute, ContRand: true,
	}); err == nil {
		t.Error("ContRand with non-partitionable predicate accepted")
	}
}

func TestEngineResumesFromDurableBroker(t *testing.T) {
	// The §4.2 durability story end-to-end: tuples published while no
	// router is running survive a broker restart and are joined once
	// the engine comes up against the recovered broker.
	dir := t.TempDir()
	b, err := broker.NewDurable(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Declare(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r := tuple.New(tuple.R, uint64(i+1), int64(i), tuple.Int(int64(i)))
		s := tuple.New(tuple.S, uint64(i+100), int64(i), tuple.Int(int64(i)))
		for _, tp := range []*tuple.Tuple{r, s} {
			if err := b.Publish(topo.EntryExchange, topo.EntryKey, nil, tuple.Marshal(tp)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Close(); err != nil { // "crash" with 20 unconsumed tuples
		t.Fatal(err)
	}

	b2, err := broker.NewDurable(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: predicate.NewEqui(0, 0),
		Window:    time.Minute,
		RJoiners:  2,
		SJoiners:  2,
		Broker:    b2,
	}, col)
	// The engine's quiesce accounting can't see the pre-engine backlog
	// (tuplesIn counts Ingest calls), so wait on results directly.
	deadline := time.Now().Add(10 * time.Second)
	for len(col.snapshot()) < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/10 recovered pairs joined", len(col.snapshot()))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for k, n := range col.snapshot() {
		if n != 1 {
			t.Errorf("pair %v joined %d times", k, n)
		}
	}
	_ = e
}

func TestEngineBandJoinWithBTreeIndex(t *testing.T) {
	pred := predicate.NewBand(0, 0, 2)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate:    pred,
		Window:       time.Minute,
		RJoiners:     2,
		SJoiners:     2,
		OrderedIndex: index.BTreeKind,
	}, col)
	rs, ss, all := makeWorkload(150, 30, 10, 14)
	ingestAll(t, e, all)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "band-btree")
}
