package core

// Live scale-in migration: the engine-side protocol around
// migrate.Run. The overall shape (§3.4 elasticity, extended to
// full-history joins):
//
//  1. Under e.mu the donor is popped from the layout and the shrunk
//     layout is pushed to every router; the routers' stamp cursor
//     captured right afterwards is the drain barrier — stamping and
//     publishing are one atomic step, so no store copy routed to the
//     donor under the old layout can be stamped above it.
//  2. migrate.Run drains the donor past the barrier, snapshots it,
//     streams the re-sealed segments over the broker, and grafts them
//     onto the surviving members chosen by assignFunc — the exact
//     store-target geometry of the shrunk layout, so every future (and
//     past) join probe's fan-out covers the member now holding each
//     grafted tuple.
//  3. Cut-over: the donor is marked dead in every router's generation
//     table (old generations keep its positional slot, so subgroup
//     geometry is undisturbed), and the donor must pass the
//     post-cut-over cursor with an empty result backlog — proving it
//     answered every probe that was still addressed to it.
//  4. The donor retires: final checkpoint, queues deleted, its counters
//     folded into the engine's retired residue.
//
// On any failure before cut-over the donor is reinstated into the
// layout unharmed. After cut-over its state is already safe on the
// survivors, so a stalled donor is parked and Reap retires it once its
// frontier catches up.

import (
	"errors"
	"fmt"
	"time"

	"bistream/internal/index"
	"bistream/internal/joiner"
	"bistream/internal/migrate"
	"bistream/internal/router"
	"bistream/internal/tuple"
)

// migratingDonor tracks one scale-in donor from layout removal to
// retirement. svc is the donor's current incarnation (ColdCrashDonor
// swaps it); cutover is set once MarkDead ran, after which the donor
// can no longer be reinstated; parked marks a donor whose state is
// safely migrated but whose cut-over wait timed out — Reap retires it
// once its frontier passes barrier.
type migratingDonor struct {
	rel     tuple.Relation
	id      int32
	svc     *joiner.Service
	barrier uint64
	cutover bool
	parked  bool
}

func (e *Engine) removeMigratingLocked(d *migratingDonor) {
	for i, m := range e.migrating {
		if m == d {
			e.migrating = append(e.migrating[:i], e.migrating[i+1:]...)
			return
		}
	}
}

func (e *Engine) joinerByIDLocked(rel tuple.Relation, id int32) *joiner.Service {
	for _, s := range *e.joinersLocked(rel) {
		if s.ID() == id {
			return s
		}
	}
	return nil
}

// scaleInWithMigration shrinks rel's group to n members, migrating one
// donor at a time. migLock serializes whole migrations so concurrent
// ScaleJoiners calls cannot interleave donors.
func (e *Engine) scaleInWithMigration(rel tuple.Relation, n int) error {
	e.migLock.Lock()
	defer e.migLock.Unlock()
	for {
		done, err := e.migrateOneDonor(rel, n)
		if done || err != nil {
			return err
		}
	}
}

// migrateOneDonor pops and migrates the group's last member; done
// reports that the group already has at most n members.
func (e *Engine) migrateOneDonor(rel tuple.Relation, n int) (bool, error) {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return true, errors.New("core: engine not running")
	}
	js := e.joinersLocked(rel)
	if len(*js) <= n {
		e.mu.Unlock()
		return true, nil
	}
	donor := (*js)[len(*js)-1]
	*js = (*js)[:len(*js)-1]
	d := &migratingDonor{rel: rel, id: donor.ID(), svc: donor}
	e.migrating = append(e.migrating, d)
	if err := e.pushLayoutsLocked(e.cfg.Clock.Now().UnixMilli()); err != nil {
		*js = append(*js, donor)
		e.removeMigratingLocked(d)
		e.mu.Unlock()
		return false, err
	}
	routers := append([]*router.Service(nil), e.routers...)
	members := e.memberIDsLocked(rel)
	subgroups := e.subgroupsLocked(rel)
	e.migAttempt++
	attempt := e.migAttempt
	e.mu.Unlock()

	// Drain barrier: all routers already route stores by the shrunk
	// layout, so nothing stamped above this cursor targets the donor's
	// store stream.
	var barrier uint64
	for _, r := range routers {
		if c := r.StampCursor(); c > barrier {
			barrier = c
		}
	}

	res, err := migrate.Run(migrate.Config{
		Client:       e.client,
		Metrics:      e.reg,
		Rel:          rel,
		Origin:       d.id,
		Attempt:      attempt,
		DrainBarrier: barrier,
		Timeout:      e.cfg.MigrationTimeout,
		Donor: func() migrate.Peer {
			// Re-resolve every call so a cold-replaced donor is observed
			// through its recovered incarnation.
			e.mu.Lock()
			svc := d.svc
			e.mu.Unlock()
			if svc == nil {
				return nil
			}
			return svc
		},
		Cursor: func() uint64 {
			e.mu.Lock()
			rs := append([]*router.Service(nil), e.routers...)
			e.mu.Unlock()
			var c uint64
			for _, r := range rs {
				if v := r.StampCursor(); v > c {
					c = v
				}
			}
			e.mu.Lock()
			d.barrier = c
			e.mu.Unlock()
			return c
		},
		Assign: e.assignFunc(members, subgroups),
		Import: func(member int32, segs []index.Segment) error {
			return e.importForeign(rel, member, segs)
		},
		MarkDead: func() error {
			e.mu.Lock()
			d.cutover = true
			e.deadJoiners[rel] = append(e.deadJoiners[rel], d.id)
			rs := append([]*router.Service(nil), e.routers...)
			e.mu.Unlock()
			for _, r := range rs {
				r.RetireMember(rel, d.id)
			}
			return nil
		},
	})
	if err != nil {
		e.mu.Lock()
		if d.cutover {
			// The state is already on the survivors and the donor is out
			// of all fan-out; only the cut-over wait failed. Park it —
			// Reap retires it once its frontier passes the barrier.
			d.parked = true
			e.mu.Unlock()
			return false, fmt.Errorf("core: migration of %s-%d stalled at cut-over (donor parked for reap): %w", rel, d.id, err)
		}
		// Nothing irreversible happened: put the donor back.
		cur := d.svc
		e.removeMigratingLocked(d)
		if cur != nil {
			*e.joinersLocked(rel) = append(*e.joinersLocked(rel), cur)
		}
		perr := e.pushLayoutsLocked(e.cfg.Clock.Now().UnixMilli())
		e.mu.Unlock()
		return false, errors.Join(err, perr)
	}

	e.mu.Lock()
	cur := d.svc
	e.removeMigratingLocked(d)
	e.mu.Unlock()
	st := cur.Stats()
	cur.Retire()
	e.mu.Lock()
	e.retiredReceived += st.Received
	e.retiredResults += st.Results
	e.mu.Unlock()
	e.migrations.Inc()
	e.migratedTuples.Add(int64(res.Tuples))
	return false, nil
}

// assignFunc returns the migration's redistribution function: the same
// member choice the routers' store target makes under the shrunk layout
// (hash to a subgroup, round-robin within it; round-robin across the
// whole group for non-partitionable predicates), with private
// round-robin cursors. Hot keys that ContRand scattered re-concentrate
// onto their hash subgroup, which stays correct because hot-key probes
// broadcast.
func (e *Engine) assignFunc(members []int32, subgroups int) func(*tuple.Tuple) int32 {
	part := e.cfg.Predicate.Partitionable()
	rr := make([]uint64, subgroups+1)
	return func(t *tuple.Tuple) int32 {
		if !part {
			m := members[rr[0]%uint64(len(members))]
			rr[0]++
			return m
		}
		hash := t.Value(e.cfg.Predicate.IndexAttr(t.Rel)).Hash()
		sub := 0
		if subgroups > 1 {
			sub = int(hash % uint64(subgroups))
		}
		var subM []int32
		for i := sub; i < len(members); i += subgroups {
			subM = append(subM, members[i])
		}
		m := subM[rr[sub+1]%uint64(len(subM))]
		rr[sub+1]++
		return m
	}
}

// importForeign grafts sealed donor segments onto one surviving member
// and commits them to its checkpoint, retrying across checkpoint
// failures and cold replacements. The graft is idempotent per
// (origin, id), so re-running it against a recovered incarnation that
// already recovered the segments is a no-op.
func (e *Engine) importForeign(rel tuple.Relation, member int32, segs []index.Segment) error {
	var lastErr error
	for try := 0; try < 60; try++ {
		if try > 0 {
			time.Sleep(10 * time.Millisecond)
		}
		e.mu.Lock()
		svc := e.joinerByIDLocked(rel, member)
		e.mu.Unlock()
		if svc == nil {
			lastErr = fmt.Errorf("core: migration recipient %s-%d not in layout", rel, member)
			continue
		}
		if err := svc.ImportForeign(segs); err != nil {
			// Structural rejection (codec, identity): retrying cannot help.
			return err
		}
		// If the member was cold-replaced the graft went into a discarded
		// core; check identity before committing, and again after — a
		// replacement recovers from the committed checkpoint, so only a
		// commit observed by the same incarnation proves durability.
		e.mu.Lock()
		same := e.joinerByIDLocked(rel, member) == svc
		e.mu.Unlock()
		if !same {
			lastErr = fmt.Errorf("core: recipient %s-%d replaced mid-import", rel, member)
			continue
		}
		if err := svc.CheckpointNow(); err != nil {
			lastErr = err
			continue
		}
		e.mu.Lock()
		same = e.joinerByIDLocked(rel, member) == svc
		e.mu.Unlock()
		if same {
			return nil
		}
		lastErr = fmt.Errorf("core: recipient %s-%d replaced during import commit", rel, member)
	}
	return lastErr
}

// ColdCrashDonor simulates losing the machine of a joiner that is
// currently a migration donor (for fault testing): its service stops,
// its in-memory core is discarded, and after down a fresh incarnation
// with the same id recovers from its checkpoint store and re-attaches
// to the same queues. The running migration observes the replacement
// through its Donor re-resolution and simply keeps polling — with
// checkpointing configured the migration still completes with an exact
// result multiset.
func (e *Engine) ColdCrashDonor(rel tuple.Relation, down time.Duration) error {
	e.mu.Lock()
	var d *migratingDonor
	for _, m := range e.migrating {
		if m.rel == rel {
			d = m
			break
		}
	}
	e.mu.Unlock()
	if d == nil {
		return fmt.Errorf("core: no migrating %s donor", rel)
	}
	return e.coldReplaceDonor(d, down)
}

// coldReplaceDonor is the shared donor replacement path of
// ColdCrashDonor and the supervisor.
func (e *Engine) coldReplaceDonor(d *migratingDonor, down time.Duration) error {
	rel := d.rel
	e.mu.Lock()
	old := d.svc
	e.mu.Unlock()
	if old != nil {
		old.Stop()
	}
	if down > 0 {
		time.Sleep(down)
	}
	e.mu.Lock()
	svc, err := e.buildJoinerLocked(rel, d.id)
	routerIDs := make([]int32, 0, len(e.routers))
	for _, r := range e.routers {
		routerIDs = append(routerIDs, r.ID())
	}
	e.mu.Unlock()
	if err != nil {
		return err
	}
	if err := e.cfg.Restart.Run(svc.Start); err != nil {
		return err
	}
	for _, rid := range routerIDs {
		svc.AddRouter(rid)
	}
	e.mu.Lock()
	d.svc = svc
	e.mu.Unlock()
	return nil
}
