package core

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/faults"
	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/topo"
	"bistream/internal/tuple"
	"bistream/internal/wire"
)

// ingestRetry publishes t into the engine, retrying on transient
// failure (injected drop, partition, broker outage) until the deadline.
// This is the contract a real stream source keeps under at-least-once:
// retry until acknowledged, and let the pipeline's dedup absorb the
// duplicates a retried-but-actually-delivered publish creates.
func ingestRetry(t *testing.T, e *Engine, tp *tuple.Tuple, deadline time.Time) {
	t.Helper()
	for {
		err := e.Ingest(tp)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest of seq %d did not succeed before deadline: %v", tp.Seq, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestEngineExactlyOnceUnderFaultsAndCrashes is the crash-safety chaos
// test: the broker fabric drops, duplicates, delays and (on the entry
// exchange) reorders messages, the network partitions twice, and a
// joiner and a router are crash-restarted mid-run — yet every join
// result must be produced exactly once. The equi predicate keeps
// routing deterministic across redeliveries (hash routing sends a
// retried tuple to the same member, where the idempotency filter can
// see the first attempt); random routing would re-roll the member and
// turn retries into cross-member duplicates no per-core filter catches.
func TestEngineExactlyOnceUnderFaultsAndCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			runCrashChaos(t, seed)
		})
	}
}

func runCrashChaos(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reg := metrics.NewRegistry()
	inner := broker.New(nil)
	defer inner.Close()
	f := faults.Wrap(inner, faults.Config{
		Seed:    seed,
		Metrics: reg,
		Default: faults.Rule{Drop: 0.03, Dup: 0.03, Delay: 0.05, MaxDelay: time.Millisecond},
		PerExchange: map[string]faults.Rule{
			// Reordering is only sound before stamping (see faults doc).
			topo.EntryExchange: {Drop: 0.03, Dup: 0.03, Reorder: 0.05},
		},
	})

	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		Routers:   2,
		RJoiners:  2,
		SJoiners:  2,
		Broker:    f,
		Metrics:   reg,
	}, col)

	deadline := time.Now().Add(60 * time.Second)
	var rs, ss []*tuple.Tuple
	seq := uint64(1)
	ingestBatch := func(n int) {
		for i := 0; i < n; i++ {
			ts := int64(len(rs)+len(ss)) * 5
			r := tuple.New(tuple.R, seq, ts, tuple.Int(rng.Int63n(20)))
			seq++
			s := tuple.New(tuple.S, seq, ts, tuple.Int(rng.Int63n(20)))
			seq++
			rs, ss = append(rs, r), append(ss, s)
			ingestRetry(t, e, r, deadline)
			ingestRetry(t, e, s, deadline)
		}
	}

	for round := 0; round < 6; round++ {
		ingestBatch(30)
		switch round {
		case 1:
			if err := e.CrashJoiner(tuple.R, rng.Intn(2), 20*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		case 2:
			f.Cut(50 * time.Millisecond)
		case 3:
			if err := e.CrashRouter(rng.Intn(2), 20*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		case 4:
			// Partition while a joiner is down: publishes fail, the
			// survivor's results queue up in its retry backlog.
			f.Cut(50 * time.Millisecond)
			if err := e.CrashJoiner(tuple.S, rng.Intn(2), 30*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Heal: stop injecting, flush held reordered messages, and wait for
	// the counters to stop moving. Quiesce's exact equalities are
	// unusable here — duplicated deliveries inflate routed past
	// tuples_in permanently.
	f.Disable()
	if err := f.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := e.Settle(300*time.Millisecond, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "crash-chaos")

	// The run must actually have exercised the fault machinery, and the
	// recovery counters must show the suppression work happened.
	counter := func(name string) int64 {
		v, _ := reg.Value(name)
		return int64(v)
	}
	if counter("faults.drop") == 0 || counter("faults.dup") == 0 {
		t.Errorf("fault injection did not fire: drop=%d dup=%d",
			counter("faults.drop"), counter("faults.dup"))
	}
	var deduped int64
	for _, rel := range []tuple.Relation{tuple.R, tuple.S} {
		for _, st := range e.JoinerStats(rel) {
			deduped += st.Deduped
		}
	}
	if deduped == 0 {
		t.Error("no redelivered tuple was suppressed — dedup untested by this run")
	}
}

// TestEngineExactlyOnceAcrossBrokerRestart kills the broker daemon
// (server and durable broker) mid-join and restarts it on the same
// address and journal directory. The reconnecting wire client must
// resume on its own — re-dial, re-declare topology, re-attach
// consumers — and the join must come out exactly-once: unacked
// deliveries at the crash are requeued by the journal and suppressed by
// the joiner/sink dedup filters on redelivery.
func TestEngineExactlyOnceAcrossBrokerRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("broker restart run")
	}
	dir := t.TempDir()
	b, err := broker.NewDurable(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(b, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := wire.Connect(wire.Config{
		Addr:           addr.String(),
		Reconnect:      true,
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
		Seed:           1,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		RJoiners:  2,
		SJoiners:  2,
		Broker:    client,
	}, col)

	deadline := time.Now().Add(60 * time.Second)
	rs, ss, all := makeWorkload(120, 10, 5, 11)
	for i, tp := range all {
		if i == len(all)/2 {
			// Crash the broker daemon mid-stream: connections drop,
			// unacked deliveries are requeued into the journal.
			srv.Close()
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			b2, err := broker.NewDurable(nil, dir)
			if err != nil {
				t.Fatal(err)
			}
			defer b2.Close()
			srv2 := wire.NewServer(b2, t.Logf)
			if _, err := listenRetry(srv2, addr.String()); err != nil {
				t.Fatal(err)
			}
			defer srv2.Close()
		}
		ingestRetry(t, e, tp, deadline)
	}
	// Recovery budget: the pipeline must settle — reconnected, replayed,
	// redelivered, deduped — well within the suite's patience.
	if err := e.Settle(300*time.Millisecond, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "broker-restart")
	if client.Generation() < 2 {
		t.Errorf("client generation %d: reconnect did not happen", client.Generation())
	}
}

// listenRetry rebinds addr, retrying briefly in case the closed
// listener's port is still in TIME_WAIT hand-back.
func listenRetry(srv *wire.Server, addrStr string) (net.Addr, error) {
	var lastErr error
	for i := 0; i < 50; i++ {
		addr, err := srv.Listen(addrStr)
		if err == nil {
			return addr, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return nil, lastErr
}
