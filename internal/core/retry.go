package core

import (
	"math/rand"
	"time"
)

// RetryPolicy governs how the engine's supervision paths (CrashJoiner,
// ColdCrashJoiner, CrashRouter, the Supervisor) retry a service start
// that races a partition or broker outage: giving up on the first
// failed declare would turn a transient fault into a permanently
// missing member. Retries back off exponentially with jitter — the same
// shape as wire.Client's reconnect policy, so a fleet of members
// restarting after a shared outage spreads its declare storm instead of
// thundering in lockstep.
type RetryPolicy struct {
	// Deadline bounds the total time spent retrying (default 15s).
	Deadline time.Duration
	// InitialBackoff is the first retry delay (default 10ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
}

// DefaultRetryPolicy is the policy used when a zero RetryPolicy is
// configured.
var DefaultRetryPolicy = RetryPolicy{
	Deadline:       15 * time.Second,
	InitialBackoff: 10 * time.Millisecond,
	MaxBackoff:     time.Second,
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Deadline <= 0 {
		p.Deadline = DefaultRetryPolicy.Deadline
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = DefaultRetryPolicy.InitialBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetryPolicy.MaxBackoff
	}
	return p
}

// Run invokes op until it succeeds or the deadline passes, sleeping a
// jittered backoff between attempts. The final attempt's error is
// returned; each delay is drawn uniformly from [backoff/2, backoff)
// like wire.Client's reconnect jitter.
func (p RetryPolicy) Run(op func() error) error {
	p = p.withDefaults()
	deadline := time.Now().Add(p.Deadline)
	backoff := p.InitialBackoff
	for {
		err := op()
		if err == nil || time.Now().After(deadline) {
			return err
		}
		time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1)))
		if backoff = 2 * backoff; backoff > p.MaxBackoff {
			backoff = p.MaxBackoff
		}
	}
}
