package core

import (
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/broker/replica"
	"bistream/internal/faults"
	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/topo"
	"bistream/internal/tuple"
	"bistream/internal/wire"
)

// reserveAddr grabs and releases a loopback port so a replica node can
// bind it a moment later; the peer set needs addresses up front.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startReplicaGroup brings up size replica nodes with chaos-friendly
// timings and returns them along with their client addresses.
func startReplicaGroup(t *testing.T, size int, seed int64) ([]*replica.Node, []string) {
	t.Helper()
	peers := make(map[string]string, size)
	ids := make([]string, 0, size)
	for i := 0; i < size; i++ {
		id := fmt.Sprintf("n%d", i+1)
		ids = append(ids, id)
		peers[id] = reserveAddr(t)
	}
	nodes := make([]*replica.Node, 0, size)
	clientAddrs := make([]string, 0, size)
	for i, id := range ids {
		n, err := replica.NewNode(replica.Config{
			ID:                id,
			Dir:               t.TempDir(),
			ClientAddr:        "127.0.0.1:0",
			ReplAddr:          peers[id],
			Peers:             peers,
			Quorum:            2,
			HeartbeatInterval: 10 * time.Millisecond,
			LeaseTimeout:      100 * time.Millisecond,
			ElectionTimeout:   150 * time.Millisecond,
			AckTimeout:        5 * time.Second,
			MaxSegmentBytes:   64 << 10, // roll segments during the run
			Seed:              seed*100 + int64(i+1),
			Logf:              t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Kill)
		nodes = append(nodes, n)
		clientAddrs = append(clientAddrs, n.ClientAddr().String())
	}
	return nodes, clientAddrs
}

// TestEngineExactlyOnceAcrossLeaderFailover is the broker-SPOF chaos
// test: the engine runs a windowed stream join against a three-node
// replica group through a faulty fabric (drops, duplicates, delays,
// entry reordering, and two full partitions), and the replica leader is
// cold-killed mid-join. The surviving followers elect the most
// caught-up replica, the multi-address wire client re-probes its way to
// it, and the join must still come out exactly once — every
// acknowledged tuple joined, no result duplicated or lost.
func TestEngineExactlyOnceAcrossLeaderFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second replica failover chaos run")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runReplicaFailoverChaos(t, seed)
		})
	}
}

func runReplicaFailoverChaos(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reg := metrics.NewRegistry()
	nodes, clientAddrs := startReplicaGroup(t, 3, seed)
	if _, err := replica.WaitLeader(nodes, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	client, err := wire.Connect(wire.Config{
		Addrs:          clientAddrs,
		Reconnect:      true,
		DialTimeout:    time.Second,
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
		Seed:           seed,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	f := faults.Wrap(client, faults.Config{
		Seed:    seed,
		Metrics: reg,
		Default: faults.Rule{Drop: 0.03, Dup: 0.03, Delay: 0.05, MaxDelay: time.Millisecond},
		PerExchange: map[string]faults.Rule{
			topo.EntryExchange: {Drop: 0.03, Dup: 0.03, Reorder: 0.05},
		},
	})

	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    time.Minute,
		Routers:   2,
		RJoiners:  2,
		SJoiners:  2,
		Shards:    3,
		Broker:    f,
		Metrics:   reg,
	}, col)

	deadline := time.Now().Add(120 * time.Second)
	var rs, ss []*tuple.Tuple
	seq := uint64(1)
	ingestBatch := func(n int) {
		for i := 0; i < n; i++ {
			ts := int64(len(rs)+len(ss)) * 5
			r := tuple.New(tuple.R, seq, ts, tuple.Int(rng.Int63n(20)))
			seq++
			s := tuple.New(tuple.S, seq, ts, tuple.Int(rng.Int63n(20)))
			seq++
			rs, ss = append(rs, r), append(ss, s)
			ingestRetry(t, e, r, deadline)
			ingestRetry(t, e, s, deadline)
		}
	}

	var killed *replica.Node
	for round := 0; round < 5; round++ {
		ingestBatch(20)
		switch round {
		case 1:
			f.Cut(50 * time.Millisecond)
		case 2:
			// The tentpole event: cold-kill the broker leader mid-join.
			leader, err := replica.WaitLeader(nodes, 10*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			killed = leader
			t.Logf("cold-killing leader %s (term %d, lsn %d)", leader.ID(), leader.Term(), leader.LastLSN())
			leader.Kill()
		case 3:
			// Partition while the group is one node down.
			f.Cut(50 * time.Millisecond)
		}
	}

	promoted, err := replica.WaitLeader(alive(nodes, killed), 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if promoted == killed {
		t.Fatal("killed leader still reported as leader")
	}
	t.Logf("promoted %s (term %d, lsn %d)", promoted.ID(), promoted.Term(), promoted.LastLSN())

	f.Disable()
	if err := f.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := e.Settle(300*time.Millisecond, 45*time.Second); err != nil {
		t.Fatal(err)
	}
	// Nothing may have been dead-lettered, and the entry queue must have
	// fully drained on the promoted broker — losses would otherwise be
	// indistinguishable from in-flight work.
	if pb := promoted.Broker(); pb != nil {
		if st, err := pb.QueueStats(broker.DeadQueue); err == nil && st.Ready > 0 {
			t.Errorf("%d messages dead-lettered during failover", st.Ready)
		}
		if st, err := pb.QueueStats(topo.EntryQueue); err != nil || st.Ready != 0 {
			t.Errorf("entry queue not drained on promoted broker: %+v (err %v)", st, err)
		}
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "replica-failover")

	// The run must have exercised both the fault machinery and an actual
	// client failover.
	counter := func(name string) int64 {
		v, _ := reg.Value(name)
		return int64(v)
	}
	if counter("faults.drop") == 0 || counter("faults.dup") == 0 {
		t.Errorf("fault injection did not fire: drop=%d dup=%d",
			counter("faults.drop"), counter("faults.dup"))
	}
	if client.Generation() < 2 {
		t.Errorf("client generation %d: no reconnect happened, failover untested", client.Generation())
	}
}

// alive filters the killed node out of the group.
func alive(nodes []*replica.Node, dead *replica.Node) []*replica.Node {
	out := make([]*replica.Node, 0, len(nodes))
	for _, n := range nodes {
		if n != dead {
			out = append(out, n)
		}
	}
	return out
}
