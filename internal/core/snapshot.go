package core

import (
	"bistream/internal/joiner"
	"bistream/internal/router"
	"bistream/internal/tuple"
)

// SnapshotSchemaVersion identifies the layout of Snapshot. It is bumped
// whenever a field changes meaning or is removed, so snapshots
// serialized by one build can be rejected (rather than misread) by
// another.
const SnapshotSchemaVersion = 1

// RouterView is one router instance's identity and counters.
type RouterView struct {
	ID int32 `json:"id"`
	router.Stats
}

// MemberView is one joiner-group member's identity and counters. ID is
// the member's protocol id, which also keys its registry subtree
// ("joiner.<rel>.<id>."); ids are assigned monotonically, so after
// scale-in they are not dense.
type MemberView struct {
	ID int32 `json:"id"`
	joiner.Stats
}

// Snapshot is a structured, versioned view of the whole engine taken at
// one instant: per-instance router and joiner views plus the engine's
// own aggregates. It replaces ad-hoc reads of the flat Stats struct;
// Stats and JoinerStats remain as shims over it.
type Snapshot struct {
	SchemaVersion int `json:"schema_version"`

	TuplesIn int64 `json:"tuples_in"` // tuples accepted by Ingest
	Results  int64 `json:"results"`   // join results seen by the sink

	Routers  []RouterView `json:"routers"`
	RJoiners []MemberView `json:"r_joiners"`
	SJoiners []MemberView `json:"s_joiners"`

	// Sealed counts scaled-in members still draining their window;
	// their counters are excluded from the member views.
	Sealed int `json:"sealed"`

	WindowBytes  int64 `json:"window_bytes"`  // resident window state, all members
	WindowTuples int   `json:"window_tuples"` // stored tuples, all members
}

// Snapshot reaps drained members and captures the engine's state. The
// per-service snapshots are taken sequentially, so cross-member sums
// are consistent only to within in-flight work.
func (e *Engine) Snapshot() Snapshot {
	e.Reap()
	e.mu.Lock()
	routers := append([]*router.Service(nil), e.routers...)
	sealed := len(e.sealed)
	e.mu.Unlock()
	snap := Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		TuplesIn:      e.tuplesIn.Value(),
		Results:       e.resultsN.Value(),
		Sealed:        sealed,
	}
	for _, r := range routers {
		snap.Routers = append(snap.Routers, RouterView{ID: r.ID(), Stats: r.Stats()})
	}
	snap.RJoiners = e.memberSnapshots(tuple.R)
	snap.SJoiners = e.memberSnapshots(tuple.S)
	for _, views := range [][]MemberView{snap.RJoiners, snap.SJoiners} {
		for _, m := range views {
			snap.WindowBytes += m.MemBytes
			snap.WindowTuples += m.WindowLen
		}
	}
	return snap
}

// memberSnapshots captures one group's per-member views outside e.mu
// (each Stats call takes the member service's own lock).
func (e *Engine) memberSnapshots(rel tuple.Relation) []MemberView {
	e.mu.Lock()
	js := append([]*joiner.Service(nil), *e.joinersLocked(rel)...)
	e.mu.Unlock()
	out := make([]MemberView, len(js))
	for i, j := range js {
		out[i] = MemberView{ID: j.ID(), Stats: j.Stats()}
	}
	return out
}
