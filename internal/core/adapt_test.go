package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/checkpoint"
	"bistream/internal/faults"
	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/topo"
	"bistream/internal/tuple"
)

// TestEngineAdaptiveRoutingMigratesHotKey drives the full detect→
// decide→move loop on a clean fabric: half the stream is one key, the
// tracker promotes it, and the adaptation controller must migrate the
// key's already-stored pile off its hash owner — after which every
// probe (including ones for the migrated history) still finds exactly
// its matches.
func TestEngineAdaptiveRoutingMigratesHotKey(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	reg := metrics.NewRegistry()
	e := startEngine(t, Config{
		Predicate:       pred,
		Window:          time.Minute,
		Routers:         2,
		Shards:          3,
		RJoiners:        3,
		SJoiners:        3,
		AdaptiveRouting: true,
		HotFraction:     0.05,
		Metrics:         reg,
	}, col)

	rng := rand.New(rand.NewSource(17))
	var rs, ss []*tuple.Tuple
	seq := uint64(1)
	gen := func(n int) {
		var batch []*tuple.Tuple
		for i := 0; i < n; i++ {
			key := int64(7)
			if rng.Float64() > 0.5 {
				key = rng.Int63n(1000) + 100
			}
			ts := int64(len(rs)) * 10
			r := tuple.New(tuple.R, seq, ts, tuple.Int(key))
			seq++
			s := tuple.New(tuple.S, seq, ts, tuple.Int(key))
			seq++
			rs, ss = append(rs, r), append(ss, s)
			batch = append(batch, r, s)
		}
		ingestAll(t, e, batch)
	}
	counter := func(name string) float64 {
		v, _ := reg.Value(name)
		return v
	}
	movedOut := func() float64 {
		var n float64
		for _, rel := range []tuple.Relation{tuple.R, tuple.S} {
			for id := 0; id < 3; id++ {
				n += counter(fmt.Sprintf("joiner.%s.%d.migrated_out_tuples", rel, id))
			}
		}
		return n
	}

	// Enough traffic to cross the tracker's sample floor with a pile of
	// the hot key already sitting on its hash owners.
	gen(400)
	deadline := time.Now().Add(30 * time.Second)
	for counter("router_adapt.key_migrations") < 2 || movedOut() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hot key never migrated: key_migrations=%v moved_out=%v failures=%v hot=%v",
				counter("router_adapt.key_migrations"), movedOut(),
				counter("router_adapt.move_failures"), e.HotKeys())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Probes issued after the move must find the grafted history.
	gen(150)
	if err := e.Quiesce(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "adaptive")
	if counter("router_adapt.moved_tuples") == 0 {
		t.Error("router_adapt.moved_tuples did not advance")
	}
}

// TestEngineAdaptivePinnedKeyMigrates covers the operator override: a
// manual hot pin flips placement without a tracker promotion, and the
// engine must still route the pile migration through the controller.
func TestEngineAdaptivePinnedKeyMigrates(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	reg := metrics.NewRegistry()
	e := startEngine(t, Config{
		Predicate:       pred,
		Window:          time.Minute,
		Shards:          3,
		RJoiners:        3,
		SJoiners:        3,
		AdaptiveRouting: true,
		Metrics:         reg,
	}, col)

	// A modest uniform workload: nothing promotes organically.
	rs, ss, all := makeWorkload(150, 12, 5, 21)
	ingestAll(t, e, all)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.PinHotKey(tuple.Int(3).Hash(), true); err != nil {
		t.Fatal(err)
	}
	counter := func(name string) float64 {
		v, _ := reg.Value(name)
		return v
	}
	deadline := time.Now().Add(20 * time.Second)
	for counter("router_adapt.key_migrations") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("pinned key never migrated: key_migrations=%v failures=%v",
				counter("router_adapt.key_migrations"), counter("router_adapt.move_failures"))
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Join correctness must hold across the pin-triggered move.
	rs2, ss2, all2 := makeWorkload(150, 12, 5, 22)
	for _, tp := range all2 {
		tp.Seq += 1 << 20 // disjoint seq space from the first workload
	}
	ingestAll(t, e, all2)
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := refJoin(append(rs, rs2...), append(ss, ss2...), pred, 60_000)
	verifyExactlyOnce(t, col.snapshot(), want, "pinned")
	if err := e.UnpinHotKey(tuple.Int(3).Hash()); err != nil {
		t.Fatal(err)
	}
}

// TestEngineAdaptiveRoutingValidation rejects the configuration the
// key migration cannot serve: without the ordering protocol there is
// no drain barrier.
func TestEngineAdaptiveRoutingValidation(t *testing.T) {
	if _, err := New(Config{
		Predicate: predicate.NewEqui(0, 0), Window: time.Minute,
		AdaptiveRouting: true, Unordered: true,
	}); err == nil {
		t.Error("AdaptiveRouting with Unordered accepted")
	}
	// AdaptiveRouting implies ContRand, so it inherits its constraint.
	if _, err := New(Config{
		Predicate: predicate.NewBand(0, 0, 1), Window: time.Minute,
		AdaptiveRouting: true,
	}); err == nil {
		t.Error("AdaptiveRouting with non-partitionable predicate accepted")
	}
}

// TestEngineKeyMigrationChaosColdKill is the hot-key tentpole chaos
// test: a skewed full-history join promotes one key, and while the
// controller is moving the key's pile the donor is cold-killed — core
// discarded, state recovered from its (tearing, failing) checkpoint
// store — with the broker fabric dropping, duplicating and delaying
// frames and a partition cut on top. The result multiset must still
// match the reference join exactly: no stored tuple lost, none
// double-probed into a duplicate result.
func TestEngineKeyMigrationChaosColdKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			runKeyMigrationChaos(t, seed)
		})
	}
}

func runKeyMigrationChaos(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reg := metrics.NewRegistry()
	inner := broker.New(nil)
	defer inner.Close()
	f := faults.Wrap(inner, faults.Config{
		Seed:    seed,
		Metrics: reg,
		Default: faults.Rule{Drop: 0.03, Dup: 0.03, Delay: 0.05, MaxDelay: time.Millisecond},
		PerExchange: map[string]faults.Rule{
			topo.EntryExchange: {Drop: 0.03, Dup: 0.03, Reorder: 0.05},
			// Key-migration frames ride the same transfer exchange as
			// whole-member migrations, hit harder than the rest.
			topo.MigrateExchange: {Drop: 0.15, Dup: 0.15},
		},
	})
	stores := &faults.StoreProvider{
		Inner:   checkpoint.NewMemProvider(),
		Seed:    seed,
		Rule:    faults.StoreRule{Tear: 0.08, Fail: 0.04},
		Metrics: reg,
	}

	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate:          pred,
		FullHistory:        true,
		Routers:            2,
		Shards:             3,
		RJoiners:           3,
		SJoiners:           2,
		AdaptiveRouting:    true,
		HotFraction:        0.05,
		Broker:             f,
		Metrics:            reg,
		Checkpoint:         stores,
		CheckpointInterval: 25 * time.Millisecond,
		MigrationTimeout:   60 * time.Second,
	}, col)

	deadline := time.Now().Add(120 * time.Second)
	const hotKey = int64(7)
	var rs, ss []*tuple.Tuple
	seq := uint64(1)
	ingestBatch := func(n int) {
		for i := 0; i < n; i++ {
			kr, ks := hotKey, hotKey
			if rng.Float64() > 0.5 {
				kr = rng.Int63n(20) + 100
			}
			if rng.Float64() > 0.5 {
				ks = rng.Int63n(20) + 100
			}
			ts := int64(len(rs)+len(ss)) * 5
			r := tuple.New(tuple.R, seq, ts, tuple.Int(kr))
			seq++
			s := tuple.New(tuple.S, seq, ts, tuple.Int(ks))
			seq++
			rs, ss = append(rs, r), append(ss, s)
			ingestRetry(t, e, r, deadline)
			ingestRetry(t, e, s, deadline)
		}
	}

	// Pile up the hot key on its hash owners and cross the tracker's
	// sample floor, checkpoints committing (and tearing) throughout.
	ingestBatch(300)
	for len(e.HotKeys()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hot key never promoted")
		}
		ingestBatch(20)
		time.Sleep(10 * time.Millisecond)
	}

	// Cold-kill the hot key's R hash owner while the controller is (or
	// is about to start) moving its pile, and cut the fabric on top. The
	// migration must ride through via donor re-resolution and retries.
	donorIdx := int(tuple.Int(hotKey).Hash() % 3)
	if err := e.ColdCrashJoiner(tuple.R, donorIdx, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	f.Cut(50 * time.Millisecond)
	ingestBatch(50)

	counter := func(name string) float64 {
		v, _ := reg.Value(name)
		return v
	}
	for counter("router_adapt.key_migrations") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("key migration never completed: key_migrations=%v failures=%v hot=%v",
				counter("router_adapt.key_migrations"),
				counter("router_adapt.move_failures"), e.HotKeys())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Probes after the move must find the migrated history.
	ingestBatch(50)

	f.Disable()
	if err := f.Settle(); err != nil {
		t.Fatal(err)
	}
	stores.Disable()
	if err := e.Settle(300*time.Millisecond, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, int64(1)<<62), "key-migration-chaos")

	if counter("faults.drop") == 0 || counter("faults.dup") == 0 {
		t.Errorf("fault injection did not fire: drop=%v dup=%v",
			counter("faults.drop"), counter("faults.dup"))
	}
	var movedOut float64
	for id := 0; id < 3; id++ {
		movedOut += counter(fmt.Sprintf("joiner.R.%d.migrated_out_tuples", id))
	}
	for id := 0; id < 2; id++ {
		movedOut += counter(fmt.Sprintf("joiner.S.%d.migrated_out_tuples", id))
	}
	if movedOut == 0 {
		t.Error("no tuple was moved out of a donor")
	}
	t.Logf("key_migrations=%v moved=%v failures=%v store_tear=%v",
		counter("router_adapt.key_migrations"), counter("router_adapt.moved_tuples"),
		counter("router_adapt.move_failures"), counter("faults.store_tear"))
}
