package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/checkpoint"
	"bistream/internal/faults"
	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/topo"
	"bistream/internal/tuple"
)

// TestEngineMigrationExactlyOnceUnderChaos is the migration tentpole
// chaos test: a full-history join scales in while the broker fabric
// drops, duplicates and delays (the migration exchange harder than the
// rest, so transfer frames tear and repeat), the checkpoint stores tear
// and fail writes, the network partitions mid-transfer, and the donor
// itself is cold-killed in the middle of its own migration — core
// discarded, state recovered from its checkpoint store. The result
// multiset must still match the full-history reference join exactly:
// zero lost, zero duplicated.
func TestEngineMigrationExactlyOnceUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			runMigrationChaos(t, seed)
		})
	}
}

func runMigrationChaos(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reg := metrics.NewRegistry()
	inner := broker.New(nil)
	defer inner.Close()
	f := faults.Wrap(inner, faults.Config{
		Seed:    seed,
		Metrics: reg,
		Default: faults.Rule{Drop: 0.03, Dup: 0.03, Delay: 0.05, MaxDelay: time.Millisecond},
		PerExchange: map[string]faults.Rule{
			topo.EntryExchange: {Drop: 0.03, Dup: 0.03, Reorder: 0.05},
			// Transfer frames ride the same faulty fabric, only worse:
			// drops force the coordinator's retransmit loop, duplicates
			// its frame dedup, and neither may corrupt the graft.
			topo.MigrateExchange: {Drop: 0.15, Dup: 0.15},
		},
	})
	stores := &faults.StoreProvider{
		Inner:   checkpoint.NewMemProvider(),
		Seed:    seed,
		Rule:    faults.StoreRule{Tear: 0.08, Fail: 0.04},
		Metrics: reg,
	}

	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	e := startEngine(t, Config{
		Predicate:          pred,
		FullHistory:        true,
		Routers:            2,
		Shards:             3,
		RJoiners:           3,
		SJoiners:           2,
		Broker:             f,
		Metrics:            reg,
		Checkpoint:         stores,
		CheckpointInterval: 25 * time.Millisecond,
		MigrationTimeout:   60 * time.Second,
	}, col)

	deadline := time.Now().Add(90 * time.Second)
	var rs, ss []*tuple.Tuple
	seq := uint64(1)
	ingestBatch := func(n int) {
		for i := 0; i < n; i++ {
			ts := int64(len(rs)+len(ss)) * 5
			r := tuple.New(tuple.R, seq, ts, tuple.Int(rng.Int63n(20)))
			seq++
			s := tuple.New(tuple.S, seq, ts, tuple.Int(rng.Int63n(20)))
			seq++
			rs, ss = append(rs, r), append(ss, s)
			ingestRetry(t, e, r, deadline)
			ingestRetry(t, e, s, deadline)
		}
	}

	// Accumulate history on all three R members before the shrink, with
	// checkpoints committing (and tearing) while faults are active.
	for round := 0; round < 3; round++ {
		ingestBatch(30)
		time.Sleep(60 * time.Millisecond)
	}

	// Shrink R 3 -> 2 with the fabric still faulty; cold-kill the donor
	// mid-migration and partition the network on top.
	scaleDone := make(chan error, 1)
	go func() { scaleDone <- e.ScaleJoiners(tuple.R, 2) }()
	time.Sleep(10 * time.Millisecond)
	if err := e.ColdCrashDonor(tuple.R, 20*time.Millisecond); err != nil {
		// The migration may already have completed; the kill is then moot.
		t.Logf("donor cold-kill skipped: %v", err)
	}
	f.Cut(50 * time.Millisecond)
	ingestBatch(30)
	if err := <-scaleDone; err != nil {
		t.Fatalf("scale-in with migration: %v", err)
	}
	if got := e.NumJoiners(tuple.R); got != 2 {
		t.Fatalf("NumJoiners(R) = %d after scale-in, want 2", got)
	}

	// Post-migration probes must find the migrated history.
	ingestBatch(30)

	f.Disable()
	if err := f.Settle(); err != nil {
		t.Fatal(err)
	}
	stores.Disable()
	if err := e.Settle(300*time.Millisecond, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, int64(1)<<62), "migration-chaos")

	counter := func(name string) int64 {
		v, _ := reg.Value(name)
		return int64(v)
	}
	if counter("faults.drop") == 0 || counter("faults.dup") == 0 {
		t.Errorf("fault injection did not fire: drop=%d dup=%d",
			counter("faults.drop"), counter("faults.dup"))
	}
	if counter("engine.migrations") == 0 {
		t.Error("no migration completed")
	}
	var grafted int64
	for id := 0; id < 3; id++ {
		grafted += counter(fmt.Sprintf("joiner.R.%d.migrated_in_tuples", id))
	}
	if grafted == 0 {
		t.Error("no tuple was grafted onto a survivor")
	}
	t.Logf("migrations=%d migrated_tuples=%d grafted_seen=%d store_tear=%d",
		counter("engine.migrations"), counter("engine.migrated_tuples"),
		grafted, counter("faults.store_tear"))
}

// TestEngineWindowedScaleInMigrates covers Config.MigrateOnShrink: a
// windowed join shrinks by migration instead of seal-and-drain, so the
// member count drops immediately, no sealed member lingers, and the
// join stays exactly-once.
func TestEngineWindowedScaleInMigrates(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	reg := metrics.NewRegistry()
	e := startEngine(t, Config{
		Predicate:       pred,
		Window:          time.Minute,
		Shards:          3,
		RJoiners:        3,
		SJoiners:        2,
		Metrics:         reg,
		MigrateOnShrink: true,
	}, col)

	rs, ss, all := makeWorkload(120, 10, 5, 7)
	half := len(all) / 2
	ingestAll(t, e, all[:half])
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.ScaleJoiners(tuple.R, 2); err != nil {
		t.Fatalf("windowed migrating scale-in: %v", err)
	}
	if got := e.NumJoiners(tuple.R); got != 2 {
		t.Fatalf("NumJoiners(R) = %d, want 2", got)
	}
	if v, _ := reg.Value("engine.sealed"); v != 0 {
		t.Errorf("migrating scale-in left %v sealed members", v)
	}
	ingestAll(t, e, all[half:])
	if err := e.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyExactlyOnce(t, col.snapshot(), refJoin(rs, ss, pred, 60_000), "windowed-migrate")
	if v, _ := reg.Value("engine.migrations"); v == 0 {
		t.Error("engine.migrations did not advance")
	}
}

// TestEngineReapTickerRetiresSealed is the regression test for the
// sealed-joiner leak: Reap used to run only from Stats, so an engine
// nobody polled kept drained members (and their queues) forever. The
// reap ticker must retire them without any Stats call.
func TestEngineReapTickerRetiresSealed(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	col := newCollector()
	reg := metrics.NewRegistry()
	e := startEngine(t, Config{
		Predicate: pred,
		Window:    100 * time.Millisecond,
		Shards:    3,
		RJoiners:  2,
		Metrics:   reg,
	}, col)

	ingestAll(t, e, []*tuple.Tuple{tuple.New(tuple.R, 1, 0, tuple.Int(1))})
	if err := e.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.ScaleJoiners(tuple.R, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("engine.sealed"); v != 1 {
		t.Fatalf("expected 1 sealed member, gauge reads %v", v)
	}
	// Deadline is Window + 2s; the ticker fires every 500ms. Poll the
	// gauge only — deliberately never calling Stats or Reap.
	waitUntil := time.Now().Add(10 * time.Second)
	for time.Now().Before(waitUntil) {
		if v, _ := reg.Value("engine.sealed"); v == 0 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("sealed member was never reaped without a Stats call")
}
