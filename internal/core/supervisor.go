package core

import (
	"fmt"
	"time"

	"bistream/internal/joiner"
	"bistream/internal/metrics"
	"bistream/internal/tuple"
)

// SupervisorConfig tunes the engine's joiner supervision loop.
type SupervisorConfig struct {
	// Interval is the health-check period (default 500ms).
	Interval time.Duration
	// Stall is how long a member may sit on a non-empty queue backlog
	// without its received counter advancing before it is declared stuck
	// and replaced (default 5s). It must comfortably exceed the
	// checkpoint interval so a member mid-checkpoint is never condemned.
	Stall time.Duration
	// OnReplace, when set, is invoked after each replacement (testing,
	// alerting).
	OnReplace func(rel tuple.Relation, id int32)
}

func (c *SupervisorConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Stall <= 0 {
		c.Stall = 5 * time.Second
	}
}

// Supervisor watches the joiner groups and replaces members that stop
// making progress. Health is judged from the outside, through the
// metrics registry and broker queue statistics rather than calls into
// the member itself — a wedged service cannot be trusted to answer its
// own health check: a member is stuck when its durable queues hold a
// backlog (ready or unacked deliveries) while its received counter has
// not moved for a full Stall period. Replacement goes through
// ColdCrashJoiner when the engine has a checkpoint provider (fresh
// core, state recovered from the member's checkpoint store plus queue
// redelivery) and through the warm CrashJoiner restart otherwise.
type Supervisor struct {
	e    *Engine
	cfg  SupervisorConfig
	stop chan struct{}
	done chan struct{}

	checks       *metrics.Counter // engine.supervisor_checks
	replacements *metrics.Counter // engine.supervisor_replacements
}

// supHealth is the per-member progress memory between checks.
type supHealth struct {
	received int64
	since    time.Time
}

// Supervise launches a supervision loop over the engine's joiners.
// Call Stop on the returned Supervisor before stopping the engine.
func (e *Engine) Supervise(cfg SupervisorConfig) *Supervisor {
	cfg.applyDefaults()
	s := &Supervisor{
		e:            e,
		cfg:          cfg,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		checks:       e.reg.Counter("engine.supervisor_checks"),
		replacements: e.reg.Counter("engine.supervisor_replacements"),
	}
	go s.run()
	return s
}

// Stop terminates the supervision loop and waits for it to exit.
func (s *Supervisor) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

func (s *Supervisor) run() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	state := make(map[string]supHealth)
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.check(state)
		}
	}
}

// check inspects every active member once and replaces the stuck ones.
func (s *Supervisor) check(state map[string]supHealth) {
	s.checks.Inc()
	e := s.e
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	type member struct {
		rel   tuple.Relation
		svc   *joiner.Service
		donor bool
	}
	var members []member
	for _, svc := range e.rJoiners {
		members = append(members, member{tuple.R, svc, false})
	}
	for _, svc := range e.sJoiners {
		members = append(members, member{tuple.S, svc, false})
	}
	// Migration donors are supervised too: a wedged donor would stall
	// the migration's drain or cut-over barrier forever.
	for _, m := range e.migrating {
		if m.svc != nil {
			members = append(members, member{m.rel, m.svc, true})
		}
	}
	e.mu.Unlock()

	now := time.Now()
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		id := m.svc.ID()
		key := fmt.Sprintf("%s-%d", m.rel, id)
		seen[key] = struct{}{}
		// Progress is read from the registry (atomic counters shared by
		// every incarnation of the member id), never from the service.
		recv, _ := e.reg.Value(m.svc.Core().MetricsPrefix() + "received")
		backlog := s.queueBacklog(m.svc)
		h, known := state[key]
		if !known || int64(recv) != h.received || backlog == 0 {
			state[key] = supHealth{received: int64(recv), since: now}
			continue
		}
		if now.Sub(h.since) < s.cfg.Stall {
			continue
		}
		if m.donor {
			s.replaceDonor(m.svc)
		} else {
			s.replace(m.rel, m.svc)
		}
		state[key] = supHealth{received: int64(recv), since: now}
		if s.cfg.OnReplace != nil {
			s.cfg.OnReplace(m.rel, id)
		}
	}
	// Forget members that scaled away so their ids can return cleanly.
	for key := range state {
		if _, ok := seen[key]; !ok {
			delete(state, key)
		}
	}
}

// queueBacklog sums the deliveries waiting on (ready) or held by
// (unacked) the member's two queues. Stats errors — a queue deleted
// mid-check by scale-in — count as no backlog.
func (s *Supervisor) queueBacklog(svc *joiner.Service) int64 {
	var backlog int64
	storeQ, joinQ := svc.Queues()
	for _, q := range []string{storeQ, joinQ} {
		st, err := s.e.client.QueueStats(q)
		if err != nil {
			continue
		}
		backlog += int64(st.Ready) + int64(st.Unacked)
	}
	return backlog
}

// replace restarts a stuck member, resolving its current group position
// at the last moment (scaling may have shifted it while the check ran).
func (s *Supervisor) replace(rel tuple.Relation, svc *joiner.Service) {
	e := s.e
	e.mu.Lock()
	idx := -1
	for i, cur := range *e.joinersLocked(rel) {
		if cur == svc {
			idx = i
			break
		}
	}
	e.mu.Unlock()
	if idx < 0 {
		return // scaled away between check and replace
	}
	var err error
	if e.cfg.Checkpoint != nil {
		err = e.ColdCrashJoiner(rel, idx, 0)
	} else {
		err = e.CrashJoiner(rel, idx, 0)
	}
	if err == nil {
		s.replacements.Inc()
	}
}

// replaceDonor restarts a stuck migration donor, resolved by service
// identity so a parked donor next to an active one is never confused
// with it. With a checkpoint provider the donor is cold-replaced (the
// running migration re-resolves it and keeps polling); without one only
// a warm restart preserves its state.
func (s *Supervisor) replaceDonor(svc *joiner.Service) {
	e := s.e
	e.mu.Lock()
	var d *migratingDonor
	for _, m := range e.migrating {
		if m.svc == svc {
			d = m
			break
		}
	}
	e.mu.Unlock()
	if d == nil {
		return // migration finished between check and replace
	}
	var err error
	if e.cfg.Checkpoint != nil {
		err = e.coldReplaceDonor(d, 0)
	} else {
		svc.Stop()
		err = e.cfg.Restart.Run(svc.Start)
	}
	if err == nil {
		s.replacements.Inc()
	}
}
