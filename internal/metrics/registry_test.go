package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c1.Add(3)
	c2 := r.Counter("a.b")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	if c2.Value() != 3 {
		t.Errorf("Value = %d, want 3", c2.Value())
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("requesting a counter name as a gauge did not panic")
		}
		msg, ok := rec.(string)
		if !ok || !strings.Contains(msg, `"x"`) {
			t.Errorf("panic message %v does not name the colliding instrument", rec)
		}
	}()
	r.Gauge("x")
}

func TestRegistryValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(42)
	r.GaugeFunc("gf", func() float64 { return 2.5 })
	if v, ok := r.Value("c"); !ok || v != 7 {
		t.Errorf("Value(c) = %v,%v", v, ok)
	}
	if v, ok := r.Value("g"); !ok || v != 42 {
		t.Errorf("Value(g) = %v,%v", v, ok)
	}
	if v, ok := r.Value("gf"); !ok || v != 2.5 {
		t.Errorf("Value(gf) = %v,%v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("Value(missing) reported ok")
	}
}

func TestRegistryUnregisterPrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("joiner.R.0.stored")
	r.Counter("joiner.R.0.probed")
	r.Counter("joiner.R.1.stored")
	r.Counter("router.0.routed")
	r.UnregisterPrefix("joiner.R.0.")
	names := r.Names()
	want := []string{"joiner.R.1.stored", "router.0.routed"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestRegistryGatherSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.depth").Set(5)
	r.Histogram("c.lat").Observe(100)
	r.Meter("d.rate", time.Second).Observe(time.Now(), 1)
	r.AddCollector(func(emit func(Sample)) {
		emit(Sample{Name: "e.dyn", Kind: KindGaugeMetric, Value: 9})
	})
	samples := r.Gather()
	if len(samples) != 5 {
		t.Fatalf("Gather returned %d samples, want 5", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i-1].Name > samples[i].Name {
			t.Fatalf("samples not sorted: %q before %q", samples[i-1].Name, samples[i].Name)
		}
	}
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if s := byName["c.lat"]; s.Hist == nil || s.Hist.Count != 1 {
		t.Errorf("histogram sample missing snapshot: %+v", s)
	}
	if s := byName["e.dyn"]; s.Value != 9 {
		t.Errorf("collector sample = %+v", s)
	}
}

// TestRegistryGaugeFuncMayLock proves gauge funcs run outside the
// registry lock: a func that itself gathers a second registry (or takes
// another lock) must not deadlock.
func TestRegistryGaugeFuncMayLock(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	r.GaugeFunc("locked", func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return 1
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Gather()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Gather deadlocked on a locking gauge func")
	}
}

// TestHistogramQuantilesConcurrent drives a registry histogram from
// many writers while a reader snapshots it, then checks the quantiles
// land near the known uniform distribution.
func TestHistogramQuantilesConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	const writers, per = 8, 20_000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot() // must not race or corrupt
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(1 + rng.Int63n(1000)) // uniform [1,1000]
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	snap := h.Snapshot()
	if snap.Count != writers*per {
		t.Fatalf("Count = %d, want %d", snap.Count, writers*per)
	}
	// The log-bucketed histogram is approximate; uniform [1,1000]
	// quantiles should land within a bucket's relative error.
	checks := []struct {
		name      string
		got, want int64
	}{
		{"P50", snap.P50, 500},
		{"P95", snap.P95, 950},
		{"P99", snap.P99, 990},
	}
	for _, c := range checks {
		lo, hi := c.want*7/10, c.want*13/10
		if c.got < lo || c.got > hi {
			t.Errorf("%s = %d, want within [%d,%d]", c.name, c.got, lo, hi)
		}
	}
	if snap.Min < 1 || snap.Max > 1000 {
		t.Errorf("Min/Max = %d/%d outside observed range", snap.Min, snap.Max)
	}
}

func TestTracerSampling(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, 4)
	stamped := 0
	for i := 0; i < 16; i++ {
		if tr.Stamp() != 0 {
			stamped++
		}
	}
	if stamped != 4 {
		t.Errorf("stamped %d of 16 with every=4, want 4", stamped)
	}
	tr.Observe(StageRoute, time.Now().Add(-time.Millisecond).UnixNano())
	if snap := tr.StageSnapshot(StageRoute); snap.Count != 1 {
		t.Errorf("StageRoute count = %d, want 1", snap.Count)
	}
	tr.Observe(StageProbe, 0) // unsampled tuple: must be a no-op
	if snap := tr.StageSnapshot(StageProbe); snap.Count != 0 {
		t.Errorf("StageProbe count = %d, want 0", snap.Count)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Stamp() != 0 {
		t.Error("nil tracer stamped")
	}
	tr.Observe(StageE2E, 123) // must not panic
}
