package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
}

func TestMeterConvergesToConstantRate(t *testing.T) {
	m := NewMeter(5 * time.Second)
	now := time.Unix(0, 0)
	// 100 events/sec for 30 seconds, several decay horizons long.
	for i := 0; i < 3000; i++ {
		now = now.Add(10 * time.Millisecond)
		m.Observe(now, 1)
	}
	if r := m.Rate(); math.Abs(r-100) > 15 {
		t.Errorf("Rate = %v, want ≈100", r)
	}
	if m.Total() != 3000 {
		t.Errorf("Total = %d", m.Total())
	}
}

func TestMeterTracksRateChange(t *testing.T) {
	m := NewMeter(2 * time.Second)
	now := time.Unix(0, 0)
	for i := 0; i < 200; i++ {
		now = now.Add(10 * time.Millisecond)
		m.Observe(now, 1) // 100/s
	}
	for i := 0; i < 400; i++ {
		now = now.Add(5 * time.Millisecond)
		m.Observe(now, 1) // 200/s for 2s
	}
	if r := m.Rate(); r < 140 {
		t.Errorf("Rate = %v, should have risen toward 200", r)
	}
}

func TestMeterSameInstantBurst(t *testing.T) {
	m := NewMeter(time.Second)
	now := time.Unix(0, 0)
	m.Observe(now, 1)
	m.Observe(now, 5) // zero dt must not divide by zero
	if m.Total() != 6 {
		t.Errorf("Total = %d", m.Total())
	}
	_ = m.Rate()
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 0.01 {
		t.Errorf("Mean = %v", m)
	}
	p50 := h.Quantile(0.5)
	if p50 < 40 || p50 > 61 {
		t.Errorf("P50 = %d, want ≈50", p50)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 10000; i++ {
		h.Observe(i * 1000) // 0 .. ~10M
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		want := q * 10000 * 1000
		got := float64(h.Quantile(q))
		if want > 0 && math.Abs(got-want)/want > 0.10 {
			t.Errorf("Quantile(%v) = %v, want ≈%v", q, got, want)
		}
	}
}

func TestHistogramClampsAndBounds(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if h.Min() != 0 {
		t.Errorf("negative observation should clamp: min=%d", h.Min())
	}
	h.Observe(math.MaxInt64)
	if h.Max() != math.MaxInt64 {
		t.Errorf("Max = %d", h.Max())
	}
	if q := h.Quantile(2); q > math.MaxInt64 || q < 0 {
		t.Errorf("Quantile(2) out of bounds: %d", q)
	}
	_ = h.Quantile(-1)
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	f := func(vals []uint32) bool {
		for _, v := range vals {
			h.Observe(int64(v))
		}
		last := int64(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			cur := h.Quantile(q)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(10 * time.Millisecond)
	h.ObserveDuration(20 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Count != 2 {
		t.Errorf("Count = %d", snap.Count)
	}
	if snap.Min > snap.P50 || snap.P50 > snap.Max {
		t.Errorf("snapshot not ordered: %+v", snap)
	}
}

func TestBucketLowMonotone(t *testing.T) {
	last := int64(-1)
	for b := 0; b < 64*16; b++ {
		lo := bucketLow(b)
		if lo < last {
			t.Fatalf("bucketLow(%d)=%d < bucketLow(prev)=%d", b, lo, last)
		}
		last = lo
	}
}

func TestBucketOfWithinBounds(t *testing.T) {
	f := func(v int64) bool {
		b := bucketOf(v)
		return b >= 0 && b < 64*16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	t0 := time.Unix(0, 0)
	r.Record("rate", t0, 300)
	r.Record("rate", t0.Add(time.Minute), 400)
	r.Record("pods", t0, 1)
	s := r.Series("rate")
	if len(s) != 2 || s[0].V != 300 || s[1].V != 400 {
		t.Errorf("Series = %v", s)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "pods" || names[1] != "rate" {
		t.Errorf("Names = %v", names)
	}
	if r.Series("nope") != nil && len(r.Series("nope")) != 0 {
		t.Error("missing series should be empty")
	}
}

func TestSeriesHelpers(t *testing.T) {
	t0 := time.Unix(0, 0)
	s := Series{
		{T: t0, V: 1},
		{T: t0.Add(time.Minute), V: 5},
		{T: t0.Add(2 * time.Minute), V: 3},
	}
	if s.Max() != 5 {
		t.Errorf("Max = %v", s.Max())
	}
	if got := s.At(t0.Add(90 * time.Second)); got != 5 {
		t.Errorf("At(t+90s) = %v, want 5 (last value before)", got)
	}
	if got := s.At(t0.Add(-time.Second)); got != 0 {
		t.Errorf("At(before start) = %v, want 0", got)
	}
	vals := s.Values()
	if len(vals) != 3 || vals[2] != 3 {
		t.Errorf("Values = %v", vals)
	}
	var empty Series
	if empty.Max() != 0 {
		t.Error("empty Max should be 0")
	}
}

func TestFormatASCII(t *testing.T) {
	r := NewRecorder()
	t0 := time.Unix(0, 0)
	for i := 0; i < 60; i++ {
		r.Record("cpu", t0.Add(time.Duration(i)*time.Minute), float64(i%10))
	}
	out := r.FormatASCII("cpu", 40, 8)
	if !strings.Contains(out, "cpu") || !strings.Contains(out, "*") {
		t.Errorf("chart output: %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 10 { // header + 8 rows + axis
		t.Errorf("chart has %d lines", lines)
	}
	if out := r.FormatASCII("missing", 40, 8); !strings.Contains(out, "no data") {
		t.Errorf("missing series: %q", out)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record("x", time.Unix(int64(j), 0), float64(i))
			}
		}(i)
	}
	wg.Wait()
	if got := len(r.Series("x")); got != 400 {
		t.Errorf("series length = %d", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkMeterObserve(b *testing.B) {
	m := NewMeter(10 * time.Second)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Microsecond)
		m.Observe(now, 1)
	}
}

func TestRecorderWriteCSV(t *testing.T) {
	r := NewRecorder()
	t0 := time.Unix(100, 0)
	r.Record("rate", t0, 300)
	r.Record("pods", t0, 1)
	r.Record("rate", t0.Add(30*time.Second), 400)
	r.Record("pods", t0.Add(time.Minute), 2)
	var buf strings.Builder
	if err := r.WriteCSV(&buf, "rate", "pods"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "seconds,rate,pods" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.000,300") {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Last-value resampling: at t+60 the rate is still 400, pods 2.
	if !strings.HasPrefix(lines[3], "60.000,400") || !strings.HasSuffix(lines[3], "2.000000") {
		t.Errorf("row 3 = %q", lines[3])
	}
	// Default: all series, sorted names.
	var buf2 strings.Builder
	if err := r.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf2.String(), "seconds,pods,rate") {
		t.Errorf("default header = %q", strings.SplitN(buf2.String(), "\n", 2)[0])
	}
}
