package metrics

import (
	"sync/atomic"
	"time"
)

// Stage identifies one checkpoint of a tuple's path through the engine.
// Each stage histogram records the cumulative wall time from ingest to
// completing that stage, so every stage and the end-to-end latency come
// out of the same sampled pipeline; the latency spent *inside* a stage
// is the difference between successive stage distributions.
type Stage uint8

// The traced stages, in pipeline order.
const (
	// StageRoute: ingest → router finished computing destinations.
	StageRoute Stage = iota
	// StageDeliver: ingest → envelope handed to the joiner by the
	// broker (includes entry-queue wait, routing, and queue wait).
	StageDeliver
	// StageOrder: ingest → released by the ordering protocol's reorder
	// buffer (StageOrder − StageDeliver is the protocol's cost, also
	// tracked exactly per joiner as "order_wait").
	StageOrder
	// StageStore: ingest → store copy inserted into the window index.
	StageStore
	// StageProbe: ingest → join copy finished probing the window.
	StageProbe
	// StageE2E: ingest → join result received by the sink.
	StageE2E

	numStages
)

// StageName returns the registry name of a stage histogram.
func StageName(s Stage) string {
	switch s {
	case StageRoute:
		return "stage.route"
	case StageDeliver:
		return "stage.deliver"
	case StageOrder:
		return "stage.order"
	case StageStore:
		return "stage.store"
	case StageProbe:
		return "stage.probe"
	case StageE2E:
		return "stage.e2e"
	default:
		return "stage.unknown"
	}
}

// DefaultTraceSample is the 1-in-N sampling ratio tracing defaults to.
// At this rate the per-tuple cost is one atomic increment for unsampled
// tuples, which the throughput benchmark bounds under 5%.
const DefaultTraceSample = 64

// Tracer stamps a sampled subset of ingested tuples with their ingest
// wall time and folds the per-stage timings into latency histograms.
// All methods are safe on a nil receiver (tracing disabled) and for
// concurrent use.
type Tracer struct {
	every int64
	n     atomic.Int64
	hists [numStages]*Histogram
}

// NewTracer registers the stage histograms in reg and returns a tracer
// sampling every Nth ingested tuple. every <= 0 selects
// DefaultTraceSample; use a nil *Tracer to disable tracing entirely.
func NewTracer(reg *Registry, every int) *Tracer {
	if every <= 0 {
		every = DefaultTraceSample
	}
	t := &Tracer{every: int64(every)}
	for s := Stage(0); s < numStages; s++ {
		t.hists[s] = reg.Histogram(StageName(s))
	}
	return t
}

// Stamp decides whether this ingest is sampled: it returns the current
// wall clock in nanoseconds for every Nth call and 0 otherwise. The
// returned value travels on the tuple (Tuple.TraceNS).
func (t *Tracer) Stamp() int64 {
	if t == nil {
		return 0
	}
	if t.n.Add(1)%t.every != 0 {
		return 0
	}
	return time.Now().UnixNano()
}

// Observe records "now − traceNS" into the stage histogram. It is a
// no-op for unsampled tuples (traceNS == 0) and nil tracers, so call
// sites need no branching.
func (t *Tracer) Observe(s Stage, traceNS int64) {
	if t == nil || traceNS == 0 || s >= numStages {
		return
	}
	t.hists[s].Observe(time.Now().UnixNano() - traceNS)
}

// StageSnapshot summarizes one stage histogram.
func (t *Tracer) StageSnapshot(s Stage) Snapshot {
	if t == nil || s >= numStages {
		return Snapshot{}
	}
	return t.hists[s].Snapshot()
}
