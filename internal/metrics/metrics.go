// Package metrics provides the lightweight instrumentation primitives
// used throughout the system: atomic counters and gauges, exponentially
// weighted rate meters (the router's "events per second" statistic),
// latency histograms with quantile estimation, and a time-series
// recorder that captures the per-minute curves plotted in the
// experiments (input rate, CPU utilization, memory load, replica count).
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. live window bytes).
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta, which may be negative.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Meter measures an event rate as an exponentially weighted moving
// average over a configurable horizon. It is driven by explicit Observe
// calls carrying the clock's notion of now, which keeps it correct under
// both the wall clock and the simulated clock.
type Meter struct {
	mu      sync.Mutex
	alphaNs float64 // decay horizon in nanoseconds
	rate    float64 // events per second
	last    time.Time
	total   int64
}

// NewMeter returns a meter smoothing over the given horizon. A typical
// horizon is 5-30 seconds.
func NewMeter(horizon time.Duration) *Meter {
	if horizon <= 0 {
		horizon = 10 * time.Second
	}
	return &Meter{alphaNs: float64(horizon.Nanoseconds())}
}

// Observe records n events occurring at the given instant.
func (m *Meter) Observe(now time.Time, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total += n
	if m.last.IsZero() {
		m.last = now
		return
	}
	dt := float64(now.Sub(m.last).Nanoseconds())
	if dt <= 0 {
		// Same-instant burst: fold it into the current estimate on the
		// next time step by treating it as instantaneous backlog.
		m.rate += float64(n) // provisional; decays on next Observe
		return
	}
	instant := float64(n) / (dt / 1e9)
	w := 1 - math.Exp(-dt/m.alphaNs)
	m.rate += w * (instant - m.rate)
	m.last = now
}

// Rate returns the smoothed events-per-second estimate.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rate
}

// Total returns the number of events observed since creation.
func (m *Meter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Histogram collects duration (or arbitrary int64) observations and
// reports quantiles. It uses logarithmic bucketing: 64 major buckets by
// bit width, 16 minor buckets each, giving <7% relative quantile error
// across the full int64 range with a fixed 8KB footprint, in the spirit
// of HDR histograms.
type Histogram struct {
	mu      sync.Mutex
	buckets [64 * 16]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64, max: math.MinInt64}
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 16 {
		return int(v) // exact buckets for small values
	}
	major := 63 - leadingZeros64(uint64(v))
	minor := int((v >> (uint(major) - 4)) & 15)
	return major*16 + minor
}

func leadingZeros64(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

func bucketLow(b int) int64 {
	if b < 16 {
		return int64(b) // exact buckets for small values
	}
	if b < 64 {
		return 16 // unreachable bucket range; keep bucketLow monotone
	}
	major := b / 16
	minor := b % 16
	low := uint64(1)<<uint(major) + uint64(minor)<<(uint(major)-4)
	if low > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(low)
}

// Observe records a value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (q in [0,1]).
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if seen > target {
			low := bucketLow(b)
			if low < h.min {
				low = h.min
			}
			if low > h.max {
				low = h.max
			}
			return low
		}
	}
	return h.max
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Snapshot summarises the histogram.
type Snapshot struct {
	Count                   int64
	Sum                     int64
	Mean                    float64
	Min, P50, P95, P99, Max int64
}

// Snapshot returns a consistent summary of the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Point is one sample of a named series.
type Point struct {
	T time.Time
	V float64
}

// Series is an ordered list of samples.
type Series []Point

// Values extracts just the sample values.
func (s Series) Values() []float64 {
	out := make([]float64, len(s))
	for i, p := range s {
		out[i] = p.V
	}
	return out
}

// Max returns the largest sample value, or 0 for an empty series.
func (s Series) Max() float64 {
	var m float64
	for i, p := range s {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// At returns the value of the last sample at or before t, or 0.
func (s Series) At(t time.Time) float64 {
	var v float64
	for _, p := range s {
		if p.T.After(t) {
			break
		}
		v = p.V
	}
	return v
}

// Recorder captures named time series during an experiment run. It is
// safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	series map[string]Series
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]Series)}
}

// Record appends a sample to the named series.
func (r *Recorder) Record(name string, t time.Time, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series[name] = append(r.series[name], Point{T: t, V: v})
}

// Series returns a copy of the named series.
func (r *Recorder) Series(name string) Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(Series(nil), r.series[name]...)
}

// Names returns the sorted series names.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteCSV emits the named series as CSV with a time column (seconds
// since the first sample across the chosen series) and one column per
// series, resampled by last-value at each distinct sample instant — the
// format the experiment CLI uses to export figure data for plotting.
func (r *Recorder) WriteCSV(w io.Writer, names ...string) error {
	if len(names) == 0 {
		names = r.Names()
	}
	series := make([]Series, len(names))
	instantSet := map[time.Time]struct{}{}
	var origin time.Time
	for i, n := range names {
		series[i] = r.Series(n)
		for _, p := range series[i] {
			instantSet[p.T] = struct{}{}
			if origin.IsZero() || p.T.Before(origin) {
				origin = p.T
			}
		}
	}
	instants := make([]time.Time, 0, len(instantSet))
	for t := range instantSet {
		instants = append(instants, t)
	}
	sort.Slice(instants, func(i, j int) bool { return instants[i].Before(instants[j]) })

	cw := csv.NewWriter(w)
	header := append([]string{"seconds"}, names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range instants {
		row[0] = strconv.FormatFloat(t.Sub(origin).Seconds(), 'f', 3, 64)
		for i, s := range series {
			row[i+1] = strconv.FormatFloat(s.At(t), 'f', 6, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatASCII renders the named series as a small ASCII chart, used by
// the experiment CLI to echo the figures from the text. width is the
// number of sample columns; the series is resampled by last-value.
func (r *Recorder) FormatASCII(name string, width, height int) string {
	s := r.Series(name)
	if len(s) == 0 || width <= 0 || height <= 0 {
		return fmt.Sprintf("%s: <no data>\n", name)
	}
	start, end := s[0].T, s[len(s)-1].T
	span := end.Sub(start)
	if span <= 0 {
		span = time.Second
	}
	cols := make([]float64, width)
	denom := float64(width - 1)
	if denom <= 0 {
		denom = 1
	}
	for i := range cols {
		t := start.Add(time.Duration(float64(span) * float64(i) / denom))
		cols[i] = s.At(t)
	}
	lo, hi := cols[0], cols[0]
	for _, v := range cols {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = make([]byte, width)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	for x, v := range cols {
		y := int(float64(height-1) * (v - lo) / (hi - lo))
		grid[height-1-y][x] = '*'
	}
	out := fmt.Sprintf("%s  [min=%.1f max=%.1f]\n", name, lo, hi)
	for _, row := range grid {
		out += "|" + string(row) + "\n"
	}
	out += "+" + repeat('-', width) + "\n"
	return out
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
