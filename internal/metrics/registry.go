package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// MetricKind discriminates the instrument types a Registry holds.
type MetricKind uint8

// The instrument kinds.
const (
	KindCounterMetric MetricKind = iota + 1
	KindGaugeMetric
	KindGaugeFuncMetric
	KindMeterMetric
	KindHistogramMetric
)

// String names the kind for export and error messages.
func (k MetricKind) String() string {
	switch k {
	case KindCounterMetric:
		return "counter"
	case KindGaugeMetric:
		return "gauge"
	case KindGaugeFuncMetric:
		return "gaugefunc"
	case KindMeterMetric:
		return "meter"
	case KindHistogramMetric:
		return "histogram"
	default:
		return "unknown"
	}
}

// Sample is one exported measurement of a named instrument, the unit
// the HTTP exporter and Engine.Snapshot consume. Counters and gauges
// carry Value; meters carry Value (the smoothed rate) plus Total;
// histograms carry Hist.
type Sample struct {
	Name  string
	Kind  MetricKind
	Value float64
	Total int64     // meters only: events observed since creation
	Hist  *Snapshot // histograms only
}

// CollectorFunc contributes dynamically named samples to a gather (for
// sources whose name set changes at runtime, like broker queues). It is
// called on every Gather; implementations must be safe for concurrent
// use and should emit gauge or counter samples.
type CollectorFunc func(emit func(Sample))

type registryEntry struct {
	kind      MetricKind
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	meter     *Meter
	histogram *Histogram
}

// Registry is a concurrency-safe collection of named instruments. Names
// are hierarchical dot paths ("joiner.R.2.window_bytes"); the exporter
// sanitizes them for Prometheus. Typed accessors are get-or-create and
// idempotent for a matching kind; requesting an existing name as a
// different kind panics, because two subsystems fighting over one name
// is a programming error that silent sharing would hide.
type Registry struct {
	mu         sync.RWMutex
	entries    map[string]*registryEntry
	collectors []CollectorFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*registryEntry)}
}

func (r *Registry) entry(name string, kind MetricKind, create func() *registryEntry) *registryEntry {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if e, ok = r.entries[name]; !ok {
			e = create()
			r.entries[name] = e
		}
		r.mu.Unlock()
	}
	if e.kind != kind {
		panic(fmt.Sprintf("metrics: %q already registered as %v, requested as %v", name, e.kind, kind))
	}
	return e
}

// Counter returns the named counter, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	return r.entry(name, KindCounterMetric, func() *registryEntry {
		return &registryEntry{kind: KindCounterMetric, counter: &Counter{}}
	}).counter
}

// Gauge returns the named gauge, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	return r.entry(name, KindGaugeMetric, func() *registryEntry {
		return &registryEntry{kind: KindGaugeMetric, gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a callback-backed gauge sampled at gather time.
// Re-registering an existing gaugefunc name replaces the callback (the
// natural semantics for a restarted service re-claiming its name). fn
// must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	e := r.entry(name, KindGaugeFuncMetric, func() *registryEntry {
		return &registryEntry{kind: KindGaugeFuncMetric}
	})
	r.mu.Lock()
	e.gaugeFn = fn
	r.mu.Unlock()
}

// Meter returns the named rate meter, creating it with the given
// smoothing horizon if absent (the horizon of an existing meter is kept).
func (r *Registry) Meter(name string, horizon time.Duration) *Meter {
	return r.entry(name, KindMeterMetric, func() *registryEntry {
		return &registryEntry{kind: KindMeterMetric, meter: NewMeter(horizon)}
	}).meter
}

// Histogram returns the named histogram, creating it if absent.
func (r *Registry) Histogram(name string) *Histogram {
	return r.entry(name, KindHistogramMetric, func() *registryEntry {
		return &registryEntry{kind: KindHistogramMetric, histogram: NewHistogram()}
	}).histogram
}

// AddCollector attaches a dynamic sample source consulted on every
// Gather, after the registered instruments.
func (r *Registry) AddCollector(fn CollectorFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Unregister removes the named instrument; it is a no-op for unknown
// names. Existing holders of the instrument keep a working (but no
// longer exported) handle.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, name)
}

// UnregisterPrefix removes every instrument whose name starts with
// prefix — the whole subtree of a retired service ("joiner.R.3.").
func (r *Registry) UnregisterPrefix(prefix string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.entries {
		if strings.HasPrefix(name, prefix) {
			delete(r.entries, name)
		}
	}
}

// Names returns the sorted registered instrument names (collectors are
// not enumerable).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Value returns the current scalar value of the named instrument:
// counter count, gauge value, gaugefunc result, meter rate, or
// histogram mean. The second result is false for unknown names.
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	var fn func() float64
	if ok {
		fn = e.gaugeFn
	}
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	switch e.kind {
	case KindCounterMetric:
		return float64(e.counter.Value()), true
	case KindGaugeMetric:
		return float64(e.gauge.Value()), true
	case KindGaugeFuncMetric:
		if fn == nil {
			return 0, true
		}
		return fn(), true
	case KindMeterMetric:
		return e.meter.Rate(), true
	case KindHistogramMetric:
		return e.histogram.Mean(), true
	}
	return 0, false
}

// Gather snapshots every instrument and collector into a name-sorted
// sample list. Gauge funcs and collectors run outside the registry lock,
// so they may take their own locks freely.
func (r *Registry) Gather() []Sample {
	r.mu.RLock()
	type named struct {
		name string
		e    *registryEntry
		fn   func() float64
	}
	entries := make([]named, 0, len(r.entries))
	for name, e := range r.entries {
		entries = append(entries, named{name, e, e.gaugeFn})
	}
	collectors := append([]CollectorFunc(nil), r.collectors...)
	r.mu.RUnlock()

	out := make([]Sample, 0, len(entries))
	for _, ne := range entries {
		s := Sample{Name: ne.name, Kind: ne.e.kind}
		switch ne.e.kind {
		case KindCounterMetric:
			s.Value = float64(ne.e.counter.Value())
		case KindGaugeMetric:
			s.Value = float64(ne.e.gauge.Value())
		case KindGaugeFuncMetric:
			if ne.fn != nil {
				s.Value = ne.fn()
			}
		case KindMeterMetric:
			s.Value = ne.e.meter.Rate()
			s.Total = ne.e.meter.Total()
		case KindHistogramMetric:
			snap := ne.e.histogram.Snapshot()
			s.Hist = &snap
			s.Value = snap.Mean
		}
		out = append(out, s)
	}
	for _, c := range collectors {
		c(func(s Sample) { out = append(out, s) })
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
