package joiner

import (
	"fmt"
	"sync"
	"time"

	"bistream/internal/broker"
	"bistream/internal/checkpoint"
	"bistream/internal/index"
	"bistream/internal/metrics"
	"bistream/internal/protocol"
	"bistream/internal/topo"
	"bistream/internal/tuple"
)

// Service connects a joiner core to the broker. It owns two queues —
// the store-stream queue on its own relation's store exchange and the
// join-stream queue on the opposite relation's join exchange — each
// bound to the member's key and to the shared punctuation key, and it
// publishes join results to the result exchange.
//
// Consumption is manual-ack: a delivery is acknowledged only after the
// core has fully handled it, so a crash between delivery and ack
// requeues the tuple instead of losing it. Redeliveries are rendered
// harmless by the core's (relation, seq) idempotency filter. Result
// publishes that fail (broker down, injected fault) are buffered and
// retried until the broker is reachable again — the join never drops a
// result because of a transient publish error.
type Service struct {
	core   *Core
	client broker.Client

	mu        sync.Mutex // serializes core access from the two streams
	storeCons broker.Consumer
	joinCons  broker.Consumer
	stopCh    chan struct{}
	wg        sync.WaitGroup
	started   bool
	// retry holds marshaled result bodies whose publish failed, in emit
	// order; drained opportunistically after each handled envelope and
	// by a background ticker while the stream is quiet.
	retry [][]byte

	// Checkpointing (nil ckpt = disabled). With checkpointing on, acks
	// are deferred: a handled delivery joins pendingAcks and is
	// acknowledged only after the next checkpoint commits — the ack
	// barrier that makes a cold restart lossless (unacked deliveries are
	// requeued by the broker; acked ones are in the checkpoint).
	ckpt         *checkpoint.Checkpointer
	ckptInterval time.Duration
	pendingAcks  []pendingAck
	// ckptMu serializes whole checkpoint rounds (the Checkpointer is
	// not safe for concurrent use, and Stop's final round can otherwise
	// race the ticker's). Always taken before mu.
	ckptMu sync.Mutex

	redelivered   *metrics.Counter
	publishErrors *metrics.Counter
	ackErrors     *metrics.Counter
	poison        *metrics.Counter
	dropped       *metrics.Counter
	ckptErrors    *metrics.Counter
}

// pendingAck is one handled-but-unacknowledged delivery batch awaiting
// the next checkpoint commit.
type pendingAck struct {
	cons broker.Consumer
	tags []uint64
}

// batchAcker is the optional fast path a consumer may offer for
// settling a whole delivery batch under one lock acquisition; consumers
// without it get per-tag acks.
type batchAcker interface {
	AckBatch(tags []uint64) error
}

// ackBatch settles a batch of delivery tags, using the consumer's batch
// path when it has one.
func (s *Service) ackBatch(cons broker.Consumer, tags []uint64) {
	if len(tags) == 0 {
		return
	}
	if ba, ok := cons.(batchAcker); ok {
		if err := ba.AckBatch(tags); err != nil {
			s.ackErrors.Inc()
		}
		return
	}
	for _, tag := range tags {
		if err := cons.Ack(tag); err != nil {
			s.ackErrors.Inc()
		}
	}
}

// retryBacklogCap bounds the buffered result bodies during a broker
// outage (~32k results); beyond it the oldest are dropped and counted,
// trading bounded memory for completeness exactly like the window
// state a crashed joiner loses.
const retryBacklogCap = 1 << 15

// retryInterval paces background republish attempts of buffered
// results while no deliveries are arriving.
const retryInterval = 100 * time.Millisecond

// NewService wraps a core with a broker-backed service. The window
// gauges it registers read the core under the service mutex, so they
// are safe to scrape from the exporter's HTTP goroutine while the
// consume loops run.
func NewService(core *Core, client broker.Client) *Service {
	s := &Service{core: core, client: client}
	reg, prefix := core.cfg.Metrics, core.prefix
	s.redelivered = reg.Counter(prefix + "redelivered")
	s.publishErrors = reg.Counter(prefix + "publish_errors")
	s.ackErrors = reg.Counter(prefix + "ack_errors")
	s.poison = reg.Counter(prefix + "poison")
	s.dropped = reg.Counter(prefix + "results_dropped")
	reg.GaugeFunc(prefix+"retry_backlog", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.retry))
	})
	reg.GaugeFunc(prefix+"pending", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(core.reorder.Pending())
	})
	reg.GaugeFunc(prefix+"window_tuples", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(core.idx.Len())
	})
	reg.GaugeFunc(prefix+"window_bytes", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(core.MemBytes())
	})
	reg.GaugeFunc(prefix+"sub_indexes", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(core.idx.NumSubIndexes())
	})
	reg.GaugeFunc(prefix+"pending_acks", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, a := range s.pendingAcks {
			n += len(a.tags)
		}
		return float64(n)
	})
	s.ckptErrors = reg.Counter(prefix + "checkpoint_errors")
	return s
}

// defaultCheckpointInterval paces checkpoints when the caller passes a
// non-positive interval. It must stay well under the time a prefetch
// window of deliveries takes to arrive, or deferred acks would stall
// the stream between rounds.
const defaultCheckpointInterval = 250 * time.Millisecond

// EnableCheckpointing turns on checkpointed operation before Start: the
// store is scanned for an existing checkpoint, and if one is intact the
// core's window, ordering, dedup and retry-backlog state are restored
// from it. From then on a background loop snapshots the core every
// interval, and broker acks are withheld until the checkpoint covering
// the delivery commits. Returns whether prior state was recovered; an
// error means durable state exists but cannot be trusted (the caller
// should not start the member blind).
func (s *Service) EnableCheckpointing(ck *checkpoint.Checkpointer, interval time.Duration) (bool, error) {
	if interval <= 0 {
		interval = defaultCheckpointInterval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return false, fmt.Errorf("joiner: EnableCheckpointing after Start")
	}
	snap, err := ck.Recover()
	if err != nil {
		return false, err
	}
	if snap != nil {
		if err := s.core.Restore(snap); err != nil {
			return false, err
		}
		s.retry = nil
		if len(snap.Retry) > 0 {
			s.retry = append(s.retry, snap.Retry...)
		}
	}
	s.ckpt = ck
	s.ckptInterval = interval
	return snap != nil, nil
}

// Queues returns the (storeQueue, joinQueue) names of this member.
func (s *Service) Queues() (string, string) {
	return topo.StoreQueue(s.core.Rel(), s.core.ID()),
		topo.JoinQueue(s.core.Rel(), s.core.ID())
}

// Start declares the shared topology (idempotently — services may come
// up in any order) and this member's queues, binds them, and begins
// consuming. A stopped service can be started again: its queues were
// kept, so messages that arrived in between (or were requeued unacked)
// are consumed on resume.
func (s *Service) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("joiner: service already started")
	}
	if err := topo.Declare(s.client); err != nil {
		return err
	}
	storeQ, joinQ := s.Queues()
	memberKey := topo.MemberKey(s.core.ID())
	storeEx := topo.StoreExchange(s.core.Rel())
	joinEx := topo.JoinExchange(s.core.Rel().Opposite())
	for _, step := range []struct {
		queue, exchange, key string
	}{
		{storeQ, storeEx, memberKey},
		{storeQ, storeEx, topo.PunctKey},
		{joinQ, joinEx, memberKey},
		{joinQ, joinEx, topo.PunctKey},
	} {
		// Member queues are durable consumer-group subscriptions (§4.2).
		if err := s.client.DeclareQueue(step.queue, broker.QueueOptions{Durable: true}); err != nil {
			return err
		}
		if err := s.client.Bind(step.queue, step.exchange, step.key); err != nil {
			return err
		}
	}
	// With checkpointing the ack barrier keeps every delivery of an
	// interval unacked until the covering epoch commits, so prefetch —
	// not processing speed — caps throughput at prefetch/interval per
	// queue. A deeper window keeps one interval of peak traffic in
	// flight; without checkpointing acks land per batch and the window
	// just needs to keep a couple of consume batches in flight so the
	// batch gather never starves.
	prefetch := 2 * maxConsumeBatch
	if s.ckpt != nil {
		prefetch = 4096
	}
	storeCons, err := s.client.Consume(storeQ, prefetch, false)
	if err != nil {
		return err
	}
	joinCons, err := s.client.Consume(joinQ, prefetch, false)
	if err != nil {
		storeCons.Cancel()
		return err
	}
	s.storeCons, s.joinCons = storeCons, joinCons
	s.stopCh = make(chan struct{})
	s.started = true
	loops := 3
	if s.ckpt != nil {
		loops++
	}
	s.wg.Add(loops)
	go s.consumeLoop(storeCons, protocol.SourceStore)
	go s.consumeLoop(joinCons, protocol.SourceJoin)
	go s.retryLoop(s.stopCh)
	if s.ckpt != nil {
		go s.checkpointLoop(s.stopCh)
	}
	return nil
}

// Stop cancels consumption and waits for the loops to drain. In-flight
// unacknowledged deliveries are requeued by the broker and redelivered
// after a restart; the member's queues stay declared so a restart can
// resume. Retire deletes them.
func (s *Service) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	storeCons, joinCons := s.storeCons, s.joinCons
	ckpt := s.ckpt
	close(s.stopCh)
	s.mu.Unlock()
	if ckpt != nil {
		// Final checkpoint before cancelling: it acks every covered
		// delivery, so the broker requeues only what arrived after it.
		// Best-effort — a failure just means more redelivery on restart.
		_ = s.checkpointNow()
	}
	storeCons.Cancel()
	joinCons.Cancel()
	s.wg.Wait()
}

// Retire stops the service and deletes its queues (scale-in after the
// member's window has drained).
func (s *Service) Retire() {
	s.Stop()
	storeQ, joinQ := s.Queues()
	_ = s.client.DeleteQueue(storeQ)
	_ = s.client.DeleteQueue(joinQ)
	// Drop the member's registry subtree (including the gauge funcs
	// registered by NewService) so scrapes stop reporting a dead member.
	s.core.cfg.Metrics.UnregisterPrefix(s.core.prefix)
}

// Core exposes the underlying core. Callers must not invoke core
// methods while the service is running; use the locked wrappers below.
func (s *Service) Core() *Core { return s.core }

// ID returns the member id.
func (s *Service) ID() int32 { return s.core.ID() }

// Rel returns the stored relation.
func (s *Service) Rel() tuple.Relation { return s.core.Rel() }

// Stats snapshots the core's counters, serialized against the consume
// loops.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Stats()
}

// MemBytes reports the core's resident state, serialized against the
// consume loops.
func (s *Service) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.MemBytes()
}

// RetryBacklog reports how many result publishes are waiting to be
// retried.
func (s *Service) RetryBacklog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.retry)
}

// Flush processes every buffered envelope regardless of punctuation
// frontiers; results are published. For engine shutdown.
func (s *Service) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.core.Flush(s.emit)
	s.drainRetryLocked()
}

// AddRouter registers a router path with the ordering protocol.
func (s *Service) AddRouter(id int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.core.AddRouter(id)
}

// RemoveRouter unregisters a router; results its departure unblocks are
// published.
func (s *Service) RemoveRouter(id int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.core.RemoveRouter(id, s.emit)
}

// ErrNotDrained is returned by ExportIfDrained while the member's
// release frontier has not yet passed the requested drain barrier.
var ErrNotDrained = fmt.Errorf("joiner: not drained past the migration barrier")

// Frontier reports the member's release frontier (minimum punctuated
// counter over its registered router paths), serialized against the
// consume loops.
func (s *Service) Frontier() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.MinFrontier()
}

// ExportIfDrained atomically checks the drain barrier and snapshots the
// member for migration: if every router path's frontier has passed
// minStamp — i.e. every tuple stamped before the layout change has been
// released and handled here — it returns a full snapshot of the window.
// Otherwise it returns ErrNotDrained and the caller polls again. The
// check and snapshot happen under one critical section, so no envelope
// can slip in between them.
func (s *Service) ExportIfDrained(minStamp uint64) (*checkpoint.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.core.MinFrontier() < minStamp {
		return nil, ErrNotDrained
	}
	return s.core.Snapshot(), nil
}

// ImportForeign grafts a migration donor's sealed segments onto this
// member's window, serialized against the consume loops. Idempotent at
// segment granularity (see Core.Graft); call CheckpointNow afterwards
// so the graft is durable before the donor retires.
func (s *Service) ImportForeign(segs []index.Segment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Graft(segs)
}

// ExportKeyIfDrained atomically checks the drain barrier and exports
// the stored tuples of one join key (hot-key migration): if every
// router path's frontier has passed minStamp — so every store copy
// hash-routed here before the key's placement flipped has been released
// and stored — it returns the key's tuples, which stay in the window
// until DropKeySeqs removes them at cut-over. Otherwise it returns
// ErrNotDrained and the caller polls again.
func (s *Service) ExportKeyIfDrained(keyHash uint64, minStamp uint64) ([]*tuple.Tuple, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.core.MinFrontier() < minStamp {
		return nil, ErrNotDrained
	}
	return s.core.ExportKey(keyHash), nil
}

// DropKeySeqs removes the previously exported tuples of one join key
// from the window (hot-key migration cut-over), serialized against the
// consume loops. It returns how many tuples were removed.
func (s *Service) DropKeySeqs(keyHash uint64, seqs []uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.DropKeySeqs(keyHash, seqs)
}

// maxConsumeBatch caps how many deliveries one consume-loop wakeup
// gathers before handing them to the core as a single batch. Large
// enough to amortize the mutex, ack and checkpoint bookkeeping and to
// let the core's shard fan-out pay off; small enough to keep the
// latency a batch adds under the punctuation interval at typical rates.
const maxConsumeBatch = 512

// consumeLoop drains one queue in batches: block for the first
// delivery, then gather whatever else is already queued (up to
// maxConsumeBatch), decode outside the service mutex through a
// slab-backed decoder, and hand the whole batch to the core in one
// critical section. Acks are settled per batch — deferred to the next
// checkpoint commit when checkpointing is on.
func (s *Service) consumeLoop(cons broker.Consumer, src protocol.Source) {
	defer s.wg.Done()
	var dec tuple.Decoder
	envs := make([]protocol.Envelope, 0, maxConsumeBatch)
	tags := make([]uint64, 0, maxConsumeBatch)
	ch := cons.Deliveries()
	for d := range ch {
		envs, tags = envs[:0], tags[:0]
		open := true
		s.decodeDelivery(cons, d, &dec, &envs, &tags)
	gather:
		for len(envs) < maxConsumeBatch {
			select {
			case nd, ok := <-ch:
				if !ok {
					open = false
					break gather
				}
				s.decodeDelivery(cons, nd, &dec, &envs, &tags)
			default:
				break gather
			}
		}
		s.handleBatch(cons, src, envs, tags)
		clearEnvelopes(envs)
		if !open {
			return
		}
	}
}

// decodeDelivery decodes one delivery into the batch buffers. Poison
// messages are rejected without requeue, which routes them to the
// dead-letter queue for inspection.
func (s *Service) decodeDelivery(cons broker.Consumer, d broker.Delivery, dec *tuple.Decoder, envs *[]protocol.Envelope, tags *[]uint64) {
	if d.Redelivered {
		s.redelivered.Inc()
	}
	env, err := protocol.DecodeEnvelope(d.Body, dec)
	if err != nil {
		s.poison.Inc()
		if err := cons.Nack(d.Tag, false); err != nil {
			s.ackErrors.Inc()
		}
		return
	}
	*envs = append(*envs, env)
	*tags = append(*tags, d.Tag)
}

// handleBatch runs one decoded batch through the core and settles its
// acks. The tag slice is copied when acks defer to a checkpoint,
// because the caller reuses its backing array for the next batch.
func (s *Service) handleBatch(cons broker.Consumer, src protocol.Source, envs []protocol.Envelope, tags []uint64) {
	if len(envs) == 0 {
		return
	}
	s.mu.Lock()
	s.core.HandleBatch(envs, src, s.emit)
	s.drainRetryLocked()
	deferAck := s.ckpt != nil
	if deferAck && len(tags) > 0 {
		s.pendingAcks = append(s.pendingAcks, pendingAck{cons, append([]uint64(nil), tags...)})
	}
	s.mu.Unlock()
	if deferAck {
		// Checkpointed operation: the acks wait for the next checkpoint
		// commit, so a cold crash can only lose deliveries the broker
		// still holds unacked — and will redeliver.
		return
	}
	// Ack after the core fully handled the batch: a crash before this
	// point requeues it (at-least-once), and the core's dedup absorbs
	// the redeliveries. Acks that fail (connection lost in the window)
	// leave the deliveries unacked server-side; they will be redelivered
	// and suppressed the same way.
	s.ackBatch(cons, tags)
}

// checkpointLoop snapshots the core every interval while the service
// runs. Save happens outside the service mutex — the snapshot owns
// copies of all mutable containers and tuples are immutable — so the
// consume loops keep flowing during the (possibly slow) store write.
func (s *Service) checkpointLoop(stop <-chan struct{}) {
	defer s.wg.Done()
	ticker := time.NewTicker(s.ckptInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			_ = s.checkpointNow()
		}
	}
}

// checkpointNow takes one checkpoint round: snapshot under the mutex,
// persist outside it, then acknowledge every delivery the committed
// checkpoint covers. On a failed save the captured acks are put back —
// the deliveries stay unacked until some later round commits, keeping
// the ack barrier intact.
func (s *Service) checkpointNow() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	if s.ckpt == nil {
		s.mu.Unlock()
		return nil
	}
	snap := s.core.Snapshot()
	if len(s.retry) > 0 {
		snap.Retry = append([][]byte(nil), s.retry...)
	}
	acks := s.pendingAcks
	s.pendingAcks = nil
	s.mu.Unlock()
	if err := s.ckpt.Save(snap); err != nil {
		s.ckptErrors.Inc()
		s.mu.Lock()
		s.pendingAcks = append(acks, s.pendingAcks...)
		s.mu.Unlock()
		return err
	}
	for _, a := range acks {
		s.ackBatch(a.cons, a.tags)
	}
	return nil
}

// CheckpointNow forces a checkpoint round outside the ticker (tests and
// orderly shutdown paths).
func (s *Service) CheckpointNow() error { return s.checkpointNow() }

// PendingAcks reports how many handled deliveries await the next
// checkpoint commit.
func (s *Service) PendingAcks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, a := range s.pendingAcks {
		n += len(a.tags)
	}
	return n
}

// retryLoop republishes buffered results while the stream is quiet, so
// an outage that outlives the traffic still drains the backlog.
func (s *Service) retryLoop(stop <-chan struct{}) {
	defer s.wg.Done()
	ticker := time.NewTicker(retryInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			s.mu.Lock()
			s.drainRetryLocked()
			s.mu.Unlock()
		}
	}
}

// emit publishes a join result. Called with s.mu held. On publish
// failure the body joins the retry backlog instead of being dropped;
// ordering across results is preserved by never publishing around a
// non-empty backlog.
func (s *Service) emit(jr tuple.JoinResult) {
	body := tuple.AppendBinary(tuple.Marshal(jr.Left), jr.Right)
	if len(s.retry) == 0 {
		if err := s.client.Publish(topo.ResultExchange, topo.ResultKey, nil, body); err == nil {
			return
		}
		s.publishErrors.Inc()
	}
	if len(s.retry) >= retryBacklogCap {
		s.retry = s.retry[1:]
		s.dropped.Inc()
	}
	s.retry = append(s.retry, body)
}

// drainRetryLocked republishes buffered results until the backlog is
// empty or a publish fails again. Called with s.mu held.
func (s *Service) drainRetryLocked() {
	for len(s.retry) > 0 {
		if err := s.client.Publish(topo.ResultExchange, topo.ResultKey, nil, s.retry[0]); err != nil {
			s.publishErrors.Inc()
			return
		}
		s.retry = s.retry[1:]
	}
	s.retry = nil
}
