package joiner

import (
	"fmt"
	"sync"

	"bistream/internal/broker"
	"bistream/internal/protocol"
	"bistream/internal/topo"
	"bistream/internal/tuple"
)

// Service connects a joiner core to the broker. It owns two queues —
// the store-stream queue on its own relation's store exchange and the
// join-stream queue on the opposite relation's join exchange — each
// bound to the member's key and to the shared punctuation key, and it
// publishes join results to the result exchange.
type Service struct {
	core   *Core
	client broker.Client

	mu        sync.Mutex // serializes core access from the two streams
	storeCons broker.Consumer
	joinCons  broker.Consumer
	wg        sync.WaitGroup
	started   bool
}

// NewService wraps a core with a broker-backed service. The window
// gauges it registers read the core under the service mutex, so they
// are safe to scrape from the exporter's HTTP goroutine while the
// consume loops run.
func NewService(core *Core, client broker.Client) *Service {
	s := &Service{core: core, client: client}
	reg, prefix := core.cfg.Metrics, core.prefix
	reg.GaugeFunc(prefix+"pending", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(core.reorder.Pending())
	})
	reg.GaugeFunc(prefix+"window_tuples", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(core.idx.Len())
	})
	reg.GaugeFunc(prefix+"window_bytes", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(core.MemBytes())
	})
	reg.GaugeFunc(prefix+"sub_indexes", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(core.idx.NumSubIndexes())
	})
	return s
}

// Queues returns the (storeQueue, joinQueue) names of this member.
func (s *Service) Queues() (string, string) {
	return topo.StoreQueue(s.core.Rel(), s.core.ID()),
		topo.JoinQueue(s.core.Rel(), s.core.ID())
}

// Start declares the shared topology (idempotently — services may come
// up in any order) and this member's queues, binds them, and begins
// consuming.
func (s *Service) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("joiner: service already started")
	}
	if err := topo.Declare(s.client); err != nil {
		return err
	}
	storeQ, joinQ := s.Queues()
	memberKey := topo.MemberKey(s.core.ID())
	storeEx := topo.StoreExchange(s.core.Rel())
	joinEx := topo.JoinExchange(s.core.Rel().Opposite())
	for _, step := range []struct {
		queue, exchange, key string
	}{
		{storeQ, storeEx, memberKey},
		{storeQ, storeEx, topo.PunctKey},
		{joinQ, joinEx, memberKey},
		{joinQ, joinEx, topo.PunctKey},
	} {
		// Member queues are durable consumer-group subscriptions (§4.2).
		if err := s.client.DeclareQueue(step.queue, broker.QueueOptions{Durable: true}); err != nil {
			return err
		}
		if err := s.client.Bind(step.queue, step.exchange, step.key); err != nil {
			return err
		}
	}
	storeCons, err := s.client.Consume(storeQ, 256, true)
	if err != nil {
		return err
	}
	joinCons, err := s.client.Consume(joinQ, 256, true)
	if err != nil {
		storeCons.Cancel()
		return err
	}
	s.storeCons, s.joinCons = storeCons, joinCons
	s.started = true
	s.wg.Add(2)
	go s.consumeLoop(storeCons, protocol.SourceStore)
	go s.consumeLoop(joinCons, protocol.SourceJoin)
	return nil
}

// Stop cancels consumption and waits for the loops to drain. The
// member's queues stay declared so a restart can resume; Retire deletes
// them.
func (s *Service) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	storeCons, joinCons := s.storeCons, s.joinCons
	s.mu.Unlock()
	storeCons.Cancel()
	joinCons.Cancel()
	s.wg.Wait()
}

// Retire stops the service and deletes its queues (scale-in after the
// member's window has drained).
func (s *Service) Retire() {
	s.Stop()
	storeQ, joinQ := s.Queues()
	_ = s.client.DeleteQueue(storeQ)
	_ = s.client.DeleteQueue(joinQ)
	// Drop the member's registry subtree (including the gauge funcs
	// registered by NewService) so scrapes stop reporting a dead member.
	s.core.cfg.Metrics.UnregisterPrefix(s.core.prefix)
}

// Core exposes the underlying core. Callers must not invoke core
// methods while the service is running; use the locked wrappers below.
func (s *Service) Core() *Core { return s.core }

// ID returns the member id.
func (s *Service) ID() int32 { return s.core.ID() }

// Rel returns the stored relation.
func (s *Service) Rel() tuple.Relation { return s.core.Rel() }

// Stats snapshots the core's counters, serialized against the consume
// loops.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Stats()
}

// MemBytes reports the core's resident state, serialized against the
// consume loops.
func (s *Service) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.MemBytes()
}

// Flush processes every buffered envelope regardless of punctuation
// frontiers; results are published. For engine shutdown.
func (s *Service) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.core.Flush(s.emit)
}

// AddRouter registers a router path with the ordering protocol.
func (s *Service) AddRouter(id int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.core.AddRouter(id)
}

// RemoveRouter unregisters a router; results its departure unblocks are
// published.
func (s *Service) RemoveRouter(id int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.core.RemoveRouter(id, s.emit)
}

func (s *Service) consumeLoop(cons broker.Consumer, src protocol.Source) {
	defer s.wg.Done()
	for d := range cons.Deliveries() {
		env, err := protocol.UnmarshalEnvelope(d.Body)
		if err != nil {
			continue // poison message; drop
		}
		s.mu.Lock()
		s.core.Handle(env, src, s.emit)
		s.mu.Unlock()
	}
}

// emit publishes a join result. Called with s.mu held.
func (s *Service) emit(jr tuple.JoinResult) {
	body := tuple.AppendBinary(tuple.Marshal(jr.Left), jr.Right)
	_ = s.client.Publish(topo.ResultExchange, topo.ResultKey, nil, body)
}
