package joiner

import (
	"testing"
	"time"

	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// TestDedupWatermarkPruneBoundsSeen is the regression test for the
// unbounded dedup set: before watermark pruning, every (rel, seq) a
// member ever received stayed in the set until the count cap tripped,
// so a long-lived low-rate member held entries forever. The reorderer's
// release frontier now ages generations out: once it advances a full
// window (+ slack) past the last rotation, nothing below it can be
// redelivered, so those entries rotate away and the set stays bounded
// by what two horizons of traffic admit.
func TestDedupWatermarkPruneBoundsSeen(t *testing.T) {
	reg := metrics.NewRegistry()
	c, err := NewCore(Config{
		ID: 0, Rel: tuple.R, Pred: predicate.NewEqui(0, 0),
		Window:  window.Sliding{Span: time.Second},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddRouter(1)
	collect := func(tuple.JoinResult) {}

	// Stamps advance 100ms per tuple: each 100-tuple round spans ~3
	// prune horizons (window 1s + 2s slack), forcing rotations.
	const step = 100_000 // stamp µs
	counter := uint64(1)
	seq := uint64(1)
	peak := 0
	for round := 0; round < 30; round++ {
		for i := 0; i < 100; i++ {
			ts := int64(counter / 1000)
			tp := tuple.New(tuple.R, seq, ts, tuple.Int(int64(seq%50)))
			c.Handle(protocol.Envelope{
				Kind: protocol.KindTuple, RouterID: 1, Counter: counter,
				Stream: protocol.StreamStore, Tuple: tp,
			}, protocol.SourceStore, collect)
			seq++
			counter += step
		}
		punctAll(c, counter, collect)
		if l := c.SeenLen(); l > peak {
			peak = l
		}
	}
	total := int(seq - 1)
	if peak >= total {
		t.Fatalf("dedup set never pruned: peak %d of %d ingested", peak, total)
	}
	// Two generations of one round each is the ceiling; leave headroom
	// for rotation granularity.
	if l := c.SeenLen(); l > 400 {
		t.Errorf("dedup set len = %d after sustained ingest, want bounded (<= 400)", l)
	}
	if v, _ := reg.Value("joiner.R.0.dedup_rotations"); v == 0 {
		t.Error("joiner.R.0.dedup_rotations did not advance")
	}
}

// TestDedupWatermarkStillSuppressesRecentRedelivery: pruning must not
// open a duplicate window for stamps at or near the frontier — a
// redelivered envelope inside the horizon is still suppressed.
func TestDedupWatermarkStillSuppressesRecentRedelivery(t *testing.T) {
	c, err := NewCore(Config{
		ID: 0, Rel: tuple.R, Pred: predicate.NewEqui(0, 0),
		Window: window.Sliding{Span: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddRouter(1)
	collect := func(tuple.JoinResult) {}
	tp := tuple.New(tuple.R, 9, 1, tuple.Int(4))
	env := protocol.Envelope{
		Kind: protocol.KindTuple, RouterID: 1, Counter: 1000,
		Stream: protocol.StreamStore, Tuple: tp,
	}
	c.Handle(env, protocol.SourceStore, collect)
	punctAll(c, 2000, collect)
	c.Handle(env, protocol.SourceStore, collect) // broker redelivery
	punctAll(c, 3000, collect)
	if st := c.Stats(); st.Stored != 1 {
		t.Errorf("stored = %d after redelivery, want 1", st.Stored)
	}
}
