// Package joiner implements the join processing units of §3.1.2: each
// joiner stores one partition of its own relation in a chained in-memory
// index over a time-based sliding window, joins incoming tuples of the
// opposite relation against it, discards stale sub-indexes by Theorem 1,
// and orders its work through the §3.3 tuple ordering protocol.
package joiner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bistream/internal/checkpoint"
	"bistream/internal/dedup"
	"bistream/internal/index"
	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// Config configures a joiner core.
type Config struct {
	// ID is the member id within the relation's joiner group.
	ID int32
	// Rel is the relation this joiner stores (its side of the biclique).
	Rel tuple.Relation
	// Pred is the join predicate.
	Pred predicate.Predicate
	// Window is the time-based sliding window; window.Unbounded() runs
	// a full-history join (nothing expires). FullHistory must be set
	// alongside an unbounded window to guard against zero-value
	// configs.
	Window window.Sliding
	// FullHistory acknowledges an unbounded window.
	FullHistory bool
	// ArchivePeriod is the chained index's sub-index span P; it
	// defaults to Window/16 when zero.
	ArchivePeriod time.Duration
	// OrderedIndex selects the ordered sub-index implementation for
	// non-equi predicates (skip list by default, B+-tree optional).
	OrderedIndex index.OrderedKind
	// Shards is the number of per-core store shards the window is
	// partitioned into; batches fan store and probe work out across
	// them in parallel. Zero means GOMAXPROCS; values are clamped to
	// [1, index.MaxShards].
	Shards int
	// Unordered disables the ordering protocol, processing envelopes on
	// arrival. Used by the Figure 8 experiment to demonstrate the
	// missed/duplicate result anomalies the protocol prevents.
	Unordered bool
	// Metrics is the registry the joiner's instruments live in under
	// "joiner.<rel>.<id>."; nil creates a private registry.
	Metrics *metrics.Registry
	// Trace folds sampled per-tuple stage timings into the shared stage
	// histograms; nil disables tracing at this tier.
	Trace *metrics.Tracer
}

// Stats snapshots a joiner's work counters. WorkUnits approximates CPU
// cost: each index insert, probe candidate and expiry visit counts one
// unit; the cluster simulator converts units/s into CPU utilization.
type Stats struct {
	Received    int64 // tuple envelopes accepted from the broker
	Stored      int64 // tuples inserted into the window
	Probed      int64 // opposite-relation tuples join-processed
	Comparisons int64 // probe candidates examined
	Results     int64 // join results emitted
	Expired     int64 // tuples discarded by window expiry
	Deduped     int64 // redelivered tuples suppressed by the idempotency filter
	Pending     int   // envelopes buffered by the ordering protocol
	SubIndexes  int   // live sub-indexes in the chain
	WindowLen   int   // tuples currently stored
	MemBytes    int64 // estimated resident bytes of the window state
	WorkUnits   int64 // cumulative work, for the CPU model
	// Latency summarizes the time tuples spend in the reorder buffer —
	// the latency cost of the ordering protocol, bounded by the
	// punctuation interval (nanosecond observations).
	Latency metrics.Snapshot
}

// Core is the synchronous join logic. It is not safe for concurrent
// use; Service serializes access. Within one HandleBatch call the core
// fans work out across per-shard goroutines, but that parallelism is
// internal: by the time a Core method returns, no worker is running.
type Core struct {
	cfg     Config
	prefix  string // registry name prefix, "joiner.<rel>.<id>."
	idx     *index.Sharded
	reorder *protocol.Reorderer
	// seen makes redelivered tuples idempotent: the broker guarantees
	// at-least-once delivery (manual acks, requeue on crash), and this
	// (relation, seq) filter upgrades it to exactly-once processing.
	seen *dedup.Set

	// Batch-processing scratch, reused across HandleBatch calls so the
	// steady state allocates nothing: the reorderer's release buffer and
	// one shardRun per shard holding that shard's op list for the
	// current batch.
	releaseBuf []protocol.Envelope
	runs       []*shardRun

	// Dedup watermark pruning: seen entries are only needed while the
	// tuples they guard can still be redelivered, so once the reorderer's
	// min frontier has advanced a full horizon (stamp micros) past the
	// last rotation, the older dedup generation is discarded. This bounds
	// the filter by stamp-time instead of relying solely on the count-cap
	// rotation, which under slow unique-key ingest never fires.
	pruneHorizon uint64 // stamp micros a dedup entry must survive
	lastRotate   uint64 // min frontier at the previous rotation

	received     *metrics.Counter
	deduped      *metrics.Counter
	stored       *metrics.Counter
	probed       *metrics.Counter
	comparisons  *metrics.Counter
	results      *metrics.Counter
	expired      *metrics.Counter
	work         *metrics.Counter
	migratedIn   *metrics.Counter
	migratedSegs *metrics.Counter
	migratedOut  *metrics.Counter
	dedupRotates *metrics.Counter
	latency      *metrics.Histogram
}

// MetricsPrefix returns the joiner's registry name prefix.
func (c *Core) MetricsPrefix() string { return c.prefix }

// NewCore builds a joiner core.
func NewCore(cfg Config) (*Core, error) {
	if cfg.Pred == nil {
		return nil, fmt.Errorf("joiner: predicate is required")
	}
	if cfg.Window.IsUnbounded() != cfg.FullHistory {
		if cfg.FullHistory {
			return nil, fmt.Errorf("joiner: FullHistory set with a bounded %v", cfg.Window)
		}
		return nil, fmt.Errorf("joiner: window span must be positive (or set FullHistory)")
	}
	if cfg.ArchivePeriod <= 0 {
		if cfg.FullHistory {
			cfg.ArchivePeriod = time.Minute
		} else {
			cfg.ArchivePeriod = cfg.Window.Span / 16
			if cfg.ArchivePeriod <= 0 {
				cfg.ArchivePeriod = cfg.Window.Span
			}
		}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards > index.MaxShards {
		cfg.Shards = index.MaxShards
	}
	idx, err := index.NewSharded(
		index.ForPredicateOrdered(cfg.Pred, cfg.Rel, cfg.OrderedIndex),
		cfg.ArchivePeriod.Milliseconds(),
		cfg.Window,
		cfg.Pred.IndexAttr(cfg.Rel),
		cfg.Shards,
	)
	if err != nil {
		return nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	prefix := fmt.Sprintf("joiner.%s.%d.", cfg.Rel, cfg.ID)
	c := &Core{
		cfg:          cfg,
		prefix:       prefix,
		idx:          idx,
		reorder:      protocol.NewReorderer(),
		seen:         dedup.New(0),
		received:     cfg.Metrics.Counter(prefix + "received"),
		deduped:      cfg.Metrics.Counter(prefix + "dedup_suppressed"),
		stored:       cfg.Metrics.Counter(prefix + "stored"),
		probed:       cfg.Metrics.Counter(prefix + "probed"),
		comparisons:  cfg.Metrics.Counter(prefix + "comparisons"),
		results:      cfg.Metrics.Counter(prefix + "results"),
		expired:      cfg.Metrics.Counter(prefix + "expired"),
		work:         cfg.Metrics.Counter(prefix + "work_units"),
		migratedIn:   cfg.Metrics.Counter(prefix + "migrated_in_tuples"),
		migratedSegs: cfg.Metrics.Counter(prefix + "migrated_in_segments"),
		migratedOut:  cfg.Metrics.Counter(prefix + "migrated_out_tuples"),
		dedupRotates: cfg.Metrics.Counter(prefix + "dedup_rotations"),
		latency:      cfg.Metrics.Histogram(prefix + "order_wait_ns"),
	}
	// A dedup entry must outlive any chance of redelivery: broker
	// requeues and router duplicate publishes land within seconds, so
	// one window span plus a generous slack is ample. Full-history joins
	// have no span; a fixed minute keeps them bounded too.
	if cfg.FullHistory {
		c.pruneHorizon = 60_000_000
	} else {
		c.pruneHorizon = uint64(cfg.Window.Span.Microseconds()) + 2_000_000
	}
	c.runs = make([]*shardRun, idx.NumShards())
	for i := range c.runs {
		r := &shardRun{core: c, shard: idx.Shard(i)}
		r.visit = r.visitOne // bind once; per-probe closures would allocate
		c.runs[i] = r
	}
	return c, nil
}

// ID returns the member id.
func (c *Core) ID() int32 { return c.cfg.ID }

// NumShards returns the number of store shards.
func (c *Core) NumShards() int { return c.idx.NumShards() }

// Rel returns the relation this joiner stores.
func (c *Core) Rel() tuple.Relation { return c.cfg.Rel }

// AddRouter registers a router path with the ordering protocol.
func (c *Core) AddRouter(id int32) {
	c.reorder.AddRouter(id, protocol.SourceStore)
	c.reorder.AddRouter(id, protocol.SourceJoin)
}

// RemoveRouter unregisters a router (scale-in of the router group) and
// processes whatever its departure unblocks.
func (c *Core) RemoveRouter(id int32, emit func(tuple.JoinResult)) {
	for _, e := range c.reorder.RemoveRouterAndRelease(id) {
		c.process(e, emit)
	}
}

// Handle feeds one envelope from the given source path into the joiner.
// Join results are passed to emit as they are produced.
func (c *Core) Handle(env protocol.Envelope, src protocol.Source, emit func(tuple.JoinResult)) {
	if env.Kind == protocol.KindTuple {
		c.received.Inc()
		if env.Tuple != nil {
			c.cfg.Trace.Observe(metrics.StageDeliver, env.Tuple.TraceNS)
		}
	}
	if c.cfg.Unordered {
		if env.Kind == protocol.KindTuple {
			c.process(env, emit)
		}
		return
	}
	if env.Kind == protocol.KindTuple && env.RecvNanos == 0 {
		env.RecvNanos = time.Now().UnixNano()
	}
	c.releaseBuf = c.reorder.AddInto(env, src, c.releaseBuf[:0])
	for _, e := range c.releaseBuf {
		if e.RecvNanos != 0 {
			c.latency.Observe(time.Now().UnixNano() - e.RecvNanos)
		}
		if e.Tuple != nil {
			c.cfg.Trace.Observe(metrics.StageOrder, e.Tuple.TraceNS)
		}
		c.process(e, emit)
	}
	clearEnvelopes(c.releaseBuf)
	c.maybeRotateSeen()
}

// HandleBatch feeds a batch of envelopes from one source path into the
// joiner: the whole batch drains into the reorder buffer first, then
// every envelope the batch released is processed through the sharded
// pipeline — one classification pass partitions store and probe work
// across the shards, and the shards run in parallel when the batch is
// big enough to pay for the goroutine handoff. Join results are passed
// to emit (from the calling goroutine only) as each batch completes.
//
// Semantics match feeding the envelopes to Handle one at a time, except
// that results within a batch are emitted grouped by shard rather than
// strictly in release order — the result multiset is identical.
func (c *Core) HandleBatch(envs []protocol.Envelope, src protocol.Source, emit func(tuple.JoinResult)) {
	received := 0
	release := c.releaseBuf[:0]
	var now int64
	for _, env := range envs {
		if env.Kind == protocol.KindTuple {
			received++
			if env.Tuple != nil {
				c.cfg.Trace.Observe(metrics.StageDeliver, env.Tuple.TraceNS)
			}
			if c.cfg.Unordered {
				release = append(release, env)
				continue
			}
			if env.RecvNanos == 0 {
				if now == 0 {
					now = time.Now().UnixNano()
				}
				env.RecvNanos = now
			}
		}
		if !c.cfg.Unordered {
			release = c.reorder.AddInto(env, src, release)
		}
	}
	c.releaseBuf = release
	if received > 0 {
		c.received.Add(int64(received))
	}
	c.processReleased(release, emit)
	clearEnvelopes(release)
}

// clearEnvelopes zeroes a spent release buffer so the reused backing
// array does not pin tuples past their batch.
func clearEnvelopes(envs []protocol.Envelope) {
	for i := range envs {
		envs[i] = protocol.Envelope{}
	}
}

// parallelBatchMin is the released-batch size below which fanning out
// to shard goroutines costs more than it saves; smaller batches run the
// shards sequentially on the calling goroutine.
const parallelBatchMin = 32

// shardOp is one unit of work bound for a shard: a store of t into the
// shard, or a probe of plan against it.
type shardOp struct {
	t     *tuple.Tuple
	probe bool
	plan  predicate.Plan
}

// shardRun is a shard's slice of the current batch plus everything its
// worker needs without touching shared state: the op list built by the
// classification pass, a result buffer drained (and cleared) by the
// caller after the batch, and private tallies merged into the shared
// counters once per batch. All fields are owned by exactly one
// goroutine at a time — the classifier before the workers start, one
// worker during the run, the caller after Wait.
type shardRun struct {
	core  *Core
	shard *index.Chained
	ops   []shardOp
	visit func(*tuple.Tuple) bool

	cur         *tuple.Tuple // tuple of the probe op being served
	results     []tuple.JoinResult
	comparisons int64
	expired     int64
}

// visitOne is the probe candidate visitor, bound once as r.visit.
func (r *shardRun) visitOne(stored *tuple.Tuple) bool {
	r.comparisons++
	var rt, st *tuple.Tuple
	if r.core.cfg.Rel == tuple.R {
		rt, st = stored, r.cur
	} else {
		rt, st = r.cur, stored
	}
	if r.core.cfg.Window.Contains(stored.TS, r.cur.TS) && r.core.cfg.Pred.Match(rt, st) {
		r.results = append(r.results, tuple.NewJoinResult(rt, st))
	}
	return true
}

// run executes the shard's op list in order. Expiry precedes each probe
// (Theorem 1, as in the sequential path) and a final sweep at the
// batch's max probe timestamp keeps shards no probe happened to visit
// from accumulating stale sub-indexes.
func (r *shardRun) run(maxProbeTS int64, hasProbe bool) {
	for i := range r.ops {
		op := &r.ops[i]
		if !op.probe {
			r.shard.Insert(op.t)
			continue
		}
		r.expired += int64(r.shard.Expire(op.t.TS))
		r.cur = op.t
		r.shard.Probe(op.plan, r.visit)
	}
	if hasProbe {
		r.expired += int64(r.shard.Expire(maxProbeTS))
	}
	r.cur = nil
}

// processReleased pushes released envelopes through the sharded
// pipeline: classify sequentially (dedup and misroute checks are
// order-sensitive and shared), partition into per-shard op lists, run
// the shards, then drain results and merge tallies.
func (c *Core) processReleased(released []protocol.Envelope, emit func(tuple.JoinResult)) {
	if len(released) == 0 {
		return
	}
	var dedupedN, storedN, probedN int64
	var maxProbeTS int64
	hasProbe := false
	ordered := !c.cfg.Unordered
	var now int64
	for _, e := range released {
		t := e.Tuple
		if t == nil {
			continue
		}
		if ordered && e.RecvNanos != 0 {
			if now == 0 {
				now = time.Now().UnixNano()
			}
			c.latency.Observe(now - e.RecvNanos)
		}
		if ordered {
			c.cfg.Trace.Observe(metrics.StageOrder, t.TraceNS)
		}
		if c.seen.SeenOrAdd(dedup.Key{uint64(t.Rel), t.Seq}) {
			dedupedN++
			continue
		}
		switch e.Stream {
		case protocol.StreamStore:
			if t.Rel != c.cfg.Rel {
				continue // misrouted; a store copy must be our own relation
			}
			r := c.runs[c.idx.ShardFor(t)]
			r.ops = append(r.ops, shardOp{t: t})
			storedN++
			c.cfg.Trace.Observe(metrics.StageStore, t.TraceNS)
		case protocol.StreamJoin:
			if t.Rel != c.cfg.Rel.Opposite() {
				continue
			}
			plan := c.cfg.Pred.Plan(t)
			if s := c.idx.ProbeShard(plan); s >= 0 {
				r := c.runs[s]
				r.ops = append(r.ops, shardOp{t: t, probe: true, plan: plan})
			} else {
				// Non-partitionable probe: every shard holds candidate
				// tuples, so the probe op replicates into each shard's
				// list. Each replica only scans its own shard, so the
				// total candidate work matches the unsharded scan.
				for _, r := range c.runs {
					r.ops = append(r.ops, shardOp{t: t, probe: true, plan: plan})
				}
			}
			probedN++
			if !hasProbe || t.TS > maxProbeTS {
				maxProbeTS = t.TS
				hasProbe = true
			}
			c.cfg.Trace.Observe(metrics.StageProbe, t.TraceNS)
		}
	}
	if len(c.runs) > 1 && len(released) >= parallelBatchMin {
		var wg sync.WaitGroup
		for _, r := range c.runs[1:] {
			if len(r.ops) == 0 && !hasProbe {
				continue
			}
			wg.Add(1)
			go func(r *shardRun) {
				defer wg.Done()
				r.run(maxProbeTS, hasProbe)
			}(r)
		}
		c.runs[0].run(maxProbeTS, hasProbe)
		wg.Wait()
	} else {
		for _, r := range c.runs {
			if len(r.ops) == 0 && !hasProbe {
				continue
			}
			r.run(maxProbeTS, hasProbe)
		}
	}
	var comparisonsN, expiredN, resultsN int64
	for _, r := range c.runs {
		comparisonsN += r.comparisons
		expiredN += r.expired
		r.comparisons, r.expired = 0, 0
		for i := range r.results {
			emit(r.results[i])
		}
		resultsN += int64(len(r.results))
		for i := range r.results {
			r.results[i] = tuple.JoinResult{} // drop tuple pointers
		}
		r.results = r.results[:0]
		for i := range r.ops {
			r.ops[i] = shardOp{}
		}
		r.ops = r.ops[:0]
	}
	if dedupedN > 0 {
		c.deduped.Add(dedupedN)
	}
	if storedN > 0 {
		c.stored.Add(storedN)
	}
	if probedN > 0 {
		c.probed.Add(probedN)
	}
	if comparisonsN > 0 {
		c.comparisons.Add(comparisonsN)
	}
	if resultsN > 0 {
		c.results.Add(resultsN)
	}
	if expiredN > 0 {
		c.expired.Add(expiredN)
	}
	if work := storedN + probedN + comparisonsN; work > 0 {
		c.work.Add(work)
	}
	c.maybeRotateSeen()
}

// maybeRotateSeen drops the older dedup generation once the reorderer's
// min frontier — the stamp below which every delivered envelope has
// been released and processed — has advanced a full prune horizon past
// the previous rotation. Entries therefore survive between one and two
// horizons of stamp-time, far longer than any redelivery can lag, while
// the filter stays bounded under sustained ingest. The count-cap
// rotation inside dedup.Set remains as the memory backstop.
func (c *Core) maybeRotateSeen() {
	f := c.reorder.MinFrontier()
	if f == 0 {
		return // no punctuation yet (or unordered mode): nothing to anchor on
	}
	if c.lastRotate == 0 || f < c.lastRotate {
		// First anchor, or the min frontier regressed because a new
		// router path joined and has not punctuated yet: re-anchor.
		c.lastRotate = f
		return
	}
	if f-c.lastRotate < c.pruneHorizon {
		return
	}
	c.seen.Rotate()
	c.lastRotate = f
	c.dedupRotates.Inc()
}

// Flush releases and processes every buffered envelope regardless of
// punctuation frontiers (engine shutdown).
func (c *Core) Flush(emit func(tuple.JoinResult)) {
	for _, e := range c.reorder.Flush() {
		c.process(e, emit)
	}
}

func (c *Core) process(env protocol.Envelope, emit func(tuple.JoinResult)) {
	t := env.Tuple
	if t != nil && c.seen.SeenOrAdd(dedup.Key{uint64(t.Rel), t.Seq}) {
		// A redelivery of a tuple this member already stored or probed
		// (consumer crash, requeue, duplicate publish): processing it
		// again would double-insert or re-emit. Within one core each
		// (relation, seq) legitimately arrives on exactly one stream,
		// once, so suppression is safe.
		c.deduped.Inc()
		return
	}
	switch env.Stream {
	case protocol.StreamStore:
		if t.Rel != c.cfg.Rel {
			return // misrouted; a store copy must be our own relation
		}
		c.idx.Insert(t)
		c.stored.Inc()
		c.work.Inc()
		c.cfg.Trace.Observe(metrics.StageStore, t.TraceNS)
	case protocol.StreamJoin:
		if t.Rel != c.cfg.Rel.Opposite() {
			return
		}
		// Data discarding first (Theorem 1), then join processing
		// against the surviving sub-indexes (§3.1.2). Discarding works
		// at sub-index granularity — dropping a chain link is O(1)
		// regardless of how many tuples it holds, which is the chained
		// index's reason to exist — so it charges one work unit per
		// expiry check, not per discarded tuple.
		dropped := c.idx.Expire(t.TS)
		c.expired.Add(int64(dropped))
		plan := c.cfg.Pred.Plan(t)
		c.idx.Probe(plan, func(stored *tuple.Tuple) bool {
			c.comparisons.Inc()
			c.work.Inc()
			var r, s *tuple.Tuple
			if c.cfg.Rel == tuple.R {
				r, s = stored, t
			} else {
				r, s = t, stored
			}
			if c.cfg.Window.Contains(stored.TS, t.TS) && c.cfg.Pred.Match(r, s) {
				c.results.Inc()
				emit(tuple.NewJoinResult(r, s))
			}
			return true
		})
		c.probed.Inc()
		c.work.Inc()
		c.cfg.Trace.Observe(metrics.StageProbe, t.TraceNS)
	}
}

// Stats snapshots the joiner's counters.
func (c *Core) Stats() Stats {
	return Stats{
		Received:    c.received.Value(),
		Stored:      c.stored.Value(),
		Probed:      c.probed.Value(),
		Comparisons: c.comparisons.Value(),
		Results:     c.results.Value(),
		Expired:     c.expired.Value(),
		Deduped:     c.deduped.Value(),
		Pending:     c.reorder.Pending(),
		SubIndexes:  c.idx.NumSubIndexes(),
		WindowLen:   c.idx.Len(),
		MemBytes:    c.MemBytes(),
		WorkUnits:   c.work.Value(),
		Latency:     c.latency.Snapshot(),
	}
}

// MemBytes estimates the joiner's resident state: the chained index plus
// the reorder buffer.
func (c *Core) MemBytes() int64 {
	return c.idx.MemBytes() + int64(c.reorder.Pending())*96
}

// Snapshot captures the core's full recoverable state: the chained
// index per segment (sealed sub-indexes are immutable, so the
// checkpoint layer writes each once), the ordering protocol's frontiers
// and still-buffered envelopes, and the dedup filter. The caller
// (Service) must hold its serialization lock; the returned snapshot
// shares tuple pointers with the live index, which is safe because
// stored tuples are immutable after insertion.
func (c *Core) Snapshot() *checkpoint.Snapshot {
	fronts, pending := c.reorder.Export()
	return &checkpoint.Snapshot{
		Rel:       c.cfg.Rel,
		JoinerID:  c.cfg.ID,
		Segments:  c.idx.ExportSegments(),
		Frontiers: fronts,
		Pending:   pending,
		Dedup:     c.seen.Export(),
	}
}

// Restore replaces the core's window, ordering and dedup state with a
// recovered snapshot — the cold-restart path: the core must be freshly
// built and not yet receiving traffic. Router paths registered before
// the restore are preserved only through the snapshot's own frontiers;
// call AddRouter after Restore for any paths added since the checkpoint
// (AddRouter never regresses an existing frontier).
func (c *Core) Restore(snap *checkpoint.Snapshot) error {
	if snap.Rel != c.cfg.Rel || snap.JoinerID != c.cfg.ID {
		return fmt.Errorf("joiner: snapshot for %s-%d restored into %s-%d",
			snap.Rel, snap.JoinerID, c.cfg.Rel, c.cfg.ID)
	}
	if err := c.idx.ImportSegments(snap.Segments); err != nil {
		return fmt.Errorf("joiner: restore: %w", err)
	}
	c.reorder.Restore(snap.Frontiers, snap.Pending)
	c.seen = dedup.FromState(snap.Dedup)
	return nil
}

// Graft adds a migration donor's sealed segments to this member's
// window (live scale-in). The segments keep their donor identity
// (origin, id), which makes a retried graft idempotent at segment
// granularity: after a recipient crash between graft and checkpoint,
// replaying the same segments adds nothing. The donor's dedup filter is
// deliberately NOT merged — copies of in-flight tuples addressed to
// this member must still process here, and segment-level identity
// already suppresses the only duplication grafting can cause.
func (c *Core) Graft(segs []index.Segment) error {
	added, err := c.idx.Graft(segs)
	if err != nil {
		return fmt.Errorf("joiner: graft: %w", err)
	}
	c.migratedIn.Add(int64(added))
	c.migratedSegs.Add(int64(len(segs)))
	c.work.Add(int64(added))
	return nil
}

// MinFrontier exposes the ordering protocol's release frontier: every
// delivered envelope stamped at or below it has been released from the
// reorder buffer and processed. Migration polls it to detect drain.
func (c *Core) MinFrontier() uint64 { return c.reorder.MinFrontier() }

// ExportKey returns the stored tuples whose join key hashes to keyHash
// (hot-key migration export). The tuples stay in the window — the donor
// keeps serving broadcast probes against them until the migration's
// cut-over removes exactly this set via DropKeySeqs. Pointers are
// shared; stored tuples are immutable.
func (c *Core) ExportKey(keyHash uint64) []*tuple.Tuple {
	return c.idx.ExportKey(keyHash)
}

// DropKeySeqs removes the tuples of keyHash whose sequence numbers are
// in seqs — the set a prior ExportKey captured — and returns how many
// were removed. Tuples of the same key stored after the export (the
// scattered arrivals of the key's hot placement) are untouched.
func (c *Core) DropKeySeqs(keyHash uint64, seqs []uint64) int {
	n := c.idx.RemoveKeySeqs(c.cfg.ID, keyHash, seqs)
	if n > 0 {
		c.migratedOut.Add(int64(n))
	}
	return n
}

// SeenLen reports the dedup filter's current entry count (tests and
// memory accounting for the watermark-pruning bound).
func (c *Core) SeenLen() int { return c.seen.Len() }
