package joiner

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/tuple"
)

// resultKey fingerprints a join result for multiset comparison.
func resultKey(jr tuple.JoinResult) string {
	return fmt.Sprintf("%d|%d", jr.Left.Seq, jr.Right.Seq)
}

// workload builds a mixed store/join envelope stream with punctuation
// interleaved every punctEvery tuples.
func workload(seed int64, n int, pred func(i int) tuple.Value) (envs []protocol.Envelope, srcs []protocol.Source) {
	rng := rand.New(rand.NewSource(seed))
	counter := uint64(0)
	seq := uint64(0)
	ts := int64(1000)
	for i := 0; i < n; i++ {
		counter++
		seq++
		ts += rng.Int63n(20)
		if rng.Intn(2) == 0 {
			envs = append(envs, storeEnv(counter, tuple.New(tuple.R, seq, ts, pred(i))))
			srcs = append(srcs, protocol.SourceStore)
		} else {
			envs = append(envs, joinEnv(counter, tuple.New(tuple.S, seq, ts, pred(i))))
			srcs = append(srcs, protocol.SourceJoin)
		}
		if i%16 == 15 {
			counter++
			for _, src := range []protocol.Source{protocol.SourceStore, protocol.SourceJoin} {
				envs = append(envs, protocol.Envelope{Kind: protocol.KindPunctuation, RouterID: 1, Counter: counter})
				srcs = append(srcs, src)
			}
		}
	}
	// Final punctuation flushes everything.
	counter++
	for _, src := range []protocol.Source{protocol.SourceStore, protocol.SourceJoin} {
		envs = append(envs, protocol.Envelope{Kind: protocol.KindPunctuation, RouterID: 1, Counter: counter})
		srcs = append(srcs, protocol.Source(src))
	}
	return envs, srcs
}

func runHandle(t *testing.T, c *Core, envs []protocol.Envelope, srcs []protocol.Source) []string {
	t.Helper()
	var out []string
	collect := func(jr tuple.JoinResult) { out = append(out, resultKey(jr)) }
	for i, e := range envs {
		c.Handle(e, srcs[i], collect)
	}
	sort.Strings(out)
	return out
}

// runHandleBatch drives the same stream through HandleBatch in large
// per-source chunks, exercising the parallel shard fan-out (batches
// comfortably exceed parallelBatchMin).
func runHandleBatch(t *testing.T, c *Core, envs []protocol.Envelope, srcs []protocol.Source) []string {
	t.Helper()
	var out []string
	collect := func(jr tuple.JoinResult) { out = append(out, resultKey(jr)) }
	var batch []protocol.Envelope
	cur := protocol.SourceStore
	flush := func() {
		if len(batch) > 0 {
			c.HandleBatch(batch, cur, collect)
			batch = batch[:0]
		}
	}
	for i, e := range envs {
		if srcs[i] != cur {
			flush()
			cur = srcs[i]
		}
		batch = append(batch, e)
	}
	flush()
	sort.Strings(out)
	return out
}

// TestShardedMatchesSingleShard is the core equivalence property: the
// sharded batched pipeline must produce exactly the result multiset of
// a one-shard core fed the same envelopes one at a time, for both
// partitionable (equi) and fan-out (band) predicates.
func TestShardedMatchesSingleShard(t *testing.T) {
	preds := []struct {
		name string
		pred predicate.Predicate
		key  func(i int) tuple.Value
	}{
		{"equi", predicate.NewEqui(0, 0), func(i int) tuple.Value { return tuple.Int(int64(i % 7)) }},
		{"band", predicate.NewBand(0, 0, 2), func(i int) tuple.Value { return tuple.Float(float64(i % 40)) }},
	}
	for _, pc := range preds {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pc.name, seed), func(t *testing.T) {
				envs, srcs := workload(seed, 400, pc.key)
				single, err := NewCore(Config{Rel: tuple.R, Pred: pc.pred, Window: testWin(), Shards: 1})
				if err != nil {
					t.Fatal(err)
				}
				single.AddRouter(1)
				sharded, err := NewCore(Config{Rel: tuple.R, Pred: pc.pred, Window: testWin(), Shards: 4})
				if err != nil {
					t.Fatal(err)
				}
				sharded.AddRouter(1)
				want := runHandle(t, single, envs, srcs)
				got := runHandleBatch(t, sharded, envs, srcs)
				if len(got) != len(want) {
					t.Fatalf("sharded produced %d results, single produced %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("result %d differs: %s vs %s", i, got[i], want[i])
					}
				}
				ss, gs := single.Stats(), sharded.Stats()
				if gs.Stored != ss.Stored || gs.Probed != ss.Probed || gs.Results != ss.Results {
					t.Fatalf("counter drift: sharded stored=%d probed=%d results=%d, single stored=%d probed=%d results=%d",
						gs.Stored, gs.Probed, gs.Results, ss.Stored, ss.Probed, ss.Results)
				}
			})
		}
	}
}

// TestHandleBatchDedupsRedeliveries: feeding the same batch twice must
// not double-store or re-emit (the exactly-once filter works batched).
func TestHandleBatchDedupsRedeliveries(t *testing.T) {
	c, err := NewCore(Config{Rel: tuple.R, Pred: predicate.NewEqui(0, 0), Window: testWin(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.AddRouter(1)
	envs, srcs := workload(9, 200, func(i int) tuple.Value { return tuple.Int(int64(i % 5)) })
	first := runHandleBatch(t, c, envs, srcs)
	if len(first) == 0 {
		t.Fatal("workload produced no results")
	}
	second := runHandleBatch(t, c, envs, srcs)
	if len(second) != 0 {
		t.Fatalf("redelivered batch re-emitted %d results", len(second))
	}
	if dd := c.Stats().Deduped; dd == 0 {
		t.Fatal("dedup counter did not move")
	}
}

// TestShardedSnapshotRestoreRoundTrip: a sharded core's snapshot
// restores into cores with the same and with a different shard count,
// and both continue producing correct results.
func TestShardedSnapshotRestoreRoundTrip(t *testing.T) {
	src, err := NewCore(Config{Rel: tuple.R, Pred: predicate.NewEqui(0, 0), Window: testWin(), Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	src.AddRouter(1)
	envs, srcs := workload(13, 300, func(i int) tuple.Value { return tuple.Int(int64(i % 9)) })
	runHandleBatch(t, src, envs, srcs)
	snap := src.Snapshot()
	var wantResults []tuple.JoinResult
	probe2 := tuple.New(tuple.S, 100_001, 7000, tuple.Int(3))
	src.Handle(joinEnv(1_000_002, probe2), protocol.SourceJoin, func(jr tuple.JoinResult) {
		wantResults = append(wantResults, jr)
	})
	punct2 := protocol.Envelope{Kind: protocol.KindPunctuation, RouterID: 1, Counter: 1_000_003}
	src.Handle(punct2, protocol.SourceStore, func(jr tuple.JoinResult) { wantResults = append(wantResults, jr) })
	src.Handle(punct2, protocol.SourceJoin, func(jr tuple.JoinResult) { wantResults = append(wantResults, jr) })
	for _, shards := range []int{3, 5} {
		restored, err := NewCore(Config{Rel: tuple.R, Pred: predicate.NewEqui(0, 0), Window: testWin(), Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.Restore(snap); err != nil {
			t.Fatalf("restore into %d shards: %v", shards, err)
		}
		if restored.idx.Len() != src.idx.Len() {
			t.Fatalf("restored window len=%d, want %d", restored.idx.Len(), src.idx.Len())
		}
		// A probe on the restored core joins against the full window.
		var results []tuple.JoinResult
		probe := tuple.New(tuple.S, 100_000, 7000, tuple.Int(3))
		restored.Handle(joinEnv(1_000_000, probe), protocol.SourceJoin, func(jr tuple.JoinResult) {
			results = append(results, jr)
		})
		punct := protocol.Envelope{Kind: protocol.KindPunctuation, RouterID: 1, Counter: 1_000_001}
		restored.Handle(punct, protocol.SourceStore, func(jr tuple.JoinResult) { results = append(results, jr) })
		restored.Handle(punct, protocol.SourceJoin, func(jr tuple.JoinResult) { results = append(results, jr) })
		if len(results) != len(wantResults) {
			t.Fatalf("restored core with %d shards produced %d results for the probe, want %d",
				shards, len(results), len(wantResults))
		}
	}
}
