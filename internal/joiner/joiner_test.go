package joiner

import (
	"testing"
	"time"

	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

func testWin() window.Sliding { return window.Sliding{Span: 10 * time.Second} }

func newRJoiner(t *testing.T, pred predicate.Predicate) *Core {
	t.Helper()
	c, err := NewCore(Config{ID: 0, Rel: tuple.R, Pred: pred, Window: testWin()})
	if err != nil {
		t.Fatal(err)
	}
	c.AddRouter(1)
	return c
}

func storeEnv(counter uint64, t *tuple.Tuple) protocol.Envelope {
	return protocol.Envelope{
		Kind: protocol.KindTuple, RouterID: 1, Counter: counter,
		Stream: protocol.StreamStore, Tuple: t,
	}
}

func joinEnv(counter uint64, t *tuple.Tuple) protocol.Envelope {
	return protocol.Envelope{
		Kind: protocol.KindTuple, RouterID: 1, Counter: counter,
		Stream: protocol.StreamJoin, Tuple: t,
	}
}

func punctAll(c *Core, counter uint64, collect func(tuple.JoinResult)) {
	p := protocol.Envelope{Kind: protocol.KindPunctuation, RouterID: 1, Counter: counter}
	c.Handle(p, protocol.SourceStore, collect)
	c.Handle(p, protocol.SourceJoin, collect)
}

func TestCoreValidation(t *testing.T) {
	if _, err := NewCore(Config{Rel: tuple.R, Window: testWin()}); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := NewCore(Config{Rel: tuple.R, Pred: predicate.NewEqui(0, 0)}); err == nil {
		t.Error("zero window accepted")
	}
	c, err := NewCore(Config{ID: 3, Rel: tuple.S, Pred: predicate.NewEqui(0, 0), Window: testWin()})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() != 3 || c.Rel() != tuple.S {
		t.Error("accessors wrong")
	}
}

func TestStoreThenJoinProducesResult(t *testing.T) {
	c := newRJoiner(t, predicate.NewEqui(0, 0))
	var results []tuple.JoinResult
	collect := func(jr tuple.JoinResult) { results = append(results, jr) }

	r := tuple.New(tuple.R, 1, 1000, tuple.Int(7))
	s := tuple.New(tuple.S, 2, 1500, tuple.Int(7))
	c.Handle(storeEnv(1, r), protocol.SourceStore, collect)
	c.Handle(joinEnv(2, s), protocol.SourceJoin, collect)
	if len(results) != 0 {
		t.Fatal("results emitted before punctuation")
	}
	punctAll(c, 2, collect)
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	jr := results[0]
	if jr.Left.Seq != 1 || jr.Right.Seq != 2 || jr.TS != 1500 {
		t.Errorf("result = %v", jr)
	}
	st := c.Stats()
	if st.Stored != 1 || st.Probed != 1 || st.Results != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNoMatchNoResult(t *testing.T) {
	c := newRJoiner(t, predicate.NewEqui(0, 0))
	var results []tuple.JoinResult
	collect := func(jr tuple.JoinResult) { results = append(results, jr) }
	c.Handle(storeEnv(1, tuple.New(tuple.R, 1, 0, tuple.Int(1))), protocol.SourceStore, collect)
	c.Handle(joinEnv(2, tuple.New(tuple.S, 2, 0, tuple.Int(2))), protocol.SourceJoin, collect)
	punctAll(c, 2, collect)
	if len(results) != 0 {
		t.Errorf("results = %v", results)
	}
}

func TestWindowConstraintEnforced(t *testing.T) {
	c := newRJoiner(t, predicate.NewEqui(0, 0))
	var results []tuple.JoinResult
	collect := func(jr tuple.JoinResult) { results = append(results, jr) }
	// r at t=0; s arrives at t=10s (inside) and another at t=10.001s+
	// after expiry boundary.
	c.Handle(storeEnv(1, tuple.New(tuple.R, 1, 0, tuple.Int(7))), protocol.SourceStore, collect)
	c.Handle(joinEnv(2, tuple.New(tuple.S, 2, 10_000, tuple.Int(7))), protocol.SourceJoin, collect)
	punctAll(c, 2, collect)
	if len(results) != 1 {
		t.Fatalf("in-window join missing: %v", results)
	}
	c.Handle(joinEnv(3, tuple.New(tuple.S, 3, 10_001, tuple.Int(7))), protocol.SourceJoin, collect)
	punctAll(c, 3, collect)
	if len(results) != 1 {
		t.Errorf("out-of-window join produced a result")
	}
}

func TestTheorem1Expiry(t *testing.T) {
	c := newRJoiner(t, predicate.NewEqui(0, 0))
	collect := func(tuple.JoinResult) {}
	// Fill two archive periods, then expire with a far-future S tuple.
	for i := 0; i < 100; i++ {
		c.Handle(storeEnv(uint64(i+1), tuple.New(tuple.R, uint64(i), int64(i)*200, tuple.Int(int64(i)))), protocol.SourceStore, collect)
	}
	punctAll(c, 100, collect)
	if c.Stats().WindowLen != 100 {
		t.Fatalf("WindowLen = %d", c.Stats().WindowLen)
	}
	c.Handle(joinEnv(101, tuple.New(tuple.S, 1000, 40_000, tuple.Int(1))), protocol.SourceJoin, collect)
	punctAll(c, 101, collect)
	st := c.Stats()
	if st.Expired == 0 {
		t.Error("no tuples expired")
	}
	if st.WindowLen >= 100 {
		t.Errorf("WindowLen = %d after expiry", st.WindowLen)
	}
	if st.MemBytes <= 0 {
		t.Errorf("MemBytes = %d", st.MemBytes)
	}
}

func TestSJoinerOrientation(t *testing.T) {
	// An S-side joiner stores S tuples and probes with R tuples; the
	// predicate must still see (r, s) in the right order.
	pred := predicate.NewTheta(0, 0, predicate.LT) // R < S
	c, err := NewCore(Config{ID: 0, Rel: tuple.S, Pred: pred, Window: testWin()})
	if err != nil {
		t.Fatal(err)
	}
	c.AddRouter(1)
	var results []tuple.JoinResult
	collect := func(jr tuple.JoinResult) { results = append(results, jr) }
	c.Handle(storeEnv(1, tuple.New(tuple.S, 1, 0, tuple.Int(10))), protocol.SourceStore, collect)
	c.Handle(joinEnv(2, tuple.New(tuple.R, 2, 0, tuple.Int(5))), protocol.SourceJoin, collect)  // 5 < 10: match
	c.Handle(joinEnv(3, tuple.New(tuple.R, 3, 0, tuple.Int(15))), protocol.SourceJoin, collect) // 15 < 10: no
	punctAll(c, 3, collect)
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	if results[0].Left.Seq != 2 || results[0].Right.Seq != 1 {
		t.Errorf("orientation wrong: %v", results[0])
	}
}

func TestMisroutedTuplesIgnored(t *testing.T) {
	c := newRJoiner(t, predicate.NewEqui(0, 0))
	collect := func(tuple.JoinResult) {}
	// A store copy of an S tuple and a join copy of an R tuple are both
	// wrong for an R-side joiner.
	c.Handle(storeEnv(1, tuple.New(tuple.S, 1, 0, tuple.Int(1))), protocol.SourceStore, collect)
	c.Handle(joinEnv(2, tuple.New(tuple.R, 2, 0, tuple.Int(1))), protocol.SourceJoin, collect)
	punctAll(c, 2, collect)
	st := c.Stats()
	if st.Stored != 0 || st.Probed != 0 {
		t.Errorf("misrouted tuples processed: %+v", st)
	}
}

func TestBandJoinViaOrderedIndex(t *testing.T) {
	c := newRJoiner(t, predicate.NewBand(0, 0, 2))
	var results []tuple.JoinResult
	collect := func(jr tuple.JoinResult) { results = append(results, jr) }
	for i, v := range []float64{1, 5, 9, 13} {
		c.Handle(storeEnv(uint64(i+1), tuple.New(tuple.R, uint64(i), 0, tuple.Float(v))), protocol.SourceStore, collect)
	}
	c.Handle(joinEnv(5, tuple.New(tuple.S, 100, 0, tuple.Float(6))), protocol.SourceJoin, collect)
	punctAll(c, 5, collect)
	// |5-6|<=2 matches; |1-6|,|9-6| are 5 and 3: only value 5 matches.
	if len(results) != 1 || results[0].Left.Value(0).AsFloat() != 5 {
		t.Fatalf("results = %v", results)
	}
	// The ordered index should not have compared every stored tuple:
	// comparisons < stored count shows the range plan pruned.
	if st := c.Stats(); st.Comparisons >= 4 {
		t.Errorf("comparisons = %d, range probe did not prune", st.Comparisons)
	}
}

func TestUnorderedModeProcessesImmediately(t *testing.T) {
	c, err := NewCore(Config{ID: 0, Rel: tuple.R, Pred: predicate.NewEqui(0, 0), Window: testWin(), Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	var results []tuple.JoinResult
	collect := func(jr tuple.JoinResult) { results = append(results, jr) }
	c.Handle(storeEnv(1, tuple.New(tuple.R, 1, 0, tuple.Int(7))), protocol.SourceStore, collect)
	c.Handle(joinEnv(2, tuple.New(tuple.S, 2, 0, tuple.Int(7))), protocol.SourceJoin, collect)
	if len(results) != 1 {
		t.Fatalf("unordered mode did not process immediately: %v", results)
	}
}

// TestFig8OrderingScenarios reproduces Figure 8: the same r/s pair fed
// to both joiners under every arrival order. With the protocol the pair
// must produce exactly one result overall.
func TestFig8OrderingScenarios(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	r := tuple.New(tuple.R, 1, 1000, tuple.Int(7))
	s := tuple.New(tuple.S, 2, 1001, tuple.Int(7))
	// Stamps: r has counter 1, s has counter 2 (one router).
	rStore, rJoin := storeEnv(1, r), joinEnv(1, r)
	sStore, sJoin := storeEnv(2, s), joinEnv(2, s)

	type arrival struct {
		env protocol.Envelope
		src protocol.Source
		toR bool // deliver to the R-side joiner (else S-side)
	}
	scenarios := map[string][]arrival{
		// (a) r stored before s probes at Ri; r probes before s stored at Sj.
		"a": {{rStore, protocol.SourceStore, true}, {sJoin, protocol.SourceJoin, true},
			{rJoin, protocol.SourceJoin, false}, {sStore, protocol.SourceStore, false}},
		// (b) symmetric of (a).
		"b": {{sJoin, protocol.SourceJoin, true}, {rStore, protocol.SourceStore, true},
			{sStore, protocol.SourceStore, false}, {rJoin, protocol.SourceJoin, false}},
		// (c) the missed-result anomaly order.
		"c": {{sJoin, protocol.SourceJoin, true}, {rStore, protocol.SourceStore, true},
			{rJoin, protocol.SourceJoin, false}, {sStore, protocol.SourceStore, false}},
		// (d) the duplicate-result anomaly order.
		"d": {{rStore, protocol.SourceStore, true}, {sJoin, protocol.SourceJoin, true},
			{sStore, protocol.SourceStore, false}, {rJoin, protocol.SourceJoin, false}},
	}
	for name, seq := range scenarios {
		rJoiner, err := NewCore(Config{ID: 0, Rel: tuple.R, Pred: pred, Window: testWin()})
		if err != nil {
			t.Fatal(err)
		}
		sJoiner, err := NewCore(Config{ID: 0, Rel: tuple.S, Pred: pred, Window: testWin()})
		if err != nil {
			t.Fatal(err)
		}
		rJoiner.AddRouter(1)
		sJoiner.AddRouter(1)
		var results []tuple.JoinResult
		collect := func(jr tuple.JoinResult) { results = append(results, jr) }
		for _, a := range seq {
			if a.toR {
				rJoiner.Handle(a.env, a.src, collect)
			} else {
				sJoiner.Handle(a.env, a.src, collect)
			}
		}
		punctAll(rJoiner, 2, collect)
		punctAll(sJoiner, 2, collect)
		if len(results) != 1 {
			t.Errorf("scenario %s: %d results, want exactly 1", name, len(results))
		}
	}
}

// TestFig8AnomaliesWithoutProtocol shows the protocol is necessary:
// unordered processing yields 0 results for scenario (c) and 2 for (d).
func TestFig8AnomaliesWithoutProtocol(t *testing.T) {
	pred := predicate.NewEqui(0, 0)
	r := tuple.New(tuple.R, 1, 1000, tuple.Int(7))
	s := tuple.New(tuple.S, 2, 1001, tuple.Int(7))
	run := func(seq []struct {
		env protocol.Envelope
		toR bool
	}) int {
		rJoiner, _ := NewCore(Config{Rel: tuple.R, Pred: pred, Window: testWin(), Unordered: true})
		sJoiner, _ := NewCore(Config{Rel: tuple.S, Pred: pred, Window: testWin(), Unordered: true})
		n := 0
		collect := func(tuple.JoinResult) { n++ }
		for _, a := range seq {
			if a.toR {
				rJoiner.Handle(a.env, protocol.SourceStore, collect)
			} else {
				sJoiner.Handle(a.env, protocol.SourceStore, collect)
			}
		}
		return n
	}
	type step = struct {
		env protocol.Envelope
		toR bool
	}
	missed := run([]step{
		{joinEnv(2, s), true}, {storeEnv(1, r), true}, // s probes before r stored
		{joinEnv(1, r), false}, {storeEnv(2, s), false}, // r probes before s stored
	})
	if missed != 0 {
		t.Errorf("scenario (c) without protocol: %d results, want 0 (missed)", missed)
	}
	duplicated := run([]step{
		{storeEnv(1, r), true}, {joinEnv(2, s), true}, // result at Ri
		{storeEnv(2, s), false}, {joinEnv(1, r), false}, // result at Sj too
	})
	if duplicated != 2 {
		t.Errorf("scenario (d) without protocol: %d results, want 2 (duplicate)", duplicated)
	}
}

func TestFlushReleasesBuffered(t *testing.T) {
	c := newRJoiner(t, predicate.NewEqui(0, 0))
	var results []tuple.JoinResult
	collect := func(jr tuple.JoinResult) { results = append(results, jr) }
	c.Handle(storeEnv(1, tuple.New(tuple.R, 1, 0, tuple.Int(7))), protocol.SourceStore, collect)
	c.Handle(joinEnv(2, tuple.New(tuple.S, 2, 0, tuple.Int(7))), protocol.SourceJoin, collect)
	if c.Stats().Pending != 2 {
		t.Fatalf("Pending = %d", c.Stats().Pending)
	}
	c.Flush(collect)
	if len(results) != 1 || c.Stats().Pending != 0 {
		t.Errorf("Flush: results=%d pending=%d", len(results), c.Stats().Pending)
	}
}

func TestRemoveRouterUnblocks(t *testing.T) {
	c := newRJoiner(t, predicate.NewEqui(0, 0))
	c.AddRouter(2) // second router never punctuates
	var results []tuple.JoinResult
	collect := func(jr tuple.JoinResult) { results = append(results, jr) }
	c.Handle(storeEnv(1, tuple.New(tuple.R, 1, 0, tuple.Int(7))), protocol.SourceStore, collect)
	c.Handle(joinEnv(2, tuple.New(tuple.S, 2, 0, tuple.Int(7))), protocol.SourceJoin, collect)
	punctAll(c, 2, collect)
	if len(results) != 0 {
		t.Fatal("released despite router 2 frontier")
	}
	c.RemoveRouter(2, collect)
	if len(results) != 1 {
		t.Errorf("RemoveRouter did not unblock: %v", results)
	}
}

func TestArchivePeriodDefault(t *testing.T) {
	c, err := NewCore(Config{Rel: tuple.R, Pred: predicate.NewEqui(0, 0), Window: window.Sliding{Span: 16 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	collect := func(tuple.JoinResult) {}
	// One insert per 500ms over 16s: with P = W/16 = 1s we expect many
	// sub-indexes.
	for i := 0; i < 32; i++ {
		c.Handle(storeEnv(uint64(i+1), tuple.New(tuple.R, uint64(i), int64(i*500), tuple.Int(1))), protocol.SourceStore, collect)
	}
	punctAll(c, 32, collect)
	if st := c.Stats(); st.SubIndexes < 8 {
		t.Errorf("SubIndexes = %d, default archive period not applied", st.SubIndexes)
	}
}

func BenchmarkJoinerEquiThroughput(b *testing.B) {
	c, _ := NewCore(Config{Rel: tuple.R, Pred: predicate.NewEqui(0, 0), Window: testWin(), Unordered: true})
	collect := func(tuple.JoinResult) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := int64(i)
		c.Handle(storeEnv(uint64(i)*2+1, tuple.New(tuple.R, uint64(i), ts, tuple.Int(int64(i&1023)))), protocol.SourceStore, collect)
		c.Handle(joinEnv(uint64(i)*2+2, tuple.New(tuple.S, uint64(i), ts, tuple.Int(int64(i&1023)))), protocol.SourceJoin, collect)
	}
}

func TestFullHistoryJoinerNeverExpires(t *testing.T) {
	c, err := NewCore(Config{
		Rel: tuple.R, Pred: predicate.NewEqui(0, 0),
		Window: window.Unbounded(), FullHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddRouter(1)
	var results []tuple.JoinResult
	collect := func(jr tuple.JoinResult) { results = append(results, jr) }
	// Store a tuple, then probe with one a year of event time later:
	// windowed mode would have expired it long ago.
	c.Handle(storeEnv(1, tuple.New(tuple.R, 1, 0, tuple.Int(7))), protocol.SourceStore, collect)
	yearMs := int64(365 * 24 * time.Hour / time.Millisecond)
	c.Handle(joinEnv(2, tuple.New(tuple.S, 2, yearMs, tuple.Int(7))), protocol.SourceJoin, collect)
	punctAll(c, 2, collect)
	if len(results) != 1 {
		t.Fatalf("full-history join missed: %v", results)
	}
	if st := c.Stats(); st.Expired != 0 || st.WindowLen != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFullHistoryFlagValidation(t *testing.T) {
	if _, err := NewCore(Config{
		Rel: tuple.R, Pred: predicate.NewEqui(0, 0),
		Window: testWin(), FullHistory: true,
	}); err == nil {
		t.Error("FullHistory with bounded window accepted")
	}
	if _, err := NewCore(Config{
		Rel: tuple.R, Pred: predicate.NewEqui(0, 0),
		Window: window.Unbounded(),
	}); err == nil {
		t.Error("unbounded window without FullHistory accepted")
	}
}
