package joiner

import (
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/topo"
	"bistream/internal/tuple"
)

func startService(t *testing.T, rel tuple.Relation) (*broker.Broker, *Service) {
	t.Helper()
	b := broker.New(nil)
	t.Cleanup(func() { b.Close() })
	for _, r := range []tuple.Relation{tuple.R, tuple.S} {
		if err := b.DeclareExchange(topo.StoreExchange(r), broker.Topic); err != nil {
			t.Fatal(err)
		}
		if err := b.DeclareExchange(topo.JoinExchange(r), broker.Topic); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.DeclareExchange(topo.ResultExchange, broker.Topic); err != nil {
		t.Fatal(err)
	}
	core, err := NewCore(Config{ID: 0, Rel: rel, Pred: predicate.NewEqui(0, 0), Window: testWin()})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(core, b)
	svc.AddRouter(1)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	return b, svc
}

func publishEnv(t *testing.T, b *broker.Broker, exchange, key string, env protocol.Envelope) {
	t.Helper()
	if err := b.Publish(exchange, key, nil, env.Marshal()); err != nil {
		t.Fatal(err)
	}
}

func TestServiceEndToEndJoin(t *testing.T) {
	b, svc := startService(t, tuple.R)
	// Result sink.
	if err := b.DeclareQueue("sink", broker.QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("sink", topo.ResultExchange, topo.ResultKey); err != nil {
		t.Fatal(err)
	}
	sink, err := b.Consume("sink", 16, true)
	if err != nil {
		t.Fatal(err)
	}

	storeEx := topo.StoreExchange(tuple.R)
	joinEx := topo.JoinExchange(tuple.S)
	r := tuple.New(tuple.R, 1, 1000, tuple.Int(7))
	s := tuple.New(tuple.S, 2, 1001, tuple.Int(7))
	publishEnv(t, b, storeEx, topo.MemberKey(0), storeEnv(1, r))
	publishEnv(t, b, joinEx, topo.MemberKey(0), joinEnv(2, s))
	punct := protocol.Envelope{Kind: protocol.KindPunctuation, RouterID: 1, Counter: 2}
	publishEnv(t, b, storeEx, topo.PunctKey, punct)
	publishEnv(t, b, joinEx, topo.PunctKey, punct)

	select {
	case d := <-sink.Deliveries():
		l, rr, err := tuple.UnmarshalPair(d.Body)
		if err != nil {
			t.Fatal(err)
		}
		if l.Seq != 1 || rr.Seq != 2 {
			t.Errorf("result pair = %v, %v", l, rr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result published")
	}
	if st := svc.Stats(); st.Results != 1 || st.Stored != 1 {
		t.Errorf("stats = %+v", st)
	}
	if svc.MemBytes() <= 0 {
		t.Error("MemBytes should be positive with a stored tuple")
	}
	if svc.ID() != 0 || svc.Rel() != tuple.R {
		t.Error("accessors wrong")
	}
}

func TestServicePoisonMessagesIgnored(t *testing.T) {
	b, svc := startService(t, tuple.R)
	if err := b.Publish(topo.StoreExchange(tuple.R), topo.MemberKey(0), nil, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	publishEnv(t, b, topo.StoreExchange(tuple.R), topo.MemberKey(0),
		storeEnv(1, tuple.New(tuple.R, 1, 0, tuple.Int(1))))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if svc.Stats().Received == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("joiner wedged on poison message")
}

func TestServiceLifecycle(t *testing.T) {
	b, svc := startService(t, tuple.S)
	if err := svc.Start(); err == nil {
		t.Error("double start accepted")
	}
	storeQ, joinQ := svc.Queues()
	if storeQ != "Sstore.exchange.q.0" || joinQ != "Rjoin.exchange.q.0" {
		t.Errorf("queues = %s, %s", storeQ, joinQ)
	}
	svc.Stop()
	svc.Stop() // idempotent
	// Queues survive Stop (restart possible)...
	if _, err := b.QueueStats(storeQ); err != nil {
		t.Errorf("store queue gone after Stop: %v", err)
	}
	// ...but Retire deletes them.
	svc2 := NewService(mustCore(t, tuple.S, 1), b)
	if err := svc2.Start(); err != nil {
		t.Fatal(err)
	}
	sq2, jq2 := svc2.Queues()
	svc2.Retire()
	if _, err := b.QueueStats(sq2); err == nil {
		t.Error("store queue survived Retire")
	}
	if _, err := b.QueueStats(jq2); err == nil {
		t.Error("join queue survived Retire")
	}
}

func TestServiceFlushPublishesBufferedResults(t *testing.T) {
	b, svc := startService(t, tuple.R)
	if err := b.DeclareQueue("sink", broker.QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("sink", topo.ResultExchange, topo.ResultKey); err != nil {
		t.Fatal(err)
	}
	sink, err := b.Consume("sink", 16, true)
	if err != nil {
		t.Fatal(err)
	}
	// Tuples without punctuation stay buffered; Flush releases them.
	publishEnv(t, b, topo.StoreExchange(tuple.R), topo.MemberKey(0),
		storeEnv(1, tuple.New(tuple.R, 1, 0, tuple.Int(7))))
	publishEnv(t, b, topo.JoinExchange(tuple.S), topo.MemberKey(0),
		joinEnv(2, tuple.New(tuple.S, 2, 0, tuple.Int(7))))
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Pending != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d, want 2", svc.Stats().Pending)
		}
		time.Sleep(time.Millisecond)
	}
	svc.Flush()
	select {
	case <-sink.Deliveries():
	case <-time.After(5 * time.Second):
		t.Fatal("flush published nothing")
	}
}

func TestServiceRemoveRouter(t *testing.T) {
	b, svc := startService(t, tuple.R)
	svc.AddRouter(2) // never punctuates
	publishEnv(t, b, topo.StoreExchange(tuple.R), topo.MemberKey(0),
		storeEnv(1, tuple.New(tuple.R, 1, 0, tuple.Int(7))))
	punct := protocol.Envelope{Kind: protocol.KindPunctuation, RouterID: 1, Counter: 5}
	publishEnv(t, b, topo.StoreExchange(tuple.R), topo.PunctKey, punct)
	publishEnv(t, b, topo.JoinExchange(tuple.S), topo.PunctKey, punct)
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Pending != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d, want 1 (gated by router 2)", svc.Stats().Pending)
		}
		time.Sleep(time.Millisecond)
	}
	svc.RemoveRouter(2)
	deadline = time.Now().Add(5 * time.Second)
	for svc.Stats().Stored != 1 {
		if time.Now().After(deadline) {
			t.Fatal("RemoveRouter did not unblock processing")
		}
		time.Sleep(time.Millisecond)
	}
}

func mustCore(t *testing.T, rel tuple.Relation, id int32) *Core {
	t.Helper()
	c, err := NewCore(Config{ID: id, Rel: rel, Pred: predicate.NewEqui(0, 0), Window: testWin()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}
