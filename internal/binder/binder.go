// Package binder reproduces the Spring Cloud Stream programming model
// of §4.2-4.3: applications describe named input and output *channels*;
// the binder maps them onto broker destinations with the exact
// conventions of the RabbitMQ binder (Figure 12):
//
//   - every destination is a topic exchange;
//   - a *grouped* input binds a shared queue named
//     "<destination>.<group>" — members of the group compete for
//     messages (the queuing model, Figure 10), and the subscription is
//     durable: the queue keeps accumulating while every member is down;
//   - an *anonymous* input (no group) binds an auto-delete queue named
//     "<destination>.anonymous.<n>" in a publish-subscribe relationship
//     with all other consumers;
//   - a *partitioned* destination suffixes queues with the partition
//     index and routes on it ("<destination>-<i>", Figure 11), so items
//     with the same partition key always reach the same consumer
//     instance.
//
// The engine's services wire their topology directly (internal/topo);
// this package exists as the faithful, reusable form of the abstraction
// the thesis builds on, and is exercised by its own tests and the
// examples' patterns.
package binder

import (
	"fmt"
	"hash/fnv"

	"bistream/internal/broker"
)

// Binder creates channels over one broker connection.
type Binder struct {
	client broker.Client
	anonID int
}

// New wraps a broker client.
func New(client broker.Client) *Binder {
	return &Binder{client: client}
}

// OutputOptions configures an output channel.
type OutputOptions struct {
	// PartitionCount > 1 makes the destination partitioned: every sent
	// message must carry a partition key, hashed to a partition index
	// used as the routing key.
	PartitionCount int
}

// Output is a named producer channel.
type Output struct {
	binder      *Binder
	destination string
	partitions  int
}

// Output declares a producer channel bound to the destination exchange.
func (b *Binder) Output(destination string, opts OutputOptions) (*Output, error) {
	if destination == "" {
		return nil, fmt.Errorf("binder: empty destination")
	}
	if err := b.client.DeclareExchange(destination, broker.Topic); err != nil {
		return nil, err
	}
	p := opts.PartitionCount
	if p < 1 {
		p = 1
	}
	return &Output{binder: b, destination: destination, partitions: p}, nil
}

// Send publishes a message. For partitioned destinations, partitionKey
// selects the partition (same key → same partition → same consumer
// instance, Figure 11); it is ignored otherwise.
func (o *Output) Send(partitionKey string, headers map[string]string, body []byte) error {
	key := "t"
	if o.partitions > 1 {
		key = partitionRoutingKey(partitionOf(partitionKey, o.partitions))
	}
	return o.binder.client.Publish(o.destination, key, headers, body)
}

// partitionOf hashes a key onto [0, count).
func partitionOf(key string, count int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(count))
}

func partitionRoutingKey(idx int) string { return fmt.Sprintf("p.%d", idx) }

// InputOptions configures an input channel.
type InputOptions struct {
	// Group names the consumer group. Empty means an anonymous,
	// auto-delete, publish-subscribe subscription (Figure 10's
	// ungrouped consumers).
	Group string
	// Partition, with PartitionCount, subscribes this instance to
	// exactly one partition of a partitioned destination.
	Partition      int
	PartitionCount int
	// Prefetch bounds in-flight deliveries (default 64).
	Prefetch int
}

// Input is a named consumer channel.
type Input struct {
	Queue    string
	consumer broker.Consumer
}

// Input declares a consumer channel on the destination exchange with
// the RabbitMQ binder's queue-naming conventions.
func (b *Binder) Input(destination string, opts InputOptions) (*Input, error) {
	if destination == "" {
		return nil, fmt.Errorf("binder: empty destination")
	}
	if err := b.client.DeclareExchange(destination, broker.Topic); err != nil {
		return nil, err
	}
	if opts.Prefetch <= 0 {
		opts.Prefetch = 64
	}
	partitioned := opts.PartitionCount > 1
	if partitioned && (opts.Partition < 0 || opts.Partition >= opts.PartitionCount) {
		return nil, fmt.Errorf("binder: partition %d out of range [0,%d)", opts.Partition, opts.PartitionCount)
	}

	var queue, bindKey string
	var qopts broker.QueueOptions
	switch {
	case opts.Group == "":
		// Anonymous auto-delete queue, pub-sub with everyone.
		b.anonID++
		queue = fmt.Sprintf("%s.anonymous.%d", destination, b.anonID)
		bindKey = "#"
		qopts = broker.QueueOptions{AutoDelete: true}
	case partitioned:
		// Partition-suffixed durable group queue; the partition index
		// is the routing key.
		queue = fmt.Sprintf("%s.%s-%d", destination, opts.Group, opts.Partition)
		bindKey = partitionRoutingKey(opts.Partition)
		qopts = broker.QueueOptions{Durable: true}
	default:
		// Durable group queue: competing consumers.
		queue = fmt.Sprintf("%s.%s", destination, opts.Group)
		bindKey = "#"
		qopts = broker.QueueOptions{Durable: true}
	}
	if err := b.client.DeclareQueue(queue, qopts); err != nil {
		return nil, err
	}
	if err := b.client.Bind(queue, destination, bindKey); err != nil {
		return nil, err
	}
	cons, err := b.client.Consume(queue, opts.Prefetch, true)
	if err != nil {
		return nil, err
	}
	return &Input{Queue: queue, consumer: cons}, nil
}

// Deliveries returns the channel of incoming messages.
func (in *Input) Deliveries() <-chan broker.Delivery { return in.consumer.Deliveries() }

// Close cancels the subscription (auto-delete queues disappear).
func (in *Input) Close() error { return in.consumer.Cancel() }
