package binder

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"bistream/internal/broker"
)

func newBinder(t *testing.T) (*broker.Broker, *Binder) {
	t.Helper()
	b := broker.New(nil)
	t.Cleanup(func() { b.Close() })
	return b, New(b)
}

func recv(t *testing.T, in *Input, timeout time.Duration) (broker.Delivery, bool) {
	t.Helper()
	select {
	case d, ok := <-in.Deliveries():
		return d, ok
	case <-time.After(timeout):
		t.Fatal("timed out waiting for delivery")
		return broker.Delivery{}, false
	}
}

func TestValidation(t *testing.T) {
	_, bd := newBinder(t)
	if _, err := bd.Output("", OutputOptions{}); err == nil {
		t.Error("empty output destination accepted")
	}
	if _, err := bd.Input("", InputOptions{}); err == nil {
		t.Error("empty input destination accepted")
	}
	if _, err := bd.Input("d", InputOptions{Group: "g", Partition: 5, PartitionCount: 4}); err == nil {
		t.Error("out-of-range partition accepted")
	}
}

func TestGroupQueueNaming(t *testing.T) {
	// The thesis's Figure 18 queue names fall out of the conventions:
	// "Rstore.exchange.Rstoregroup" is destination "Rstore.exchange"
	// with group "Rstoregroup".
	_, bd := newBinder(t)
	in, err := bd.Input("Rstore.exchange", InputOptions{Group: "Rstoregroup"})
	if err != nil {
		t.Fatal(err)
	}
	if in.Queue != "Rstore.exchange.Rstoregroup" {
		t.Errorf("queue = %q", in.Queue)
	}
	anon, err := bd.Input("Rjoin.exchange", InputOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(anon.Queue, "Rjoin.exchange.anonymous.") {
		t.Errorf("anonymous queue = %q", anon.Queue)
	}
}

func TestQueuingModelWithinGroup(t *testing.T) {
	// Figure 10: members of one group compete; each message reaches
	// exactly one member.
	_, bd := newBinder(t)
	out, err := bd.Output("dest", OutputOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in1, _ := bd.Input("dest", InputOptions{Group: "g"})
	in2, _ := bd.Input("dest", InputOptions{Group: "g"})
	const n = 100
	for i := 0; i < n; i++ {
		if err := out.Send("", nil, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]int{}
	deadline := time.After(5 * time.Second)
	for len(got) < n {
		select {
		case d := <-in1.Deliveries():
			got[string(d.Body)]++
		case d := <-in2.Deliveries():
			got[string(d.Body)]++
		case <-deadline:
			t.Fatalf("received %d/%d", len(got), n)
		}
	}
	for k, c := range got {
		if c != 1 {
			t.Errorf("message %s delivered %d times within the group", k, c)
		}
	}
}

func TestPubSubAcrossGroups(t *testing.T) {
	// Figure 10: every group (and every anonymous consumer) receives a
	// copy of each message.
	_, bd := newBinder(t)
	out, _ := bd.Output("dest", OutputOptions{})
	gA, _ := bd.Input("dest", InputOptions{Group: "a"})
	gB, _ := bd.Input("dest", InputOptions{Group: "b"})
	anon, _ := bd.Input("dest", InputOptions{})
	if err := out.Send("", map[string]string{"h": "v"}, []byte("m")); err != nil {
		t.Fatal(err)
	}
	for name, in := range map[string]*Input{"groupA": gA, "groupB": gB, "anon": anon} {
		d, ok := recv(t, in, 2*time.Second)
		if !ok || string(d.Body) != "m" || d.Headers["h"] != "v" {
			t.Errorf("%s: delivery = %+v", name, d)
		}
	}
}

func TestDurableGroupSubscription(t *testing.T) {
	// §4.2 durability: the group queue accumulates while every member
	// of the group is stopped.
	_, bd := newBinder(t)
	out, _ := bd.Output("dest", OutputOptions{})
	in, _ := bd.Input("dest", InputOptions{Group: "g"})
	if err := in.Close(); err != nil { // all members stop
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		out.Send("", nil, []byte{byte(i)})
	}
	in2, err := bd.Input("dest", InputOptions{Group: "g"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d, _ := recv(t, in2, 2*time.Second)
		if d.Body[0] != byte(i) {
			t.Fatalf("delivery %d = %d", i, d.Body[0])
		}
	}
}

func TestAnonymousQueueIsNotDurable(t *testing.T) {
	b, bd := newBinder(t)
	out, _ := bd.Output("dest", OutputOptions{})
	anon, _ := bd.Input("dest", InputOptions{})
	queue := anon.Queue
	anon.Close()
	// Auto-delete: the queue is gone, messages published now go nowhere
	// for this subscriber.
	if _, err := b.QueueStats(queue); err == nil {
		t.Error("anonymous queue survived Close")
	}
	if err := out.Send("", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedProcessing(t *testing.T) {
	// Figure 11: items with the same partition key are processed by the
	// same consumer instance.
	_, bd := newBinder(t)
	const parts = 3
	out, err := bd.Output("dest", OutputOptions{PartitionCount: parts})
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]*Input, parts)
	for i := range ins {
		in, err := bd.Input("dest", InputOptions{Group: "g", Partition: i, PartitionCount: parts})
		if err != nil {
			t.Fatal(err)
		}
		if in.Queue != fmt.Sprintf("dest.g-%d", i) {
			t.Fatalf("partition queue = %q", in.Queue)
		}
		ins[i] = in
	}
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	const repeats = 20
	for r := 0; r < repeats; r++ {
		for _, k := range keys {
			if err := out.Send(k, map[string]string{"key": k}, []byte(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Each key's messages all land on one instance.
	seenAt := map[string]int{}
	received := 0
	deadline := time.After(5 * time.Second)
	for received < len(keys)*repeats {
		for i, in := range ins {
			select {
			case d := <-in.Deliveries():
				k := string(d.Body)
				if prev, ok := seenAt[k]; ok && prev != i {
					t.Fatalf("key %s seen at instances %d and %d", k, prev, i)
				}
				seenAt[k] = i
				received++
			case <-deadline:
				t.Fatalf("received %d/%d", received, len(keys)*repeats)
			default:
			}
		}
	}
}

func TestPartitionOfStable(t *testing.T) {
	for _, key := range []string{"", "a", "hello", "世界"} {
		p1 := partitionOf(key, 7)
		p2 := partitionOf(key, 7)
		if p1 != p2 || p1 < 0 || p1 >= 7 {
			t.Errorf("partitionOf(%q) unstable or out of range: %d, %d", key, p1, p2)
		}
	}
}
