// Package vclock provides the time substrate shared by every component
// of the system: a Clock interface satisfied both by the wall clock and
// by a deterministic simulated clock with an event scheduler.
//
// The published experiments run for 60 minutes of wall time on a cloud
// cluster; under the simulated clock the same control-loop dynamics
// (workload rate steps, autoscaler periods, window expiry) execute in
// milliseconds and are perfectly reproducible.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time for the engine, the workload generators and the
// cluster simulator.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that delivers the then-current time once
	// d has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock using the system clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock using time.After.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sim is a simulated clock. Time only moves when Advance or Run is
// called, which fires due timers in timestamp order. Sim is safe for
// concurrent use, but the intended pattern for deterministic experiments
// is single-threaded event-loop style: schedule callbacks, then Run.
type Sim struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	nextID uint64
}

// NewSim returns a simulated clock starting at the given origin. A zero
// origin starts at the Unix epoch, which keeps timestamps small and
// readable in logs.
func NewSim(origin time.Time) *Sim {
	if origin.IsZero() {
		origin = time.Unix(0, 0).UTC()
	}
	return &Sim{now: origin}
}

// Now returns the current simulated instant.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After returns a channel delivering the simulated time when d elapses.
// The channel has capacity 1 and is sent exactly once.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.Schedule(d, func(t time.Time) { ch <- t })
	return ch
}

// Schedule registers fn to run when d has elapsed on the simulated
// clock. fn runs synchronously inside Advance/Run, in timestamp order;
// ties are broken by scheduling order, which keeps runs deterministic.
// It returns a cancel function; cancelling an already-fired timer is a
// no-op.
func (s *Sim) Schedule(d time.Duration, fn func(now time.Time)) (cancel func()) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	t := &timer{at: s.now.Add(d), id: s.nextID, fn: fn}
	heap.Push(&s.timers, t)
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		t.fn = nil
	}
}

// Every registers fn to run every period, starting one period from now,
// until the returned cancel function is called. It is the building block
// for control loops (the autoscaler, the punctuation ticker, the metrics
// scraper).
func (s *Sim) Every(period time.Duration, fn func(now time.Time)) (cancel func()) {
	if period <= 0 {
		panic("vclock: Every requires a positive period")
	}
	stopped := false
	var mu sync.Mutex
	var rearm func(time.Time)
	rearm = func(time.Time) {
		mu.Lock()
		dead := stopped
		mu.Unlock()
		if dead {
			return
		}
		s.Schedule(period, func(now time.Time) {
			mu.Lock()
			dead := stopped
			mu.Unlock()
			if dead {
				return
			}
			fn(now)
			rearm(now)
		})
	}
	rearm(s.Now())
	return func() {
		mu.Lock()
		stopped = true
		mu.Unlock()
	}
}

// Advance moves simulated time forward by d, firing every timer that
// falls due, in order. Callbacks may schedule further timers; those fire
// too if they fall within the advanced horizon.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	deadline := s.now.Add(d)
	s.mu.Unlock()
	s.runUntil(deadline)
}

// RunUntil advances simulated time to the given instant.
func (s *Sim) RunUntil(t time.Time) { s.runUntil(t) }

func (s *Sim) runUntil(deadline time.Time) {
	for {
		s.mu.Lock()
		if len(s.timers) == 0 || s.timers[0].at.After(deadline) {
			if deadline.After(s.now) {
				s.now = deadline
			}
			s.mu.Unlock()
			return
		}
		t := heap.Pop(&s.timers).(*timer)
		if t.at.After(s.now) {
			s.now = t.at
		}
		now := s.now
		fn := t.fn
		s.mu.Unlock()
		if fn != nil {
			fn(now)
		}
	}
}

// Pending reports how many timers are scheduled (fired-but-cancelled
// timers still count until they pop). Useful in tests.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.timers)
}

type timer struct {
	at time.Time
	id uint64
	fn func(time.Time)
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].id < h[j].id
	}
	return h[i].at.Before(h[j].at)
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
