package vclock

import (
	"testing"
	"time"
)

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Error("Real.Now in the past")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestSimNowStartsAtOrigin(t *testing.T) {
	origin := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	s := NewSim(origin)
	if !s.Now().Equal(origin) {
		t.Errorf("Now = %v, want %v", s.Now(), origin)
	}
	if NewSim(time.Time{}).Now().Unix() != 0 {
		t.Error("zero origin should start at epoch")
	}
}

func TestSimAdvanceFiresInOrder(t *testing.T) {
	s := NewSim(time.Time{})
	var order []int
	s.Schedule(3*time.Second, func(time.Time) { order = append(order, 3) })
	s.Schedule(1*time.Second, func(time.Time) { order = append(order, 1) })
	s.Schedule(2*time.Second, func(time.Time) { order = append(order, 2) })
	s.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fire order = %v", order)
	}
	if got := s.Now().Unix(); got != 5 {
		t.Errorf("Now = %d, want 5", got)
	}
}

func TestSimTieBreakIsSchedulingOrder(t *testing.T) {
	s := NewSim(time.Time{})
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func(time.Time) { order = append(order, i) })
	}
	s.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie break order = %v", order)
		}
	}
}

func TestSimCallbackSeesDueTime(t *testing.T) {
	s := NewSim(time.Time{})
	var at time.Time
	s.Schedule(7*time.Second, func(now time.Time) { at = now })
	s.Advance(time.Minute)
	if at.Unix() != 7 {
		t.Errorf("callback time = %v, want t+7s", at)
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(time.Time{})
	var fired []int64
	s.Schedule(time.Second, func(now time.Time) {
		fired = append(fired, now.Unix())
		s.Schedule(time.Second, func(now time.Time) {
			fired = append(fired, now.Unix())
		})
	})
	s.Advance(10 * time.Second)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Errorf("fired = %v", fired)
	}
}

func TestSimCancel(t *testing.T) {
	s := NewSim(time.Time{})
	fired := false
	cancel := s.Schedule(time.Second, func(time.Time) { fired = true })
	cancel()
	s.Advance(time.Minute)
	if fired {
		t.Error("cancelled timer fired")
	}
	cancel() // double cancel must not panic
}

func TestSimAfter(t *testing.T) {
	s := NewSim(time.Time{})
	ch := s.After(30 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before time advanced")
	default:
	}
	s.Advance(time.Minute)
	select {
	case at := <-ch:
		if at.Unix() != 30 {
			t.Errorf("After delivered %v", at)
		}
	default:
		t.Fatal("After never delivered")
	}
}

func TestSimEvery(t *testing.T) {
	s := NewSim(time.Time{})
	var ticks []int64
	cancel := s.Every(10*time.Second, func(now time.Time) {
		ticks = append(ticks, now.Unix())
	})
	s.Advance(35 * time.Second)
	if len(ticks) != 3 || ticks[0] != 10 || ticks[1] != 20 || ticks[2] != 30 {
		t.Fatalf("ticks = %v", ticks)
	}
	cancel()
	s.Advance(time.Minute)
	if len(ticks) != 3 {
		t.Errorf("ticks after cancel = %v", ticks)
	}
}

func TestSimEveryPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSim(time.Time{}).Every(0, func(time.Time) {})
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim(time.Time{})
	n := 0
	s.Every(time.Second, func(time.Time) { n++ })
	s.RunUntil(time.Unix(100, 0))
	if n != 100 {
		t.Errorf("ticks = %d, want 100", n)
	}
	if s.Pending() == 0 {
		t.Error("Every should keep a timer pending")
	}
}

func TestSimAdvanceZero(t *testing.T) {
	s := NewSim(time.Time{})
	fired := false
	s.Schedule(0, func(time.Time) { fired = true })
	s.Advance(0)
	if !fired {
		t.Error("zero-delay timer should fire on Advance(0)")
	}
}

func TestSimNegativeDelayClamps(t *testing.T) {
	s := NewSim(time.Time{})
	fired := false
	s.Schedule(-time.Hour, func(time.Time) { fired = true })
	s.Advance(0)
	if !fired {
		t.Error("negative delay should clamp to now")
	}
}
