package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// probeAll collects every tuple a probe emits, as sortable fingerprints
// (multiset comparison must survive implementation-defined order).
func probeAll(p interface {
	Probe(predicate.Plan, func(*tuple.Tuple) bool)
}, plan predicate.Plan) []string {
	var got []string
	p.Probe(plan, func(t *tuple.Tuple) bool {
		got = append(got, string(tuple.Marshal(t)))
		return true
	})
	sort.Strings(got)
	return got
}

// TestExportImportPreservesProbesAndExpiry is the export/import
// round-trip property test over every sub-index kind: a chained index
// rebuilt from its exported segments must answer point, range and scan
// probes identically and expire identically — the invariant the
// checkpoint layer's recovery rests on.
func TestExportImportPreservesProbesAndExpiry(t *testing.T) {
	win := window.Sliding{Span: 10_000 * 1_000_000} // 10s in ns units of time.Duration
	cases := []struct {
		name    string
		factory Factory
	}{
		{"hash", func() SubIndex { return NewHash(0) }},
		{"skiplist", func() SubIndex { return NewSkipList(0) }},
		{"btree", func() SubIndex { return NewBTree(0) }},
	}
	plans := []predicate.Plan{
		{Kind: predicate.ProbeAll},
		{Kind: predicate.ProbePoint, Key: tuple.Int(5)},
		{Kind: predicate.ProbeRange, Lo: tuple.Int(3), Hi: tuple.Int(12), LoInc: true, HiInc: false},
		{Kind: predicate.ProbeRange, Lo: tuple.Int(7), LoInc: false},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				orig, err := NewChained(tc.factory, 500, win)
				if err != nil {
					t.Fatal(err)
				}
				ts := int64(0)
				for i := 0; i < 400; i++ {
					ts += rng.Int63n(40)
					orig.Insert(tuple.New(tuple.R, uint64(i+1), ts, tuple.Int(rng.Int63n(20)), tuple.String("x")))
				}
				segs := orig.ExportSegments()
				if len(segs) < 2 {
					t.Fatalf("workload produced %d segments; want several archived", len(segs))
				}
				restored, err := NewChained(tc.factory, 500, win)
				if err != nil {
					t.Fatal(err)
				}
				if err := restored.ImportSegments(segs); err != nil {
					t.Fatal(err)
				}
				if restored.Len() != orig.Len() || restored.NumSubIndexes() != orig.NumSubIndexes() {
					t.Fatalf("restored len=%d subs=%d, want len=%d subs=%d",
						restored.Len(), restored.NumSubIndexes(), orig.Len(), orig.NumSubIndexes())
				}
				if restored.MemBytes() != orig.MemBytes() {
					t.Fatalf("restored mem=%d, want %d", restored.MemBytes(), orig.MemBytes())
				}
				for pi, plan := range plans {
					if plan.Kind == predicate.ProbeRange && tc.name == "hash" {
						continue // hash sub-indexes serve equi predicates only
					}
					got, want := probeAll(restored, plan), probeAll(orig, plan)
					if len(got) != len(want) {
						t.Fatalf("plan %d: restored probe returned %d tuples, want %d", pi, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("plan %d: probe result %d differs", pi, i)
						}
					}
				}
				// Expiry must drop the same whole sub-indexes on both.
				oppTS := ts + win.SpanMillis()/2
				if do, dr := orig.Expire(oppTS), restored.Expire(oppTS); do != dr {
					t.Fatalf("expire dropped %d on restored, want %d", dr, do)
				}
				if restored.Len() != orig.Len() {
					t.Fatalf("post-expiry len=%d, want %d", restored.Len(), orig.Len())
				}
				got, want := probeAll(restored, predicate.Plan{Kind: predicate.ProbeAll}), probeAll(orig, predicate.Plan{Kind: predicate.ProbeAll})
				if len(got) != len(want) {
					t.Fatalf("post-expiry probe returned %d tuples, want %d", len(got), len(want))
				}
			})
		}
	}
}

// TestFlatExportRoundTrip covers the monolithic baseline the same way:
// Flat is not a SubIndex, but its Export must enumerate exactly the
// live tuples so a checkpoint of the ablation configuration works too.
func TestFlatExportRoundTrip(t *testing.T) {
	win := window.Sliding{Span: 10_000 * 1_000_000}
	f := NewFlat(0, win)
	rng := rand.New(rand.NewSource(7))
	ts := int64(0)
	for i := 0; i < 200; i++ {
		ts += rng.Int63n(40)
		f.Insert(tuple.New(tuple.R, uint64(i+1), ts, tuple.Int(rng.Int63n(20))))
	}
	f.Expire(ts) // age out a prefix so head > 0
	var exported []*tuple.Tuple
	f.Export(func(t *tuple.Tuple) bool {
		exported = append(exported, t)
		return true
	})
	if len(exported) != f.Len() {
		t.Fatalf("exported %d tuples, live %d", len(exported), f.Len())
	}
	g := NewFlat(0, win)
	for _, tp := range exported {
		g.Insert(tp)
	}
	for _, key := range []int64{0, 5, 19} {
		plan := predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(key)}
		got, want := probeAll(g, plan), probeAll(f, plan)
		if len(got) != len(want) {
			t.Fatalf("key %d: restored probe returned %d, want %d", key, len(got), len(want))
		}
	}
}

// TestImportSegmentsRejectsMalformed pins the validation contract:
// recovery must not accept segment lists that could not have come from
// ExportSegments.
func TestImportSegmentsRejectsMalformed(t *testing.T) {
	win := window.Sliding{Span: 10_000 * 1_000_000}
	mk := func() *Chained {
		c, err := NewChained(func() SubIndex { return NewHash(0) }, 500, win)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	tp := tuple.New(tuple.R, 1, 1, tuple.Int(1))
	for name, segs := range map[string][]Segment{
		"empty":          {},
		"sealed-last":    {{ID: 1, Sealed: true, Tuples: []*tuple.Tuple{tp}}},
		"unsealed-inner": {{ID: 1, Sealed: false}, {ID: 2, Sealed: false}},
		"id-regression":  {{ID: 2, Sealed: true, Tuples: []*tuple.Tuple{tp}}, {ID: 2, Sealed: false}},
	} {
		if err := mk().ImportSegments(segs); err == nil {
			t.Errorf("%s: ImportSegments accepted malformed input", name)
		}
	}
}
