package index

import (
	"bistream/internal/predicate"
	"bistream/internal/tuple"
)

// BTree is a B+-tree ordered sub-index over one attribute — the
// cache-friendlier alternative to the skip list for range probes (band
// and inequality joins). Like every sub-index in the chained design it
// is insert-only: deletion happens by dropping whole sub-indexes, so no
// rebalancing-on-delete is needed and leaves stay densely packed.
type BTree struct {
	attr     int
	root     bNode
	length   int
	memBytes int64
}

// btreeOrder is the fan-out: each internal node holds up to btreeOrder
// children, each leaf up to btreeOrder keys. 32 keeps nodes around two
// cache lines of Values.
const btreeOrder = 32

type bNode interface {
	// insert adds (key, t); a split returns the new right sibling and
	// its separator key.
	insert(key tuple.Value, t *tuple.Tuple) (sep tuple.Value, right bNode)
}

type bLeaf struct {
	keys   []tuple.Value
	vals   [][]*tuple.Tuple
	next   *bLeaf // leaf chain for range scans
	parent *BTree
}

type bInner struct {
	keys     []tuple.Value // len(children)-1 separators
	children []bNode
}

// NewBTree builds a B+-tree sub-index keyed on the given attribute.
func NewBTree(attr int) *BTree {
	bt := &BTree{attr: attr}
	bt.root = &bLeaf{parent: bt}
	return bt
}

// Insert implements SubIndex.
func (b *BTree) Insert(t *tuple.Tuple) {
	key := t.Value(b.attr)
	sep, right := b.root.insert(key, t)
	if right != nil {
		b.root = &bInner{keys: []tuple.Value{sep}, children: []bNode{b.root, right}}
		b.memBytes += 64
	}
	b.length++
	b.memBytes += int64(t.MemSize()) + listEntryOverhead + 16
}

// findLeaf descends to the leaf that does or would contain key.
func (b *BTree) findLeaf(key tuple.Value) *bLeaf {
	n := b.root
	for {
		switch v := n.(type) {
		case *bLeaf:
			return v
		case *bInner:
			i := 0
			for i < len(v.keys) && key.Compare(v.keys[i]) >= 0 {
				i++
			}
			n = v.children[i]
		}
	}
}

// firstLeaf returns the leftmost leaf.
func (b *BTree) firstLeaf() *bLeaf {
	n := b.root
	for {
		switch v := n.(type) {
		case *bLeaf:
			return v
		case *bInner:
			n = v.children[0]
		}
	}
}

// Probe implements SubIndex: leaf-chain range scan.
func (b *BTree) Probe(plan predicate.Plan, emit func(*tuple.Tuple) bool) {
	var leaf *bLeaf
	var start int
	switch plan.Kind {
	case predicate.ProbePoint:
		plan = predicate.Plan{
			Kind: predicate.ProbeRange,
			Lo:   plan.Key, Hi: plan.Key, LoInc: true, HiInc: true,
		}
		fallthrough
	case predicate.ProbeRange:
		if plan.Lo.IsValid() {
			leaf = b.findLeaf(plan.Lo)
			start = leaf.lowerBound(plan.Lo, plan.LoInc)
		} else {
			leaf = b.firstLeaf()
		}
	default:
		leaf = b.firstLeaf()
	}
	for leaf != nil {
		for i := start; i < len(leaf.keys); i++ {
			if plan.Kind == predicate.ProbeRange && plan.Hi.IsValid() {
				c := leaf.keys[i].Compare(plan.Hi)
				if c > 0 || (c == 0 && !plan.HiInc) {
					return
				}
			}
			for _, t := range leaf.vals[i] {
				if !emit(t) {
					return
				}
			}
		}
		leaf = leaf.next
		start = 0
	}
}

// lowerBound returns the first slot with key >= target (or > when
// exclusive).
func (l *bLeaf) lowerBound(target tuple.Value, inclusive bool) int {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		c := l.keys[mid].Compare(target)
		if c < 0 || (c == 0 && !inclusive) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (l *bLeaf) insert(key tuple.Value, t *tuple.Tuple) (tuple.Value, bNode) {
	i := l.lowerBound(key, true)
	if i < len(l.keys) && l.keys[i].Compare(key) == 0 {
		l.vals[i] = append(l.vals[i], t)
		return tuple.Value{}, nil
	}
	l.keys = append(l.keys, tuple.Value{})
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.vals = append(l.vals, nil)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = []*tuple.Tuple{t}
	if len(l.keys) <= btreeOrder {
		return tuple.Value{}, nil
	}
	// Split: right half moves to a new leaf linked after this one.
	mid := len(l.keys) / 2
	right := &bLeaf{
		keys:   append([]tuple.Value(nil), l.keys[mid:]...),
		vals:   append([][]*tuple.Tuple(nil), l.vals[mid:]...),
		next:   l.next,
		parent: l.parent,
	}
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	l.next = right
	return right.keys[0], right
}

func (n *bInner) insert(key tuple.Value, t *tuple.Tuple) (tuple.Value, bNode) {
	i := 0
	for i < len(n.keys) && key.Compare(n.keys[i]) >= 0 {
		i++
	}
	sep, right := n.children[i].insert(key, t)
	if right == nil {
		return tuple.Value{}, nil
	}
	n.keys = append(n.keys, tuple.Value{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.children) <= btreeOrder {
		return tuple.Value{}, nil
	}
	mid := len(n.keys) / 2
	upSep := n.keys[mid]
	rightInner := &bInner{
		keys:     append([]tuple.Value(nil), n.keys[mid+1:]...),
		children: append([]bNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return upSep, rightInner
}

// Export implements SubIndex: key-order walk along the leaf chain.
func (b *BTree) Export(emit func(*tuple.Tuple) bool) {
	for leaf := b.firstLeaf(); leaf != nil; leaf = leaf.next {
		for _, vals := range leaf.vals {
			for _, t := range vals {
				if !emit(t) {
					return
				}
			}
		}
	}
}

// Len implements SubIndex.
func (b *BTree) Len() int { return b.length }

// MemBytes implements SubIndex.
func (b *BTree) MemBytes() int64 { return b.memBytes }
