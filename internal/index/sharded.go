package index

import (
	"fmt"

	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// Sharded partitions one relation's window across N chained indexes by
// the hash of the indexed join attribute, so a joiner can run store and
// probe work for different shards on different cores with no locking on
// the steady path: a tuple's store shard and — for partitionable
// predicates — the shard its matches probe are the same function of the
// join key, so all interaction between a stored tuple and the probes
// that can see it happens inside one shard.
//
// Non-partitionable predicates (band, theta, full scans) probe every
// shard; stores still partition, so insert work spreads across cores
// and each probe fans out. When the predicate has no index attribute at
// all, tuples partition by sequence number — any deterministic spread
// works, because every probe scans every shard anyway.
//
// Sharded is not safe for concurrent use as a whole; the joiner core
// partitions a batch so that each shard is touched by exactly one
// worker goroutine, which is what makes the shards' independence
// useful.
type Sharded struct {
	shards []*Chained
	attr   int // store-side partition attribute, -1 for seq partitioning
	alloc  *IDAlloc
}

// MaxShards bounds the shard count: graft synthesizes per-shard segment
// ids as donorID<<shardIDBits | shard, so the shard index must fit in
// shardIDBits bits.
const (
	shardIDBits = 8
	MaxShards   = 1 << shardIDBits
)

// NewSharded builds n chained shards sharing one segment-id allocator.
// attr is the indexed attribute of the stored relation (from
// Predicate.IndexAttr), or -1 to partition by sequence number. n is
// clamped to [1, MaxShards].
func NewSharded(factory Factory, period int64, win window.Sliding, attr, n int) (*Sharded, error) {
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	alloc := NewIDAlloc()
	shards := make([]*Chained, n)
	for i := range shards {
		c, err := NewChainedAlloc(factory, period, win, alloc)
		if err != nil {
			return nil, err
		}
		shards[i] = c
	}
	return &Sharded{shards: shards, attr: attr, alloc: alloc}, nil
}

// NumShards returns the shard count.
func (x *Sharded) NumShards() int { return len(x.shards) }

// Shard returns shard i, for per-shard workers.
func (x *Sharded) Shard(i int) *Chained { return x.shards[i] }

// ShardFor returns the shard that stores t.
func (x *Sharded) ShardFor(t *tuple.Tuple) int {
	if len(x.shards) == 1 {
		return 0
	}
	if x.attr >= 0 {
		return int(t.Value(x.attr).Hash() % uint64(len(x.shards)))
	}
	return int(t.Seq % uint64(len(x.shards)))
}

// ProbeShard returns the single shard a point probe for key needs to
// visit, or -1 when the plan must fan out to every shard.
func (x *Sharded) ProbeShard(plan predicate.Plan) int {
	if len(x.shards) == 1 {
		return 0
	}
	if plan.Kind == predicate.ProbePoint && x.attr >= 0 {
		return int(plan.HashOfKey() % uint64(len(x.shards)))
	}
	return -1
}

// Insert stores t in its shard.
func (x *Sharded) Insert(t *tuple.Tuple) {
	x.shards[x.ShardFor(t)].Insert(t)
}

// Probe runs the plan: a point probe visits only the key's shard, any
// other plan fans out across all shards. Iteration stops early when
// emit returns false.
func (x *Sharded) Probe(plan predicate.Plan, emit func(*tuple.Tuple) bool) {
	if s := x.ProbeShard(plan); s >= 0 {
		x.shards[s].Probe(plan, emit)
		return
	}
	stopped := false
	wrapped := func(t *tuple.Tuple) bool {
		if !emit(t) {
			stopped = true
			return false
		}
		return true
	}
	for _, c := range x.shards {
		c.Probe(plan, wrapped)
		if stopped {
			return
		}
	}
}

// Expire drops expired sub-indexes in every shard and returns the total
// tuples discarded.
func (x *Sharded) Expire(oppTS int64) int {
	dropped := 0
	for _, c := range x.shards {
		dropped += c.Expire(oppTS)
	}
	return dropped
}

// Len returns the number of live tuples across all shards.
func (x *Sharded) Len() int {
	n := 0
	for _, c := range x.shards {
		n += c.Len()
	}
	return n
}

// MemBytes estimates resident bytes across all shards.
func (x *Sharded) MemBytes() int64 {
	var n int64
	for _, c := range x.shards {
		n += c.MemBytes()
	}
	return n
}

// NumSubIndexes returns the number of live sub-indexes across shards.
func (x *Sharded) NumSubIndexes() int {
	n := 0
	for _, c := range x.shards {
		n += c.NumSubIndexes()
	}
	return n
}

// Dropped returns total tuples discarded by expiry across shards.
func (x *Sharded) Dropped() int64 {
	var n int64
	for _, c := range x.shards {
		n += c.Dropped()
	}
	return n
}

// Archives returns total sealed sub-indexes across shards.
func (x *Sharded) Archives() int64 {
	var n int64
	for _, c := range x.shards {
		n += c.Archives()
	}
	return n
}

// ExportSegments exports every shard's chain, shard-major: shard 0's
// segments in chain order (unsealed live segment last), then shard 1's,
// and so on. The order is deterministic, segment identities are
// globally unique (shared allocator), and exactly one segment per shard
// is unsealed — which is how ImportSegments finds the shard boundaries
// again without a side channel, keeping the checkpoint codec oblivious
// to sharding.
func (x *Sharded) ExportSegments() []Segment {
	var out []Segment
	for _, c := range x.shards {
		out = append(out, c.ExportSegments()...)
	}
	return out
}

// ImportSegments restores a shard-major export. When the export carries
// the same number of shard groups as this index has shards, each group
// restores into its positional shard — hash placement is preserved
// because the partition function only depends on the shard count. When
// the counts differ (restore into a resized index), every tuple is
// re-inserted through the current partition function instead; segment
// identities are not preserved across a resize, so graft idempotency
// does not span shard-count changes.
func (x *Sharded) ImportSegments(segs []Segment) error {
	if len(segs) == 0 {
		return fmt.Errorf("index: import needs at least the live segment")
	}
	seen := make(map[segIdent]bool, len(segs))
	for _, s := range segs {
		ident := segIdent{s.Origin, s.ID}
		if seen[ident] {
			return fmt.Errorf("index: duplicate segment (origin %d, id %d)", s.Origin, s.ID)
		}
		seen[ident] = true
	}
	if segs[len(segs)-1].Sealed {
		return fmt.Errorf("index: last imported segment must be the unsealed live segment")
	}
	// Split into shard groups: each group is a run of sealed segments
	// closed by one unsealed live segment.
	var groups [][]Segment
	start := 0
	for i, s := range segs {
		if !s.Sealed {
			groups = append(groups, segs[start:i+1])
			start = i + 1
		}
	}
	if len(groups) == len(x.shards) {
		for i, g := range groups {
			if err := x.shards[i].ImportSegments(g); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
		return nil
	}
	// Shard count changed since the export: repartition by re-inserting
	// every tuple. Reserve the imported ids first so freshly assigned
	// segment ids never collide with keys still referenced by an older
	// checkpoint manifest.
	maxLocal := uint64(0)
	for _, s := range segs {
		if s.Origin == OriginLocal && s.ID > maxLocal {
			maxLocal = s.ID
		}
	}
	x.alloc.Bump(maxLocal + 1)
	fresh := make([]*Chained, len(x.shards))
	for i, old := range x.shards {
		c, err := NewChainedAlloc(old.factory, old.period, old.win, x.alloc)
		if err != nil {
			return err
		}
		fresh[i] = c
	}
	x.shards = fresh
	for _, s := range segs {
		for _, t := range s.Tuples {
			x.Insert(t)
		}
	}
	return nil
}

// Graft distributes a migration donor's sealed segments across the
// shards by tuple hash. Each donor segment splits into at most one part
// per shard, keyed by the synthetic id donorID<<shardIDBits | shard —
// deterministic, so a retried graft after a crash skips parts already
// present, and collision-free because the migration transfer renumbers
// donor segments from 1 (checked here). With one shard the donor
// identity passes through unchanged. It returns the number of tuples
// actually added.
func (x *Sharded) Graft(segs []Segment) (int, error) {
	if len(x.shards) == 1 {
		return x.shards[0].Graft(segs)
	}
	for _, s := range segs {
		if s.ID >= 1<<(64-shardIDBits) {
			return 0, fmt.Errorf("index: graft segment id %d too large to shard", s.ID)
		}
	}
	parts := make([][]Segment, len(x.shards))
	for _, s := range segs {
		split := make([]Segment, len(x.shards))
		for i := range split {
			split[i] = Segment{
				ID:     s.ID<<shardIDBits | uint64(i),
				Origin: s.Origin,
				Sealed: true,
			}
		}
		for _, t := range s.Tuples {
			p := &split[x.ShardFor(t)]
			if len(p.Tuples) == 0 {
				p.MinTS, p.MaxTS = t.TS, t.TS
			} else {
				if t.TS < p.MinTS {
					p.MinTS = t.TS
				}
				if t.TS > p.MaxTS {
					p.MaxTS = t.TS
				}
			}
			p.Tuples = append(p.Tuples, t)
		}
		for i, p := range split {
			if len(p.Tuples) > 0 {
				parts[i] = append(parts[i], p)
			}
		}
	}
	added := 0
	for i, ps := range parts {
		if len(ps) == 0 {
			continue
		}
		n, err := x.shards[i].Graft(ps)
		if err != nil {
			return added, fmt.Errorf("shard %d: %w", i, err)
		}
		added += n
	}
	return added, nil
}
