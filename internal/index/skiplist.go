package index

import (
	"bistream/internal/predicate"
	"bistream/internal/tuple"
)

// SkipList is an ordered sub-index over one attribute, serving the range
// probes of band and inequality joins (the "BinarySearchTree for
// non-equi-join predicates" role in the text). A skip list needs no
// rebalancing and — since the chained index discards whole sub-indexes —
// no deletion, keeping it compact and cache-friendly.
type SkipList struct {
	attr     int
	head     *slNode
	level    int
	length   int
	memBytes int64
	rng      uint64 // xorshift state for level draws; deterministic
}

const slMaxLevel = 24

type slNode struct {
	key    tuple.Value
	tuples []*tuple.Tuple // all tuples sharing the key
	next   []*slNode
}

// NewSkipList builds an ordered sub-index keyed on the given attribute.
func NewSkipList(attr int) *SkipList {
	return &SkipList{
		attr:  attr,
		head:  &slNode{next: make([]*slNode, slMaxLevel)},
		level: 1,
		rng:   0x9e3779b97f4a7c15,
	}
}

func (s *SkipList) randLevel() int {
	// xorshift64; each level with probability 1/2.
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	lvl := 1
	for x&1 == 1 && lvl < slMaxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}

// Insert implements SubIndex.
func (s *SkipList) Insert(t *tuple.Tuple) {
	key := t.Value(s.attr)
	var update [slMaxLevel]*slNode
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key.Compare(key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && n.key.Compare(key) == 0 {
		n.tuples = append(n.tuples, t)
		s.length++
		s.memBytes += int64(t.MemSize()) + listEntryOverhead
		return
	}
	lvl := s.randLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	n := &slNode{key: key, tuples: []*tuple.Tuple{t}, next: make([]*slNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.length++
	s.memBytes += int64(t.MemSize()) + int64(64+16*lvl) // node overhead
}

// seek returns the first node with key >= target (or > target when
// exclusive).
func (s *SkipList) seek(target tuple.Value, inclusive bool) *slNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil {
			c := x.next[i].key.Compare(target)
			if c < 0 || (c == 0 && !inclusive) {
				x = x.next[i]
			} else {
				break
			}
		}
	}
	return x.next[0]
}

// Probe implements SubIndex: ordered range scan for ProbeRange, full
// scan otherwise (a point probe on an ordered index degenerates to the
// single-key range).
func (s *SkipList) Probe(plan predicate.Plan, emit func(*tuple.Tuple) bool) {
	var start *slNode
	switch plan.Kind {
	case predicate.ProbePoint:
		plan = predicate.Plan{
			Kind: predicate.ProbeRange,
			Lo:   plan.Key, Hi: plan.Key, LoInc: true, HiInc: true,
		}
		fallthrough
	case predicate.ProbeRange:
		if plan.Lo.IsValid() {
			start = s.seek(plan.Lo, plan.LoInc)
		} else {
			start = s.head.next[0]
		}
	default:
		start = s.head.next[0]
	}
	for n := start; n != nil; n = n.next[0] {
		if plan.Kind == predicate.ProbeRange && plan.Hi.IsValid() {
			c := n.key.Compare(plan.Hi)
			if c > 0 || (c == 0 && !plan.HiInc) {
				return
			}
		}
		for _, t := range n.tuples {
			if !emit(t) {
				return
			}
		}
	}
}

// Export implements SubIndex: key-order walk of every stored tuple.
func (s *SkipList) Export(emit func(*tuple.Tuple) bool) {
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		for _, t := range n.tuples {
			if !emit(t) {
				return
			}
		}
	}
}

// Len implements SubIndex.
func (s *SkipList) Len() int { return s.length }

// MemBytes implements SubIndex.
func (s *SkipList) MemBytes() int64 { return s.memBytes }
