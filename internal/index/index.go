// Package index provides the joiners' in-memory storage: a hash
// sub-index for equi-joins, an ordered (skip list) sub-index for
// non-equi joins, and the chained in-memory index of the source text's
// Figure 5, which partitions the stream by discrete time intervals
// (the archive period P) and discards stale data a whole sub-index at a
// time instead of tuple by tuple.
package index

import (
	"fmt"
	"sync/atomic"

	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// SubIndex stores tuples of one relation over one archive period and
// serves probe plans from the opposite relation.
type SubIndex interface {
	// Insert adds a tuple.
	Insert(t *tuple.Tuple)
	// Probe calls emit for every stored tuple the plan may match.
	// Candidates are over-approximate; the caller verifies with the
	// predicate. Iteration stops early if emit returns false.
	Probe(plan predicate.Plan, emit func(*tuple.Tuple) bool)
	// Export calls emit for every stored tuple exactly once, in an
	// implementation-defined order (checkpoint export). Iteration
	// stops early if emit returns false.
	Export(emit func(*tuple.Tuple) bool)
	// Len returns the number of stored tuples.
	Len() int
	// MemBytes estimates resident memory including index overhead.
	MemBytes() int64
}

// Factory builds empty sub-indexes. ForPredicate picks the right one.
type Factory func() SubIndex

// OrderedKind selects the ordered sub-index implementation for
// non-equi predicates.
type OrderedKind uint8

// Ordered index implementations.
const (
	// SkipListKind: probabilistic skip list (default).
	SkipListKind OrderedKind = iota
	// BTreeKind: insert-only B+-tree with a leaf chain.
	BTreeKind
)

// ForPredicate selects a hash sub-index for point probes and an ordered
// sub-index otherwise, mirroring the text's "HashMap for equi-join and
// BinarySearchTree for non-equi-join predicates".
func ForPredicate(pred predicate.Predicate, rel tuple.Relation) Factory {
	return ForPredicateOrdered(pred, rel, SkipListKind)
}

// ForPredicateOrdered is ForPredicate with an explicit choice of
// ordered index (the skip-list/B+-tree ablation).
func ForPredicateOrdered(pred predicate.Predicate, rel tuple.Relation, kind OrderedKind) Factory {
	attr := pred.IndexAttr(rel)
	if attr < 0 {
		// No index help: a hash sub-index still stores tuples and
		// serves ProbeAll scans.
		return func() SubIndex { return NewHash(-1) }
	}
	if pred.Partitionable() {
		return func() SubIndex { return NewHash(attr) }
	}
	if kind == BTreeKind {
		return func() SubIndex { return NewBTree(attr) }
	}
	return func() SubIndex { return NewSkipList(attr) }
}

// IDAlloc hands out segment ids. One allocator can be shared by several
// chains (the shards of a Sharded index), which keeps local segment ids
// unique across all of them — the checkpoint layer keys incremental
// segment writes on (origin, id), so two shards must never seal
// different segments under the same id. The counter is atomic so shard
// workers archiving concurrently never collide.
type IDAlloc struct {
	next atomic.Uint64
}

// NewIDAlloc creates an allocator whose first id is 1.
func NewIDAlloc() *IDAlloc {
	a := &IDAlloc{}
	a.next.Store(1)
	return a
}

// take returns the next unused id.
func (a *IDAlloc) take() uint64 {
	return a.next.Add(1) - 1
}

// Bump raises the allocator so it will never hand out an id below min
// (checkpoint restore: imported segments reserve their ids).
func (a *IDAlloc) Bump(min uint64) {
	for {
		cur := a.next.Load()
		if cur >= min || a.next.CompareAndSwap(cur, min) {
			return
		}
	}
}

// Chained is the chained in-memory index: an active sub-index receiving
// inserts, plus a linked chain of archived sub-indexes ordered by
// construction time. Expiry drops whole archived sub-indexes by
// Theorem 1 once every tuple they can contain is out of the window.
type Chained struct {
	factory Factory
	period  int64 // archive period P, milliseconds
	win     window.Sliding
	alloc   *IDAlloc

	active   *chainedSub
	archived []*chainedSub // oldest first

	totalLen int
	memBytes int64
	dropped  int64 // total tuples discarded by expiry
	archives int64 // total archive operations
}

type chainedSub struct {
	// id is the sub-index's stable segment identity, assigned once at
	// construction and monotonically increasing along the chain. The
	// checkpoint layer keys incremental segment writes on it: a sealed
	// (archived) sub-index never changes, so a checkpoint that already
	// wrote segment id N can skip it forever after.
	id uint64
	// origin is OriginLocal for sub-indexes built here, or the donor
	// member's id for segments grafted in by state migration. Identity
	// for dedup and checkpointing is the (origin, id) pair — two members
	// assign ids independently, so id alone is ambiguous after a graft.
	origin       int32
	sub          SubIndex
	minTS, maxTS int64
	empty        bool
}

func newChainedSub(f Factory, id uint64) *chainedSub {
	return &chainedSub{id: id, origin: OriginLocal, sub: f(), empty: true}
}

func (cs *chainedSub) insert(t *tuple.Tuple) {
	if cs.empty {
		cs.minTS, cs.maxTS = t.TS, t.TS
		cs.empty = false
	} else {
		if t.TS < cs.minTS {
			cs.minTS = t.TS
		}
		if t.TS > cs.maxTS {
			cs.maxTS = t.TS
		}
	}
	cs.sub.Insert(t)
}

// NewChained builds a chained index with the given archive period over
// the given window. The period must be positive and is typically a
// fraction of the window span (W/P sub-indexes are live at a time).
func NewChained(factory Factory, period int64, win window.Sliding) (*Chained, error) {
	return NewChainedAlloc(factory, period, win, NewIDAlloc())
}

// NewChainedAlloc is NewChained with an explicit segment-id allocator,
// shared when the chain is one shard of a Sharded index.
func NewChainedAlloc(factory Factory, period int64, win window.Sliding, alloc *IDAlloc) (*Chained, error) {
	if period <= 0 {
		return nil, fmt.Errorf("index: archive period must be positive, got %d", period)
	}
	return &Chained{
		factory: factory,
		period:  period,
		win:     win,
		alloc:   alloc,
		active:  newChainedSub(factory, alloc.take()),
	}, nil
}

// Insert adds a tuple to the active sub-index, archiving it first if
// accepting the tuple would stretch the sub-index past the archive
// period (the Data Indexing operation of the text).
func (c *Chained) Insert(t *tuple.Tuple) {
	a := c.active
	if !a.empty {
		minTS, maxTS := a.minTS, a.maxTS
		if t.TS < minTS {
			minTS = t.TS
		}
		if t.TS > maxTS {
			maxTS = t.TS
		}
		if maxTS-minTS > c.period {
			c.archiveActive()
			a = c.active
		}
	}
	before := a.sub.MemBytes()
	a.insert(t)
	c.memBytes += a.sub.MemBytes() - before
	c.totalLen++
}

func (c *Chained) archiveActive() {
	c.archived = append(c.archived, c.active)
	c.active = newChainedSub(c.factory, c.alloc.take())
	c.archives++
}

// Expire drops archived sub-indexes whose entire content is stale
// relative to an opposite-relation tuple timestamp (the Data Discarding
// operation): by Theorem 1 a sub-index may go once oppTS - maxTS > W.
// It returns the number of tuples discarded.
func (c *Chained) Expire(oppTS int64) int {
	dropped := 0
	keep := 0
	for keep < len(c.archived) {
		cs := c.archived[keep]
		if !c.win.Expired(cs.maxTS, oppTS) {
			break // chain is ordered by construction time; later ones are fresher
		}
		dropped += cs.sub.Len()
		c.memBytes -= cs.sub.MemBytes()
		c.archived[keep] = nil
		keep++
	}
	if keep > 0 {
		c.archived = append(c.archived[:0], c.archived[keep:]...)
		c.totalLen -= dropped
		c.dropped += int64(dropped)
	}
	return dropped
}

// Probe runs the plan over the active sub-index and every surviving
// archived sub-index (the Join Processing operation). emit receives
// candidates; returning false stops the scan.
func (c *Chained) Probe(plan predicate.Plan, emit func(*tuple.Tuple) bool) {
	stopped := false
	wrapped := func(t *tuple.Tuple) bool {
		if !emit(t) {
			stopped = true
			return false
		}
		return true
	}
	for _, cs := range c.archived {
		cs.sub.Probe(plan, wrapped)
		if stopped {
			return
		}
	}
	c.active.sub.Probe(plan, wrapped)
}

// Len returns the number of live tuples across all sub-indexes.
func (c *Chained) Len() int { return c.totalLen }

// MemBytes estimates the resident bytes of all live sub-indexes; this
// is the joiners' contribution to the memory-based autoscaling metric.
func (c *Chained) MemBytes() int64 { return c.memBytes }

// NumSubIndexes returns the number of live sub-indexes including the
// active one.
func (c *Chained) NumSubIndexes() int { return len(c.archived) + 1 }

// Dropped returns the total number of tuples discarded by expiry.
func (c *Chained) Dropped() int64 { return c.dropped }

// Archives returns how many sub-indexes have been sealed so far.
func (c *Chained) Archives() int64 { return c.archives }

// Segment is the exported view of one chained sub-index, the unit of
// incremental checkpointing. A sealed segment is an archived sub-index
// whose content can never change again — the checkpoint layer writes it
// once and garbage-collects it when expiry drops it from the chain
// (mirroring Expire's whole-segment discards). The live segment is the
// active sub-index, rewritten on every checkpoint round.
type Segment struct {
	ID uint64
	// Origin is OriginLocal for segments this chain built, or the donor
	// member's id for segments received through state migration. The
	// (Origin, ID) pair is the segment's global identity.
	Origin int32
	Sealed bool
	MinTS  int64
	MaxTS  int64
	Tuples []*tuple.Tuple
}

// OriginLocal marks a segment built by the owning chain rather than
// grafted in from a migration donor. Member ids are non-negative, so -1
// can never collide with a real donor.
const OriginLocal int32 = -1

// ExportSegments snapshots the chain as segments in chain order: the
// archived sub-indexes oldest first, then the active one (Sealed ==
// false, always last, possibly empty). Tuple pointers are shared, not
// copied — tuples are immutable once emitted by a source.
func (c *Chained) ExportSegments() []Segment {
	out := make([]Segment, 0, len(c.archived)+1)
	for _, cs := range c.archived {
		out = append(out, cs.export(true))
	}
	out = append(out, c.active.export(false))
	return out
}

func (cs *chainedSub) export(sealed bool) Segment {
	seg := Segment{ID: cs.id, Origin: cs.origin, Sealed: sealed}
	if !cs.empty {
		seg.MinTS, seg.MaxTS = cs.minTS, cs.maxTS
	}
	seg.Tuples = make([]*tuple.Tuple, 0, cs.sub.Len())
	cs.sub.Export(func(t *tuple.Tuple) bool {
		seg.Tuples = append(seg.Tuples, t)
		return true
	})
	return seg
}

// ImportSegments replaces the chain's contents with previously exported
// segments (checkpoint restore). Segments must arrive in chain order,
// every segment sealed except the last, with (origin, id) unique —
// local segment ids additionally stay in chain order, while grafted
// foreign segments sit wherever their timestamps placed them.
// Timestamps, lengths and memory accounting are recomputed by
// re-inserting, so a restored chain archives and expires exactly as the
// original would.
func (c *Chained) ImportSegments(segs []Segment) error {
	if len(segs) == 0 {
		return fmt.Errorf("index: import needs at least the live segment")
	}
	seen := make(map[segIdent]bool, len(segs))
	lastLocal := uint64(0)
	for i, s := range segs {
		if sealed := i < len(segs)-1; s.Sealed != sealed {
			return fmt.Errorf("index: segment %d (id %d) sealed=%v, want %v (live segment must be last)",
				i, s.ID, s.Sealed, sealed)
		}
		ident := segIdent{s.Origin, s.ID}
		if seen[ident] {
			return fmt.Errorf("index: duplicate segment (origin %d, id %d)", s.Origin, s.ID)
		}
		seen[ident] = true
		if s.Origin == OriginLocal {
			if s.ID <= lastLocal {
				return fmt.Errorf("index: local segment ids not increasing (%d after %d)", s.ID, lastLocal)
			}
			lastLocal = s.ID
		}
	}
	if segs[len(segs)-1].Origin != OriginLocal {
		return fmt.Errorf("index: live segment must be local, got origin %d", segs[len(segs)-1].Origin)
	}
	c.archived = nil
	c.totalLen = 0
	c.memBytes = 0
	for _, s := range segs {
		cs := newChainedSub(c.factory, s.ID)
		cs.origin = s.Origin
		for _, t := range s.Tuples {
			before := cs.sub.MemBytes()
			cs.insert(t)
			c.memBytes += cs.sub.MemBytes() - before
			c.totalLen++
		}
		if s.Sealed {
			c.archived = append(c.archived, cs)
		} else {
			c.active = cs
		}
		if s.Origin == OriginLocal {
			c.alloc.Bump(s.ID + 1)
		}
	}
	return nil
}

type segIdent struct {
	origin int32
	id     uint64
}

// Graft inserts sealed foreign segments (a migration donor's exported
// state) into the archived chain, ordered by maxTS so Expire's
// oldest-first prefix scan keeps working. Segments whose (origin, id)
// is already present are skipped, which makes a retried graft — after a
// recipient crash between import and checkpoint — idempotent. It
// returns the number of tuples actually added.
func (c *Chained) Graft(segs []Segment) (int, error) {
	for _, s := range segs {
		if !s.Sealed {
			return 0, fmt.Errorf("index: graft segment (origin %d, id %d) is not sealed", s.Origin, s.ID)
		}
		if s.Origin == OriginLocal {
			return 0, fmt.Errorf("index: graft segment id %d has no origin", s.ID)
		}
	}
	present := make(map[segIdent]bool, len(c.archived))
	for _, cs := range c.archived {
		present[segIdent{cs.origin, cs.id}] = true
	}
	added := 0
	for _, s := range segs {
		if present[segIdent{s.Origin, s.ID}] {
			continue
		}
		present[segIdent{s.Origin, s.ID}] = true
		cs := newChainedSub(c.factory, s.ID)
		cs.origin = s.Origin
		for _, t := range s.Tuples {
			before := cs.sub.MemBytes()
			cs.insert(t)
			c.memBytes += cs.sub.MemBytes() - before
			c.totalLen++
		}
		added += cs.sub.Len()
		// Insert in maxTS order among the archived sub-indexes: Expire
		// stops at the first unexpired maxTS, so the chain must stay
		// sorted by it for whole-segment discards to reach stale grafts.
		at := len(c.archived)
		for at > 0 && !c.archived[at-1].empty && !cs.empty && c.archived[at-1].maxTS > cs.maxTS {
			at--
		}
		c.archived = append(c.archived, nil)
		copy(c.archived[at+1:], c.archived[at:])
		c.archived[at] = cs
	}
	return added, nil
}
