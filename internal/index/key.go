package index

import "bistream/internal/tuple"

// Key-scoped export and removal: the primitives behind hot-key
// migration. When the adaptive router promotes a key to scattered
// placement, the key's already-stored partition sits piled on its old
// hash owner; the engine exports that pile (ExportKey), streams it to
// the scattered owners, and then removes exactly the exported tuples
// from the donor (RemoveKeySeqs). Removal never mutates a sealed
// sub-index in place — sealed segments are write-once for incremental
// checkpointing — so any sub-index that loses tuples is rebuilt as a
// brand-new segment under a fresh identity, and the checkpoint layer
// garbage-collects the old one exactly as it does for whole-segment
// expiry.

// ExportMatching returns the stored tuples for which match returns
// true, scanning the active sub-index and every archived one. Tuple
// pointers are shared, not copied — tuples are immutable.
func (c *Chained) ExportMatching(match func(*tuple.Tuple) bool) []*tuple.Tuple {
	var out []*tuple.Tuple
	collect := func(t *tuple.Tuple) bool {
		if match(t) {
			out = append(out, t)
		}
		return true
	}
	for _, cs := range c.archived {
		cs.sub.Export(collect)
	}
	c.active.sub.Export(collect)
	return out
}

// RemoveSeqs removes every stored tuple whose sequence number is in
// seqs and returns how many were removed. Sub-indexes that lose no
// tuples are untouched. The active sub-index is rebuilt in place under
// its own id (the live segment is rewritten every checkpoint round
// anyway). An archived sub-index is sealed — its (origin, id) content
// is write-once for the checkpoint layer — so it is rebuilt as a new
// segment with a fresh id under rebuildOrigin, the owning member's id.
// Using the member's own id as origin keeps the identity disjoint both
// from plain local segments (origin -1) and from anything a graft could
// deliver: a member is never a recipient of its own migration, so no
// foreign segment with its id as origin can ever arrive. Sub-indexes
// left empty are dropped from the chain entirely, like expiry.
func (c *Chained) RemoveSeqs(rebuildOrigin int32, seqs map[uint64]struct{}) int {
	removed := 0
	keep := c.archived[:0]
	for _, cs := range c.archived {
		n, fresh := c.rebuildWithout(cs, seqs, true, rebuildOrigin)
		removed += n
		if fresh != nil {
			keep = append(keep, fresh)
		}
	}
	for i := len(keep); i < len(c.archived); i++ {
		c.archived[i] = nil
	}
	c.archived = keep
	n, fresh := c.rebuildWithout(c.active, seqs, false, rebuildOrigin)
	removed += n
	if fresh != nil {
		c.active = fresh
	} else {
		// Every active tuple was removed: restart the live segment empty
		// under the same id.
		c.memBytes -= c.active.sub.MemBytes()
		c.active = newChainedSub(c.factory, c.active.id)
		c.memBytes += c.active.sub.MemBytes()
	}
	c.totalLen -= removed
	return removed
}

// rebuildWithout returns (0, cs) when cs holds no tuple from seqs. When
// it does, the survivors are re-inserted into a replacement sub-index —
// a fresh identity for sealed sub-indexes, the same id for the active
// one — and (removedCount, replacement) is returned; a replacement left
// empty is returned as nil. Memory accounting is adjusted here; the
// caller fixes totalLen.
func (c *Chained) rebuildWithout(cs *chainedSub, seqs map[uint64]struct{}, sealed bool, rebuildOrigin int32) (int, *chainedSub) {
	hit := 0
	cs.sub.Export(func(t *tuple.Tuple) bool {
		if _, ok := seqs[t.Seq]; ok {
			hit++
		}
		return true
	})
	if hit == 0 {
		return 0, cs
	}
	var fresh *chainedSub
	if sealed {
		fresh = newChainedSub(c.factory, c.alloc.take())
		fresh.origin = rebuildOrigin
	} else {
		fresh = newChainedSub(c.factory, cs.id)
	}
	cs.sub.Export(func(t *tuple.Tuple) bool {
		if _, ok := seqs[t.Seq]; !ok {
			fresh.insert(t)
		}
		return true
	})
	c.memBytes -= cs.sub.MemBytes()
	if fresh.empty {
		return hit, nil
	}
	c.memBytes += fresh.sub.MemBytes()
	return hit, fresh
}

// ExportKey returns the stored tuples whose indexed attribute hashes to
// keyHash. Only the key's own shard is scanned — for a partitionable
// predicate every tuple of one key lives in one shard. It returns nil
// when the index partitions by sequence number (attr < 0): without a
// store-side join attribute there is no per-key placement to rebalance,
// and callers gate hot-key migration on Predicate.Partitionable().
func (x *Sharded) ExportKey(keyHash uint64) []*tuple.Tuple {
	if x.attr < 0 {
		return nil
	}
	shard := x.shards[keyHash%uint64(len(x.shards))]
	return shard.ExportMatching(func(t *tuple.Tuple) bool {
		return t.Value(x.attr).Hash() == keyHash
	})
}

// RemoveKeySeqs removes the tuples of keyHash's shard whose sequence
// numbers are in seqs, returning how many were removed. seqs is the
// sequence set captured by a prior ExportKey, so tuples of the same key
// stored after the export survive — exactly the post-flip scattered
// arrivals a hot-key migration must not disturb. rebuildOrigin is the
// owning member's id, used as the origin of rebuilt sealed segments
// (see Chained.RemoveSeqs). A no-op returning 0 when the index
// partitions by sequence number.
func (x *Sharded) RemoveKeySeqs(rebuildOrigin int32, keyHash uint64, seqs []uint64) int {
	if x.attr < 0 || len(seqs) == 0 {
		return 0
	}
	set := make(map[uint64]struct{}, len(seqs))
	for _, s := range seqs {
		set[s] = struct{}{}
	}
	return x.shards[keyHash%uint64(len(x.shards))].RemoveSeqs(rebuildOrigin, set)
}
