package index

import (
	"bistream/internal/predicate"
	"bistream/internal/tuple"
)

// Hash is a hash sub-index over one attribute, used for equi-join
// probing ("HashMap for equi-join" in the text). With attr < 0 it
// degrades to an append-only store that only serves full scans.
type Hash struct {
	attr     int
	buckets  map[uint64][]*tuple.Tuple
	all      []*tuple.Tuple // insertion order, for ProbeAll
	memBytes int64
}

// Per-entry bookkeeping overhead estimates, tuned to resemble Go map and
// slice costs so that MemBytes behaves like a real heap profile.
const (
	hashEntryOverhead = 48 // map bucket share + slice element
	listEntryOverhead = 8  // slice element
)

// NewHash builds a hash sub-index keyed on the given attribute position.
func NewHash(attr int) *Hash {
	return &Hash{attr: attr, buckets: make(map[uint64][]*tuple.Tuple)}
}

// Insert implements SubIndex.
func (h *Hash) Insert(t *tuple.Tuple) {
	h.all = append(h.all, t)
	h.memBytes += int64(t.MemSize()) + listEntryOverhead
	if h.attr >= 0 {
		k := t.Value(h.attr).Hash()
		h.buckets[k] = append(h.buckets[k], t)
		h.memBytes += hashEntryOverhead
	}
}

// Probe implements SubIndex. Point probes use the bucket; range probes
// (which should not normally reach a hash sub-index) and full scans walk
// everything.
func (h *Hash) Probe(plan predicate.Plan, emit func(*tuple.Tuple) bool) {
	if plan.Kind == predicate.ProbePoint && h.attr >= 0 {
		for _, t := range h.buckets[plan.HashOfKey()] {
			if !emit(t) {
				return
			}
		}
		return
	}
	for _, t := range h.all {
		if !emit(t) {
			return
		}
	}
}

// Export implements SubIndex: insertion-order walk of every tuple.
func (h *Hash) Export(emit func(*tuple.Tuple) bool) {
	for _, t := range h.all {
		if !emit(t) {
			return
		}
	}
}

// Len implements SubIndex.
func (h *Hash) Len() int { return len(h.all) }

// MemBytes implements SubIndex.
func (h *Hash) MemBytes() int64 { return h.memBytes }
