package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bistream/internal/predicate"
	"bistream/internal/tuple"
)

func TestBTreeOrderedRange(t *testing.T) {
	b := NewBTree(0)
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for i, v := range perm {
		b.Insert(tuple.New(tuple.R, uint64(i), 0, tuple.Int(int64(v))))
	}
	if b.Len() != 500 {
		t.Fatalf("Len = %d", b.Len())
	}
	got := collect(b, predicate.Plan{
		Kind: predicate.ProbeRange,
		Lo:   tuple.Int(100), Hi: tuple.Int(199), LoInc: true, HiInc: true,
	})
	if len(got) != 100 {
		t.Fatalf("range [100,199] found %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Value(0).Compare(got[i].Value(0)) > 0 {
			t.Fatal("range scan out of order")
		}
	}
}

func TestBTreeBoundsAndScans(t *testing.T) {
	b := NewBTree(0)
	for v := 0; v < 10; v++ {
		b.Insert(tuple.New(tuple.R, uint64(v), 0, tuple.Int(int64(v))))
	}
	cases := []struct {
		lo, hi       int64
		loInc, hiInc bool
		want         int
	}{
		{3, 6, true, true, 4},
		{3, 6, false, true, 3},
		{3, 6, true, false, 3},
		{3, 6, false, false, 2},
	}
	for _, c := range cases {
		got := collect(b, predicate.Plan{
			Kind: predicate.ProbeRange,
			Lo:   tuple.Int(c.lo), Hi: tuple.Int(c.hi), LoInc: c.loInc, HiInc: c.hiInc,
		})
		if len(got) != c.want {
			t.Errorf("range(%d,%d,%v,%v) = %d, want %d", c.lo, c.hi, c.loInc, c.hiInc, len(got), c.want)
		}
	}
	if got := collect(b, predicate.Plan{Kind: predicate.ProbeRange, Hi: tuple.Int(4), HiInc: false}); len(got) != 4 {
		t.Errorf("(-inf,4) = %d", len(got))
	}
	if got := collect(b, predicate.Plan{Kind: predicate.ProbeRange, Lo: tuple.Int(7), LoInc: true}); len(got) != 3 {
		t.Errorf("[7,inf) = %d", len(got))
	}
	if got := collect(b, predicate.Plan{Kind: predicate.ProbeAll}); len(got) != 10 {
		t.Errorf("ProbeAll = %d", len(got))
	}
	if got := collect(b, predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(5)}); len(got) != 1 {
		t.Errorf("point = %d", len(got))
	}
}

func TestBTreeDuplicateKeysAndEarlyStop(t *testing.T) {
	b := NewBTree(0)
	for i := 0; i < 300; i++ {
		b.Insert(tuple.New(tuple.R, uint64(i), 0, tuple.Int(int64(i%3))))
	}
	got := collect(b, predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(1)})
	if len(got) != 100 {
		t.Errorf("duplicates for key 1 = %d", len(got))
	}
	n := 0
	b.Probe(predicate.Plan{Kind: predicate.ProbeAll}, func(*tuple.Tuple) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
	if b.MemBytes() <= 0 {
		t.Error("MemBytes should be positive")
	}
}

// TestBTreeMatchesSkipList: both ordered indexes must agree with each
// other (and hence the reference model) on random workloads.
func TestBTreeMatchesSkipList(t *testing.T) {
	f := func(vals []int16, lo, hi int8) bool {
		bt := NewBTree(0)
		sl := NewSkipList(0)
		for i, v := range vals {
			tp := tuple.New(tuple.R, uint64(i), 0, tuple.Int(int64(v)))
			bt.Insert(tp)
			sl.Insert(tp)
		}
		l, h := int64(lo), int64(hi)
		if l > h {
			l, h = h, l
		}
		plan := predicate.Plan{
			Kind: predicate.ProbeRange,
			Lo:   tuple.Int(l), Hi: tuple.Int(h), LoInc: true, HiInc: true,
		}
		return len(collect(bt, plan)) == len(collect(sl, plan))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBTreeDeepSplits(t *testing.T) {
	// Enough sequential inserts to force several levels of inner-node
	// splits; every key must remain reachable.
	b := NewBTree(0)
	const n = 50_000
	for i := 0; i < n; i++ {
		b.Insert(tuple.New(tuple.R, uint64(i), 0, tuple.Int(int64(i))))
	}
	if b.Len() != n {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := collect(b, predicate.Plan{Kind: predicate.ProbeRange}); len(got) != n {
		t.Fatalf("full range = %d", len(got))
	}
	for _, probe := range []int64{0, 1, n / 2, n - 1} {
		if got := collect(b, predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(probe)}); len(got) != 1 {
			t.Errorf("point %d = %d hits", probe, len(got))
		}
	}
}

func TestForPredicateOrderedKinds(t *testing.T) {
	band := predicate.NewBand(0, 0, 1)
	if _, ok := ForPredicateOrdered(band, tuple.R, BTreeKind)().(*BTree); !ok {
		t.Error("BTreeKind ignored")
	}
	if _, ok := ForPredicateOrdered(band, tuple.R, SkipListKind)().(*SkipList); !ok {
		t.Error("SkipListKind ignored")
	}
	// Equi predicates always hash, whatever the ordered kind.
	if _, ok := ForPredicateOrdered(predicate.NewEqui(0, 0), tuple.R, BTreeKind)().(*Hash); !ok {
		t.Error("equi should still hash")
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	bt := NewBTree(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bt.Insert(tuple.New(tuple.R, uint64(i), int64(i), tuple.Int(int64(i*2654435761))))
	}
}

// BenchmarkOrderedIndexAblation compares the two ordered sub-index
// implementations on the band-join access pattern: random inserts mixed
// with short range probes.
func BenchmarkOrderedIndexAblation(b *testing.B) {
	run := func(b *testing.B, mk func() SubIndex) {
		idx := mk()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			key := int64(i*2654435761) % 100_000
			idx.Insert(tuple.New(tuple.R, uint64(i), int64(i), tuple.Int(key)))
			if i%4 == 3 {
				plan := predicate.Plan{
					Kind: predicate.ProbeRange,
					Lo:   tuple.Int(key - 50), Hi: tuple.Int(key + 50),
					LoInc: true, HiInc: true,
				}
				idx.Probe(plan, func(*tuple.Tuple) bool { return true })
			}
		}
	}
	b.Run("skiplist", func(b *testing.B) { run(b, func() SubIndex { return NewSkipList(0) }) })
	b.Run("btree", func(b *testing.B) { run(b, func() SubIndex { return NewBTree(0) }) })
}
