package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

func collect(idx SubIndex, plan predicate.Plan) []*tuple.Tuple {
	var out []*tuple.Tuple
	idx.Probe(plan, func(t *tuple.Tuple) bool { out = append(out, t); return true })
	return out
}

func seqs(ts []*tuple.Tuple) []uint64 {
	out := make([]uint64, len(ts))
	for i, t := range ts {
		out[i] = t.Seq
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestHashPointProbe(t *testing.T) {
	h := NewHash(0)
	for i := 0; i < 100; i++ {
		h.Insert(tuple.New(tuple.R, uint64(i), int64(i), tuple.Int(int64(i%10))))
	}
	if h.Len() != 100 {
		t.Fatalf("Len = %d", h.Len())
	}
	got := collect(h, predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(3)})
	if len(got) != 10 {
		t.Fatalf("point probe found %d, want 10", len(got))
	}
	for _, tp := range got {
		if tp.Value(0).AsInt() != 3 {
			t.Errorf("wrong tuple %v", tp)
		}
	}
	if got := collect(h, predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(999)}); len(got) != 0 {
		t.Errorf("missing key returned %d", len(got))
	}
}

func TestHashFullScanAndEarlyStop(t *testing.T) {
	h := NewHash(0)
	for i := 0; i < 50; i++ {
		h.Insert(tuple.New(tuple.R, uint64(i), 0, tuple.Int(int64(i))))
	}
	if got := collect(h, predicate.Plan{Kind: predicate.ProbeAll}); len(got) != 50 {
		t.Errorf("full scan found %d", len(got))
	}
	n := 0
	h.Probe(predicate.Plan{Kind: predicate.ProbeAll}, func(*tuple.Tuple) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestHashNoAttrStoresAndScans(t *testing.T) {
	h := NewHash(-1)
	h.Insert(tuple.New(tuple.R, 1, 0, tuple.Int(1)))
	// Point probes degrade to full scans when no attribute is indexed.
	if got := collect(h, predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(1)}); len(got) != 1 {
		t.Errorf("degraded probe found %d", len(got))
	}
	if h.MemBytes() <= 0 {
		t.Error("MemBytes should be positive")
	}
}

func TestSkipListOrderedRange(t *testing.T) {
	s := NewSkipList(0)
	perm := rand.New(rand.NewSource(1)).Perm(200)
	for i, v := range perm {
		s.Insert(tuple.New(tuple.R, uint64(i), 0, tuple.Int(int64(v))))
	}
	if s.Len() != 200 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := collect(s, predicate.Plan{
		Kind: predicate.ProbeRange,
		Lo:   tuple.Int(50), Hi: tuple.Int(59), LoInc: true, HiInc: true,
	})
	if len(got) != 10 {
		t.Fatalf("range [50,59] found %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Value(0).Compare(got[i].Value(0)) > 0 {
			t.Error("range scan out of order")
		}
	}
}

func TestSkipListBoundsExclusive(t *testing.T) {
	s := NewSkipList(0)
	for v := 0; v < 10; v++ {
		s.Insert(tuple.New(tuple.R, uint64(v), 0, tuple.Int(int64(v))))
	}
	cases := []struct {
		lo, hi       int64
		loInc, hiInc bool
		want         int
	}{
		{3, 6, true, true, 4},
		{3, 6, false, true, 3},
		{3, 6, true, false, 3},
		{3, 6, false, false, 2},
	}
	for _, c := range cases {
		got := collect(s, predicate.Plan{
			Kind: predicate.ProbeRange,
			Lo:   tuple.Int(c.lo), Hi: tuple.Int(c.hi), LoInc: c.loInc, HiInc: c.hiInc,
		})
		if len(got) != c.want {
			t.Errorf("range(%d,%d,%v,%v) = %d, want %d", c.lo, c.hi, c.loInc, c.hiInc, len(got), c.want)
		}
	}
}

func TestSkipListUnboundedSides(t *testing.T) {
	s := NewSkipList(0)
	for v := 0; v < 10; v++ {
		s.Insert(tuple.New(tuple.R, uint64(v), 0, tuple.Int(int64(v))))
	}
	if got := collect(s, predicate.Plan{Kind: predicate.ProbeRange, Hi: tuple.Int(4), HiInc: false}); len(got) != 4 {
		t.Errorf("(-inf,4) = %d", len(got))
	}
	if got := collect(s, predicate.Plan{Kind: predicate.ProbeRange, Lo: tuple.Int(7), LoInc: true}); len(got) != 3 {
		t.Errorf("[7,inf) = %d", len(got))
	}
	if got := collect(s, predicate.Plan{Kind: predicate.ProbeRange}); len(got) != 10 {
		t.Errorf("unbounded = %d", len(got))
	}
	if got := collect(s, predicate.Plan{Kind: predicate.ProbeAll}); len(got) != 10 {
		t.Errorf("ProbeAll = %d", len(got))
	}
}

func TestSkipListDuplicateKeys(t *testing.T) {
	s := NewSkipList(0)
	for i := 0; i < 30; i++ {
		s.Insert(tuple.New(tuple.R, uint64(i), 0, tuple.Int(int64(i%3))))
	}
	got := collect(s, predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(1)})
	if len(got) != 10 {
		t.Errorf("duplicates for key 1 = %d", len(got))
	}
}

func TestSkipListMatchesReferenceModel(t *testing.T) {
	f := func(vals []int16, lo, hi int8) bool {
		s := NewSkipList(0)
		for i, v := range vals {
			s.Insert(tuple.New(tuple.R, uint64(i), 0, tuple.Int(int64(v))))
		}
		l, h := int64(lo), int64(hi)
		if l > h {
			l, h = h, l
		}
		got := collect(s, predicate.Plan{
			Kind: predicate.ProbeRange,
			Lo:   tuple.Int(l), Hi: tuple.Int(h), LoInc: true, HiInc: true,
		})
		want := 0
		for _, v := range vals {
			if int64(v) >= l && int64(v) <= h {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func testWindow() window.Sliding { return window.Sliding{Span: 10 * time.Second} }

func newChainedHash(t *testing.T, periodMs int64) *Chained {
	t.Helper()
	c, err := NewChained(func() SubIndex { return NewHash(0) }, periodMs, testWindow())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainedArchiving(t *testing.T) {
	c := newChainedHash(t, 1000)
	// 5 seconds of data at 1 tuple per 100ms → ~5 archives.
	for i := 0; i < 50; i++ {
		c.Insert(tuple.New(tuple.R, uint64(i), int64(i*100), tuple.Int(int64(i))))
	}
	if c.Len() != 50 {
		t.Fatalf("Len = %d", c.Len())
	}
	if n := c.NumSubIndexes(); n < 4 || n > 7 {
		t.Errorf("NumSubIndexes = %d, want ≈5", n)
	}
	if c.Archives() == 0 {
		t.Error("no archive operations recorded")
	}
}

func TestChainedExpireDropsWholeSubIndexes(t *testing.T) {
	c := newChainedHash(t, 1000)
	for i := 0; i < 50; i++ {
		c.Insert(tuple.New(tuple.R, uint64(i), int64(i*1000), tuple.Int(1)))
	}
	before := c.NumSubIndexes()
	// Opposite tuple at t=49s: window 10s → tuples with ts < 39s-ish go.
	dropped := c.Expire(49000)
	if dropped == 0 {
		t.Fatal("nothing expired")
	}
	if c.NumSubIndexes() >= before {
		t.Error("no sub-index was dropped")
	}
	if c.Len() != 50-dropped {
		t.Errorf("Len = %d after dropping %d", c.Len(), dropped)
	}
	if c.Dropped() != int64(dropped) {
		t.Errorf("Dropped = %d", c.Dropped())
	}
	// All remaining tuples must still be within the window per Theorem 1
	// (no live tuple may be expired).
	c.Probe(predicate.Plan{Kind: predicate.ProbeAll}, func(tp *tuple.Tuple) bool {
		if testWindow().Expired(tp.TS, 49000) && tp.TS < 38000 {
			// Sub-index granularity may retain a few stale tuples whose
			// sub-index still holds fresh ones — but only within one
			// archive period of the cutoff.
			t.Errorf("tuple at %d retained beyond archive slack", tp.TS)
		}
		return true
	})
}

func TestChainedNeverDropsLiveTuples(t *testing.T) {
	// Safety: Expire must never drop a tuple that is still in-window.
	f := func(tsDeltas []uint8, oppSec uint8) bool {
		c, err := NewChained(func() SubIndex { return NewHash(0) }, 500, testWindow())
		if err != nil {
			return false
		}
		ts := int64(0)
		live := map[uint64]int64{}
		for i, d := range tsDeltas {
			ts += int64(d) * 10
			c.Insert(tuple.New(tuple.R, uint64(i), ts, tuple.Int(int64(i))))
			live[uint64(i)] = ts
		}
		opp := int64(oppSec) * 100
		c.Expire(opp)
		// Every tuple still in-window must be probeable.
		found := map[uint64]bool{}
		c.Probe(predicate.Plan{Kind: predicate.ProbeAll}, func(tp *tuple.Tuple) bool {
			found[tp.Seq] = true
			return true
		})
		for seq, t := range live {
			if !testWindow().Expired(t, opp) && !found[seq] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChainedMemAccounting(t *testing.T) {
	c := newChainedHash(t, 1000)
	if c.MemBytes() != 0 {
		t.Errorf("empty MemBytes = %d", c.MemBytes())
	}
	for i := 0; i < 100; i++ {
		c.Insert(tuple.New(tuple.R, uint64(i), int64(i*500), tuple.Int(int64(i))))
	}
	full := c.MemBytes()
	if full <= 0 {
		t.Fatal("MemBytes should grow")
	}
	c.Expire(1 << 40) // everything expires
	if c.Len() != 0 {
		// The active sub-index never expires, so a few tuples linger.
		if c.Len() > 5 {
			t.Errorf("Len after full expiry = %d", c.Len())
		}
	}
	if c.MemBytes() >= full {
		t.Errorf("MemBytes did not shrink: %d -> %d", full, c.MemBytes())
	}
}

func TestChainedProbeSpansAllSubIndexes(t *testing.T) {
	c := newChainedHash(t, 100)
	// Key 7 appears in several archive periods.
	for i := 0; i < 30; i++ {
		c.Insert(tuple.New(tuple.R, uint64(i), int64(i*50), tuple.Int(7)))
	}
	var got []*tuple.Tuple
	c.Probe(predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(7)}, func(t *tuple.Tuple) bool {
		got = append(got, t)
		return true
	})
	if len(got) != 30 {
		t.Errorf("probe found %d/30 across sub-indexes", len(got))
	}
	want := seqs(got)
	for i, s := range want {
		if s != uint64(i) {
			t.Fatalf("missing seq %d", i)
		}
	}
}

func TestChainedProbeEarlyStop(t *testing.T) {
	c := newChainedHash(t, 100)
	for i := 0; i < 30; i++ {
		c.Insert(tuple.New(tuple.R, uint64(i), int64(i*50), tuple.Int(7)))
	}
	n := 0
	c.Probe(predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(7)}, func(*tuple.Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestChainedRejectsBadPeriod(t *testing.T) {
	if _, err := NewChained(func() SubIndex { return NewHash(0) }, 0, testWindow()); err == nil {
		t.Error("zero period accepted")
	}
}

func TestForPredicate(t *testing.T) {
	if _, ok := ForPredicate(predicate.NewEqui(0, 0), tuple.R)().(*Hash); !ok {
		t.Error("equi should get a hash index")
	}
	if _, ok := ForPredicate(predicate.NewBand(0, 0, 1), tuple.R)().(*SkipList); !ok {
		t.Error("band should get a skip list")
	}
	if _, ok := ForPredicate(predicate.NewTheta(0, 0, predicate.LT), tuple.S)().(*SkipList); !ok {
		t.Error("theta should get a skip list")
	}
	fn := predicate.NewFunc("x", func(r, s *tuple.Tuple) bool { return true })
	if _, ok := ForPredicate(fn, tuple.R)().(*Hash); !ok {
		t.Error("func should get a scan-only hash store")
	}
}

func TestFlatEviction(t *testing.T) {
	f := NewFlat(0, testWindow())
	for i := 0; i < 100; i++ {
		f.Insert(tuple.New(tuple.R, uint64(i), int64(i*1000), tuple.Int(int64(i%5))))
	}
	if f.Len() != 100 {
		t.Fatalf("Len = %d", f.Len())
	}
	n := f.Expire(50000) // cutoff just under 40s → ts 0..39s expire
	if n != 40 {
		t.Errorf("expired %d, want 40", n)
	}
	if f.Len() != 60 {
		t.Errorf("Len = %d", f.Len())
	}
	if f.Dropped() != 40 {
		t.Errorf("Dropped = %d", f.Dropped())
	}
	// Probing must only return live tuples.
	got := collect(f, predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(2)})
	for _, tp := range got {
		if tp.TS < 40000 {
			t.Errorf("expired tuple %v returned by probe", tp)
		}
	}
	if got := collect(f, predicate.Plan{Kind: predicate.ProbeAll}); len(got) != 60 {
		t.Errorf("full scan after expiry = %d", len(got))
	}
}

func TestFlatMemShrinksOnExpire(t *testing.T) {
	f := NewFlat(0, testWindow())
	for i := 0; i < 1000; i++ {
		f.Insert(tuple.New(tuple.R, uint64(i), int64(i*100), tuple.Int(int64(i))))
	}
	before := f.MemBytes()
	f.Expire(1 << 40)
	if f.Len() != 0 || f.MemBytes() >= before {
		t.Errorf("Len=%d mem %d -> %d", f.Len(), before, f.MemBytes())
	}
	if f.MemBytes() != 0 {
		t.Errorf("mem after full expiry = %d", f.MemBytes())
	}
}

func TestFlatCompaction(t *testing.T) {
	f := NewFlat(0, testWindow())
	// Push enough through to trigger fifo compaction.
	for round := 0; round < 10; round++ {
		base := int64(round) * 100000
		for i := 0; i < 600; i++ {
			f.Insert(tuple.New(tuple.R, uint64(i), base+int64(i*10), tuple.Int(int64(i))))
		}
		f.Expire(base + 100000)
	}
	if f.Len() > 1300 {
		t.Errorf("Len = %d, expiry not keeping up", f.Len())
	}
}

func BenchmarkHashInsert(b *testing.B) {
	h := NewHash(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Insert(tuple.New(tuple.R, uint64(i), int64(i), tuple.Int(int64(i&1023))))
	}
}

func BenchmarkSkipListInsert(b *testing.B) {
	s := NewSkipList(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Insert(tuple.New(tuple.R, uint64(i), int64(i), tuple.Int(int64(i*2654435761))))
	}
}

func BenchmarkChainedInsertExpire(b *testing.B) {
	c, _ := NewChained(func() SubIndex { return NewHash(0) }, 1000, testWindow())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := int64(i * 10)
		c.Insert(tuple.New(tuple.R, uint64(i), ts, tuple.Int(int64(i&1023))))
		if i%100 == 0 {
			c.Expire(ts)
		}
	}
}

func BenchmarkFlatInsertExpire(b *testing.B) {
	f := NewFlat(0, testWindow())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := int64(i * 10)
		f.Insert(tuple.New(tuple.R, uint64(i), ts, tuple.Int(int64(i&1023))))
		if i%100 == 0 {
			f.Expire(ts)
		}
	}
}
