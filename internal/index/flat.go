package index

import (
	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// Flat is the monolithic single-index baseline the text argues against:
// one hash index over the whole window with tuple-at-a-time eviction.
// Discarding stale data must visit individual tuples and repair hash
// buckets, which is the overhead the chained index avoids. It exists for
// the archive-period ablation experiment (E5).
type Flat struct {
	attr    int
	win     window.Sliding
	fifo    []*tuple.Tuple // arrival order; fifo[head:] is live
	head    int
	buckets map[uint64][]*tuple.Tuple
	mem     int64
	dropped int64
}

// NewFlat builds a flat index keyed on attr over the given window.
func NewFlat(attr int, win window.Sliding) *Flat {
	return &Flat{attr: attr, win: win, buckets: make(map[uint64][]*tuple.Tuple)}
}

// Insert adds a tuple.
func (f *Flat) Insert(t *tuple.Tuple) {
	f.fifo = append(f.fifo, t)
	f.mem += int64(t.MemSize()) + listEntryOverhead
	if f.attr >= 0 {
		k := t.Value(f.attr).Hash()
		f.buckets[k] = append(f.buckets[k], t)
		f.mem += hashEntryOverhead
	}
}

// Expire removes stale tuples one at a time (Theorem 1 applied at tuple
// granularity), returning how many were discarded.
func (f *Flat) Expire(oppTS int64) int {
	n := 0
	for f.head < len(f.fifo) {
		t := f.fifo[f.head]
		if !f.win.Expired(t.TS, oppTS) {
			break
		}
		f.fifo[f.head] = nil
		f.head++
		n++
		f.mem -= int64(t.MemSize()) + listEntryOverhead
		if f.attr >= 0 {
			k := t.Value(f.attr).Hash()
			bucket := f.buckets[k]
			for i, bt := range bucket {
				if bt == t {
					bucket[i] = bucket[len(bucket)-1]
					bucket = bucket[:len(bucket)-1]
					break
				}
			}
			if len(bucket) == 0 {
				delete(f.buckets, k)
			} else {
				f.buckets[k] = bucket
			}
			f.mem -= hashEntryOverhead
		}
	}
	// Compact the fifo once the dead prefix dominates.
	if f.head > 1024 && f.head*2 > len(f.fifo) {
		f.fifo = append(f.fifo[:0], f.fifo[f.head:]...)
		f.head = 0
	}
	f.dropped += int64(n)
	return n
}

// Probe serves point probes from the buckets and everything else by
// full scan.
func (f *Flat) Probe(plan predicate.Plan, emit func(*tuple.Tuple) bool) {
	if plan.Kind == predicate.ProbePoint && f.attr >= 0 {
		for _, t := range f.buckets[plan.Key.Hash()] {
			if !emit(t) {
				return
			}
		}
		return
	}
	for _, t := range f.fifo[f.head:] {
		if !emit(t) {
			return
		}
	}
}

// Export calls emit for every live tuple in arrival order (checkpoint
// export; Flat is not a SubIndex but round-trips the same way).
func (f *Flat) Export(emit func(*tuple.Tuple) bool) {
	for _, t := range f.fifo[f.head:] {
		if !emit(t) {
			return
		}
	}
}

// Len returns the number of live tuples.
func (f *Flat) Len() int { return len(f.fifo) - f.head }

// MemBytes estimates resident bytes.
func (f *Flat) MemBytes() int64 { return f.mem }

// Dropped returns the total number of expired tuples.
func (f *Flat) Dropped() int64 { return f.dropped }
