package index

import (
	"fmt"
	"math/rand"
	"testing"

	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

func newShardedEqui(t *testing.T, n int) *Sharded {
	t.Helper()
	win := window.Sliding{Span: 10_000 * 1_000_000} // 10s
	x, err := NewSharded(func() SubIndex { return NewHash(0) }, 500, win, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestShardedEveryKeyOnExactlyOneShard pins the partitioning invariant
// the lock-free hot path rests on: all tuples of one join key live in
// exactly one shard, and a point probe for that key visits that shard.
func TestShardedEveryKeyOnExactlyOneShard(t *testing.T) {
	x := newShardedEqui(t, 4)
	const keys, copies = 50, 8
	for k := 0; k < keys; k++ {
		for c := 0; c < copies; c++ {
			x.Insert(tuple.New(tuple.R, uint64(k*copies+c+1), int64(c), tuple.Int(int64(k))))
		}
	}
	if x.Len() != keys*copies {
		t.Fatalf("Len = %d, want %d", x.Len(), keys*copies)
	}
	for k := 0; k < keys; k++ {
		plan := predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(int64(k))}
		owner := x.ProbeShard(plan)
		if owner < 0 {
			t.Fatalf("key %d: point probe did not resolve to one shard", k)
		}
		// The key's tuples are all in the owner shard and nowhere else.
		for i := 0; i < x.NumShards(); i++ {
			found := 0
			x.Shard(i).Probe(predicate.Plan{Kind: predicate.ProbeAll}, func(tp *tuple.Tuple) bool {
				if tp.Value(0).AsInt() == int64(k) {
					found++
				}
				return true
			})
			want := 0
			if i == owner {
				want = copies
			}
			if found != want {
				t.Fatalf("key %d: shard %d holds %d copies, want %d", k, i, found, want)
			}
		}
		if got := len(probeAll(x, plan)); got != copies {
			t.Fatalf("key %d: probe found %d, want %d", k, got, copies)
		}
	}
}

// TestShardedRestoreAcrossShardCountChange proves snapshot/restore
// re-establishes the exactly-one-shard invariant when the shard count
// changes between export and import (a restart with a different
// -shards or GOMAXPROCS).
func TestShardedRestoreAcrossShardCountChange(t *testing.T) {
	for _, counts := range [][2]int{{4, 2}, {2, 5}, {3, 1}, {1, 4}} {
		t.Run(fmt.Sprintf("%d-to-%d", counts[0], counts[1]), func(t *testing.T) {
			orig := newShardedEqui(t, counts[0])
			rng := rand.New(rand.NewSource(11))
			ts := int64(0)
			for i := 0; i < 300; i++ {
				ts += rng.Int63n(40)
				orig.Insert(tuple.New(tuple.R, uint64(i+1), ts, tuple.Int(rng.Int63n(25))))
			}
			restored := newShardedEqui(t, counts[1])
			if err := restored.ImportSegments(orig.ExportSegments()); err != nil {
				t.Fatal(err)
			}
			if restored.Len() != orig.Len() {
				t.Fatalf("restored len=%d, want %d", restored.Len(), orig.Len())
			}
			for k := int64(0); k < 25; k++ {
				plan := predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(k)}
				got, want := probeAll(restored, plan), probeAll(orig, plan)
				if len(got) != len(want) {
					t.Fatalf("key %d: restored probe found %d, want %d", k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("key %d: probe result %d differs", k, i)
					}
				}
				// The invariant itself: after the resize every key is
				// wholly inside its (new) owner shard.
				owner := restored.ProbeShard(plan)
				for i := 0; i < restored.NumShards(); i++ {
					if i == owner {
						continue
					}
					restored.Shard(i).Probe(predicate.Plan{Kind: predicate.ProbeAll}, func(tp *tuple.Tuple) bool {
						if tp.Value(0).Equal(tuple.Int(k)) {
							t.Fatalf("key %d leaked into shard %d (owner %d)", k, i, owner)
						}
						return true
					})
				}
			}
			// Expiry may drop slightly different stale prefixes on the two
			// layouts (whole-sub-index discards depend on segment
			// boundaries, which a repartition rebuilds), but it must never
			// drop an in-window tuple on either.
			oppTS := ts + 5_000
			orig.Expire(oppTS)
			restored.Expire(oppTS)
			win := window.Sliding{Span: 10_000 * 1_000_000}
			for _, x := range []*Sharded{orig, restored} {
				live := map[string]bool{}
				x.Probe(predicate.Plan{Kind: predicate.ProbeAll}, func(tp *tuple.Tuple) bool {
					live[string(tuple.Marshal(tp))] = true
					return true
				})
				rng := rand.New(rand.NewSource(11))
				rts := int64(0)
				for i := 0; i < 300; i++ {
					rts += rng.Int63n(40)
					tp := tuple.New(tuple.R, uint64(i+1), rts, tuple.Int(rng.Int63n(25)))
					if !win.Expired(tp.TS, oppTS) && !live[string(tuple.Marshal(tp))] {
						t.Fatalf("in-window tuple seq %d dropped by expiry", tp.Seq)
					}
				}
			}
		})
	}
}

// TestShardedSameCountRestorePreservesLayout: with an unchanged shard
// count the import is positional, preserving segment identities so
// checkpoint increments stay valid.
func TestShardedSameCountRestorePreservesLayout(t *testing.T) {
	orig := newShardedEqui(t, 3)
	rng := rand.New(rand.NewSource(5))
	ts := int64(0)
	for i := 0; i < 400; i++ {
		ts += rng.Int63n(30)
		orig.Insert(tuple.New(tuple.R, uint64(i+1), ts, tuple.Int(rng.Int63n(40))))
	}
	segs := orig.ExportSegments()
	restored := newShardedEqui(t, 3)
	if err := restored.ImportSegments(segs); err != nil {
		t.Fatal(err)
	}
	segs2 := restored.ExportSegments()
	if len(segs2) != len(segs) {
		t.Fatalf("re-export produced %d segments, want %d", len(segs2), len(segs))
	}
	for i := range segs {
		if segs2[i].ID != segs[i].ID || segs2[i].Sealed != segs[i].Sealed || len(segs2[i].Tuples) != len(segs[i].Tuples) {
			t.Fatalf("segment %d changed identity across restore: %+v vs %+v",
				i, segs2[i].ID, segs[i].ID)
		}
	}
	for i := 0; i < 3; i++ {
		if restored.Shard(i).Len() != orig.Shard(i).Len() {
			t.Fatalf("shard %d len=%d, want %d", i, restored.Shard(i).Len(), orig.Shard(i).Len())
		}
	}
}

// TestShardedGraftSplitsAndStaysIdempotent: a donor's sealed segments
// split across shards by tuple hash, retries add nothing, and every
// grafted tuple is probeable afterwards.
func TestShardedGraftSplitsAndStaysIdempotent(t *testing.T) {
	x := newShardedEqui(t, 4)
	var donor []Segment
	seq := uint64(1)
	for id := uint64(1); id <= 3; id++ {
		seg := Segment{ID: id, Origin: 7, Sealed: true}
		for i := 0; i < 40; i++ {
			tp := tuple.New(tuple.R, seq, int64(seq), tuple.Int(int64(seq%13)))
			seq++
			if len(seg.Tuples) == 0 {
				seg.MinTS, seg.MaxTS = tp.TS, tp.TS
			} else {
				seg.MaxTS = tp.TS
			}
			seg.Tuples = append(seg.Tuples, tp)
		}
		donor = append(donor, seg)
	}
	added, err := x.Graft(donor)
	if err != nil {
		t.Fatal(err)
	}
	if added != 120 {
		t.Fatalf("graft added %d, want 120", added)
	}
	if x.Len() != 120 {
		t.Fatalf("Len = %d after graft", x.Len())
	}
	// Retry: same donor segments, nothing new.
	added, err = x.Graft(donor)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("retried graft added %d, want 0", added)
	}
	for k := int64(0); k < 13; k++ {
		plan := predicate.Plan{Kind: predicate.ProbePoint, Key: tuple.Int(k)}
		got := probeAll(x, plan)
		want := 0
		for s := uint64(1); s <= 120; s++ {
			if int64(s%13) == k {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("key %d: found %d grafted tuples, want %d", k, len(got), want)
		}
	}
	// The graft survives an export/import round trip (same count).
	restored := newShardedEqui(t, 4)
	if err := restored.ImportSegments(x.ExportSegments()); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 120 {
		t.Fatalf("restored len=%d, want 120", restored.Len())
	}
	// And a graft retry on the restored index still adds nothing.
	added, err = restored.Graft(donor)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("post-restore graft retry added %d, want 0", added)
	}
}

// TestShardedRangeProbeMatchesSingleShard: a non-partitionable plan
// fans out across shards and must return the same multiset a one-shard
// index does.
func TestShardedRangeProbeMatchesSingleShard(t *testing.T) {
	win := window.Sliding{Span: 10_000 * 1_000_000}
	factory := func() SubIndex { return NewSkipList(0) }
	multi, err := NewSharded(factory, 500, win, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewSharded(factory, 500, win, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ts := int64(0)
	for i := 0; i < 300; i++ {
		ts += rng.Int63n(30)
		tp := tuple.New(tuple.R, uint64(i+1), ts, tuple.Int(rng.Int63n(100)))
		multi.Insert(tp)
		single.Insert(tp)
	}
	for _, plan := range []predicate.Plan{
		{Kind: predicate.ProbeRange, Lo: tuple.Int(10), Hi: tuple.Int(30), LoInc: true, HiInc: true},
		{Kind: predicate.ProbeRange, Hi: tuple.Int(50), HiInc: false},
		{Kind: predicate.ProbeAll},
	} {
		got, want := probeAll(multi, plan), probeAll(single, plan)
		if len(got) != len(want) {
			t.Fatalf("plan %+v: sharded found %d, single found %d", plan.Kind, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("plan %+v: result %d differs", plan.Kind, i)
			}
		}
	}
}
