// Package protocol implements the tuple ordering protocol of §3.3 of
// the source text, which turns the pairwise-FIFO delivery the broker
// guarantees (Definition 8) into an order-consistent processing sequence
// at every joiner (Definition 7), eliminating the missed and duplicated
// join results of Figure 8(c)/(d).
//
// Mechanism: each router stamps every outgoing tuple with a
// monotonically increasing counter; the same stamp travels on both the
// store copy and the join copies, so the relative order of any two
// tuples is a property of the stamps alone and is identical at every
// joiner. Routers periodically broadcast punctuation signals carrying
// their current counter; a joiner buffers incoming envelopes in a
// priority queue and only processes those whose counter is covered by
// the punctuation frontier of every registered router, in (counter,
// router) order.
package protocol

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"bistream/internal/tuple"
)

// Kind discriminates envelope payloads.
type Kind uint8

// Envelope kinds.
const (
	KindTuple Kind = iota + 1
	KindPunctuation
	// KindRetire is a router's tombstone: the last envelope it sends on
	// each path before shutting down (scale-in). On receipt a joiner
	// unregisters that (router, source) frontier — FIFO guarantees
	// nothing can follow it, so the frozen frontier of a departed
	// router can never gate the live routers' newer stamps.
	KindRetire
)

// Stream tells a joiner what to do with a tuple: store it in its own
// relation's window, or join it against the opposite relation's window.
type Stream uint8

// The two logical streams leaving a router (§3.2).
const (
	StreamStore Stream = iota + 1
	StreamJoin
)

// String names the stream.
func (s Stream) String() string {
	if s == StreamStore {
		return "store"
	}
	return "join"
}

// Envelope is the unit routers send to joiners: either a stamped tuple
// on the store or join stream, or a punctuation signal.
type Envelope struct {
	Kind     Kind
	RouterID int32
	Counter  uint64
	Stream   Stream       // KindTuple only
	Tuple    *tuple.Tuple // KindTuple only

	// RecvNanos is the receiving joiner's wall clock at arrival. It is
	// not serialized; the joiner sets it before buffering and reads it
	// at release to measure the latency the ordering protocol adds.
	RecvNanos int64
}

// Marshal encodes the envelope for a broker message body.
func (e Envelope) Marshal() []byte {
	buf := make([]byte, 0, 32)
	buf = append(buf, byte(e.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.RouterID))
	buf = binary.LittleEndian.AppendUint64(buf, e.Counter)
	if e.Kind == KindTuple {
		buf = append(buf, byte(e.Stream))
		buf = tuple.AppendBinary(buf, e.Tuple)
	}
	return buf
}

// UnmarshalEnvelope decodes an envelope.
func UnmarshalEnvelope(data []byte) (Envelope, error) {
	return DecodeEnvelope(data, nil)
}

// DecodeEnvelope decodes an envelope, drawing the tuple allocation from
// dec when it is non-nil — the batch hot path: a consume loop decoding
// hundreds of envelopes per wakeup amortizes its tuple allocations
// across the decoder's slabs. A nil dec behaves exactly like
// UnmarshalEnvelope.
func DecodeEnvelope(data []byte, dec *tuple.Decoder) (Envelope, error) {
	if len(data) < 13 {
		return Envelope{}, fmt.Errorf("protocol: short envelope (%d bytes)", len(data))
	}
	e := Envelope{
		Kind:     Kind(data[0]),
		RouterID: int32(binary.LittleEndian.Uint32(data[1:5])),
		Counter:  binary.LittleEndian.Uint64(data[5:13]),
	}
	switch e.Kind {
	case KindPunctuation, KindRetire:
		if len(data) != 13 {
			return Envelope{}, fmt.Errorf("protocol: signal with %d trailing bytes", len(data)-13)
		}
		return e, nil
	case KindTuple:
		if len(data) < 14 {
			return Envelope{}, fmt.Errorf("protocol: tuple envelope missing stream byte")
		}
		e.Stream = Stream(data[13])
		if e.Stream != StreamStore && e.Stream != StreamJoin {
			return Envelope{}, fmt.Errorf("protocol: bad stream byte %d", data[13])
		}
		var t *tuple.Tuple
		var err error
		if dec != nil {
			t, err = dec.Unmarshal(data[14:])
		} else {
			t, err = tuple.Unmarshal(data[14:])
		}
		if err != nil {
			return Envelope{}, err
		}
		e.Tuple = t
		return e, nil
	default:
		return Envelope{}, fmt.Errorf("protocol: unknown envelope kind %d", data[0])
	}
}

// Stamper assigns the per-router monotone counter as a hybrid logical
// clock: each stamp is max(previous+1, wall-clock microseconds). The
// wall-clock component keeps the counters of independent routers
// loosely synchronized, so an idle router's punctuations still advance
// the joiners' release frontier — without it, a router that stops
// sending would freeze the minimum frontier below the counters of its
// busier peers and stall the whole protocol. Correctness does not
// depend on clock accuracy: any monotone per-router sequence yields a
// valid global (counter, routerID) order; the clock only provides
// liveness and an arrival-time-like order.
//
// Stamper is safe for concurrent use.
type Stamper struct {
	routerID int32
	now      func() uint64
	mu       sync.Mutex
	counter  uint64
}

// NewStamper creates a stamper for the given router id using the wall
// clock as the hybrid component.
func NewStamper(routerID int32) *Stamper {
	return NewStamperFunc(routerID, func() uint64 { return uint64(time.Now().UnixMicro()) })
}

// NewStamperFunc creates a stamper with a custom clock source; now may
// return 0 for a purely logical counter (tests).
func NewStamperFunc(routerID int32, now func() uint64) *Stamper {
	return &Stamper{routerID: routerID, now: now}
}

// Next returns the next stamp (strictly increasing, starting at 1).
func (s *Stamper) Next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counter + 1
	if t := s.now(); t > c {
		c = t
	}
	s.counter = c
	return c
}

// Punctuation returns the value a punctuation signal carries: it
// consumes the current clock so every later stamp is strictly greater,
// which is the promise (Definition 7) joiners rely on when releasing
// envelopes with counter <= frontier.
func (s *Stamper) Punctuation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.now(); t > s.counter {
		s.counter = t
	}
	return s.counter
}

// Current returns the last issued stamp without advancing the clock.
func (s *Stamper) Current() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counter
}

// RouterID returns the stamper's router id.
func (s *Stamper) RouterID() int32 { return s.routerID }

// Source identifies one FIFO path from a router into a joiner. A joiner
// typically has two: its store-stream queue and its join-stream queue.
// Punctuations are broadcast on every path, and an envelope only
// releases when every registered (router, source) frontier covers its
// counter, because FIFO holds per path, not across paths.
type Source int32

// The conventional sources of a joiner.
const (
	SourceStore Source = 0
	SourceJoin  Source = 1
)

type frontKey struct {
	router int32
	source Source
}

// Reorderer is the joiner-side buffer: it holds envelopes until the
// punctuation frontier of every registered (router, source) path covers
// them, then releases them in (counter, routerID) order — a subsequence
// of one global sequence, as Definition 7 requires.
//
// Reorderer is not safe for concurrent use; the joiner serializes access.
type Reorderer struct {
	frontier map[frontKey]uint64
	pending  envHeap
	released uint64
	maxDepth int

	// minCache holds minFrontier()'s value while minDirty is false, so
	// the per-envelope release check is one comparison instead of a map
	// iteration. Mutations that can lower or raise the minimum (retire,
	// restore, raising the path that holds it) set minDirty.
	minCache uint64
	minDirty bool
	// lastAdd short-circuits AddRouter's registered-check for the path
	// that registered most recently — the steady state is thousands of
	// envelopes from the same (router, source) per punctuation period.
	lastAdd   frontKey
	lastAddOK bool
}

// NewReorderer creates an empty reorder buffer. Router paths must be
// registered with AddRouter before their envelopes can release.
func NewReorderer() *Reorderer {
	return &Reorderer{frontier: make(map[frontKey]uint64)}
}

// AddRouter registers a router path; until it punctuates, its frontier
// is 0 and gates every release (a newly added router cannot have sent
// anything yet, so this is conservative only for one punctuation
// period).
func (r *Reorderer) AddRouter(id int32, source Source) {
	k := frontKey{id, source}
	if r.lastAddOK && k == r.lastAdd {
		return
	}
	if _, ok := r.frontier[k]; !ok {
		r.frontier[k] = 0
		// A fresh path's frontier is 0, so it is the minimum.
		r.minCache, r.minDirty = 0, false
	}
	r.lastAdd, r.lastAddOK = k, true
}

// RemoveRouter unregisters all paths of a router (scale-in).
func (r *Reorderer) RemoveRouter(id int32) {
	for k := range r.frontier {
		if k.router == id {
			delete(r.frontier, k)
		}
	}
	r.minDirty, r.lastAddOK = true, false
}

// RemoveRouterAndRelease unregisters a router and returns the envelopes
// its departure unblocks (the departing router may have been the one
// holding the minimum frontier).
func (r *Reorderer) RemoveRouterAndRelease(id int32) []Envelope {
	r.RemoveRouter(id)
	return r.release()
}

// Routers returns the number of registered router paths.
func (r *Reorderer) Routers() int { return len(r.frontier) }

// Add buffers a tuple envelope arriving on the given source path and
// returns any envelopes that are now releasable, in order.
func (r *Reorderer) Add(e Envelope, source Source) []Envelope {
	return r.AddInto(e, source, nil)
}

// AddInto is Add with a caller-owned release buffer: releasable
// envelopes are appended to out and the extended slice returned, so a
// batch consume loop can drain many deliveries into one reused slice
// instead of allocating a fresh one per envelope.
func (r *Reorderer) AddInto(e Envelope, source Source, out []Envelope) []Envelope {
	switch e.Kind {
	case KindPunctuation:
		k := frontKey{e.RouterID, source}
		if cur, ok := r.frontier[k]; !ok || e.Counter > cur {
			r.frontier[k] = e.Counter
			r.minDirty = true
		}
		return r.releaseInto(out)
	case KindRetire:
		delete(r.frontier, frontKey{e.RouterID, source})
		r.minDirty, r.lastAddOK = true, false
		return r.releaseInto(out)
	}
	r.AddRouter(e.RouterID, source) // seeing traffic implies the path exists
	r.pending.push(e)
	if len(r.pending) > r.maxDepth {
		r.maxDepth = len(r.pending)
	}
	return r.releaseInto(out)
}

// Punctuate advances a router path's frontier (from a punctuation
// signal) and returns the newly releasable envelopes, in order.
func (r *Reorderer) Punctuate(routerID int32, source Source, counter uint64) []Envelope {
	k := frontKey{routerID, source}
	if cur, ok := r.frontier[k]; !ok || counter > cur {
		r.frontier[k] = counter
		r.minDirty = true
	}
	return r.release()
}

// Retire unregisters one (router, source) path on receipt of the
// router's tombstone and returns the envelopes its removal unblocks.
func (r *Reorderer) Retire(routerID int32, source Source) []Envelope {
	delete(r.frontier, frontKey{routerID, source})
	r.minDirty, r.lastAddOK = true, false
	return r.release()
}

// MinFrontier reports the smallest punctuated counter over registered
// router paths (0 when none are registered). Migration uses it as the
// drain barrier: once every path's frontier passes the layout-change
// cursor, every tuple stamped before the change has been released and
// processed here.
func (r *Reorderer) MinFrontier() uint64 { return r.minFrontier() }

// minFrontier computes the smallest punctuated counter over registered
// routers; envelopes at or below it are safe to process.
func (r *Reorderer) minFrontier() uint64 {
	if !r.minDirty {
		return r.minCache
	}
	first := true
	var m uint64
	for _, c := range r.frontier {
		if first || c < m {
			m = c
			first = false
		}
	}
	if first {
		m = 0
	}
	r.minCache, r.minDirty = m, false
	return m
}

func (r *Reorderer) release() []Envelope {
	return r.releaseInto(nil)
}

func (r *Reorderer) releaseInto(out []Envelope) []Envelope {
	m := r.minFrontier()
	for len(r.pending) > 0 && r.pending[0].Counter <= m {
		out = append(out, r.pending.pop())
		r.released++
	}
	return out
}

// Frontier is one (router, source) path's punctuation watermark, the
// per-router sequence cursor a checkpoint manifest carries so a
// restored joiner resumes releasing from exactly where it stopped.
type Frontier struct {
	Router  int32
	Source  Source
	Counter uint64
}

// Export snapshots the reorderer: every registered path's frontier
// (sorted by router then source, for a deterministic encoding) and the
// buffered envelopes still awaiting release, in heap order.
func (r *Reorderer) Export() ([]Frontier, []Envelope) {
	fronts := make([]Frontier, 0, len(r.frontier))
	for k, c := range r.frontier {
		fronts = append(fronts, Frontier{Router: k.router, Source: k.source, Counter: c})
	}
	sort.Slice(fronts, func(i, j int) bool {
		if fronts[i].Router != fronts[j].Router {
			return fronts[i].Router < fronts[j].Router
		}
		return fronts[i].Source < fronts[j].Source
	})
	pending := make([]Envelope, len(r.pending))
	copy(pending, r.pending)
	return fronts, pending
}

// Restore replaces the reorderer's state with an exported snapshot.
// Envelopes redelivered after a restore coexist with their restored
// pending twins; the consumer's idempotency filter suppresses the
// second release.
func (r *Reorderer) Restore(fronts []Frontier, pending []Envelope) {
	r.frontier = make(map[frontKey]uint64, len(fronts))
	for _, f := range fronts {
		r.frontier[frontKey{f.Router, f.Source}] = f.Counter
	}
	r.minDirty, r.lastAddOK = true, false
	r.pending = make(envHeap, len(pending))
	copy(r.pending, pending)
	r.pending.init()
}

// Flush releases everything regardless of frontiers (engine shutdown).
func (r *Reorderer) Flush() []Envelope {
	out := make([]Envelope, 0, len(r.pending))
	for len(r.pending) > 0 {
		out = append(out, r.pending.pop())
		r.released++
	}
	return out
}

// Pending returns the number of buffered envelopes.
func (r *Reorderer) Pending() int { return len(r.pending) }

// Released returns the total number of envelopes released.
func (r *Reorderer) Released() uint64 { return r.released }

// MaxDepth returns the high-water mark of the buffer, a measure of the
// protocol's memory cost.
func (r *Reorderer) MaxDepth() int { return r.maxDepth }

// envHeap orders envelopes by (counter, routerID): the global sequence.
// The sift operations are hand-rolled rather than going through
// container/heap so push and pop stay monomorphic — no interface boxing
// of Envelope values on the per-tuple hot path.
type envHeap []Envelope

func (h envHeap) less(i, j int) bool {
	if h[i].Counter != h[j].Counter {
		return h[i].Counter < h[j].Counter
	}
	return h[i].RouterID < h[j].RouterID
}

func (h *envHeap) push(e Envelope) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *envHeap) pop() Envelope {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = Envelope{} // drop the Tuple pointer so the GC can reclaim it
	s = s[:n]
	*h = s
	s.siftDown(0)
	return top
}

func (h envHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h.less(l, m) {
			m = l
		}
		if r < len(h) && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h envHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}
