package protocol

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"bistream/internal/tuple"
)

func tupEnv(router int32, counter uint64, stream Stream) Envelope {
	return Envelope{
		Kind:     KindTuple,
		RouterID: router,
		Counter:  counter,
		Stream:   stream,
		Tuple:    tuple.New(tuple.R, counter, int64(counter), tuple.Int(int64(counter))),
	}
}

func punct(router int32, counter uint64) Envelope {
	return Envelope{Kind: KindPunctuation, RouterID: router, Counter: counter}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	in := tupEnv(3, 42, StreamJoin)
	out, err := UnmarshalEnvelope(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindTuple || out.RouterID != 3 || out.Counter != 42 || out.Stream != StreamJoin {
		t.Errorf("round trip = %+v", out)
	}
	if out.Tuple.Seq != 42 {
		t.Errorf("tuple = %v", out.Tuple)
	}
	p := punct(7, 100)
	out, err = UnmarshalEnvelope(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindPunctuation || out.RouterID != 7 || out.Counter != 100 {
		t.Errorf("punctuation round trip = %+v", out)
	}
}

func TestEnvelopeCorrupt(t *testing.T) {
	good := tupEnv(1, 1, StreamStore).Marshal()
	cases := [][]byte{
		nil,
		good[:5],
		good[:13],
		{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		func() []byte { b := append([]byte{}, good...); b[13] = 0; return b }(), // bad stream
		append(punct(1, 1).Marshal(), 0xff),
	}
	for i, c := range cases {
		if _, err := UnmarshalEnvelope(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEnvelopeCorruptQuick(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = UnmarshalEnvelope(data)
		return true // must not panic
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStamperLogical(t *testing.T) {
	s := NewStamperFunc(5, func() uint64 { return 0 })
	if s.RouterID() != 5 {
		t.Error("RouterID wrong")
	}
	if s.Current() != 0 {
		t.Error("initial counter should be 0")
	}
	for i := uint64(1); i <= 10; i++ {
		if got := s.Next(); got != i {
			t.Fatalf("Next = %d, want %d", got, i)
		}
	}
	if s.Current() != 10 {
		t.Errorf("Current = %d", s.Current())
	}
	if s.Punctuation() != 10 {
		t.Errorf("Punctuation = %d", s.Punctuation())
	}
}

func TestStamperHybridClock(t *testing.T) {
	var now uint64
	s := NewStamperFunc(1, func() uint64 { return now })
	now = 100
	if got := s.Next(); got != 100 {
		t.Fatalf("Next = %d, want clock value 100", got)
	}
	// Burst faster than the clock: stamps stay strictly increasing.
	for i := uint64(101); i <= 105; i++ {
		if got := s.Next(); got != i {
			t.Fatalf("burst Next = %d, want %d", got, i)
		}
	}
	// Idle router: punctuation advances with the clock, not the counter —
	// this is what keeps the joiners' minimum frontier moving.
	now = 500
	if got := s.Punctuation(); got != 500 {
		t.Fatalf("Punctuation = %d, want 500", got)
	}
	// And the next stamp must be strictly greater than any punctuation
	// already emitted (the Definition 7 promise).
	if got := s.Next(); got != 501 {
		t.Fatalf("Next after punctuation = %d, want 501", got)
	}
}

func TestStamperWallClockDefault(t *testing.T) {
	s := NewStamper(1)
	a, b := s.Next(), s.Next()
	if b <= a || a == 0 {
		t.Errorf("wall stamps not increasing: %d, %d", a, b)
	}
}

func TestReordererHoldsUntilPunctuation(t *testing.T) {
	r := NewReorderer()
	r.AddRouter(1, SourceStore)
	if out := r.Add(tupEnv(1, 1, StreamStore), SourceStore); len(out) != 0 {
		t.Fatalf("released before punctuation: %v", out)
	}
	if r.Pending() != 1 {
		t.Errorf("Pending = %d", r.Pending())
	}
	out := r.Punctuate(1, SourceStore, 1)
	if len(out) != 1 || out[0].Counter != 1 {
		t.Fatalf("release after punctuation = %v", out)
	}
	if r.Released() != 1 {
		t.Errorf("Released = %d", r.Released())
	}
}

func TestReordererSortsByCounter(t *testing.T) {
	r := NewReorderer()
	r.AddRouter(1, SourceStore)
	for _, c := range []uint64{5, 2, 9, 1, 7} {
		r.Add(tupEnv(1, c, StreamStore), SourceStore)
	}
	out := r.Punctuate(1, SourceStore, 10)
	got := make([]uint64, len(out))
	for i, e := range out {
		got[i] = e.Counter
	}
	if !reflect.DeepEqual(got, []uint64{1, 2, 5, 7, 9}) {
		t.Errorf("release order = %v", got)
	}
}

func TestReordererMinFrontierGatesAcrossRouters(t *testing.T) {
	r := NewReorderer()
	r.AddRouter(1, SourceStore)
	r.AddRouter(2, SourceStore)
	r.Add(tupEnv(1, 3, StreamStore), SourceStore)
	r.Add(tupEnv(2, 2, StreamJoin), SourceStore)
	// Router 1 punctuates to 5, but router 2's frontier is still 0.
	if out := r.Punctuate(1, SourceStore, 5); len(out) != 0 {
		t.Fatalf("released despite router 2 frontier: %v", out)
	}
	// Router 2 punctuates to 2: counter <= 2 releases (both routers'
	// frontiers are >= the released counters).
	out := r.Punctuate(2, SourceStore, 2)
	if len(out) != 1 || out[0].RouterID != 2 || out[0].Counter != 2 {
		t.Fatalf("release = %v", out)
	}
	out = r.Punctuate(2, SourceStore, 10)
	if len(out) != 1 || out[0].Counter != 3 {
		t.Fatalf("second release = %v", out)
	}
}

func TestReordererTieBreakByRouter(t *testing.T) {
	r := NewReorderer()
	r.AddRouter(1, SourceStore)
	r.AddRouter(2, SourceStore)
	r.Add(tupEnv(2, 4, StreamStore), SourceStore)
	r.Add(tupEnv(1, 4, StreamStore), SourceStore)
	r.Punctuate(1, SourceStore, 10)
	out := r.Punctuate(2, SourceStore, 10)
	if len(out) != 2 || out[0].RouterID != 1 || out[1].RouterID != 2 {
		t.Fatalf("tie break = %v", out)
	}
}

func TestReordererPunctuationViaAdd(t *testing.T) {
	r := NewReorderer()
	r.AddRouter(1, SourceStore)
	r.Add(tupEnv(1, 1, StreamStore), SourceStore)
	out := r.Add(punct(1, 1), SourceStore)
	if len(out) != 1 {
		t.Fatalf("punctuation via Add did not release: %v", out)
	}
}

func TestReordererUnknownRouterAutoRegisters(t *testing.T) {
	r := NewReorderer()
	r.AddRouter(1, SourceStore)
	r.Punctuate(1, SourceStore, 100)
	// Traffic from an unseen router 9 must gate releases until router 9
	// punctuates, not sneak past the frontier.
	if out := r.Add(tupEnv(9, 1, StreamStore), SourceStore); len(out) != 0 {
		t.Fatalf("unregistered router released immediately: %v", out)
	}
	out := r.Punctuate(9, SourceStore, 1)
	if len(out) != 1 {
		t.Fatalf("release = %v", out)
	}
}

func TestReordererRemoveRouterUnblocks(t *testing.T) {
	r := NewReorderer()
	r.AddRouter(1, SourceStore)
	r.AddRouter(2, SourceStore)
	r.Add(tupEnv(1, 1, StreamStore), SourceStore)
	r.Punctuate(1, SourceStore, 5)
	if r.Pending() != 1 {
		t.Fatal("should still be gated by router 2")
	}
	out := r.RemoveRouterAndRelease(2)
	if len(out) != 1 {
		t.Fatalf("release after RemoveRouter = %v", out)
	}
	if r.Routers() != 1 {
		t.Errorf("Routers = %d", r.Routers())
	}
}

func TestReordererFlush(t *testing.T) {
	r := NewReorderer()
	r.AddRouter(1, SourceStore)
	for c := uint64(1); c <= 5; c++ {
		r.Add(tupEnv(1, c, StreamStore), SourceStore)
	}
	out := r.Flush()
	if len(out) != 5 || r.Pending() != 0 {
		t.Fatalf("Flush = %d envelopes, pending %d", len(out), r.Pending())
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Counter > out[i].Counter {
			t.Error("Flush out of order")
		}
	}
}

func TestReordererMaxDepth(t *testing.T) {
	r := NewReorderer()
	r.AddRouter(1, SourceStore)
	for c := uint64(1); c <= 8; c++ {
		r.Add(tupEnv(1, c, StreamStore), SourceStore)
	}
	r.Punctuate(1, SourceStore, 8)
	if r.MaxDepth() != 8 {
		t.Errorf("MaxDepth = %d", r.MaxDepth())
	}
}

// TestReordererGlobalOrderProperty: regardless of arrival interleaving,
// the released sequence is sorted by (counter, routerID) — i.e. a
// subsequence of one global sequence (Definition 7).
func TestReordererGlobalOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const routers = 3
		r := NewReorderer()
		var events []Envelope
		for id := int32(1); id <= routers; id++ {
			r.AddRouter(id, SourceStore)
			n := uint64(rng.Intn(20) + 1)
			for c := uint64(1); c <= n; c++ {
				events = append(events, tupEnv(id, c, StreamStore))
			}
			events = append(events, punct(id, n))
			events = append(events, punct(id, n+100)) // final catch-all
		}
		// Shuffle respecting per-router FIFO: pick a random router's
		// next event repeatedly.
		perRouter := map[int32][]Envelope{}
		for _, e := range events {
			perRouter[e.RouterID] = append(perRouter[e.RouterID], e)
		}
		var released []Envelope
		ids := []int32{1, 2, 3}
		for len(perRouter) > 0 {
			id := ids[rng.Intn(len(ids))]
			evs, ok := perRouter[id]
			if !ok {
				continue
			}
			released = append(released, r.Add(evs[0], SourceStore)...)
			if len(evs) == 1 {
				delete(perRouter, id)
			} else {
				perRouter[id] = evs[1:]
			}
		}
		// All tuples must have been released, in global order.
		tuples := 0
		for i, e := range released {
			tuples++
			if i > 0 {
				prev := released[i-1]
				if prev.Counter > e.Counter ||
					(prev.Counter == e.Counter && prev.RouterID > e.RouterID) {
					return false
				}
			}
		}
		want := 0
		for _, e := range events {
			if e.Kind == KindTuple {
				want++
			}
		}
		return tuples == want && r.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkReordererAddRelease(b *testing.B) {
	r := NewReorderer()
	r.AddRouter(1, SourceStore)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := uint64(i + 1)
		r.Add(tupEnv(1, c, StreamStore), SourceStore)
		if i%16 == 15 {
			r.Punctuate(1, SourceStore, c)
		}
	}
}
