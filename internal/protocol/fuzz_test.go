package protocol

import (
	"testing"

	"bistream/internal/tuple"
)

// FuzzUnmarshalEnvelope checks the envelope codec never panics and that
// accepted inputs round-trip semantically (varint fields in the tuple
// payload have non-canonical encodings, so byte identity is too
// strict).
func FuzzUnmarshalEnvelope(f *testing.F) {
	f.Add(Envelope{Kind: KindPunctuation, RouterID: 3, Counter: 99}.Marshal())
	f.Add(Envelope{Kind: KindRetire, RouterID: 1, Counter: 1}.Marshal())
	f.Add(Envelope{
		Kind: KindTuple, RouterID: 2, Counter: 7, Stream: StreamJoin,
		Tuple: tuple.New(tuple.S, 5, -3, tuple.String("x"), tuple.Int(9)),
	}.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := UnmarshalEnvelope(data)
		if err != nil {
			return
		}
		env2, err := UnmarshalEnvelope(env.Marshal())
		if err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		if env2.Kind != env.Kind || env2.RouterID != env.RouterID ||
			env2.Counter != env.Counter || env2.Stream != env.Stream {
			t.Fatalf("header mismatch: %+v vs %+v", env, env2)
		}
		if (env.Tuple == nil) != (env2.Tuple == nil) {
			t.Fatal("tuple presence mismatch")
		}
		if env.Tuple != nil && env.Tuple.Seq != env2.Tuple.Seq {
			t.Fatal("tuple mismatch")
		}
	})
}
