package wire

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bistream/internal/broker"
)

// startPair spins up a broker + server and returns a connected client.
func startPair(t *testing.T) (*broker.Broker, *Client) {
	t.Helper()
	b := broker.New(nil)
	srv := NewServer(b, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
		b.Close()
	})
	return b, c
}

func TestRemoteDeclarePublishConsume(t *testing.T) {
	_, c := startPair(t)
	if err := c.DeclareExchange("ex", broker.Topic); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareQueue("q", broker.QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind("q", "ex", "a.*"); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("ex", "a.b", map[string]string{"k": "v"}, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	cons, err := c.Consume("q", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-cons.Deliveries():
		if string(d.Body) != "hello" || d.Headers["k"] != "v" || d.RoutingKey != "a.b" || d.Queue != "q" {
			t.Errorf("delivery = %+v", d)
		}
		if err := cons.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
	st, err := c.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Acked != 1 || st.Ready != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRemoteFIFO(t *testing.T) {
	_, c := startPair(t)
	c.DeclareExchange("ex", broker.Fanout)
	c.DeclareQueue("q", broker.QueueOptions{})
	c.Bind("q", "ex", "#")
	cons, err := c.Consume("q", 8, true)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	go func() {
		for i := 0; i < n; i++ {
			c.Publish("ex", "", nil, []byte(fmt.Sprint(i)))
		}
	}()
	deadline := time.After(10 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case d := <-cons.Deliveries():
			if string(d.Body) != fmt.Sprint(i) {
				t.Fatalf("delivery %d = %q", i, d.Body)
			}
		case <-deadline:
			t.Fatalf("timed out at %d", i)
		}
	}
}

func TestRemoteErrorsMapToSentinels(t *testing.T) {
	_, c := startPair(t)
	if err := c.Publish("missing", "", nil, nil); !errors.Is(err, broker.ErrNoExchange) {
		t.Errorf("Publish = %v", err)
	}
	if _, err := c.Consume("missing", 1, true); !errors.Is(err, broker.ErrNoQueue) {
		t.Errorf("Consume = %v", err)
	}
	c.DeclareExchange("ex", broker.Topic)
	if err := c.DeclareExchange("ex", broker.Direct); !errors.Is(err, broker.ErrExchangeExists) {
		t.Errorf("DeclareExchange = %v", err)
	}
	if _, err := c.QueueStats("missing"); !errors.Is(err, broker.ErrNoQueue) {
		t.Errorf("QueueStats = %v", err)
	}
	if err := c.DeleteQueue("missing"); !errors.Is(err, broker.ErrNoQueue) {
		t.Errorf("DeleteQueue = %v", err)
	}
}

func TestRemoteNackRequeue(t *testing.T) {
	_, c := startPair(t)
	c.DeclareExchange("ex", broker.Fanout)
	c.DeclareQueue("q", broker.QueueOptions{})
	c.Bind("q", "ex", "#")
	cons, _ := c.Consume("q", 1, false)
	c.Publish("ex", "", nil, []byte("m"))
	d := <-cons.Deliveries()
	if err := cons.Nack(d.Tag, true); err != nil {
		t.Fatal(err)
	}
	d2 := <-cons.Deliveries()
	if string(d2.Body) != "m" {
		t.Fatalf("requeued = %q", d2.Body)
	}
	cons.Ack(d2.Tag)
}

func TestRemoteCancelClosesChannel(t *testing.T) {
	_, c := startPair(t)
	c.DeclareExchange("ex", broker.Fanout)
	c.DeclareQueue("q", broker.QueueOptions{})
	c.Bind("q", "ex", "#")
	cons, _ := c.Consume("q", 1, true)
	if err := cons.Cancel(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-cons.Deliveries():
		if ok {
			t.Fatal("unexpected delivery")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("channel never closed")
	}
	if err := cons.Ack(1); err == nil {
		t.Error("Ack after cancel should fail")
	}
}

func TestRemoteCompetingConsumersAcrossConnections(t *testing.T) {
	b := broker.New(nil)
	srv := NewServer(b, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); b.Close() }()
	c1, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c1.DeclareExchange("ex", broker.Fanout)
	c1.DeclareQueue("group", broker.QueueOptions{})
	c1.Bind("group", "ex", "#")
	cons1, _ := c1.Consume("group", 4, true)
	cons2, _ := c2.Consume("group", 4, true)

	const n = 200
	var mu sync.Mutex
	seen := map[string]int{}
	var wg sync.WaitGroup
	wg.Add(2)
	collect := func(cons broker.Consumer) {
		defer wg.Done()
		for d := range cons.Deliveries() {
			mu.Lock()
			seen[string(d.Body)]++
			mu.Unlock()
		}
	}
	go collect(cons1)
	go collect(cons2)
	for i := 0; i < n; i++ {
		if err := c1.Publish("ex", "", nil, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		total := len(seen)
		mu.Unlock()
		if total == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d distinct messages seen", total, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cons1.Cancel()
	cons2.Cancel()
	wg.Wait()
	for k, v := range seen {
		if v != 1 {
			t.Errorf("message %s delivered %d times", k, v)
		}
	}
}

func TestClientCloseFailsPendingAndClosesConsumers(t *testing.T) {
	_, c := startPair(t)
	c.DeclareExchange("ex", broker.Fanout)
	c.DeclareQueue("q", broker.QueueOptions{})
	c.Bind("q", "ex", "#")
	cons, _ := c.Consume("q", 1, true)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-cons.Deliveries():
		if ok {
			t.Fatal("unexpected delivery after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("consumer channel never closed after client close")
	}
	if err := c.Publish("ex", "", nil, nil); err == nil {
		t.Error("Publish after close should fail")
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	b := broker.New(nil)
	srv := NewServer(b, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.DeclareExchange("ex", broker.Fanout)
	srv.Close()
	// The next call observes the dropped connection.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.DeclareExchange("ex2", broker.Fanout); err != nil {
			b.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("client never noticed server close")
}

func TestServerConsumerCleanupOnDisconnect(t *testing.T) {
	b := broker.New(nil)
	srv := NewServer(b, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); b.Close() }()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	c.DeclareExchange("ex", broker.Fanout)
	c.DeclareQueue("q", broker.QueueOptions{})
	c.Bind("q", "ex", "#")
	if _, err := c.Consume("q", 1, false); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// After the client disconnects, the server cancels its consumers;
	// the queue should report zero consumers.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := b.QueueStats("q")
		if err != nil {
			t.Fatal(err)
		}
		if st.Consumers == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never cleaned up the disconnected consumer")
}

func TestRemoteBackpressurePropagates(t *testing.T) {
	// A publish that hits a full queue blocks its own connection (the
	// wire equivalent of AMQP channel flow control), so the consumer
	// must use a separate connection.
	b, c := startPair(t)
	srvAddr := c.conn.RemoteAddr().String()
	_ = b
	c.DeclareExchange("ex", broker.Fanout)
	c.DeclareQueue("q", broker.QueueOptions{MaxLen: 1})
	c.Bind("q", "ex", "#")
	if err := c.Publish("ex", "", nil, []byte("1")); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- c.Publish("ex", "", nil, []byte("2")) }()
	select {
	case err := <-blocked:
		t.Fatalf("second publish did not block (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	c2, err := Dial(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	cons, _ := c2.Consume("q", 1, true)
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 2 {
		select {
		case <-cons.Deliveries():
			got++
		case <-deadline:
			t.Fatal("deliveries stalled")
		}
	}
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRemotePublish(b *testing.B) {
	br := broker.New(nil)
	srv := NewServer(br, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { srv.Close(); br.Close() }()
	c, err := Dial(addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.DeclareExchange("ex", broker.Direct)
	c.DeclareQueue("q", broker.QueueOptions{})
	c.Bind("q", "ex", "k")
	cons, _ := c.Consume("q", 512, true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		n := 0
		for range cons.Deliveries() {
			if n++; n == b.N {
				return
			}
		}
	}()
	body := []byte("0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Publish("ex", "k", nil, body); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

func TestRemoteDurableQueueOptionTravels(t *testing.T) {
	b, c := startPair(t)
	if err := c.DeclareQueue("dur", broker.QueueOptions{Durable: true}); err != nil {
		t.Fatal(err)
	}
	// Redeclaring server-side with the same options must be idempotent —
	// proving Durable crossed the wire intact.
	if err := b.DeclareQueue("dur", broker.QueueOptions{Durable: true}); err != nil {
		t.Fatalf("durable flag lost in transit: %v", err)
	}
	if err := b.DeclareQueue("dur", broker.QueueOptions{}); err == nil {
		t.Fatal("options mismatch not detected")
	}
	// Invalid combination is rejected across the wire too.
	if err := c.DeclareQueue("bad", broker.QueueOptions{Durable: true, AutoDelete: true}); err == nil {
		t.Error("durable auto-delete accepted over the wire")
	}
}
