// Package wire exposes the in-process broker over TCP with a compact
// length-prefixed binary protocol, in the role AMQP's wire level plays
// for RabbitMQ: cmd/brokerd serves a broker.Broker, and Client
// implements broker.Client against a remote brokerd, so the router and
// joiner services run unchanged as separate OS processes or containers.
//
// Framing: every frame is a 4-byte big-endian payload length followed by
// the payload; the first payload byte is the opcode. Strings and byte
// slices are uvarint-length-prefixed. Requests carry a client-assigned
// correlation id echoed by the matching reply. Deliveries are
// server-initiated frames carrying the server-side consumer id.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"bistream/internal/broker"
)

// Opcodes. Client→server requests are even-numbered conceptually; the
// numbering only needs to be stable, not meaningful.
const (
	opDeclareExchange byte = iota + 1
	opDeclareQueue
	opDeleteQueue
	opBind
	opPublish
	opConsume
	opAck
	opNack
	opCancel
	opQueueStats

	opReply      // generic ok/error reply: reqID, errString
	opConsumeOK  // reqID, consumerID
	opStatsReply // reqID, errString, stats
	opDeliver    // consumerID, delivery
	opConsumerEOF

	// opPing is a liveness probe: the server echoes an empty opReply.
	// The client's heartbeat uses it to detect half-open TCP connections
	// that deliver neither frames nor errors. Appended last so earlier
	// opcode values stay stable.
	opPing
)

// maxFrame bounds a single frame; tuples are small, so anything larger
// indicates a corrupt stream.
const maxFrame = 16 << 20

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadFrame reads one length-prefixed frame. Exported for sibling
// protocols built on the same framing (the broker replication stream).
func ReadFrame(r io.Reader) ([]byte, error) { return readFrame(r) }

// WriteFrame writes one frame; the caller must serialize writes.
// Exported for sibling protocols built on the same framing.
func WriteFrame(w io.Writer, payload []byte) error { return writeFrame(w, payload) }

// writeFrame writes one frame. The caller must serialize writes.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// --- encoding helpers ---

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendHeaders(dst []byte, h map[string]string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(h)))
	for k, v := range h {
		dst = appendString(dst, k)
		dst = appendString(dst, v)
	}
	return dst
}

// reader decodes fields sequentially and remembers the first error, so
// call sites stay linear.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s", what)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail("uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.fail("byte")
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *reader) bool() bool { return r.byte() != 0 }

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.fail("string")
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail("bytes")
		return nil
	}
	b := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return b
}

func (r *reader) headers() map[string]string {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail("headers")
		return nil
	}
	h := make(map[string]string, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.string()
		v := r.string()
		h[k] = v
	}
	return h
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// encodeStats flattens QueueStats; floats travel as IEEE bits.
func encodeStats(dst []byte, st broker.QueueStats) []byte {
	dst = appendString(dst, st.Name)
	dst = binary.AppendUvarint(dst, uint64(st.Ready))
	dst = binary.AppendUvarint(dst, uint64(st.Unacked))
	dst = binary.AppendUvarint(dst, uint64(st.Consumers))
	dst = binary.AppendUvarint(dst, uint64(st.Published))
	dst = binary.AppendUvarint(dst, uint64(st.Delivered))
	dst = binary.AppendUvarint(dst, uint64(st.Acked))
	dst = binary.AppendUvarint(dst, uint64(st.Redelivered))
	dst = binary.AppendUvarint(dst, uint64(st.DeadLettered))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(st.InRate))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(st.OutRate))
	return dst
}

func (r *reader) stats() broker.QueueStats {
	var st broker.QueueStats
	st.Name = r.string()
	st.Ready = int(r.uvarint())
	st.Unacked = int(r.uvarint())
	st.Consumers = int(r.uvarint())
	st.Published = int64(r.uvarint())
	st.Delivered = int64(r.uvarint())
	st.Acked = int64(r.uvarint())
	st.Redelivered = int64(r.uvarint())
	st.DeadLettered = int64(r.uvarint())
	st.InRate = math.Float64frombits(r.uint64())
	st.OutRate = math.Float64frombits(r.uint64())
	return st
}
