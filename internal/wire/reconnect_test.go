package wire

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/metrics"
)

// fastReconnect keeps test backoffs tight and deterministic.
func fastReconnect(addr string) Config {
	return Config{
		Addr:           addr,
		Reconnect:      true,
		InitialBackoff: 2 * time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		Seed:           1,
	}
}

// silentListener accepts connections and reads frames but never
// replies — the shape of a half-open or wedged peer.
type silentListener struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func newSilentListener(t *testing.T) *silentListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &silentListener{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, conn)
			s.mu.Unlock()
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { s.close() })
	return s
}

func (s *silentListener) close() {
	s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		c.Close()
	}
}

func (s *silentListener) dropConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = nil
}

// TestInFlightRequestFailsTypedNotHang: a request outstanding when the
// connection dies must return promptly with an error wrapping
// ErrConnLost — never hang waiting for a reply that cannot come.
func TestInFlightRequestFailsTypedNotHang(t *testing.T) {
	s := newSilentListener(t)
	client, err := Connect(Config{Addr: s.ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- client.Publish("nope", "k", nil, []byte("x")) }()
	time.Sleep(20 * time.Millisecond) // let the request get in flight
	s.dropConns()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrConnLost) {
			t.Fatalf("in-flight publish failed with %v; want ErrConnLost", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight publish hung after connection loss")
	}
}

// TestConnectWaitsForBroker: with Reconnect, Connect keeps dialing
// until the broker comes up — the supervised-daemon start path.
func TestConnectWaitsForBroker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port; nothing is listening now

	type result struct {
		c   *Client
		err error
	}
	done := make(chan result, 1)
	go func() {
		c, err := Connect(fastReconnect(addr))
		done <- result{c, err}
	}()

	time.Sleep(30 * time.Millisecond) // a few failed dials
	b := broker.New(nil)
	defer b.Close()
	srv := NewServer(b, t.Logf)
	if _, err := srv.Listen(addr); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		defer r.c.Close()
		if err := r.c.Ping(); err != nil {
			t.Fatalf("ping after late connect: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Connect did not return after the broker came up")
	}
}

// TestReconnectReplaysTopologyAndConsumers is the brokerd-restart
// scenario: the daemon dies and comes back empty on the same address.
// The client must re-dial on its own, re-declare every exchange, queue
// and binding it had issued, re-attach its consumers, and resume
// delivering — all without manual intervention. An ack for a delivery
// from before the restart must fail with ErrStaleDelivery instead of
// settling some other message.
func TestReconnectReplaysTopologyAndConsumers(t *testing.T) {
	b := broker.New(nil)
	srv := NewServer(b, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	cfg := fastReconnect(addr.String())
	cfg.Metrics = reg
	cfg.Logf = t.Logf
	client, err := Connect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.DeclareExchange("ex", broker.Direct); err != nil {
		t.Fatal(err)
	}
	if err := client.DeclareQueue("q", broker.QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := client.Bind("q", "ex", "k"); err != nil {
		t.Fatal(err)
	}
	cons, err := client.Consume("q", 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Publish("ex", "k", nil, []byte("before")); err != nil {
		t.Fatal(err)
	}
	var before broker.Delivery
	select {
	case before = <-cons.Deliveries():
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery before restart")
	}

	// Crash the daemon: server and broker state are gone. The fresh
	// broker starts empty, so resuming requires a full topology replay.
	srv.Close()
	b.Close()
	b2 := broker.New(nil)
	defer b2.Close()
	srv2 := NewServer(b2, t.Logf)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := srv2.Listen(addr.String()); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer srv2.Close()

	// The pre-restart delivery was requeued server-side (and lost with
	// the old broker); settling it now must be refused as stale.
	for {
		err := cons.Ack(before.Tag)
		if errors.Is(err, ErrStaleDelivery) {
			break
		}
		if err == nil {
			t.Fatal("ack of a pre-restart delivery succeeded; want ErrStaleDelivery")
		}
		// ErrConnLost window while reconnecting: the tag map may not have
		// rolled over yet. Retry briefly.
		if time.Now().After(deadline) {
			t.Fatalf("pre-restart ack kept failing with %v; want ErrStaleDelivery", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Publishing works again once the replay finishes; retry through the
	// reconnect window.
	for {
		err := client.Publish("ex", "k", nil, []byte("after"))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("publish after restart kept failing: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case d := <-cons.Deliveries():
		if string(d.Body) != "after" {
			t.Fatalf("delivery after restart = %q; want %q", d.Body, "after")
		}
		if err := cons.Ack(d.Tag); err != nil {
			t.Fatalf("ack after restart: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer did not resume after broker restart")
	}

	if g := client.Generation(); g < 2 {
		t.Errorf("generation = %d; want >= 2 after a reconnect", g)
	}
	if v, _ := reg.Value("wire.connects"); v < 2 {
		t.Errorf("wire.connects = %v; want >= 2", v)
	}
	if v, _ := reg.Value("wire.disconnects"); v < 1 {
		t.Errorf("wire.disconnects = %v; want >= 1", v)
	}
}

// TestHeartbeatDetectsHalfOpenConnection: against a peer that accepts
// and stays silent, the heartbeat must declare the connection dead and
// force a reconnect instead of waiting on TCP forever.
func TestHeartbeatDetectsHalfOpenConnection(t *testing.T) {
	s := newSilentListener(t)
	reg := metrics.NewRegistry()
	cfg := fastReconnect(s.ln.Addr().String())
	cfg.Heartbeat = 10 * time.Millisecond
	cfg.Metrics = reg
	client, err := Connect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := reg.Value("wire.heartbeat_timeouts"); v >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never declared the silent connection dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v, _ := reg.Value("wire.disconnects"); v < 1 {
		t.Errorf("wire.disconnects = %v; want >= 1 after heartbeat kill", v)
	}
}
