package wire

import (
	"errors"
	"net"
	"testing"
	"time"

	"bistream/internal/broker"
)

// startServer serves a fresh in-process broker on a loopback port and
// returns the server, its broker, and the bound address.
func startServer(t *testing.T) (*Server, *broker.Broker, string) {
	t.Helper()
	b := broker.New(nil)
	srv := NewServer(b, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); b.Close() })
	return srv, b, addr.String()
}

// deadAddr returns a loopback address that refuses connections: bind a
// port, then close the listener so nothing is accepting there.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestMultiAddrLandsOnSecondAddress: the first address of the broker
// set refuses connections; the client must come up on the second one
// without any reconnect machinery.
func TestMultiAddrLandsOnSecondAddress(t *testing.T) {
	_, b, live := startServer(t)
	cfg := Config{
		Addrs:          []string{deadAddr(t), live},
		DialTimeout:    time.Second,
		InitialBackoff: 2 * time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		Seed:           1,
	}
	c, err := Connect(cfg)
	if err != nil {
		t.Fatalf("Connect over multi-address set: %v", err)
	}
	defer c.Close()
	if err := c.DeclareExchange("ex", broker.Fanout); err != nil {
		t.Fatal(err)
	}
	// The operation reached the live broker behind the second address.
	if err := b.DeclareExchange("ex", broker.Fanout); err != nil {
		t.Errorf("declare did not land on the live broker: %v", err)
	}
}

// TestMultiAddrSkipsFollower: the first address accepts connections
// but serves no broker (a replication follower); the probe must move
// the client on to the leader.
func TestMultiAddrSkipsFollower(t *testing.T) {
	follower := NewServer(nil, t.Logf)
	fAddr, err := follower.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	_, b, leader := startServer(t)

	c, err := Connect(Config{
		Addrs:       []string{fAddr.String(), leader},
		DialTimeout: time.Second,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("Connect skipping follower: %v", err)
	}
	defer c.Close()
	if err := c.DeclareQueue("q", broker.QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.QueueStats("q"); err != nil {
		t.Errorf("declare did not land on the leader: %v", err)
	}
}

// TestSingleAddrRequestGetsNotLeader: on a single-address config there
// is no pre-install probe, so the first request is what surfaces the
// follower state — as a typed broker.ErrNotLeader.
func TestSingleAddrRequestGetsNotLeader(t *testing.T) {
	follower := NewServer(nil, t.Logf)
	addr, err := follower.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.DeclareExchange("ex", broker.Fanout); !errors.Is(err, broker.ErrNotLeader) {
		t.Fatalf("err = %v, want broker.ErrNotLeader", err)
	}
}

// TestMultiAddrFailover moves leadership between two servers under a
// reconnecting client: after the first leader detaches its broker, the
// client must re-land on the new leader and replay its topology there.
func TestMultiAddrFailover(t *testing.T) {
	srvA, bA, addrA := startServer(t)
	srvB, bB, addrB := startServer(t)
	srvB.SetBroker(nil) // B starts as follower

	cfg := Config{
		Addrs:          []string{addrA, addrB},
		Reconnect:      true,
		DialTimeout:    time.Second,
		InitialBackoff: 2 * time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		Seed:           1,
	}
	c, err := Connect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.DeclareExchange("ex", broker.Fanout); err != nil {
		t.Fatal(err)
	}
	if err := bA.DeclareExchange("ex", broker.Fanout); err != nil {
		t.Fatalf("initial leader never saw the declare: %v", err)
	}

	// Failover: A steps down (dropping connections), B steps up.
	srvA.SetBroker(nil)
	srvB.SetBroker(bB)

	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.DeclareExchange("ex", broker.Fanout)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never reached the new leader: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := bB.DeclareExchange("ex", broker.Fanout); err != nil {
		t.Errorf("topology not replayed on the new leader: %v", err)
	}
	if got := c.Generation(); got < 2 {
		t.Errorf("client generation = %d, want >= 2 (reconnected)", got)
	}
}
