package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"bistream/internal/broker"
)

// Client is a broker.Client talking to a remote brokerd over one TCP
// connection. It is safe for concurrent use: requests are correlated by
// id and deliveries are demultiplexed to per-consumer channels. The
// client assigns consumer ids itself and registers the consumer before
// sending the Consume request, so no delivery can race past
// registration.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex // serializes frames onto the socket

	mu        sync.Mutex
	nextReq   uint64
	nextCons  uint64
	pending   map[uint64]chan response
	consumers map[uint64]*remoteConsumer
	closed    bool
}

type response struct {
	err   error
	stats broker.QueueStats
	kind  byte
}

// Dial connects to a brokerd at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:      conn,
		pending:   make(map[uint64]chan response),
		consumers: make(map[uint64]*remoteConsumer),
	}
	go c.readLoop()
	return c, nil
}

// Close drops the connection; outstanding requests fail and consumer
// channels close.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) readLoop() {
	var err error
	for {
		var frame []byte
		frame, err = readFrame(c.conn)
		if err != nil {
			break
		}
		if err = c.dispatch(frame); err != nil {
			break
		}
	}
	c.mu.Lock()
	c.closed = true
	pend := c.pending
	c.pending = map[uint64]chan response{}
	cons := c.consumers
	c.consumers = map[uint64]*remoteConsumer{}
	c.mu.Unlock()
	for _, ch := range pend {
		ch <- response{err: fmt.Errorf("wire: connection lost: %w", err)}
	}
	for _, rc := range cons {
		rc.finish()
	}
	c.conn.Close()
}

func (c *Client) dispatch(frame []byte) error {
	if len(frame) == 0 {
		return fmt.Errorf("wire: empty frame")
	}
	op := frame[0]
	r := &reader{buf: frame[1:]}
	switch op {
	case opReply:
		reqID := r.uint64()
		msg := r.string()
		if r.err != nil {
			return r.err
		}
		c.complete(reqID, response{kind: opReply, err: remoteError(msg)})
	case opConsumeOK:
		reqID := r.uint64()
		if r.err != nil {
			return r.err
		}
		c.complete(reqID, response{kind: opConsumeOK})
	case opStatsReply:
		reqID := r.uint64()
		msg := r.string()
		st := r.stats()
		if r.err != nil {
			return r.err
		}
		c.complete(reqID, response{kind: opStatsReply, err: remoteError(msg), stats: st})
	case opDeliver:
		id := r.uint64()
		tag := r.uint64()
		redelivered := r.bool()
		queue := r.string()
		exchange := r.string()
		key := r.string()
		headers := r.headers()
		body := r.bytes()
		if r.err != nil {
			return r.err
		}
		c.mu.Lock()
		rc := c.consumers[id]
		c.mu.Unlock()
		if rc != nil {
			rc.push(broker.Delivery{
				Message: broker.Message{
					Exchange:   exchange,
					RoutingKey: key,
					Headers:    headers,
					Body:       body,
				},
				Queue:       queue,
				Tag:         tag,
				Redelivered: redelivered,
			})
		}
	case opConsumerEOF:
		id := r.uint64()
		if r.err != nil {
			return r.err
		}
		c.mu.Lock()
		rc := c.consumers[id]
		delete(c.consumers, id)
		c.mu.Unlock()
		if rc != nil {
			rc.finish()
		}
	default:
		return fmt.Errorf("wire: unexpected opcode %d from server", op)
	}
	return nil
}

func (c *Client) complete(reqID uint64, resp response) {
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- resp
	}
}

// remoteError maps an error string from the server back to the broker's
// sentinel errors where possible, so errors.Is keeps working across the
// wire.
func remoteError(msg string) error {
	if msg == "" {
		return nil
	}
	for _, sentinel := range []error{
		broker.ErrClosed, broker.ErrNoExchange, broker.ErrNoQueue,
		broker.ErrExchangeExists, broker.ErrQueueExists,
		broker.ErrConsumerClosed, broker.ErrUnknownDelivery,
	} {
		if strings.HasPrefix(msg, sentinel.Error()) {
			if msg == sentinel.Error() {
				return sentinel
			}
			return fmt.Errorf("%w%s", sentinel, strings.TrimPrefix(msg, sentinel.Error()))
		}
	}
	return errors.New(msg)
}

// call sends a request frame and waits for its correlated response.
func (c *Client) call(payload []byte, reqID uint64) (response, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return response{}, broker.ErrClosed
	}
	c.pending[reqID] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, payload)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return response{}, err
	}
	return <-ch, nil
}

func (c *Client) newRequest(op byte) ([]byte, uint64) {
	c.mu.Lock()
	c.nextReq++
	id := c.nextReq
	c.mu.Unlock()
	payload := []byte{op}
	payload = binary.LittleEndian.AppendUint64(payload, id)
	return payload, id
}

func (c *Client) simpleCall(payload []byte, id uint64) error {
	resp, err := c.call(payload, id)
	if err != nil {
		return err
	}
	return resp.err
}

// DeclareExchange implements broker.Client.
func (c *Client) DeclareExchange(name string, kind broker.ExchangeKind) error {
	payload, id := c.newRequest(opDeclareExchange)
	payload = appendString(payload, name)
	payload = append(payload, byte(kind))
	return c.simpleCall(payload, id)
}

// DeclareQueue implements broker.Client.
func (c *Client) DeclareQueue(name string, opts broker.QueueOptions) error {
	payload, id := c.newRequest(opDeclareQueue)
	payload = appendString(payload, name)
	payload = append(payload, boolByte(opts.AutoDelete))
	payload = binary.AppendUvarint(payload, uint64(opts.MaxLen))
	payload = append(payload, boolByte(opts.Durable))
	return c.simpleCall(payload, id)
}

// DeleteQueue implements broker.Client.
func (c *Client) DeleteQueue(name string) error {
	payload, id := c.newRequest(opDeleteQueue)
	payload = appendString(payload, name)
	return c.simpleCall(payload, id)
}

// Bind implements broker.Client.
func (c *Client) Bind(queue, exchange, routingKey string) error {
	payload, id := c.newRequest(opBind)
	payload = appendString(payload, queue)
	payload = appendString(payload, exchange)
	payload = appendString(payload, routingKey)
	return c.simpleCall(payload, id)
}

// Publish implements broker.Client. The call blocks until the server
// acknowledges routing, so broker backpressure propagates to the remote
// producer.
func (c *Client) Publish(exchange, routingKey string, headers map[string]string, body []byte) error {
	payload, id := c.newRequest(opPublish)
	payload = appendString(payload, exchange)
	payload = appendString(payload, routingKey)
	payload = appendHeaders(payload, headers)
	payload = appendBytes(payload, body)
	return c.simpleCall(payload, id)
}

// Consume implements broker.Client.
func (c *Client) Consume(queue string, prefetch int, autoAck bool) (broker.Consumer, error) {
	if prefetch < 1 {
		prefetch = 1
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, broker.ErrClosed
	}
	c.nextCons++
	consID := c.nextCons
	rc := newRemoteConsumer(c, consID)
	c.consumers[consID] = rc
	c.mu.Unlock()

	payload, id := c.newRequest(opConsume)
	payload = binary.LittleEndian.AppendUint64(payload, consID)
	payload = appendString(payload, queue)
	payload = binary.AppendUvarint(payload, uint64(prefetch))
	payload = append(payload, boolByte(autoAck))
	resp, err := c.call(payload, id)
	if err == nil && resp.err != nil {
		err = resp.err
	}
	if err != nil {
		c.mu.Lock()
		delete(c.consumers, consID)
		c.mu.Unlock()
		rc.finish()
		return nil, err
	}
	return rc, nil
}

// QueueStats implements broker.Client.
func (c *Client) QueueStats(queue string) (broker.QueueStats, error) {
	payload, id := c.newRequest(opQueueStats)
	payload = appendString(payload, queue)
	resp, err := c.call(payload, id)
	if err != nil {
		return broker.QueueStats{}, err
	}
	return resp.stats, resp.err
}

// remoteConsumer buffers deliveries without bound between the read loop
// and the application, so a slow application can never stall the
// client's read loop (which also carries request replies). The server
// side enforces prefetch, keeping the buffer small in practice.
type remoteConsumer struct {
	c    *Client
	id   uint64
	ch   chan broker.Delivery
	dead chan struct{} // closed on Cancel: the forwarder must not block
	once sync.Once

	mu     sync.Mutex
	buf    []broker.Delivery
	eof    bool
	notify chan struct{}
}

func newRemoteConsumer(c *Client, id uint64) *remoteConsumer {
	rc := &remoteConsumer{
		c:      c,
		id:     id,
		ch:     make(chan broker.Delivery),
		dead:   make(chan struct{}),
		notify: make(chan struct{}, 1),
	}
	go rc.forward()
	return rc
}

// push is called from the client's read loop; it never blocks.
func (rc *remoteConsumer) push(d broker.Delivery) {
	rc.mu.Lock()
	rc.buf = append(rc.buf, d)
	rc.mu.Unlock()
	rc.wake()
}

// finish marks end-of-stream; buffered deliveries still drain.
func (rc *remoteConsumer) finish() {
	rc.mu.Lock()
	rc.eof = true
	rc.mu.Unlock()
	rc.wake()
}

func (rc *remoteConsumer) wake() {
	select {
	case rc.notify <- struct{}{}:
	default:
	}
}

func (rc *remoteConsumer) forward() {
	for {
		rc.mu.Lock()
		if len(rc.buf) == 0 {
			eof := rc.eof
			rc.mu.Unlock()
			if eof {
				close(rc.ch)
				return
			}
			select {
			case <-rc.notify:
			case <-rc.dead:
				close(rc.ch)
				return
			}
			continue
		}
		d := rc.buf[0]
		rc.buf = rc.buf[1:]
		rc.mu.Unlock()
		select {
		case rc.ch <- d:
		case <-rc.dead:
			// Cancelled with an unread buffer and no reader: drop the
			// remainder rather than leak this goroutine. The server has
			// already settled or requeued as appropriate.
			close(rc.ch)
			return
		}
	}
}

// Deliveries implements broker.Consumer.
func (rc *remoteConsumer) Deliveries() <-chan broker.Delivery { return rc.ch }

// Ack implements broker.Consumer.
func (rc *remoteConsumer) Ack(tag uint64) error {
	payload, id := rc.c.newRequest(opAck)
	payload = binary.LittleEndian.AppendUint64(payload, rc.id)
	payload = binary.LittleEndian.AppendUint64(payload, tag)
	return rc.c.simpleCall(payload, id)
}

// Nack implements broker.Consumer.
func (rc *remoteConsumer) Nack(tag uint64, requeue bool) error {
	payload, id := rc.c.newRequest(opNack)
	payload = binary.LittleEndian.AppendUint64(payload, rc.id)
	payload = binary.LittleEndian.AppendUint64(payload, tag)
	payload = append(payload, boolByte(requeue))
	return rc.c.simpleCall(payload, id)
}

// Cancel implements broker.Consumer.
func (rc *remoteConsumer) Cancel() error {
	payload, id := rc.c.newRequest(opCancel)
	payload = binary.LittleEndian.AppendUint64(payload, rc.id)
	err := rc.c.simpleCall(payload, id)
	rc.c.mu.Lock()
	delete(rc.c.consumers, rc.id)
	rc.c.mu.Unlock()
	rc.once.Do(func() { close(rc.dead) })
	rc.finish()
	return err
}
