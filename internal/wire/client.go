package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bistream/internal/broker"
	"bistream/internal/metrics"
)

// Typed errors surfaced by a reconnecting client. In-flight requests
// never hang on a dead connection: they fail with an error wrapping
// ErrConnLost, and the caller decides whether to retry (the client will
// be dialing in the background).
var (
	// ErrConnLost marks a request that failed because the connection to
	// brokerd dropped (or was never up). With Reconnect enabled the
	// client is re-dialing; retry later.
	ErrConnLost = errors.New("wire: connection lost")
	// ErrClientClosed marks a request issued after Close.
	ErrClientClosed = errors.New("wire: client closed")
	// ErrStaleDelivery marks an Ack/Nack for a delivery received over a
	// previous connection: the server already requeued it at disconnect,
	// so settling it here would target the wrong message.
	ErrStaleDelivery = errors.New("wire: stale delivery from a previous connection")
)

// Config configures Connect.
type Config struct {
	// Addr is the brokerd address ("host:port").
	Addr string
	// Addrs lists the members of a replicated broker set. When set it
	// takes precedence over Addr: dial attempts rotate round-robin
	// through the list (with the usual backoff between full passes),
	// and with more than one address each fresh connection is probed so
	// the client lands on the current leader — a follower answers
	// broker.ErrNotLeader and the client moves on to the next address.
	Addrs []string
	// Reconnect makes the client survive broker restarts: lost
	// connections are re-dialed with jittered exponential backoff, the
	// recorded topology (declares and binds) is replayed, and consumers
	// are re-attached. Without it the client dies with its connection,
	// as Dial always behaved.
	Reconnect bool
	// DialTimeout bounds one dial attempt. Default 2s.
	DialTimeout time.Duration
	// InitialBackoff and MaxBackoff bound the reconnect backoff ramp.
	// Defaults 50ms and 5s.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	// Heartbeat enables a liveness probe: when no frame arrives for the
	// interval a ping is sent, and a connection silent for three
	// intervals is force-closed (detecting half-open TCP). Zero
	// disables.
	Heartbeat time.Duration
	// Seed makes the backoff jitter deterministic for tests; zero seeds
	// from the clock.
	Seed int64
	// Metrics optionally registers wire.connects / wire.disconnects /
	// wire.heartbeat_timeouts counters.
	Metrics *metrics.Registry
	// Logf reports reconnect-loop progress; nil discards.
	Logf func(string, ...any)
}

// Client is a broker.Client talking to a remote brokerd over TCP. It is
// safe for concurrent use: requests are correlated by id and deliveries
// are demultiplexed to per-consumer channels. The client assigns
// consumer ids itself and registers the consumer before sending the
// Consume request, so no delivery can race past registration.
//
// With Config.Reconnect the client owns the connection lifecycle: see
// Config. Deliveries received over a connection that subsequently died
// are dropped from consumer buffers (the server requeued them), and
// settling one that was already handed out fails with ErrStaleDelivery.
type Client struct {
	cfg Config
	gen atomic.Uint64 // connection generation, bumped per (re)connect

	connects          *metrics.Counter
	disconnects       *metrics.Counter
	heartbeatTimeouts *metrics.Counter

	writeMu sync.Mutex // serializes frames onto the socket

	mu        sync.Mutex
	conn      net.Conn // nil while disconnected
	addrIdx   int      // index into cfg.Addrs of the live/last address
	rng       *rand.Rand
	lastRead  time.Time
	nextReq   uint64
	nextCons  uint64
	pending   map[uint64]chan response
	consumers map[uint64]*remoteConsumer
	topo      []topoRecord
	closed    bool
	closeCh   chan struct{}
}

// topoRecord is one replayable topology operation, kept in issue order
// so replay reconstructs the same broker state after a restart.
type topoRecord struct {
	op    byte // 'e'xchange, 'q'ueue, 'b'ind
	name  string
	kind  broker.ExchangeKind
	opts  broker.QueueOptions
	queue string
	key   string
}

type response struct {
	err   error
	stats broker.QueueStats
	kind  byte
}

// Dial connects to a brokerd at addr with the legacy single-connection
// lifecycle: the client dies with its connection.
func Dial(addr string) (*Client, error) {
	return Connect(Config{Addr: addr})
}

// Connect creates a client per cfg. With Reconnect it keeps dialing
// (backoff between attempts) until the first connection succeeds, so a
// daemon supervised by Connect simply waits for its broker to come up;
// without Reconnect it makes exactly one attempt.
func Connect(cfg Config) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.InitialBackoff <= 0 {
		cfg.InitialBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if len(cfg.Addrs) == 0 {
		cfg.Addrs = []string{cfg.Addr}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Client{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		pending:   make(map[uint64]chan response),
		consumers: make(map[uint64]*remoteConsumer),
		closeCh:   make(chan struct{}),
	}
	if cfg.Metrics != nil {
		c.connects = cfg.Metrics.Counter("wire.connects")
		c.disconnects = cfg.Metrics.Counter("wire.disconnects")
		c.heartbeatTimeouts = cfg.Metrics.Counter("wire.heartbeat_timeouts")
	} else {
		c.connects = &metrics.Counter{}
		c.disconnects = &metrics.Counter{}
		c.heartbeatTimeouts = &metrics.Counter{}
	}
	backoff := cfg.InitialBackoff
	for {
		conn, err := c.dialAny()
		if err == nil {
			c.install(conn)
			break
		}
		if !cfg.Reconnect {
			return nil, err
		}
		cfg.Logf("wire: dial %s: %v (retrying in %v)", c.addrsLabel(), err, backoff)
		select {
		case <-time.After(c.jitter(backoff)):
		case <-c.closeCh:
			return nil, ErrClientClosed
		}
		backoff = minDuration(2*backoff, cfg.MaxBackoff)
	}
	if cfg.Heartbeat > 0 {
		go c.heartbeatLoop()
	}
	return c, nil
}

// addrsLabel names the broker set for log lines.
func (c *Client) addrsLabel() string {
	if len(c.cfg.Addrs) == 1 {
		return c.cfg.Addrs[0]
	}
	return strings.Join(c.cfg.Addrs, ",")
}

// dialAny tries each configured broker address once, starting from the
// last successful one, and returns the first connection that passes
// the leader probe. Multi-address sets are probed (see probeLeader) so
// a follower is skipped; a single-address config keeps the legacy
// behavior of trusting the connection as dialed.
func (c *Client) dialAny() (net.Conn, error) {
	c.mu.Lock()
	start := c.addrIdx
	c.mu.Unlock()
	n := len(c.cfg.Addrs)
	var lastErr error
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		addr := c.cfg.Addrs[idx]
		conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			if n > 1 {
				c.cfg.Logf("wire: dial %s: %v (trying next address)", addr, err)
			}
			continue
		}
		if n > 1 {
			if err := probeLeader(conn, c.cfg.DialTimeout); err != nil {
				conn.Close()
				lastErr = fmt.Errorf("%s: %w", addr, err)
				c.cfg.Logf("wire: probe %s: %v (trying next address)", addr, err)
				continue
			}
		}
		c.mu.Lock()
		c.addrIdx = idx
		c.mu.Unlock()
		return conn, nil
	}
	if lastErr == nil {
		lastErr = errors.New("wire: no broker addresses configured")
	}
	return nil, lastErr
}

// probeLeader round-trips a ping on a fresh, not-yet-installed
// connection. Correlation id 0 is reserved for the probe (regular
// requests start at 1), and the exchange happens before the read loop
// owns the socket, so the synchronous read cannot steal anyone's
// reply. A replication follower answers broker.ErrNotLeader here,
// which is the signal to try the next member of the broker set.
func probeLeader(conn net.Conn, timeout time.Duration) error {
	payload := []byte{opPing}
	payload = binary.LittleEndian.AppendUint64(payload, 0)
	conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	if err := writeFrame(conn, payload); err != nil {
		return err
	}
	frame, err := readFrame(conn)
	if err != nil {
		return err
	}
	if frame[0] != opReply { // readFrame never returns an empty frame
		return fmt.Errorf("wire: unexpected probe reply opcode %d", frame[0])
	}
	r := &reader{buf: frame[1:]}
	r.uint64() // echoed correlation id 0
	msg := r.string()
	if r.err != nil {
		return r.err
	}
	return remoteError(msg)
}

// jitter spreads a backoff delay uniformly over [d/2, d) so a fleet of
// clients does not reconnect in lockstep.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// install makes conn the live connection and starts its read loop.
func (c *Client) install(conn net.Conn) {
	gen := c.gen.Add(1)
	c.mu.Lock()
	c.conn = conn
	c.lastRead = time.Now()
	cons := make([]*remoteConsumer, 0, len(c.consumers))
	for _, rc := range c.consumers {
		cons = append(cons, rc)
	}
	c.mu.Unlock()
	// Deliveries buffered from the dead connection were requeued by the
	// server at disconnect; drop them so the application never holds a
	// tag it cannot settle.
	for _, rc := range cons {
		rc.dropStale(gen)
	}
	c.connects.Inc()
	go c.readLoop(conn, gen)
}

// Close drops the connection and stops any reconnecting; outstanding
// requests fail and consumer channels close.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closeCh)
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Generation reports how many connections the client has established;
// it increments on every successful (re)connect.
func (c *Client) Generation() uint64 { return c.gen.Load() }

// Connected reports whether a connection is currently live.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn != nil
}

func (c *Client) readLoop(conn net.Conn, gen uint64) {
	var err error
	for {
		var frame []byte
		frame, err = readFrame(conn)
		if err != nil {
			break
		}
		c.mu.Lock()
		c.lastRead = time.Now()
		c.mu.Unlock()
		if err = c.dispatch(frame); err != nil {
			break
		}
	}
	conn.Close()
	c.connLost(conn, gen, err)
}

// connLost handles the death of the connection of generation gen:
// in-flight requests fail with ErrConnLost, and either the reconnect
// loop takes over or (legacy lifecycle / after Close) the client shuts
// down for good.
func (c *Client) connLost(conn net.Conn, gen uint64, cause error) {
	c.mu.Lock()
	if c.conn != conn {
		// A newer connection was already installed; nothing to do.
		c.mu.Unlock()
		return
	}
	c.conn = nil
	closed := c.closed
	reconnect := c.cfg.Reconnect && !closed
	pend := c.pending
	c.pending = make(map[uint64]chan response)
	var cons []*remoteConsumer
	if !reconnect {
		for _, rc := range c.consumers {
			cons = append(cons, rc)
		}
		c.consumers = make(map[uint64]*remoteConsumer)
		c.closed = true
	}
	c.mu.Unlock()
	c.disconnects.Inc()
	for _, ch := range pend {
		ch <- response{err: fmt.Errorf("%w: %v", ErrConnLost, cause)}
	}
	if reconnect {
		c.cfg.Logf("wire: connection to %s lost: %v (reconnecting)", c.addrsLabel(), cause)
		go c.reconnectLoop()
		return
	}
	for _, rc := range cons {
		rc.finish()
	}
}

// reconnectLoop re-dials with jittered exponential backoff, then
// replays topology and re-attaches consumers. If the fresh connection
// dies during replay its own read loop reports connLost and spawns the
// next reconnectLoop, so this one never loops on replay failures.
func (c *Client) reconnectLoop() {
	backoff := c.cfg.InitialBackoff
	for {
		select {
		case <-c.closeCh:
			return
		case <-time.After(c.jitter(backoff)):
		}
		backoff = minDuration(2*backoff, c.cfg.MaxBackoff)
		conn, err := c.dialAny()
		if err != nil {
			c.cfg.Logf("wire: redial %s: %v", c.addrsLabel(), err)
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.mu.Unlock()
		c.install(conn)
		c.cfg.Logf("wire: reconnected to %s", conn.RemoteAddr())
		c.replay()
		return
	}
}

// replay re-declares the recorded topology and re-attaches consumers on
// the current connection. Errors are logged, not fatal: a replay cut
// short by another disconnect is retried by the next reconnect.
func (c *Client) replay() {
	c.mu.Lock()
	topo := append([]topoRecord(nil), c.topo...)
	cons := make([]*remoteConsumer, 0, len(c.consumers))
	for _, rc := range c.consumers {
		cons = append(cons, rc)
	}
	c.mu.Unlock()
	for _, rec := range topo {
		var err error
		switch rec.op {
		case 'e':
			err = c.declareExchange(rec.name, rec.kind, false)
		case 'q':
			err = c.declareQueue(rec.name, rec.opts, false)
		case 'b':
			err = c.bind(rec.queue, rec.name, rec.key, false)
		}
		if err != nil {
			c.cfg.Logf("wire: topology replay: %v", err)
			return
		}
	}
	for _, rc := range cons {
		if err := c.attach(rc); err != nil {
			c.cfg.Logf("wire: consumer re-attach (queue %s): %v", rc.queue, err)
			return
		}
	}
}

// heartbeatLoop probes connection liveness. A connection that has
// delivered nothing for an interval gets a ping (the reply refreshes
// lastRead); one silent for three intervals is declared half-open and
// force-closed, which routes recovery through the reconnect loop.
func (c *Client) heartbeatLoop() {
	ticker := time.NewTicker(c.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-c.closeCh:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		conn := c.conn
		idle := time.Since(c.lastRead)
		c.mu.Unlock()
		if conn == nil {
			continue
		}
		if idle >= 3*c.cfg.Heartbeat {
			c.heartbeatTimeouts.Inc()
			c.cfg.Logf("wire: heartbeat timeout after %v; dropping connection", idle)
			conn.Close() // readLoop notices and triggers connLost
			continue
		}
		if idle >= c.cfg.Heartbeat {
			go func() { _ = c.Ping() }()
		}
	}
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	payload, id := c.newRequest(opPing)
	return c.simpleCall(payload, id)
}

func (c *Client) dispatch(frame []byte) error {
	if len(frame) == 0 {
		return fmt.Errorf("wire: empty frame")
	}
	op := frame[0]
	r := &reader{buf: frame[1:]}
	switch op {
	case opReply:
		reqID := r.uint64()
		msg := r.string()
		if r.err != nil {
			return r.err
		}
		c.complete(reqID, response{kind: opReply, err: remoteError(msg)})
	case opConsumeOK:
		reqID := r.uint64()
		if r.err != nil {
			return r.err
		}
		c.complete(reqID, response{kind: opConsumeOK})
	case opStatsReply:
		reqID := r.uint64()
		msg := r.string()
		st := r.stats()
		if r.err != nil {
			return r.err
		}
		c.complete(reqID, response{kind: opStatsReply, err: remoteError(msg), stats: st})
	case opDeliver:
		id := r.uint64()
		tag := r.uint64()
		redelivered := r.bool()
		queue := r.string()
		exchange := r.string()
		key := r.string()
		headers := r.headers()
		body := r.bytes()
		if r.err != nil {
			return r.err
		}
		c.mu.Lock()
		rc := c.consumers[id]
		c.mu.Unlock()
		if rc != nil {
			rc.push(broker.Delivery{
				Message: broker.Message{
					Exchange:   exchange,
					RoutingKey: key,
					Headers:    headers,
					Body:       body,
				},
				Queue:       queue,
				Tag:         tag,
				Redelivered: redelivered,
			}, c.gen.Load())
		}
	case opConsumerEOF:
		id := r.uint64()
		if r.err != nil {
			return r.err
		}
		c.mu.Lock()
		rc := c.consumers[id]
		delete(c.consumers, id)
		c.mu.Unlock()
		if rc != nil {
			rc.finish()
		}
	default:
		return fmt.Errorf("wire: unexpected opcode %d from server", op)
	}
	return nil
}

func (c *Client) complete(reqID uint64, resp response) {
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- resp
	}
}

// remoteError maps an error string from the server back to the broker's
// sentinel errors where possible, so errors.Is keeps working across the
// wire.
func remoteError(msg string) error {
	if msg == "" {
		return nil
	}
	for _, sentinel := range []error{
		broker.ErrClosed, broker.ErrNoExchange, broker.ErrNoQueue,
		broker.ErrExchangeExists, broker.ErrQueueExists,
		broker.ErrConsumerClosed, broker.ErrUnknownDelivery,
		broker.ErrNotLeader,
	} {
		if strings.HasPrefix(msg, sentinel.Error()) {
			if msg == sentinel.Error() {
				return sentinel
			}
			return fmt.Errorf("%w%s", sentinel, strings.TrimPrefix(msg, sentinel.Error()))
		}
	}
	return errors.New(msg)
}

// call sends a request frame and waits for its correlated response.
// With no live connection it fails fast with ErrConnLost instead of
// hanging; the pending entry is registered while holding the lock that
// connLost drains under, so the response channel is always completed.
func (c *Client) call(payload []byte, reqID uint64) (response, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return response{}, ErrClientClosed
	}
	conn := c.conn
	if conn == nil {
		c.mu.Unlock()
		return response{}, ErrConnLost
	}
	c.pending[reqID] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(conn, payload)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return response{}, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	return <-ch, nil
}

func (c *Client) newRequest(op byte) ([]byte, uint64) {
	c.mu.Lock()
	c.nextReq++
	id := c.nextReq
	c.mu.Unlock()
	payload := []byte{op}
	payload = binary.LittleEndian.AppendUint64(payload, id)
	return payload, id
}

func (c *Client) simpleCall(payload []byte, id uint64) error {
	resp, err := c.call(payload, id)
	if err != nil {
		return err
	}
	return resp.err
}

// record appends a topology record unless an identical one exists.
func (c *Client) record(rec topoRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, have := range c.topo {
		if have == rec {
			return
		}
	}
	c.topo = append(c.topo, rec)
}

// DeclareExchange implements broker.Client.
func (c *Client) DeclareExchange(name string, kind broker.ExchangeKind) error {
	return c.declareExchange(name, kind, true)
}

func (c *Client) declareExchange(name string, kind broker.ExchangeKind, remember bool) error {
	payload, id := c.newRequest(opDeclareExchange)
	payload = appendString(payload, name)
	payload = append(payload, byte(kind))
	err := c.simpleCall(payload, id)
	if err == nil && remember && c.cfg.Reconnect {
		c.record(topoRecord{op: 'e', name: name, kind: kind})
	}
	return err
}

// DeclareQueue implements broker.Client.
func (c *Client) DeclareQueue(name string, opts broker.QueueOptions) error {
	return c.declareQueue(name, opts, true)
}

func (c *Client) declareQueue(name string, opts broker.QueueOptions, remember bool) error {
	payload, id := c.newRequest(opDeclareQueue)
	payload = appendString(payload, name)
	payload = append(payload, boolByte(opts.AutoDelete))
	payload = binary.AppendUvarint(payload, uint64(opts.MaxLen))
	payload = append(payload, boolByte(opts.Durable))
	payload = binary.AppendUvarint(payload, uint64(opts.MaxRedeliver+1))
	err := c.simpleCall(payload, id)
	if err == nil && remember && c.cfg.Reconnect {
		c.record(topoRecord{op: 'q', name: name, opts: opts})
	}
	return err
}

// DeleteQueue implements broker.Client.
func (c *Client) DeleteQueue(name string) error {
	payload, id := c.newRequest(opDeleteQueue)
	payload = appendString(payload, name)
	err := c.simpleCall(payload, id)
	if err == nil {
		c.mu.Lock()
		kept := c.topo[:0]
		for _, rec := range c.topo {
			if (rec.op == 'q' && rec.name == name) || (rec.op == 'b' && rec.queue == name) {
				continue
			}
			kept = append(kept, rec)
		}
		c.topo = kept
		c.mu.Unlock()
	}
	return err
}

// Bind implements broker.Client.
func (c *Client) Bind(queue, exchange, routingKey string) error {
	return c.bind(queue, exchange, routingKey, true)
}

func (c *Client) bind(queue, exchange, routingKey string, remember bool) error {
	payload, id := c.newRequest(opBind)
	payload = appendString(payload, queue)
	payload = appendString(payload, exchange)
	payload = appendString(payload, routingKey)
	err := c.simpleCall(payload, id)
	if err == nil && remember && c.cfg.Reconnect {
		c.record(topoRecord{op: 'b', queue: queue, name: exchange, key: routingKey})
	}
	return err
}

// Publish implements broker.Client. The call blocks until the server
// acknowledges routing, so broker backpressure propagates to the remote
// producer.
func (c *Client) Publish(exchange, routingKey string, headers map[string]string, body []byte) error {
	payload, id := c.newRequest(opPublish)
	payload = appendString(payload, exchange)
	payload = appendString(payload, routingKey)
	payload = appendHeaders(payload, headers)
	payload = appendBytes(payload, body)
	return c.simpleCall(payload, id)
}

// Consume implements broker.Client.
func (c *Client) Consume(queue string, prefetch int, autoAck bool) (broker.Consumer, error) {
	if prefetch < 1 {
		prefetch = 1
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextCons++
	consID := c.nextCons
	rc := newRemoteConsumer(c, consID, queue, prefetch, autoAck)
	c.consumers[consID] = rc
	c.mu.Unlock()

	if err := c.attach(rc); err != nil {
		c.mu.Lock()
		delete(c.consumers, consID)
		c.mu.Unlock()
		rc.finish()
		return nil, err
	}
	return rc, nil
}

// attach sends the Consume request for rc on the current connection;
// used both for the initial subscription and for re-attachment after a
// reconnect (same consumer id, so in-flight deliveries keep routing to
// the same channel).
func (c *Client) attach(rc *remoteConsumer) error {
	payload, id := c.newRequest(opConsume)
	payload = binary.LittleEndian.AppendUint64(payload, rc.id)
	payload = appendString(payload, rc.queue)
	payload = binary.AppendUvarint(payload, uint64(rc.prefetch))
	payload = append(payload, boolByte(rc.autoAck))
	resp, err := c.call(payload, id)
	if err == nil && resp.err != nil {
		err = resp.err
	}
	return err
}

// QueueStats implements broker.Client.
func (c *Client) QueueStats(queue string) (broker.QueueStats, error) {
	payload, id := c.newRequest(opQueueStats)
	payload = appendString(payload, queue)
	resp, err := c.call(payload, id)
	if err != nil {
		return broker.QueueStats{}, err
	}
	return resp.stats, resp.err
}

// remoteConsumer buffers deliveries without bound between the read loop
// and the application, so a slow application can never stall the
// client's read loop (which also carries request replies). The server
// side enforces prefetch, keeping the buffer small in practice.
type remoteConsumer struct {
	c        *Client
	id       uint64
	queue    string
	prefetch int
	autoAck  bool
	ch       chan broker.Delivery
	dead     chan struct{} // closed on Cancel: the forwarder must not block
	once     sync.Once

	mu     sync.Mutex
	buf    []genDelivery
	tags   map[uint64]uint64 // delivery tag -> connection generation
	eof    bool
	notify chan struct{}
}

type genDelivery struct {
	d   broker.Delivery
	gen uint64
}

func newRemoteConsumer(c *Client, id uint64, queue string, prefetch int, autoAck bool) *remoteConsumer {
	rc := &remoteConsumer{
		c:        c,
		id:       id,
		queue:    queue,
		prefetch: prefetch,
		autoAck:  autoAck,
		ch:       make(chan broker.Delivery),
		dead:     make(chan struct{}),
		tags:     make(map[uint64]uint64),
		notify:   make(chan struct{}, 1),
	}
	go rc.forward()
	return rc
}

// push is called from the client's read loop; it never blocks.
func (rc *remoteConsumer) push(d broker.Delivery, gen uint64) {
	rc.mu.Lock()
	rc.buf = append(rc.buf, genDelivery{d, gen})
	if !rc.autoAck {
		rc.tags[d.Tag] = gen
	}
	rc.mu.Unlock()
	rc.wake()
}

// dropStale discards buffered deliveries (and tag records) from
// connections older than gen: the server requeued them when the old
// connection died, so handing them out would let the application settle
// tags the new session does not know.
func (rc *remoteConsumer) dropStale(gen uint64) {
	rc.mu.Lock()
	kept := rc.buf[:0]
	for _, gd := range rc.buf {
		if gd.gen >= gen {
			kept = append(kept, gd)
		}
	}
	rc.buf = kept
	for tag, g := range rc.tags {
		if g < gen {
			delete(rc.tags, tag)
		}
	}
	rc.mu.Unlock()
}

// finish marks end-of-stream; buffered deliveries still drain.
func (rc *remoteConsumer) finish() {
	rc.mu.Lock()
	rc.eof = true
	rc.mu.Unlock()
	rc.wake()
}

func (rc *remoteConsumer) wake() {
	select {
	case rc.notify <- struct{}{}:
	default:
	}
}

func (rc *remoteConsumer) forward() {
	for {
		rc.mu.Lock()
		if len(rc.buf) == 0 {
			eof := rc.eof
			rc.mu.Unlock()
			if eof {
				close(rc.ch)
				return
			}
			select {
			case <-rc.notify:
			case <-rc.dead:
				close(rc.ch)
				return
			}
			continue
		}
		gd := rc.buf[0]
		rc.buf = rc.buf[1:]
		rc.mu.Unlock()
		if gd.gen < rc.c.gen.Load() {
			continue // went stale while buffered; the server requeued it
		}
		select {
		case rc.ch <- gd.d:
		case <-rc.dead:
			// Cancelled with an unread buffer and no reader: drop the
			// remainder rather than leak this goroutine. The server has
			// already settled or requeued as appropriate.
			close(rc.ch)
			return
		}
	}
}

// Deliveries implements broker.Consumer.
func (rc *remoteConsumer) Deliveries() <-chan broker.Delivery { return rc.ch }

// settleable checks the tag belongs to the current connection,
// forgetting it either way.
func (rc *remoteConsumer) settleable(tag uint64) error {
	rc.mu.Lock()
	gen, ok := rc.tags[tag]
	delete(rc.tags, tag)
	rc.mu.Unlock()
	if !ok || gen < rc.c.gen.Load() {
		return ErrStaleDelivery
	}
	return nil
}

// Ack implements broker.Consumer. Acking a delivery that arrived over a
// previous connection fails with ErrStaleDelivery: the server already
// requeued it, and the tag may meanwhile identify a different message.
func (rc *remoteConsumer) Ack(tag uint64) error {
	if err := rc.settleable(tag); err != nil {
		return err
	}
	payload, id := rc.c.newRequest(opAck)
	payload = binary.LittleEndian.AppendUint64(payload, rc.id)
	payload = binary.LittleEndian.AppendUint64(payload, tag)
	return rc.c.simpleCall(payload, id)
}

// Nack implements broker.Consumer; see Ack for stale-delivery handling.
func (rc *remoteConsumer) Nack(tag uint64, requeue bool) error {
	if err := rc.settleable(tag); err != nil {
		return err
	}
	payload, id := rc.c.newRequest(opNack)
	payload = binary.LittleEndian.AppendUint64(payload, rc.id)
	payload = binary.LittleEndian.AppendUint64(payload, tag)
	payload = append(payload, boolByte(requeue))
	return rc.c.simpleCall(payload, id)
}

// Cancel implements broker.Consumer. Local teardown happens even when
// the connection is down (the server side was torn down with it).
func (rc *remoteConsumer) Cancel() error {
	payload, id := rc.c.newRequest(opCancel)
	payload = binary.LittleEndian.AppendUint64(payload, rc.id)
	err := rc.c.simpleCall(payload, id)
	rc.c.mu.Lock()
	delete(rc.c.consumers, rc.id)
	rc.c.mu.Unlock()
	rc.once.Do(func() { close(rc.dead) })
	rc.finish()
	if errors.Is(err, ErrConnLost) || errors.Is(err, ErrClientClosed) {
		return nil // nothing to cancel server-side; local teardown done
	}
	return err
}
