package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"bistream/internal/broker"
)

// Server accepts TCP connections and executes broker operations on
// behalf of remote clients. One Server fronts one broker.Broker; the
// broker reference is swappable (SetBroker) so a replica node can run
// the listener continuously and only attach a broker while it is the
// leader. While no broker is attached every request is answered with
// broker.ErrNotLeader and the connection is closed, steering
// multi-address clients to the current leader.
type Server struct {
	bmu    sync.RWMutex
	b      *broker.Broker
	ln     net.Listener
	logf   func(format string, args ...any)
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps the broker (nil for a follower that will attach one
// on promotion). Call Listen to start accepting.
func NewServer(b *broker.Broker, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{b: b, logf: logf, conns: make(map[net.Conn]struct{})}
}

// SetBroker swaps the served broker; nil detaches it (follower mode).
// Existing connections bound to the old broker are dropped so their
// clients re-dial and re-probe the broker set.
func (s *Server) SetBroker(b *broker.Broker) {
	s.bmu.Lock()
	old := s.b
	s.b = b
	s.bmu.Unlock()
	if old == b {
		return
	}
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Broker returns the currently attached broker (nil in follower mode).
func (s *Server) Broker() *broker.Broker {
	s.bmu.RLock()
	defer s.bmu.RUnlock()
	return s.b
}

// Listen binds the address and starts serving in background goroutines.
// It returns the bound address (useful with ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the listener and drops all connections. The broker itself
// is not closed; it may be shared.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// session is the per-connection state: its consumers and a write lock
// serializing frames onto the socket.
type session struct {
	srv       *Server
	conn      net.Conn
	writeMu   sync.Mutex
	mu        sync.Mutex
	consumers map[uint64]broker.Consumer
	wg        sync.WaitGroup
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	sess := &session{srv: s, conn: conn, consumers: make(map[uint64]broker.Consumer)}
	defer sess.teardown()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("wire: connection %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if err := sess.handle(frame); err != nil {
			s.logf("wire: connection %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

func (sess *session) teardown() {
	sess.mu.Lock()
	consumers := make([]broker.Consumer, 0, len(sess.consumers))
	for _, c := range sess.consumers {
		consumers = append(consumers, c)
	}
	sess.consumers = map[uint64]broker.Consumer{}
	sess.mu.Unlock()
	for _, c := range consumers {
		c.Cancel()
	}
	sess.conn.Close()
	sess.wg.Wait()
	sess.srv.mu.Lock()
	delete(sess.srv.conns, sess.conn)
	sess.srv.mu.Unlock()
}

func (sess *session) send(payload []byte) error {
	sess.writeMu.Lock()
	defer sess.writeMu.Unlock()
	return writeFrame(sess.conn, payload)
}

func (sess *session) reply(reqID uint64, err error) error {
	payload := []byte{opReply}
	payload = binary.LittleEndian.AppendUint64(payload, reqID)
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	payload = appendString(payload, msg)
	return sess.send(payload)
}

func (sess *session) handle(frame []byte) error {
	op := frame[0]
	r := &reader{buf: frame[1:]}
	reqID := r.uint64()
	b := sess.srv.Broker()
	if b == nil {
		// Follower mode: refuse and hang up, so the client's next dial
		// probes its way to the leader.
		_ = sess.reply(reqID, broker.ErrNotLeader)
		return fmt.Errorf("request while not leader")
	}
	switch op {
	case opDeclareExchange:
		name := r.string()
		kind := broker.ExchangeKind(r.byte())
		if r.err != nil {
			return r.err
		}
		return sess.reply(reqID, b.DeclareExchange(name, kind))
	case opDeclareQueue:
		name := r.string()
		autoDelete := r.bool()
		maxLen := int(r.uvarint())
		durable := r.bool()
		maxRedeliver := int(r.uvarint()) - 1 // shifted: unlimited (-1) travels as 0
		if r.err != nil {
			return r.err
		}
		return sess.reply(reqID, b.DeclareQueue(name, broker.QueueOptions{
			AutoDelete: autoDelete, MaxLen: maxLen, Durable: durable,
			MaxRedeliver: maxRedeliver,
		}))
	case opDeleteQueue:
		name := r.string()
		if r.err != nil {
			return r.err
		}
		return sess.reply(reqID, b.DeleteQueue(name))
	case opBind:
		q := r.string()
		ex := r.string()
		key := r.string()
		if r.err != nil {
			return r.err
		}
		return sess.reply(reqID, b.Bind(q, ex, key))
	case opPublish:
		ex := r.string()
		key := r.string()
		headers := r.headers()
		body := r.bytes()
		if r.err != nil {
			return r.err
		}
		// Publish may block on backpressure; do it inline so TCP reads
		// pause, propagating the backpressure to the remote publisher.
		return sess.reply(reqID, b.Publish(ex, key, headers, body))
	case opConsume:
		id := r.uint64() // client-assigned consumer id
		queue := r.string()
		prefetch := int(r.uvarint())
		autoAck := r.bool()
		if r.err != nil {
			return r.err
		}
		cons, err := b.Consume(queue, prefetch, autoAck)
		if err != nil {
			return sess.reply(reqID, err)
		}
		sess.mu.Lock()
		sess.consumers[id] = cons
		sess.mu.Unlock()
		payload := []byte{opConsumeOK}
		payload = binary.LittleEndian.AppendUint64(payload, reqID)
		if err := sess.send(payload); err != nil {
			cons.Cancel()
			return err
		}
		sess.wg.Add(1)
		go sess.pumpDeliveries(id, cons)
		return nil
	case opAck:
		id := r.uint64()
		tag := r.uint64()
		if r.err != nil {
			return r.err
		}
		return sess.reply(reqID, sess.withConsumer(id, func(c broker.Consumer) error { return c.Ack(tag) }))
	case opNack:
		id := r.uint64()
		tag := r.uint64()
		requeue := r.bool()
		if r.err != nil {
			return r.err
		}
		return sess.reply(reqID, sess.withConsumer(id, func(c broker.Consumer) error { return c.Nack(tag, requeue) }))
	case opCancel:
		id := r.uint64()
		if r.err != nil {
			return r.err
		}
		sess.mu.Lock()
		c, ok := sess.consumers[id]
		delete(sess.consumers, id)
		sess.mu.Unlock()
		var err error
		if !ok {
			err = broker.ErrConsumerClosed
		} else {
			err = c.Cancel()
		}
		return sess.reply(reqID, err)
	case opPing:
		if r.err != nil {
			return r.err
		}
		return sess.reply(reqID, nil)
	case opQueueStats:
		name := r.string()
		if r.err != nil {
			return r.err
		}
		st, err := b.QueueStats(name)
		payload := []byte{opStatsReply}
		payload = binary.LittleEndian.AppendUint64(payload, reqID)
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		payload = appendString(payload, msg)
		payload = encodeStats(payload, st)
		return sess.send(payload)
	default:
		return fmt.Errorf("wire: unknown opcode %d", op)
	}
}

func (sess *session) withConsumer(id uint64, fn func(broker.Consumer) error) error {
	sess.mu.Lock()
	c, ok := sess.consumers[id]
	sess.mu.Unlock()
	if !ok {
		return broker.ErrConsumerClosed
	}
	return fn(c)
}

// pumpDeliveries forwards broker deliveries to the remote client. A
// blocking socket write backpressures the broker's dispatcher, which is
// exactly the flow control we want.
func (sess *session) pumpDeliveries(id uint64, cons broker.Consumer) {
	defer sess.wg.Done()
	for d := range cons.Deliveries() {
		payload := []byte{opDeliver}
		payload = binary.LittleEndian.AppendUint64(payload, id)
		payload = binary.LittleEndian.AppendUint64(payload, d.Tag)
		payload = append(payload, boolByte(d.Redelivered))
		payload = appendString(payload, d.Queue)
		payload = appendString(payload, d.Exchange)
		payload = appendString(payload, d.RoutingKey)
		payload = appendHeaders(payload, d.Headers)
		payload = appendBytes(payload, d.Body)
		if err := sess.send(payload); err != nil {
			cons.Cancel()
			return
		}
	}
	payload := []byte{opConsumerEOF}
	payload = binary.LittleEndian.AppendUint64(payload, id)
	_ = sess.send(payload)
}

// ListenAndServe is a convenience for cmd/brokerd: serve until the
// process exits.
func ListenAndServe(addr string, b *broker.Broker) error {
	srv := NewServer(b, log.Printf)
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	log.Printf("brokerd listening on %v", bound)
	select {} // run forever; the process is terminated externally
}
