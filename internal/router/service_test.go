package router

import (
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/topo"
	"bistream/internal/tuple"
)

func startService(t *testing.T, pred predicate.Predicate) (*broker.Broker, *Service) {
	t.Helper()
	b := broker.New(nil)
	t.Cleanup(func() { b.Close() })
	core, err := NewCore(Config{ID: 0, Pred: pred, Window: testWin()})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(core, b, nil, ServiceConfig{PunctuationInterval: time.Millisecond})
	if err := svc.SetLayout(tuple.R, []int32{0}, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetLayout(tuple.S, []int32{0}, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	return b, svc
}

// declareJoinerQueues declares member 0's queues for both relations so
// the service's publishes are observable.
func declareJoinerQueues(t *testing.T, b *broker.Broker) {
	t.Helper()
	for _, rel := range []tuple.Relation{tuple.R, tuple.S} {
		storeQ := topo.StoreQueue(rel, 0)
		joinQ := topo.JoinQueue(rel, 0)
		for _, q := range []struct{ queue, ex string }{
			{storeQ, topo.StoreExchange(rel)},
			{joinQ, topo.JoinExchange(rel.Opposite())},
		} {
			if err := b.DeclareQueue(q.queue, broker.QueueOptions{}); err != nil {
				t.Fatal(err)
			}
			if err := b.Bind(q.queue, q.ex, topo.MemberKey(0)); err != nil {
				t.Fatal(err)
			}
			if err := b.Bind(q.queue, q.ex, topo.PunctKey); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestServiceRoutesEntryTuples(t *testing.T) {
	b, svc := startService(t, predicate.NewEqui(0, 0))
	declareJoinerQueues(t, b)
	cons, err := b.Consume(topo.StoreQueue(tuple.R, 0), 16, true)
	if err != nil {
		t.Fatal(err)
	}
	tp := tuple.New(tuple.R, 7, 1234, tuple.Int(42))
	if err := b.Publish(topo.EntryExchange, topo.EntryKey, nil, tuple.Marshal(tp)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case d := <-cons.Deliveries():
			env, err := protocol.UnmarshalEnvelope(d.Body)
			if err != nil {
				t.Fatal(err)
			}
			if env.Kind == protocol.KindPunctuation {
				continue // punctuation ticker noise
			}
			if env.Kind != protocol.KindTuple || env.Stream != protocol.StreamStore {
				t.Fatalf("envelope = %+v", env)
			}
			if env.Tuple.Seq != 7 || !env.Tuple.Value(0).Equal(tuple.Int(42)) {
				t.Fatalf("tuple = %v", env.Tuple)
			}
			if st := svc.Stats(); st.TuplesRouted != 1 {
				t.Errorf("stats = %+v", st)
			}
			return
		case <-deadline:
			t.Fatal("store copy never arrived")
		}
	}
}

func TestServicePunctuatesPeriodidally(t *testing.T) {
	b, _ := startService(t, predicate.NewEqui(0, 0))
	declareJoinerQueues(t, b)
	cons, err := b.Consume(topo.JoinQueue(tuple.S, 0), 16, true)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case d := <-cons.Deliveries():
			env, err := protocol.UnmarshalEnvelope(d.Body)
			if err != nil {
				t.Fatal(err)
			}
			if env.Kind == protocol.KindPunctuation {
				return // ticker works
			}
		case <-deadline:
			t.Fatal("no punctuation within 5s at 1ms interval")
		}
	}
}

func TestServiceDropsPoisonMessages(t *testing.T) {
	b, svc := startService(t, predicate.NewEqui(0, 0))
	if err := b.Publish(topo.EntryExchange, topo.EntryKey, nil, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	declareJoinerQueues(t, b)
	// A good tuple after the poison one must still route.
	tp := tuple.New(tuple.R, 1, 0, tuple.Int(1))
	if err := b.Publish(topo.EntryExchange, topo.EntryKey, nil, tuple.Marshal(tp)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if svc.Stats().TuplesRouted == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("router wedged on poison message")
}

func TestServiceDoubleStartAndStop(t *testing.T) {
	_, svc := startService(t, predicate.NewEqui(0, 0))
	if err := svc.Start(); err == nil {
		t.Error("double start accepted")
	}
	svc.Stop()
	svc.Stop() // idempotent
	if svc.ID() != 0 {
		t.Error("ID wrong")
	}
}

func TestServiceRetireBroadcastsTombstone(t *testing.T) {
	b, svc := startService(t, predicate.NewEqui(0, 0))
	declareJoinerQueues(t, b)
	cons, err := b.Consume(topo.StoreQueue(tuple.R, 0), 64, true)
	if err != nil {
		t.Fatal(err)
	}
	svc.Retire()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case d := <-cons.Deliveries():
			env, err := protocol.UnmarshalEnvelope(d.Body)
			if err != nil {
				t.Fatal(err)
			}
			if env.Kind == protocol.KindRetire {
				return
			}
		case <-deadline:
			t.Fatal("tombstone never arrived")
		}
	}
}
