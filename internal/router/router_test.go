package router

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

func testWin() window.Sliding { return window.Sliding{Span: 10 * time.Second} }

func newEquiCore(t *testing.T) *Core {
	t.Helper()
	c, err := NewCore(Config{ID: 1, Pred: predicate.NewEqui(0, 0), Window: testWin()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustLayout(t *testing.T, c *Core, rel tuple.Relation, members []int32, d int) {
	t.Helper()
	if err := c.SetLayout(rel, members, d, 0); err != nil {
		t.Fatal(err)
	}
}

func at(ms int64) time.Time { return time.UnixMilli(ms) }

func TestGroupSetLayoutValidation(t *testing.T) {
	g := NewGroup(testWin())
	if err := g.SetLayout(nil, 1, 0); err == nil {
		t.Error("empty layout accepted")
	}
	if err := g.SetLayout([]int32{1, 2}, 0, 0); err == nil {
		t.Error("zero subgroups accepted")
	}
	if err := g.SetLayout([]int32{1, 2}, 3, 0); err == nil {
		t.Error("more subgroups than members accepted")
	}
	if err := g.SetLayout([]int32{1, 1}, 1, 0); err == nil {
		t.Error("duplicate members accepted")
	}
	if _, err := g.StoreTarget(0, false, 0); err == nil {
		t.Error("StoreTarget without layout should fail")
	}
	if _, err := g.JoinTargets(0, false, 0); err == nil {
		t.Error("JoinTargets without layout should fail")
	}
}

func TestGroupRandomStrategyRoundRobinsStores(t *testing.T) {
	g := NewGroup(testWin())
	g.SetLayout([]int32{10, 11, 12}, 1, 0)
	counts := map[int32]int{}
	for i := 0; i < 300; i++ {
		m, err := g.StoreTarget(uint64(i*7), true, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts[m]++
	}
	for _, id := range []int32{10, 11, 12} {
		if counts[id] != 100 {
			t.Errorf("member %d got %d stores, want 100", id, counts[id])
		}
	}
}

func TestGroupRandomStrategyBroadcastsJoins(t *testing.T) {
	g := NewGroup(testWin())
	g.SetLayout([]int32{10, 11, 12}, 1, 0)
	targets, err := g.JoinTargets(12345, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 3 {
		t.Errorf("join targets = %v, want all 3", targets)
	}
}

func TestGroupHashStrategySingleTarget(t *testing.T) {
	g := NewGroup(testWin())
	g.SetLayout([]int32{10, 11, 12, 13}, 4, 0)
	for h := uint64(0); h < 100; h++ {
		st, _ := g.StoreTarget(h, true, 0)
		jt, _ := g.JoinTargets(h, true, 0)
		if len(jt) != 1 {
			t.Fatalf("hash join targets = %v", jt)
		}
		if jt[0] != st {
			t.Fatalf("hash %d: store %d but join %v", h, st, jt)
		}
	}
}

func TestGroupHashCollocation(t *testing.T) {
	// The guarantee behind hash routing: equal hashes always land on the
	// same member for both store and join.
	g := NewGroup(testWin())
	g.SetLayout([]int32{0, 1, 2, 3, 4}, 5, 0)
	f := func(h uint64) bool {
		a, err1 := g.StoreTarget(h, true, 0)
		b, err2 := g.StoreTarget(h, true, 0)
		jt, err3 := g.JoinTargets(h, true, 0)
		return err1 == nil && err2 == nil && err3 == nil &&
			a == b && len(jt) == 1 && jt[0] == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupSubgroupHybrid(t *testing.T) {
	// 6 members, 2 subgroups: stores round-robin within the hashed
	// subgroup; joins broadcast to the 3 subgroup members.
	g := NewGroup(testWin())
	g.SetLayout([]int32{0, 1, 2, 3, 4, 5}, 2, 0)
	jt0, _ := g.JoinTargets(0, true, 0) // subgroup 0 = members 0,2,4
	jt1, _ := g.JoinTargets(1, true, 0) // subgroup 1 = members 1,3,5
	if len(jt0) != 3 || len(jt1) != 3 {
		t.Fatalf("subgroup sizes: %v %v", jt0, jt1)
	}
	for _, m := range jt0 {
		if m%2 != 0 {
			t.Errorf("member %d in even subgroup", m)
		}
	}
	for i := 0; i < 30; i++ {
		m, _ := g.StoreTarget(0, true, 0)
		if m%2 != 0 {
			t.Errorf("store for hash 0 went to odd member %d", m)
		}
	}
}

func TestGroupNonPartitionableIgnoresHash(t *testing.T) {
	g := NewGroup(testWin())
	g.SetLayout([]int32{0, 1, 2, 3}, 4, 0)
	jt, _ := g.JoinTargets(1, false, 0)
	if len(jt) != 4 {
		t.Errorf("non-partitionable join should broadcast: %v", jt)
	}
}

func TestGroupScaleOutDrainsOldGeneration(t *testing.T) {
	g := NewGroup(testWin()) // 10s window
	g.SetLayout([]int32{0, 1}, 2, 0)
	// Scale out to 3 members at t=60s.
	if err := g.SetLayout([]int32{0, 1, 2}, 3, 60_000); err != nil {
		t.Fatal(err)
	}
	if g.Generations() != 2 {
		t.Fatalf("Generations = %d", g.Generations())
	}
	// Right after scale-out, join fan-out covers both mappings.
	union := map[int32]bool{}
	for h := uint64(0); h < 50; h++ {
		jt, _ := g.JoinTargets(h, true, 61_000)
		for _, m := range jt {
			union[m] = true
		}
		if len(jt) < 1 || len(jt) > 2 {
			t.Fatalf("transition join targets = %v", jt)
		}
	}
	if len(union) != 3 {
		t.Errorf("union of join targets = %v, want all 3 members", union)
	}
	// After a full window (+slack) the old generation is pruned and
	// every hash maps to exactly one member again.
	for h := uint64(0); h < 50; h++ {
		jt, _ := g.JoinTargets(h, true, 60_000+testWin().SpanMillis()+2000)
		if len(jt) != 1 {
			t.Fatalf("post-drain join targets = %v", jt)
		}
	}
	if g.Generations() != 1 {
		t.Errorf("Generations after drain = %d", g.Generations())
	}
}

func TestGroupScaleInStopsStoresImmediately(t *testing.T) {
	g := NewGroup(testWin())
	g.SetLayout([]int32{0, 1, 2}, 1, 0)
	g.SetLayout([]int32{0, 1}, 1, 100_000)
	for i := 0; i < 50; i++ {
		m, _ := g.StoreTarget(uint64(i), true, 100_001)
		if m == 2 {
			t.Fatal("store routed to removed member")
		}
	}
	// The removed member still receives join fan-out while draining.
	jt, _ := g.JoinTargets(0, true, 100_001)
	if len(jt) != 3 {
		t.Errorf("draining join targets = %v", jt)
	}
	jt, _ = g.JoinTargets(0, true, 100_000+testWin().SpanMillis()+2000)
	if len(jt) != 2 {
		t.Errorf("post-drain join targets = %v", jt)
	}
}

func TestGroupIdenticalLayoutIsNoOp(t *testing.T) {
	g := NewGroup(testWin())
	g.SetLayout([]int32{0, 1}, 2, 0)
	g.SetLayout([]int32{0, 1}, 2, 50)
	if g.Generations() != 1 {
		t.Errorf("redundant SetLayout created a generation")
	}
}

func TestCoreValidation(t *testing.T) {
	if _, err := NewCore(Config{Pred: nil, Window: testWin()}); err == nil {
		t.Error("nil predicate accepted")
	}
	if c, err := NewCore(Config{Pred: predicate.NewEqui(0, 0)}); err != nil || c == nil {
		// A zero window is the full-history mode: retired layout
		// generations are kept forever instead of draining.
		t.Errorf("unbounded-window router rejected: %v", err)
	}
	c := newEquiCore(t)
	if err := c.SetLayout(tuple.R, []int32{0}, 1, 0); err != nil {
		t.Fatal(err)
	}
	band, _ := NewCore(Config{ID: 2, Pred: predicate.NewBand(0, 0, 1), Window: testWin()})
	if err := band.SetLayout(tuple.R, []int32{0, 1}, 2, 0); err == nil {
		t.Error("subgroups > 1 accepted for non-partitionable predicate")
	}
	if err := band.SetLayout(tuple.R, []int32{0, 1}, 1, 0); err != nil {
		t.Error(err)
	}
}

func TestCoreRouteEquiHash(t *testing.T) {
	c := newEquiCore(t)
	mustLayout(t, c, tuple.R, []int32{0, 1}, 2)
	mustLayout(t, c, tuple.S, []int32{0, 1, 2}, 3)
	rt := tuple.New(tuple.R, 1, 100, tuple.Int(42))
	dests, err := c.Route(rt, at(100))
	if err != nil {
		t.Fatal(err)
	}
	// Equi with full hash partitioning: 1 store + 1 join destination.
	if len(dests) != 2 {
		t.Fatalf("destinations = %+v", dests)
	}
	store, join := dests[0], dests[1]
	if store.Exchange != "Rstore.exchange" || !strings.HasPrefix(store.Key, "m.") {
		t.Errorf("store dest = %+v", store)
	}
	if join.Exchange != "Rjoin.exchange" {
		t.Errorf("join dest = %+v", join)
	}
	if store.Env.Stream != protocol.StreamStore || join.Env.Stream != protocol.StreamJoin {
		t.Error("stream kinds wrong")
	}
	if store.Env.Counter != join.Env.Counter {
		t.Error("store and join copies must share one counter")
	}
	if store.Env.Counter == 0 {
		t.Error("counter must start above zero")
	}
	// An S tuple with the same key must target the S member the R join
	// copy went to? No — the R join copy targets the S group by hash;
	// an S tuple with the same value stores on that same S member.
	st := tuple.New(tuple.S, 2, 100, tuple.Int(42))
	sDests, err := c.Route(st, at(100))
	if err != nil {
		t.Fatal(err)
	}
	if sDests[0].Exchange != "Sstore.exchange" {
		t.Errorf("S store dest = %+v", sDests[0])
	}
	if sDests[0].Key != join.Key {
		t.Errorf("S store key %s != R join key %s (collocation broken)", sDests[0].Key, join.Key)
	}
}

func TestCoreRouteBandBroadcast(t *testing.T) {
	c, err := NewCore(Config{ID: 1, Pred: predicate.NewBand(0, 0, 5), Window: testWin()})
	if err != nil {
		t.Fatal(err)
	}
	mustLayout(t, c, tuple.R, []int32{0, 1, 2}, 1)
	mustLayout(t, c, tuple.S, []int32{0, 1, 2, 3}, 1)
	dests, err := c.Route(tuple.New(tuple.R, 1, 0, tuple.Float(1.5)), at(0))
	if err != nil {
		t.Fatal(err)
	}
	// 1 store + broadcast to all 4 S members.
	if len(dests) != 5 {
		t.Fatalf("got %d destinations, want 5", len(dests))
	}
	stats := c.Stats()
	if stats.TuplesRouted != 1 || stats.JoinFanout != 4 || stats.MsgsOut != 5 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestCoreCountersMonotone(t *testing.T) {
	c := newEquiCore(t)
	mustLayout(t, c, tuple.R, []int32{0}, 1)
	mustLayout(t, c, tuple.S, []int32{0}, 1)
	var last uint64
	for i := 0; i < 100; i++ {
		dests, err := c.Route(tuple.New(tuple.R, uint64(i), 0, tuple.Int(int64(i))), at(0))
		if err != nil {
			t.Fatal(err)
		}
		if dests[0].Env.Counter <= last {
			t.Fatalf("counter not monotone: %d after %d", dests[0].Env.Counter, last)
		}
		last = dests[0].Env.Counter
	}
}

func TestCorePunctuate(t *testing.T) {
	c := newEquiCore(t)
	mustLayout(t, c, tuple.R, []int32{0}, 1)
	mustLayout(t, c, tuple.S, []int32{0}, 1)
	routed, err := c.Route(tuple.New(tuple.R, 1, 0, tuple.Int(1)), at(0))
	if err != nil {
		t.Fatal(err)
	}
	dests := c.Punctuate()
	if len(dests) != 4 {
		t.Fatalf("punctuation destinations = %d, want 4 exchanges", len(dests))
	}
	exchanges := map[string]bool{}
	for _, d := range dests {
		exchanges[d.Exchange] = true
		if d.Key != "punct" {
			t.Errorf("punctuation key = %q", d.Key)
		}
		if d.Env.Kind != protocol.KindPunctuation || d.Env.Counter < routed[0].Env.Counter {
			t.Errorf("punctuation env = %+v, must cover stamp %d", d.Env, routed[0].Env.Counter)
		}
	}
	if len(exchanges) != 4 {
		t.Errorf("exchanges = %v", exchanges)
	}
}

func TestCoreMembers(t *testing.T) {
	c := newEquiCore(t)
	mustLayout(t, c, tuple.R, []int32{5, 3}, 1)
	got := c.Members(tuple.R)
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("Members = %v", got)
	}
	if c.ID() != 1 {
		t.Errorf("ID = %d", c.ID())
	}
}

func BenchmarkRouteEqui(b *testing.B) {
	c, _ := NewCore(Config{ID: 1, Pred: predicate.NewEqui(0, 0), Window: testWin()})
	c.SetLayout(tuple.R, []int32{0, 1, 2, 3}, 4, 0)
	c.SetLayout(tuple.S, []int32{0, 1, 2, 3}, 4, 0)
	now := at(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := tuple.New(tuple.R, uint64(i), int64(i), tuple.Int(int64(i&1023)))
		if _, err := c.Route(tp, now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteBandBroadcast8(b *testing.B) {
	c, _ := NewCore(Config{ID: 1, Pred: predicate.NewBand(0, 0, 1), Window: testWin()})
	c.SetLayout(tuple.R, []int32{0, 1, 2, 3, 4, 5, 6, 7}, 1, 0)
	c.SetLayout(tuple.S, []int32{0, 1, 2, 3, 4, 5, 6, 7}, 1, 0)
	now := at(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := tuple.New(tuple.R, uint64(i), int64(i), tuple.Float(float64(i)))
		if _, err := c.Route(tp, now); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGroupUnboundedWindowKeepsGenerationsForever(t *testing.T) {
	g := NewGroup(window.Unbounded())
	g.SetLayout([]int32{0, 1}, 2, 0)
	g.SetLayout([]int32{0, 1, 2}, 3, 60_000)
	// Even eons later, the old generation still receives join fan-out:
	// a full-history join never drains.
	farFuture := int64(1) << 50
	union := map[int32]bool{}
	for h := uint64(0); h < 20; h++ {
		jt, err := g.JoinTargets(h, true, farFuture)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range jt {
			union[m] = true
		}
	}
	if len(union) != 3 || g.Generations() != 2 {
		t.Errorf("union=%v generations=%d", union, g.Generations())
	}
}
