// Package router implements the dispatcher service of §3.1.1: it
// ingests raw tuples, stamps them with the ordering protocol's counter,
// and fans them out onto the store stream (one joiner of the tuple's own
// relation) and the join stream (the joiners of the opposite relation
// that may hold matching tuples), using the routing strategy appropriate
// for the predicate's selectivity (§3.2).
package router

import (
	"fmt"
	"sort"

	"bistream/internal/window"
)

// A Group tracks the layout of one relation's joiner members. Layouts
// are versioned into generations so the engine can scale without data
// migration: stores always use the newest layout, while join fan-out
// covers every generation whose stored tuples may still be in-window.
// Once a retired generation's data has fully expired it is pruned.
type Group struct {
	win  window.Sliding
	gens []*generation
	// retireSlack widens the drain horizon to absorb event-time skew
	// between routing time and tuple timestamps.
	retireSlackMS int64
	// dead marks members whose state has been migrated away: they keep
	// their positional slot in old generations (so subgroup geometry is
	// undisturbed) but are filtered out of join fan-out — their tuples
	// now live on the members the shrunk current layout hashes to.
	dead map[int32]bool
}

type generation struct {
	members   []int32
	subgroups int      // d; 1 = random/broadcast routing, len(members) = pure hash
	rr        []uint64 // round-robin cursor per subgroup (store stream)
	retiredTS int64    // event-time when superseded; 0 while current
}

// NewGroup creates a group with no layout; SetLayout must be called
// before routing.
func NewGroup(win window.Sliding) *Group {
	return &Group{win: win, retireSlackMS: 1000}
}

// SetLayout installs a new layout of members partitioned into the given
// number of subgroups (Table 1's d and e). subgroups must be between 1
// and len(members). Member ids must be unique. The previous layout, if
// any, is retired as of nowTS and continues receiving join fan-out until
// its stored tuples expire.
func (g *Group) SetLayout(members []int32, subgroups int, nowTS int64) error {
	if len(members) == 0 {
		return fmt.Errorf("router: layout needs at least one member")
	}
	if subgroups < 1 || subgroups > len(members) {
		return fmt.Errorf("router: subgroups %d out of range [1,%d]", subgroups, len(members))
	}
	seen := make(map[int32]bool, len(members))
	for _, m := range members {
		if seen[m] {
			return fmt.Errorf("router: duplicate member %d", m)
		}
		seen[m] = true
	}
	if cur := g.current(); cur != nil {
		if sameLayout(cur.members, members) && cur.subgroups == subgroups {
			return nil // no-op
		}
		cur.retiredTS = nowTS
	}
	g.gens = append(g.gens, &generation{
		members:   append([]int32(nil), members...),
		subgroups: subgroups,
		rr:        make([]uint64, subgroups),
	})
	g.prune(nowTS)
	return nil
}

func sameLayout(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (g *Group) current() *generation {
	if len(g.gens) == 0 {
		return nil
	}
	return g.gens[len(g.gens)-1]
}

// Members returns the current layout's members (sorted copy).
func (g *Group) Members() []int32 {
	cur := g.current()
	if cur == nil {
		return nil
	}
	out := append([]int32(nil), cur.members...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Generations returns how many layouts are still live (current plus
// draining retirees).
func (g *Group) Generations() int { return len(g.gens) }

// MarkDead excludes a migrated-away member from all join fan-out, past
// and future generations alike. It must only be called after the
// member's state has been grafted onto survivors of the current layout;
// from then on the current generation's subgroup fan-out covers what
// the old generations would have found on the dead member.
func (g *Group) MarkDead(id int32) {
	if g.dead == nil {
		g.dead = make(map[int32]bool)
	}
	g.dead[id] = true
}

// prune drops retired generations whose stored tuples are all expired:
// a tuple stored under a generation has event time <= retiredTS, so by
// Theorem 1 everything is gone once nowTS - retiredTS > W (+ slack).
// Under a full-history window nothing ever expires, so retired
// generations are kept forever — the price of migration-free scaling
// without a window bound.
func (g *Group) prune(nowTS int64) {
	if g.win.IsUnbounded() {
		return
	}
	keep := g.gens[:0]
	for i, gen := range g.gens {
		if i == len(g.gens)-1 || gen.retiredTS == 0 ||
			nowTS-gen.retiredTS <= g.win.SpanMillis()+g.retireSlackMS {
			keep = append(keep, gen)
		}
	}
	g.gens = keep
}

// subgroupMembers returns the members of subgroup sub (those whose index
// i satisfies i % d == sub).
func (gen *generation) subgroupMembers(sub int) []int32 {
	var out []int32
	for i := sub; i < len(gen.members); i += gen.subgroups {
		out = append(out, gen.members[i])
	}
	return out
}

// StoreTarget picks the joiner that stores a tuple with the given join
// attribute hash: the tuple is hashed to a subgroup of the current
// layout and round-robined within it (random strategy when d == 1,
// pure hash partitioning when d == len(members)).
// partitionable=false ignores the hash and round-robins across the
// whole group — the random strategy, also used for individual hot keys
// under frequency-aware routing.
func (g *Group) StoreTarget(hash uint64, partitionable bool, nowTS int64) (int32, error) {
	g.prune(nowTS)
	cur := g.current()
	if cur == nil {
		return 0, fmt.Errorf("router: no layout installed")
	}
	if !partitionable {
		m := cur.members[cur.rr[0]%uint64(len(cur.members))]
		cur.rr[0]++
		return m, nil
	}
	sub := 0
	if cur.subgroups > 1 {
		sub = int(hash % uint64(cur.subgroups))
	}
	members := cur.subgroupMembers(sub)
	m := members[cur.rr[sub]%uint64(len(members))]
	cur.rr[sub]++
	return m, nil
}

// JoinTargets returns the joiners that must receive the join-stream copy
// of a tuple with the given hash: for every live generation, the whole
// subgroup the hash maps to (all members when not partitionable or
// d == 1). The union across generations guarantees no match is missed
// while a retired layout drains.
func (g *Group) JoinTargets(hash uint64, partitionable bool, nowTS int64) ([]int32, error) {
	g.prune(nowTS)
	if len(g.gens) == 0 {
		return nil, fmt.Errorf("router: no layout installed")
	}
	seen := make(map[int32]bool)
	var out []int32
	for _, gen := range g.gens {
		var members []int32
		if partitionable && gen.subgroups > 1 {
			members = gen.subgroupMembers(int(hash % uint64(gen.subgroups)))
		} else {
			members = gen.members
		}
		for _, m := range members {
			if !seen[m] && !g.dead[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
