package router

import (
	"fmt"
	"sync"
	"time"

	"bistream/internal/metrics"
	"bistream/internal/tuple"
)

// Adapter is the adaptation controller that closes the detect→decide→
// move loop: the HotTracker detects skew and flips per-key placement
// (detect + decide), and the Adapter reacts to each promotion by
// live-migrating the key's already-stored partition from its old hash
// owner to the scattered owners (move), through an engine-supplied
// callback that drives internal/migrate's key-scoped path.
//
// The controller consumes the tracker's event channel and reconciles
// periodically against HotKeys, so dropped events (full channel) only
// delay a migration, never lose it. Migrations run one at a time from
// the controller goroutine — the engine serializes them against
// whole-member migrations anyway — with a per-key cooldown so a failed
// move retries on the next reconcile tick instead of hot-looping.
//
// Demotions need no controller action: the tracker itself drains a
// cooled key (probes keep broadcasting for a window + slack, so tuples
// scattered during the hot era stay reachable until they expire), and
// the scattered tuples are never moved back — reverse migration would
// buy nothing, since hash routing of new stores resumes immediately.
type Adapter struct {
	cfg    AdaptConfig
	events <-chan HotEvent

	stop chan struct{}
	done chan struct{}

	mu          sync.Mutex
	lastAttempt map[uint64]time.Time
	migrated    map[uint64]bool
	inflight    int

	keyMigrations *metrics.Counter
	movedTuples   *metrics.Counter
	failures      *metrics.Counter
}

// AdaptConfig configures an Adapter.
type AdaptConfig struct {
	// Tracker is the shared HotTracker whose transitions drive the
	// controller. Required.
	Tracker *HotTracker
	// MigrateKey moves the stored partition of a newly hot key to its
	// scattered owners for one relation, returning how many tuples
	// moved. Called once per relation per promotion. Required.
	MigrateKey func(rel tuple.Relation, keyHash uint64) (int, error)
	// Metrics receives the controller's instruments under
	// "router_adapt."; nil uses a private registry.
	Metrics *metrics.Registry
	// Cooldown is the minimum gap between migration attempts for one
	// key (default 2s).
	Cooldown time.Duration
	// Reconcile paces the sweep that catches dropped events and retries
	// failed migrations (default 250ms).
	Reconcile time.Duration
}

// MetricsPrefix is the registry subtree the Adapter's instruments live
// under (rendered with underscores by the Prometheus exporter, hence
// the router_adapt_* family).
const MetricsPrefix = "router_adapt."

// NewAdapter builds the controller. Call Start to begin adapting.
func NewAdapter(cfg AdaptConfig) (*Adapter, error) {
	if cfg.Tracker == nil {
		return nil, fmt.Errorf("router: adapter needs a HotTracker")
	}
	if cfg.MigrateKey == nil {
		return nil, fmt.Errorf("router: adapter needs a MigrateKey callback")
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	if cfg.Reconcile <= 0 {
		cfg.Reconcile = 250 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	a := &Adapter{
		cfg:           cfg,
		events:        cfg.Tracker.Watch(64),
		lastAttempt:   make(map[uint64]time.Time),
		migrated:      make(map[uint64]bool),
		keyMigrations: cfg.Metrics.Counter(MetricsPrefix + "key_migrations"),
		movedTuples:   cfg.Metrics.Counter(MetricsPrefix + "moved_tuples"),
		failures:      cfg.Metrics.Counter(MetricsPrefix + "move_failures"),
	}
	cfg.Metrics.GaugeFunc(MetricsPrefix+"promotions", func() float64 {
		p, _ := cfg.Tracker.Counts()
		return float64(p)
	})
	cfg.Metrics.GaugeFunc(MetricsPrefix+"demotions", func() float64 {
		_, d := cfg.Tracker.Counts()
		return float64(d)
	})
	cfg.Metrics.GaugeFunc(MetricsPrefix+"hot_keys", func() float64 {
		return float64(len(cfg.Tracker.HotKeys()))
	})
	cfg.Metrics.GaugeFunc(MetricsPrefix+"inflight", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(a.inflight)
	})
	cfg.Metrics.GaugeFunc(MetricsPrefix+"pending_keys", func() float64 {
		keys := a.scatteredKeys()
		a.mu.Lock()
		defer a.mu.Unlock()
		n := 0
		for _, k := range keys {
			if !a.migrated[k] {
				n++
			}
		}
		return float64(n)
	})
	return a, nil
}

// Start launches the controller goroutine.
func (a *Adapter) Start() {
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go a.loop()
}

// Stop halts the controller, waiting for any in-flight migration to
// finish (migrations carry their own timeout, so this is bounded).
func (a *Adapter) Stop() {
	if a.stop == nil {
		return
	}
	close(a.stop)
	<-a.done
	a.stop = nil
}

// Request asks the controller to consider a key's migration out of
// band — the engine uses it when an operator pins a key hot, which
// flips placement without a tracker promotion event. The migration
// runs asynchronously under the usual cooldown and episode rules.
func (a *Adapter) Request(keyHash uint64) {
	go a.maybeMigrate(keyHash)
}

func (a *Adapter) loop() {
	defer close(a.done)
	ticker := time.NewTicker(a.cfg.Reconcile)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case ev := <-a.events:
			if ev.Promoted {
				a.maybeMigrate(ev.KeyHash)
			} else {
				// Cooled: forget the episode so a re-promotion migrates
				// whatever pile has re-accumulated under hash routing.
				a.mu.Lock()
				delete(a.migrated, ev.KeyHash)
				delete(a.lastAttempt, ev.KeyHash)
				a.mu.Unlock()
			}
		case <-ticker.C:
			for _, k := range a.scatteredKeys() {
				select {
				case <-a.stop:
					return
				default:
				}
				a.maybeMigrate(k)
			}
		}
	}
}

// scatteredKeys lists every key currently under scattered placement —
// tracker promotions plus operator hot pins — so the reconcile sweep
// retries failed migrations for both.
func (a *Adapter) scatteredKeys() []uint64 {
	keys := a.cfg.Tracker.HotKeys()
	for k, hot := range a.cfg.Tracker.PinnedKeys() {
		if hot {
			keys = append(keys, k)
		}
	}
	return keys
}

// maybeMigrate runs the key's migration (both relations) unless it
// already completed this hot episode or the per-key cooldown has not
// elapsed since the previous attempt.
func (a *Adapter) maybeMigrate(keyHash uint64) {
	a.mu.Lock()
	if a.migrated[keyHash] || time.Since(a.lastAttempt[keyHash]) < a.cfg.Cooldown {
		a.mu.Unlock()
		return
	}
	a.lastAttempt[keyHash] = time.Now()
	a.inflight++
	a.mu.Unlock()
	ok := true
	for _, rel := range []tuple.Relation{tuple.R, tuple.S} {
		moved, err := a.cfg.MigrateKey(rel, keyHash)
		if err != nil {
			a.failures.Inc()
			ok = false
			continue
		}
		a.keyMigrations.Inc()
		if moved > 0 {
			a.movedTuples.Add(int64(moved))
		}
	}
	a.mu.Lock()
	a.inflight--
	if ok {
		a.migrated[keyHash] = true
	}
	a.mu.Unlock()
}
