package router

import (
	"fmt"
	"sort"
	"sync"

	"bistream/internal/sketch"
	"bistream/internal/window"
)

// HotTracker implements the frequency-aware ("ContRand") routing
// refinement for equi-joins under skew: keys whose recent share of the
// stream exceeds a threshold are *promoted* — their tuples are stored
// round-robin across the whole group (restoring balance) while their
// join probes broadcast to the whole group (preserving correctness).
// Rare keys keep the cheap one-copy hash routing.
//
// Promotion is monotone-safe: a probe for a newly promoted key
// broadcasts, which is a superset of wherever its partners were stored.
// Demotion is drained like a retired layout generation: for a full
// window (+ slack) after a key cools down, probes keep broadcasting so
// tuples stored under the hot regime are still reachable; only then
// does the key return to single-member routing.
//
// The tracker must be shared by all routers of an engine (it is
// mutex-guarded) so their decisions agree; BiStream achieves the same
// by synchronizing frequency statistics across dispatchers.
type HotTracker struct {
	mu         sync.Mutex
	cm         *sketch.CountMin
	win        window.Sliding
	hotFrac    float64 // promote when share > hotFrac
	coldFrac   float64 // demote when share < coldFrac (hysteresis)
	minSamples uint64  // no decisions before this much traffic
	decayEvery uint64  // halve the sketch every this many observations
	sinceDecay uint64
	slackMS    int64

	hot     map[uint64]struct{} // promoted keys
	demoted map[uint64]int64    // key -> demotion event-time (drain until +W)
	pinned  map[uint64]bool     // operator-pinned placement, exempt from review

	promotions int64
	demotions  int64
	// events receives promotion/demotion notifications for the
	// adaptation controller. Sends are non-blocking — a full channel
	// drops the event, and the controller's periodic reconcile against
	// HotKeys repairs any gap — so the routing hot path never stalls on
	// a slow consumer.
	events chan HotEvent
}

// HotEvent is one placement transition: a key crossed the promotion
// threshold (Promoted true) or cooled below the demotion threshold
// (Promoted false). TS is the event-time of the observation that
// triggered it.
type HotEvent struct {
	KeyHash  uint64
	Promoted bool
	TS       int64
}

// HotConfig configures a HotTracker.
type HotConfig struct {
	// HotFraction promotes keys whose recent traffic share exceeds it
	// (default 0.01 = 1%).
	HotFraction float64
	// Window must match the join window; it sets the demotion drain.
	Window window.Sliding
	// SketchWidth/SketchDepth size the count-min sketch (defaults
	// 4096×4).
	SketchWidth, SketchDepth int
}

// NewHotTracker builds a tracker.
func NewHotTracker(cfg HotConfig) (*HotTracker, error) {
	if cfg.HotFraction <= 0 {
		cfg.HotFraction = 0.01
	}
	if cfg.HotFraction >= 1 {
		return nil, fmt.Errorf("router: hot fraction %v out of range (0,1)", cfg.HotFraction)
	}
	if cfg.SketchWidth <= 0 {
		cfg.SketchWidth = 4096
	}
	if cfg.SketchDepth <= 0 {
		cfg.SketchDepth = 4
	}
	cm, err := sketch.New(cfg.SketchWidth, cfg.SketchDepth)
	if err != nil {
		return nil, err
	}
	return &HotTracker{
		cm:         cm,
		win:        cfg.Window,
		hotFrac:    cfg.HotFraction,
		coldFrac:   cfg.HotFraction / 2,
		minSamples: 512,
		decayEvery: 65536,
		slackMS:    1000,
		hot:        make(map[uint64]struct{}),
		demoted:    make(map[uint64]int64),
		pinned:     make(map[uint64]bool),
	}, nil
}

// Watch returns the tracker's event channel, creating it with the
// given buffer on first call (subsequent calls return the same
// channel). Events are dropped, never blocked on, when the buffer is
// full; consumers reconcile against HotKeys periodically.
func (h *HotTracker) Watch(buf int) <-chan HotEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.events == nil {
		if buf < 1 {
			buf = 64
		}
		h.events = make(chan HotEvent, buf)
	}
	return h.events
}

// notifyLocked records a transition and offers it to the watcher.
// Called with h.mu held.
func (h *HotTracker) notifyLocked(keyHash uint64, promoted bool, nowTS int64) {
	if promoted {
		h.promotions++
	} else {
		h.demotions++
	}
	if h.events == nil {
		return
	}
	select {
	case h.events <- HotEvent{KeyHash: keyHash, Promoted: promoted, TS: nowTS}:
	default:
	}
}

// Counts reports the cumulative promotion and demotion transitions.
func (h *HotTracker) Counts() (promotions, demotions int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.promotions, h.demotions
}

// Pin forces a key's placement: hot pins scattered-store/broadcast-
// probe, cold pins plain hash routing. Pinned keys are exempt from
// promotion, demotion and review until Unpin — the operator override
// for keys the sketch misjudges (or for pre-warming a key known to
// spike). Pinning emits no events and triggers no migration.
func (h *HotTracker) Pin(keyHash uint64, hot bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pinned[keyHash] = hot
	delete(h.hot, keyHash)
	delete(h.demoted, keyHash)
}

// Unpin removes a manual pin. A previously pinned-hot key re-enters
// the demotion drain so tuples stored under the pinned regime stay
// reachable for a full window before hash routing resumes; the drain
// is announced as a demotion so the adaptation controller forgets the
// key's migration episode.
func (h *HotTracker) Unpin(keyHash uint64, nowTS int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	wasHot := h.pinned[keyHash]
	delete(h.pinned, keyHash)
	if wasHot {
		h.demoted[keyHash] = nowTS
		h.notifyLocked(keyHash, false, nowTS)
	}
}

// PinnedKeys returns the pinned key hashes and their pinned placement
// (diagnostics).
func (h *HotTracker) PinnedKeys() map[uint64]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[uint64]bool, len(h.pinned))
	for k, v := range h.pinned {
		out[k] = v
	}
	return out
}

// Observe records one occurrence of the key hash and updates its
// promotion state. It returns the routing decision for this tuple:
// storeHot (scatter the store) and joinHot (broadcast the probe).
func (h *HotTracker) Observe(keyHash uint64, nowTS int64) (storeHot, joinHot bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	est := h.cm.Add(keyHash, 1)
	h.sinceDecay++
	if h.sinceDecay >= h.decayEvery {
		h.cm.Halve()
		h.sinceDecay = 0
		h.reviewLocked(nowTS)
	}
	if p, ok := h.pinned[keyHash]; ok {
		return p, p
	}
	total := h.cm.Total()
	_, isHot := h.hot[keyHash]
	if total >= h.minSamples {
		share := float64(est) / float64(total)
		switch {
		case !isHot && share > h.hotFrac:
			h.hot[keyHash] = struct{}{}
			delete(h.demoted, keyHash) // re-promoted while draining
			isHot = true
			h.notifyLocked(keyHash, true, nowTS)
		case isHot && share < h.coldFrac:
			delete(h.hot, keyHash)
			h.demoted[keyHash] = nowTS
			isHot = false
			h.notifyLocked(keyHash, false, nowTS)
		}
	}
	if isHot {
		return true, true
	}
	if demotedTS, draining := h.demoted[keyHash]; draining {
		if h.win.IsUnbounded() || nowTS-demotedTS <= h.win.SpanMillis()+h.slackMS {
			// Stores go back to the hash member immediately; probes
			// keep broadcasting until the hot-era tuples expire.
			return false, true
		}
		delete(h.demoted, keyHash)
	}
	return false, false
}

// reviewLocked runs on decay ticks: it demotes promoted keys whose
// share has collapsed (a key that vanishes from the stream is never
// observed again, so demotion cannot rely on observation alone) and
// drops fully drained demotions.
func (h *HotTracker) reviewLocked(nowTS int64) {
	total := h.cm.Total()
	if total >= h.minSamples {
		for k := range h.hot {
			if float64(h.cm.Estimate(k))/float64(total) < h.coldFrac {
				delete(h.hot, k)
				h.demoted[k] = nowTS
				h.notifyLocked(k, false, nowTS)
			}
		}
	}
	if h.win.IsUnbounded() {
		return
	}
	for k, ts := range h.demoted {
		if nowTS-ts > h.win.SpanMillis()+h.slackMS {
			delete(h.demoted, k)
		}
	}
}

// Status reports the routing decision for a key without recording an
// observation (diagnostics and tests).
func (h *HotTracker) Status(keyHash uint64, nowTS int64) (storeHot, joinHot bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.pinned[keyHash]; ok {
		return p, p
	}
	if _, isHot := h.hot[keyHash]; isHot {
		return true, true
	}
	if demotedTS, draining := h.demoted[keyHash]; draining {
		if h.win.IsUnbounded() || nowTS-demotedTS <= h.win.SpanMillis()+h.slackMS {
			return false, true
		}
	}
	return false, false
}

// HotKeys returns the promoted key hashes (sorted, for diagnostics).
func (h *HotTracker) HotKeys() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, 0, len(h.hot))
	for k := range h.hot {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
