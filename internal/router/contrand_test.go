package router

import (
	"math/rand"
	"testing"
	"time"

	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

func newTracker(t *testing.T, frac float64) *HotTracker {
	t.Helper()
	h, err := NewHotTracker(HotConfig{HotFraction: frac, Window: testWin()})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHotTrackerValidation(t *testing.T) {
	if _, err := NewHotTracker(HotConfig{HotFraction: 1.5}); err == nil {
		t.Error("fraction >= 1 accepted")
	}
	if h, err := NewHotTracker(HotConfig{}); err != nil || h == nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestHotTrackerPromotesSkewedKey(t *testing.T) {
	h := newTracker(t, 0.05)
	rng := rand.New(rand.NewSource(1))
	hotSeen := false
	for i := 0; i < 10000; i++ {
		var key uint64
		if rng.Float64() < 0.3 {
			key = 42 // 30% of traffic
		} else {
			key = uint64(1000 + rng.Intn(100000))
		}
		storeHot, joinHot := h.Observe(key, int64(i))
		if key == 42 && storeHot && joinHot {
			hotSeen = true
		}
		if key != 42 && storeHot {
			t.Fatalf("cold key %d promoted", key)
		}
	}
	if !hotSeen {
		t.Error("30% key never promoted at 5% threshold")
	}
	if keys := h.HotKeys(); len(keys) != 1 || keys[0] != 42 {
		t.Errorf("HotKeys = %v", keys)
	}
}

func TestHotTrackerColdTrafficStaysCold(t *testing.T) {
	h := newTracker(t, 0.01)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		key := uint64(rng.Intn(1_000_000))
		if storeHot, _ := h.Observe(key, int64(i)); storeHot {
			t.Fatalf("uniform key %d promoted", key)
		}
	}
}

// TestHotTrackerDemotionDrains verifies the correctness-critical drain:
// after a hot key cools, probes keep broadcasting for a full window
// before single-member routing resumes.
func TestHotTrackerDemotionDrains(t *testing.T) {
	h := newTracker(t, 0.05)
	h.minSamples = 10
	h.decayEvery = 200 // frequent decay so the share drops quickly
	// Phase 1: promote key 7.
	now := int64(0)
	for i := 0; i < 500; i++ {
		h.Observe(7, now)
		now++
	}
	if _, joinHot := h.Observe(7, now); !joinHot {
		t.Fatal("key 7 not promoted")
	}
	// Phase 2: key 7 disappears; other traffic decays its share until
	// the periodic review demotes it.
	demotedAt := int64(-1)
	for i := 0; i < 50000 && demotedAt < 0; i++ {
		now++
		h.Observe(uint64(100+i%1000), now)
		if storeHot, joinHot := h.Status(7, now); !storeHot {
			if !joinHot {
				t.Fatal("demoted key lost its drain broadcast immediately")
			}
			demotedAt = now
		}
	}
	if demotedAt < 0 {
		t.Fatal("key 7 never demoted")
	}
	// During the drain window probes still broadcast…
	if _, joinHot := h.Status(7, demotedAt+testWin().SpanMillis()/2); !joinHot {
		t.Error("probe broadcast lost during drain window")
	}
	// …and after window+slack the key is fully cold.
	if _, joinHot := h.Status(7, demotedAt+testWin().SpanMillis()+10_000); joinHot {
		t.Error("drain never ended")
	}
}

func TestRouteWithContRandScattersHotStores(t *testing.T) {
	hot := newTracker(t, 0.05)
	c, err := NewCore(Config{
		ID: 1, Pred: predicate.NewEqui(0, 0), Window: testWin(), Hot: hot,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustLayout(t, c, tuple.R, []int32{0, 1, 2, 3}, 4)
	mustLayout(t, c, tuple.S, []int32{0, 1, 2, 3}, 4)
	// All traffic is one key: it must be promoted, after which stores
	// spread across members and joins broadcast.
	storeMembers := map[string]bool{}
	var lastFanout int
	for i := 0; i < 2000; i++ {
		dests, err := c.Route(tuple.New(tuple.R, uint64(i+1), int64(i), tuple.Int(7)), at(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		storeMembers[dests[0].Key] = true
		lastFanout = len(dests) - 1
	}
	if len(storeMembers) != 4 {
		t.Errorf("hot stores hit %d members, want all 4", len(storeMembers))
	}
	if lastFanout != 4 {
		t.Errorf("hot join fanout = %d, want broadcast to 4", lastFanout)
	}
}

func TestContRandExactlyOnceUnderChurn(t *testing.T) {
	// Reference check through the routing layer: every (r, s) pair must
	// meet at exactly one joiner even as the key's hotness flips.
	hot := newTracker(t, 0.05)
	hot.minSamples = 50
	hot.decayEvery = 500
	c, err := NewCore(Config{
		ID: 1, Pred: predicate.NewEqui(0, 0), Window: window.Sliding{Span: time.Hour}, Hot: hot,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustLayout(t, c, tuple.R, []int32{0, 1, 2}, 3)
	mustLayout(t, c, tuple.S, []int32{0, 1, 2}, 3)

	// stored[member][key] counts R tuples stored per member.
	stored := map[string]map[int64]int{}
	type probe struct {
		key     int64
		targets map[string]bool
	}
	var probes []probe
	rng := rand.New(rand.NewSource(3))
	now := int64(0)
	for i := 0; i < 6000; i++ {
		now += 10
		var key int64
		switch {
		case i < 2000:
			key = 7 // hot phase
		case rng.Float64() < 0.05:
			key = 7 // cooling phase: occasional
		default:
			key = int64(100 + rng.Intn(5000))
		}
		if i%2 == 0 {
			dests, err := c.Route(tuple.New(tuple.R, uint64(i+1), now, tuple.Int(key)), at(now))
			if err != nil {
				t.Fatal(err)
			}
			m := dests[0].Key
			if stored[m] == nil {
				stored[m] = map[int64]int{}
			}
			stored[m][key]++
		} else {
			dests, err := c.Route(tuple.New(tuple.S, uint64(i+1), now, tuple.Int(key)), at(now))
			if err != nil {
				t.Fatal(err)
			}
			targets := map[string]bool{}
			for _, d := range dests[1:] { // skip the S store copy
				targets[d.Key] = true
			}
			probes = append(probes, probe{key: key, targets: targets})
		}
	}
	// Every probe must cover every member holding its key (stored
	// before the probe — we check against the final state, which is a
	// superset, so allow the check only for members with stores; a
	// missed member is a correctness bug).
	for _, p := range probes[len(probes)/2:] { // later probes see most state
		for m, keys := range stored {
			if keys[p.key] > 0 && !p.targets[m] {
				t.Fatalf("probe for key %d missed member %s holding %d copies",
					p.key, m, keys[p.key])
			}
		}
	}
}
