package router

import (
	"fmt"
	"sync"
	"time"

	"bistream/internal/broker"
	"bistream/internal/topo"
	"bistream/internal/tuple"
	"bistream/internal/vclock"
)

// Service connects a router core to the broker: it competes with its
// sibling router instances for raw tuples on the entry queue, fans each
// out through the core, and emits punctuation signals periodically.
type Service struct {
	core   *Core
	client broker.Client
	clock  vclock.Clock
	punct  time.Duration

	mu       sync.Mutex
	coreMu   sync.Mutex // serializes access to the (non-thread-safe) core
	cons     broker.Consumer
	stopCh   chan struct{}
	doneCh   chan struct{}
	puncDone chan struct{}
	started  bool
}

// ServiceConfig configures a router service.
type ServiceConfig struct {
	// PunctuationInterval is how often the router broadcasts punctuation
	// signals; the text suggests every 20ms.
	PunctuationInterval time.Duration
	// Prefetch bounds in-flight deliveries from the entry queue.
	Prefetch int
}

// DefaultPunctuationInterval mirrors the 20ms suggestion of §3.3.
const DefaultPunctuationInterval = 20 * time.Millisecond

// NewService wraps core with a broker-backed service. clock defaults to
// the wall clock.
func NewService(core *Core, client broker.Client, clock vclock.Clock, cfg ServiceConfig) *Service {
	if clock == nil {
		clock = vclock.Real{}
	}
	if cfg.PunctuationInterval <= 0 {
		cfg.PunctuationInterval = DefaultPunctuationInterval
	}
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 64
	}
	return &Service{
		core:   core,
		client: client,
		clock:  clock,
		punct:  cfg.PunctuationInterval,
		stopCh: make(chan struct{}),
	}
}

// Start declares topology, attaches to the entry queue and launches the
// routing and punctuation loops.
func (s *Service) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("router: service already started")
	}
	if err := topo.Declare(s.client); err != nil {
		return err
	}
	cons, err := s.client.Consume(topo.EntryQueue, 64, true)
	if err != nil {
		return err
	}
	s.cons = cons
	s.doneCh = make(chan struct{})
	s.puncDone = make(chan struct{})
	s.started = true
	go s.routeLoop()
	go s.punctuationLoop()
	return nil
}

// Stop cancels consumption and halts the loops. It emits one final
// punctuation so joiners can release everything already sent.
func (s *Service) Stop() { s.stop(false) }

// Retire stops the service and broadcasts the router's tombstone, which
// unregisters it from every joiner's frontier table (scale-in).
func (s *Service) Retire() { s.stop(true) }

func (s *Service) stop(retire bool) {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	close(s.stopCh)
	cons := s.cons
	s.mu.Unlock()
	cons.Cancel()
	<-s.doneCh
	<-s.puncDone
	if retire {
		s.coreMu.Lock()
		dests := s.core.Retire()
		s.coreMu.Unlock()
		for _, dst := range dests {
			if err := s.client.Publish(dst.Exchange, dst.Key, nil, dst.Env.Marshal()); err != nil {
				break
			}
		}
		// A retired router's series would otherwise linger frozen in
		// every future scrape; drop its registry subtree.
		s.core.cfg.Metrics.UnregisterPrefix(s.core.prefix)
		return
	}
	s.publishPunctuation()
}

// ID returns the router's protocol id.
func (s *Service) ID() int32 { return s.core.ID() }

// SetLayout forwards a layout change to the core, serialized against
// the routing loop.
func (s *Service) SetLayout(rel tuple.Relation, members []int32, subgroups int, nowTS int64) error {
	s.coreMu.Lock()
	defer s.coreMu.Unlock()
	return s.core.SetLayout(rel, members, subgroups, nowTS)
}

// Stats snapshots the core's counters, serialized against the routing
// loop.
func (s *Service) Stats() Stats {
	s.coreMu.Lock()
	defer s.coreMu.Unlock()
	return s.core.Stats()
}

// routeLoop stamps and publishes under coreMu as one atomic step: a
// punctuation carrying value P promises that every tuple stamped <= P
// has already been published (pairwise FIFO then delivers it first), so
// the stamp and its publish must not interleave with a punctuation
// publish.
func (s *Service) routeLoop() {
	defer close(s.doneCh)
	for d := range s.cons.Deliveries() {
		t, err := tuple.Unmarshal(d.Body)
		if err != nil {
			continue // poison message; drop
		}
		if s.core.cfg.StampIngest && t.TraceNS == 0 {
			t.TraceNS = s.core.cfg.Trace.Stamp()
		}
		s.coreMu.Lock()
		dests, err := s.core.Route(t, s.clock.Now())
		if err != nil {
			s.coreMu.Unlock()
			continue // no layout yet; drop rather than wedge the queue
		}
		for _, dst := range dests {
			if err := s.client.Publish(dst.Exchange, dst.Key, nil, dst.Env.Marshal()); err != nil {
				s.coreMu.Unlock()
				return
			}
		}
		s.coreMu.Unlock()
	}
}

// punctuationLoop paces punctuation on the wall clock even when the
// engine runs under a simulated clock: the cadence bounds result
// latency but does not affect correctness or the experiments' virtual
// time, and a simulated clock only advances when its driver says so,
// which would starve the protocol.
func (s *Service) punctuationLoop() {
	defer close(s.puncDone)
	for {
		select {
		case <-s.stopCh:
			return
		case <-time.After(s.punct):
			s.publishPunctuation()
		}
	}
}

// publishPunctuation holds coreMu across the signal's computation and
// publish; see routeLoop for why.
func (s *Service) publishPunctuation() {
	s.coreMu.Lock()
	defer s.coreMu.Unlock()
	for _, dst := range s.core.Punctuate() {
		if err := s.client.Publish(dst.Exchange, dst.Key, nil, dst.Env.Marshal()); err != nil {
			return
		}
	}
}
