package router

import (
	"fmt"
	"sync"
	"time"

	"bistream/internal/broker"
	"bistream/internal/metrics"
	"bistream/internal/topo"
	"bistream/internal/tuple"
	"bistream/internal/vclock"
)

// Service connects a router core to the broker: it competes with its
// sibling router instances for raw tuples on the entry queue, fans each
// out through the core, and emits punctuation signals periodically.
//
// Consumption is manual-ack: an entry tuple is acknowledged only after
// every copy of its fan-out was published, so a router crash mid-fanout
// requeues the tuple for a sibling (or a restart) instead of losing it.
// The partially published copies become duplicates on redelivery; the
// joiners' idempotency filter absorbs them.
type Service struct {
	core   *Core
	client broker.Client
	clock  vclock.Clock
	punct  time.Duration

	mu       sync.Mutex
	coreMu   sync.Mutex // serializes access to the (non-thread-safe) core
	cons     broker.Consumer
	stopCh   chan struct{}
	doneCh   chan struct{}
	puncDone chan struct{}
	started  bool

	redelivered   *metrics.Counter
	publishErrors *metrics.Counter
	ackErrors     *metrics.Counter
	poison        *metrics.Counter
}

// ServiceConfig configures a router service.
type ServiceConfig struct {
	// PunctuationInterval is how often the router broadcasts punctuation
	// signals; the text suggests every 20ms.
	PunctuationInterval time.Duration
	// Prefetch bounds in-flight deliveries from the entry queue.
	Prefetch int
}

// DefaultPunctuationInterval mirrors the 20ms suggestion of §3.3.
const DefaultPunctuationInterval = 20 * time.Millisecond

// publishRetryDelay spaces redeliveries after a failed fan-out publish
// or a not-yet-installed layout: the nacked tuple returns to the queue
// head, and without a pause the consume loop would spin through the
// redelivery bound during a broker outage.
const publishRetryDelay = 5 * time.Millisecond

// NewService wraps core with a broker-backed service. clock defaults to
// the wall clock.
func NewService(core *Core, client broker.Client, clock vclock.Clock, cfg ServiceConfig) *Service {
	if clock == nil {
		clock = vclock.Real{}
	}
	if cfg.PunctuationInterval <= 0 {
		cfg.PunctuationInterval = DefaultPunctuationInterval
	}
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 64
	}
	reg, prefix := core.cfg.Metrics, core.prefix
	return &Service{
		core:          core,
		client:        client,
		clock:         clock,
		punct:         cfg.PunctuationInterval,
		redelivered:   reg.Counter(prefix + "redelivered"),
		publishErrors: reg.Counter(prefix + "publish_errors"),
		ackErrors:     reg.Counter(prefix + "ack_errors"),
		poison:        reg.Counter(prefix + "poison"),
	}
}

// Start declares topology, attaches to the entry queue and launches the
// routing and punctuation loops. A stopped service can be started
// again.
func (s *Service) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("router: service already started")
	}
	if err := topo.Declare(s.client); err != nil {
		return err
	}
	cons, err := s.client.Consume(topo.EntryQueue, 64, false)
	if err != nil {
		return err
	}
	s.cons = cons
	s.stopCh = make(chan struct{})
	s.doneCh = make(chan struct{})
	s.puncDone = make(chan struct{})
	s.started = true
	go s.routeLoop(cons, s.stopCh, s.doneCh)
	go s.punctuationLoop(s.stopCh, s.puncDone)
	return nil
}

// Stop cancels consumption and halts the loops. It emits one final
// punctuation so joiners can release everything already sent.
func (s *Service) Stop() { s.stop(false) }

// Retire stops the service and broadcasts the router's tombstone, which
// unregisters it from every joiner's frontier table (scale-in).
func (s *Service) Retire() { s.stop(true) }

func (s *Service) stop(retire bool) {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	close(s.stopCh)
	cons := s.cons
	doneCh, puncDone := s.doneCh, s.puncDone
	s.mu.Unlock()
	cons.Cancel()
	<-doneCh
	<-puncDone
	if retire {
		s.coreMu.Lock()
		dests := s.core.Retire()
		s.coreMu.Unlock()
		for _, dst := range dests {
			if err := s.client.Publish(dst.Exchange, dst.Key, nil, dst.Env.Marshal()); err != nil {
				s.publishErrors.Inc()
				break
			}
		}
		// A retired router's series would otherwise linger frozen in
		// every future scrape; drop its registry subtree.
		s.core.cfg.Metrics.UnregisterPrefix(s.core.prefix)
		return
	}
	s.publishPunctuation()
}

// ID returns the router's protocol id.
func (s *Service) ID() int32 { return s.core.ID() }

// SetLayout forwards a layout change to the core, serialized against
// the routing loop.
func (s *Service) SetLayout(rel tuple.Relation, members []int32, subgroups int, nowTS int64) error {
	s.coreMu.Lock()
	defer s.coreMu.Unlock()
	return s.core.SetLayout(rel, members, subgroups, nowTS)
}

// RetireMember forwards a dead-member mark to the core, serialized
// against the routing loop: once it returns, no future fan-out of this
// router targets the member.
func (s *Service) RetireMember(rel tuple.Relation, id int32) {
	s.coreMu.Lock()
	defer s.coreMu.Unlock()
	s.core.RetireMember(rel, id)
}

// StampCursor reads the core stamper's cursor under coreMu, so every
// stamp at or below the returned value has been published (stamping and
// publishing are one atomic step in the route loop).
func (s *Service) StampCursor() uint64 {
	s.coreMu.Lock()
	defer s.coreMu.Unlock()
	return s.core.StampCursor()
}

// Stats snapshots the core's counters, serialized against the routing
// loop.
func (s *Service) Stats() Stats {
	s.coreMu.Lock()
	defer s.coreMu.Unlock()
	return s.core.Stats()
}

// routeLoop stamps and publishes under coreMu as one atomic step: a
// punctuation carrying value P promises that every tuple stamped <= P
// has already been published (pairwise FIFO then delivers it first), so
// the stamp and its publish must not interleave with a punctuation
// publish.
//
// Failure handling: a tuple whose fan-out cannot complete (no layout
// yet, or a publish error) is nack-requeued and retried — by this
// router, a sibling, or a restart — rather than dropped or allowed to
// kill the loop. The broker dead-letters it if it exhausts the entry
// queue's redelivery bound.
func (s *Service) routeLoop(cons broker.Consumer, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for d := range cons.Deliveries() {
		if d.Redelivered {
			s.redelivered.Inc()
		}
		t, err := tuple.Unmarshal(d.Body)
		if err != nil {
			s.poison.Inc()
			if err := cons.Nack(d.Tag, false); err != nil { // dead-letter
				s.ackErrors.Inc()
			}
			continue
		}
		if s.core.cfg.StampIngest && t.TraceNS == 0 {
			t.TraceNS = s.core.cfg.Trace.Stamp()
		}
		s.coreMu.Lock()
		dests, err := s.core.Route(t, s.clock.Now())
		if err != nil {
			// No layout installed yet: requeue and pause so the tuple
			// waits for SetLayout instead of spinning at the queue head.
			s.coreMu.Unlock()
			if err := cons.Nack(d.Tag, true); err != nil {
				s.ackErrors.Inc()
			}
			s.pause(stop)
			continue
		}
		failed := false
		for _, dst := range dests {
			if err := s.client.Publish(dst.Exchange, dst.Key, nil, dst.Env.Marshal()); err != nil {
				s.publishErrors.Inc()
				failed = true
				break
			}
		}
		s.coreMu.Unlock()
		if failed {
			// Partial fan-out: requeue the whole tuple. Copies already
			// published repeat on retry; joiner dedup suppresses them.
			if err := cons.Nack(d.Tag, true); err != nil {
				s.ackErrors.Inc()
			}
			s.pause(stop)
			continue
		}
		if err := cons.Ack(d.Tag); err != nil {
			s.ackErrors.Inc()
		}
	}
}

// pause sleeps publishRetryDelay or until stop closes.
func (s *Service) pause(stop <-chan struct{}) {
	select {
	case <-stop:
	case <-time.After(publishRetryDelay):
	}
}

// punctuationLoop paces punctuation on the wall clock even when the
// engine runs under a simulated clock: the cadence bounds result
// latency but does not affect correctness or the experiments' virtual
// time, and a simulated clock only advances when its driver says so,
// which would starve the protocol.
func (s *Service) punctuationLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-time.After(s.punct):
			s.publishPunctuation()
		}
	}
}

// publishPunctuation holds coreMu across the signal's computation and
// publish; see routeLoop for why. A failed punctuation publish is
// counted but not retried: punctuation is periodic and idempotent
// (frontiers are max-merged), so the next tick repairs the gap.
func (s *Service) publishPunctuation() {
	s.coreMu.Lock()
	defer s.coreMu.Unlock()
	for _, dst := range s.core.Punctuate() {
		if err := s.client.Publish(dst.Exchange, dst.Key, nil, dst.Env.Marshal()); err != nil {
			s.publishErrors.Inc()
			return
		}
	}
}
