package router

import (
	"fmt"
	"time"

	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/topo"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// Destination is one broker publish the router must perform for a
// routed tuple or punctuation.
type Destination struct {
	Exchange string
	Key      string
	Env      protocol.Envelope
}

// Config configures a router core.
type Config struct {
	// ID identifies this router instance in the ordering protocol.
	ID int32
	// Pred is the join predicate; its partitionability selects the
	// routing strategy (§3.2).
	Pred predicate.Predicate
	// Window is the sliding window, needed to know when retired layouts
	// have drained.
	Window window.Sliding
	// Hot enables frequency-aware (ContRand) routing for partitionable
	// predicates: hot keys scatter stores and broadcast probes, cold
	// keys keep one-copy hash routing. The tracker must be shared by
	// every router of the engine so decisions agree.
	Hot *HotTracker
	// Metrics is the registry the router's instruments live in under
	// "router.<id>."; nil creates a private registry (counters still
	// work, nothing is exported).
	Metrics *metrics.Registry
	// Trace folds sampled per-tuple stage timings into the shared stage
	// histograms; nil disables tracing at this tier.
	Trace *metrics.Tracer
	// StampIngest makes this router the tracing ingest edge: unstamped
	// tuples get a sampled trace stamp on arrival. Standalone routerd
	// sets it (sources publish raw tuples); the in-process engine leaves
	// it off because Engine.Ingest already stamps ahead of the entry
	// queue.
	StampIngest bool
}

// Stats is a snapshot of a router's counters, the "statistics related
// to input data" §3.1.1 assigns to the router service.
type Stats struct {
	TuplesRouted int64   // tuples ingested and fanned out
	MsgsOut      int64   // envelopes published (store + join + punct)
	JoinFanout   int64   // join-stream copies published
	InputRate    float64 // smoothed tuples/s
}

// Core is the synchronous routing logic, shared by the broker-backed
// service and by tests. It is not safe for concurrent use; Service
// serializes access.
type Core struct {
	cfg     Config
	prefix  string // registry name prefix, "router.<id>."
	stamper *protocol.Stamper
	groups  [2]*Group // indexed by tuple.Relation

	tuplesRouted *metrics.Counter
	msgsOut      *metrics.Counter
	joinFanout   *metrics.Counter
	meter        *metrics.Meter
}

// MetricsPrefix returns the router's registry name prefix.
func (c *Core) MetricsPrefix() string { return c.prefix }

// NewCore builds a router core. Layouts must be installed with
// SetLayout before routing.
func NewCore(cfg Config) (*Core, error) {
	if cfg.Pred == nil {
		return nil, fmt.Errorf("router: predicate is required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	prefix := fmt.Sprintf("router.%d.", cfg.ID)
	// An unbounded window (full-history join) is allowed: retired
	// layout generations then simply never drain.
	return &Core{
		cfg:          cfg,
		prefix:       prefix,
		stamper:      protocol.NewStamper(cfg.ID),
		groups:       [2]*Group{NewGroup(cfg.Window), NewGroup(cfg.Window)},
		tuplesRouted: cfg.Metrics.Counter(prefix + "routed"),
		msgsOut:      cfg.Metrics.Counter(prefix + "msgs_out"),
		joinFanout:   cfg.Metrics.Counter(prefix + "join_fanout"),
		meter:        cfg.Metrics.Meter(prefix+"input_rate", 5*time.Second),
	}, nil
}

// ID returns the router's protocol id.
func (c *Core) ID() int32 { return c.cfg.ID }

// SetLayout installs the joiner layout for one relation's group.
// subgroups follows §3.2: 1 for the random strategy (high-selectivity
// predicates), len(members) for pure hash partitioning (equi-joins),
// anything between for the subgroup hybrid. Non-partitionable
// predicates require subgroups == 1.
func (c *Core) SetLayout(rel tuple.Relation, members []int32, subgroups int, nowTS int64) error {
	if subgroups != 1 && !c.cfg.Pred.Partitionable() {
		return fmt.Errorf("router: predicate %v is not partitionable; use subgroups=1", c.cfg.Pred)
	}
	return c.groups[rel].SetLayout(members, subgroups, nowTS)
}

// Members returns the current layout of one relation's group.
func (c *Core) Members(rel tuple.Relation) []int32 { return c.groups[rel].Members() }

// RetireMember marks a migrated-away joiner dead in one relation's
// group: it keeps its slot in draining generations (subgroup geometry
// is positional) but stops receiving join fan-out. Call only after its
// state has been grafted onto the current layout's survivors.
func (c *Core) RetireMember(rel tuple.Relation, id int32) { c.groups[rel].MarkDead(id) }

// StampCursor returns the stamper's last issued counter. Because the
// service stamps and publishes as one atomic step, every tuple stamped
// at or below the cursor has already been handed to the broker — the
// property migration's drain barriers are built on.
func (c *Core) StampCursor() uint64 { return c.stamper.Current() }

// Route stamps the tuple and computes its destinations: exactly one
// store copy on the tuple's own side and one join copy per opposite
// joiner that may hold matches. now is the current (virtual) time used
// for rate tracking and layout pruning.
func (c *Core) Route(t *tuple.Tuple, now time.Time) ([]Destination, error) {
	part := c.cfg.Pred.Partitionable()
	nowTS := now.UnixMilli()
	var hash uint64
	storePart, joinPart := part, part
	if part {
		attr := c.cfg.Pred.IndexAttr(t.Rel)
		hash = t.Value(attr).Hash()
		if c.cfg.Hot != nil {
			storeHot, joinHot := c.cfg.Hot.Observe(hash, nowTS)
			storePart = !storeHot
			joinPart = !joinHot
		}
	}
	storeMember, err := c.groups[t.Rel].StoreTarget(hash, storePart, nowTS)
	if err != nil {
		return nil, err
	}
	joinMembers, err := c.groups[t.Rel.Opposite()].JoinTargets(hash, joinPart, nowTS)
	if err != nil {
		return nil, err
	}
	counter := c.stamper.Next()
	dests := make([]Destination, 0, 1+len(joinMembers))
	dests = append(dests, Destination{
		Exchange: topo.StoreExchange(t.Rel),
		Key:      topo.MemberKey(storeMember),
		Env: protocol.Envelope{
			Kind: protocol.KindTuple, RouterID: c.cfg.ID, Counter: counter,
			Stream: protocol.StreamStore, Tuple: t,
		},
	})
	for _, m := range joinMembers {
		dests = append(dests, Destination{
			Exchange: topo.JoinExchange(t.Rel),
			Key:      topo.MemberKey(m),
			Env: protocol.Envelope{
				Kind: protocol.KindTuple, RouterID: c.cfg.ID, Counter: counter,
				Stream: protocol.StreamJoin, Tuple: t,
			},
		})
	}
	c.tuplesRouted.Inc()
	c.msgsOut.Add(int64(len(dests)))
	c.joinFanout.Add(int64(len(joinMembers)))
	c.meter.Observe(now, 1)
	c.cfg.Trace.Observe(metrics.StageRoute, t.TraceNS)
	return dests, nil
}

// Punctuate emits the periodic punctuation signal (§3.3) to every
// joiner queue: one publish per relation per exchange under the shared
// punct binding key.
func (c *Core) Punctuate() []Destination {
	env := protocol.Envelope{
		Kind:     protocol.KindPunctuation,
		RouterID: c.cfg.ID,
		Counter:  c.stamper.Punctuation(),
	}
	dests := []Destination{
		{Exchange: topo.StoreExchange(tuple.R), Key: topo.PunctKey, Env: env},
		{Exchange: topo.StoreExchange(tuple.S), Key: topo.PunctKey, Env: env},
		{Exchange: topo.JoinExchange(tuple.R), Key: topo.PunctKey, Env: env},
		{Exchange: topo.JoinExchange(tuple.S), Key: topo.PunctKey, Env: env},
	}
	c.msgsOut.Add(int64(len(dests)))
	return dests
}

// Retire emits the router's tombstone to every joiner queue: it acts as
// a final punctuation and unregisters this router from each joiner's
// frontier table, so a scaled-in router can never stall the protocol.
func (c *Core) Retire() []Destination {
	env := protocol.Envelope{
		Kind:     protocol.KindRetire,
		RouterID: c.cfg.ID,
		Counter:  c.stamper.Punctuation(),
	}
	dests := []Destination{
		{Exchange: topo.StoreExchange(tuple.R), Key: topo.PunctKey, Env: env},
		{Exchange: topo.StoreExchange(tuple.S), Key: topo.PunctKey, Env: env},
		{Exchange: topo.JoinExchange(tuple.R), Key: topo.PunctKey, Env: env},
		{Exchange: topo.JoinExchange(tuple.S), Key: topo.PunctKey, Env: env},
	}
	c.msgsOut.Add(int64(len(dests)))
	return dests
}

// Stats snapshots the router's counters.
func (c *Core) Stats() Stats {
	return Stats{
		TuplesRouted: c.tuplesRouted.Value(),
		MsgsOut:      c.msgsOut.Value(),
		JoinFanout:   c.joinFanout.Value(),
		InputRate:    c.meter.Rate(),
	}
}
