package broker

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// durableBroker opens a durable broker over dir; the caller reopens by
// calling it again after Close.
func durableBroker(t *testing.T, dir string) *Broker {
	t.Helper()
	b, err := NewDurable(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func declareDurable(t *testing.T, b *Broker, ex, q string) {
	t.Helper()
	if err := b.DeclareExchange(ex, Topic); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue(q, QueueOptions{Durable: true}); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(q, ex, "#"); err != nil {
		t.Fatal(err)
	}
}

func TestDurableMessagesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	b := durableBroker(t, dir)
	declareDurable(t, b, "ex", "q")
	for i := 0; i < 5; i++ {
		if err := b.Publish("ex", "k", map[string]string{"n": string(rune('0' + i))}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2 := durableBroker(t, dir)
	defer b2.Close()
	st, err := b2.QueueStats("q")
	if err != nil {
		t.Fatalf("queue not recovered: %v", err)
	}
	if st.Ready != 5 {
		t.Fatalf("recovered ready = %d, want 5", st.Ready)
	}
	// Order and contents survive; the binding does too (publish routes).
	c, err := b2.Consume("q", 8, false)
	if err != nil {
		t.Fatal(err)
	}
	ds := drain(t, c, 5, 2*time.Second)
	for i, d := range ds {
		if d.Body[0] != byte(i) || d.RoutingKey != "k" || d.Headers["n"] != string(rune('0'+i)) {
			t.Fatalf("recovered delivery %d = %+v", i, d)
		}
		c.Ack(d.Tag)
	}
	if err := b2.Publish("ex", "x", nil, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if st, _ := b2.QueueStats("q"); st.Ready != 1 {
		t.Errorf("binding not recovered: ready = %d", st.Ready)
	}
}

func TestDurableSettledMessagesDoNotReappear(t *testing.T) {
	dir := t.TempDir()
	b := durableBroker(t, dir)
	declareDurable(t, b, "ex", "q")
	for i := 0; i < 4; i++ {
		b.Publish("ex", "", nil, []byte{byte(i)})
	}
	c, _ := b.Consume("q", 8, false)
	ds := drain(t, c, 4, 2*time.Second)
	// Ack out of order: 1 and 3. Identity-based settling must drop
	// exactly those two across the restart.
	c.Ack(ds[1].Tag)
	c.Ack(ds[3].Tag)
	b.Close()

	b2 := durableBroker(t, dir)
	defer b2.Close()
	c2, _ := b2.Consume("q", 8, false)
	ds2 := drain(t, c2, 2, 2*time.Second)
	got := []byte{ds2[0].Body[0], ds2[1].Body[0]}
	if got[0] != 0 || got[1] != 2 {
		t.Fatalf("recovered %v, want [0 2]", got)
	}
	if st, _ := b2.QueueStats("q"); st.Ready != 0 {
		t.Errorf("extra messages recovered: %+v", st)
	}
}

func TestDurableAutoAckSettlesImmediately(t *testing.T) {
	dir := t.TempDir()
	b := durableBroker(t, dir)
	declareDurable(t, b, "ex", "q")
	b.Publish("ex", "", nil, []byte("m"))
	c, _ := b.Consume("q", 1, true)
	drain(t, c, 1, 2*time.Second)
	b.Close()

	b2 := durableBroker(t, dir)
	defer b2.Close()
	if st, _ := b2.QueueStats("q"); st.Ready != 0 {
		t.Errorf("auto-acked message reappeared: %+v", st)
	}
}

func TestDurableNonDurableQueueNotRecovered(t *testing.T) {
	dir := t.TempDir()
	b := durableBroker(t, dir)
	b.DeclareExchange("ex", Fanout)
	b.DeclareQueue("transient", QueueOptions{})
	b.Bind("transient", "ex", "#")
	b.Publish("ex", "", nil, []byte("m"))
	b.Close()

	b2 := durableBroker(t, dir)
	defer b2.Close()
	if _, err := b2.QueueStats("transient"); !errors.Is(err, ErrNoQueue) {
		t.Errorf("transient queue recovered: %v", err)
	}
	// The exchange is durable state regardless.
	if err := b2.DeclareExchange("ex", Fanout); err != nil {
		t.Errorf("exchange not recovered: %v", err)
	}
}

func TestDurableDeleteQueueForgotten(t *testing.T) {
	dir := t.TempDir()
	b := durableBroker(t, dir)
	declareDurable(t, b, "ex", "q")
	b.Publish("ex", "", nil, []byte("m"))
	if err := b.DeleteQueue("q"); err != nil {
		t.Fatal(err)
	}
	b.Close()

	b2 := durableBroker(t, dir)
	defer b2.Close()
	if _, err := b2.QueueStats("q"); !errors.Is(err, ErrNoQueue) {
		t.Errorf("deleted queue recovered: %v", err)
	}
}

func TestDurableRejectsDurableAutoDelete(t *testing.T) {
	b := durableBroker(t, t.TempDir())
	defer b.Close()
	if err := b.DeclareQueue("x", QueueOptions{Durable: true, AutoDelete: true}); err == nil {
		t.Error("durable auto-delete queue accepted")
	}
}

// lastSegment returns the path of the newest segment file under the
// given log directory.
func lastSegment(t *testing.T, logDir string) string {
	t.Helper()
	entries, err := os.ReadDir(logDir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".seg" && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatalf("no segment files in %s", logDir)
	}
	return filepath.Join(logDir, last)
}

// journalSize sums the bytes of every journal file under dir.
func journalSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func TestDurableToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	b := durableBroker(t, dir)
	declareDurable(t, b, "ex", "q")
	b.Publish("ex", "", nil, []byte("keep"))
	b.Publish("ex", "", nil, []byte("torn"))
	b.Close()
	// Simulate a crash mid-append: chop bytes off the tail of the
	// queue's newest segment, tearing the final enqueue record.
	path := lastSegment(t, filepath.Join(dir, "topics", "q"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	b2 := durableBroker(t, dir)
	defer b2.Close()
	// The torn record (the second publish) is lost; everything before
	// it — topology and the first message — survives.
	if err := b2.DeclareQueue("q", QueueOptions{Durable: true}); err != nil {
		t.Errorf("queue lost after truncation: %v", err)
	}
	c, err := b2.Consume("q", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	d := drain(t, c, 1, 2*time.Second)[0]
	if string(d.Body) != "keep" {
		t.Errorf("recovered body %q, want %q", d.Body, "keep")
	}
	if st, _ := b2.QueueStats("q"); st.Ready != 0 {
		t.Errorf("torn record resurrected: %+v", st)
	}
}

// TestDurableTornTailCRCMismatch corrupts the tail record in place
// (flipped payload byte, plausible length) rather than shortening the
// file: the CRC frame must catch it and end replay cleanly.
func TestDurableTornTailCRCMismatch(t *testing.T) {
	dir := t.TempDir()
	b := durableBroker(t, dir)
	declareDurable(t, b, "ex", "q")
	b.Publish("ex", "", nil, []byte("keep"))
	b.Publish("ex", "", nil, []byte("torn"))
	b.Close()
	path := lastSegment(t, filepath.Join(dir, "topics", "q"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	b2 := durableBroker(t, dir)
	defer b2.Close()
	st, err := b2.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != 1 {
		t.Errorf("ready = %d after corrupt tail, want 1", st.Ready)
	}
}

// TestLegacyJournalMigration covers the pre-segmentation format: a
// monolithic broker.journal — including a torn tail whose length bytes
// are garbage, which older versions refused to open — is replayed into
// the segmented layout and removed.
func TestLegacyJournalMigration(t *testing.T) {
	dir := t.TempDir()
	legacy := func(rec []byte) []byte {
		out := make([]byte, 4+len(rec))
		out[0] = byte(len(rec)) // records here are < 256 bytes
		copy(out[4:], rec)
		return out
	}
	var file []byte
	ex := append(appendString([]byte{recDeclareExchange}, "ex"), byte(Topic))
	file = append(file, legacy(ex)...)
	q := appendString([]byte{recDeclareQueue}, "q")
	q = append(q, 0)       // AutoDelete=false
	q = append(q, 0)       // MaxLen=0
	q = append(q, 0)       // MaxRedeliver+1 = 0 (unlimited)
	file = append(file, legacy(q)...)
	bind := appendString([]byte{recBind}, "q")
	bind = appendString(bind, "ex")
	bind = appendString(bind, "#")
	file = append(file, legacy(bind)...)
	enq := appendString([]byte{recEnqueue}, "q")
	enq = append(enq, 1) // id
	enq = appendString(enq, "ex")
	enq = appendString(enq, "k")
	enq = append(enq, 0) // no headers
	enq = appendBytes(enq, []byte("keep"))
	file = append(file, legacy(enq)...)
	// Torn tail: a length header of garbage followed by partial bytes.
	// The old readRecord treated this as fatal corruption; it must now
	// read as a clean end-of-log.
	file = append(file, 0xff, 0xff, 0xff, 0xff, 0x01, 0x02)
	if err := os.WriteFile(filepath.Join(dir, "broker.journal"), file, 0o644); err != nil {
		t.Fatal(err)
	}

	b := durableBroker(t, dir)
	defer b.Close()
	st, err := b.QueueStats("q")
	if err != nil {
		t.Fatalf("legacy queue not migrated: %v", err)
	}
	if st.Ready != 1 {
		t.Errorf("migrated ready = %d, want 1", st.Ready)
	}
	c, _ := b.Consume("q", 1, false)
	if d := drain(t, c, 1, 2*time.Second)[0]; string(d.Body) != "keep" {
		t.Errorf("migrated body = %q", d.Body)
	}
	if _, err := os.Stat(filepath.Join(dir, "broker.journal")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("legacy journal not removed after migration: %v", err)
	}
}

func TestDurableCompactionShrinksJournal(t *testing.T) {
	dir := t.TempDir()
	b := durableBroker(t, dir)
	declareDurable(t, b, "ex", "q")
	c, _ := b.Consume("q", 64, false)
	for i := 0; i < 500; i++ {
		b.Publish("ex", "", nil, make([]byte, 128))
	}
	for i := 0; i < 500; i++ {
		d := <-c.Deliveries()
		c.Ack(d.Tag)
	}
	b.Close()
	before := journalSize(t, dir)

	b2 := durableBroker(t, dir)
	b2.Close()
	if after := journalSize(t, dir); after >= before/10 {
		t.Errorf("compaction ineffective: %d -> %d bytes", before, after)
	}
}

func TestDurableRestartCycleStress(t *testing.T) {
	// Publish/consume across several restarts; nothing unacked may be
	// lost, nothing acked may reappear.
	dir := t.TempDir()
	published, consumed := 0, 0
	for cycle := 0; cycle < 4; cycle++ {
		b := durableBroker(t, dir)
		if cycle == 0 {
			declareDurable(t, b, "ex", "q")
		}
		for i := 0; i < 10; i++ {
			if err := b.Publish("ex", "", nil, []byte{byte(published)}); err != nil {
				t.Fatal(err)
			}
			published++
		}
		// Consume roughly half of the backlog.
		c, _ := b.Consume("q", 4, false)
		backlog := published - consumed
		for i := 0; i < backlog/2; i++ {
			d := <-c.Deliveries()
			c.Ack(d.Tag)
			consumed++
		}
		b.Close()
	}
	b := durableBroker(t, dir)
	defer b.Close()
	st, _ := b.QueueStats("q")
	if st.Ready != published-consumed {
		t.Errorf("recovered %d messages, want %d", st.Ready, published-consumed)
	}
}

func TestDurableBrokerStillWorksAsNormalBroker(t *testing.T) {
	// The full pub/sub surface on a durable broker: fanout across
	// durable and transient queues.
	b := durableBroker(t, t.TempDir())
	defer b.Close()
	b.DeclareExchange("ex", Fanout)
	b.DeclareQueue("dur", QueueOptions{Durable: true})
	b.DeclareQueue("tmp", QueueOptions{})
	b.Bind("dur", "ex", "#")
	b.Bind("tmp", "ex", "#")
	b.Publish("ex", "", nil, []byte("m"))
	for _, q := range []string{"dur", "tmp"} {
		if st, _ := b.QueueStats(q); st.Ready != 1 {
			t.Errorf("queue %s ready = %d", q, st.Ready)
		}
	}
}

// TestDurableRedeliveryAfterCrash is the crash-consumer story: a
// consumer takes deliveries but dies before acking some of them. After
// a broker restart every unacked message must come back (at-least-once)
// exactly once, alongside the never-delivered tail, while the acked
// prefix stays settled.
func TestDurableRedeliveryAfterCrash(t *testing.T) {
	dir := t.TempDir()
	b := durableBroker(t, dir)
	declareDurable(t, b, "ex", "q")
	const n = 12
	for i := 0; i < n; i++ {
		if err := b.Publish("ex", "", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Consume("q", n, false)
	if err != nil {
		t.Fatal(err)
	}
	ds := drain(t, c, 8, 2*time.Second)
	// Ack the first four; the next four were delivered but the consumer
	// "crashes" (broker closes) holding them unacked.
	for i := 0; i < 4; i++ {
		if err := c.Ack(ds[i].Tag); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2 := durableBroker(t, dir)
	defer b2.Close()
	st, err := b2.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != n-4 {
		t.Fatalf("recovered ready = %d, want %d", st.Ready, n-4)
	}
	c2, err := b2.Consume("q", n, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[byte]int{}
	for _, d := range drain(t, c2, n-4, 2*time.Second) {
		seen[d.Body[0]]++
		if err := c2.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < n; i++ {
		want := 1
		if i < 4 {
			want = 0 // acked before the crash; must not reappear
		}
		if seen[i] != want {
			t.Errorf("message %d recovered %d times, want %d", i, seen[i], want)
		}
	}
}

// TestDurableMaxRedeliverSurvivesRestart: the redelivery bound is part
// of the queue's durable declaration, so the dead-letter protection
// still holds on the recovered queue.
func TestDurableMaxRedeliverSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	b := durableBroker(t, dir)
	if err := b.DeclareExchange("ex", Topic); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{Durable: true, MaxRedeliver: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("q", "ex", "#"); err != nil {
		t.Fatal(err)
	}
	b.Close()

	b2 := durableBroker(t, dir)
	defer b2.Close()
	// A passive redeclare with the same options must match the
	// recovered queue exactly.
	if err := b2.DeclareQueue("q", QueueOptions{Durable: true, MaxRedeliver: 1}); err != nil {
		t.Fatalf("recovered queue lost its MaxRedeliver: %v", err)
	}
	if err := b2.Publish("ex", "", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	c, err := b2.Consume("q", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		d := drain(t, c, 1, 2*time.Second)[0]
		if err := c.Nack(d.Tag, true); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b2.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadLettered != 1 {
		t.Errorf("DeadLettered = %d, want 1 (bound not recovered)", st.DeadLettered)
	}
}
