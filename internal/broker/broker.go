// Package broker implements the AMQ messaging model the system's
// services communicate through: named exchanges (direct, topic, fanout),
// message queues, bindings with routing-key patterns, competing
// consumers with acknowledgements and redelivery, and per-queue
// statistics.
//
// It is the in-process substitute for the RabbitMQ broker of the
// original deployment. The properties the join engine relies on are
// preserved by construction:
//
//   - a queue delivers messages to each of its consumers in FIFO order
//     (pairwise FIFO, Definition 8 of the source text);
//   - a queue with several consumers in the same group load-balances
//     messages between them (the "queuing" model);
//   - several queues bound to one exchange each receive every matching
//     message (the "publish-subscribe" model).
//
// The sibling package internal/wire exposes the same broker over TCP so
// the router and joiner services can run as separate OS processes.
package broker

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bistream/internal/vclock"
)

// ExchangeKind selects the routing discipline of an exchange.
type ExchangeKind uint8

// Exchange kinds of the AMQ model.
const (
	Direct ExchangeKind = iota // routing key compared for equality
	Topic                      // dot-separated pattern with * and # wildcards
	Fanout                     // every bound queue receives every message
)

// String names the kind as RabbitMQ does.
func (k ExchangeKind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Topic:
		return "topic"
	case Fanout:
		return "fanout"
	default:
		return "unknown"
	}
}

// Errors reported by broker operations.
var (
	ErrClosed          = errors.New("broker: closed")
	ErrNoExchange      = errors.New("broker: no such exchange")
	ErrNoQueue         = errors.New("broker: no such queue")
	ErrExchangeExists  = errors.New("broker: exchange exists with different kind")
	ErrQueueExists     = errors.New("broker: queue exists with different options")
	ErrConsumerClosed  = errors.New("broker: consumer cancelled")
	ErrUnknownDelivery = errors.New("broker: unknown delivery tag")
)

// Message is the unit of communication.
type Message struct {
	Exchange   string
	RoutingKey string
	Headers    map[string]string
	Body       []byte
	Timestamp  time.Time

	// journalID identifies the message in a durable queue's journal;
	// zero outside durable queues.
	journalID uint64
	// redeliveries counts how many times the message returned to the
	// ready list after being handed to a consumer (nack-requeue or
	// consumer cancellation). Drives the Redelivered flag and the
	// MaxRedeliver dead-letter bound.
	redeliveries int
}

// Delivery is a message handed to a consumer, carrying the delivery tag
// used to acknowledge it.
type Delivery struct {
	Message
	Queue       string
	Tag         uint64
	Redelivered bool
}

// QueueOptions configures a declared queue.
type QueueOptions struct {
	// AutoDelete removes the queue when its last consumer cancels
	// (mirrors the anonymous auto-delete queues the binder creates for
	// publish-subscribe consumers).
	AutoDelete bool
	// MaxLen bounds the number of ready messages; publishers block when
	// the bound is hit, providing backpressure. Zero means unbounded.
	MaxLen int
	// Durable journals the queue's declaration and contents when the
	// broker was opened with NewDurable: unconsumed and unacknowledged
	// messages survive a broker restart (at-least-once; see journal.go).
	// Incompatible with AutoDelete. Ignored on a non-durable broker.
	Durable bool
	// MaxRedeliver bounds how many times a message may return to the
	// ready list before it is moved to the dead-letter queue instead of
	// hot-looping at the queue head. Zero selects DefaultMaxRedeliver;
	// negative means unlimited.
	MaxRedeliver int
}

// DeadQueue is the dead-letter queue: messages nacked without requeue,
// or requeued past a queue's MaxRedeliver bound, land here for offline
// inspection instead of being dropped or looping forever. It is
// declared lazily on first use (durable when the broker is) and
// annotated with an "x-dead-from" header naming the source queue.
const DeadQueue = "dead"

// DefaultMaxRedeliver is the redelivery bound applied when
// QueueOptions.MaxRedeliver is zero. Generous enough that transient
// publish failures (a broker restart, an injected connection cut) never
// dead-letter a healthy tuple, small enough that a genuinely poisonous
// message stops churning the queue head.
const DefaultMaxRedeliver = 256

// Client is the operation surface shared by the in-process broker and
// the TCP client, so services are transport-agnostic.
type Client interface {
	DeclareExchange(name string, kind ExchangeKind) error
	DeclareQueue(name string, opts QueueOptions) error
	DeleteQueue(name string) error
	Bind(queue, exchange, routingKey string) error
	Publish(exchange, routingKey string, headers map[string]string, body []byte) error
	Consume(queue string, prefetch int, autoAck bool) (Consumer, error)
	QueueStats(queue string) (QueueStats, error)
	Close() error
}

// Consumer receives deliveries from one queue.
type Consumer interface {
	// Deliveries is closed when the consumer is cancelled or the broker
	// shuts down.
	Deliveries() <-chan Delivery
	// Ack confirms processing of the delivery with the given tag.
	Ack(tag uint64) error
	// Nack returns the delivery to the queue head (requeue=true) or
	// drops it (requeue=false).
	Nack(tag uint64, requeue bool) error
	// Cancel detaches the consumer from the queue.
	Cancel() error
}

// QueueStats is a point-in-time snapshot of one queue, the data shown in
// the RabbitMQ management UI's queue table (Figure 18 of the text).
type QueueStats struct {
	Name         string
	Ready        int     // messages waiting for a consumer
	Unacked      int     // delivered but not yet acknowledged
	Consumers    int     // attached consumers
	Published    int64   // total messages routed into the queue
	Delivered    int64   // total messages handed to consumers
	Acked        int64   // total acknowledgements
	Redelivered  int64   // messages returned to the ready list after delivery
	DeadLettered int64   // messages moved to the dead-letter queue
	InRate       float64 // smoothed publish rate, messages/s
	OutRate      float64 // smoothed ack rate, messages/s
}

// State summarises Ready+Unacked as the management UI does.
func (s QueueStats) State() string {
	if s.Ready == 0 && s.Unacked == 0 {
		return "idle"
	}
	return "running"
}

// Broker is the in-process message broker. The zero value is not usable;
// call New.
type Broker struct {
	clock vclock.Clock
	log   *journal // nil on a non-durable broker

	mu        sync.RWMutex
	closed    bool
	exchanges map[string]*exchange
	queues    map[string]*queue
	anonSeq   atomic.Uint64

	// gate, when set, blocks publishes until their records are
	// replicated to a quorum; see SetCommitGate in repl.go.
	gateMu sync.RWMutex
	gate   func(ctx context.Context, lsn uint64) error
}

// New creates a broker. A nil clock defaults to the wall clock.
func New(clock vclock.Clock) *Broker {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Broker{
		clock:     clock,
		exchanges: make(map[string]*exchange),
		queues:    make(map[string]*queue),
	}
}

// DurableOptions tunes a durable broker.
type DurableOptions struct {
	// MaxSegmentBytes is the rollover size of the journal's segment
	// files; zero selects DefaultMaxSegmentBytes. Smaller segments mean
	// finer-grained truncation of settled traffic at the cost of more
	// files.
	MaxSegmentBytes int64
}

// NewDurable creates a broker backed by a segmented append-only
// journal in dir, replaying any state a previous instance left behind:
// exchanges, durable queues, bindings, and the unsettled messages of
// durable queues (at-least-once across restarts).
func NewDurable(clock vclock.Clock, dir string) (*Broker, error) {
	return NewDurableWith(clock, dir, DurableOptions{})
}

// NewDurableWith is NewDurable with explicit options.
func NewDurableWith(clock vclock.Clock, dir string, opts DurableOptions) (*Broker, error) {
	b := New(clock)
	log, state, err := openJournal(dir, opts.MaxSegmentBytes)
	if err != nil {
		return nil, err
	}
	// Replay without re-journaling (openJournal already compacted the
	// live state into the fresh journal file).
	for _, ex := range state.exchanges {
		if err := b.DeclareExchange(ex.name, ex.kind); err != nil {
			return nil, err
		}
	}
	for _, q := range state.queues {
		if err := b.DeclareQueue(q.name, q.opts); err != nil {
			return nil, err
		}
	}
	for _, bd := range state.binds {
		if err := b.Bind(bd.queue, bd.exchange, bd.key); err != nil {
			return nil, err
		}
	}
	// Attach the journal before re-enqueueing the surviving messages:
	// the compacted file holds only topology records, so the messages
	// must flow through the normal journaled enqueue path to be
	// persisted again (with fresh ids).
	b.log = log
	b.mu.Lock()
	for _, q := range b.queues {
		if q.opts.Durable {
			q.log = log
		}
	}
	b.mu.Unlock()
	b.mu.RLock()
	for _, q := range state.queues {
		queue := b.queues[q.name]
		for _, msg := range state.messages[q.name] {
			msg.Timestamp = b.clock.Now()
			msg.journalID = 0 // reassigned by the journaled enqueue
			if err := queue.enqueue(msg); err != nil {
				b.mu.RUnlock()
				return nil, err
			}
		}
	}
	b.mu.RUnlock()
	return b, nil
}

type binding struct {
	q   *queue
	key string
}

type exchange struct {
	name     string
	kind     ExchangeKind
	mu       sync.RWMutex
	bindings []binding
}

// DeclareExchange creates the exchange if absent. Re-declaring with the
// same kind is idempotent, matching AMQP semantics.
func (b *Broker) DeclareExchange(name string, kind ExchangeKind) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if ex, ok := b.exchanges[name]; ok {
		if ex.kind != kind {
			return fmt.Errorf("%w: %q is %v", ErrExchangeExists, name, ex.kind)
		}
		return nil
	}
	b.exchanges[name] = &exchange{name: name, kind: kind}
	if b.log != nil {
		b.log.logDeclareExchange(name, kind)
	}
	return nil
}

// DeclareQueue creates the queue if absent; idempotent for identical
// options.
func (b *Broker) DeclareQueue(name string, opts QueueOptions) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if opts.Durable && opts.AutoDelete {
		return fmt.Errorf("broker: queue %q cannot be both durable and auto-delete", name)
	}
	if q, ok := b.queues[name]; ok {
		// A declare without a MaxLen or MaxRedeliver bound is passive
		// with respect to an existing bound: services declaring the
		// shared topology must not conflict with an owner that installed
		// backpressure or a redelivery policy on the same queue (e.g. the
		// engine bounding the entry queue).
		passive := opts
		if opts.MaxLen == 0 {
			passive.MaxLen = q.opts.MaxLen
		}
		if opts.MaxRedeliver == 0 {
			passive.MaxRedeliver = q.opts.MaxRedeliver
		}
		if q.opts != passive {
			return fmt.Errorf("%w: %q", ErrQueueExists, name)
		}
		return nil
	}
	q := newQueue(name, opts, b.clock, b.removeQueue)
	if name != DeadQueue {
		q.deadLetter = b.deadLetter
	}
	if b.log != nil && opts.Durable {
		q.log = b.log
		b.log.logDeclareQueue(name, opts)
	}
	b.queues[name] = q
	return nil
}

// deadLetter moves a rejected message to the dead-letter queue,
// declaring it on first use. Called by queues after releasing their own
// lock, so the enqueue below cannot deadlock against the source queue.
func (b *Broker) deadLetter(from string, msg Message) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	q, ok := b.queues[DeadQueue]
	if !ok {
		opts := QueueOptions{MaxRedeliver: -1, Durable: b.log != nil}
		q = newQueue(DeadQueue, opts, b.clock, b.removeQueue)
		if b.log != nil {
			q.log = b.log
			b.log.logDeclareQueue(DeadQueue, opts)
		}
		b.queues[DeadQueue] = q
	}
	b.mu.Unlock()
	hdrs := make(map[string]string, len(msg.Headers)+1)
	for k, v := range msg.Headers {
		hdrs[k] = v
	}
	hdrs["x-dead-from"] = from
	msg.Headers = hdrs
	msg.journalID = 0 // reassigned by the dead queue's journaled enqueue
	msg.redeliveries = 0
	_ = q.enqueue(msg)
}

// AnonymousQueueName generates a unique auto-delete queue name with the
// given prefix, in the style the binder uses for publish-subscribe
// consumers ("Rjoin.exchange.anonymous.42").
func (b *Broker) AnonymousQueueName(prefix string) string {
	return fmt.Sprintf("%s.anonymous.%d", prefix, b.anonSeq.Add(1))
}

// DeleteQueue removes a queue, dropping its messages and cancelling its
// consumers.
func (b *Broker) DeleteQueue(name string) error {
	b.mu.Lock()
	q, ok := b.queues[name]
	if ok {
		delete(b.queues, name)
	}
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoQueue, name)
	}
	if b.log != nil && q.opts.Durable {
		b.log.logDeleteQueue(name)
	}
	b.unbindAll(q)
	q.shutdown()
	return nil
}

// removeQueue is the auto-delete callback.
func (b *Broker) removeQueue(q *queue) {
	b.mu.Lock()
	if cur, ok := b.queues[q.name]; !ok || cur != q {
		b.mu.Unlock()
		return
	}
	delete(b.queues, q.name)
	b.mu.Unlock()
	b.unbindAll(q)
	q.shutdown()
}

func (b *Broker) unbindAll(q *queue) {
	b.mu.RLock()
	exs := make([]*exchange, 0, len(b.exchanges))
	for _, ex := range b.exchanges {
		exs = append(exs, ex)
	}
	b.mu.RUnlock()
	for _, ex := range exs {
		ex.mu.Lock()
		kept := ex.bindings[:0]
		for _, bd := range ex.bindings {
			if bd.q != q {
				kept = append(kept, bd)
			}
		}
		ex.bindings = kept
		ex.mu.Unlock()
	}
}

// Bind routes messages published to the exchange whose routing key
// matches routingKey (pattern for topic exchanges) into the queue.
func (b *Broker) Bind(queueName, exchangeName, routingKey string) error {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return ErrClosed
	}
	ex, okE := b.exchanges[exchangeName]
	q, okQ := b.queues[queueName]
	b.mu.RUnlock()
	if !okE {
		return fmt.Errorf("%w: %q", ErrNoExchange, exchangeName)
	}
	if !okQ {
		return fmt.Errorf("%w: %q", ErrNoQueue, queueName)
	}
	if ex.kind == Topic {
		if err := validatePattern(routingKey); err != nil {
			return err
		}
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	for _, bd := range ex.bindings {
		if bd.q == q && bd.key == routingKey {
			return nil // idempotent
		}
	}
	ex.bindings = append(ex.bindings, binding{q: q, key: routingKey})
	if b.log != nil && q.opts.Durable {
		b.log.logBind(queueName, exchangeName, routingKey)
	}
	return nil
}

// Publish routes one message. It blocks while every matching queue with
// a MaxLen bound is full, which backpressures fast producers the way a
// flow-controlled AMQP channel does.
func (b *Broker) Publish(exchangeName, routingKey string, headers map[string]string, body []byte) error {
	return b.PublishContext(context.Background(), exchangeName, routingKey, headers, body)
}

// PublishContext is Publish honoring cancellation: a publish blocked on
// a full queue returns ctx.Err() when ctx is done. A message already
// enqueued to some of the matching queues stays enqueued (publishing is
// not transactional across queues, exactly as in AMQP).
func (b *Broker) PublishContext(ctx context.Context, exchangeName, routingKey string, headers map[string]string, body []byte) error {
	if err := ctx.Err(); err != nil {
		return err // already cancelled: publish nothing
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return ErrClosed
	}
	ex, ok := b.exchanges[exchangeName]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoExchange, exchangeName)
	}
	msg := Message{
		Exchange:   exchangeName,
		RoutingKey: routingKey,
		Headers:    headers,
		Body:       body,
		Timestamp:  b.clock.Now(),
	}
	ex.mu.RLock()
	var targets []*queue
	for _, bd := range ex.bindings {
		if ex.matches(bd.key, routingKey) {
			targets = append(targets, bd.q)
		}
	}
	ex.mu.RUnlock()
	var maxLSN uint64
	for _, q := range targets {
		lsn, err := q.enqueueCtx(ctx, msg)
		if err != nil && !errors.Is(err, ErrClosed) {
			return err
		}
		if lsn > maxLSN {
			maxLSN = lsn
		}
	}
	// Quorum gate: on a replicated leader the publish is acknowledged
	// only once its journal records are safe on a quorum of replicas.
	if maxLSN > 0 {
		if gate := b.commitGate(); gate != nil {
			return gate(ctx, maxLSN)
		}
	}
	return nil
}

func (ex *exchange) matches(bindKey, routingKey string) bool {
	switch ex.kind {
	case Fanout:
		return true
	case Direct:
		return bindKey == routingKey
	default:
		return topicMatch(bindKey, routingKey)
	}
}

// Consume attaches a consumer to the queue. prefetch bounds the number
// of unacknowledged deliveries in flight to this consumer (minimum 1);
// with autoAck deliveries are confirmed as they are handed out.
func (b *Broker) Consume(queueName string, prefetch int, autoAck bool) (Consumer, error) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrClosed
	}
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoQueue, queueName)
	}
	return q.addConsumer(prefetch, autoAck)
}

// QueueStats snapshots one queue.
func (b *Broker) QueueStats(queueName string) (QueueStats, error) {
	b.mu.RLock()
	q, ok := b.queues[queueName]
	b.mu.RUnlock()
	if !ok {
		return QueueStats{}, fmt.Errorf("%w: %q", ErrNoQueue, queueName)
	}
	return q.stats(), nil
}

// Queues lists the declared queue names in sorted order.
func (b *Broker) Queues() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.queues))
	for n := range b.queues {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Exchanges lists the declared exchanges as "name kind" in sorted order.
func (b *Broker) Exchanges() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.exchanges))
	for n, ex := range b.exchanges {
		out = append(out, n+" "+ex.kind.String())
	}
	sort.Strings(out)
	return out
}

// Close shuts the broker down, cancelling every consumer.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	qs := make([]*queue, 0, len(b.queues))
	for _, q := range b.queues {
		qs = append(qs, q)
	}
	b.queues = map[string]*queue{}
	b.exchanges = map[string]*exchange{}
	b.mu.Unlock()
	for _, q := range qs {
		q.shutdown()
	}
	if b.log != nil {
		return b.log.close()
	}
	return nil
}

// FormatQueueTable renders all queues as the text table of Figure 18.
func (b *Broker) FormatQueueTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-52s %-8s %7s %8s %7s %10s %10s\n",
		"Name", "State", "Ready", "Unacked", "Total", "In msg/s", "Ack msg/s")
	for _, name := range b.Queues() {
		st, err := b.QueueStats(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&sb, "%-52s %-8s %7d %8d %7d %10.1f %10.1f\n",
			st.Name, st.State(), st.Ready, st.Unacked, st.Ready+st.Unacked,
			st.InRate, st.OutRate)
	}
	return sb.String()
}
