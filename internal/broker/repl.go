package broker

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
)

// Replication surface. A leader broker exposes its journal as a stream
// of committed records (ReplSubscribe); a follower applies that stream
// to a FollowerLog, which writes the identical on-disk layout —
// preserving the leader's LSNs — so promoting a follower is nothing
// more than opening its data directory with NewDurable. The consensus
// machinery itself (terms, votes, leases, quorum counting) lives in
// internal/broker/replica; this file is only the log-shaped interface
// it needs from the broker.

// ErrNotLeader is returned by a broker (or reported over the wire) when
// the contacted node is a replication follower: clients must retry
// against another member of the broker set.
var ErrNotLeader = errors.New("broker: not the leader")

// ReplRecord is one committed journal record, addressed for
// replication. Topic is the durable queue the record belongs to, or
// empty for topology (meta) records. Payload is the encoded record —
// type byte plus fields — exactly as journaled, so follower logs are
// byte-identical to the leader's.
type ReplRecord struct {
	LSN     uint64
	Topic   string
	Payload []byte
}

// LastLSN reports the highest LSN the broker's journal has assigned;
// zero on a non-durable broker. Failover elects the replica with the
// highest (term, LastLSN), i.e. the most-caught-up follower.
func (b *Broker) LastLSN() uint64 {
	if b.log == nil {
		return 0
	}
	return b.log.lastLSN()
}

// ReplSubscribe attaches a replication tap to the journal. It returns
// a consistent snapshot of every record currently in the log (in LSN
// order) plus a channel carrying all records committed after the
// snapshot; cancel detaches. The channel is closed by the broker if
// the subscriber falls more than buf records behind — the subscriber
// must then resubscribe and apply the fresh snapshot from scratch.
// Returns an error on a non-durable broker.
func (b *Broker) ReplSubscribe(buf int) ([]ReplRecord, <-chan ReplRecord, func(), error) {
	if b.log == nil {
		return nil, nil, nil, errors.New("broker: replication requires a durable broker")
	}
	return b.log.subscribe(buf)
}

// SetCommitGate installs fn on the publish path: after a publish has
// been journaled, fn is called with the highest LSN the publish
// produced and must return nil only once that LSN is replicated to a
// quorum. A gate error fails the publish — the message may still be
// enqueued locally (publishing is not transactional, exactly as in
// AMQP), and the at-least-once contract tells the publisher to retry.
// Pass nil to remove the gate. Internal re-enqueues (recovery replay,
// dead-lettering, nack-requeue) bypass the gate: they re-journal
// already-accepted messages.
func (b *Broker) SetCommitGate(fn func(ctx context.Context, lsn uint64) error) {
	b.gateMu.Lock()
	b.gate = fn
	b.gateMu.Unlock()
}

func (b *Broker) commitGate() func(ctx context.Context, lsn uint64) error {
	b.gateMu.RLock()
	defer b.gateMu.RUnlock()
	return b.gate
}

// FollowerLog writes a replicated record stream into a broker data
// directory using the leader's LSNs. It maintains the same per-topic
// truncation frontier as the live journal, so a long-lived follower
// reclaims settled segments at the same pace as its leader.
type FollowerLog struct {
	mu      sync.Mutex
	dir     string
	maxSeg  int64
	meta    *segLog
	topics  map[string]*topicLog
	lastLSN uint64
	closed  bool
}

// OpenFollowerLog opens (or creates) dir as a follower-maintained
// journal, replaying existing segments to recover the last applied
// LSN and the truncation frontier.
func OpenFollowerLog(dir string, maxSeg int64) (*FollowerLog, error) {
	if maxSeg <= 0 {
		maxSeg = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f := &FollowerLog{dir: dir, maxSeg: maxSeg, topics: make(map[string]*topicLog)}
	if err := f.load(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *FollowerLog) load() error {
	meta, err := openSegLog(filepath.Join(f.dir, metaDirName), f.maxSeg)
	if err != nil {
		return err
	}
	f.meta = meta
	bump := func(lsn uint64) {
		if lsn > f.lastLSN {
			f.lastLSN = lsn
		}
	}
	if err := meta.replay(func(lsn uint64, rec []byte, _ uint64) error {
		bump(lsn)
		return nil
	}); err != nil {
		return err
	}
	topicsDir := filepath.Join(f.dir, topicsDirName)
	entries, err := os.ReadDir(topicsDir)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sl, err := openSegLog(filepath.Join(topicsDir, e.Name()), f.maxSeg)
		if err != nil {
			return err
		}
		tl := newTopicLog(sl)
		// Rebuild the frontier from the surviving records; per-topic
		// file order is append order, which is all tracking needs.
		if err := sl.replay(func(lsn uint64, rec []byte, segID uint64) error {
			bump(lsn)
			tl.track(rec, segID)
			return nil
		}); err != nil {
			return err
		}
		f.topics[e.Name()] = tl
	}
	return nil
}

// Reset wipes the follower's journal for a full resynchronization from
// a leader snapshot.
func (f *FollowerLog) Reset() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closeLogsLocked()
	if err := os.RemoveAll(filepath.Join(f.dir, metaDirName)); err != nil {
		return err
	}
	if err := os.RemoveAll(filepath.Join(f.dir, topicsDirName)); err != nil {
		return err
	}
	// Also clear a stray pre-segmentation journal: the resync defines
	// the node's entire state.
	os.Remove(filepath.Join(f.dir, legacyFileName))
	f.topics = make(map[string]*topicLog)
	f.lastLSN = 0
	meta, err := openSegLog(filepath.Join(f.dir, metaDirName), f.maxSeg)
	if err != nil {
		return err
	}
	f.meta = meta
	return nil
}

// Append applies one replicated record. Records at or below the last
// applied LSN are ignored (duplicates from stream handoff); a
// delete-queue record reclaims the topic's segments just as on the
// leader.
func (f *FollowerLog) Append(rec ReplRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if rec.LSN <= f.lastLSN {
		return nil
	}
	f.lastLSN = rec.LSN
	if rec.Topic == "" {
		if _, err := f.meta.append(rec.LSN, rec.Payload); err != nil {
			return err
		}
		if len(rec.Payload) > 0 && rec.Payload[0] == recDeleteQueue {
			rd := &reader{buf: rec.Payload[1:]}
			name := rd.string()
			if rd.err == nil {
				if tl, ok := f.topics[topicDirName(name)]; ok {
					tl.log.close()
					os.RemoveAll(tl.log.dir)
					delete(f.topics, topicDirName(name))
				}
			}
		}
		return nil
	}
	key := topicDirName(rec.Topic)
	tl := f.topics[key]
	if tl == nil {
		sl, err := openSegLog(filepath.Join(f.dir, topicsDirName, key), f.maxSeg)
		if err != nil {
			return err
		}
		tl = newTopicLog(sl)
		f.topics[key] = tl
	}
	segID, err := tl.log.append(rec.LSN, rec.Payload)
	if err != nil {
		return err
	}
	tl.track(rec.Payload, segID)
	return nil
}

// LastLSN reports the highest applied LSN.
func (f *FollowerLog) LastLSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastLSN
}

// Close releases the file handles. The directory remains valid for a
// later OpenFollowerLog or — on promotion — NewDurable.
func (f *FollowerLog) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	f.closeLogsLocked()
	return nil
}

func (f *FollowerLog) closeLogsLocked() {
	if f.meta != nil {
		f.meta.close()
		f.meta = nil
	}
	for _, tl := range f.topics {
		tl.log.close()
	}
}
