package broker

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func mgmtGet(t *testing.T, b *Broker, path string) *httptest.ResponseRecorder {
	t.Helper()
	h := NewMgmtHandler(b)
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func mgmtBroker(t *testing.T) *Broker {
	t.Helper()
	b := newTestBroker(t)
	declare(t, b, "Rstore.exchange", Topic, "Rstore.exchange.q.0")
	b.Publish("Rstore.exchange", "x", nil, []byte("m"))
	return b
}

func TestMgmtDashboard(t *testing.T) {
	b := mgmtBroker(t)
	rec := mgmtGet(t, b, "/")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "Rstore.exchange.q.0") || !strings.Contains(body, "running") {
		t.Errorf("dashboard:\n%s", body)
	}
	if rec := mgmtGet(t, b, "/nope"); rec.Code != 404 {
		t.Errorf("unknown path status = %d", rec.Code)
	}
}

func TestMgmtQueuesJSON(t *testing.T) {
	b := mgmtBroker(t)
	rec := mgmtGet(t, b, "/api/queues")
	var stats []QueueStats
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(stats) != 1 || stats[0].Name != "Rstore.exchange.q.0" || stats[0].Ready != 1 {
		t.Errorf("queues = %+v", stats)
	}
}

func TestMgmtExchangesJSON(t *testing.T) {
	b := mgmtBroker(t)
	rec := mgmtGet(t, b, "/api/exchanges")
	var exs []struct {
		Name string `json:"name"`
		Kind string `json:"type"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &exs); err != nil {
		t.Fatal(err)
	}
	if len(exs) != 1 || exs[0].Name != "Rstore.exchange" || exs[0].Kind != "topic" {
		t.Errorf("exchanges = %+v", exs)
	}
}

func TestMgmtOverviewJSON(t *testing.T) {
	b := mgmtBroker(t)
	rec := mgmtGet(t, b, "/api/overview")
	var ov struct {
		Queues    int   `json:"queues"`
		Exchanges int   `json:"exchanges"`
		Ready     int   `json:"messages_ready"`
		Published int64 `json:"publish_total"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ov); err != nil {
		t.Fatal(err)
	}
	if ov.Queues != 1 || ov.Exchanges != 1 || ov.Ready != 1 || ov.Published != 1 {
		t.Errorf("overview = %+v", ov)
	}
}
