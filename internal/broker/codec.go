package broker

import "encoding/binary"

// Small binary helpers shared by the journal. (The wire package keeps
// its own copies; the two formats evolve independently.)

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendHeaders(dst []byte, h map[string]string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(h)))
	for k, v := range h {
		dst = appendString(dst, k)
		dst = appendString(dst, v)
	}
	return dst
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// reader decodes fields sequentially, remembering the first error.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errCorruptRecord
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) byte() byte {
	if r.err != nil || len(r.buf) < 1 {
		r.fail()
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *reader) bool() bool { return r.byte() != 0 }

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.buf)) {
		r.fail()
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.buf)) {
		r.fail()
		return nil
	}
	b := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return b
}

func (r *reader) headers() map[string]string {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail()
		return nil
	}
	h := make(map[string]string, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.string()
		v := r.string()
		h[k] = v
	}
	return h
}
