package broker

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

// FuzzTopicMatch checks the pattern matcher never panics and respects
// two invariants on arbitrary inputs: every valid pattern matches
// itself when wildcard-free, and "#" matches every key.
func FuzzTopicMatch(f *testing.F) {
	f.Add("a.*.c", "a.b.c")
	f.Add("#", "")
	f.Add("a.#.b", "a.x.y.b")
	f.Add("*.*", "x.y")
	f.Fuzz(func(t *testing.T, pattern, key string) {
		_ = topicMatch(pattern, key) // must not panic
		if !topicMatch("#", key) {
			t.Fatalf("# failed to match %q", key)
		}
		if validatePattern(key) == nil && !strings.ContainsAny(key, "*#") {
			if !topicMatch(key, key) {
				t.Fatalf("literal key %q does not match itself", key)
			}
		}
	})
}

// fuzzFrame builds a well-formed segment frame for the fuzz corpus.
func fuzzFrame(lsn uint64, rec []byte) []byte {
	payload := binary.AppendUvarint(nil, lsn)
	payload = append(payload, rec...)
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, segCRC))
	return append(out, payload...)
}

// FuzzSegmentRecord throws arbitrary bytes at the segment-record
// decoder: it must never panic, and any record it does accept must
// survive the state-builder (which in turn must not panic on arbitrary
// record payloads). This is the decoder every broker restart and every
// replication snapshot runs over on-disk bytes.
func FuzzSegmentRecord(f *testing.F) {
	f.Add(fuzzFrame(1, []byte{recDeclareExchange, 2, 'e', 'x', byte(Topic)}))
	f.Add(fuzzFrame(7, append(appendString([]byte{recEnqueue}, "q"), 1)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add(append(fuzzFrame(2, []byte{recSettle, 1, 'q', 3}), 0, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		sb := newStateBuilder()
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			lsn, rec, err := readSegRecord(r)
			if err != nil {
				break
			}
			if len(rec) > len(data) {
				t.Fatalf("decoded record longer than input: %d > %d", len(rec), len(data))
			}
			_ = lsn
			sb.apply(rec)
		}
		sb.finish()
	})
}
