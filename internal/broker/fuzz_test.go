package broker

import (
	"strings"
	"testing"
)

// FuzzTopicMatch checks the pattern matcher never panics and respects
// two invariants on arbitrary inputs: every valid pattern matches
// itself when wildcard-free, and "#" matches every key.
func FuzzTopicMatch(f *testing.F) {
	f.Add("a.*.c", "a.b.c")
	f.Add("#", "")
	f.Add("a.#.b", "a.x.y.b")
	f.Add("*.*", "x.y")
	f.Fuzz(func(t *testing.T, pattern, key string) {
		_ = topicMatch(pattern, key) // must not panic
		if !topicMatch("#", key) {
			t.Fatalf("# failed to match %q", key)
		}
		if validatePattern(key) == nil && !strings.ContainsAny(key, "*#") {
			if !topicMatch(key, key) {
				t.Fatalf("literal key %q does not match itself", key)
			}
		}
	})
}
