package broker

import (
	"context"
	"errors"
	"testing"
	"time"

	"bistream/internal/metrics"
)

func TestPublishContextCancelUnblocks(t *testing.T) {
	b := newTestBroker(t)
	if err := b.DeclareExchange("ex", Topic); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{MaxLen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("q", "ex", "#"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("ex", "k", nil, []byte("fill")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- b.PublishContext(ctx, "ex", "k", nil, []byte("blocked"))
	}()
	select {
	case err := <-errCh:
		t.Fatalf("publish into a full queue returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled publish still blocked")
	}
	if st, err := b.QueueStats("q"); err != nil || st.Ready != 1 {
		t.Fatalf("queue holds %d messages after cancel, want 1 (err %v)", st.Ready, err)
	}
}

func TestPublishContextSucceedsWhenSpaceFrees(t *testing.T) {
	b := newTestBroker(t)
	if err := b.DeclareExchange("ex", Topic); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{MaxLen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("q", "ex", "#"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("ex", "k", nil, []byte("fill")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		errCh <- b.PublishContext(ctx, "ex", "k", nil, []byte("second"))
	}()
	time.Sleep(20 * time.Millisecond)
	cons, err := b.Consume("q", 8, true) // auto-ack drains the backlog
	if err != nil {
		t.Fatal(err)
	}
	drain(t, cons, 2, 2*time.Second)
	if err := <-errCh; err != nil {
		t.Fatalf("publish after space freed: %v", err)
	}
}

// TestDeclareQueuePassiveMaxLen covers the bound-then-declare pattern
// the engine uses on the entry queue: a MaxLen-free redeclare of an
// otherwise identical queue is passive, while any other mismatch still
// errors.
func TestDeclareQueuePassiveMaxLen(t *testing.T) {
	b := newTestBroker(t)
	if err := b.DeclareQueue("q", QueueOptions{Durable: true, MaxLen: 64}); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{Durable: true}); err != nil {
		t.Fatalf("MaxLen-free redeclare rejected: %v", err)
	}
	if err := b.DeclareQueue("q", QueueOptions{Durable: true, MaxLen: 32}); !errors.Is(err, ErrQueueExists) {
		t.Fatalf("conflicting MaxLen redeclare: err = %v, want ErrQueueExists", err)
	}
	if err := b.DeclareQueue("q", QueueOptions{MaxLen: 64}); !errors.Is(err, ErrQueueExists) {
		t.Fatalf("durability mismatch redeclare: err = %v, want ErrQueueExists", err)
	}
}

func TestBrokerRegisterMetrics(t *testing.T) {
	b := newTestBroker(t)
	declare(t, b, "ex", Topic, "q1", "q2")
	reg := metrics.NewRegistry()
	RegisterMetrics(b, reg)
	for i := 0; i < 3; i++ {
		if err := b.Publish("ex", "k", nil, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	byName := map[string]metrics.Sample{}
	for _, s := range reg.Gather() {
		byName[s.Name] = s
	}
	if s := byName["broker.queue.q1.depth"]; s.Value != 3 {
		t.Errorf("q1 depth = %v, want 3", s.Value)
	}
	if s := byName["broker.queue.depth"]; s.Value != 6 {
		t.Errorf("total depth = %v, want 6", s.Value)
	}
	if s := byName["broker.published"]; s.Value != 6 {
		t.Errorf("published = %v, want 6", s.Value)
	}
	if s := byName["broker.queues"]; s.Value != 2 {
		t.Errorf("queues = %v, want 2", s.Value)
	}
}
