package broker

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestBroker(t *testing.T) *Broker {
	t.Helper()
	b := New(nil)
	t.Cleanup(func() { b.Close() })
	return b
}

func declare(t *testing.T, b *Broker, exchange string, kind ExchangeKind, queues ...string) {
	t.Helper()
	if err := b.DeclareExchange(exchange, kind); err != nil {
		t.Fatal(err)
	}
	for _, q := range queues {
		if err := b.DeclareQueue(q, QueueOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := b.Bind(q, exchange, "#"); err != nil {
			t.Fatal(err)
		}
	}
}

func drain(t *testing.T, c Consumer, n int, timeout time.Duration) []Delivery {
	t.Helper()
	out := make([]Delivery, 0, n)
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case d, ok := <-c.Deliveries():
			if !ok {
				t.Fatalf("consumer closed after %d/%d deliveries", len(out), n)
			}
			out = append(out, d)
		case <-deadline:
			t.Fatalf("timed out after %d/%d deliveries", len(out), n)
		}
	}
	return out
}

func TestPublishConsumeRoundTrip(t *testing.T) {
	b := newTestBroker(t)
	declare(t, b, "ex", Topic, "q")
	if err := b.Publish("ex", "k", map[string]string{"h": "v"}, []byte("body")); err != nil {
		t.Fatal(err)
	}
	c, err := b.Consume("q", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	d := drain(t, c, 1, time.Second)[0]
	if string(d.Body) != "body" || d.Headers["h"] != "v" || d.RoutingKey != "k" || d.Queue != "q" {
		t.Errorf("delivery = %+v", d)
	}
	if err := c.Ack(d.Tag); err != nil {
		t.Fatal(err)
	}
	st, _ := b.QueueStats("q")
	if st.Acked != 1 || st.Ready != 0 || st.Unacked != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueFIFOPerConsumer(t *testing.T) {
	// Pairwise FIFO (Definition 8): a single consumer sees messages in
	// publish order.
	b := newTestBroker(t)
	declare(t, b, "ex", Fanout, "q")
	c, _ := b.Consume("q", 16, true)
	const n = 500
	for i := 0; i < n; i++ {
		if err := b.Publish("ex", "", nil, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	ds := drain(t, c, n, 5*time.Second)
	for i, d := range ds {
		if string(d.Body) != fmt.Sprint(i) {
			t.Fatalf("delivery %d = %q", i, d.Body)
		}
	}
}

func TestCompetingConsumersPartitionAndPreserveOrder(t *testing.T) {
	// The queuing model: each message goes to exactly one group member,
	// and each member sees an order-preserving subsequence.
	b := newTestBroker(t)
	declare(t, b, "ex", Direct, "")
	if err := b.DeclareQueue("group", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("group", "ex", "k"); err != nil {
		t.Fatal(err)
	}
	c1, _ := b.Consume("group", 4, true)
	c2, _ := b.Consume("group", 4, true)
	const n = 400
	var got1, got2 []int
	var received atomic.Int64
	var wg sync.WaitGroup
	collect := func(c Consumer, out *[]int) {
		defer wg.Done()
		for d := range c.Deliveries() {
			var v int
			fmt.Sscan(string(d.Body), &v)
			*out = append(*out, v)
			received.Add(1)
		}
	}
	wg.Add(2)
	go collect(c1, &got1)
	go collect(c2, &got2)
	for i := 0; i < n; i++ {
		if err := b.Publish("ex", "k", nil, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the collectors to have read everything, not just for the
	// auto-acks (counted at dispatch): a delivery still buffered in a
	// consumer channel when Cancel runs would be requeued, not received.
	waitFor(t, time.Second, func() bool {
		st, _ := b.QueueStats("group")
		return st.Acked == n && received.Load() == n
	})
	c1.Cancel()
	c2.Cancel()
	wg.Wait()
	if len(got1)+len(got2) != n {
		t.Fatalf("got %d + %d deliveries, want %d", len(got1), len(got2), n)
	}
	if len(got1) == 0 || len(got2) == 0 {
		t.Errorf("load balancing failed: %d vs %d", len(got1), len(got2))
	}
	seen := map[int]bool{}
	for _, g := range [][]int{got1, got2} {
		for i := 1; i < len(g); i++ {
			if g[i-1] >= g[i] {
				t.Fatalf("subsequence out of order: %d before %d", g[i-1], g[i])
			}
		}
		for _, v := range g {
			if seen[v] {
				t.Fatalf("message %d delivered twice", v)
			}
			seen[v] = true
		}
	}
}

func TestPublishSubscribeBroadcast(t *testing.T) {
	// Two queues bound to the same topic exchange both receive every
	// matching message (the join-stream broadcast pattern).
	b := newTestBroker(t)
	declare(t, b, "Rjoin", Topic, "Rjoin.s1", "Rjoin.s2")
	c1, _ := b.Consume("Rjoin.s1", 8, true)
	c2, _ := b.Consume("Rjoin.s2", 8, true)
	for i := 0; i < 10; i++ {
		b.Publish("Rjoin", "tuple", nil, []byte{byte(i)})
	}
	d1 := drain(t, c1, 10, time.Second)
	d2 := drain(t, c2, 10, time.Second)
	for i := 0; i < 10; i++ {
		if d1[i].Body[0] != byte(i) || d2[i].Body[0] != byte(i) {
			t.Fatalf("broadcast order broken at %d", i)
		}
	}
}

func TestDirectExchangeRouting(t *testing.T) {
	b := newTestBroker(t)
	if err := b.DeclareExchange("ex", Direct); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"q0", "q1"} {
		b.DeclareQueue(q, QueueOptions{})
	}
	b.Bind("q0", "ex", "part-0")
	b.Bind("q1", "ex", "part-1")
	b.Publish("ex", "part-1", nil, []byte("x"))
	b.Publish("ex", "part-other", nil, []byte("y")) // unroutable: dropped
	st0, _ := b.QueueStats("q0")
	st1, _ := b.QueueStats("q1")
	if st0.Ready != 0 || st1.Ready != 1 {
		t.Errorf("ready: q0=%d q1=%d", st0.Ready, st1.Ready)
	}
}

func TestTopicExchangeRouting(t *testing.T) {
	b := newTestBroker(t)
	b.DeclareExchange("ex", Topic)
	b.DeclareQueue("store", QueueOptions{})
	b.DeclareQueue("all", QueueOptions{})
	b.Bind("store", "ex", "stream.*.store")
	b.Bind("all", "ex", "#")
	b.Publish("ex", "stream.r.store", nil, nil)
	b.Publish("ex", "stream.r.join", nil, nil)
	st, _ := b.QueueStats("store")
	sa, _ := b.QueueStats("all")
	if st.Ready != 1 || sa.Ready != 2 {
		t.Errorf("ready: store=%d all=%d", st.Ready, sa.Ready)
	}
}

func TestAckRedeliveryOnCancel(t *testing.T) {
	b := newTestBroker(t)
	declare(t, b, "ex", Fanout, "q")
	c1, _ := b.Consume("q", 8, false)
	for i := 0; i < 5; i++ {
		b.Publish("ex", "", nil, []byte{byte(i)})
	}
	ds := drain(t, c1, 5, time.Second)
	c1.Ack(ds[0].Tag) // ack only the first
	c1.Cancel()       // remaining 4 requeue in order
	c2, _ := b.Consume("q", 8, false)
	ds2 := drain(t, c2, 4, time.Second)
	for i, d := range ds2 {
		if d.Body[0] != byte(i+1) {
			t.Fatalf("redelivery %d = %d, want %d", i, d.Body[0], i+1)
		}
	}
}

func TestNack(t *testing.T) {
	b := newTestBroker(t)
	declare(t, b, "ex", Fanout, "q")
	c, _ := b.Consume("q", 1, false)
	b.Publish("ex", "", nil, []byte("m"))
	d := drain(t, c, 1, time.Second)[0]
	if err := c.Nack(d.Tag, true); err != nil {
		t.Fatal(err)
	}
	d2 := drain(t, c, 1, time.Second)[0]
	if string(d2.Body) != "m" {
		t.Fatalf("requeued body = %q", d2.Body)
	}
	if err := c.Nack(d2.Tag, false); err != nil {
		t.Fatal(err)
	}
	st, _ := b.QueueStats("q")
	if st.Ready != 0 || st.Unacked != 0 {
		t.Errorf("stats after drop = %+v", st)
	}
	if err := c.Ack(999); !errors.Is(err, ErrUnknownDelivery) {
		t.Errorf("Ack(bogus) = %v", err)
	}
}

func TestPrefetchLimitsInflight(t *testing.T) {
	b := newTestBroker(t)
	declare(t, b, "ex", Fanout, "q")
	c, _ := b.Consume("q", 2, false)
	for i := 0; i < 10; i++ {
		b.Publish("ex", "", nil, nil)
	}
	ds := drain(t, c, 2, time.Second)
	select {
	case <-c.Deliveries():
		t.Fatal("third delivery arrived beyond prefetch=2")
	case <-time.After(50 * time.Millisecond):
	}
	st, _ := b.QueueStats("q")
	if st.Ready != 8 || st.Unacked != 2 {
		t.Errorf("stats = %+v", st)
	}
	c.Ack(ds[0].Tag)
	drain(t, c, 1, time.Second)
}

func TestPublishBackpressure(t *testing.T) {
	b := newTestBroker(t)
	b.DeclareExchange("ex", Fanout)
	b.DeclareQueue("q", QueueOptions{MaxLen: 2})
	b.Bind("q", "ex", "#")
	b.Publish("ex", "", nil, nil)
	b.Publish("ex", "", nil, nil)
	blocked := make(chan struct{})
	go func() {
		b.Publish("ex", "", nil, nil) // blocks: queue full
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("publish did not block at MaxLen")
	case <-time.After(50 * time.Millisecond):
	}
	c, _ := b.Consume("q", 1, true)
	drain(t, c, 3, time.Second)
	select {
	case <-blocked:
	case <-time.After(time.Second):
		t.Fatal("publish stayed blocked after space freed")
	}
}

func TestAutoDeleteQueue(t *testing.T) {
	b := newTestBroker(t)
	b.DeclareExchange("ex", Fanout)
	name := b.AnonymousQueueName("ex")
	if !strings.Contains(name, "anonymous") {
		t.Errorf("anon name = %q", name)
	}
	b.DeclareQueue(name, QueueOptions{AutoDelete: true})
	b.Bind(name, "ex", "#")
	c, _ := b.Consume(name, 1, true)
	c.Cancel()
	if _, err := b.QueueStats(name); !errors.Is(err, ErrNoQueue) {
		t.Errorf("auto-delete queue still exists: %v", err)
	}
	// Publishing afterwards must not panic or route to the dead queue.
	if err := b.Publish("ex", "", nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeclareIdempotencyAndConflicts(t *testing.T) {
	b := newTestBroker(t)
	if err := b.DeclareExchange("ex", Topic); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareExchange("ex", Topic); err != nil {
		t.Fatalf("redeclare same kind: %v", err)
	}
	if err := b.DeclareExchange("ex", Direct); !errors.Is(err, ErrExchangeExists) {
		t.Errorf("redeclare different kind = %v", err)
	}
	if err := b.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", QueueOptions{}); err != nil {
		t.Fatalf("redeclare same opts: %v", err)
	}
	if err := b.DeclareQueue("q", QueueOptions{MaxLen: 5}); !errors.Is(err, ErrQueueExists) {
		t.Errorf("redeclare different opts = %v", err)
	}
	if err := b.Bind("q", "ex", "a.b"); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("q", "ex", "a.b"); err != nil {
		t.Fatalf("duplicate bind: %v", err)
	}
	if err := b.Bind("q", "ex", "bad..pattern"); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestErrorsOnMissingEntities(t *testing.T) {
	b := newTestBroker(t)
	if err := b.Publish("nope", "", nil, nil); !errors.Is(err, ErrNoExchange) {
		t.Errorf("Publish = %v", err)
	}
	if _, err := b.Consume("nope", 1, true); !errors.Is(err, ErrNoQueue) {
		t.Errorf("Consume = %v", err)
	}
	if err := b.Bind("nope", "alsonope", "#"); !errors.Is(err, ErrNoExchange) {
		t.Errorf("Bind = %v", err)
	}
	if err := b.DeleteQueue("nope"); !errors.Is(err, ErrNoQueue) {
		t.Errorf("DeleteQueue = %v", err)
	}
}

func TestDeleteQueueDropsMessagesAndConsumers(t *testing.T) {
	b := newTestBroker(t)
	declare(t, b, "ex", Fanout, "q")
	c, _ := b.Consume("q", 1, true)
	b.Publish("ex", "", nil, nil)
	if err := b.DeleteQueue("q"); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, c)
	// Publish after delete routes nowhere but succeeds.
	if err := b.Publish("ex", "", nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	b := New(nil)
	declare(t, b, "ex", Fanout, "q")
	c, _ := b.Consume("q", 1, true)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, c)
	if err := b.Publish("ex", "", nil, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close = %v", err)
	}
	if err := b.DeclareExchange("x", Topic); !errors.Is(err, ErrClosed) {
		t.Errorf("Declare after close = %v", err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestListingsAndTable(t *testing.T) {
	b := newTestBroker(t)
	declare(t, b, "Rstore.exchange", Topic, "Rstore.exchange.Rstoregroup")
	declare(t, b, "Sstore.exchange", Topic, "Sstore.exchange.Sstoregroup")
	qs := b.Queues()
	if len(qs) != 2 || qs[0] != "Rstore.exchange.Rstoregroup" {
		t.Errorf("Queues = %v", qs)
	}
	exs := b.Exchanges()
	if len(exs) != 2 || !strings.Contains(exs[0], "topic") {
		t.Errorf("Exchanges = %v", exs)
	}
	table := b.FormatQueueTable()
	if !strings.Contains(table, "Rstoregroup") || !strings.Contains(table, "idle") {
		t.Errorf("table = %q", table)
	}
}

func TestConcurrentPublishersAndConsumers(t *testing.T) {
	b := newTestBroker(t)
	declare(t, b, "ex", Fanout, "q")
	const producers, perProducer, consumers = 4, 250, 3
	var wg sync.WaitGroup
	conns := make([]Consumer, consumers)
	for i := 0; i < consumers; i++ {
		c, err := b.Consume("q", 8, false)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range c.Deliveries() {
				c.Ack(d.Tag)
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := b.Publish("ex", "", nil, []byte{byte(p)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	waitFor(t, 10*time.Second, func() bool {
		st, _ := b.QueueStats("q")
		return st.Acked >= int64(producers*perProducer)
	})
	for _, c := range conns {
		c.Cancel()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: goroutines never exited after cancel")
	}
	st, _ := b.QueueStats("q")
	if st.Acked != int64(producers*perProducer) {
		t.Errorf("acked = %d, want %d", st.Acked, producers*perProducer)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func waitClosed(t *testing.T, c Consumer) {
	t.Helper()
	deadline := time.After(time.Second)
	for {
		select {
		case _, ok := <-c.Deliveries():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("consumer channel never closed")
		}
	}
}

func BenchmarkPublishConsume(b *testing.B) {
	br := New(nil)
	defer br.Close()
	br.DeclareExchange("ex", Direct)
	br.DeclareQueue("q", QueueOptions{})
	br.Bind("q", "ex", "k")
	c, _ := br.Consume("q", 256, true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		n := 0
		for range c.Deliveries() {
			n++
			if n == b.N {
				return
			}
		}
	}()
	body := []byte("0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Publish("ex", "k", nil, body)
	}
	<-done
}
