package broker

import (
	"context"

	"bistream/internal/metrics"
)

// RegisterMetrics attaches the broker to a metric registry via a
// collector: every gather enumerates the live queues and emits
// per-queue depth/unacked gauges plus broker-wide totals. Queue names
// are dynamic (members come and go with scale in/out), which is exactly
// what a collector — unlike fixed named instruments — handles.
//
// Emitted series:
//
//	broker.queue.<name>.depth     gauge   ready messages
//	broker.queue.<name>.unacked   gauge   delivered, unacknowledged
//	broker.queue.depth            gauge   total ready across queues
//	broker.queue.unacked          gauge   total unacknowledged
//	broker.published              counter total messages routed in
//	broker.delivered              counter total messages handed out
//	broker.acked                  counter total settlements
//	broker.redelivered            counter messages requeued after delivery
//	broker.dead_lettered          counter messages moved to the dead queue
//	broker.queues                 gauge   declared queue count
func RegisterMetrics(b *Broker, reg *metrics.Registry) {
	reg.AddCollector(func(emit func(metrics.Sample)) {
		var depth, unacked int64
		var published, delivered, acked, redelivered, deadLettered int64
		names := b.Queues()
		for _, name := range names {
			st, err := b.QueueStats(name)
			if err != nil {
				continue
			}
			emit(metrics.Sample{Name: "broker.queue." + name + ".depth",
				Kind: metrics.KindGaugeMetric, Value: float64(st.Ready)})
			emit(metrics.Sample{Name: "broker.queue." + name + ".unacked",
				Kind: metrics.KindGaugeMetric, Value: float64(st.Unacked)})
			depth += int64(st.Ready)
			unacked += int64(st.Unacked)
			published += st.Published
			delivered += st.Delivered
			acked += st.Acked
			redelivered += st.Redelivered
			deadLettered += st.DeadLettered
		}
		emit(metrics.Sample{Name: "broker.queue.depth", Kind: metrics.KindGaugeMetric, Value: float64(depth)})
		emit(metrics.Sample{Name: "broker.queue.unacked", Kind: metrics.KindGaugeMetric, Value: float64(unacked)})
		emit(metrics.Sample{Name: "broker.published", Kind: metrics.KindCounterMetric, Value: float64(published)})
		emit(metrics.Sample{Name: "broker.delivered", Kind: metrics.KindCounterMetric, Value: float64(delivered)})
		emit(metrics.Sample{Name: "broker.acked", Kind: metrics.KindCounterMetric, Value: float64(acked)})
		emit(metrics.Sample{Name: "broker.redelivered", Kind: metrics.KindCounterMetric, Value: float64(redelivered)})
		emit(metrics.Sample{Name: "broker.dead_lettered", Kind: metrics.KindCounterMetric, Value: float64(deadLettered)})
		emit(metrics.Sample{Name: "broker.queues", Kind: metrics.KindGaugeMetric, Value: float64(len(names))})
	})
}

// ContextPublisher is the optional Client capability of publishing with
// cancellation: a publish blocked on a full (MaxLen-bounded) queue
// returns ctx.Err() when the context is done instead of waiting for
// space. The in-process Broker implements it; clients that do not are
// used via a best-effort pre-publish context check.
type ContextPublisher interface {
	PublishContext(ctx context.Context, exchange, routingKey string, headers map[string]string, body []byte) error
}
