package broker

import (
	"fmt"
	"strings"
)

// Topic routing-key patterns follow AMQP: keys are dot-separated words;
// in a binding pattern "*" matches exactly one word and "#" matches zero
// or more words. "stream.r.store" matches the patterns "stream.*.store",
// "stream.#" and "#", but not "stream.*".

// validatePattern rejects malformed binding patterns early so that
// misrouted topologies fail at Bind time rather than silently dropping
// messages.
func validatePattern(pattern string) error {
	if pattern == "" {
		return fmt.Errorf("broker: empty topic pattern")
	}
	for _, w := range strings.Split(pattern, ".") {
		if w == "" {
			return fmt.Errorf("broker: topic pattern %q has empty word", pattern)
		}
		if strings.ContainsAny(w, "*#") && w != "*" && w != "#" {
			return fmt.Errorf("broker: topic pattern %q mixes wildcard and text in word %q", pattern, w)
		}
	}
	return nil
}

// topicMatch reports whether the routing key matches the binding
// pattern. It runs a two-pointer match with backtracking over "#",
// equivalent to the classic glob algorithm, in O(len(pattern) *
// len(key)) worst case and O(n) for patterns without "#".
func topicMatch(pattern, key string) bool {
	p := strings.Split(pattern, ".")
	var k []string
	if key != "" { // the empty key has zero words, not one empty word
		k = strings.Split(key, ".")
	}
	return matchWords(p, k)
}

func matchWords(p, k []string) bool {
	pi, ki := 0, 0
	starP, starK := -1, -1 // position of last '#' in p and the k index tried
	for ki < len(k) {
		switch {
		// The "#" case must precede the literal comparison: a key whose
		// word is the literal text "#" would otherwise consume the
		// pattern's wildcard as an exact match and break backtracking.
		case pi < len(p) && p[pi] == "#":
			starP, starK = pi, ki
			pi++
		case pi < len(p) && (p[pi] == "*" || p[pi] == k[ki]):
			pi++
			ki++
		case starP >= 0:
			// Extend the last '#' by one more word.
			starK++
			pi = starP + 1
			ki = starK
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == "#" {
		pi++
	}
	return pi == len(p)
}
