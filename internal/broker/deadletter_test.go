package broker

import (
	"testing"
	"time"
)

func declareBound(t *testing.T, b *Broker, ex, q string, opts QueueOptions) {
	t.Helper()
	if err := b.DeclareExchange(ex, Topic); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue(q, opts); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(q, ex, "#"); err != nil {
		t.Fatal(err)
	}
}

// TestNackNoRequeueDeadLetters: an explicitly rejected message (poison)
// is moved to the shared dead queue, annotated with its origin, instead
// of being silently dropped.
func TestNackNoRequeueDeadLetters(t *testing.T) {
	b := New(nil)
	defer b.Close()
	declareBound(t, b, "ex", "q", QueueOptions{})
	if err := b.Publish("ex", "k", map[string]string{"h": "v"}, []byte("poison")); err != nil {
		t.Fatal(err)
	}
	c, err := b.Consume("q", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	d := drain(t, c, 1, 2*time.Second)[0]
	if err := c.Nack(d.Tag, false); err != nil {
		t.Fatal(err)
	}

	dc, err := b.Consume(DeadQueue, 1, false)
	if err != nil {
		t.Fatalf("dead queue not declared: %v", err)
	}
	dd := drain(t, dc, 1, 2*time.Second)[0]
	if string(dd.Body) != "poison" {
		t.Errorf("dead-lettered body = %q", dd.Body)
	}
	if dd.Headers["x-dead-from"] != "q" {
		t.Errorf("x-dead-from = %q, want %q", dd.Headers["x-dead-from"], "q")
	}
	if dd.Headers["h"] != "v" {
		t.Errorf("original headers lost: %v", dd.Headers)
	}
	if err := dc.Ack(dd.Tag); err != nil {
		t.Fatal(err)
	}
	st, err := b.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadLettered != 1 {
		t.Errorf("DeadLettered = %d, want 1", st.DeadLettered)
	}
}

// TestMaxRedeliverBoundsRequeueLoop: a message nack-requeued more than
// MaxRedeliver times is dead-lettered, so a permanently failing handler
// cannot spin a redelivery loop forever.
func TestMaxRedeliverBoundsRequeueLoop(t *testing.T) {
	b := New(nil)
	defer b.Close()
	declareBound(t, b, "ex", "q", QueueOptions{MaxRedeliver: 2})
	if err := b.Publish("ex", "k", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	c, err := b.Consume("q", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	// Delivery 1 is fresh; 2 and 3 are redeliveries; the third nack
	// pushes the count past the bound.
	for i := 0; i < 3; i++ {
		d := drain(t, c, 1, 2*time.Second)[0]
		if want := i > 0; d.Redelivered != want {
			t.Errorf("delivery %d Redelivered = %v, want %v", i+1, d.Redelivered, want)
		}
		if err := c.Nack(d.Tag, true); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case d, ok := <-c.Deliveries():
		if ok {
			t.Fatalf("message redelivered past the bound: %+v", d)
		}
	case <-time.After(50 * time.Millisecond):
	}
	st, err := b.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Redelivered != 2 {
		t.Errorf("Redelivered = %d, want 2", st.Redelivered)
	}
	if st.DeadLettered != 1 {
		t.Errorf("DeadLettered = %d, want 1", st.DeadLettered)
	}
	dst, err := b.QueueStats(DeadQueue)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Ready != 1 {
		t.Errorf("dead queue ready = %d, want 1", dst.Ready)
	}
}

// TestDeadQueueDoesNotDeadLetterItself: rejecting a message on the dead
// queue drops it for good instead of cycling it back.
func TestDeadQueueDoesNotDeadLetterItself(t *testing.T) {
	b := New(nil)
	defer b.Close()
	declareBound(t, b, "ex", "q", QueueOptions{})
	if err := b.Publish("ex", "k", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	c, err := b.Consume("q", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	d := drain(t, c, 1, 2*time.Second)[0]
	if err := c.Nack(d.Tag, false); err != nil {
		t.Fatal(err)
	}
	dc, err := b.Consume(DeadQueue, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	dd := drain(t, dc, 1, 2*time.Second)[0]
	if err := dc.Nack(dd.Tag, false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	st, err := b.QueueStats(DeadQueue)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != 0 || st.Unacked != 0 {
		t.Errorf("dead queue after self-nack: %+v", st)
	}
}

// TestUnlimitedRedeliverNeverDeadLetters: MaxRedeliver < 0 opts out of
// the bound (the dead queue itself relies on this).
func TestUnlimitedRedeliverNeverDeadLetters(t *testing.T) {
	b := New(nil)
	defer b.Close()
	declareBound(t, b, "ex", "q", QueueOptions{MaxRedeliver: -1})
	if err := b.Publish("ex", "k", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	c, err := b.Consume("q", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d := drain(t, c, 1, 2*time.Second)[0]
		if err := c.Nack(d.Tag, true); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadLettered != 0 {
		t.Errorf("DeadLettered = %d, want 0", st.DeadLettered)
	}
	if st.Ready+st.Unacked != 1 {
		t.Errorf("message lost: %+v", st)
	}
}
