package broker

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// tinySegBroker opens a durable broker with a very small segment size
// so a handful of messages forces several rollovers.
func tinySegBroker(t *testing.T, dir string) *Broker {
	t.Helper()
	b, err := NewDurableWith(nil, dir, DurableOptions{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func segmentCount(t *testing.T, logDir string) int {
	t.Helper()
	entries, err := os.ReadDir(logDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".seg" {
			n++
		}
	}
	return n
}

// TestSegmentRolloverReplaysIdentically drives a topic across
// MaxSegmentSize several times and verifies the reopened broker
// delivers the exact same messages in the same order.
func TestSegmentRolloverReplaysIdentically(t *testing.T) {
	dir := t.TempDir()
	b := tinySegBroker(t, dir)
	declareDurable(t, b, "ex", "q")
	const n = 60
	for i := 0; i < n; i++ {
		body := []byte(fmt.Sprintf("msg-%03d-%s", i, "padding-to-fill-segments"))
		if err := b.Publish("ex", fmt.Sprintf("k.%d", i), map[string]string{"i": fmt.Sprint(i)}, body); err != nil {
			t.Fatal(err)
		}
	}
	topicDir := filepath.Join(dir, "topics", "q")
	if c := segmentCount(t, topicDir); c < 3 {
		t.Fatalf("expected several segments after %d publishes, got %d", n, c)
	}
	b.Close()

	b2 := tinySegBroker(t, dir)
	defer b2.Close()
	st, err := b2.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != n {
		t.Fatalf("recovered ready = %d, want %d", st.Ready, n)
	}
	c, err := b2.Consume("q", n, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range drain(t, c, n, 5*time.Second) {
		want := fmt.Sprintf("msg-%03d-%s", i, "padding-to-fill-segments")
		if string(d.Body) != want || d.RoutingKey != fmt.Sprintf("k.%d", i) || d.Headers["i"] != fmt.Sprint(i) {
			t.Fatalf("replayed delivery %d = %q key=%q hdr=%q", i, d.Body, d.RoutingKey, d.Headers["i"])
		}
		c.Ack(d.Tag)
	}
}

// TestSegmentTruncationReclaimsSettledPrefix verifies online GC:
// segments that hold only settled enqueues (and their settlements) are
// deleted once the frontier passes them, without waiting for a
// restart compaction.
func TestSegmentTruncationReclaimsSettledPrefix(t *testing.T) {
	dir := t.TempDir()
	b := tinySegBroker(t, dir)
	defer b.Close()
	declareDurable(t, b, "ex", "q")
	const n = 80
	c, err := b.Consume("q", n, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := b.Publish("ex", "k", nil, []byte(fmt.Sprintf("body-%03d-with-some-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	topicDir := filepath.Join(dir, "topics", "q")
	grown := segmentCount(t, topicDir)
	if grown < 4 {
		t.Fatalf("expected the log to grow to several segments, got %d", grown)
	}
	for _, d := range drain(t, c, n, 5*time.Second) {
		if err := c.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	}
	// Everything is settled: only the trailing segments that the
	// frontier cannot pass (the active one, plus at most one holding
	// the final settles) may remain.
	if left := segmentCount(t, topicDir); left > 2 {
		t.Errorf("GC left %d segments (grew to %d), want <= 2", left, grown)
	}

	// The survivors replay to an empty queue.
	b.Close()
	b2 := tinySegBroker(t, dir)
	defer b2.Close()
	if st, _ := b2.QueueStats("q"); st.Ready != 0 {
		t.Errorf("settled messages resurrected after GC: %+v", st)
	}
}

// TestSegmentTruncationHoldsBackUnsettled pins the frontier with one
// old unacked message and checks its segment survives GC while later
// traffic churns, then releases it and sees the prefix reclaimed.
func TestSegmentTruncationHoldsBackUnsettled(t *testing.T) {
	dir := t.TempDir()
	b := tinySegBroker(t, dir)
	defer b.Close()
	declareDurable(t, b, "ex", "q")
	if err := b.Publish("ex", "k", nil, []byte("pin-the-first-segment")); err != nil {
		t.Fatal(err)
	}
	c, err := b.Consume("q", 200, false)
	if err != nil {
		t.Fatal(err)
	}
	pin := drain(t, c, 1, 2*time.Second)[0]

	topicDir := filepath.Join(dir, "topics", "q")
	firstSeg := lastSegment(t, topicDir) // only one segment exists yet
	const n = 80
	for i := 0; i < n; i++ {
		if err := b.Publish("ex", "k", nil, []byte(fmt.Sprintf("churn-%03d-with-some-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range drain(t, c, n, 5*time.Second) {
		if err := c.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(firstSeg); err != nil {
		t.Fatalf("pinned segment reclaimed while its enqueue is unacked: %v", err)
	}
	if err := c.Ack(pin.Tag); err != nil {
		t.Fatal(err)
	}
	// The ack lands in the active segment; the settled prefix —
	// including the pinned first segment — goes on the next append.
	if err := b.Publish("ex", "k", nil, []byte("nudge")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(firstSeg); !os.IsNotExist(err) {
		t.Errorf("settled prefix segment not reclaimed: %v", err)
	}
	if left := segmentCount(t, topicDir); left > 2 {
		t.Errorf("GC left %d segments after frontier release, want <= 2", left)
	}
}

// TestFollowerLogMirrorsLeader streams a leader journal's records into
// a FollowerLog and promotes the follower directory with NewDurable:
// the recovered broker must hold exactly the leader's unsettled state.
func TestFollowerLogMirrorsLeader(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	b := tinySegBroker(t, leaderDir)
	snap, tap, cancel, err := b.ReplSubscribe(4096)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	declareDurable(t, b, "ex", "q")
	c, err := b.Consume("q", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := b.Publish("ex", "k", nil, []byte(fmt.Sprintf("r-%03d-with-some-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Settle the first half; the second half must survive promotion.
	for _, d := range drain(t, c, n/2, 5*time.Second) {
		if err := c.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	}
	leaderLSN := b.LastLSN()

	f, err := OpenFollowerLog(followerDir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	for _, rec := range snap {
		if err := f.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
drainTap:
	for f.LastLSN() < leaderLSN {
		select {
		case rec, ok := <-tap:
			if !ok {
				t.Fatal("tap overflowed")
			}
			if err := f.Append(rec); err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			break drainTap
		}
	}
	if got := f.LastLSN(); got < leaderLSN {
		t.Fatalf("follower LSN %d < leader %d", got, leaderLSN)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b.Close()

	promoted := tinySegBroker(t, followerDir)
	defer promoted.Close()
	st, err := promoted.QueueStats("q")
	if err != nil {
		t.Fatalf("promoted follower missing queue: %v", err)
	}
	if st.Ready != n/2 {
		t.Fatalf("promoted ready = %d, want %d", st.Ready, n/2)
	}
	pc, err := promoted.Consume("q", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range drain(t, pc, n/2, 5*time.Second) {
		want := fmt.Sprintf("r-%03d-with-some-padding", n/2+i)
		if string(d.Body) != want {
			t.Fatalf("promoted delivery %d = %q, want %q", i, d.Body, want)
		}
		pc.Ack(d.Tag)
	}
	if promoted.LastLSN() < leaderLSN {
		t.Errorf("promoted LSN %d regressed below leader %d", promoted.LastLSN(), leaderLSN)
	}
}
