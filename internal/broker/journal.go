package broker

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Durability. The text highlights the binder's durable consumer-group
// subscriptions: "the group will receive messages even if they are sent
// while all applications in the group are stopped". The in-process
// broker supports the same through an append-only journal: declares,
// binds, enqueues into durable queues and settlements are logged;
// reopening the journal replays them, so messages published while no
// consumer was attached — or not yet acknowledged at shutdown — survive
// a broker restart.
//
// Semantics: at-least-once. A message that was requeued (Nack) and
// later settled may, across a crash, be redelivered once more —
// matching real AMQP brokers. The journal is compacted on open
// (declares + surviving messages only) and flushed per record; fsync is
// left to the OS, as RabbitMQ's default publish path does without
// publisher confirms.

// journal record types.
const (
	recDeclareExchange byte = iota + 1
	recDeclareQueue
	recBind
	recEnqueue
	recSettle
	recDeleteQueue
)

// errCorruptRecord marks a record whose fields do not parse; replay
// skips it.
var errCorruptRecord = errors.New("broker: corrupt journal record")

type journal struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
}

// journalState is the replayed content of a journal file.
type journalState struct {
	exchanges []recExchange
	queues    []recQueue
	binds     []recBinding
	// messages per durable queue, in enqueue order, already trimmed of
	// settled deliveries. Settlement is tracked per message id, so
	// out-of-order acks (competing consumers, requeues) drop exactly
	// the right messages.
	messages map[string][]Message
}

// qReplay accumulates one queue's journal events in order.
type qReplay struct {
	order []uint64
	msgs  map[uint64]Message
}

func (qr *qReplay) enqueue(id uint64, msg Message) {
	if qr.msgs == nil {
		qr.msgs = make(map[uint64]Message)
	}
	qr.msgs[id] = msg
	qr.order = append(qr.order, id)
}

func (qr *qReplay) settle(id uint64) { delete(qr.msgs, id) }

func (qr *qReplay) live() []Message {
	var out []Message
	for _, id := range qr.order {
		if msg, ok := qr.msgs[id]; ok {
			out = append(out, msg)
			delete(qr.msgs, id) // a re-enqueued id emits once, at its
			// earliest surviving position
		}
	}
	return out
}

type recExchange struct {
	name string
	kind ExchangeKind
}

type recQueue struct {
	name string
	opts QueueOptions
}

type recBinding struct {
	queue, exchange, key string
}

// openJournal loads (and compacts) an existing journal, returning the
// replayed state and an open handle positioned for appending.
func openJournal(dir string) (*journal, *journalState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("broker: journal dir: %w", err)
	}
	path := filepath.Join(dir, "broker.journal")
	state, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	// Compact: rewrite the topology records; the caller re-enqueues the
	// surviving messages through the normal (journaled) path, which
	// assigns them fresh ids in the new file.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j := &journal{f: f, w: bufio.NewWriter(f), path: path}
	for _, ex := range state.exchanges {
		j.logDeclareExchange(ex.name, ex.kind)
	}
	for _, q := range state.queues {
		j.logDeclareQueue(q.name, q.opts)
	}
	for _, bd := range state.binds {
		j.logBind(bd.queue, bd.exchange, bd.key)
	}
	if err := j.w.Flush(); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, state, nil
}

// replayJournal parses the journal, tolerating a truncated final record
// (a crash mid-append).
func replayJournal(path string) (*journalState, error) {
	state := &journalState{messages: make(map[string][]Message)}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return state, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	replays := map[string]*qReplay{}
	queueReplay := func(name string) *qReplay {
		qr := replays[name]
		if qr == nil {
			qr = &qReplay{}
			replays[name] = qr
		}
		return qr
	}
	r := bufio.NewReader(f)
	for {
		rec, err := readRecord(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // truncated tail: drop it
			}
			return nil, err
		}
		rd := &reader{buf: rec[1:]}
		switch rec[0] {
		case recDeclareExchange:
			name := rd.string()
			kind := ExchangeKind(rd.byte())
			if rd.err == nil {
				state.exchanges = append(state.exchanges, recExchange{name, kind})
			}
		case recDeclareQueue:
			name := rd.string()
			opts := QueueOptions{
				AutoDelete: rd.bool(),
				MaxLen:     int(rd.uvarint()),
				Durable:    true,
			}
			if rd.err == nil {
				// MaxRedeliver is stored shifted by one so that the
				// unlimited sentinel (-1) journals as zero; journals from
				// before the field default it (absent → 0 → default).
				if len(rd.buf) > 0 {
					opts.MaxRedeliver = int(rd.uvarint()) - 1
				}
			}
			if rd.err == nil {
				state.queues = append(state.queues, recQueue{name, opts})
			}
		case recBind:
			q, ex, key := rd.string(), rd.string(), rd.string()
			if rd.err == nil {
				state.binds = append(state.binds, recBinding{q, ex, key})
			}
		case recEnqueue:
			q := rd.string()
			id := rd.uvarint()
			msg := Message{
				Exchange:   rd.string(),
				RoutingKey: rd.string(),
				Headers:    rd.headers(),
				Body:       rd.bytes(),
			}
			if rd.err == nil {
				queueReplay(q).enqueue(id, msg)
			}
		case recSettle:
			q := rd.string()
			id := rd.uvarint()
			if rd.err == nil {
				queueReplay(q).settle(id)
			}
		case recDeleteQueue:
			name := rd.string()
			if rd.err == nil {
				kept := state.queues[:0]
				for _, q := range state.queues {
					if q.name != name {
						kept = append(kept, q)
					}
				}
				state.queues = kept
				keptB := state.binds[:0]
				for _, bd := range state.binds {
					if bd.queue != name {
						keptB = append(keptB, bd)
					}
				}
				state.binds = keptB
				delete(replays, name)
			}
		default:
			// Unknown record from a future version: skip.
		}
	}
	for q, qr := range replays {
		if live := qr.live(); len(live) > 0 {
			state.messages[q] = live
		}
	}
	return state, nil
}

// readRecord reads one length-prefixed record.
func readRecord(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxJournalRecord {
		return nil, fmt.Errorf("broker: corrupt journal record of %d bytes", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

const maxJournalRecord = 16 << 20

func (j *journal) append(rec []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	j.w.Write(hdr[:])
	j.w.Write(rec)
	j.w.Flush()
}

func (j *journal) logDeclareExchange(name string, kind ExchangeKind) {
	rec := []byte{recDeclareExchange}
	rec = appendString(rec, name)
	rec = append(rec, byte(kind))
	j.append(rec)
}

func (j *journal) logDeleteQueue(name string) {
	rec := []byte{recDeleteQueue}
	rec = appendString(rec, name)
	j.append(rec)
}

func (j *journal) logDeclareQueue(name string, opts QueueOptions) {
	rec := []byte{recDeclareQueue}
	rec = appendString(rec, name)
	rec = append(rec, boolByte(opts.AutoDelete))
	rec = binary.AppendUvarint(rec, uint64(opts.MaxLen))
	rec = binary.AppendUvarint(rec, uint64(opts.MaxRedeliver+1))
	j.append(rec)
}

func (j *journal) logBind(queue, exchange, key string) {
	rec := []byte{recBind}
	rec = appendString(rec, queue)
	rec = appendString(rec, exchange)
	rec = appendString(rec, key)
	j.append(rec)
}

func (j *journal) logEnqueue(queue string, id uint64, msg Message) {
	rec := []byte{recEnqueue}
	rec = appendString(rec, queue)
	rec = binary.AppendUvarint(rec, id)
	rec = appendString(rec, msg.Exchange)
	rec = appendString(rec, msg.RoutingKey)
	rec = appendHeaders(rec, msg.Headers)
	rec = appendBytes(rec, msg.Body)
	j.append(rec)
}

func (j *journal) logSettle(queue string, id uint64) {
	rec := []byte{recSettle}
	rec = appendString(rec, queue)
	rec = binary.AppendUvarint(rec, id)
	j.append(rec)
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.w.Flush()
	return j.f.Close()
}
