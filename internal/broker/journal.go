package broker

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Durability. The text highlights the binder's durable consumer-group
// subscriptions: "the group will receive messages even if they are sent
// while all applications in the group are stopped". The in-process
// broker supports the same through an append-only log: declares, binds,
// enqueues into durable queues and settlements are logged; reopening
// the log replays them, so messages published while no consumer was
// attached — or not yet acknowledged at shutdown — survive a broker
// restart.
//
// The log is segmented (see segment.go): topology records live under
// dir/meta, each durable queue's enqueue/settle records under
// dir/topics/<queue>, all rolling over at MaxSegmentBytes and stamped
// with a journal-wide LSN. Fully settled segments are reclaimed online
// (prefix truncation per topic); the whole log is additionally
// compacted on open. Earlier versions kept one monolithic
// dir/broker.journal — openJournal migrates such a file into the
// segmented layout and removes it.
//
// Semantics: at-least-once. A message that was requeued (Nack) and
// later settled may, across a crash, be redelivered once more —
// matching real AMQP brokers. Records are flushed per append; fsync is
// left to the OS, as RabbitMQ's default publish path does without
// publisher confirms.

// journal record types.
const (
	recDeclareExchange byte = iota + 1
	recDeclareQueue
	recBind
	recEnqueue
	recSettle
	recDeleteQueue
)

// errCorruptRecord marks a record whose fields do not parse; replay
// skips it.
var errCorruptRecord = errors.New("broker: corrupt journal record")

// journal names inside the broker data directory.
const (
	metaDirName    = "meta"
	topicsDirName  = "topics"
	legacyFileName = "broker.journal"
)

type journal struct {
	mu     sync.Mutex
	dir    string
	maxSeg int64
	meta   *segLog              // topology records
	topics map[string]*topicLog // durable queue name -> its segmented log
	lsn    uint64               // last assigned journal-wide LSN

	taps   map[uint64]chan ReplRecord // live replication taps
	tapSeq uint64
}

// journalState is the replayed content of a journal.
type journalState struct {
	exchanges []recExchange
	queues    []recQueue
	binds     []recBinding
	// messages per durable queue, in enqueue order, already trimmed of
	// settled deliveries. Settlement is tracked per message id, so
	// out-of-order acks (competing consumers, requeues) drop exactly
	// the right messages.
	messages map[string][]Message
}

// qReplay accumulates one queue's journal events in order.
type qReplay struct {
	order []uint64
	msgs  map[uint64]Message
}

func (qr *qReplay) enqueue(id uint64, msg Message) {
	if qr.msgs == nil {
		qr.msgs = make(map[uint64]Message)
	}
	qr.msgs[id] = msg
	qr.order = append(qr.order, id)
}

func (qr *qReplay) settle(id uint64) { delete(qr.msgs, id) }

func (qr *qReplay) live() []Message {
	var out []Message
	for _, id := range qr.order {
		if msg, ok := qr.msgs[id]; ok {
			out = append(out, msg)
			delete(qr.msgs, id) // a re-enqueued id emits once, at its
			// earliest surviving position
		}
	}
	return out
}

type recExchange struct {
	name string
	kind ExchangeKind
}

type recQueue struct {
	name string
	opts QueueOptions
}

type recBinding struct {
	queue, exchange, key string
}

// stateBuilder folds journal records, in log order, into a
// journalState. Both the segmented replay (records sorted by LSN) and
// the legacy single-file replay (file order) feed it.
type stateBuilder struct {
	state   *journalState
	replays map[string]*qReplay
}

func newStateBuilder() *stateBuilder {
	return &stateBuilder{
		state:   &journalState{messages: make(map[string][]Message)},
		replays: make(map[string]*qReplay),
	}
}

func (sb *stateBuilder) queueReplay(name string) *qReplay {
	qr := sb.replays[name]
	if qr == nil {
		qr = &qReplay{}
		sb.replays[name] = qr
	}
	return qr
}

// apply folds one record into the state. Records that do not parse are
// skipped, consistent with the torn-tail tolerance of the file layer.
func (sb *stateBuilder) apply(rec []byte) {
	if len(rec) == 0 {
		return
	}
	state := sb.state
	rd := &reader{buf: rec[1:]}
	switch rec[0] {
	case recDeclareExchange:
		name := rd.string()
		kind := ExchangeKind(rd.byte())
		if rd.err == nil {
			state.exchanges = append(state.exchanges, recExchange{name, kind})
		}
	case recDeclareQueue:
		name := rd.string()
		opts := QueueOptions{
			AutoDelete: rd.bool(),
			MaxLen:     int(rd.uvarint()),
			Durable:    true,
		}
		if rd.err == nil {
			// MaxRedeliver is stored shifted by one so that the
			// unlimited sentinel (-1) journals as zero; journals from
			// before the field default it (absent → 0 → default).
			if len(rd.buf) > 0 {
				opts.MaxRedeliver = int(rd.uvarint()) - 1
			}
		}
		if rd.err == nil {
			state.queues = append(state.queues, recQueue{name, opts})
		}
	case recBind:
		q, ex, key := rd.string(), rd.string(), rd.string()
		if rd.err == nil {
			state.binds = append(state.binds, recBinding{q, ex, key})
		}
	case recEnqueue:
		q := rd.string()
		id := rd.uvarint()
		msg := Message{
			Exchange:   rd.string(),
			RoutingKey: rd.string(),
			Headers:    rd.headers(),
			Body:       rd.bytes(),
		}
		if rd.err == nil {
			sb.queueReplay(q).enqueue(id, msg)
		}
	case recSettle:
		q := rd.string()
		id := rd.uvarint()
		if rd.err == nil {
			sb.queueReplay(q).settle(id)
		}
	case recDeleteQueue:
		name := rd.string()
		if rd.err == nil {
			kept := state.queues[:0]
			for _, q := range state.queues {
				if q.name != name {
					kept = append(kept, q)
				}
			}
			state.queues = kept
			keptB := state.binds[:0]
			for _, bd := range state.binds {
				if bd.queue != name {
					keptB = append(keptB, bd)
				}
			}
			state.binds = keptB
			delete(sb.replays, name)
		}
	default:
		// Unknown record from a future version: skip.
	}
}

func (sb *stateBuilder) finish() *journalState {
	for q, qr := range sb.replays {
		if live := qr.live(); len(live) > 0 {
			sb.state.messages[q] = live
		}
	}
	return sb.state
}

// openJournal loads (and compacts) an existing journal directory,
// returning the replayed state and an open journal positioned for
// appending. Compaction wipes the segment directories and rewrites
// only the topology records; the caller re-enqueues the surviving
// messages through the normal (journaled) path, which assigns them
// fresh ids. The new LSN sequence continues above the highest replayed
// LSN, so LSNs stay monotonic across restarts — replication positions
// and failover catch-up comparisons depend on that.
func openJournal(dir string, maxSeg int64) (*journal, *journalState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	if maxSeg <= 0 {
		maxSeg = DefaultMaxSegmentBytes
	}
	metaDir := filepath.Join(dir, metaDirName)
	topicsDir := filepath.Join(dir, topicsDirName)
	legacyPath := filepath.Join(dir, legacyFileName)

	sb := newStateBuilder()
	var maxLSN uint64
	if _, err := os.Stat(metaDir); err == nil {
		// Segmented layout: merge-replay every log in LSN order, so
		// interleavings like declare/enqueue/delete-queue/redeclare
		// resolve exactly as they happened.
		type replayRec struct {
			lsn uint64
			rec []byte
		}
		var all []replayRec
		collect := func(logDir string) error {
			l, err := openSegLog(logDir, maxSeg)
			if err != nil {
				return err
			}
			defer l.close()
			return l.replay(func(lsn uint64, rec []byte, _ uint64) error {
				if lsn > maxLSN {
					maxLSN = lsn
				}
				all = append(all, replayRec{lsn, rec})
				return nil
			})
		}
		if err := collect(metaDir); err != nil {
			return nil, nil, err
		}
		if entries, err := os.ReadDir(topicsDir); err == nil {
			for _, e := range entries {
				if !e.IsDir() {
					continue
				}
				if err := collect(filepath.Join(topicsDir, e.Name())); err != nil {
					return nil, nil, err
				}
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].lsn < all[j].lsn })
		for _, r := range all {
			sb.apply(r.rec)
		}
	} else if err := replayLegacyJournal(legacyPath, sb); err != nil {
		return nil, nil, err
	}
	state := sb.finish()

	// Compact: wipe the directories and rewrite the topology records.
	if err := os.RemoveAll(metaDir); err != nil {
		return nil, nil, err
	}
	if err := os.RemoveAll(topicsDir); err != nil {
		return nil, nil, err
	}
	meta, err := openSegLog(metaDir, maxSeg)
	if err != nil {
		return nil, nil, err
	}
	j := &journal{
		dir:    dir,
		maxSeg: maxSeg,
		meta:   meta,
		topics: make(map[string]*topicLog),
		lsn:    maxLSN,
		taps:   make(map[uint64]chan ReplRecord),
	}
	for _, ex := range state.exchanges {
		j.logDeclareExchange(ex.name, ex.kind)
	}
	for _, q := range state.queues {
		j.logDeclareQueue(q.name, q.opts)
	}
	for _, bd := range state.binds {
		j.logBind(bd.queue, bd.exchange, bd.key)
	}
	os.Remove(legacyPath) // migration complete; ignore "not exists"
	return j, state, nil
}

// replayLegacyJournal parses a pre-segmentation monolithic journal
// file into sb. Any truncated or undecodable tail — including corrupt
// length bytes from a torn header — is treated as a clean end-of-log:
// a crash during append tears exactly the final record, and recovery
// must keep everything before it.
func replayLegacyJournal(path string, sb *stateBuilder) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		rec, err := readRecord(r)
		if err != nil {
			break // io.EOF or a torn tail: clean end of log
		}
		sb.apply(rec)
	}
	return nil
}

// readRecord reads one length-prefixed legacy record. A length field
// that cannot be a real record (zero, or beyond the bound) is reported
// as io.ErrUnexpectedEOF: torn tail, not fatal corruption.
func readRecord(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxJournalRecord {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

const maxJournalRecord = 16 << 20

// appendMeta writes one topology record, assigning its LSN.
func (j *journal) appendMeta(rec []byte) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lsn++
	j.meta.append(j.lsn, rec) // best-effort, like the pre-segment journal
	j.emitLocked(ReplRecord{LSN: j.lsn, Payload: rec})
	return j.lsn
}

// appendTopic writes one enqueue/settle record into the queue's topic
// log, assigning its LSN and advancing the truncation frontier.
func (j *journal) appendTopic(queue string, rec []byte) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lsn++
	tl := j.topics[queue]
	if tl == nil {
		sl, err := openSegLog(j.topicDir(queue), j.maxSeg)
		if err != nil {
			return j.lsn // unjournaled: best-effort, matching append errors
		}
		tl = newTopicLog(sl)
		j.topics[queue] = tl
	}
	if segID, err := tl.log.append(j.lsn, rec); err == nil {
		tl.track(rec, segID)
	}
	j.emitLocked(ReplRecord{LSN: j.lsn, Topic: queue, Payload: rec})
	return j.lsn
}

func (j *journal) topicDir(queue string) string {
	return filepath.Join(j.dir, topicsDirName, topicDirName(queue))
}

// emitLocked fans a committed record out to the live replication taps.
// A tap too slow to keep up is closed and dropped — the follower
// detects the closed channel and resynchronizes from a fresh snapshot,
// which is always safe and never blocks the publish path.
func (j *journal) emitLocked(rec ReplRecord) {
	for id, ch := range j.taps {
		select {
		case ch <- rec:
		default:
			close(ch)
			delete(j.taps, id)
		}
	}
}

// subscribe returns a consistent snapshot of every record currently in
// the log (sorted by LSN) plus a live tap that receives all records
// appended after the snapshot. cancel detaches the tap.
func (j *journal) subscribe(buf int) ([]ReplRecord, <-chan ReplRecord, func(), error) {
	if buf < 1 {
		buf = 1024
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var snap []ReplRecord
	collect := func(l *segLog, topic string) error {
		return l.replay(func(lsn uint64, rec []byte, _ uint64) error {
			snap = append(snap, ReplRecord{LSN: lsn, Topic: topic, Payload: rec})
			return nil
		})
	}
	if err := collect(j.meta, ""); err != nil {
		return nil, nil, nil, err
	}
	for q, tl := range j.topics {
		if err := collect(tl.log, q); err != nil {
			return nil, nil, nil, err
		}
	}
	sort.Slice(snap, func(i, k int) bool { return snap[i].LSN < snap[k].LSN })
	ch := make(chan ReplRecord, buf)
	id := j.tapSeq
	j.tapSeq++
	j.taps[id] = ch
	cancel := func() {
		j.mu.Lock()
		if _, ok := j.taps[id]; ok {
			delete(j.taps, id)
			close(ch)
		}
		j.mu.Unlock()
	}
	return snap, ch, cancel, nil
}

// lastLSN reports the highest assigned LSN.
func (j *journal) lastLSN() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lsn
}

func (j *journal) logDeclareExchange(name string, kind ExchangeKind) {
	rec := []byte{recDeclareExchange}
	rec = appendString(rec, name)
	rec = append(rec, byte(kind))
	j.appendMeta(rec)
}

// logDeleteQueue journals the deletion and reclaims the queue's topic
// log wholesale — every record in it is dead past the delete.
func (j *journal) logDeleteQueue(name string) {
	rec := []byte{recDeleteQueue}
	rec = appendString(rec, name)
	j.mu.Lock()
	j.lsn++
	j.meta.append(j.lsn, rec)
	if tl := j.topics[name]; tl != nil {
		tl.log.close()
		os.RemoveAll(tl.log.dir)
		delete(j.topics, name)
	}
	j.emitLocked(ReplRecord{LSN: j.lsn, Payload: rec})
	j.mu.Unlock()
}

func (j *journal) logDeclareQueue(name string, opts QueueOptions) {
	rec := []byte{recDeclareQueue}
	rec = appendString(rec, name)
	rec = append(rec, boolByte(opts.AutoDelete))
	rec = binary.AppendUvarint(rec, uint64(opts.MaxLen))
	rec = binary.AppendUvarint(rec, uint64(opts.MaxRedeliver+1))
	j.appendMeta(rec)
}

func (j *journal) logBind(queue, exchange, key string) {
	rec := []byte{recBind}
	rec = appendString(rec, queue)
	rec = appendString(rec, exchange)
	rec = appendString(rec, key)
	j.appendMeta(rec)
}

func (j *journal) logEnqueue(queue string, id uint64, msg Message) uint64 {
	rec := []byte{recEnqueue}
	rec = appendString(rec, queue)
	rec = binary.AppendUvarint(rec, id)
	rec = appendString(rec, msg.Exchange)
	rec = appendString(rec, msg.RoutingKey)
	rec = appendHeaders(rec, msg.Headers)
	rec = appendBytes(rec, msg.Body)
	return j.appendTopic(queue, rec)
}

func (j *journal) logSettle(queue string, id uint64) {
	rec := []byte{recSettle}
	rec = appendString(rec, queue)
	rec = binary.AppendUvarint(rec, id)
	j.appendTopic(queue, rec)
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for id, ch := range j.taps {
		close(ch)
		delete(j.taps, id)
	}
	err := j.meta.close()
	for _, tl := range j.topics {
		if cerr := tl.log.close(); err == nil {
			err = cerr
		}
	}
	return err
}
