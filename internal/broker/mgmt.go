package broker

import (
	"encoding/json"
	"net/http"
	"strings"
)

// NewMgmtHandler exposes the broker's management API over HTTP, the
// counterpart of the RabbitMQ management plugin the text inspects on
// port 15672 (Figure 18):
//
//	GET /               text dashboard (the queue table)
//	GET /api/queues     JSON array of queue statistics
//	GET /api/exchanges  JSON array of exchanges
//	GET /api/overview   JSON totals
func NewMgmtHandler(b *Broker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(b.FormatQueueTable()))
	})
	mux.HandleFunc("/api/queues", func(w http.ResponseWriter, r *http.Request) {
		var out []QueueStats
		for _, name := range b.Queues() {
			if st, err := b.QueueStats(name); err == nil {
				out = append(out, st)
			}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/api/exchanges", func(w http.ResponseWriter, r *http.Request) {
		type exchangeInfo struct {
			Name string `json:"name"`
			Kind string `json:"type"`
		}
		var out []exchangeInfo
		for _, e := range b.Exchanges() {
			name, kind, _ := strings.Cut(e, " ")
			out = append(out, exchangeInfo{Name: name, Kind: kind})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/api/overview", func(w http.ResponseWriter, r *http.Request) {
		type overview struct {
			Queues    int   `json:"queues"`
			Exchanges int   `json:"exchanges"`
			Ready     int   `json:"messages_ready"`
			Unacked   int   `json:"messages_unacknowledged"`
			Published int64 `json:"publish_total"`
			Acked     int64 `json:"ack_total"`
		}
		var ov overview
		ov.Exchanges = len(b.Exchanges())
		for _, name := range b.Queues() {
			st, err := b.QueueStats(name)
			if err != nil {
				continue
			}
			ov.Queues++
			ov.Ready += st.Ready
			ov.Unacked += st.Unacked
			ov.Published += st.Published
			ov.Acked += st.Acked
		}
		writeJSON(w, ov)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
