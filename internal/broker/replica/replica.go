// Package replica turns a set of brokerd processes into a replicated
// broker group with leader failover, removing the single-broker SPOF
// from the BiStream deployment. One node at a time is the leader: it
// opens the durable journal as a live broker (broker.NewDurable),
// serves clients through its wire.Server, and streams every committed
// journal record to the followers, acknowledging publishes only once a
// configurable quorum of replicas holds them. Followers mirror the
// leader's segmented log byte-for-byte (broker.FollowerLog), so
// promotion is nothing more than reopening the local data directory as
// a broker. Failover uses term-numbered elections in the Raft style:
// a follower whose replication lease expires stands as a candidate,
// and peers grant their vote only to candidates at least as caught up
// (by last LSN) as themselves, which steers leadership to the
// most-caught-up replica and never loses an acknowledged publish when
// a quorum survives.
package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bistream/internal/broker"
	"bistream/internal/metrics"
	"bistream/internal/wire"
)

// Role is a node's position in the group at a point in time.
type Role int

// The three node roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

// String names the role for logs and /metrics labels.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return "unknown"
	}
}

// Config describes one member of a replica group.
type Config struct {
	// ID uniquely names this node within the group.
	ID string
	// Dir is the broker data directory (journal segments, term file).
	Dir string
	// ClientAddr is the listen address for the client wire protocol.
	// The node serves broker.ErrNotLeader there until it is elected.
	ClientAddr string
	// ReplAddr is the listen address for replication and votes.
	ReplAddr string
	// Peers maps node ID to replication address for every group member;
	// this node's own entry is ignored if present. Membership is static.
	Peers map[string]string
	// Quorum is how many replicas (including the leader) must hold a
	// record before its publish is acknowledged. Zero means a majority
	// of the group.
	Quorum int
	// HeartbeatInterval is the leader's keep-alive cadence. Default 25ms.
	HeartbeatInterval time.Duration
	// LeaseTimeout is how long a follower tolerates silence from its
	// leader before abandoning the stream. Default 150ms.
	LeaseTimeout time.Duration
	// ElectionTimeout is the base wait before standing for election once
	// no leader is reachable; the actual wait is randomized in
	// [1x, 2x) to break ties. Default = 2 * LeaseTimeout.
	ElectionTimeout time.Duration
	// DialTimeout bounds peer dials. Default 250ms.
	DialTimeout time.Duration
	// AckTimeout bounds how long a publish waits for quorum. Default 5s.
	AckTimeout time.Duration
	// MaxSegmentBytes is the journal segment rollover size (0 = default).
	MaxSegmentBytes int64
	// Seed randomizes election jitter; 0 derives one from ID.
	Seed int64
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
	// Metrics, when set, receives replica.* counters and gauges.
	Metrics *metrics.Registry
}

// followerState is the leader's view of one attached follower session.
type followerState struct {
	id    string
	acked uint64
}

// Node is one member of a replica group. Create with NewNode, bring up
// with Start, and tear down with Kill; the node elects itself into the
// leader or follower role on its own.
type Node struct {
	cfg         Config
	peers       map[string]string // excluding self
	peerIDs     []string          // sorted, excluding self
	clusterSize int

	srv        *wire.Server
	clientAddr net.Addr
	replLn     net.Listener
	replAddr   net.Addr

	mu         sync.Mutex
	ackCond    *sync.Cond
	roleVal    Role
	term       uint64
	votedFor   string
	leaderTerm uint64 // term of our own most recent election win
	leaderID   string // last observed leader (self when leading)
	b          *broker.Broker
	flog       *broker.FollowerLog
	followers  map[*followerState]struct{}
	conns      map[net.Conn]struct{}
	stopped    bool

	stopCh   chan struct{}
	wg       sync.WaitGroup
	rng      *rand.Rand
	probeIdx int
}

// NewNode validates cfg, fills defaults, and returns an idle node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("replica: Config.ID is required")
	}
	if cfg.Dir == "" {
		return nil, errors.New("replica: Config.Dir is required")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 25 * time.Millisecond
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 150 * time.Millisecond
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 2 * cfg.LeaseTimeout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 250 * time.Millisecond
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	seed := cfg.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(cfg.ID))
		seed = int64(h.Sum64())
	}
	peers := make(map[string]string)
	ids := make([]string, 0, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		if id == cfg.ID {
			continue
		}
		peers[id] = addr
		ids = append(ids, id)
	}
	sort.Strings(ids)
	n := &Node{
		cfg:         cfg,
		peers:       peers,
		peerIDs:     ids,
		clusterSize: len(peers) + 1,
		followers:   make(map[*followerState]struct{}),
		conns:       make(map[net.Conn]struct{}),
		stopCh:      make(chan struct{}),
		rng:         rand.New(rand.NewSource(seed)),
	}
	n.ackCond = sync.NewCond(&n.mu)
	if cfg.Quorum <= 0 {
		n.cfg.Quorum = n.clusterSize/2 + 1
	}
	if n.cfg.Quorum > n.clusterSize {
		return nil, fmt.Errorf("replica: quorum %d exceeds group size %d", n.cfg.Quorum, n.clusterSize)
	}
	return n, nil
}

// Start opens the data directory, binds both listeners, and launches
// the role state machine as a follower.
func (n *Node) Start() error {
	if err := os.MkdirAll(n.cfg.Dir, 0o755); err != nil {
		return err
	}
	if err := n.loadTerm(); err != nil {
		return err
	}
	fl, err := broker.OpenFollowerLog(n.cfg.Dir, n.cfg.MaxSegmentBytes)
	if err != nil {
		return err
	}
	n.flog = fl
	n.srv = wire.NewServer(nil, n.cfg.Logf)
	ca, err := n.srv.Listen(n.cfg.ClientAddr)
	if err != nil {
		fl.Close()
		return err
	}
	n.clientAddr = ca
	ln, err := net.Listen("tcp", n.cfg.ReplAddr)
	if err != nil {
		n.srv.Close()
		fl.Close()
		return err
	}
	n.replLn = ln
	n.replAddr = ln.Addr()
	n.logf("replica %s: up (clients %v, repl %v, group %d, quorum %d, term %d)",
		n.cfg.ID, n.clientAddr, n.replAddr, n.clusterSize, n.cfg.Quorum, n.term)
	n.wg.Add(2)
	go n.acceptLoop()
	go n.run()
	return nil
}

// Kill stops the node abruptly: listeners and connections are closed
// and the role loop exits. The data directory survives for a restart
// (a fresh NewNode on the same Dir).
func (n *Node) Kill() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	close(n.stopCh)
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	n.ackCond.Broadcast()
	if n.replLn != nil {
		n.replLn.Close()
	}
	if n.srv != nil {
		n.srv.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
}

// ID returns the node's configured identity.
func (n *Node) ID() string { return n.cfg.ID }

// ClientAddr is the bound client wire address (useful with ":0").
func (n *Node) ClientAddr() net.Addr { return n.clientAddr }

// ReplAddr is the bound replication address.
func (n *Node) ReplAddr() net.Addr { return n.replAddr }

// Role reports the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.roleVal
}

// Term reports the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// IsLeader reports whether the node is currently the live leader.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.stopped && n.roleVal == Leader && n.b != nil
}

// Broker returns the node's broker while it leads, else nil.
func (n *Node) Broker() *broker.Broker {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.b
}

// LastLSN reports the node's replication frontier regardless of role.
func (n *Node) LastLSN() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastLSNLocked()
}

// WaitLeader polls until exactly one live node leads and returns it.
func WaitLeader(nodes []*Node, timeout time.Duration) (*Node, error) {
	deadline := time.Now().Add(timeout)
	for {
		var leader *Node
		count := 0
		for _, nd := range nodes {
			if nd.IsLeader() {
				leader = nd
				count++
			}
		}
		if count == 1 {
			return leader, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("replica: %d leaders after %v, want 1", count, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- persistence of (term, votedFor) ---

func (n *Node) termPath() string { return filepath.Join(n.cfg.Dir, "term") }

func (n *Node) loadTerm() error {
	data, err := os.ReadFile(n.termPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	fields := strings.Fields(string(data))
	if len(fields) >= 1 {
		t, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("replica: corrupt term file: %w", err)
		}
		n.term = t
	}
	if len(fields) >= 2 {
		n.votedFor = fields[1]
	}
	return nil
}

func (n *Node) persistTermLocked() {
	data := fmt.Sprintf("%d %s\n", n.term, n.votedFor)
	if err := os.WriteFile(n.termPath(), []byte(data), 0o644); err != nil {
		n.logf("replica %s: persisting term: %v", n.cfg.ID, err)
	}
}

// bumpTermLocked adopts a higher term, clearing the vote and waking the
// leader loop so it steps down.
func (n *Node) bumpTermLocked(term uint64) {
	n.term = term
	n.votedFor = ""
	n.persistTermLocked()
	n.ackCond.Broadcast()
}

func (n *Node) adoptTerm(term uint64) {
	n.mu.Lock()
	if term > n.term {
		n.bumpTermLocked(term)
	}
	n.mu.Unlock()
}

// lastLSNLocked reads the replication frontier from whichever log the
// node currently holds open.
func (n *Node) lastLSNLocked() uint64 {
	if n.b != nil {
		return n.b.LastLSN()
	}
	if n.flog != nil {
		return n.flog.LastLSN()
	}
	return 0
}

// --- role state machine ---

func (n *Node) run() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			break
		}
		r := n.roleVal
		n.mu.Unlock()
		switch r {
		case Follower:
			n.runFollower()
		case Candidate:
			n.runCandidate()
		case Leader:
			n.runLeader()
		}
	}
	n.mu.Lock()
	b := n.b
	n.b = nil
	fl := n.flog
	n.flog = nil
	n.mu.Unlock()
	if b != nil {
		b.SetCommitGate(nil)
		b.Close()
	}
	if fl != nil {
		fl.Close()
	}
}

func (n *Node) isStopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

func (n *Node) setRole(r Role) {
	n.mu.Lock()
	n.roleVal = r
	n.mu.Unlock()
}

// electionTimeout randomizes in [base, 2*base) to break election ties.
// Called only from the run goroutine, which keeps rng single-threaded.
func (n *Node) electionTimeout() time.Duration {
	base := n.cfg.ElectionTimeout
	return base + time.Duration(n.rng.Int63n(int64(base)))
}

// runFollower hunts for a leader and mirrors its stream. Every spell of
// successful streaming resets the election countdown; when the
// countdown lapses with no leader in reach, the node stands.
func (n *Node) runFollower() {
	deadline := time.Now().Add(n.electionTimeout())
	for {
		if n.isStopped() {
			return
		}
		if time.Now().After(deadline) {
			n.setRole(Candidate)
			return
		}
		if n.followOnce() {
			// We held a live stream until just now; restart the clock.
			deadline = time.Now().Add(n.electionTimeout())
			continue
		}
		select {
		case <-n.stopCh:
			return
		case <-time.After(n.cfg.HeartbeatInterval):
		}
	}
}

// followOnce probes the peer set for the current leader and, if found,
// streams from it until the connection or lease breaks. It reports
// whether any replication traffic was received.
func (n *Node) followOnce() bool {
	if len(n.peerIDs) == 0 {
		return false
	}
	start := n.probeIdx
	n.probeIdx++
	for i := range n.peerIDs {
		if n.isStopped() {
			return false
		}
		id := n.peerIDs[(start+i)%len(n.peerIDs)]
		conn, err := net.DialTimeout("tcp", n.peers[id], n.cfg.DialTimeout)
		if err != nil {
			continue
		}
		if !n.trackConn(conn) {
			return false
		}
		got := n.joinAndStream(conn)
		n.dropConn(conn)
		if got {
			return true
		}
	}
	return false
}

func (n *Node) joinAndStream(conn net.Conn) bool {
	n.mu.Lock()
	term := n.term
	last := n.lastLSNLocked()
	n.mu.Unlock()
	if err := n.writeConnFrame(conn, frame{Op: rJoin, ID: n.cfg.ID, Term: term, LSN: last}); err != nil {
		return false
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(2 * n.cfg.LeaseTimeout))
	payload, err := wire.ReadFrame(br)
	if err != nil {
		return false
	}
	f, err := decodeFrame(payload)
	if err != nil {
		return false
	}
	switch f.Op {
	case rNotLeader:
		n.adoptTerm(f.Term)
		return false
	case rWelcome:
		n.mu.Lock()
		if f.Term < n.term {
			n.mu.Unlock()
			return false // stale leader from an old term
		}
		if f.Term > n.term {
			n.bumpTermLocked(f.Term)
		}
		n.leaderID = f.ID
		n.mu.Unlock()
		return n.streamFrom(conn, br, f.ID)
	default:
		return false
	}
}

// streamFrom wipes the local log and mirrors the leader: snapshot
// records, the snapshot boundary, then live records, acking each. A
// lease-length silence, a stale-term heartbeat, or any error ends the
// session. Reports whether at least one frame arrived.
func (n *Node) streamFrom(conn net.Conn, br *bufio.Reader, leaderID string) bool {
	n.mu.Lock()
	fl := n.flog
	n.mu.Unlock()
	if fl == nil {
		return false
	}
	if err := fl.Reset(); err != nil {
		n.logf("replica %s: resync reset: %v", n.cfg.ID, err)
		return false
	}
	n.count("replica.resyncs")
	n.logf("replica %s: syncing from leader %s", n.cfg.ID, leaderID)
	received := false
	for {
		if n.isStopped() {
			return received
		}
		conn.SetReadDeadline(time.Now().Add(n.cfg.LeaseTimeout))
		payload, err := wire.ReadFrame(br)
		if err != nil {
			return received
		}
		f, err := decodeFrame(payload)
		if err != nil {
			return received
		}
		received = true
		switch f.Op {
		case rRecord:
			if err := fl.Append(broker.ReplRecord{LSN: f.LSN, Topic: f.Topic, Payload: f.Payload}); err != nil {
				n.logf("replica %s: applying lsn %d: %v", n.cfg.ID, f.LSN, err)
				return received
			}
			n.count("replica.records_applied")
			if err := n.writeConnFrame(conn, frame{Op: rAck, LSN: f.LSN}); err != nil {
				return received
			}
		case rSnapEnd:
			// Ack the boundary so an empty snapshot still counts us in.
			if err := n.writeConnFrame(conn, frame{Op: rAck, LSN: f.LSN}); err != nil {
				return received
			}
		case rHeart:
			n.mu.Lock()
			stale := f.Term < n.term
			if f.Term > n.term {
				n.bumpTermLocked(f.Term)
			}
			n.mu.Unlock()
			if stale {
				return received // a higher term exists; abandon this leader
			}
		case rNotLeader:
			return received
		default:
			return received
		}
	}
}

// runCandidate stands for election: bump the term, vote for self, and
// canvass the peers. Majority wins promote; anything else demotes back
// to follower for another randomized wait.
func (n *Node) runCandidate() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.term++
	n.votedFor = n.cfg.ID
	n.persistTermLocked()
	term := n.term
	last := n.lastLSNLocked()
	n.mu.Unlock()
	n.count("replica.elections")
	n.logf("replica %s: standing in term %d (lastLSN %d)", n.cfg.ID, term, last)

	type voteResult struct {
		f  frame
		ok bool
	}
	results := make(chan voteResult, len(n.peerIDs))
	for _, id := range n.peerIDs {
		addr := n.peers[id]
		go func(addr string) {
			f, ok := n.requestVote(addr, term, last)
			results <- voteResult{f, ok}
		}(addr)
	}
	votes := 1 // our own
	needed := n.clusterSize/2 + 1
	timeout := time.After(n.electionTimeout())
	pending := len(n.peerIDs)
collect:
	for pending > 0 && votes < needed {
		select {
		case r := <-results:
			pending--
			if !r.ok {
				continue
			}
			if r.f.Term > term {
				n.adoptTerm(r.f.Term)
				n.setRole(Follower)
				return
			}
			if r.f.Granted {
				votes++
			}
		case <-timeout:
			break collect
		case <-n.stopCh:
			return
		}
	}
	n.mu.Lock()
	if !n.stopped && votes >= needed && n.term == term {
		n.roleVal = Leader
		n.leaderTerm = term
		n.leaderID = n.cfg.ID
		n.logf("replica %s: won term %d with %d/%d votes", n.cfg.ID, term, votes, n.clusterSize)
	} else {
		n.roleVal = Follower
	}
	n.mu.Unlock()
}

func (n *Node) requestVote(addr string, term, last uint64) (frame, bool) {
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return frame{}, false
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * n.cfg.LeaseTimeout))
	if err := wire.WriteFrame(conn, encodeFrame(frame{Op: rVoteReq, ID: n.cfg.ID, Term: term, LSN: last})); err != nil {
		return frame{}, false
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		return frame{}, false
	}
	f, err := decodeFrame(payload)
	if err != nil || f.Op != rVoteResp {
		return frame{}, false
	}
	return f, true
}

// runLeader promotes the local log to a live broker, serves clients,
// and reigns until a higher term appears or the node stops.
func (n *Node) runLeader() {
	n.mu.Lock()
	if n.stopped || n.term != n.leaderTerm {
		n.roleVal = Follower
		n.mu.Unlock()
		return
	}
	term := n.term
	fl := n.flog
	n.flog = nil
	n.mu.Unlock()
	if fl != nil {
		fl.Close()
	}

	b, err := broker.NewDurableWith(nil, n.cfg.Dir, broker.DurableOptions{MaxSegmentBytes: n.cfg.MaxSegmentBytes})
	if err != nil {
		n.logf("replica %s: opening journal as leader: %v", n.cfg.ID, err)
		fl2, ferr := broker.OpenFollowerLog(n.cfg.Dir, n.cfg.MaxSegmentBytes)
		n.mu.Lock()
		if ferr == nil {
			n.flog = fl2
		}
		n.roleVal = Follower
		n.mu.Unlock()
		return
	}
	b.SetCommitGate(n.commitGate)
	n.mu.Lock()
	n.b = b
	n.mu.Unlock()
	n.srv.SetBroker(b)
	n.count("replica.promotions")
	n.gauge("replica.term", int64(term))
	n.logf("replica %s: leading term %d (lastLSN %d)", n.cfg.ID, term, b.LastLSN())

	n.mu.Lock()
	for !n.stopped && n.term == term {
		n.ackCond.Wait()
	}
	stopped := n.stopped
	n.b = nil
	n.mu.Unlock()

	n.srv.SetBroker(nil)
	b.SetCommitGate(nil)
	b.Close()
	if stopped {
		return
	}
	n.count("replica.step_downs")
	n.logf("replica %s: stepping down from term %d", n.cfg.ID, term)
	fl3, err := broker.OpenFollowerLog(n.cfg.Dir, n.cfg.MaxSegmentBytes)
	n.mu.Lock()
	if err != nil {
		n.logf("replica %s: reopening follower log: %v", n.cfg.ID, err)
	} else {
		n.flog = fl3
	}
	n.roleVal = Follower
	n.mu.Unlock()
}

// commitGate is installed on the leader's publish path: wait until
// quorum-1 distinct followers ack the LSN (the leader itself is the
// quorum's first member).
func (n *Node) commitGate(ctx context.Context, lsn uint64) error {
	need := n.cfg.Quorum - 1
	if need <= 0 {
		return nil
	}
	deadline := time.Now().Add(n.cfg.AckTimeout)
	timer := time.AfterFunc(n.cfg.AckTimeout, n.ackCond.Broadcast)
	defer timer.Stop()
	stop := context.AfterFunc(ctx, n.ackCond.Broadcast)
	defer stop()
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if n.stopped || n.roleVal != Leader {
			return broker.ErrNotLeader
		}
		if n.ackedLocked(lsn) >= need {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			n.count("replica.quorum_timeouts")
			return fmt.Errorf("replica: no quorum for lsn %d within %v", lsn, n.cfg.AckTimeout)
		}
		n.ackCond.Wait()
	}
}

// ackedLocked counts distinct follower IDs whose ack covers lsn.
func (n *Node) ackedLocked(lsn uint64) int {
	seen := make(map[string]struct{})
	for fs := range n.followers {
		if fs.acked >= lsn {
			seen[fs.id] = struct{}{}
		}
	}
	return len(seen)
}

// --- replication listener ---

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.replLn.Accept()
		if err != nil {
			return
		}
		if !n.trackConn(conn) {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleRepl(conn)
		}()
	}
}

func (n *Node) handleRepl(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(2 * n.cfg.LeaseTimeout))
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		n.dropConn(conn)
		return
	}
	conn.SetReadDeadline(time.Time{})
	f, err := decodeFrame(payload)
	if err != nil {
		n.dropConn(conn)
		return
	}
	switch f.Op {
	case rVoteReq:
		term, granted := n.onVoteRequest(f)
		_ = n.writeConnFrame(conn, frame{Op: rVoteResp, Term: term, Granted: granted})
		n.dropConn(conn)
	case rJoin:
		n.serveFollower(conn, f)
	default:
		n.dropConn(conn)
	}
}

// onVoteRequest implements the vote rule: adopt higher terms, then
// grant iff the candidate's term matches ours, we have not voted for
// anyone else this term, and the candidate is at least as caught up.
func (n *Node) onVoteRequest(f frame) (uint64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f.Term > n.term {
		n.bumpTermLocked(f.Term)
	}
	granted := false
	if f.Term == n.term && (n.votedFor == "" || n.votedFor == f.ID) && f.LSN >= n.lastLSNLocked() {
		n.votedFor = f.ID
		n.persistTermLocked()
		granted = true
	}
	return n.term, granted
}

// serveFollower runs one leader-side replication session: welcome,
// snapshot, then live stream with heartbeats, while a reader goroutine
// folds the follower's acks into the quorum count.
func (n *Node) serveFollower(conn net.Conn, join frame) {
	n.mu.Lock()
	if join.Term > n.term {
		n.bumpTermLocked(join.Term)
	}
	ok := !n.stopped && n.roleVal == Leader && n.b != nil && n.term == n.leaderTerm
	term := n.term
	b := n.b
	n.mu.Unlock()
	if !ok {
		_ = n.writeConnFrame(conn, frame{Op: rNotLeader, Term: term})
		n.dropConn(conn)
		return
	}
	snap, tap, cancel, err := b.ReplSubscribe(4096)
	if err != nil {
		n.dropConn(conn)
		return
	}
	defer cancel()
	fs := &followerState{id: join.ID}
	n.mu.Lock()
	n.followers[fs] = struct{}{}
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.followers, fs)
		n.mu.Unlock()
		n.ackCond.Broadcast()
		n.dropConn(conn)
	}()
	if err := n.writeConnFrame(conn, frame{Op: rWelcome, Term: term, ID: n.cfg.ID}); err != nil {
		return
	}
	n.logf("replica %s: follower %s joined term %d; snapshotting %d records",
		n.cfg.ID, join.ID, term, len(snap))

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		br := bufio.NewReader(conn)
		for {
			payload, err := wire.ReadFrame(br)
			if err != nil {
				conn.Close()
				return
			}
			f, err := decodeFrame(payload)
			if err != nil || f.Op != rAck {
				conn.Close()
				return
			}
			n.mu.Lock()
			if f.LSN > fs.acked {
				fs.acked = f.LSN
			}
			n.mu.Unlock()
			n.ackCond.Broadcast()
		}
	}()

	var snapMax uint64
	for _, rec := range snap {
		if rec.LSN > snapMax {
			snapMax = rec.LSN
		}
		if err := n.writeConnFrame(conn, frame{Op: rRecord, LSN: rec.LSN, Topic: rec.Topic, Payload: rec.Payload}); err != nil {
			return
		}
		n.count("replica.records_streamed")
	}
	if err := n.writeConnFrame(conn, frame{Op: rSnapEnd, LSN: snapMax}); err != nil {
		return
	}
	ticker := time.NewTicker(n.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case rec, open := <-tap:
			if !open {
				// The follower fell too far behind the tap; drop the
				// session so it reconnects and takes a fresh snapshot.
				n.logf("replica %s: follower %s overran the stream buffer", n.cfg.ID, join.ID)
				return
			}
			if err := n.writeConnFrame(conn, frame{Op: rRecord, LSN: rec.LSN, Topic: rec.Topic, Payload: rec.Payload}); err != nil {
				return
			}
			n.count("replica.records_streamed")
		case <-ticker.C:
			n.mu.Lock()
			still := !n.stopped && n.roleVal == Leader && n.term == term
			n.mu.Unlock()
			if !still {
				return
			}
			if err := n.writeConnFrame(conn, frame{Op: rHeart, Term: term, LSN: b.LastLSN()}); err != nil {
				return
			}
		case <-n.stopCh:
			return
		}
	}
}

// --- connection bookkeeping and small helpers ---

func (n *Node) trackConn(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		c.Close()
		return false
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Node) dropConn(c net.Conn) {
	c.Close()
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// writeConnFrame writes one frame with a bounded write deadline so a
// wedged peer cannot hang the writer forever.
func (n *Node) writeConnFrame(conn net.Conn, f frame) error {
	conn.SetWriteDeadline(time.Now().Add(2 * n.cfg.LeaseTimeout))
	err := wire.WriteFrame(conn, encodeFrame(f))
	conn.SetWriteDeadline(time.Time{})
	return err
}

func (n *Node) logf(format string, args ...any) { n.cfg.Logf(format, args...) }

func (n *Node) count(name string) {
	if n.cfg.Metrics != nil {
		n.cfg.Metrics.Counter(name).Inc()
	}
}

func (n *Node) gauge(name string, v int64) {
	if n.cfg.Metrics != nil {
		n.cfg.Metrics.Gauge(name).Set(v)
	}
}
