package replica

import (
	"encoding/binary"
	"fmt"
)

// The replication protocol rides on the same length-prefixed framing as
// the client wire protocol (wire.ReadFrame/WriteFrame) but on its own
// listener with its own opcode space, starting at 64 so a frame that
// strays onto the wrong port is recognizably foreign.
//
// Conversations:
//
//	follower → leader:  rJoin(id, term, lastLSN)
//	leader   → follower: rWelcome(term, leaderID)          — wipe and resync
//	                     rRecord(lsn, topic, payload) ...  — snapshot, then live
//	                     rSnapEnd(lsn)                     — snapshot boundary
//	                     rHeart(term, commitLSN)           — lease refresh
//	follower → leader:  rAck(lsn)                          — per applied record
//	anyone   → anyone:  rNotLeader(term)                   — refusal, try elsewhere
//	candidate → peer:   rVoteReq(term, candidateID, lastLSN)
//	peer → candidate:   rVoteResp(term, granted)
const (
	rJoin byte = iota + 64
	rWelcome
	rNotLeader
	rRecord
	rSnapEnd
	rHeart
	rAck
	rVoteReq
	rVoteResp
)

// frame is the decoded union of every replication message. Only the
// fields meaningful for Op are set; the rest stay zero.
type frame struct {
	Op      byte
	Term    uint64
	LSN     uint64 // lastLSN in rJoin/rVoteReq, record LSN in rRecord/rAck/rSnapEnd, commit LSN in rHeart
	ID      string // node id: sender in rJoin, leader in rWelcome, candidate in rVoteReq
	Topic   string // rRecord only; "" = topology record
	Payload []byte // rRecord only
	Granted bool   // rVoteResp only
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBlob(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// encodeFrame serializes f into a wire payload (without the length
// prefix; the caller hands it to wire.WriteFrame).
func encodeFrame(f frame) []byte {
	out := []byte{f.Op}
	switch f.Op {
	case rJoin, rVoteReq:
		out = appendStr(out, f.ID)
		out = binary.AppendUvarint(out, f.Term)
		out = binary.AppendUvarint(out, f.LSN)
	case rWelcome:
		out = binary.AppendUvarint(out, f.Term)
		out = appendStr(out, f.ID)
	case rNotLeader:
		out = binary.AppendUvarint(out, f.Term)
	case rRecord:
		out = binary.AppendUvarint(out, f.LSN)
		out = appendStr(out, f.Topic)
		out = appendBlob(out, f.Payload)
	case rSnapEnd, rAck:
		out = binary.AppendUvarint(out, f.LSN)
	case rHeart:
		out = binary.AppendUvarint(out, f.Term)
		out = binary.AppendUvarint(out, f.LSN)
	case rVoteResp:
		out = binary.AppendUvarint(out, f.Term)
		if f.Granted {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// fieldReader decodes sequentially, remembering the first error.
type fieldReader struct {
	buf []byte
	err error
}

func (r *fieldReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("replica: truncated %s", what)
	}
}

func (r *fieldReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *fieldReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.fail("string")
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *fieldReader) blob() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail("bytes")
		return nil
	}
	b := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return b
}

func (r *fieldReader) boolean() bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) < 1 {
		r.fail("bool")
		return false
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b != 0
}

// decodeFrame parses a replication payload. It is total: any input
// either yields a well-formed frame or an error, never a panic — the
// fuzz target FuzzReplFrame holds it to that.
func decodeFrame(buf []byte) (frame, error) {
	if len(buf) == 0 {
		return frame{}, fmt.Errorf("replica: empty frame")
	}
	f := frame{Op: buf[0]}
	r := &fieldReader{buf: buf[1:]}
	switch f.Op {
	case rJoin, rVoteReq:
		f.ID = r.str()
		f.Term = r.uvarint()
		f.LSN = r.uvarint()
	case rWelcome:
		f.Term = r.uvarint()
		f.ID = r.str()
	case rNotLeader:
		f.Term = r.uvarint()
	case rRecord:
		f.LSN = r.uvarint()
		f.Topic = r.str()
		f.Payload = r.blob()
	case rSnapEnd, rAck:
		f.LSN = r.uvarint()
	case rHeart:
		f.Term = r.uvarint()
		f.LSN = r.uvarint()
	case rVoteResp:
		f.Term = r.uvarint()
		f.Granted = r.boolean()
	default:
		return frame{}, fmt.Errorf("replica: unknown opcode %d", f.Op)
	}
	if r.err != nil {
		return frame{}, r.err
	}
	return f, nil
}
