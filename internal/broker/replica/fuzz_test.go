package replica

import "testing"

// FuzzReplFrame throws arbitrary bytes at the replication-frame
// decoder: it must never panic, and anything it accepts must re-encode
// to bytes that decode to the same frame (a lossless round trip), since
// every vote and every replicated record crosses this decoder.
func FuzzReplFrame(f *testing.F) {
	f.Add(encodeFrame(frame{Op: rJoin, ID: "n1", Term: 3, LSN: 42}))
	f.Add(encodeFrame(frame{Op: rRecord, LSN: 7, Topic: "q", Payload: []byte{1, 2, 3}}))
	f.Add(encodeFrame(frame{Op: rVoteReq, ID: "cand", Term: 5, LSN: 77}))
	f.Add(encodeFrame(frame{Op: rHeart, Term: 4, LSN: 100}))
	f.Add([]byte{rAck})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := decodeFrame(data)
		if err != nil {
			return
		}
		back, err := decodeFrame(encodeFrame(fr))
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if back.Op != fr.Op || back.Term != fr.Term || back.LSN != fr.LSN ||
			back.ID != fr.ID || back.Topic != fr.Topic || back.Granted != fr.Granted ||
			string(back.Payload) != string(fr.Payload) {
			t.Fatalf("round trip changed frame: %+v -> %+v", fr, back)
		}
	})
}
