package replica

import (
	"fmt"
	"net"
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/wire"
)

// freeAddr reserves a loopback port and releases it, returning an
// address a node can (very probably) bind a moment later.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// fastConfig returns aggressive timings so elections settle in tens of
// milliseconds instead of seconds.
func fastConfig(t *testing.T, id, dir string, peers map[string]string, quorum int, seed int64) Config {
	return Config{
		ID:                id,
		Dir:               dir,
		ClientAddr:        "127.0.0.1:0",
		ReplAddr:          peers[id],
		Peers:             peers,
		Quorum:            quorum,
		HeartbeatInterval: 5 * time.Millisecond,
		LeaseTimeout:      60 * time.Millisecond,
		ElectionTimeout:   90 * time.Millisecond,
		DialTimeout:       100 * time.Millisecond,
		AckTimeout:        2 * time.Second,
		MaxSegmentBytes:   4096, // small segments so tests exercise rollover
		Seed:              seed,
		Logf:              t.Logf,
	}
}

// startCluster brings up size nodes with pre-agreed replication addrs.
func startCluster(t *testing.T, size, quorum int) []*Node {
	t.Helper()
	peers := make(map[string]string, size)
	ids := make([]string, 0, size)
	for i := 0; i < size; i++ {
		id := fmt.Sprintf("n%d", i+1)
		ids = append(ids, id)
		peers[id] = freeAddr(t)
	}
	nodes := make([]*Node, 0, size)
	for i, id := range ids {
		n, err := NewNode(fastConfig(t, id, t.TempDir(), peers, quorum, int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Kill)
		nodes = append(nodes, n)
	}
	return nodes
}

// alive filters out killed nodes.
func alive(nodes []*Node, dead *Node) []*Node {
	out := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if n != dead {
			out = append(out, n)
		}
	}
	return out
}

func TestProtocolRoundTrip(t *testing.T) {
	frames := []frame{
		{Op: rJoin, ID: "n1", Term: 3, LSN: 42},
		{Op: rWelcome, Term: 3, ID: "leader"},
		{Op: rNotLeader, Term: 9},
		{Op: rRecord, LSN: 7, Topic: "q", Payload: []byte{1, 2, 3}},
		{Op: rRecord, LSN: 8, Topic: "", Payload: nil},
		{Op: rSnapEnd, LSN: 11},
		{Op: rHeart, Term: 4, LSN: 100},
		{Op: rAck, LSN: 12},
		{Op: rVoteReq, ID: "cand", Term: 5, LSN: 77},
		{Op: rVoteResp, Term: 5, Granted: true},
		{Op: rVoteResp, Term: 6, Granted: false},
	}
	for _, want := range frames {
		got, err := decodeFrame(encodeFrame(want))
		if err != nil {
			t.Fatalf("op %d: %v", want.Op, err)
		}
		if got.Op != want.Op || got.Term != want.Term || got.LSN != want.LSN ||
			got.ID != want.ID || got.Topic != want.Topic || got.Granted != want.Granted {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
		if string(got.Payload) != string(want.Payload) {
			t.Fatalf("payload: got %q, want %q", got.Payload, want.Payload)
		}
	}
	if _, err := decodeFrame(nil); err == nil {
		t.Fatal("empty frame decoded")
	}
	if _, err := decodeFrame([]byte{0x7f}); err == nil {
		t.Fatal("unknown opcode decoded")
	}
}

// TestSingleNodeLeadsAndServes: a group of one elects itself and
// serves publishes immediately (quorum 1 needs no follower acks).
func TestSingleNodeLeadsAndServes(t *testing.T) {
	nodes := startCluster(t, 1, 1)
	leader, err := WaitLeader(nodes, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b := leader.Broker()
	if err := b.DeclareExchange("ex", broker.Direct); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", broker.QueueOptions{Durable: true}); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("q", "ex", "k"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("ex", "k", nil, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	st, err := b.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != 1 {
		t.Fatalf("ready = %d, want 1", st.Ready)
	}
}

// TestReplicationCatchesUp: in a group of three, everything the leader
// journals shows up on both followers' logs.
func TestReplicationCatchesUp(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	leader, err := WaitLeader(nodes, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b := leader.Broker()
	if err := b.DeclareExchange("ex", broker.Direct); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", broker.QueueOptions{Durable: true}); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("q", "ex", "k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := b.Publish("ex", "k", nil, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	want := leader.LastLSN()
	deadline := time.Now().Add(5 * time.Second)
	for _, n := range alive(nodes, leader) {
		for n.LastLSN() < want {
			if time.Now().After(deadline) {
				t.Fatalf("follower %s stuck at lsn %d, want %d", n.ID(), n.LastLSN(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestFailoverNoAckedLoss is the headline guarantee: kill the leader
// after a batch of acknowledged publishes and every one of them must
// be consumable from the promoted follower.
func TestFailoverNoAckedLoss(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	leader, err := WaitLeader(nodes, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 0, len(nodes))
	for _, n := range nodes {
		addrs = append(addrs, n.ClientAddr().String())
	}
	c, err := wire.Connect(wire.Config{
		Addrs:          addrs,
		Reconnect:      true,
		DialTimeout:    time.Second,
		InitialBackoff: 2 * time.Millisecond,
		MaxBackoff:     25 * time.Millisecond,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.DeclareExchange("ex", broker.Direct); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareQueue("q", broker.QueueOptions{Durable: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind("q", "ex", "k"); err != nil {
		t.Fatal(err)
	}
	publish := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			body := []byte(fmt.Sprintf("msg-%d", i))
			deadline := time.Now().Add(10 * time.Second)
			for {
				err := c.Publish("ex", "k", nil, body)
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("publish %d never succeeded: %v", i, err)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
	publish(0, 30)

	leader.Kill()
	promoted, err := WaitLeader(alive(nodes, leader), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("promoted %s in term %d", promoted.ID(), promoted.Term())
	publish(30, 60)

	cons, err := c.Consume("q", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	deadline := time.After(15 * time.Second)
	for len(got) < 60 {
		select {
		case d, ok := <-cons.Deliveries():
			if !ok {
				// Consumer dropped by a reconnect; re-attach happens via
				// the client, so just re-open it.
				cons, err = c.Consume("q", 0, false)
				if err != nil {
					t.Fatal(err)
				}
				continue
			}
			got[string(d.Body)] = true
			_ = cons.Ack(d.Tag)
		case <-deadline:
			t.Fatalf("timed out with %d/60 distinct messages", len(got))
		}
	}
	for i := 0; i < 60; i++ {
		if !got[fmt.Sprintf("msg-%d", i)] {
			t.Errorf("acked message msg-%d lost in failover", i)
		}
	}
}

// TestPublishFailsWithoutQuorum: with Quorum equal to the full group
// size, killing the followers must make publishes fail rather than
// silently under-replicate.
func TestPublishFailsWithoutQuorum(t *testing.T) {
	nodes := startCluster(t, 3, 3)
	leader, err := WaitLeader(nodes, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b := leader.Broker()
	if err := b.DeclareExchange("ex", broker.Direct); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", broker.QueueOptions{Durable: true}); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("q", "ex", "k"); err != nil {
		t.Fatal(err)
	}
	// Let both followers attach, then verify a publish clears the full
	// quorum.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = b.Publish("ex", "k", nil, []byte("pre")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("publish with full quorum: %v", err)
		}
	}
	for _, n := range alive(nodes, leader) {
		n.Kill()
	}
	// AckTimeout in fastConfig is 2s; the gate must reject, not hang.
	start := time.Now()
	if err := b.Publish("ex", "k", nil, []byte("orphan")); err == nil {
		t.Fatal("publish succeeded without quorum")
	} else if time.Since(start) > 10*time.Second {
		t.Fatalf("gate took %v to fail", time.Since(start))
	}
}

// TestTermSurvivesRestart: the persisted term must carry across a kill
// and restart so the node can never regress to an older term, and a
// previously acknowledged message must still be there after reopening.
func TestTermSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	addr := freeAddr(t)
	peers := map[string]string{"solo": addr}
	cfg := fastConfig(t, "solo", dir, peers, 1, 7)
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	leader, err := WaitLeader([]*Node{n}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b := leader.Broker()
	if err := b.DeclareExchange("ex", broker.Direct); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareQueue("q", broker.QueueOptions{Durable: true}); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("q", "ex", "k"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("ex", "k", nil, []byte("persist-me")); err != nil {
		t.Fatal(err)
	}
	term := n.Term()
	n.Kill()

	var n2 *Node
	deadline := time.Now().Add(5 * time.Second)
	for {
		n2, err = NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err = n2.Start(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart never bound %s: %v", addr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Cleanup(n2.Kill)
	if got := n2.Term(); got < term {
		t.Fatalf("term regressed across restart: %d < %d", got, term)
	}
	leader2, err := WaitLeader([]*Node{n2}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if leader2.Term() <= term {
		t.Fatalf("restarted leader term %d, want > %d", leader2.Term(), term)
	}
	st, err := leader2.Broker().QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != 1 {
		t.Fatalf("ready after restart = %d, want 1", st.Ready)
	}
}

// TestVoteRefusedToLaggingCandidate checks the LSN half of the vote
// rule directly: a node never hands leadership to a peer that knows
// less than it does.
func TestVoteRefusedToLaggingCandidate(t *testing.T) {
	nodes := startCluster(t, 1, 1)
	leader, err := WaitLeader(nodes, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b := leader.Broker()
	if err := b.DeclareExchange("ex", broker.Fanout); err != nil {
		t.Fatal(err)
	}
	last := leader.LastLSN()
	if last == 0 {
		t.Fatal("expected a journaled record")
	}
	term := leader.Term()
	if _, granted := leader.onVoteRequest(frame{Op: rVoteReq, ID: "lagger", Term: term + 1, LSN: last - 1}); granted {
		t.Fatal("vote granted to a lagging candidate")
	}
	if _, granted := leader.onVoteRequest(frame{Op: rVoteReq, ID: "caughtup", Term: term + 2, LSN: last}); !granted {
		t.Fatal("vote refused to a caught-up candidate")
	}
}
