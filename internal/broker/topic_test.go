package broker

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTopicMatch(t *testing.T) {
	cases := []struct {
		pattern, key string
		want         bool
	}{
		{"a.b.c", "a.b.c", true},
		{"a.b.c", "a.b.d", false},
		{"a.b.c", "a.b", false},
		{"*", "a", true},
		{"*", "a.b", false},
		{"a.*", "a.b", true},
		{"a.*", "a", false},
		{"a.*.c", "a.b.c", true},
		{"a.*.c", "a.b.b.c", false},
		{"#", "", true},
		{"#", "a", true},
		{"#", "a.b.c", true},
		{"a.#", "a", true},
		{"a.#", "a.b.c.d", true},
		{"a.#", "b.a", false},
		{"#.c", "c", true},
		{"#.c", "a.b.c", true},
		{"#.c", "a.b", false},
		{"a.#.c", "a.c", true},
		{"a.#.c", "a.x.y.c", true},
		{"a.#.c", "a.c.x", false},
		{"#.#", "a", true},
		{"*.#", "a.b.c", true},
		{"*.#", "", false},
		{"stream.*.store", "stream.r.store", true},
		{"stream.*.store", "stream.r.join", false},
	}
	for _, c := range cases {
		if got := topicMatch(c.pattern, c.key); got != c.want {
			t.Errorf("topicMatch(%q, %q) = %v, want %v", c.pattern, c.key, got, c.want)
		}
	}
}

func TestTopicMatchHashSupersedesAll(t *testing.T) {
	// "#" must match any key: property-check with random word lists.
	f := func(words []uint8) bool {
		parts := make([]string, len(words))
		for i, w := range words {
			parts[i] = string(rune('a' + w%26))
		}
		return topicMatch("#", strings.Join(parts, "."))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopicMatchExactSelfMatch(t *testing.T) {
	f := func(words []uint8) bool {
		if len(words) == 0 {
			return true
		}
		parts := make([]string, len(words))
		for i, w := range words {
			parts[i] = string(rune('a' + w%26))
		}
		key := strings.Join(parts, ".")
		return topicMatch(key, key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidatePattern(t *testing.T) {
	valid := []string{"a", "a.b", "*", "#", "a.*.b", "a.#", "#.#"}
	for _, p := range valid {
		if err := validatePattern(p); err != nil {
			t.Errorf("validatePattern(%q) = %v", p, err)
		}
	}
	invalid := []string{"", "a..b", ".a", "a.", "a*", "x#y", "a.b*"}
	for _, p := range invalid {
		if err := validatePattern(p); err == nil {
			t.Errorf("validatePattern(%q) accepted", p)
		}
	}
}

func BenchmarkTopicMatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topicMatch("stream.*.store.#", "stream.r.store.partition.7")
	}
}
