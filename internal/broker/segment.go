package broker

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segmented append-only log. One segLog holds one topic's records as a
// directory of numbered segment files that roll over at a configurable
// byte size, in the style of a Kafka- or influxdb-messaging-style
// topic log. Each record is CRC-framed:
//
//	u32 little-endian frame length  (lsn prefix + record bytes)
//	u32 little-endian CRC-32C of the frame
//	uvarint LSN | record bytes
//
// The LSN is the journal-wide log sequence number: it totals-orders
// records across all topics of one journal, names each follower's
// replication position, and keys segment files (a segment file is
// named by the LSN of its first record).
//
// A truncated or CRC-corrupt record ends that segment's replay as a
// clean end-of-log — a crash mid-append tears at most the final record
// of the final segment, and the torn bytes must never poison recovery.
// Whole segments are deleted from the front once every enqueue in them
// is settled (see topicLog), which is the log-truncation story the old
// monolithic journal solved with rewrite-on-open compaction.

const (
	// DefaultMaxSegmentBytes is the segment rollover size used when
	// DurableOptions.MaxSegmentBytes is zero. Small enough that settled
	// traffic is reclaimed promptly, large enough that a segment holds
	// many records.
	DefaultMaxSegmentBytes = 4 << 20

	// maxSegRecord bounds one framed record; anything larger marks a
	// corrupt frame header, not a real record.
	maxSegRecord = 16 << 20

	segSuffix = ".seg"
)

var segCRC = crc32.MakeTable(crc32.Castagnoli)

// segLog is one topic's segmented log. Not safe for concurrent use;
// the owning journal serializes access.
type segLog struct {
	dir  string
	max  int64
	ids  []uint64 // sorted first-LSN segment ids, including the active one
	f    *os.File // active segment, nil until the first append
	w    *bufio.Writer
	size int64
}

// openSegLog scans dir (creating it) for existing segment files. It
// does not read their contents; call replay for that.
func openSegLog(dir string, max int64) (*segLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("broker: segment dir: %w", err)
	}
	if max <= 0 {
		max = DefaultMaxSegmentBytes
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	l := &segLog{dir: dir, max: max}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		l.ids = append(l.ids, id)
	}
	sort.Slice(l.ids, func(i, j int) bool { return l.ids[i] < l.ids[j] })
	return l, nil
}

func (l *segLog) segPath(id uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%020d%s", id, segSuffix))
}

// append frames one record into the active segment, rolling over to a
// new segment (named by this record's LSN) when the active one has
// reached the size bound. It returns the id of the segment the record
// landed in. The write is flushed to the OS before returning, matching
// the old journal's flush-per-record durability.
func (l *segLog) append(lsn uint64, rec []byte) (uint64, error) {
	if l.f != nil && l.size >= l.max {
		l.w.Flush()
		l.f.Close()
		l.f, l.w = nil, nil
	}
	if l.f == nil {
		f, err := os.OpenFile(l.segPath(lsn), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return 0, err
		}
		l.f = f
		l.w = bufio.NewWriter(f)
		l.size = 0
		l.ids = append(l.ids, lsn)
	}
	payload := binary.AppendUvarint(nil, lsn)
	payload = append(payload, rec...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, segCRC))
	l.w.Write(hdr[:])
	l.w.Write(payload)
	if err := l.w.Flush(); err != nil {
		return 0, err
	}
	l.size += int64(len(hdr) + len(payload))
	return l.activeID(), nil
}

// activeID is the id of the segment currently being appended to; zero
// when nothing was ever appended.
func (l *segLog) activeID() uint64 {
	if len(l.ids) == 0 {
		return 0
	}
	return l.ids[len(l.ids)-1]
}

// segments returns the segment ids in log order.
func (l *segLog) segments() []uint64 {
	return append([]uint64(nil), l.ids...)
}

// replay streams every surviving record in log order. A torn or
// corrupt tail record ends that segment's replay cleanly (crash during
// append); replay continues with the next segment.
func (l *segLog) replay(fn func(lsn uint64, rec []byte, segID uint64) error) error {
	for _, id := range l.ids {
		f, err := os.Open(l.segPath(id))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		r := bufio.NewReader(f)
		for {
			lsn, rec, err := readSegRecord(r)
			if err != nil {
				break // io.EOF or a torn/corrupt tail: clean end of segment
			}
			if err := fn(lsn, rec, id); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// readSegRecord reads one CRC-framed record. Any framing violation —
// short header, oversized length, short payload, CRC mismatch, bad LSN
// varint — is reported as io.ErrUnexpectedEOF so callers uniformly
// treat it as a torn tail.
func readSegRecord(r *bufio.Reader) (uint64, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > maxSegRecord {
		return 0, nil, io.ErrUnexpectedEOF
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if crc32.Checksum(payload, segCRC) != binary.LittleEndian.Uint32(hdr[4:]) {
		return 0, nil, io.ErrUnexpectedEOF
	}
	lsn, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	return lsn, payload[k:], nil
}

// dropSegment deletes one (fully settled) segment file. The active
// segment is never dropped.
func (l *segLog) dropSegment(id uint64) error {
	if id == l.activeID() && l.f != nil {
		return fmt.Errorf("broker: cannot drop active segment %d", id)
	}
	for i, have := range l.ids {
		if have == id {
			l.ids = append(l.ids[:i], l.ids[i+1:]...)
			break
		}
	}
	return os.Remove(l.segPath(id))
}

func (l *segLog) close() error {
	if l.f == nil {
		return nil
	}
	l.w.Flush()
	err := l.f.Close()
	l.f, l.w = nil, nil
	return err
}

// topicDirName makes a queue name safe as a directory name. Queue
// names are dot-separated identifiers in practice; the escape keeps
// pathological names from escaping the topics directory.
func topicDirName(queue string) string {
	var sb strings.Builder
	for _, r := range queue {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			fmt.Fprintf(&sb, "%%%04x", r)
		}
	}
	if sb.Len() == 0 {
		return "%empty"
	}
	return sb.String()
}

// topicLog couples a topic's segmented log with the settle-frontier
// bookkeeping that drives truncation: per segment, how many journaled
// enqueues are not yet settled. Once the oldest segment's count hits
// zero the whole file is deleted — every record in it is either a
// settled enqueue or a settlement of an equally dead enqueue, so
// replay without it reconstructs the same queue.
type topicLog struct {
	log     *segLog
	pending map[uint64]uint64 // message id -> segment id of its live enqueue
	live    map[uint64]int    // segment id -> unsettled enqueue count
}

func newTopicLog(log *segLog) *topicLog {
	return &topicLog{
		log:     log,
		pending: make(map[uint64]uint64),
		live:    make(map[uint64]int),
	}
}

// track updates the settle-frontier accounting for one record landing
// in segment segID, then reclaims any fully settled prefix segments.
func (tl *topicLog) track(rec []byte, segID uint64) {
	if _, ok := tl.live[segID]; !ok {
		tl.live[segID] = 0
	}
	typ, id, ok := recMessageID(rec)
	if !ok {
		return
	}
	switch typ {
	case recEnqueue:
		if prev, ok := tl.pending[id]; ok {
			tl.live[prev]-- // re-enqueue supersedes the earlier record
		}
		tl.pending[id] = segID
		tl.live[segID]++
	case recSettle:
		if seg, ok := tl.pending[id]; ok {
			delete(tl.pending, id)
			tl.live[seg]--
		}
	}
	tl.gc()
}

// gc deletes fully settled segments from the front of the log. Only a
// prefix may go: a settle record always lands at or after its enqueue,
// so a prefix whose enqueues are all settled never holds a settlement
// some surviving segment still needs.
func (tl *topicLog) gc() {
	for {
		ids := tl.log.ids
		if len(ids) < 2 {
			return // never drop the active segment
		}
		first := ids[0]
		if tl.live[first] != 0 {
			return
		}
		if tl.log.dropSegment(first) != nil {
			return
		}
		delete(tl.live, first)
	}
}

// recMessageID extracts the record type and message id from an
// enqueue/settle record payload (both encode queue name then id).
func recMessageID(rec []byte) (typ byte, id uint64, ok bool) {
	if len(rec) == 0 {
		return 0, 0, false
	}
	typ = rec[0]
	if typ != recEnqueue && typ != recSettle {
		return typ, 0, false
	}
	rd := &reader{buf: rec[1:]}
	rd.string() // queue name
	id = rd.uvarint()
	return typ, id, rd.err == nil
}
