package broker

import (
	"container/list"
	"context"
	"sync"

	"bistream/internal/metrics"
	"bistream/internal/vclock"
)

// queue holds ready messages and dispatches them to consumers in FIFO
// order. Each consumer runs a dispatcher goroutine that pops from the
// shared ready list and performs a blocking send into the consumer's
// delivery channel: the channel's capacity (== prefetch) provides flow
// control for auto-ack consumers, and the unacked map bounds manual-ack
// consumers. A single popper per consumer preserves pairwise FIFO.
type queue struct {
	name string
	opts QueueOptions

	mu        sync.Mutex
	notFull   *sync.Cond
	notEmpty  *sync.Cond
	ready     *list.List // of Message
	consumers []*consumer
	closed    bool
	everHad   bool // a consumer has attached at least once (for AutoDelete)

	published    metrics.Counter
	delivered    metrics.Counter
	acked        metrics.Counter
	redelivered  metrics.Counter
	deadLettered metrics.Counter
	inMeter      *metrics.Meter
	outMeter     *metrics.Meter
	clock        vclock.Clock
	onEmpty      func(*queue)                   // auto-delete callback
	deadLetter   func(from string, msg Message) // nil on the dead queue itself
	log          *journal                       // non-nil for durable queues on a durable broker

	nextTag uint64
	logSeq  uint64 // journal message ids
}

// logNewEnqueue journals a message entering the ready list for the
// first time, assigning its journal id, and returns the record's
// journal-wide LSN (zero when the queue is not journaled). Called with
// q.mu held; the journal has its own lock.
func (q *queue) logNewEnqueue(msg *Message) uint64 {
	if q.log == nil {
		return 0
	}
	q.logSeq++
	msg.journalID = q.logSeq
	return q.log.logEnqueue(q.name, msg.journalID, *msg)
}

// logReEnqueue journals a message re-entering the ready list after its
// settle was already logged (the auto-ack cancel path). Called with
// q.mu held.
func (q *queue) logReEnqueue(msg Message) {
	if q.log != nil && msg.journalID != 0 {
		q.log.logEnqueue(q.name, msg.journalID, msg)
	}
}

// logSettle journals a settlement (ack, drop, or auto-ack dispatch).
// Called with q.mu held.
func (q *queue) logSettle(msg Message) {
	if q.log != nil && msg.journalID != 0 {
		q.log.logSettle(q.name, msg.journalID)
	}
}

func newQueue(name string, opts QueueOptions, clock vclock.Clock, onEmpty func(*queue)) *queue {
	q := &queue{
		name:     name,
		opts:     opts,
		ready:    list.New(),
		inMeter:  metrics.NewMeter(0),
		outMeter: metrics.NewMeter(0),
		clock:    clock,
		onEmpty:  onEmpty,
	}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// enqueue adds a message, blocking while the queue is at MaxLen.
func (q *queue) enqueue(msg Message) error {
	_, err := q.enqueueCtx(context.Background(), msg)
	return err
}

// enqueueCtx is enqueue honoring cancellation: when ctx is done while
// the MaxLen bound blocks, it returns ctx.Err() without enqueueing. A
// context with no Done channel adds no overhead beyond a nil check.
// It returns the journal LSN of the enqueue record (zero when the
// queue is not journaled) so the publish path can gate on replication.
func (q *queue) enqueueCtx(ctx context.Context, msg Message) (uint64, error) {
	if ctx.Done() != nil {
		// Wake the cond wait when the context fires; Broadcast because
		// several publishers may be parked with different contexts.
		stop := context.AfterFunc(ctx, func() {
			q.mu.Lock()
			q.notFull.Broadcast()
			q.mu.Unlock()
		})
		defer stop()
	}
	q.mu.Lock()
	for q.opts.MaxLen > 0 && q.backlogLocked() >= q.opts.MaxLen && !q.closed && ctx.Err() == nil {
		q.notFull.Wait()
	}
	if err := ctx.Err(); err != nil && q.opts.MaxLen > 0 && q.backlogLocked() >= q.opts.MaxLen {
		q.mu.Unlock()
		return 0, err
	}
	if q.closed {
		q.mu.Unlock()
		return 0, ErrClosed
	}
	lsn := q.logNewEnqueue(&msg)
	q.ready.PushBack(msg)
	q.published.Inc()
	q.inMeter.Observe(q.clock.Now(), 1)
	q.notEmpty.Signal()
	q.mu.Unlock()
	return lsn, nil
}

// backlogLocked counts messages the queue is still responsible for:
// ready plus unacknowledged. Using it for the MaxLen bound means slow
// *processing*, not just slow delivery, backpressures publishers.
func (q *queue) backlogLocked() int {
	n := q.ready.Len()
	for _, c := range q.consumers {
		n += len(c.unacked)
	}
	return n
}

func (q *queue) addConsumer(prefetch int, autoAck bool) (*consumer, error) {
	if prefetch < 1 {
		prefetch = 1
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrClosed
	}
	c := &consumer{
		q:        q,
		prefetch: prefetch,
		autoAck:  autoAck,
		ch:       make(chan Delivery, prefetch),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		unacked:  make(map[uint64]Message),
	}
	q.consumers = append(q.consumers, c)
	q.everHad = true
	q.mu.Unlock()
	go c.dispatch()
	return c, nil
}

// detachLocked removes c from the consumer slice. Called with q.mu held.
func (q *queue) detachLocked(c *consumer) {
	for i, cc := range q.consumers {
		if cc == c {
			q.consumers = append(q.consumers[:i], q.consumers[i+1:]...)
			return
		}
	}
}

func (q *queue) shutdown() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	consumers := append([]*consumer(nil), q.consumers...)
	q.ready.Init()
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
	q.mu.Unlock()
	for _, c := range consumers {
		c.Cancel()
	}
}

func (q *queue) stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	unacked := 0
	for _, c := range q.consumers {
		unacked += len(c.unacked)
	}
	return QueueStats{
		Name:         q.name,
		Ready:        q.ready.Len(),
		Unacked:      unacked,
		Consumers:    len(q.consumers),
		Published:    q.published.Value(),
		Delivered:    q.delivered.Value(),
		Acked:        q.acked.Value(),
		Redelivered:  q.redelivered.Value(),
		DeadLettered: q.deadLettered.Value(),
		InRate:       q.inMeter.Rate(),
		OutRate:      q.outMeter.Rate(),
	}
}

func sortUint64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

// consumer implements Consumer against the in-process queue.
type consumer struct {
	q        *queue
	prefetch int
	autoAck  bool
	ch       chan Delivery
	stop     chan struct{}
	done     chan struct{}

	// guarded by q.mu
	unacked   map[uint64]Message
	cancelled bool
}

// dispatch is the per-consumer pump: pop a ready message (respecting the
// manual-ack prefetch bound), then block-send it to the delivery
// channel. It exits when the consumer is cancelled or the queue closes.
func (c *consumer) dispatch() {
	q := c.q
	defer close(c.done)
	for {
		q.mu.Lock()
		for !q.closed && !c.cancelled &&
			(q.ready.Len() == 0 || (!c.autoAck && len(c.unacked) >= c.prefetch)) {
			q.notEmpty.Wait()
		}
		if q.closed || c.cancelled {
			q.mu.Unlock()
			return
		}
		front := q.ready.Front()
		msg := front.Value.(Message)
		q.ready.Remove(front)
		q.nextTag++
		d := Delivery{Message: msg, Queue: q.name, Tag: q.nextTag,
			Redelivered: msg.redeliveries > 0}
		if c.autoAck {
			q.acked.Inc()
			q.logSettle(msg)
			q.outMeter.Observe(q.clock.Now(), 1)
			q.notFull.Signal()
		} else {
			c.unacked[d.Tag] = msg
		}
		q.delivered.Inc()
		q.mu.Unlock()
		select {
		case c.ch <- d:
		case <-c.stop:
			// Cancelled while blocked on a full delivery channel: the
			// popped message must not be lost. Requeue it at the head
			// (journaled as a fresh enqueue, balancing any settle the
			// optimistic auto-ack already logged).
			q.mu.Lock()
			if c.autoAck {
				q.acked.Add(-1) // undo the optimistic settle
				q.logReEnqueue(msg)
			} else {
				delete(c.unacked, d.Tag)
				// Not re-journaled: the original enqueue record is
				// still unsettled.
			}
			q.delivered.Add(-1)
			q.ready.PushFront(msg)
			q.notEmpty.Signal()
			q.mu.Unlock()
			return
		}
	}
}

// Deliveries returns the delivery channel. It is closed after Cancel or
// broker shutdown.
func (c *consumer) Deliveries() <-chan Delivery { return c.ch }

// Ack confirms the delivery with the given tag.
func (c *consumer) Ack(tag uint64) error {
	q := c.q
	q.mu.Lock()
	if c.cancelled {
		q.mu.Unlock()
		return ErrConsumerClosed
	}
	msg, ok := c.unacked[tag]
	if !ok {
		q.mu.Unlock()
		return ErrUnknownDelivery
	}
	delete(c.unacked, tag)
	q.acked.Inc()
	q.logSettle(msg)
	q.outMeter.Observe(q.clock.Now(), 1)
	q.notEmpty.Broadcast()
	q.notFull.Signal()
	q.mu.Unlock()
	return nil
}

// AckBatch confirms a batch of deliveries under one lock acquisition —
// the settle path batched consumers (the joiner's consume loop) use so
// per-delivery lock traffic does not erase what batching saved. Unknown
// tags yield ErrUnknownDelivery but do not stop the rest of the batch
// from settling.
func (c *consumer) AckBatch(tags []uint64) error {
	q := c.q
	q.mu.Lock()
	if c.cancelled {
		q.mu.Unlock()
		return ErrConsumerClosed
	}
	var firstErr error
	settled := 0
	for _, tag := range tags {
		msg, ok := c.unacked[tag]
		if !ok {
			if firstErr == nil {
				firstErr = ErrUnknownDelivery
			}
			continue
		}
		delete(c.unacked, tag)
		q.acked.Inc()
		q.logSettle(msg)
		settled++
	}
	if settled > 0 {
		q.outMeter.Observe(q.clock.Now(), int64(settled))
		q.notEmpty.Broadcast()
		q.notFull.Broadcast()
	}
	q.mu.Unlock()
	return firstErr
}

// maxRedeliver resolves the queue's redelivery bound: negative options
// mean unlimited (-1), zero selects the default.
func (q *queue) maxRedeliver() int {
	switch {
	case q.opts.MaxRedeliver < 0:
		return -1
	case q.opts.MaxRedeliver == 0:
		return DefaultMaxRedeliver
	default:
		return q.opts.MaxRedeliver
	}
}

// Nack rejects the delivery. With requeue it returns to the queue head
// — unless the message has exhausted the queue's MaxRedeliver bound, in
// which case it is dead-lettered instead of hot-looping. Without
// requeue it is dead-lettered immediately (never silently dropped,
// unless the broker has no dead-letter sink, i.e. on the dead queue
// itself).
func (c *consumer) Nack(tag uint64, requeue bool) error {
	q := c.q
	q.mu.Lock()
	if c.cancelled {
		q.mu.Unlock()
		return ErrConsumerClosed
	}
	msg, ok := c.unacked[tag]
	if !ok {
		q.mu.Unlock()
		return ErrUnknownDelivery
	}
	delete(c.unacked, tag)
	dead := false
	if requeue {
		msg.redeliveries++
		if limit := q.maxRedeliver(); q.deadLetter != nil && limit >= 0 && msg.redeliveries > limit {
			dead = true
		} else {
			q.redelivered.Inc()
			q.ready.PushFront(msg) // journal untouched: still unsettled
		}
	} else {
		dead = q.deadLetter != nil
	}
	if dead || !requeue {
		// Settled from this queue's perspective, whether dead-lettered
		// or (no sink) dropped.
		q.acked.Inc()
		q.logSettle(msg)
		q.notFull.Signal()
	}
	if dead {
		q.deadLettered.Inc()
	}
	q.notEmpty.Broadcast()
	q.mu.Unlock()
	if dead {
		// Outside q.mu: the dead queue takes its own lock, and may be
		// this queue's sibling under the same broker.
		q.deadLetter(q.name, msg)
	}
	return nil
}

// Cancel detaches the consumer. Its undelivered buffered messages and
// unacknowledged messages are returned to the queue head in order, and
// the delivery channel is closed.
func (c *consumer) Cancel() error {
	q := c.q
	q.mu.Lock()
	if c.cancelled {
		q.mu.Unlock()
		<-c.done
		return nil
	}
	c.cancelled = true
	close(c.stop)
	q.notEmpty.Broadcast()
	q.mu.Unlock()
	<-c.done // dispatcher finished; it will not touch c.ch again

	q.mu.Lock()
	q.detachLocked(c)
	// Drain deliveries that were buffered but never received, then close.
	var buffered []Delivery
drainLoop:
	for {
		select {
		case d := <-c.ch:
			buffered = append(buffered, d)
		default:
			break drainLoop
		}
	}
	close(c.ch)
	// Requeue: first unacked (older tags first), then buffered (already
	// tag-ordered), all pushed to the front preserving relative order.
	tags := make([]uint64, 0, len(c.unacked))
	for tag := range c.unacked {
		tags = append(tags, tag)
	}
	sortUint64(tags)
	for i := len(buffered) - 1; i >= 0; i-- {
		d := buffered[i]
		msg := d.Message
		if c.autoAck {
			q.acked.Add(-1)
		} else {
			delete(c.unacked, d.Tag)
			msg.redeliveries++
			q.redelivered.Inc()
		}
		q.delivered.Add(-1)
		q.ready.PushFront(msg)
	}
	for i := len(tags) - 1; i >= 0; i-- {
		if msg, ok := c.unacked[tags[i]]; ok {
			// The consumer saw this message and may have partially
			// processed it: the next delivery is a redelivery, and
			// downstream idempotency (dedup) must treat it as such.
			msg.redeliveries++
			q.redelivered.Inc()
			q.ready.PushFront(msg)
			q.delivered.Add(-1)
		}
	}
	c.unacked = map[uint64]Message{}
	autoDelete := q.opts.AutoDelete && q.everHad && len(q.consumers) == 0 && !q.closed
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
	q.mu.Unlock()
	if autoDelete && q.onEmpty != nil {
		q.onEmpty(q)
	}
	return nil
}
