package faults

import (
	"errors"
	"testing"
	"time"

	"bistream/internal/broker"
)

func setup(t *testing.T, cfg Config) (*broker.Broker, *Client) {
	t.Helper()
	b := broker.New(nil)
	t.Cleanup(func() { b.Close() })
	f := Wrap(b, cfg)
	if err := f.DeclareExchange("ex", broker.Topic); err != nil {
		t.Fatal(err)
	}
	if err := f.DeclareQueue("q", broker.QueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Bind("q", "ex", "#"); err != nil {
		t.Fatal(err)
	}
	return b, f
}

func ready(t *testing.T, b *broker.Broker, q string) int {
	t.Helper()
	st, err := b.QueueStats(q)
	if err != nil {
		t.Fatal(err)
	}
	return st.Ready
}

func TestDropFailsWithoutDelivering(t *testing.T) {
	b, f := setup(t, Config{Seed: 1, Default: Rule{Drop: 1}})
	err := f.Publish("ex", "k", nil, []byte("m"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("dropped publish returned %v; want ErrInjected", err)
	}
	if n := ready(t, b, "q"); n != 0 {
		t.Errorf("dropped message was delivered: ready=%d", n)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	b, f := setup(t, Config{Seed: 1, Default: Rule{Dup: 1}})
	if err := f.Publish("ex", "k", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if n := ready(t, b, "q"); n != 2 {
		t.Errorf("duplicated publish delivered %d copies; want 2", n)
	}
}

func TestReorderHeldUntilNextPublishOrSettle(t *testing.T) {
	b, f := setup(t, Config{Seed: 1, Default: Rule{Reorder: 1}})
	if err := f.Publish("ex", "k", nil, []byte("a")); err != nil {
		t.Fatal(err) // held, but reported as sent
	}
	if n := ready(t, b, "q"); n != 0 {
		t.Fatalf("held message delivered early: ready=%d", n)
	}
	// Second publish releases both, swapped: b then a.
	if err := f.Publish("ex", "k", nil, []byte("b")); err != nil {
		t.Fatal(err)
	}
	// With Reorder=1 the second publish re-rolls reorder and swaps with
	// the held first one, so both are out now.
	c, err := b.Consume("q", 4, true)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	timeout := time.After(2 * time.Second)
	for len(got) < 2 {
		select {
		case d := <-c.Deliveries():
			got = append(got, string(d.Body))
		case <-timeout:
			t.Fatalf("only %v delivered", got)
		}
	}
	if got[0] != "b" || got[1] != "a" {
		t.Errorf("order = %v, want [b a]", got)
	}
	// A held leftover is flushed by Settle.
	if err := f.Publish("ex", "k", nil, []byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := f.Settle(); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-c.Deliveries():
		if string(d.Body) != "c" {
			t.Errorf("settled body = %q", d.Body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Settle did not release the held message")
	}
}

func TestCutFailsOpsButNotSettlement(t *testing.T) {
	_, f := setup(t, Config{Seed: 1})
	if err := f.Publish("ex", "k", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	cons, err := f.Consume("q", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	var d broker.Delivery
	select {
	case d = <-cons.Deliveries():
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery before cut")
	}

	f.Cut(100 * time.Millisecond)
	if err := f.Publish("ex", "k", nil, []byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("publish during cut: %v; want ErrInjected", err)
	}
	if err := f.DeclareQueue("other", broker.QueueOptions{}); !errors.Is(err, ErrInjected) {
		t.Errorf("declare during cut: %v; want ErrInjected", err)
	}
	if _, err := f.Consume("q", 1, false); !errors.Is(err, ErrInjected) {
		t.Errorf("consume during cut: %v; want ErrInjected", err)
	}
	// Settlement must keep working: failing it would strand the
	// delivery unacked forever (a crashed consumer, not a partition).
	if err := cons.Ack(d.Tag); err != nil {
		t.Errorf("ack during cut failed: %v", err)
	}

	// After the cut heals, operations resume.
	time.Sleep(120 * time.Millisecond)
	if err := f.Publish("ex", "k", nil, []byte("y")); err != nil {
		t.Errorf("publish after cut healed: %v", err)
	}
}

func TestConsumerStallsDuringCut(t *testing.T) {
	b, f := setup(t, Config{Seed: 1})
	_ = b
	cons, err := f.Consume("q", 4, true)
	if err != nil {
		t.Fatal(err)
	}
	f.Cut(80 * time.Millisecond)
	start := time.Now()
	// Published by the inner broker directly (the injector would refuse
	// during the cut); the wrapped consumer must hold it until healed.
	if err := b.Publish("ex", "k", nil, []byte("m")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-cons.Deliveries():
		if since := time.Since(start); since < 60*time.Millisecond {
			t.Errorf("delivery after %v; want stalled ~80ms", since)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery never arrived after cut healed")
	}
	if err := cons.Cancel(); err != nil {
		t.Fatal(err)
	}
}

func TestDisableMakesPassthrough(t *testing.T) {
	b, f := setup(t, Config{Seed: 1, Default: Rule{Drop: 1}})
	f.Cut(time.Hour)
	f.Disable()
	if err := f.Publish("ex", "k", nil, []byte("m")); err != nil {
		t.Fatalf("publish after Disable: %v", err)
	}
	if n := ready(t, b, "q"); n != 1 {
		t.Errorf("ready = %d, want 1", n)
	}
}
