package faults

import (
	"fmt"
	"math/rand"
	"sync"

	"bistream/internal/checkpoint"
	"bistream/internal/metrics"
	"bistream/internal/tuple"
)

// StoreRule sets a checkpoint store's fault probabilities, each in
// [0, 1]. Both model a crash during the write — the error IS the power
// loss: the writer must treat a failed Put as "state not durable" and
// keep the covered deliveries unacked, which is exactly the joiner
// service's checkpoint ack barrier.
type StoreRule struct {
	// Tear simulates power loss mid-write: a truncated prefix of the
	// blob is persisted under the key AND the Put fails with
	// ErrInjected. Recovery must detect the torn blob by CRC and fall
	// back to the previous checkpoint epoch.
	Tear float64
	// Fail simulates power loss (or a full disk) before the write
	// reached the medium: nothing is persisted and the Put fails with
	// ErrInjected.
	Fail float64
}

// Store is a fault-injecting checkpoint.Store decorator.
type Store struct {
	inner checkpoint.Store
	mu    sync.Mutex
	rng   *rand.Rand
	rule  StoreRule
	off   bool

	tears *metrics.Counter // faults.store_tear
	fails *metrics.Counter // faults.store_fail
}

var _ checkpoint.Store = (*Store)(nil)

// WrapStore decorates inner with seeded write-fault injection.
func WrapStore(inner checkpoint.Store, seed int64, rule StoreRule, reg *metrics.Registry) *Store {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Store{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		rule:  rule,
		tears: reg.Counter("faults.store_tear"),
		fails: reg.Counter("faults.store_fail"),
	}
}

// Disable turns injection off; the store becomes a passthrough.
func (s *Store) Disable() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.off = true
}

// Put rolls the rule before forwarding: at most one fault per call.
func (s *Store) Put(key string, blob []byte) error {
	s.mu.Lock()
	var tear, fail bool
	var cut int
	if !s.off {
		switch roll := s.rng.Float64(); {
		case roll < s.rule.Tear:
			tear = true
			if len(blob) > 0 {
				cut = s.rng.Intn(len(blob))
			}
		case roll < s.rule.Tear+s.rule.Fail:
			fail = true
		}
	}
	s.mu.Unlock()
	switch {
	case tear:
		s.tears.Inc()
		// Persist the torn prefix, then report the crash. A later
		// recovery sees exactly what a power loss would have left.
		_ = s.inner.Put(key, blob[:cut])
		return fmt.Errorf("%w: torn write of %q at %d/%d bytes", ErrInjected, key, cut, len(blob))
	case fail:
		s.fails.Inc()
		return fmt.Errorf("%w: failed write of %q", ErrInjected, key)
	}
	return s.inner.Put(key, blob)
}

func (s *Store) Get(key string) ([]byte, error) { return s.inner.Get(key) }
func (s *Store) Delete(key string) error        { return s.inner.Delete(key) }
func (s *Store) List() ([]string, error)        { return s.inner.List() }

// StoreProvider decorates a checkpoint.Provider so every member's store
// injects write faults. Each member keeps its own deterministic rng
// (seeded from Seed plus its identity) and its wrapper survives cold
// restarts of the member, like the underlying store does.
type StoreProvider struct {
	Inner checkpoint.Provider
	Seed  int64
	Rule  StoreRule
	// Metrics receives the faults.store_* counters; nil uses a private
	// registry.
	Metrics *metrics.Registry

	mu     sync.Mutex
	stores map[string]*Store
}

var _ checkpoint.Provider = (*StoreProvider)(nil)

// StoreFor implements checkpoint.Provider.
func (p *StoreProvider) StoreFor(rel tuple.Relation, id int32) (checkpoint.Store, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := fmt.Sprintf("%s-%d", rel, id)
	if s, ok := p.stores[key]; ok {
		return s, nil
	}
	inner, err := p.Inner.StoreFor(rel, id)
	if err != nil {
		return nil, err
	}
	if p.stores == nil {
		p.stores = make(map[string]*Store)
	}
	s := WrapStore(inner, p.Seed^int64(id)<<1^int64(rel), p.Rule, p.Metrics)
	p.stores[key] = s
	return s, nil
}

// Disable turns injection off on every store created so far.
func (p *StoreProvider) Disable() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.stores {
		s.Disable()
	}
}
