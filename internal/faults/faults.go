// Package faults wraps a broker.Client with seeded, deterministic fault
// injection for crash-safety testing: publishes can be dropped (the
// caller sees an error and must retry), duplicated, delayed or held
// back and reordered, per exchange; Cut simulates a network partition
// during which every broker operation fails and consumers stall; every
// injected fault is counted in the metric registry (faults.*).
//
// The injector sits between the services and the broker, so it
// exercises exactly the paths a flaky network would: nack-requeue on
// failed fan-out, the joiners' result retry backlog, and the dedup
// filters that turn at-least-once redelivery into exactly-once results.
//
// Reordering violates the fabric's pairwise-FIFO assumption (§3.3), on
// which the ordering protocol's punctuation contract rests. It is
// therefore only safe on the entry exchange, where no stamp has been
// assigned yet; enabling it on store/join exchanges makes the protocol
// itself unsound, not just the delivery.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bistream/internal/broker"
	"bistream/internal/metrics"
)

// ErrInjected marks an operation failed (or refused) by the injector
// rather than by the broker. Test it with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// Rule sets one exchange's fault probabilities, each in [0, 1].
type Rule struct {
	// Drop fails the publish with ErrInjected without delivering the
	// message; the caller is expected to retry (and its retry may be
	// dropped again).
	Drop float64
	// Dup publishes the message twice.
	Dup float64
	// Delay sleeps a random duration up to MaxDelay before publishing.
	Delay float64
	// MaxDelay bounds Delay sleeps; defaults to 2ms.
	MaxDelay time.Duration
	// Reorder holds the message back and releases it after the next
	// publish on the same exchange (swapping their order). Held
	// messages are flushed by Settle; see the package comment for why
	// this is only sound on the entry exchange.
	Reorder float64
}

// Config configures an injector.
type Config struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Default applies to exchanges without a PerExchange entry.
	Default Rule
	// PerExchange overrides the default per exchange name.
	PerExchange map[string]Rule
	// Metrics receives the faults.* counters; nil uses a private
	// registry.
	Metrics *metrics.Registry
}

// held is a publish captured by a Reorder roll, awaiting release.
type held struct {
	exchange, key string
	headers       map[string]string
	body          []byte
}

// Client is a fault-injecting broker.Client decorator.
type Client struct {
	inner broker.Client
	cfg   Config

	mu       sync.Mutex
	rng      *rand.Rand
	cutUntil time.Time
	disabled bool
	held     map[string][]*held // exchange -> held publishes, oldest first

	drops, dups, delays, reorders, cuts *metrics.Counter
}

var _ broker.Client = (*Client)(nil)
var _ broker.ContextPublisher = (*Client)(nil)

// Wrap decorates inner with fault injection.
func Wrap(inner broker.Client, cfg Config) *Client {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Client{
		inner:    inner,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		held:     make(map[string][]*held),
		drops:    reg.Counter("faults.drop"),
		dups:     reg.Counter("faults.dup"),
		delays:   reg.Counter("faults.delay"),
		reorders: reg.Counter("faults.reorder"),
		cuts:     reg.Counter("faults.cut"),
	}
}

// Cut simulates a network partition for d: every publish, declare,
// bind and consume fails with ErrInjected and attached consumers stall
// (deliver nothing) until the cut heals. Acks and nacks still work —
// failing them would strand deliveries unacked forever, which models a
// crashed consumer, not a partition; use engine crash hooks for that.
func (c *Client) Cut(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if until := time.Now().Add(d); until.After(c.cutUntil) {
		c.cutUntil = until
	}
	c.cuts.Inc()
}

// Disable turns all injection off (including an active cut): the client
// becomes a transparent passthrough. Held reordered messages are NOT
// released — call Settle for that.
func (c *Client) Disable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.disabled = true
	c.cutUntil = time.Time{}
}

// Settle releases every held reordered message. Tests must call it (or
// Disable then Settle) before checking completeness: a held message is
// in flight, not lost, but only Settle completes the flight. A held
// message whose release fails stays held — still in flight — so a
// retried Settle (say, after a broker failover finishes electing)
// completes it rather than losing it.
func (c *Client) Settle() error {
	c.mu.Lock()
	hs := make([]*held, 0, len(c.held))
	for _, byEx := range c.held {
		hs = append(hs, byEx...)
	}
	c.held = make(map[string][]*held)
	c.mu.Unlock()
	for i, h := range hs {
		if err := c.inner.Publish(h.exchange, h.key, h.headers, h.body); err != nil {
			c.rehold(hs[i:])
			return err
		}
	}
	return nil
}

// rehold puts undeliverable held messages back in flight.
func (c *Client) rehold(hs []*held) {
	c.mu.Lock()
	for _, h := range hs {
		c.held[h.exchange] = append(c.held[h.exchange], h)
	}
	c.mu.Unlock()
}

// cutActiveLocked reports whether a partition is in force.
func (c *Client) cutActiveLocked() bool {
	return !c.disabled && time.Now().Before(c.cutUntil)
}

// checkCut fails op with ErrInjected while a partition is active.
func (c *Client) checkCut(op string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cutActiveLocked() {
		return fmt.Errorf("%w: connection cut (%s)", ErrInjected, op)
	}
	return nil
}

// stall blocks while a partition is active (consumer side of a cut).
func (c *Client) stall() {
	for {
		c.mu.Lock()
		active := c.cutActiveLocked()
		until := c.cutUntil
		c.mu.Unlock()
		if !active {
			return
		}
		time.Sleep(time.Until(until))
	}
}

func (c *Client) rule(exchange string) Rule {
	if r, ok := c.cfg.PerExchange[exchange]; ok {
		return r
	}
	return c.cfg.Default
}

func (c *Client) DeclareExchange(name string, kind broker.ExchangeKind) error {
	if err := c.checkCut("declare exchange"); err != nil {
		return err
	}
	return c.inner.DeclareExchange(name, kind)
}

func (c *Client) DeclareQueue(name string, opts broker.QueueOptions) error {
	if err := c.checkCut("declare queue"); err != nil {
		return err
	}
	return c.inner.DeclareQueue(name, opts)
}

func (c *Client) DeleteQueue(name string) error {
	if err := c.checkCut("delete queue"); err != nil {
		return err
	}
	return c.inner.DeleteQueue(name)
}

func (c *Client) Bind(queue, exchange, routingKey string) error {
	if err := c.checkCut("bind"); err != nil {
		return err
	}
	return c.inner.Bind(queue, exchange, routingKey)
}

func (c *Client) QueueStats(queue string) (broker.QueueStats, error) {
	return c.inner.QueueStats(queue)
}

func (c *Client) Close() error { return c.inner.Close() }

func (c *Client) Publish(exchange, routingKey string, headers map[string]string, body []byte) error {
	return c.publish(context.Background(), exchange, routingKey, headers, body)
}

// PublishContext routes context-aware publishes (entry backpressure)
// through the same injection path.
func (c *Client) PublishContext(ctx context.Context, exchange, routingKey string, headers map[string]string, body []byte) error {
	return c.publish(ctx, exchange, routingKey, headers, body)
}

// publish rolls the exchange's rule and applies at most one fault per
// call (drop beats dup beats reorder; delay composes with any of them),
// then forwards to the inner client. The decision happens under the
// injector's lock for a reproducible roll sequence; the forwarding does
// not, so concurrent publishers interleave exactly as they would on a
// real fabric.
func (c *Client) publish(ctx context.Context, exchange, routingKey string, headers map[string]string, body []byte) error {
	c.mu.Lock()
	if c.cutActiveLocked() {
		c.mu.Unlock()
		return fmt.Errorf("%w: connection cut (publish %s)", ErrInjected, exchange)
	}
	var drop, dup bool
	var delay time.Duration
	var release *held
	if !c.disabled {
		r := c.rule(exchange)
		if r.Delay > 0 && c.rng.Float64() < r.Delay {
			maxd := r.MaxDelay
			if maxd <= 0 {
				maxd = 2 * time.Millisecond
			}
			delay = time.Duration(c.rng.Int63n(int64(maxd))) + 1
		}
		switch roll := c.rng.Float64(); {
		case roll < r.Drop:
			drop = true
		case roll < r.Drop+r.Dup:
			dup = true
		case roll < r.Drop+r.Dup+r.Reorder:
			if q := c.held[exchange]; len(q) > 0 {
				// Already holding one: swap — this publish goes out
				// now, the oldest held one right behind it.
				release = q[0]
				c.held[exchange] = q[1:]
			} else {
				c.held[exchange] = append(q, &held{exchange, routingKey, headers, body})
				c.reorders.Inc()
				c.mu.Unlock()
				return nil // in flight; Settle or the next publish releases it
			}
		}
	}
	c.mu.Unlock()

	if delay > 0 {
		c.delays.Inc()
		time.Sleep(delay)
	}
	if drop {
		c.drops.Inc()
		return fmt.Errorf("%w: dropped publish on %q", ErrInjected, exchange)
	}
	if err := c.forward(ctx, exchange, routingKey, headers, body); err != nil {
		// The swapped-out held message (if any) is still owed to the
		// fabric: put it back in flight rather than lose it.
		if release != nil {
			c.rehold([]*held{release})
		}
		return err
	}
	if dup {
		c.dups.Inc()
		if err := c.forward(ctx, exchange, routingKey, headers, body); err != nil {
			if release != nil {
				c.rehold([]*held{release})
			}
			return err
		}
	}
	if release != nil {
		if err := c.forward(ctx, release.exchange, release.key, release.headers, release.body); err != nil {
			// The current publish succeeded; only the release failed.
			// Reporting the release's error here would make the caller
			// retry the WRONG message (its own, already delivered) while
			// the held one vanished — the exact loss a broker failover
			// window provokes. Keep the held message in flight instead;
			// Settle or a later swap completes it.
			c.rehold([]*held{release})
		}
	}
	return nil
}

func (c *Client) forward(ctx context.Context, exchange, routingKey string, headers map[string]string, body []byte) error {
	if cp, ok := c.inner.(broker.ContextPublisher); ok {
		return cp.PublishContext(ctx, exchange, routingKey, headers, body)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.inner.Publish(exchange, routingKey, headers, body)
}

// Consume attaches to queue through a stalling decorator: deliveries
// freeze while a Cut is active, mimicking a partitioned consumer whose
// broker-side buffer keeps filling. Acks, nacks and cancel pass through
// unconditionally.
func (c *Client) Consume(queue string, prefetch int, autoAck bool) (broker.Consumer, error) {
	if err := c.checkCut("consume"); err != nil {
		return nil, err
	}
	inner, err := c.inner.Consume(queue, prefetch, autoAck)
	if err != nil {
		return nil, err
	}
	k := &consumer{inner: inner, c: c, out: make(chan broker.Delivery), done: make(chan struct{})}
	go k.pump()
	return k, nil
}

type consumer struct {
	inner broker.Consumer
	c     *Client
	out   chan broker.Delivery
	done  chan struct{}
	once  sync.Once
}

func (k *consumer) pump() {
	defer close(k.out)
	for d := range k.inner.Deliveries() {
		k.c.stall()
		select {
		case k.out <- d:
		case <-k.done:
			return // cancelled with d unacked; the broker requeues it
		}
	}
}

func (k *consumer) Deliveries() <-chan broker.Delivery { return k.out }
func (k *consumer) Ack(tag uint64) error               { return k.inner.Ack(tag) }
func (k *consumer) Nack(tag uint64, requeue bool) error {
	return k.inner.Nack(tag, requeue)
}
func (k *consumer) Cancel() error {
	k.once.Do(func() { close(k.done) })
	return k.inner.Cancel()
}
