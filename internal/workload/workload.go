// Package workload generates the synthetic two-relation streams the
// experiments consume: step-function rate profiles (the 300→400→200→300
// tuples/s schedule of §5.2), key distributions (uniform, zipf,
// sequential), and a deterministic generator that converts virtual time
// into batches of stamped tuples.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"bistream/internal/tuple"
)

// RateStep is one segment of a rate profile: From the given elapsed
// time onward, emit TuplesPerSec (combined over both relations).
type RateStep struct {
	From         time.Duration
	TuplesPerSec float64
}

// RateProfile is a piecewise-constant rate schedule.
type RateProfile []RateStep

// At returns the rate in effect at the given elapsed time.
func (p RateProfile) At(elapsed time.Duration) float64 {
	rate := 0.0
	for _, s := range p {
		if elapsed >= s.From {
			rate = s.TuplesPerSec
		}
	}
	return rate
}

// Validate checks that steps are ordered and non-negative.
func (p RateProfile) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("workload: empty rate profile")
	}
	if !sort.SliceIsSorted(p, func(i, j int) bool { return p[i].From < p[j].From }) {
		return fmt.Errorf("workload: rate profile steps out of order")
	}
	for _, s := range p {
		if s.TuplesPerSec < 0 {
			return fmt.Errorf("workload: negative rate %v", s.TuplesPerSec)
		}
	}
	return nil
}

// String renders the schedule ("300/s@0m → 400/s@10m → ...").
func (p RateProfile) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = fmt.Sprintf("%.0f/s@%v", s.TuplesPerSec, s.From)
	}
	return strings.Join(parts, " → ")
}

// Fig20Profile is the CPU-autoscaling experiment's input schedule:
// 300 tuples/s, stepping to 400 at minute 10, 200 at minute 40 and back
// to 300 at minute 50.
func Fig20Profile() RateProfile {
	return RateProfile{
		{From: 0, TuplesPerSec: 300},
		{From: 10 * time.Minute, TuplesPerSec: 400},
		{From: 40 * time.Minute, TuplesPerSec: 200},
		{From: 50 * time.Minute, TuplesPerSec: 300},
	}
}

// Fig21Profile is the memory-autoscaling schedule: the same rates with
// the first step at minute 15.
func Fig21Profile() RateProfile {
	return RateProfile{
		{From: 0, TuplesPerSec: 300},
		{From: 15 * time.Minute, TuplesPerSec: 400},
		{From: 40 * time.Minute, TuplesPerSec: 200},
		{From: 50 * time.Minute, TuplesPerSec: 300},
	}
}

// KeyDist draws join-attribute values.
type KeyDist interface {
	Next(rng *rand.Rand) int64
	String() string
}

// Uniform draws keys uniformly from [0, N).
type Uniform struct{ N int64 }

// Next implements KeyDist.
func (u Uniform) Next(rng *rand.Rand) int64 { return rng.Int63n(u.N) }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%d)", u.N) }

// Zipf draws keys from a zipfian distribution over [0, N) with skew
// s > 1 being the rand.Zipf exponent; higher means more skew.
type Zipf struct {
	N int64
	S float64
	z *rand.Zipf
}

// NewZipf builds a zipf distribution. s must be > 1 (rand.Zipf's
// domain); s ≈ 1.0001 approximates the classic θ→1 hot-key workloads.
func NewZipf(rng *rand.Rand, n int64, s float64) (*Zipf, error) {
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent must be > 1, got %v", s)
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf domain must be positive")
	}
	return &Zipf{N: n, S: s, z: rand.NewZipf(rng, s, 1, uint64(n-1))}, nil
}

// Next implements KeyDist. The embedded source is the one passed to
// NewZipf; the argument is ignored, kept for interface symmetry.
func (z *Zipf) Next(*rand.Rand) int64 { return int64(z.z.Uint64()) }

func (z *Zipf) String() string { return fmt.Sprintf("zipf(%d, s=%.2f)", z.N, z.S) }

// Sequential cycles keys 0,1,2,...,N-1,0,... (worst case for caching,
// best case for balance).
type Sequential struct {
	N    int64
	next int64
}

// Next implements KeyDist.
func (s *Sequential) Next(*rand.Rand) int64 {
	k := s.next % s.N
	s.next++
	return k
}

func (s *Sequential) String() string { return fmt.Sprintf("sequential(%d)", s.N) }

// Config configures a Generator.
type Config struct {
	// Profile is the combined input rate over time.
	Profile RateProfile
	// Keys draws the join attribute of every tuple.
	Keys KeyDist
	// RFraction is the share of tuples belonging to relation R
	// (default 0.5).
	RFraction float64
	// PayloadBytes adds an opaque string attribute of this size to
	// every tuple, to make memory numbers realistic.
	PayloadBytes int
	// Seed makes runs reproducible.
	Seed int64
	// SeqStart offsets the first emitted sequence number (first tuple
	// gets SeqStart+1). A source restarted against a live pipeline must
	// continue past its previous run's seqs, or the joiners' idempotency
	// filters will suppress the "replayed" range as duplicates.
	SeqStart uint64
}

// Generator converts elapsed virtual time into tuple batches.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	seq      uint64
	carry    float64 // fractional tuples carried between ticks
	payload  string
	start    time.Time
	prevTick time.Time
	started  bool
}

// New builds a generator.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.Keys == nil {
		return nil, fmt.Errorf("workload: key distribution is required")
	}
	if cfg.RFraction <= 0 || cfg.RFraction >= 1 {
		cfg.RFraction = 0.5
	}
	return &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		seq:     cfg.SeqStart,
		payload: strings.Repeat("x", cfg.PayloadBytes),
	}, nil
}

// Tick emits the batch of tuples due for the interval ending at now.
// The first call establishes the origin and emits nothing. Fractional
// tuples carry over, so long runs hit the configured rate exactly.
func (g *Generator) Tick(now time.Time) []*tuple.Tuple {
	if !g.started {
		g.start, g.started = now, true
		return nil
	}
	elapsed := now.Sub(g.start)
	rate := g.cfg.Profile.At(elapsed)
	// The batch covers (prevTick, now]; approximate with the rate at
	// the interval end (profiles are minutes-long, ticks are ~seconds).
	dt := g.tickSpan(now)
	g.carry += rate * dt.Seconds()
	n := int(g.carry)
	g.carry -= float64(n)
	return g.emit(now, n)
}

func (g *Generator) tickSpan(now time.Time) time.Duration {
	if g.prevTick.IsZero() {
		g.prevTick = g.start
	}
	d := now.Sub(g.prevTick)
	g.prevTick = now
	if d < 0 {
		return 0
	}
	return d
}

// Emit generates exactly n tuples stamped at now, bypassing the rate
// profile (for correctness tests and fixed-size benches).
func (g *Generator) Emit(now time.Time, n int) []*tuple.Tuple {
	if !g.started {
		g.start, g.started = now, true
	}
	return g.emit(now, n)
}

func (g *Generator) emit(now time.Time, n int) []*tuple.Tuple {
	if n <= 0 {
		return nil
	}
	ts := now.UnixMilli()
	out := make([]*tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		rel := tuple.S
		if g.rng.Float64() < g.cfg.RFraction {
			rel = tuple.R
		}
		g.seq++
		values := []tuple.Value{tuple.Int(g.cfg.Keys.Next(g.rng))}
		if g.cfg.PayloadBytes > 0 {
			values = append(values, tuple.String(g.payload))
		}
		out = append(out, tuple.New(rel, g.seq, ts, values...))
	}
	return out
}

// Emitted returns how many tuples have been generated.
func (g *Generator) Emitted() uint64 { return g.seq }
