package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"bistream/internal/tuple"
)

func TestRateProfileAt(t *testing.T) {
	p := Fig20Profile()
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 300},
		{5 * time.Minute, 300},
		{10 * time.Minute, 400},
		{39 * time.Minute, 400},
		{40 * time.Minute, 200},
		{50 * time.Minute, 300},
		{time.Hour, 300},
	}
	for _, c := range cases {
		if got := p.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if !strings.Contains(p.String(), "400/s@10m") {
		t.Errorf("String = %q", p.String())
	}
}

func TestRateProfileValidate(t *testing.T) {
	if err := (RateProfile{}).Validate(); err == nil {
		t.Error("empty profile accepted")
	}
	bad := RateProfile{{From: time.Minute, TuplesPerSec: 1}, {From: 0, TuplesPerSec: 2}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-order profile accepted")
	}
	neg := RateProfile{{From: 0, TuplesPerSec: -1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestUniformDist(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{N: 10}
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		k := u.Next(rng)
		if k < 0 || k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	for k, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("key %d drawn %d times, badly unbalanced", k, c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipf(rng, 1000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	for i := 0; i < 20000; i++ {
		counts[z.Next(nil)]++
	}
	if counts[0] < counts[100]*5 {
		t.Errorf("zipf not skewed: key0=%d key100=%d", counts[0], counts[100])
	}
	if _, err := NewZipf(rng, 10, 1.0); err == nil {
		t.Error("s=1 accepted")
	}
	if _, err := NewZipf(rng, 0, 2); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestSequentialDist(t *testing.T) {
	s := &Sequential{N: 3}
	got := []int64{s.Next(nil), s.Next(nil), s.Next(nil), s.Next(nil)}
	want := []int64{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v", got)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := New(Config{Keys: Uniform{N: 10}}); err == nil {
		t.Error("missing profile accepted")
	}
	if _, err := New(Config{Profile: Fig20Profile()}); err == nil {
		t.Error("missing key dist accepted")
	}
}

func TestGeneratorTickHitsRate(t *testing.T) {
	g, err := New(Config{
		Profile: RateProfile{{From: 0, TuplesPerSec: 100}},
		Keys:    Uniform{N: 50},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	g.Tick(now) // origin
	total := 0
	for i := 0; i < 60; i++ {
		now = now.Add(time.Second)
		total += len(g.Tick(now))
	}
	if total != 6000 {
		t.Errorf("generated %d tuples in 60s at 100/s, want 6000", total)
	}
	if g.Emitted() != 6000 {
		t.Errorf("Emitted = %d", g.Emitted())
	}
}

func TestGeneratorFractionalCarry(t *testing.T) {
	// 0.5 tuples/s over 100 one-second ticks must produce exactly 50.
	g, _ := New(Config{
		Profile: RateProfile{{From: 0, TuplesPerSec: 0.5}},
		Keys:    Uniform{N: 5},
	})
	now := time.Unix(0, 0)
	g.Tick(now)
	total := 0
	for i := 0; i < 100; i++ {
		now = now.Add(time.Second)
		total += len(g.Tick(now))
	}
	if total != 50 {
		t.Errorf("generated %d, want 50", total)
	}
}

func TestGeneratorFollowsProfileSteps(t *testing.T) {
	g, _ := New(Config{Profile: Fig20Profile(), Keys: Uniform{N: 100}})
	now := time.Unix(0, 0)
	g.Tick(now)
	perMinute := make([]int, 60)
	for min := 0; min < 60; min++ {
		for s := 0; s < 60; s++ {
			now = now.Add(time.Second)
			perMinute[min] += len(g.Tick(now))
		}
	}
	check := func(min, wantPerSec int) {
		got := perMinute[min]
		want := wantPerSec * 60
		if math.Abs(float64(got-want)) > 2 {
			t.Errorf("minute %d: %d tuples, want ≈%d", min, got, want)
		}
	}
	check(5, 300)
	check(20, 400)
	check(45, 200)
	check(55, 300)
}

func TestGeneratorRelationSplitAndStamps(t *testing.T) {
	g, _ := New(Config{
		Profile:      RateProfile{{From: 0, TuplesPerSec: 1}},
		Keys:         Uniform{N: 10},
		PayloadBytes: 32,
		Seed:         3,
	})
	now := time.Unix(1000, 0)
	batch := g.Emit(now, 2000)
	rCount := 0
	seqs := map[uint64]bool{}
	for _, tp := range batch {
		if tp.Rel == tuple.R {
			rCount++
		}
		if tp.TS != now.UnixMilli() {
			t.Fatalf("tuple ts = %d", tp.TS)
		}
		if seqs[tp.Seq] {
			t.Fatalf("duplicate seq %d", tp.Seq)
		}
		seqs[tp.Seq] = true
		if len(tp.Values) != 2 || len(tp.Values[1].AsString()) != 32 {
			t.Fatalf("payload missing: %v", tp)
		}
	}
	if rCount < 850 || rCount > 1150 {
		t.Errorf("R fraction = %d/2000", rCount)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []*tuple.Tuple {
		g, _ := New(Config{
			Profile: RateProfile{{From: 0, TuplesPerSec: 1}},
			Keys:    Uniform{N: 100},
			Seed:    42,
		})
		return g.Emit(time.Unix(0, 0), 100)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Rel != b[i].Rel || !a[i].Values[0].Equal(b[i].Values[0]) {
			t.Fatal("same seed produced different streams")
		}
	}
}
