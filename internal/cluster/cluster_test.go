package cluster

import (
	"strings"
	"testing"
	"time"
)

func t0() time.Time { return time.Unix(0, 0).UTC() }

func smallSpec(cpu, memMi int64) PodSpec {
	return PodSpec{
		Image:    "eangelog/test-service",
		Requests: ResourceList{MilliCPU: cpu, MemBytes: memMi << 20},
		Labels:   map[string]string{"run": "test"},
	}
}

func TestResourceListArithmetic(t *testing.T) {
	a := ResourceList{MilliCPU: 500, MemBytes: 100}
	b := ResourceList{MilliCPU: 200, MemBytes: 40}
	if got := a.Add(b); got.MilliCPU != 700 || got.MemBytes != 140 {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Sub(b); got.MilliCPU != 300 || got.MemBytes != 60 {
		t.Errorf("Sub = %+v", got)
	}
	if !b.Fits(a) || a.Fits(b) {
		t.Error("Fits wrong")
	}
}

func TestSchedulingSpreadsAndRespectsCapacity(t *testing.T) {
	c := New()
	c.AddStandardNodes(2) // 1000m each
	d := c.NewDeployment("app", smallSpec(600, 100), 2, PodHooks{})
	d.Reconcile(t0())
	if d.ReadyReplicas() != 2 {
		t.Fatalf("ready = %d", d.ReadyReplicas())
	}
	pods := d.Pods()
	if pods[0].Node == pods[1].Node {
		t.Error("600m pods should spread across 1000m nodes")
	}
	// A third 600m pod cannot fit anywhere: Pending.
	d.Scale(3)
	d.Reconcile(t0())
	if d.ReadyReplicas() != 2 {
		t.Errorf("ready = %d after overcommit", d.ReadyReplicas())
	}
	var pending *Pod
	for _, p := range d.Pods() {
		if p.Phase == PodPending {
			pending = p
		}
	}
	if pending == nil {
		t.Fatal("no pending pod")
	}
	// Scale down by one; the pending pod was created last so it goes,
	// and the cluster stays consistent.
	d.Scale(2)
	d.Reconcile(t0())
	if len(c.Pods()) != 2 {
		t.Errorf("cluster pods = %d", len(c.Pods()))
	}
}

func TestPendingPodScheduledWhenCapacityFrees(t *testing.T) {
	c := New()
	c.AddNode("n1", ResourceList{MilliCPU: 1000, MemBytes: 1 << 30})
	d1 := c.NewDeployment("big", smallSpec(800, 10), 1, PodHooks{})
	d1.Reconcile(t0())
	d2 := c.NewDeployment("other", smallSpec(500, 10), 1, PodHooks{})
	d2.Reconcile(t0())
	if d2.ReadyReplicas() != 0 {
		t.Fatal("second pod should be pending")
	}
	d1.Scale(0)
	d1.Reconcile(t0())
	if d2.ReadyReplicas() != 1 {
		t.Error("pending pod not scheduled after capacity freed")
	}
}

func TestPodHooksLifecycle(t *testing.T) {
	c := New()
	c.AddStandardNodes(1)
	started, stopped := 0, 0
	hooks := PodHooks{OnStart: func(p *Pod) (UsageFunc, func()) {
		started++
		return func() ResourceList { return ResourceList{MilliCPU: 123} }, func() { stopped++ }
	}}
	d := c.NewDeployment("svc", smallSpec(100, 10), 2, hooks)
	d.Reconcile(t0())
	if started != 2 {
		t.Errorf("started = %d", started)
	}
	ms := c.NewMetricsServer()
	ms.Scrape(t0())
	for _, p := range d.Pods() {
		if p.Usage().MilliCPU != 123 {
			t.Errorf("usage = %+v", p.Usage())
		}
	}
	d.Scale(0)
	d.Reconcile(t0())
	if stopped != 2 {
		t.Errorf("stopped = %d", stopped)
	}
}

func TestServiceEndpoints(t *testing.T) {
	c := New()
	c.AddStandardNodes(2)
	spec := smallSpec(100, 10)
	spec.Labels = map[string]string{"run": "biclique-router"}
	d := c.NewDeployment("biclique-router", spec, 2, PodHooks{})
	d.Reconcile(t0())
	other := c.NewDeployment("unrelated", smallSpec(100, 10), 1, PodHooks{})
	other.Reconcile(t0())
	svc := c.NewService("router", map[string]string{"run": "biclique-router"}, 8080, "10.3.240.7", "")
	if got := len(svc.Endpoints()); got != 2 {
		t.Errorf("endpoints = %d", got)
	}
	out := FormatServices([]*Service{svc})
	if !strings.Contains(out, "router") || !strings.Contains(out, "8080/TCP") || !strings.Contains(out, "<none>") {
		t.Errorf("service table:\n%s", out)
	}
}

func TestFormatTables(t *testing.T) {
	c := New()
	c.AddStandardNodes(2)
	d := c.NewDeployment("biclique-joiner-r", smallSpec(200, 64), 2, PodHooks{})
	d.Reconcile(t0())
	nodes := c.FormatNodes()
	if !strings.Contains(nodes, "gke-cluster-biclique-node-1") || !strings.Contains(nodes, "Ready") {
		t.Errorf("nodes table:\n%s", nodes)
	}
	deps := FormatDeployments([]*Deployment{d})
	if !strings.Contains(deps, "biclique-joiner-r") || !strings.Contains(deps, "2/2") {
		t.Errorf("deployments table:\n%s", deps)
	}
}

// fakeUsage drives an HPA deterministically.
type fakeUsage struct{ perPod ResourceList }

func (f *fakeUsage) hooks() PodHooks {
	return PodHooks{OnStart: func(p *Pod) (UsageFunc, func()) {
		return func() ResourceList { return f.perPod }, func() {}
	}}
}

func newHPACluster(t *testing.T, target Target, min, max int) (*Cluster, *Deployment, *HPA, *MetricsServer, *fakeUsage) {
	t.Helper()
	c := New()
	c.AddStandardNodes(8)
	fu := &fakeUsage{perPod: ResourceList{}}
	d := c.NewDeployment("joiner", smallSpec(200, 256), min, fu.hooks())
	d.Reconcile(t0())
	h, err := NewHPA("joiner-hpa", d, min, max, target)
	if err != nil {
		t.Fatal(err)
	}
	return c, d, h, c.NewMetricsServer(), fu
}

func TestHPAValidation(t *testing.T) {
	c := New()
	d := c.NewDeployment("x", smallSpec(1, 1), 1, PodHooks{})
	if _, err := NewHPA("h", d, 0, 3, Target{Resource: CPU, AverageUtilization: 80}); err == nil {
		t.Error("min 0 accepted")
	}
	if _, err := NewHPA("h", d, 2, 1, Target{Resource: CPU, AverageUtilization: 80}); err == nil {
		t.Error("max < min accepted")
	}
	if _, err := NewHPA("h", d, 1, 3, Target{Resource: CPU}); err == nil {
		t.Error("empty target accepted")
	}
}

func TestHPAScalesUpOnHighCPU(t *testing.T) {
	// Target 80% of 200m = 160m. Usage 290m/pod → ratio ~1.81 → 2 pods.
	_, d, h, ms, fu := newHPACluster(t, Target{Resource: CPU, AverageUtilization: 80}, 1, 3)
	fu.perPod = ResourceList{MilliCPU: 290}
	now := t0()
	ms.Scrape(now)
	h.Reconcile(now)
	if d.Replicas() != 2 {
		t.Fatalf("replicas = %d, want 2", d.Replicas())
	}
	// Still hot: 260m/pod → ratio 1.63 → ceil(2*1.63)=4 → clamped to 3.
	fu.perPod = ResourceList{MilliCPU: 260}
	now = now.Add(30 * time.Second)
	ms.Scrape(now)
	h.Reconcile(now)
	if d.Replicas() != 3 {
		t.Fatalf("replicas = %d, want 3 (max)", d.Replicas())
	}
}

func TestHPAToleranceBandHolds(t *testing.T) {
	_, d, h, ms, fu := newHPACluster(t, Target{Resource: CPU, AverageUtilization: 80}, 2, 5)
	d.Scale(2)
	d.Reconcile(t0())
	// 168m on a 160m target: ratio 1.05, inside the 10% band.
	fu.perPod = ResourceList{MilliCPU: 168}
	ms.Scrape(t0())
	h.Reconcile(t0())
	if d.Replicas() != 2 {
		t.Errorf("replicas = %d, tolerance band ignored", d.Replicas())
	}
}

func TestHPAScaleDownWaitsForStabilization(t *testing.T) {
	_, d, h, ms, fu := newHPACluster(t, Target{Resource: CPU, AverageUtilization: 80}, 1, 3)
	h.StabilizationWindow = 2 * time.Minute
	d.Scale(3)
	d.Reconcile(t0())
	// One loop at on-target load records a desired of 3 in the history.
	fu.perPod = ResourceList{MilliCPU: 160}
	now := t0()
	ms.Scrape(now)
	h.Reconcile(now)
	if d.Replicas() != 3 {
		t.Fatalf("replicas = %d before drop", d.Replicas())
	}
	// Load drops sharply: desired becomes 1, but the window holds 3.
	fu.perPod = ResourceList{MilliCPU: 40}
	now = now.Add(30 * time.Second)
	ms.Scrape(now)
	h.Reconcile(now)
	if d.Replicas() != 3 {
		t.Fatalf("replicas = %d, scale-down should be stabilized", d.Replicas())
	}
	// After the stabilization window passes with consistently low load,
	// the scale-down applies.
	for i := 0; i < 6; i++ {
		now = now.Add(30 * time.Second)
		ms.Scrape(now)
		h.Reconcile(now)
	}
	if d.Replicas() != 1 {
		t.Errorf("replicas = %d after stabilization, want 1", d.Replicas())
	}
}

func TestHPAMemoryRawTarget(t *testing.T) {
	// The Figure 21 shape: target 520MB mapped heap per pod.
	_, d, h, ms, fu := newHPACluster(t, Target{Resource: Memory, AverageValue: 520 << 20}, 1, 3)
	fu.perPod = ResourceList{MemBytes: 600 << 20}
	now := t0()
	ms.Scrape(now)
	h.Reconcile(now)
	if d.Replicas() != 2 {
		t.Fatalf("replicas = %d, want 2", d.Replicas())
	}
	if r := h.CurrentRatio(); r < 1.1 || r > 1.2 {
		t.Errorf("ratio = %v", r)
	}
}

func TestHPAScaleUpIgnoresStabilization(t *testing.T) {
	_, d, h, ms, fu := newHPACluster(t, Target{Resource: CPU, AverageUtilization: 80}, 1, 4)
	// Low, then immediately high: scale-up must not be delayed.
	fu.perPod = ResourceList{MilliCPU: 40}
	ms.Scrape(t0())
	h.Reconcile(t0())
	fu.perPod = ResourceList{MilliCPU: 320}
	now := t0().Add(30 * time.Second)
	ms.Scrape(now)
	h.Reconcile(now)
	if d.Replicas() < 2 {
		t.Errorf("replicas = %d, scale-up was delayed", d.Replicas())
	}
}

func TestHPAFormat(t *testing.T) {
	_, _, h, _, _ := newHPACluster(t, Target{Resource: CPU, AverageUtilization: 80}, 1, 3)
	row := h.FormatHPA()
	if !strings.Contains(row, "80% cpu") || !strings.Contains(row, "joiner") {
		t.Errorf("hpa row = %q", row)
	}
	_, _, h2, _, _ := newHPACluster(t, Target{Resource: Memory, AverageValue: 520 << 20}, 1, 3)
	if row := h2.FormatHPA(); !strings.Contains(row, "520Mi memory") {
		t.Errorf("hpa row = %q", row)
	}
}

func TestManagedHeapDefaultsGrowOnly(t *testing.T) {
	h, err := NewManagedHeap(DefaultHeapPolicy(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Mapped() != 58<<20 {
		t.Errorf("initial mapped = %d", h.Mapped())
	}
	// Live set rises to 400MB then falls to 100MB: with the default
	// policy the mapped heap ratchets up and stays up.
	high := h.Observe(400 << 20)
	if high < 400<<20 {
		t.Errorf("mapped %d below live set", high)
	}
	low := h.Observe(100 << 20)
	if low < high {
		t.Errorf("default policy trimmed: %d -> %d", high, low)
	}
}

func TestManagedHeapTunedTracksLiveSet(t *testing.T) {
	h, err := NewManagedHeap(TunedHeapPolicy(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	high := h.Observe(400 << 20)
	low := h.Observe(100 << 20)
	if low >= high {
		t.Errorf("tuned policy did not trim: %d -> %d", high, low)
	}
	// Mapped must stay within [live*1.2, live*1.4] after trimming.
	if low < int64(float64(100<<20)*1.2) || low > int64(float64(100<<20)*1.4)+1 {
		t.Errorf("trimmed mapped = %dMi outside policy band", low>>20)
	}
}

func TestManagedHeapClampsToXmx(t *testing.T) {
	h, err := NewManagedHeap(TunedHeapPolicy(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Observe(5 << 30); got != 926<<20 {
		t.Errorf("mapped = %d, want clamped to 926Mi", got)
	}
}

func TestManagedHeapValidation(t *testing.T) {
	if _, err := NewManagedHeap(TunedHeapPolicy(), 100, 50); err == nil {
		t.Error("xms > xmx accepted")
	}
	if _, err := NewManagedHeap(HeapPolicy{MinFreeRatio: 0.5, MaxFreeRatio: 0.2}, 0, 0); err == nil {
		t.Error("inverted ratios accepted")
	}
}

func TestAutoHealingOnNodeFailure(t *testing.T) {
	c := New()
	c.AddStandardNodes(3)
	started := 0
	hooks := PodHooks{OnStart: func(p *Pod) (UsageFunc, func()) {
		started++
		return func() ResourceList { return ResourceList{} }, func() {}
	}}
	d := c.NewDeployment("svc", smallSpec(300, 64), 3, hooks)
	d.Reconcile(t0())
	if d.ReadyReplicas() != 3 {
		t.Fatalf("ready = %d", d.ReadyReplicas())
	}
	// Find a node running at least one pod and fail it.
	var victim *Node
	for _, n := range c.Nodes() {
		if len(n.pods) > 0 {
			victim = n
			break
		}
	}
	lost := len(victim.pods)
	if err := c.FailNode(victim.Name); err != nil {
		t.Fatal(err)
	}
	if d.ReadyReplicas() != 3-lost {
		t.Fatalf("ready = %d after failing node with %d pods", d.ReadyReplicas(), lost)
	}
	// Auto-healing: the next reconcile replaces the lost pods on the
	// surviving nodes.
	d.Reconcile(t0().Add(time.Minute))
	if d.ReadyReplicas() != 3 {
		t.Errorf("ready = %d after heal, want 3", d.ReadyReplicas())
	}
	if started != 3+lost {
		t.Errorf("started = %d, want %d (replacements are new pods)", started, 3+lost)
	}
	// The failed node takes no pods while NotReady.
	for _, p := range c.Pods() {
		if p.Node == victim {
			t.Errorf("pod %s scheduled on failed node", p.Name)
		}
	}
	if !strings.Contains(c.FormatNodes(), "NotReady") {
		t.Error("node table does not show NotReady")
	}
	if err := c.RecoverNode(victim.Name); err != nil {
		t.Fatal(err)
	}
	if !victim.Ready() {
		t.Error("node not recovered")
	}
	if err := c.FailNode("nope"); err == nil {
		t.Error("failing unknown node accepted")
	}
	if err := c.RecoverNode("nope"); err == nil {
		t.Error("recovering unknown node accepted")
	}
}

func TestAutoHealingWaitsForCapacity(t *testing.T) {
	c := New()
	c.AddNode("n1", ResourceList{MilliCPU: 1000, MemBytes: 1 << 30})
	c.AddNode("n2", ResourceList{MilliCPU: 1000, MemBytes: 1 << 30})
	d := c.NewDeployment("svc", smallSpec(700, 64), 2, PodHooks{})
	d.Reconcile(t0())
	if d.ReadyReplicas() != 2 {
		t.Fatal("setup failed")
	}
	c.FailNode("n1")
	d.Reconcile(t0())
	// The replacement cannot fit on n2 (700m free < 700m... n2 already
	// hosts one 700m pod): it stays Pending.
	if d.ReadyReplicas() != 1 {
		t.Fatalf("ready = %d", d.ReadyReplicas())
	}
	c.RecoverNode("n1")
	if d.ReadyReplicas() != 2 {
		t.Errorf("ready = %d after node recovery, want 2", d.ReadyReplicas())
	}
}

func TestNodeAutoscalerScalesUpOnPending(t *testing.T) {
	c := New()
	c.AddStandardNodes(1)
	a, err := NewNodeAutoscaler(c, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := c.NewDeployment("svc", smallSpec(700, 64), 3, PodHooks{})
	d.Reconcile(t0())
	if d.ReadyReplicas() != 1 {
		t.Fatalf("ready = %d with one node", d.ReadyReplicas())
	}
	// One node per reconcile period.
	a.Reconcile(t0())
	if a.ReadyNodes() != 2 || d.ReadyReplicas() != 2 {
		t.Fatalf("after 1st reconcile: nodes=%d ready=%d", a.ReadyNodes(), d.ReadyReplicas())
	}
	a.Reconcile(t0().Add(time.Minute))
	if a.ReadyNodes() != 3 || d.ReadyReplicas() != 3 {
		t.Fatalf("after 2nd reconcile: nodes=%d ready=%d", a.ReadyNodes(), d.ReadyReplicas())
	}
	// At max: a fourth pending pod does not add nodes.
	d.Scale(4)
	d.Reconcile(t0())
	a.Reconcile(t0().Add(2 * time.Minute))
	if a.ReadyNodes() != 3 {
		t.Errorf("scaled past max: %d nodes", a.ReadyNodes())
	}
}

func TestNodeAutoscalerScalesDownIdleNodes(t *testing.T) {
	c := New()
	c.AddStandardNodes(3)
	a, _ := NewNodeAutoscaler(c, 1, 3)
	a.ScaleDownIdle = time.Minute
	d := c.NewDeployment("svc", smallSpec(700, 64), 3, PodHooks{})
	d.Reconcile(t0())
	// Drop to one pod: two nodes become empty.
	d.Scale(1)
	d.Reconcile(t0())
	now := t0()
	a.Reconcile(now) // marks empty-from
	if a.ReadyNodes() != 3 {
		t.Fatal("scaled down immediately")
	}
	now = now.Add(2 * time.Minute)
	a.Reconcile(now) // one node released
	if a.ReadyNodes() != 2 {
		t.Fatalf("nodes = %d after idle window", a.ReadyNodes())
	}
	a.Reconcile(now.Add(3 * time.Minute))
	if a.ReadyNodes() != 1 {
		t.Fatalf("nodes = %d, want min 1", a.ReadyNodes())
	}
	// Never below min.
	a.Reconcile(now.Add(10 * time.Minute))
	if a.ReadyNodes() != 1 {
		t.Errorf("scaled below min: %d", a.ReadyNodes())
	}
}

func TestNodeAutoscalerValidation(t *testing.T) {
	c := New()
	if _, err := NewNodeAutoscaler(c, 0, 3); err == nil {
		t.Error("min 0 accepted")
	}
	if _, err := NewNodeAutoscaler(c, 3, 1); err == nil {
		t.Error("max < min accepted")
	}
}
