// Package cluster simulates the container-orchestration substrate of
// the deployment described in Chapters 4-5 of the source text: worker
// nodes with CPU/memory capacity, pods with resource requests scheduled
// onto them, deployments reconciling replica counts, services selecting
// pods, a metrics server scraping per-pod usage, and a Horizontal Pod
// Autoscaler implementing the documented Kubernetes control loop for
// CPU-utilization and memory targets.
//
// The simulator is deliberately deterministic and driven by explicit
// Reconcile/Scrape calls (scheduled on a virtual clock by the
// experiment harness), so the 60-minute autoscaling experiments of
// Figures 20-21 replay identically in milliseconds.
package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ResourceList is a CPU+memory quantity, in the units Kubernetes uses:
// millicores and bytes.
type ResourceList struct {
	MilliCPU int64
	MemBytes int64
}

// Add returns the component-wise sum.
func (r ResourceList) Add(o ResourceList) ResourceList {
	return ResourceList{MilliCPU: r.MilliCPU + o.MilliCPU, MemBytes: r.MemBytes + o.MemBytes}
}

// Sub returns the component-wise difference.
func (r ResourceList) Sub(o ResourceList) ResourceList {
	return ResourceList{MilliCPU: r.MilliCPU - o.MilliCPU, MemBytes: r.MemBytes - o.MemBytes}
}

// Fits reports whether r fits within capacity o.
func (r ResourceList) Fits(o ResourceList) bool {
	return r.MilliCPU <= o.MilliCPU && r.MemBytes <= o.MemBytes
}

// Node is one worker VM (the thesis used n1-standard-1: 1 vCPU,
// 3.75 GB).
type Node struct {
	Name      string
	Capacity  ResourceList
	allocated ResourceList
	pods      map[string]*Pod
	notReady  bool
}

// Ready reports whether the node accepts pods.
func (n *Node) Ready() bool { return !n.notReady }

// Allocated returns the sum of requests of pods bound to the node.
func (n *Node) Allocated() ResourceList { return n.allocated }

// Free returns the unallocated capacity.
func (n *Node) Free() ResourceList { return n.Capacity.Sub(n.allocated) }

// PodPhase is a pod's lifecycle phase.
type PodPhase uint8

// Pod phases.
const (
	PodPending PodPhase = iota
	PodRunning
	PodTerminated
)

// String names the phase as kubectl does.
func (p PodPhase) String() string {
	switch p {
	case PodPending:
		return "Pending"
	case PodRunning:
		return "Running"
	default:
		return "Terminated"
	}
}

// UsageFunc samples a pod's live resource usage. The experiment harness
// binds it to the real engine member backing the pod, so the autoscaler
// reacts to genuine load.
type UsageFunc func() ResourceList

// PodSpec is the template a deployment stamps out.
type PodSpec struct {
	Image    string
	Requests ResourceList
	Labels   map[string]string
}

// Pod is one scheduled container instance.
type Pod struct {
	Name    string
	Spec    PodSpec
	Node    *Node
	Phase   PodPhase
	Started time.Time

	usageFn   UsageFunc
	lastUsage ResourceList // refreshed by the metrics server
	stopFn    func()
}

// Usage returns the last scraped usage sample.
func (p *Pod) Usage() ResourceList { return p.lastUsage }

// Cluster owns nodes and pods and performs scheduling.
type Cluster struct {
	nodes   []*Node
	pods    map[string]*Pod
	nextPod map[string]int // per-deployment pod name counter
}

// New creates an empty cluster.
func New() *Cluster {
	return &Cluster{pods: make(map[string]*Pod), nextPod: make(map[string]int)}
}

// AddNode registers a worker node.
func (c *Cluster) AddNode(name string, capacity ResourceList) *Node {
	n := &Node{Name: name, Capacity: capacity, pods: make(map[string]*Pod)}
	c.nodes = append(c.nodes, n)
	return n
}

// AddStandardNodes adds count nodes shaped like the thesis's GKE
// free-tier workers: 1 vCPU and 3.75 GB each.
func (c *Cluster) AddStandardNodes(count int) {
	for i := 0; i < count; i++ {
		c.AddNode(fmt.Sprintf("gke-cluster-biclique-node-%d", i+1), ResourceList{
			MilliCPU: 1000,
			MemBytes: 3750 << 20,
		})
	}
}

// Nodes returns the nodes in registration order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Pods returns all non-terminated pods sorted by name.
func (c *Cluster) Pods() []*Pod {
	out := make([]*Pod, 0, len(c.pods))
	for _, p := range c.pods {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// schedule binds the pod to the ready node with the most free CPU that
// fits its requests; without one the pod stays Pending.
func (c *Cluster) schedule(p *Pod) {
	var best *Node
	for _, n := range c.nodes {
		if n.notReady || !p.Spec.Requests.Fits(n.Free()) {
			continue
		}
		if best == nil || n.Free().MilliCPU > best.Free().MilliCPU {
			best = n
		}
	}
	if best == nil {
		p.Phase = PodPending
		return
	}
	p.Node = best
	p.Phase = PodRunning
	best.allocated = best.allocated.Add(p.Spec.Requests)
	best.pods[p.Name] = p
}

// createPod instantiates and schedules a pod for a deployment.
func (c *Cluster) createPod(deployment string, spec PodSpec, now time.Time) *Pod {
	c.nextPod[deployment]++
	name := fmt.Sprintf("%s-%d", deployment, c.nextPod[deployment])
	p := &Pod{Name: name, Spec: spec, Started: now}
	c.pods[name] = p
	c.schedule(p)
	return p
}

// deletePod terminates a pod and releases its node resources.
func (c *Cluster) deletePod(p *Pod) {
	if p.Phase == PodRunning && p.Node != nil {
		p.Node.allocated = p.Node.allocated.Sub(p.Spec.Requests)
		delete(p.Node.pods, p.Name)
	}
	p.Phase = PodTerminated
	delete(c.pods, p.Name)
	if p.stopFn != nil {
		p.stopFn()
	}
}

// retrySchedulePending tries to place Pending pods (capacity may have
// been freed).
func (c *Cluster) retrySchedulePending() {
	for _, p := range c.Pods() {
		if p.Phase == PodPending {
			c.schedule(p)
		}
	}
}

// FailNode marks a node NotReady and terminates its pods, the failure
// the orchestrator's auto-healing (§4.5) recovers from: the owning
// deployments replace the lost pods on their next Reconcile.
func (c *Cluster) FailNode(name string) error {
	var node *Node
	for _, n := range c.nodes {
		if n.Name == name {
			node = n
			break
		}
	}
	if node == nil {
		return fmt.Errorf("cluster: no node %q", name)
	}
	node.notReady = true
	for _, p := range node.pods {
		c.deletePod(p)
	}
	return nil
}

// RecoverNode returns a failed node to service and reschedules any
// Pending pods onto it.
func (c *Cluster) RecoverNode(name string) error {
	for _, n := range c.nodes {
		if n.Name == name {
			n.notReady = false
			c.retrySchedulePending()
			return nil
		}
	}
	return fmt.Errorf("cluster: no node %q", name)
}

// FormatNodes renders the node table ("kubectl get nodes" plus usage).
func (c *Cluster) FormatNodes() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-38s %-8s %12s %14s %6s\n", "NAME", "STATUS", "CPU(alloc/cap)", "MEM(alloc/cap)", "PODS")
	for _, n := range c.nodes {
		status := "Ready"
		if n.notReady {
			status = "NotReady"
		}
		fmt.Fprintf(&sb, "%-38s %-8s %6dm/%dm %8dMi/%dMi %6d\n",
			n.Name, status,
			n.allocated.MilliCPU, n.Capacity.MilliCPU,
			n.allocated.MemBytes>>20, n.Capacity.MemBytes>>20,
			len(n.pods))
	}
	return sb.String()
}
