package cluster

import (
	"fmt"
	"time"
)

// NodeAutoscaler is the VM-level autoscaler of §4.6: GKE scales the
// *cluster* (VM instances) in addition to the pods within it. The
// thesis had to disable it under the free-tier quota; the simulator
// implements the documented behaviour: a node is added when pods stay
// Pending for lack of capacity, and an empty node is removed after a
// sustained idle period.
type NodeAutoscaler struct {
	cluster  *Cluster
	min, max int
	// NodeTemplate shapes added nodes (defaults to n1-standard-1).
	NodeTemplate ResourceList
	// ScaleDownIdle is how long a node must stay empty before removal
	// (default 5 minutes).
	ScaleDownIdle time.Duration

	nextID    int
	emptyFrom map[string]time.Time
}

// NewNodeAutoscaler bounds the cluster between min and max nodes.
func NewNodeAutoscaler(c *Cluster, min, max int) (*NodeAutoscaler, error) {
	if min < 1 || max < min {
		return nil, fmt.Errorf("cluster: node autoscaler bounds [%d,%d] invalid", min, max)
	}
	return &NodeAutoscaler{
		cluster:       c,
		min:           min,
		max:           max,
		NodeTemplate:  ResourceList{MilliCPU: 1000, MemBytes: 3750 << 20},
		ScaleDownIdle: 5 * time.Minute,
		emptyFrom:     make(map[string]time.Time),
	}, nil
}

// Reconcile runs one control period: add a node if any pod is Pending
// for lack of capacity, remove a node that has been empty past the idle
// threshold.
func (a *NodeAutoscaler) Reconcile(now time.Time) {
	// Scale up: unschedulable pods and headroom below max.
	pending := false
	for _, p := range a.cluster.Pods() {
		if p.Phase == PodPending {
			pending = true
			break
		}
	}
	ready := 0
	for _, n := range a.cluster.Nodes() {
		if n.Ready() {
			ready++
		}
	}
	if pending && ready < a.max {
		a.nextID++
		name := fmt.Sprintf("gke-cluster-biclique-auto-%d", a.nextID)
		a.cluster.AddNode(name, a.NodeTemplate)
		a.cluster.retrySchedulePending()
		return // one node per period, like the real autoscaler
	}
	// Scale down: a ready node empty for the whole idle window goes
	// (the cluster keeps the node object; NotReady models deletion).
	if ready <= a.min {
		return
	}
	for _, n := range a.cluster.Nodes() {
		if !n.Ready() || len(n.pods) > 0 {
			delete(a.emptyFrom, n.Name)
			continue
		}
		since, ok := a.emptyFrom[n.Name]
		if !ok {
			a.emptyFrom[n.Name] = now
			continue
		}
		if now.Sub(since) >= a.ScaleDownIdle {
			n.notReady = true // drained and released
			delete(a.emptyFrom, n.Name)
			return // one node per period
		}
	}
}

// ReadyNodes counts nodes accepting pods.
func (a *NodeAutoscaler) ReadyNodes() int {
	n := 0
	for _, node := range a.cluster.Nodes() {
		if node.Ready() {
			n++
		}
	}
	return n
}
