package cluster

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// MetricsServer scrapes pod usage samples (the Heapster role of §5.2).
type MetricsServer struct {
	cluster *Cluster
}

// NewMetricsServer creates the scraper.
func (c *Cluster) NewMetricsServer() *MetricsServer {
	return &MetricsServer{cluster: c}
}

// Scrape refreshes every running pod's usage sample from its UsageFunc.
func (m *MetricsServer) Scrape(now time.Time) {
	for _, p := range m.cluster.Pods() {
		if p.Phase == PodRunning && p.usageFn != nil {
			p.lastUsage = p.usageFn()
		}
	}
}

// Resource selects which resource an HPA target observes.
type Resource uint8

// Observable resources.
const (
	CPU Resource = iota
	Memory
)

// String names the resource as the autoscaling API does.
func (r Resource) String() string {
	if r == CPU {
		return "cpu"
	}
	return "memory"
}

// Target is an HPA metric target: either AverageUtilization (percent of
// the pod's request, the GA CPU path) or AverageValue (a raw quantity,
// the v2alpha1 memory path the thesis enabled alpha features for).
type Target struct {
	Resource           Resource
	AverageUtilization int   // percent of request; 0 if AverageValue used
	AverageValue       int64 // raw millicores or bytes; 0 if utilization used
}

// HPA is the Horizontal Pod Autoscaler control loop of Figure 19,
// implementing the documented algorithm:
//
//	desired = ceil(current * mean(usage) / target)
//
// with a ±10% tolerance band and a scale-down stabilization window (the
// controller acts on the highest recommendation seen within the
// window, preventing flapping).
type HPA struct {
	Name       string
	Deployment *Deployment
	Min, Max   int
	Target     Target
	// Tolerance is the no-op band around ratio 1.0 (default 0.1).
	Tolerance float64
	// StabilizationWindow delays scale-down (default 3 minutes).
	StabilizationWindow time.Duration
	// OnScale, when set, is invoked after each rescale with the old and
	// new replica counts. The engine glue binds it to ScaleJoiners,
	// which makes a shrink verdict a live state migration rather than a
	// bare pod deletion.
	OnScale func(from, to int)

	recommendations []recommendation
	lastRatio       float64
	lastDesired     int
}

type recommendation struct {
	at      time.Time
	desired int
}

// NewHPA attaches an autoscaler to a deployment.
func NewHPA(name string, d *Deployment, min, max int, target Target) (*HPA, error) {
	if min < 1 || max < min {
		return nil, fmt.Errorf("cluster: HPA bounds [%d,%d] invalid", min, max)
	}
	if target.AverageUtilization <= 0 && target.AverageValue <= 0 {
		return nil, fmt.Errorf("cluster: HPA target needs AverageUtilization or AverageValue")
	}
	return &HPA{
		Name:                name,
		Deployment:          d,
		Min:                 min,
		Max:                 max,
		Target:              target,
		Tolerance:           0.1,
		StabilizationWindow: 3 * time.Minute,
	}, nil
}

// usageOf extracts the observed resource from a sample.
func (h *HPA) usageOf(u ResourceList) float64 {
	if h.Target.Resource == CPU {
		return float64(u.MilliCPU)
	}
	return float64(u.MemBytes)
}

// requestOf extracts the requested quantity from the pod template.
func (h *HPA) requestOf() float64 {
	req := h.Deployment.Template.Requests
	if h.Target.Resource == CPU {
		return float64(req.MilliCPU)
	}
	return float64(req.MemBytes)
}

// CurrentRatio returns the last computed usage/target ratio (for the
// experiment recorder; 1.0 means exactly on target).
func (h *HPA) CurrentRatio() float64 { return h.lastRatio }

// Reconcile runs one control-loop period: observe, compute the desired
// replica count, and scale the deployment (the deployment's own
// Reconcile then creates/deletes pods).
func (h *HPA) Reconcile(now time.Time) {
	pods := h.Deployment.Pods()
	var sum float64
	n := 0
	for _, p := range pods {
		if p.Phase != PodRunning {
			continue
		}
		sum += h.usageOf(p.Usage())
		n++
	}
	if n == 0 {
		return // nothing to observe yet
	}
	mean := sum / float64(n)
	var ratio float64
	if h.Target.AverageUtilization > 0 {
		req := h.requestOf()
		if req <= 0 {
			return
		}
		utilization := mean / req * 100
		ratio = utilization / float64(h.Target.AverageUtilization)
	} else {
		ratio = mean / float64(h.Target.AverageValue)
	}
	h.lastRatio = ratio

	current := len(pods)
	desired := current
	if math.Abs(ratio-1) > h.Tolerance {
		desired = int(math.Ceil(float64(n) * ratio))
	}
	if desired < h.Min {
		desired = h.Min
	}
	if desired > h.Max {
		desired = h.Max
	}
	// Scale-down stabilization: act on the maximum recommendation in
	// the window, so a transient dip cannot shed pods.
	h.recommendations = append(h.recommendations, recommendation{at: now, desired: desired})
	cutoff := now.Add(-h.StabilizationWindow)
	kept := h.recommendations[:0]
	stabilized := desired
	for _, r := range h.recommendations {
		if r.at.Before(cutoff) {
			continue
		}
		kept = append(kept, r)
		if r.desired > stabilized {
			stabilized = r.desired
		}
	}
	h.recommendations = kept
	if stabilized > desired {
		desired = stabilized // scale-up passes through, scale-down waits
	}
	h.lastDesired = desired
	if desired != current {
		h.Deployment.Scale(desired)
		h.Deployment.Reconcile(now)
		if h.OnScale != nil {
			h.OnScale(current, desired)
		}
	}
}

// FormatHPA renders an "kubectl get hpa"-style row.
func (h *HPA) FormatHPA() string {
	var target strings.Builder
	if h.Target.AverageUtilization > 0 {
		fmt.Fprintf(&target, "%d%% %s", h.Target.AverageUtilization, h.Target.Resource)
	} else if h.Target.Resource == Memory {
		fmt.Fprintf(&target, "%dMi %s", h.Target.AverageValue>>20, h.Target.Resource)
	} else {
		fmt.Fprintf(&target, "%dm %s", h.Target.AverageValue, h.Target.Resource)
	}
	return fmt.Sprintf("%-24s %-18s %-10s %3d %3d %8d",
		h.Name, h.Deployment.Name, target.String(), h.Min, h.Max, h.Deployment.Replicas())
}
