package cluster

import "fmt"

// HeapPolicy models the JVM parallel-collector footprint policy the
// thesis spends §5.2 tuning: the collector keeps the mapped heap
// between live*(1+MinFreeRatio) and live*(1+MaxFreeRatio), but only
// actually trims unused pages when the time/space trade-off
// (GCTimeRatio) lets it. With the JVM defaults (ratios 0.40/0.70,
// GCTimeRatio 99) the heap effectively ratchets up toward -Xmx; with
// the thesis's tuned flags (0.20/0.40, GCTimeRatio 4) the mapped heap
// tracks the live set — which is what makes a memory-based autoscaler
// workable at all (the E9 ablation).
type HeapPolicy struct {
	MinFreeRatio float64 // fraction of live data kept as mapped headroom (lower bound)
	MaxFreeRatio float64 // upper bound before the collector may trim
	GCTimeRatio  int     // worst-case GC time 1/(1+GCTimeRatio); low values trade time for space
}

// DefaultHeapPolicy mirrors the JVM defaults: footprint grows and is
// essentially never returned.
func DefaultHeapPolicy() HeapPolicy {
	return HeapPolicy{MinFreeRatio: 0.40, MaxFreeRatio: 0.70, GCTimeRatio: 99}
}

// TunedHeapPolicy mirrors the thesis's cloud-friendly flags:
// -XX:MinHeapFreeRatio=20 -XX:MaxHeapFreeRatio=40 -XX:GCTimeRatio=4.
func TunedHeapPolicy() HeapPolicy {
	return HeapPolicy{MinFreeRatio: 0.20, MaxFreeRatio: 0.40, GCTimeRatio: 4}
}

// trims reports whether the policy's time goal leaves room to unmap
// pages: a GCTimeRatio of 99 (≤1% GC time) makes the collector grow
// the heap instead of trimming; a low ratio prioritizes footprint.
func (p HeapPolicy) trims() bool { return p.GCTimeRatio <= 19 }

// ManagedHeap models one JVM's mapped-heap size as a function of its
// live set, between -Xms and -Xmx.
type ManagedHeap struct {
	policy HeapPolicy
	xms    int64
	xmx    int64
	mapped int64
}

// NewManagedHeap creates a heap with the thesis's default sizing (58 MB
// minimum, 926 MB maximum) unless overridden.
func NewManagedHeap(policy HeapPolicy, xms, xmx int64) (*ManagedHeap, error) {
	if xms <= 0 {
		xms = 58 << 20
	}
	if xmx <= 0 {
		xmx = 926 << 20
	}
	if xms > xmx {
		return nil, fmt.Errorf("cluster: heap min %d exceeds max %d", xms, xmx)
	}
	if policy.MinFreeRatio < 0 || policy.MaxFreeRatio < policy.MinFreeRatio {
		return nil, fmt.Errorf("cluster: heap free ratios [%v,%v] invalid", policy.MinFreeRatio, policy.MaxFreeRatio)
	}
	return &ManagedHeap{policy: policy, xms: xms, xmx: xmx, mapped: xms}, nil
}

// Observe feeds the current live-set size (the window state of the
// joiner the pod runs) and returns the resulting mapped-heap size —
// the number the memory autoscaler sees.
func (h *ManagedHeap) Observe(live int64) int64 {
	lo := int64(float64(live) * (1 + h.policy.MinFreeRatio))
	hi := int64(float64(live) * (1 + h.policy.MaxFreeRatio))
	switch {
	case h.mapped < lo:
		// Map more pages: the collector extends up to the midpoint of
		// the band so small live-set growth doesn't immediately retrim.
		h.mapped = (lo + hi) / 2
	case h.mapped > hi && h.policy.trims():
		// Unmap down to the lower bound plus min headroom.
		h.mapped = lo
	}
	if h.mapped < h.xms {
		h.mapped = h.xms
	}
	if h.mapped > h.xmx {
		h.mapped = h.xmx
	}
	return h.mapped
}

// Mapped returns the current mapped-heap size.
func (h *ManagedHeap) Mapped() int64 { return h.mapped }
