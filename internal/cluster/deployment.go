package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PodHooks couple a pod's lifecycle to the system backing it: when the
// deployment starts a pod, OnStart returns the usage sampler for the
// metrics server and a stop function invoked at pod deletion. The
// Figure 20/21 experiments use these hooks to scale the actual engine's
// joiner group in lock-step with the simulated pods.
type PodHooks struct {
	OnStart func(p *Pod) (UsageFunc, func())
}

// Deployment declaratively maintains Replicas pods from Template, the
// abstraction the thesis deploys every service with.
type Deployment struct {
	Name     string
	Template PodSpec
	Hooks    PodHooks

	cluster  *Cluster
	replicas int
	pods     []*Pod // creation order
}

// NewDeployment registers a deployment with the cluster. Reconcile
// brings up the pods.
func (c *Cluster) NewDeployment(name string, template PodSpec, replicas int, hooks PodHooks) *Deployment {
	return &Deployment{
		Name:     name,
		Template: template,
		Hooks:    hooks,
		cluster:  c,
		replicas: replicas,
	}
}

// Replicas returns the desired replica count.
func (d *Deployment) Replicas() int { return d.replicas }

// ReadyReplicas returns the number of Running pods.
func (d *Deployment) ReadyReplicas() int {
	n := 0
	for _, p := range d.pods {
		if p.Phase == PodRunning {
			n++
		}
	}
	return n
}

// Pods returns the deployment's live pods in creation order.
func (d *Deployment) Pods() []*Pod { return append([]*Pod(nil), d.pods...) }

// Scale sets the desired replica count; Reconcile applies it.
func (d *Deployment) Scale(replicas int) {
	if replicas < 0 {
		replicas = 0
	}
	d.replicas = replicas
}

// Reconcile creates or deletes pods until the live set matches the
// desired count (newest pods are removed first, as the ReplicaSet
// controller prefers). Pods terminated from outside — a failed node —
// are pruned first and therefore replaced: the auto-healing of §4.5.
func (d *Deployment) Reconcile(now time.Time) {
	live := d.pods[:0]
	for _, p := range d.pods {
		if p.Phase != PodTerminated {
			live = append(live, p)
		}
	}
	d.pods = live
	for len(d.pods) < d.replicas {
		p := d.cluster.createPod(d.Name, d.Template, now)
		if d.Hooks.OnStart != nil {
			p.usageFn, p.stopFn = d.Hooks.OnStart(p)
		}
		d.pods = append(d.pods, p)
	}
	for len(d.pods) > d.replicas {
		last := d.pods[len(d.pods)-1]
		d.pods = d.pods[:len(d.pods)-1]
		d.cluster.deletePod(last)
	}
	d.cluster.retrySchedulePending()
}

// FormatDeployments renders the deployment table of Figure 17.
func FormatDeployments(ds []*Deployment) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %-7s %-7s %-30s\n", "NAME", "READY", "UP", "IMAGE")
	for _, d := range ds {
		fmt.Fprintf(&sb, "%-24s %d/%-5d %-7s %-30s\n",
			d.Name, d.ReadyReplicas(), d.replicas, "Yes", d.Template.Image)
	}
	return sb.String()
}

// Service provides a stable name for a labeled set of pods, mirroring
// the Kubernetes Service abstraction of Figure 16.
type Service struct {
	Name      string
	Selector  map[string]string
	Port      int
	ClusterIP string
	External  string // empty for internal-only services
	cluster   *Cluster
}

// NewService registers a service.
func (c *Cluster) NewService(name string, selector map[string]string, port int, clusterIP, external string) *Service {
	return &Service{
		Name: name, Selector: selector, Port: port,
		ClusterIP: clusterIP, External: external, cluster: c,
	}
}

// Endpoints lists the Running pods matching the selector, sorted by
// name.
func (s *Service) Endpoints() []*Pod {
	var out []*Pod
	for _, p := range s.cluster.Pods() {
		if p.Phase != PodRunning {
			continue
		}
		match := true
		for k, v := range s.Selector {
			if p.Spec.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FormatServices renders the service table of Figure 16.
func FormatServices(ss []*Service) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-14s %-16s %-12s %6s\n", "NAME", "CLUSTER-IP", "EXTERNAL-IP", "PORT(S)", "ENDPTS")
	for _, s := range ss {
		ext := s.External
		if ext == "" {
			ext = "<none>"
		}
		fmt.Fprintf(&sb, "%-16s %-14s %-16s %-12s %6d\n",
			s.Name, s.ClusterIP, ext, fmt.Sprintf("%d/TCP", s.Port), len(s.Endpoints()))
	}
	return sb.String()
}
