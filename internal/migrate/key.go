package migrate

import (
	"fmt"
	"time"

	"bistream/internal/broker"
	"bistream/internal/checkpoint"
	"bistream/internal/index"
	"bistream/internal/metrics"
	"bistream/internal/tuple"
)

// Key-scoped migration: when the adaptive router promotes a key to
// scattered placement, the key's already-stored partition is still
// piled on its old hash owner. RunKey moves exactly that pile to the
// scattered owners over the same drain-barrier/segment-streaming path a
// whole-member migration uses, with one structural difference — the
// donor stays a live member throughout, so instead of MarkDead the
// protocol ends by removing the exported tuples from the donor:
//
//  1. Drain: the key's placement has already flipped (every new store
//     copy scatters, every probe broadcasts). The engine captured the
//     routers' stamp cursor right after the flip; once the donor's
//     frontier passes it, every store copy hash-routed to the donor
//     before the flip has landed, so the donor's pile is complete.
//  2. Export: the donor returns a copy of its tuples for the key — and
//     keeps them, because broadcast probes in flight may still only be
//     answerable by the donor's copy. The exported sequence numbers are
//     remembered for the final removal.
//  3. Transfer + graft: the copies are partitioned round-robin across
//     the recipients (every live member except the donor — a member
//     must never graft its own export, or the removal would delete the
//     grafted copy too), streamed over the attempt-qualified migration
//     queue with CRC validation and retransmits, and imported as sealed
//     foreign segments. Until the donor-side removal, a broadcast probe
//     can match both the donor's original and a recipient's graft; the
//     sink's result dedup absorbs those pairs, exactly as it absorbs
//     the overlap of a whole-member migration.
//  4. Cut over: once the donor's frontier passes a cursor captured
//     after every graft committed, any probe that could have been
//     answered only by the donor's copies has been processed, and every
//     later probe sees the grafts — so the donor drops exactly the
//     exported sequence set. Tuples of the same key scattered to the
//     donor after the flip are not in the set and survive.
//
// A failure anywhere before the drop leaves copies in two places,
// which is duplicate storage, never a lost tuple: results stay exact
// through the sink dedup, and the controller simply retries later.

// KeyPeer is the coordinator's view of the donor during a hot-key
// migration. The engine's Donor function re-resolves it on every call,
// so a donor cold-replaced mid-migration is observed through its new
// incarnation.
type KeyPeer interface {
	// ExportKeyIfDrained atomically checks that the member's release
	// frontier passed minStamp and exports its stored tuples for the
	// key; it returns an error while not yet drained.
	ExportKeyIfDrained(keyHash uint64, minStamp uint64) ([]*tuple.Tuple, error)
	// Frontier reports the member's release frontier.
	Frontier() uint64
}

// KeyConfig parameterizes one hot-key migration run.
type KeyConfig struct {
	// Client is the broker the transfer frames travel over. Required.
	Client broker.Client
	// Metrics receives the counters under "migrate.key.<rel>.<origin>.";
	// nil uses a private registry.
	Metrics *metrics.Registry
	// Rel is the relation whose stored partition moves.
	Rel tuple.Relation
	// Origin is the donor's member id — the key's hash owner.
	Origin int32
	// KeyHash is the join-attribute hash of the promoted key.
	KeyHash uint64
	// Attempt is an engine-unique transfer number. It qualifies the
	// transfer queue AND the graft segment ids (attempt<<16 | n), so a
	// key migration can never collide with a whole-member migration from
	// the same donor (whose segments are renumbered from 1) or with an
	// earlier key migration's grafts.
	Attempt uint64
	// Donor resolves the donor's current incarnation; nil means the
	// donor is gone and the migration fails.
	Donor func() KeyPeer
	// DrainBarrier is the routers' stamp cursor captured after the key's
	// placement flipped to scattered.
	DrainBarrier uint64
	// Cursor reads the routers' current maximum stamp cursor; used after
	// the grafts commit to build the cut-over barrier.
	Cursor func() uint64
	// Recipients are the members the pile spreads across — every live
	// member of the group except the donor.
	Recipients []int32
	// Import grafts sealed foreign segments onto one recipient and makes
	// them durable; it must be idempotent.
	Import func(member int32, segs []index.Segment) error
	// Drop removes the exported sequence set from the donor after the
	// cut-over barrier passes, returning how many tuples were removed.
	Drop func(seqs []uint64) (int, error)
	// Timeout bounds the whole run; DefaultTimeout when zero.
	Timeout time.Duration
	// Poll paces barrier polling and retransmit checks; DefaultPoll when
	// zero.
	Poll time.Duration
}

// KeyResult summarizes a completed hot-key migration.
type KeyResult struct {
	// Tuples counts the donor-side pile moved to recipients.
	Tuples int
	// PerMember counts the tuples grafted onto each recipient.
	PerMember map[int32]int
	// Dropped counts the tuples removed from the donor at cut-over.
	Dropped int
	// Retransmits counts transfer frames republished after loss.
	Retransmits int64
	// CutoverBarrier is the stamp cursor the donor passed before the
	// drop.
	CutoverBarrier uint64
}

// maxKeyAttempt bounds Attempt so the synthesized segment ids
// (attempt<<16 | n) stay shardable: Sharded.Graft needs ids below
// 1<<56.
const maxKeyAttempt = 1 << 40

// RunKey executes one hot-key migration to completion or error. On
// error nothing irreversible has happened (the drop is the last step),
// so the caller can simply retry with a fresh attempt number.
func RunKey(cfg KeyConfig) (KeyResult, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.Attempt >= maxKeyAttempt {
		return KeyResult{}, fmt.Errorf("migrate: key attempt %d out of range", cfg.Attempt)
	}
	if len(cfg.Recipients) == 0 {
		return KeyResult{}, fmt.Errorf("migrate: key migration needs at least one recipient")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	prefix := fmt.Sprintf("migrate.key.%s.%d.", cfg.Rel, cfg.Origin)
	retransmits := reg.Counter(prefix + "retransmits")
	corrupt := reg.Counter(prefix + "frames_corrupt")
	dups := reg.Counter(prefix + "frames_dup")
	deadline := time.Now().Add(cfg.Timeout)

	// Phase 1+2: wait for the donor to drain past the flip barrier, then
	// export (a copy of) its pile for the key.
	tuples, err := waitKeyDrained(cfg, deadline)
	if err != nil {
		return KeyResult{}, err
	}
	res := KeyResult{PerMember: make(map[int32]int)}
	if len(tuples) == 0 {
		// Nothing stored under the old placement: the flip alone was the
		// whole adaptation.
		reg.Counter(prefix + "completed").Inc()
		return res, nil
	}
	seqs := make([]uint64, len(tuples))
	for i, t := range tuples {
		seqs[i] = t.Seq
	}

	// Phase 3: round-robin the pile across the recipients, one sealed
	// segment each, stream, and graft.
	parts := make([][]*tuple.Tuple, len(cfg.Recipients))
	for i, t := range tuples {
		parts[i%len(parts)] = append(parts[i%len(parts)], t)
	}
	tr := &transfer{blobs: make(map[uint64][]byte), crcs: make(map[uint64]uint32)}
	segMember := make(map[uint64]int32)
	for i, ts := range parts {
		if len(ts) == 0 {
			continue
		}
		id := cfg.Attempt<<16 | uint64(len(tr.segs)+1)
		seg := index.Segment{ID: id, Origin: cfg.Origin, Sealed: true, Tuples: ts}
		seg.MinTS, seg.MaxTS = bounds(ts)
		tr.segs = append(tr.segs, seg)
		blob := checkpoint.EncodeSegment(seg)
		tr.blobs[id] = blob
		tr.crcs[id] = checkpoint.BlobCRC(blob)
		segMember[id] = cfg.Recipients[i]
	}
	p := xferParams{cfg.Client, cfg.Rel, cfg.Origin, cfg.Attempt, cfg.Poll}
	received, err := streamBlobs(p, tr, deadline, retransmits, corrupt, dups)
	if err != nil {
		return KeyResult{}, err
	}
	for _, seg := range received {
		member := segMember[seg.ID]
		if err := cfg.Import(member, []index.Segment{seg}); err != nil {
			return KeyResult{}, fmt.Errorf("migrate: key graft into member %d: %w", member, err)
		}
		res.PerMember[member] += len(seg.Tuples)
		res.Tuples += len(seg.Tuples)
	}

	// Phase 4: wait out probes that predate the grafts, then remove the
	// exported set from the donor.
	res.CutoverBarrier = cfg.Cursor()
	for {
		peer := cfg.Donor()
		if peer == nil {
			return KeyResult{}, fmt.Errorf("migrate: key donor %s-%d disappeared during cut-over", cfg.Rel, cfg.Origin)
		}
		if peer.Frontier() >= res.CutoverBarrier {
			break
		}
		if time.Now().After(deadline) {
			return KeyResult{}, fmt.Errorf("migrate: key donor %s-%d did not pass the cut-over barrier (frontier %d < %d)",
				cfg.Rel, cfg.Origin, peer.Frontier(), res.CutoverBarrier)
		}
		time.Sleep(cfg.Poll)
	}
	dropped, err := cfg.Drop(seqs)
	if err != nil {
		return KeyResult{}, fmt.Errorf("migrate: key drop at donor %s-%d: %w", cfg.Rel, cfg.Origin, err)
	}
	res.Dropped = dropped
	res.Retransmits = retransmits.Value()
	reg.Counter(prefix + "tuples_moved").Add(int64(res.Tuples))
	reg.Counter(prefix + "completed").Inc()
	return res, nil
}

// waitKeyDrained polls the donor until its frontier passes the flip
// barrier and the atomic key export succeeds.
func waitKeyDrained(cfg KeyConfig, deadline time.Time) ([]*tuple.Tuple, error) {
	for {
		peer := cfg.Donor()
		if peer == nil {
			return nil, fmt.Errorf("migrate: key donor %s-%d disappeared during drain", cfg.Rel, cfg.Origin)
		}
		tuples, err := peer.ExportKeyIfDrained(cfg.KeyHash, cfg.DrainBarrier)
		if err == nil {
			return tuples, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("migrate: key donor %s-%d did not drain past barrier %d (frontier %d): %w",
				cfg.Rel, cfg.Origin, cfg.DrainBarrier, peer.Frontier(), err)
		}
		time.Sleep(cfg.Poll)
	}
}
