package migrate

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bistream/internal/broker"
	"bistream/internal/checkpoint"
	"bistream/internal/faults"
	"bistream/internal/index"
	"bistream/internal/metrics"
	"bistream/internal/topo"
	"bistream/internal/tuple"
)

// fakePeer is a donor whose frontier the test controls.
type fakePeer struct {
	frontier atomic.Uint64
	snap     *checkpoint.Snapshot
}

func (p *fakePeer) ExportIfDrained(minStamp uint64) (*checkpoint.Snapshot, error) {
	if p.frontier.Load() < minStamp {
		return nil, fmt.Errorf("not drained")
	}
	return p.snap, nil
}
func (p *fakePeer) Frontier() uint64  { return p.frontier.Load() }
func (p *fakePeer) RetryBacklog() int { return 0 }

func mkTuple(seq uint64, key int64) *tuple.Tuple {
	return tuple.New(tuple.R, seq, int64(seq), tuple.Int(key))
}

func donorSnapshot() *checkpoint.Snapshot {
	var archived, live []*tuple.Tuple
	for i := uint64(1); i <= 20; i++ {
		archived = append(archived, mkTuple(i, int64(i%4)))
	}
	for i := uint64(21); i <= 30; i++ {
		live = append(live, mkTuple(i, int64(i%4)))
	}
	return &checkpoint.Snapshot{
		Rel:      tuple.R,
		JoinerID: 7,
		Segments: []index.Segment{
			{ID: 1, Origin: index.OriginLocal, Sealed: true, MinTS: 1, MaxTS: 20, Tuples: archived},
			{ID: 2, Origin: index.OriginLocal, Sealed: false, MinTS: 21, MaxTS: 30, Tuples: live},
			{ID: 3, Origin: index.OriginLocal, Sealed: true, Tuples: nil}, // empty: skipped
		},
	}
}

func testConfig(t *testing.T, client broker.Client, peer *fakePeer, reg *metrics.Registry) (Config, *map[int32][]index.Segment) {
	t.Helper()
	imported := make(map[int32][]index.Segment)
	markedDead := false
	cfg := Config{
		Client:       client,
		Metrics:      reg,
		Rel:          tuple.R,
		Origin:       7,
		Attempt:      1,
		Donor:        func() Peer { return peer },
		DrainBarrier: 100,
		Cursor:       func() uint64 { return 200 },
		Assign: func(tp *tuple.Tuple) int32 {
			// Two survivors, partitioned by key parity.
			return int32(tp.Value(0).Hash() % 2)
		},
		Import: func(member int32, segs []index.Segment) error {
			imported[member] = append(imported[member], segs...)
			return nil
		},
		MarkDead: func() error { markedDead = true; return nil },
		Timeout:  10 * time.Second,
	}
	t.Cleanup(func() {
		if !markedDead {
			t.Error("MarkDead was never called")
		}
	})
	return cfg, &imported
}

// TestRunMovesEverySegment checks the happy path: the donor drains,
// every non-empty segment (including the live one) is re-sealed,
// streamed, and grafted; the attempt queue is deleted afterwards.
func TestRunMovesEverySegment(t *testing.T) {
	b := broker.New(nil)
	defer b.Close()
	peer := &fakePeer{snap: donorSnapshot()}
	peer.frontier.Store(250) // past both barriers
	reg := metrics.NewRegistry()
	cfg, imported := testConfig(t, b, peer, reg)

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 30 {
		t.Errorf("moved %d tuples, want 30", res.Tuples)
	}
	if res.CutoverBarrier != 200 {
		t.Errorf("cut-over barrier %d, want 200", res.CutoverBarrier)
	}
	total := 0
	for member, segs := range *imported {
		for _, s := range segs {
			if !s.Sealed || s.Origin != 7 {
				t.Errorf("member %d got segment id=%d sealed=%v origin=%d", member, s.ID, s.Sealed, s.Origin)
			}
			total += len(s.Tuples)
		}
	}
	if total != 30 {
		t.Errorf("grafts hold %d tuples, want 30", total)
	}
	if len(*imported) != 2 {
		t.Errorf("grafted onto %d members, want 2", len(*imported))
	}
	if _, err := b.QueueStats(topo.MigrateQueue(tuple.R, 7, 1)); err == nil {
		t.Error("transfer queue still exists after Run")
	}
}

// TestRunWaitsForDrainBarrier checks that Run blocks until the donor's
// frontier passes the drain barrier rather than exporting early.
func TestRunWaitsForDrainBarrier(t *testing.T) {
	b := broker.New(nil)
	defer b.Close()
	peer := &fakePeer{snap: donorSnapshot()}
	peer.frontier.Store(50) // below the drain barrier of 100
	reg := metrics.NewRegistry()
	cfg, _ := testConfig(t, b, peer, reg)

	go func() {
		time.Sleep(30 * time.Millisecond)
		peer.frontier.Store(300)
	}()
	start := time.Now()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("Run returned after %v, before the donor drained", d)
	}
}

// TestRunSurvivesLossyFabric streams the transfer over a broker that
// drops and duplicates a third of all frames: the retransmit loop and
// frame dedup must still complete the transfer intact.
func TestRunSurvivesLossyFabric(t *testing.T) {
	inner := broker.New(nil)
	defer inner.Close()
	reg := metrics.NewRegistry()
	f := faults.Wrap(inner, faults.Config{
		Seed:    42,
		Metrics: reg,
		PerExchange: map[string]faults.Rule{
			topo.MigrateExchange: {Drop: 0.3, Dup: 0.3},
		},
	})
	peer := &fakePeer{snap: donorSnapshot()}
	peer.frontier.Store(250)
	cfg, imported := testConfig(t, f, peer, reg)

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 30 {
		t.Errorf("moved %d tuples, want 30", res.Tuples)
	}
	total := 0
	for _, segs := range *imported {
		for _, s := range segs {
			total += len(s.Tuples)
		}
	}
	if total != 30 {
		t.Errorf("grafts hold %d tuples, want 30", total)
	}
	drop, _ := reg.Value("faults.drop")
	if drop > 0 && res.Retransmits == 0 {
		t.Error("frames were dropped but nothing was retransmitted")
	}
}

// TestRunFailsWhenDonorDisappears checks the error path: a Donor
// resolver returning nil fails the run instead of hanging.
func TestRunFailsWhenDonorDisappears(t *testing.T) {
	b := broker.New(nil)
	defer b.Close()
	cfg := Config{
		Client:       b,
		Rel:          tuple.R,
		Origin:       7,
		Attempt:      1,
		Donor:        func() Peer { return nil },
		DrainBarrier: 100,
		Cursor:       func() uint64 { return 200 },
		Assign:       func(*tuple.Tuple) int32 { return 0 },
		Import:       func(int32, []index.Segment) error { return nil },
		MarkDead:     func() error { return nil },
		Timeout:      time.Second,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run succeeded with no donor")
	}
}
