// Package migrate implements live joiner state migration, the scale-in
// path of §3.4's elasticity story: when a joiner group shrinks, the
// departing member's window state is drained, exported through the
// checkpoint codec, streamed over the broker, and grafted onto the
// surviving members of the shrunk layout — so even a full-history join
// can scale in with zero lost or duplicated results.
//
// The coordinator runs the middle phases of the engine's migration
// protocol:
//
//  1. Drain: the engine has already pushed the shrunk layout and
//     captured the routers' stamp cursor (the drain barrier). Run polls
//     the donor until its release frontier passes the barrier, then
//     atomically snapshots its window.
//  2. Transfer: every non-empty segment is re-sealed under the donor's
//     member id, encoded with the checkpoint segment codec, and
//     published to the migration exchange as one frame per segment plus
//     a manifest frame. The coordinator consumes the queue, deduplicates
//     redeliveries, CRC-validates every blob against the manifest and
//     retransmits missing frames until the transfer completes — so a
//     faulty fabric (drops, duplicates, reorders, partitions) delays the
//     migration but cannot corrupt it.
//  3. Redistribute: the transferred tuples are partitioned with the
//     engine-supplied Assign function, which mirrors the router's
//     store-target geometry under the shrunk layout, and imported into
//     each recipient as sealed foreign segments tagged with the donor's
//     id.
//  4. Cut over: MarkDead excludes the donor from all join fan-out, and
//     Run waits for the donor's frontier to pass the post-cut-over
//     cursor and its result backlog to drain, proving the donor has
//     processed every probe that could only be answered by it.
//
// After Run returns, the engine retires the donor (final checkpoint,
// queue deletion) knowing nothing can be lost.
package migrate

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"bistream/internal/broker"
	"bistream/internal/checkpoint"
	"bistream/internal/index"
	"bistream/internal/metrics"
	"bistream/internal/topo"
	"bistream/internal/tuple"
)

// Peer is the coordinator's view of the donor member. The engine's
// Donor function re-resolves it on every call, so a donor that is
// cold-replaced mid-migration is observed through its new incarnation.
type Peer interface {
	// ExportIfDrained atomically checks that the member's release
	// frontier passed minStamp and snapshots its window; it returns an
	// error while not yet drained.
	ExportIfDrained(minStamp uint64) (*checkpoint.Snapshot, error)
	// Frontier reports the member's release frontier.
	Frontier() uint64
	// RetryBacklog reports how many result publishes are still waiting
	// to reach the broker.
	RetryBacklog() int
}

// Config parameterizes one migration run.
type Config struct {
	// Client is the broker the transfer frames travel over. Required.
	Client broker.Client
	// Metrics receives the migration counters under
	// "migrate.<rel>.<origin>."; nil uses a private registry.
	Metrics *metrics.Registry
	// Rel is the relation of the shrinking group.
	Rel tuple.Relation
	// Origin is the donor's member id; transferred segments carry it as
	// their origin so recipient-side identity (origin, id) stays unique.
	Origin int32
	// Attempt distinguishes retried transfers of the same donor; frames
	// of a stale attempt can never satisfy a newer one because queue and
	// routing key include it.
	Attempt uint64
	// Donor resolves the donor's current incarnation; nil means the
	// donor is gone and the migration fails.
	Donor func() Peer
	// DrainBarrier is the routers' stamp cursor captured right after the
	// shrunk layout was pushed: once the donor's frontier passes it, no
	// store copy routed under the old layout is still in flight to it.
	DrainBarrier uint64
	// Cursor reads the routers' current maximum stamp cursor; used after
	// MarkDead to build the cut-over barrier.
	Cursor func() uint64
	// Assign maps a tuple to the surviving member that must store it,
	// mirroring the router's store-target geometry under the shrunk
	// layout (so the current generation's join fan-out covers it).
	Assign func(*tuple.Tuple) int32
	// Import grafts sealed foreign segments onto one recipient and makes
	// them durable; it must be idempotent (the engine's implementation
	// retries through checkpoint commits and cold replacements).
	Import func(member int32, segs []index.Segment) error
	// MarkDead excludes the donor from every router's join fan-out, past
	// and future generations alike.
	MarkDead func() error
	// Timeout bounds the whole run; DefaultTimeout when zero.
	Timeout time.Duration
	// Poll paces barrier polling and transfer retransmit checks;
	// DefaultPoll when zero.
	Poll time.Duration
}

// Default pacing for Config.Timeout and Config.Poll.
const (
	DefaultTimeout = 30 * time.Second
	DefaultPoll    = 5 * time.Millisecond
)

// Result summarizes a completed migration.
type Result struct {
	// Tuples and Segments count the donor state moved to survivors.
	Tuples   int
	Segments int
	// PerMember counts the tuples grafted onto each recipient.
	PerMember map[int32]int
	// Retransmits counts transfer frames republished after loss.
	Retransmits int64
	// CutoverBarrier is the stamp cursor the donor had to pass after it
	// was removed from join fan-out.
	CutoverBarrier uint64
}

// frame kinds on the migration exchange: a segment blob or the
// transfer manifest.
const (
	frameSegment  byte = 1
	frameManifest byte = 2
)

var manifestMagic = []byte("BMG1")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// transfer is the in-flight state of one blob transfer.
type transfer struct {
	segs  []index.Segment // re-sealed donor segments, id = position+1
	blobs map[uint64][]byte
	crcs  map[uint64]uint32
}

// Run executes one migration to completion or error. On error the
// engine reinstates the donor; Run itself never mutates engine state
// except through the provided callbacks.
func Run(cfg Config) (Result, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	prefix := fmt.Sprintf("migrate.%s.%d.", cfg.Rel, cfg.Origin)
	retransmits := reg.Counter(prefix + "retransmits")
	corrupt := reg.Counter(prefix + "frames_corrupt")
	dups := reg.Counter(prefix + "frames_dup")
	deadline := time.Now().Add(cfg.Timeout)

	// Phase 1: wait for the donor to drain past the barrier, then
	// snapshot it atomically.
	snap, err := waitDrained(cfg, deadline)
	if err != nil {
		return Result{}, err
	}

	// Phase 2: re-seal and stream the blobs over the broker.
	tr := buildTransfer(snap, cfg.Origin)
	res := Result{PerMember: make(map[int32]int)}
	if len(tr.segs) > 0 {
		p := xferParams{cfg.Client, cfg.Rel, cfg.Origin, cfg.Attempt, cfg.Poll}
		received, err := streamBlobs(p, tr, deadline, retransmits, corrupt, dups)
		if err != nil {
			return Result{}, err
		}
		// Phase 3: redistribute by the shrunk layout's store geometry.
		grafts := partition(received, cfg.Origin, cfg.Assign)
		for member, segs := range grafts {
			if err := cfg.Import(member, segs); err != nil {
				return Result{}, fmt.Errorf("migrate: import into member %d: %w", member, err)
			}
			n := 0
			for _, s := range segs {
				n += len(s.Tuples)
			}
			res.PerMember[member] = n
			res.Tuples += n
			res.Segments += len(segs)
		}
	}

	// Phase 4: cut the donor out of join fan-out, then prove it has
	// handled every probe only it could answer. Every join copy stamped
	// at or below the post-cut cursor may have targeted the donor, so
	// its frontier must pass the cursor — and its emitted results must
	// reach the broker — before the engine may retire it.
	if err := cfg.MarkDead(); err != nil {
		return Result{}, fmt.Errorf("migrate: mark dead: %w", err)
	}
	res.CutoverBarrier = cfg.Cursor()
	for {
		p := cfg.Donor()
		if p == nil {
			return Result{}, fmt.Errorf("migrate: donor %s-%d disappeared during cut-over", cfg.Rel, cfg.Origin)
		}
		if p.Frontier() >= res.CutoverBarrier && p.RetryBacklog() == 0 {
			break
		}
		if time.Now().After(deadline) {
			return Result{}, fmt.Errorf("migrate: donor %s-%d did not pass the cut-over barrier (frontier %d < %d)",
				cfg.Rel, cfg.Origin, p.Frontier(), res.CutoverBarrier)
		}
		time.Sleep(cfg.Poll)
	}
	res.Retransmits = retransmits.Value()
	reg.Counter(prefix + "tuples_moved").Add(int64(res.Tuples))
	reg.Counter(prefix + "completed").Inc()
	return res, nil
}

// waitDrained polls the donor until its frontier passes the drain
// barrier and the atomic export succeeds.
func waitDrained(cfg Config, deadline time.Time) (*checkpoint.Snapshot, error) {
	for {
		p := cfg.Donor()
		if p == nil {
			return nil, fmt.Errorf("migrate: donor %s-%d disappeared during drain", cfg.Rel, cfg.Origin)
		}
		snap, err := p.ExportIfDrained(cfg.DrainBarrier)
		if err == nil {
			return snap, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("migrate: donor %s-%d did not drain past barrier %d (frontier %d): %w",
				cfg.Rel, cfg.Origin, cfg.DrainBarrier, p.Frontier(), err)
		}
		time.Sleep(cfg.Poll)
	}
}

// buildTransfer re-seals the donor snapshot for transport: every
// non-empty segment (including the live one — the donor is drained, so
// it can never grow again) becomes a sealed segment with the donor as
// origin and a fresh position-based id. Renumbering keeps ids unique
// even when the donor's own chain carried grafts from an earlier
// migration, whose original (origin, id) pairs could collide with
// segments a recipient already holds.
func buildTransfer(snap *checkpoint.Snapshot, origin int32) *transfer {
	tr := &transfer{blobs: make(map[uint64][]byte), crcs: make(map[uint64]uint32)}
	for _, seg := range snap.Segments {
		if len(seg.Tuples) == 0 {
			continue
		}
		id := uint64(len(tr.segs) + 1)
		out := index.Segment{ID: id, Origin: origin, Sealed: true, Tuples: seg.Tuples}
		out.MinTS, out.MaxTS = bounds(seg.Tuples)
		tr.segs = append(tr.segs, out)
		blob := checkpoint.EncodeSegment(out)
		tr.blobs[id] = blob
		tr.crcs[id] = checkpoint.BlobCRC(blob)
	}
	return tr
}

func bounds(ts []*tuple.Tuple) (int64, int64) {
	minTS, maxTS := ts[0].TS, ts[0].TS
	for _, t := range ts[1:] {
		if t.TS < minTS {
			minTS = t.TS
		}
		if t.TS > maxTS {
			maxTS = t.TS
		}
	}
	return minTS, maxTS
}

// xferParams is the slice of a migration config the blob transfer
// needs; whole-member (Run) and key-scoped (RunKey) migrations both
// stream through it.
type xferParams struct {
	client  broker.Client
	rel     tuple.Relation
	origin  int32
	attempt uint64
	poll    time.Duration
}

// streamBlobs pushes the transfer through the broker and consumes it
// back, retransmitting until every blob arrived intact. The queue and
// routing key are attempt-qualified, so frames from an abandoned
// attempt can never complete a newer one.
func streamBlobs(p xferParams, tr *transfer, deadline time.Time,
	retransmits, corrupt, dups *metrics.Counter) ([]index.Segment, error) {
	queue := topo.MigrateQueue(p.rel, p.origin, p.attempt)
	key := topo.MigrateKey(p.rel, p.origin, p.attempt)
	if err := topo.Declare(p.client); err != nil {
		return nil, err
	}
	if err := p.client.DeclareQueue(queue, broker.QueueOptions{Durable: true}); err != nil {
		return nil, err
	}
	if err := p.client.Bind(queue, topo.MigrateExchange, key); err != nil {
		return nil, err
	}
	defer func() { _ = p.client.DeleteQueue(queue) }()
	cons, err := p.client.Consume(queue, 4096, true)
	if err != nil {
		return nil, err
	}
	defer func() { _ = cons.Cancel() }()

	publish := func(body []byte) {
		// A failed publish (fault injection, partition) is not an error:
		// the retransmit loop repairs any gap.
		_ = p.client.Publish(topo.MigrateExchange, key, nil, body)
	}
	sendAll := func(only map[uint64]bool) {
		for id, blob := range tr.blobs {
			if only != nil && !only[id] {
				continue
			}
			publish(append([]byte{frameSegment}, blob...))
		}
		publish(append([]byte{frameManifest}, encodeManifest(p, tr)...))
	}
	sendAll(nil)

	got := make(map[uint64]index.Segment, len(tr.segs))
	manifestSeen := false
	for {
		quiet := false
		select {
		case d, ok := <-cons.Deliveries():
			if !ok {
				return nil, fmt.Errorf("migrate: transfer consumer closed")
			}
			if len(d.Body) < 1 {
				corrupt.Inc()
				break
			}
			switch d.Body[0] {
			case frameSegment:
				seg, err := checkpoint.DecodeSegment(d.Body[1:])
				if err != nil {
					corrupt.Inc()
					break
				}
				want, ok := tr.crcs[seg.ID]
				if !ok || want != checkpoint.BlobCRC(d.Body[1:]) || seg.Origin != p.origin {
					corrupt.Inc()
					break
				}
				if _, dup := got[seg.ID]; dup {
					dups.Inc()
					break
				}
				got[seg.ID] = seg
			case frameManifest:
				if err := checkManifest(p, tr, d.Body[1:]); err != nil {
					corrupt.Inc()
					break
				}
				manifestSeen = true
			default:
				corrupt.Inc()
			}
		case <-time.After(p.poll):
			quiet = true
		}
		if manifestSeen && len(got) == len(tr.segs) {
			out := make([]index.Segment, 0, len(tr.segs))
			for _, s := range tr.segs {
				out = append(out, got[s.ID])
			}
			return out, nil
		}
		if quiet {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("migrate: transfer of %s-%d incomplete (%d/%d blobs, manifest=%v)",
					p.rel, p.origin, len(got), len(tr.segs), manifestSeen)
			}
			// Republish whatever has not arrived yet.
			missing := make(map[uint64]bool)
			for id := range tr.blobs {
				if _, ok := got[id]; !ok {
					missing[id] = true
				}
			}
			sendAll(missing)
			retransmits.Add(int64(len(missing)) + 1)
		}
	}
}

// encodeManifest serializes the transfer manifest:
//
//	"BMG1" | origin u32 | rel byte | attempt u64 |
//	uvarint n | n × (id u64 | crc u32 | len u32) | crc u32
func encodeManifest(p xferParams, tr *transfer) []byte {
	buf := make([]byte, 0, 32+len(tr.segs)*16)
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.origin))
	buf = append(buf, byte(p.rel))
	buf = binary.LittleEndian.AppendUint64(buf, p.attempt)
	buf = binary.AppendUvarint(buf, uint64(len(tr.segs)))
	for _, s := range tr.segs {
		buf = binary.LittleEndian.AppendUint64(buf, s.ID)
		buf = binary.LittleEndian.AppendUint32(buf, tr.crcs[s.ID])
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tr.blobs[s.ID])))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// checkManifest validates a received manifest frame against the locally
// known transfer.
func checkManifest(p xferParams, tr *transfer, blob []byte) error {
	if len(blob) < len(manifestMagic)+4 {
		return fmt.Errorf("migrate: short manifest")
	}
	body, tail := blob[:len(blob)-4], blob[len(blob)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.Checksum(body, crcTable) {
		return fmt.Errorf("migrate: manifest crc mismatch")
	}
	if string(body[:len(manifestMagic)]) != string(manifestMagic) {
		return fmt.Errorf("migrate: bad manifest magic")
	}
	b := body[len(manifestMagic):]
	if len(b) < 13 {
		return fmt.Errorf("migrate: truncated manifest header")
	}
	origin := int32(binary.LittleEndian.Uint32(b))
	rel := tuple.Relation(b[4])
	attempt := binary.LittleEndian.Uint64(b[5:13])
	if origin != p.origin || rel != p.rel || attempt != p.attempt {
		return fmt.Errorf("migrate: manifest for %s-%d attempt %d, want %s-%d attempt %d",
			rel, origin, attempt, p.rel, p.origin, p.attempt)
	}
	b = b[13:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n != uint64(len(tr.segs)) || len(b[sz:]) != int(n)*16 {
		return fmt.Errorf("migrate: manifest ref count mismatch")
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		id := binary.LittleEndian.Uint64(b)
		crc := binary.LittleEndian.Uint32(b[8:])
		length := binary.LittleEndian.Uint32(b[12:])
		if tr.crcs[id] != crc || uint32(len(tr.blobs[id])) != length {
			return fmt.Errorf("migrate: manifest ref %d mismatch", id)
		}
		b = b[16:]
	}
	return nil
}

// partition splits the transferred segments across the surviving
// members by the shrunk layout's store geometry. Each donor segment
// yields at most one graft segment per recipient, keeping its id — the
// per-recipient (origin, id) identity stays unique because a given
// donor migrates at most once.
func partition(segs []index.Segment, origin int32, assign func(*tuple.Tuple) int32) map[int32][]index.Segment {
	out := make(map[int32][]index.Segment)
	for _, seg := range segs {
		parts := make(map[int32][]*tuple.Tuple)
		for _, t := range seg.Tuples {
			m := assign(t)
			parts[m] = append(parts[m], t)
		}
		for m, ts := range parts {
			g := index.Segment{ID: seg.ID, Origin: origin, Sealed: true, Tuples: ts}
			g.MinTS, g.MaxTS = bounds(ts)
			out[m] = append(out[m], g)
		}
	}
	return out
}
