package checkpoint

import (
	"bistream/internal/dedup"
	"bistream/internal/index"
	"bistream/internal/protocol"
	"bistream/internal/tuple"
)

// Snapshot is everything a joiner core needs to resume after a cold
// restart, captured at one instant under the service mutex (no
// deliveries in flight):
//
//   - Segments: the chained index's contents, one entry per sub-index.
//     All but the last are sealed — immutable since their archive round
//     — which is what makes checkpoints incremental: the Checkpointer
//     writes each sealed segment once and only rewrites the live one.
//   - Frontiers / Pending: the ordering protocol's punctuation
//     watermarks and still-buffered envelopes. Pending envelopes belong
//     to acked deliveries (the ack barrier covers them the moment they
//     are checkpointed), so losing them would lose results.
//   - Dedup: the (relation, seq) filter, so redeliveries of
//     pre-checkpoint tuples are suppressed after restore.
//   - Retry: result bodies that failed to publish and are queued for
//     retransmission; their probes are checkpointed (hence acked), so
//     the backlog is the only copy.
type Snapshot struct {
	Rel      tuple.Relation
	JoinerID int32
	// Epoch is the checkpoint round that produced the snapshot
	// (assigned by Save, reported by Recover).
	Epoch     uint64
	Segments  []index.Segment
	Frontiers []protocol.Frontier
	Pending   []protocol.Envelope
	Dedup     dedup.State
	Retry     [][]byte
}

// Tuples returns the total tuple count across segments (metrics).
func (s *Snapshot) Tuples() int {
	n := 0
	for _, seg := range s.Segments {
		n += len(seg.Tuples)
	}
	return n
}
