// Package checkpoint makes joiner window state durable: it serializes
// a joiner core's chained-index contents per archived sub-index
// segment — sealed segments are written once and garbage-collected on
// expiry, only the live segment is rewritten each round — together
// with a manifest carrying the ordering-protocol frontiers, the dedup
// generation watermark and the unpublished-result backlog, so a
// cold-restarted joiner (fresh process, empty memory) recovers its
// window and neither duplicates nor re-misses redelivered tuples.
//
// The durability contract is ack-gated: the joiner service withholds
// broker acknowledgments until the state a delivery mutated has been
// committed by a checkpoint. Everything after the last committed
// checkpoint is therefore still unacked at a crash and redelivered by
// the broker; everything before it is in the checkpoint. Replayed
// deliveries that were already checkpointed are suppressed by the
// restored dedup filter, and replayed results are suppressed by the
// sink's result-pair filter — exactly-once survives the cold restart.
package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"bistream/internal/tuple"
)

// ErrNotFound reports a missing blob. Test with errors.Is.
var ErrNotFound = errors.New("checkpoint: not found")

// Store is the pluggable durable blob store checkpoints live in. Keys
// are short, filename-safe strings assigned by the Checkpointer
// ("manifest-…", "seg-…", "live-…"). Put must atomically replace: a
// reader never observes a half-written blob under a committed key
// (torn writes surface either as a Put error or as a corrupt blob the
// manifest CRCs catch at recovery).
type Store interface {
	Put(key string, blob []byte) error
	// Get returns the blob under key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// Delete removes key; deleting a missing key is not an error.
	Delete(key string) error
	// List returns every stored key, in no particular order.
	List() ([]string, error)
}

// MemStore is an in-process Store, the moral equivalent of a ramdisk:
// it survives a joiner's cold restart (fresh Core, same process) but
// not the process's. Tests use it to isolate restart semantics from
// filesystem behavior. Safe for concurrent use.
type MemStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

// Put implements Store.
func (m *MemStore) Put(key string, blob []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[key] = append([]byte(nil), blob...)
	return nil
}

// Get implements Store.
func (m *MemStore) Get(key string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return append([]byte(nil), b...), nil
}

// Delete implements Store.
func (m *MemStore) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, key)
	return nil
}

// List implements Store.
func (m *MemStore) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.blobs))
	for k := range m.blobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Len returns the number of stored blobs (tests).
func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blobs)
}

// FileStore keeps each blob in one file under a directory, installing
// writes by write-to-temp, fsync, rename — so a committed key is never
// half-written even across a power loss (the torn bytes stay in the
// temp file, which List ignores and Put overwrites).
type FileStore struct {
	dir string
}

// NewFileStore creates (if needed) dir and returns a store over it.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (f *FileStore) Dir() string { return f.dir }

func (f *FileStore) path(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\") || strings.HasPrefix(key, ".") {
		return "", fmt.Errorf("checkpoint: bad key %q", key)
	}
	return filepath.Join(f.dir, key+".ckpt"), nil
}

// Put implements Store with an atomic replace.
func (f *FileStore) Put(key string, blob []byte) error {
	path, err := f.path(key)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(f.dir, ".tmp-"+key+"-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Get implements Store.
func (f *FileStore) Get(key string) ([]byte, error) {
	path, err := f.path(key)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return b, err
}

// Delete implements Store.
func (f *FileStore) Delete(key string) error {
	path, err := f.path(key)
	if err != nil {
		return err
	}
	err = os.Remove(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// List implements Store, skipping in-flight temp files.
func (f *FileStore) List() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".ckpt"))
	}
	sort.Strings(keys)
	return keys, nil
}

// Provider hands each joiner member its own Store: checkpoints are
// per-member state, keyed like the member's durable queues.
type Provider interface {
	StoreFor(rel tuple.Relation, id int32) (Store, error)
}

// MemProvider keeps one MemStore per member, retained across cold
// restarts of the member within the process (the property the
// cold-crash chaos tests rely on).
type MemProvider struct {
	mu     sync.Mutex
	stores map[string]*MemStore
}

// NewMemProvider creates an empty provider.
func NewMemProvider() *MemProvider {
	return &MemProvider{stores: make(map[string]*MemStore)}
}

// StoreFor implements Provider, returning the member's existing store
// if it has one.
func (p *MemProvider) StoreFor(rel tuple.Relation, id int32) (Store, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := fmt.Sprintf("%s-%d", rel, id)
	s, ok := p.stores[k]
	if !ok {
		s = NewMemStore()
		p.stores[k] = s
	}
	return s, nil
}

// FileProvider lays members out as subdirectories of Dir ("R-0", "S-1",
// …), the disk layout cmd/joinerd's -checkpoint-dir flag uses.
type FileProvider struct {
	Dir string
}

// StoreFor implements Provider.
func (p FileProvider) StoreFor(rel tuple.Relation, id int32) (Store, error) {
	return NewFileStore(filepath.Join(p.Dir, fmt.Sprintf("%s-%d", rel, id)))
}
