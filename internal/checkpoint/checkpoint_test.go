package checkpoint

import (
	"errors"
	"fmt"
	"testing"

	"bistream/internal/dedup"
	"bistream/internal/index"
	"bistream/internal/protocol"
	"bistream/internal/tuple"
)

func mkTuple(rel tuple.Relation, seq uint64, ts int64, key int64) *tuple.Tuple {
	return &tuple.Tuple{Rel: rel, Seq: seq, TS: ts, Values: []tuple.Value{tuple.Int(key), tuple.String(fmt.Sprintf("v%d", seq))}}
}

func mkSnapshot() *Snapshot {
	return &Snapshot{
		Rel:      tuple.R,
		JoinerID: 3,
		Segments: []index.Segment{
			{ID: 1, Origin: index.OriginLocal, Sealed: true, MinTS: 10, MaxTS: 20, Tuples: []*tuple.Tuple{
				mkTuple(tuple.R, 1, 10, 7), mkTuple(tuple.R, 2, 20, 9),
			}},
			{ID: 2, Origin: index.OriginLocal, Sealed: false, MinTS: 30, MaxTS: 30, Tuples: []*tuple.Tuple{
				mkTuple(tuple.R, 3, 30, 7),
			}},
		},
		Frontiers: []protocol.Frontier{
			{Router: 0, Source: protocol.SourceStore, Counter: 42},
			{Router: 1, Source: protocol.SourceJoin, Counter: 17},
		},
		Pending: []protocol.Envelope{
			{Kind: protocol.KindTuple, RouterID: 1, Counter: 18, Stream: protocol.StreamStore, Tuple: mkTuple(tuple.R, 4, 40, 5)},
		},
		Dedup: dedup.State{Cap: 64, Suppressed: 2, Cur: []dedup.Key{{0, 1}, {0, 2}}, Prev: []dedup.Key{{0, 9}}},
		Retry: [][]byte{{0xde, 0xad}, {0xbe, 0xef, 0x01}},
	}
}

func sameSnapshot(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Rel != want.Rel || got.JoinerID != want.JoinerID {
		t.Fatalf("identity mismatch: got %v/%d want %v/%d", got.Rel, got.JoinerID, want.Rel, want.JoinerID)
	}
	if len(got.Segments) != len(want.Segments) {
		t.Fatalf("segments: got %d want %d", len(got.Segments), len(want.Segments))
	}
	for i, ws := range want.Segments {
		gs := got.Segments[i]
		if gs.ID != ws.ID || gs.Sealed != ws.Sealed || gs.MinTS != ws.MinTS || gs.MaxTS != ws.MaxTS {
			t.Fatalf("segment %d meta mismatch: got %+v want %+v", i, gs, ws)
		}
		if len(gs.Tuples) != len(ws.Tuples) {
			t.Fatalf("segment %d: got %d tuples want %d", i, len(gs.Tuples), len(ws.Tuples))
		}
		for j := range ws.Tuples {
			if string(tuple.Marshal(gs.Tuples[j])) != string(tuple.Marshal(ws.Tuples[j])) {
				t.Fatalf("segment %d tuple %d mismatch", i, j)
			}
		}
	}
	if len(got.Frontiers) != len(want.Frontiers) {
		t.Fatalf("frontiers: got %d want %d", len(got.Frontiers), len(want.Frontiers))
	}
	for i := range want.Frontiers {
		if got.Frontiers[i] != want.Frontiers[i] {
			t.Fatalf("frontier %d: got %+v want %+v", i, got.Frontiers[i], want.Frontiers[i])
		}
	}
	if len(got.Pending) != len(want.Pending) {
		t.Fatalf("pending: got %d want %d", len(got.Pending), len(want.Pending))
	}
	for i := range want.Pending {
		if string(got.Pending[i].Marshal()) != string(want.Pending[i].Marshal()) {
			t.Fatalf("pending %d mismatch", i)
		}
	}
	if got.Dedup.Cap != want.Dedup.Cap || got.Dedup.Suppressed != want.Dedup.Suppressed ||
		len(got.Dedup.Cur) != len(want.Dedup.Cur) || len(got.Dedup.Prev) != len(want.Dedup.Prev) {
		t.Fatalf("dedup state mismatch: got %+v want %+v", got.Dedup, want.Dedup)
	}
	if len(got.Retry) != len(want.Retry) {
		t.Fatalf("retry: got %d want %d", len(got.Retry), len(want.Retry))
	}
	for i := range want.Retry {
		if string(got.Retry[i]) != string(want.Retry[i]) {
			t.Fatalf("retry %d mismatch", i)
		}
	}
}

func TestSaveRecoverRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		store func(t *testing.T) Store
	}{
		{"mem", func(t *testing.T) Store { return NewMemStore() }},
		{"file", func(t *testing.T) Store {
			fs, err := NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := tc.store(t)
			c := New(Config{Store: st})
			want := mkSnapshot()
			if err := c.Save(want); err != nil {
				t.Fatal(err)
			}
			if c.Epoch() != 1 {
				t.Fatalf("epoch = %d, want 1", c.Epoch())
			}
			r := New(Config{Store: st})
			got, err := r.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if got == nil {
				t.Fatal("Recover returned nil on populated store")
			}
			sameSnapshot(t, got, want)
			if got.Epoch != 1 || r.Epoch() != 1 {
				t.Fatalf("recovered epoch %d / checkpointer epoch %d, want 1", got.Epoch, r.Epoch())
			}
		})
	}
}

func TestRecoverEmptyStore(t *testing.T) {
	c := New(Config{Store: NewMemStore()})
	snap, err := c.Recover()
	if err != nil || snap != nil {
		t.Fatalf("Recover on empty store = (%v, %v), want (nil, nil)", snap, err)
	}
}

// TestIncrementalSave verifies sealed segments are written once: the
// second Save of an unchanged sealed segment must hit the skip path.
func TestIncrementalSave(t *testing.T) {
	st := NewMemStore()
	c := New(Config{Store: st})
	s := mkSnapshot()
	if err := c.Save(s); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(s); err != nil {
		t.Fatal(err)
	}
	// Round 1 writes sealed seg 1 + live; round 2 skips sealed seg 1.
	if got := counterVal(t, c.segsSkipped); got != 1 {
		t.Fatalf("segments_skipped = %d, want 1", got)
	}
	if got := counterVal(t, c.segsWritten); got != 3 {
		t.Fatalf("segments_written = %d, want 3 (seg1, live@1, live@2)", got)
	}
}

func counterVal(t *testing.T, c interface{ Value() int64 }) int64 {
	t.Helper()
	return c.Value()
}

// TestGCDropsExpiredSegments verifies that once a sealed segment leaves
// the snapshot (whole-segment expiry) its blob is collected after the
// retention round (current ∪ previous manifests) passes.
func TestGCDropsExpiredSegments(t *testing.T) {
	st := NewMemStore()
	c := New(Config{Store: st})
	s := mkSnapshot()
	if err := c.Save(s); err != nil {
		t.Fatal(err)
	}
	// Segment 1 expires; only the live segment remains.
	expired := &Snapshot{
		Rel: s.Rel, JoinerID: s.JoinerID,
		Segments: s.Segments[1:],
		Dedup:    s.Dedup,
	}
	if err := c.Save(expired); err != nil {
		t.Fatal(err)
	}
	// seg-1 still retained: epoch 1's manifest may be the fallback.
	if _, err := st.Get(sealedKey(index.OriginLocal, 1)); err != nil {
		t.Fatalf("seg-1 collected one round early: %v", err)
	}
	if err := c.Save(expired); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(sealedKey(index.OriginLocal, 1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("seg-1 not collected after retention round: %v", err)
	}
	// Both surviving manifests must still recover.
	r := New(Config{Store: st})
	snap, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 3 || len(snap.Segments) != 1 {
		t.Fatalf("recovered epoch %d with %d segments, want epoch 3 with 1", snap.Epoch, len(snap.Segments))
	}
}

// TestRecoverFallsBackPastTornManifest simulates a torn write of the
// newest manifest: recovery must reject it by CRC and land on the
// previous epoch.
func TestRecoverFallsBackPastTornManifest(t *testing.T) {
	st := NewMemStore()
	c := New(Config{Store: st})
	first := mkSnapshot()
	if err := c.Save(first); err != nil {
		t.Fatal(err)
	}
	second := mkSnapshot()
	second.Segments[1].Tuples = append(second.Segments[1].Tuples, mkTuple(tuple.R, 9, 50, 3))
	if err := c.Save(second); err != nil {
		t.Fatal(err)
	}
	// Tear the newest manifest: keep a prefix only.
	blob, err := st.Get(manifestKey(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(manifestKey(2), blob[:len(blob)/2]); err != nil {
		t.Fatal(err)
	}
	r := New(Config{Store: st})
	got, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 {
		t.Fatalf("recovered epoch %d, want fallback to 1", got.Epoch)
	}
	sameSnapshot(t, got, first)
	if counterVal(t, r.fallbacks) == 0 {
		t.Fatal("fallback not counted")
	}
	// A fresh Save must continue the epoch sequence past the torn one.
	if err := r.Save(second); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 2 {
		t.Fatalf("post-fallback epoch = %d, want 2", r.Epoch())
	}
}

// TestRecoverFallsBackPastTornSegment tears a segment blob instead of
// the manifest: the manifest decodes fine but its CRC table must
// condemn the segment.
func TestRecoverFallsBackPastTornSegment(t *testing.T) {
	st := NewMemStore()
	c := New(Config{Store: st})
	first := mkSnapshot()
	if err := c.Save(first); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(mkSnapshot()); err != nil {
		t.Fatal(err)
	}
	// Corrupt epoch 2's live segment (flip a byte, keep the length).
	key := liveKey(2, 2)
	blob, err := st.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := st.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	r := New(Config{Store: st})
	got, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 {
		t.Fatalf("recovered epoch %d, want fallback to 1", got.Epoch)
	}
}

// TestRecoverAllTornFailsLoud: when committed epochs existed (epoch >
// 1 manifests present) and none is intact, Recover must return an error
// rather than pretend the member is fresh — acked state is gone.
func TestRecoverAllTornFailsLoud(t *testing.T) {
	st := NewMemStore()
	c := New(Config{Store: st})
	if err := c.Save(mkSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(mkSnapshot()); err != nil {
		t.Fatal(err)
	}
	for _, epoch := range []uint64{1, 2} {
		blob, err := st.Get(manifestKey(epoch))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(manifestKey(epoch), blob[:3]); err != nil {
			t.Fatal(err)
		}
	}
	r := New(Config{Store: st})
	if _, err := r.Recover(); err == nil {
		t.Fatal("Recover succeeded with only torn manifests over committed epochs")
	}
}

// TestRecoverTornFirstEpochStartsFresh: a store holding only a torn
// epoch-1 manifest proves no checkpoint ever committed — and therefore
// nothing was ever acked under checkpoint coverage — so Recover treats
// the member as fresh instead of refusing to start.
func TestRecoverTornFirstEpochStartsFresh(t *testing.T) {
	st := NewMemStore()
	if err := st.Put(manifestKey(1), []byte("BMF1 torn mid-write")); err != nil {
		t.Fatal(err)
	}
	r := New(Config{Store: st})
	snap, err := r.Recover()
	if err != nil || snap != nil {
		t.Fatalf("Recover = (%v, %v), want fresh (nil, nil)", snap, err)
	}
	if r.Epoch() != 0 {
		t.Fatalf("epoch = %d, want 0 (nothing committed)", r.Epoch())
	}
	// The next Save must overwrite the torn first epoch cleanly.
	if err := r.Save(mkSnapshot()); err != nil {
		t.Fatal(err)
	}
	r2 := New(Config{Store: st})
	if snap, err := r2.Recover(); err != nil || snap == nil || snap.Epoch != 1 {
		t.Fatalf("post-overwrite Recover = (%v, %v), want epoch-1 snapshot", snap, err)
	}
}

func TestCodecRejectsMutations(t *testing.T) {
	seg := mkSnapshot().Segments[0]
	blob := encodeSegment(seg)
	for i := 0; i < len(blob); i++ {
		mutated := append([]byte(nil), blob...)
		mutated[i] ^= 0x01
		if _, err := decodeSegment(mutated); err == nil {
			t.Fatalf("decodeSegment accepted blob with byte %d flipped", i)
		}
	}
	m := &manifest{Rel: tuple.S, JoinerID: 1, Epoch: 7, Dedup: dedup.State{Cap: 8}}
	mb := encodeManifest(m)
	for i := 0; i < len(mb); i++ {
		mutated := append([]byte(nil), mb...)
		mutated[i] ^= 0x01
		if _, err := decodeManifest(mutated); err == nil {
			t.Fatalf("decodeManifest accepted blob with byte %d flipped", i)
		}
	}
}

func FuzzDecodeSegment(f *testing.F) {
	f.Add(encodeSegment(mkSnapshot().Segments[0]))
	f.Add(encodeSegment(index.Segment{ID: 5, Sealed: false}))
	f.Add([]byte("BSG1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := decodeSegment(data)
		if err != nil {
			return
		}
		// Valid decodes must re-encode to an equally valid blob.
		if _, err := decodeSegment(encodeSegment(seg)); err != nil {
			t.Fatalf("re-encode of valid segment failed: %v", err)
		}
	})
}

func FuzzDecodeManifest(f *testing.F) {
	st := NewMemStore()
	c := New(Config{Store: st})
	if err := c.Save(mkSnapshot()); err != nil {
		f.Fatal(err)
	}
	if blob, err := st.Get(manifestKey(1)); err == nil {
		f.Add(blob)
	}
	f.Add([]byte("BMF1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		if _, err := decodeManifest(encodeManifest(m)); err != nil {
			t.Fatalf("re-encode of valid manifest failed: %v", err)
		}
	})
}
