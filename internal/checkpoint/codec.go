package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"bistream/internal/dedup"
	"bistream/internal/index"
	"bistream/internal/protocol"
	"bistream/internal/tuple"
)

// Binary checkpoint encoding. Two blob kinds, both little endian and
// both ending in a CRC-32C of everything before it, so recovery can
// reject torn or bit-rotted blobs without trusting their contents:
//
//	segment  "BSG2" | id u64 | origin u32 | sealed byte | minTS u64 | maxTS u64 |
//	         uvarint count | count × (uvarint len | tuple bytes) | crc u32
//	manifest "BMF2" | rel byte | joiner u32 | epoch u64 |
//	         uvarint nrefs  | nrefs  × (uvarint len | key | id u64 | origin u32 |
//	                                    sealed byte | crc u32 | len u32) |
//	         uvarint nfront | nfront × (router u32 | source u32 | counter u64) |
//	         uvarint npend  | npend  × (uvarint len | envelope bytes) |
//	         uvarint cap | suppressed u64 |
//	         uvarint ncur | ncur × 16 bytes | uvarint nprev | nprev × 16 bytes |
//	         uvarint nretry | nretry × (uvarint len | body) | crc u32
//
// The manifest additionally records each referenced segment blob's CRC
// and length, so a manifest that survived a crash can vouch for (or
// condemn) segment blobs written in earlier rounds.

// ErrCorrupt is returned when a blob cannot be decoded as a checkpoint
// segment or manifest.
var ErrCorrupt = errors.New("checkpoint: corrupt encoding")

var (
	segMagic      = []byte("BSG2")
	manifestMagic = []byte("BMF2")
	crcTable      = crc32.MakeTable(crc32.Castagnoli)
)

// segRef is a manifest's pointer to one segment blob. Origin joins ID
// in the segment's identity: a grafted (migrated-in) segment keeps its
// donor's id, which may collide with a local one.
type segRef struct {
	Key    string
	ID     uint64
	Origin int32
	Sealed bool
	CRC    uint32
	Len    uint32
}

// manifest is the decoded root blob of one checkpoint epoch.
type manifest struct {
	Rel       tuple.Relation
	JoinerID  int32
	Epoch     uint64
	Refs      []segRef
	Frontiers []protocol.Frontier
	Pending   []protocol.Envelope
	Dedup     dedup.State
	Retry     [][]byte
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// EncodeSegment serializes one segment for transport: the migration
// coordinator reuses the checkpoint segment encoding as its wire
// format, so state moves between members in blobs recovery already
// knows how to validate.
func EncodeSegment(seg index.Segment) []byte { return encodeSegment(seg) }

// DecodeSegment parses and CRC-checks a segment blob (the inverse of
// EncodeSegment).
func DecodeSegment(blob []byte) (index.Segment, error) { return decodeSegment(blob) }

// BlobCRC is the checksum manifests and migration transfers record per
// segment blob: the CRC-32C of the whole blob including its own
// trailing CRC.
func BlobCRC(blob []byte) uint32 { return blobCRC(blob) }

// encodeSegment serializes one segment (metadata plus its tuples).
func encodeSegment(seg index.Segment) []byte {
	buf := make([]byte, 0, 32+len(seg.Tuples)*48)
	buf = append(buf, segMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, seg.ID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(seg.Origin))
	buf = append(buf, boolByte(seg.Sealed))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(seg.MinTS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(seg.MaxTS))
	buf = binary.AppendUvarint(buf, uint64(len(seg.Tuples)))
	for _, t := range seg.Tuples {
		tb := tuple.Marshal(t)
		buf = binary.AppendUvarint(buf, uint64(len(tb)))
		buf = append(buf, tb...)
	}
	return appendCRC(buf)
}

// decodeSegment parses and CRC-checks a segment blob.
func decodeSegment(blob []byte) (index.Segment, error) {
	body, err := checkCRC(blob, segMagic)
	if err != nil {
		return index.Segment{}, err
	}
	r := &reader{b: body}
	seg := index.Segment{
		ID:     r.u64(),
		Origin: int32(r.u32()),
		Sealed: r.u8() != 0,
		MinTS:  int64(r.u64()),
		MaxTS:  int64(r.u64()),
	}
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.b)) { // every tuple costs ≥1 byte
		r.fail("tuple count %d exceeds payload", n)
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		tb := r.lenBytes()
		if r.err != nil {
			break
		}
		t, err := tuple.Unmarshal(tb)
		if err != nil {
			return index.Segment{}, fmt.Errorf("%w: segment tuple: %v", ErrCorrupt, err)
		}
		seg.Tuples = append(seg.Tuples, t)
	}
	if r.err == nil && len(r.b) != 0 {
		r.fail("%d trailing bytes", len(r.b))
	}
	if r.err != nil {
		return index.Segment{}, r.err
	}
	return seg, nil
}

// encodeManifest serializes the checkpoint root blob.
func encodeManifest(m *manifest) []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, manifestMagic...)
	buf = append(buf, byte(m.Rel))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.JoinerID))
	buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(m.Refs)))
	for _, ref := range m.Refs {
		buf = binary.AppendUvarint(buf, uint64(len(ref.Key)))
		buf = append(buf, ref.Key...)
		buf = binary.LittleEndian.AppendUint64(buf, ref.ID)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ref.Origin))
		buf = append(buf, boolByte(ref.Sealed))
		buf = binary.LittleEndian.AppendUint32(buf, ref.CRC)
		buf = binary.LittleEndian.AppendUint32(buf, ref.Len)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Frontiers)))
	for _, f := range m.Frontiers {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Router))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Source))
		buf = binary.LittleEndian.AppendUint64(buf, f.Counter)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Pending)))
	for _, e := range m.Pending {
		eb := e.Marshal()
		buf = binary.AppendUvarint(buf, uint64(len(eb)))
		buf = append(buf, eb...)
	}
	buf = binary.AppendUvarint(buf, uint64(m.Dedup.Cap))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Dedup.Suppressed))
	for _, keys := range [2][]dedup.Key{m.Dedup.Cur, m.Dedup.Prev} {
		buf = binary.AppendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			buf = binary.LittleEndian.AppendUint64(buf, k[0])
			buf = binary.LittleEndian.AppendUint64(buf, k[1])
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Retry)))
	for _, body := range m.Retry {
		buf = binary.AppendUvarint(buf, uint64(len(body)))
		buf = append(buf, body...)
	}
	return appendCRC(buf)
}

// decodeManifest parses and CRC-checks a manifest blob.
func decodeManifest(blob []byte) (*manifest, error) {
	body, err := checkCRC(blob, manifestMagic)
	if err != nil {
		return nil, err
	}
	r := &reader{b: body}
	m := &manifest{}
	relByte := r.u8()
	m.JoinerID = int32(r.u32())
	m.Epoch = r.u64()
	if r.err == nil {
		m.Rel = tuple.Relation(relByte)
		if m.Rel != tuple.R && m.Rel != tuple.S {
			r.fail("bad relation byte %d", relByte)
		}
	}
	nrefs := r.uvarint()
	r.boundCount(nrefs, 22) // min ref size: 1-byte key len + 21 fixed
	for i := uint64(0); i < nrefs && r.err == nil; i++ {
		ref := segRef{
			Key:    string(r.lenBytes()),
			ID:     r.u64(),
			Origin: int32(r.u32()),
			Sealed: r.u8() != 0,
			CRC:    r.u32(),
			Len:    r.u32(),
		}
		if r.err == nil {
			m.Refs = append(m.Refs, ref)
		}
	}
	nfront := r.uvarint()
	r.boundCount(nfront, 16)
	for i := uint64(0); i < nfront && r.err == nil; i++ {
		f := protocol.Frontier{
			Router:  int32(r.u32()),
			Source:  protocol.Source(r.u32()),
			Counter: r.u64(),
		}
		if r.err == nil {
			m.Frontiers = append(m.Frontiers, f)
		}
	}
	npend := r.uvarint()
	r.boundCount(npend, 2)
	for i := uint64(0); i < npend && r.err == nil; i++ {
		eb := r.lenBytes()
		if r.err != nil {
			break
		}
		e, err := protocol.UnmarshalEnvelope(eb)
		if err != nil {
			return nil, fmt.Errorf("%w: pending envelope: %v", ErrCorrupt, err)
		}
		m.Pending = append(m.Pending, e)
	}
	m.Dedup.Cap = int(r.uvarint())
	m.Dedup.Suppressed = int64(r.u64())
	for gen := 0; gen < 2 && r.err == nil; gen++ {
		nkeys := r.uvarint()
		r.boundCount(nkeys, 16)
		keys := make([]dedup.Key, 0, min(int(nkeys), 1<<16))
		for i := uint64(0); i < nkeys && r.err == nil; i++ {
			keys = append(keys, dedup.Key{r.u64(), r.u64()})
		}
		if r.err != nil {
			break
		}
		if gen == 0 {
			m.Dedup.Cur = keys
		} else {
			m.Dedup.Prev = keys
		}
	}
	nretry := r.uvarint()
	r.boundCount(nretry, 1)
	for i := uint64(0); i < nretry && r.err == nil; i++ {
		body := r.lenBytes()
		if r.err == nil {
			m.Retry = append(m.Retry, append([]byte(nil), body...))
		}
	}
	if r.err == nil && len(r.b) != 0 {
		r.fail("%d trailing bytes", len(r.b))
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// appendCRC appends the CRC-32C of buf to buf.
func appendCRC(buf []byte) []byte {
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// checkCRC validates magic and trailing CRC, returning the body between
// them.
func checkCRC(blob, magic []byte) ([]byte, error) {
	if len(blob) < len(magic)+4 {
		return nil, fmt.Errorf("%w: %d-byte blob", ErrCorrupt, len(blob))
	}
	if string(blob[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, blob[:len(magic)])
	}
	body, tail := blob[:len(blob)-4], blob[len(blob)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return body[len(magic):], nil
}

// reader is a little-endian cursor with sticky error handling, so
// decoders read fields linearly and check r.err once per record.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

// boundCount rejects element counts that could not fit in the remaining
// bytes (each element costing at least minSize), so corrupt counts fail
// fast instead of driving huge allocations.
func (r *reader) boundCount(n uint64, minSize int) {
	if r.err == nil && n > uint64(len(r.b))/uint64(minSize)+1 {
		r.fail("count %d exceeds payload", n)
	}
}

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail("truncated byte")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.fail("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, sz := binary.Uvarint(r.b)
	if sz <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.b = r.b[sz:]
	return v
}

// lenBytes reads a uvarint length followed by that many bytes (a view
// into the blob; callers copy if they retain it past decode).
func (r *reader) lenBytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail("length %d exceeds payload", n)
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}
