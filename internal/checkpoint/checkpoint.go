package checkpoint

import (
	"fmt"
	"hash/crc32"
	"strings"

	"bistream/internal/index"
	"bistream/internal/metrics"
)

// Config parameterizes a Checkpointer.
type Config struct {
	// Store holds the blobs. Required.
	Store Store
	// Metrics receives the checkpoint counters; nil uses a private
	// registry.
	Metrics *metrics.Registry
	// Prefix namespaces the metric names, typically the owning joiner's
	// prefix ("joiner_R0_").
	Prefix string
}

// Checkpointer writes a member's snapshots to a Store incrementally and
// recovers the newest intact one. It is not safe for concurrent use;
// the joiner service serializes Save calls on its checkpoint loop.
type Checkpointer struct {
	store Store
	epoch uint64
	// written records sealed segment blobs already durable in the store
	// (by the segment's (origin, id) identity), so Save skips
	// re-serializing them — the property that makes checkpoint cost
	// proportional to the live segment, not the window.
	written map[segIdent]segRef
	// prevKeys holds the previous committed manifest's blob keys. GC
	// keeps them so a crash mid-round can still recover the previous
	// epoch in full.
	prevKeys map[string]struct{}

	saves       *metrics.Counter
	saveErrors  *metrics.Counter
	segsWritten *metrics.Counter
	segsSkipped *metrics.Counter
	bytes       *metrics.Counter
	gcDeleted   *metrics.Counter
	recoveries  *metrics.Counter
	fallbacks   *metrics.Counter
	recovered   *metrics.Counter
}

// New builds a Checkpointer over cfg.Store. Call Recover before the
// first Save when resuming an existing store, so the epoch sequence and
// the written-segment ledger continue instead of restarting.
func New(cfg Config) *Checkpointer {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	p := cfg.Prefix
	return &Checkpointer{
		store:       cfg.Store,
		written:     make(map[segIdent]segRef),
		prevKeys:    make(map[string]struct{}),
		saves:       reg.Counter(p + "checkpoint_saves"),
		saveErrors:  reg.Counter(p + "checkpoint_save_errors"),
		segsWritten: reg.Counter(p + "checkpoint_segments_written"),
		segsSkipped: reg.Counter(p + "checkpoint_segments_skipped"),
		bytes:       reg.Counter(p + "checkpoint_bytes_written"),
		gcDeleted:   reg.Counter(p + "checkpoint_gc_deleted"),
		recoveries:  reg.Counter(p + "checkpoint_recoveries"),
		fallbacks:   reg.Counter(p + "checkpoint_recover_fallbacks"),
		recovered:   reg.Counter(p + "checkpoint_recovered_tuples"),
	}
}

// Epoch returns the last committed checkpoint epoch (0 before any).
func (c *Checkpointer) Epoch() uint64 { return c.epoch }

// segIdent is a segment's global identity: (origin, id). Local
// segments carry origin index.OriginLocal; grafted ones keep their
// donor's member id, whose id sequence is independent of ours.
type segIdent struct {
	origin int32
	id     uint64
}

func manifestKey(epoch uint64) string { return fmt.Sprintf("manifest-%016x", epoch) }

// sealedKey names a sealed segment blob. Foreign (grafted) segments get
// an origin-qualified key so they can never collide with a local
// segment of the same id.
func sealedKey(origin int32, id uint64) string {
	if origin == index.OriginLocal {
		return fmt.Sprintf("seg-%016x", id)
	}
	return fmt.Sprintf("seg-f%d-%016x", origin, id)
}

// liveKey is epoch-qualified: the live segment is rewritten every
// round, and writing epoch N's copy under a fresh key means a torn
// write can never damage the blob epoch N-1's manifest references. It
// is also id-qualified, because a sharded window exports one live
// segment per shard and all of them land in the same epoch.
func liveKey(epoch, id uint64) string { return fmt.Sprintf("live-%016x-%016x", epoch, id) }

// Save commits snapshot s as the next epoch: sealed segments not yet in
// the store are written (already-durable ones are skipped), the live
// segment is written under an epoch-qualified key, and finally the
// manifest — the commit point — is installed. On any error the store is
// left with the previous epoch intact and recoverable. After a
// successful commit, blobs referenced by neither the new manifest nor
// the previous one are garbage-collected (expired sealed segments drop
// here, mirroring the chained index's whole-segment expiry).
func (c *Checkpointer) Save(s *Snapshot) error {
	epoch := c.epoch + 1
	m := &manifest{
		Rel:       s.Rel,
		JoinerID:  s.JoinerID,
		Epoch:     epoch,
		Frontiers: s.Frontiers,
		Pending:   s.Pending,
		Dedup:     s.Dedup,
		Retry:     s.Retry,
	}
	for _, seg := range s.Segments {
		ident := segIdent{seg.Origin, seg.ID}
		if seg.Sealed {
			if ref, ok := c.written[ident]; ok {
				c.segsSkipped.Inc()
				m.Refs = append(m.Refs, ref)
				continue
			}
		}
		key := liveKey(epoch, seg.ID)
		if seg.Sealed {
			key = sealedKey(seg.Origin, seg.ID)
		}
		blob := encodeSegment(seg)
		if err := c.store.Put(key, blob); err != nil {
			c.saveErrors.Inc()
			return fmt.Errorf("checkpoint: segment %s: %w", key, err)
		}
		ref := segRef{
			Key:    key,
			ID:     seg.ID,
			Origin: seg.Origin,
			Sealed: seg.Sealed,
			CRC:    blobCRC(blob),
			Len:    uint32(len(blob)),
		}
		c.segsWritten.Inc()
		c.bytes.Add(int64(len(blob)))
		if seg.Sealed {
			c.written[ident] = ref
		}
		m.Refs = append(m.Refs, ref)
	}
	blob := encodeManifest(m)
	if err := c.store.Put(manifestKey(epoch), blob); err != nil {
		c.saveErrors.Inc()
		return fmt.Errorf("checkpoint: manifest: %w", err)
	}
	c.bytes.Add(int64(len(blob)))
	c.epoch = epoch
	s.Epoch = epoch
	c.saves.Inc()
	c.gc(m)
	return nil
}

// gc deletes blobs no longer referenced by the current or previous
// manifest. Deletion failures are harmless (stale blobs are ignored at
// recovery), so errors are swallowed; only successes are counted.
func (c *Checkpointer) gc(m *manifest) {
	keep := map[string]struct{}{
		manifestKey(m.Epoch): {},
	}
	if m.Epoch > 1 {
		keep[manifestKey(m.Epoch-1)] = struct{}{}
	}
	for _, ref := range m.Refs {
		keep[ref.Key] = struct{}{}
	}
	for k := range c.prevKeys {
		keep[k] = struct{}{}
	}
	keys, err := c.store.List()
	if err == nil {
		for _, k := range keys {
			if _, ok := keep[k]; ok {
				continue
			}
			if !strings.HasPrefix(k, "seg-") && !strings.HasPrefix(k, "live-") &&
				!strings.HasPrefix(k, "manifest-") {
				continue // not ours
			}
			if c.store.Delete(k) == nil {
				c.gcDeleted.Inc()
			}
		}
	}
	// Trim the ledgers to what this round still references.
	c.prevKeys = make(map[string]struct{}, len(m.Refs))
	live := make(map[segIdent]segRef, len(m.Refs))
	for _, ref := range m.Refs {
		c.prevKeys[ref.Key] = struct{}{}
		if ref.Sealed {
			live[segIdent{ref.Origin, ref.ID}] = ref
		}
	}
	c.written = live
}

// Recover loads the newest intact checkpoint: manifests are tried
// newest-first, and one is accepted only if it and every segment blob
// it references decode cleanly with matching CRC, length, identity and
// sealed flag. A torn or corrupt newest epoch falls back to the
// previous one — which is safe precisely because the service never acks
// a delivery before the checkpoint covering it commits. Returns
// (nil, nil) on a store with no manifests (fresh member).
//
// When manifests exist but none is intact, the outcome depends on what
// the wreckage proves. Committed blobs are never rewritten (manifest
// and live keys are epoch-qualified, sealed segments write once), so a
// commit of epoch N leaves manifest-N intact forever; by induction the
// highest committed epoch always has an intact manifest. All-torn with
// only epoch 1 present therefore proves no checkpoint ever committed —
// and since acks wait for commits, nothing was ever acknowledged under
// checkpoint coverage: a fresh start loses nothing, so Recover returns
// (nil, nil) and counts a fallback. All-torn with higher epochs can
// only mean the store violated its durability contract (committed
// state rotted or was rewritten); that is unrecoverable-loudly — the
// member must not restart blind over acked state.
func (c *Checkpointer) Recover() (*Snapshot, error) {
	keys, err := c.store.List()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list: %w", err)
	}
	var epochs []uint64
	for _, k := range keys {
		var e uint64
		if _, err := fmt.Sscanf(k, "manifest-%x", &e); err == nil && strings.HasPrefix(k, "manifest-") {
			epochs = append(epochs, e)
		}
	}
	if len(epochs) == 0 {
		return nil, nil
	}
	// Newest first.
	for i := 0; i < len(epochs); i++ {
		for j := i + 1; j < len(epochs); j++ {
			if epochs[j] > epochs[i] {
				epochs[i], epochs[j] = epochs[j], epochs[i]
			}
		}
	}
	var lastErr error
	for _, epoch := range epochs {
		snap, m, err := c.tryRecover(epoch)
		if err != nil {
			lastErr = err
			c.fallbacks.Inc()
			continue
		}
		c.epoch = m.Epoch
		c.written = make(map[segIdent]segRef)
		c.prevKeys = make(map[string]struct{}, len(m.Refs))
		for _, ref := range m.Refs {
			c.prevKeys[ref.Key] = struct{}{}
			if ref.Sealed {
				c.written[segIdent{ref.Origin, ref.ID}] = ref
			}
		}
		c.recoveries.Inc()
		c.recovered.Add(int64(snap.Tuples()))
		return snap, nil
	}
	if epochs[0] <= 1 {
		// Only first-round wreckage: no epoch ever committed, so no
		// delivery was ever acked under checkpoint coverage. Starting
		// fresh is lossless; the broker redelivers everything.
		return nil, nil
	}
	return nil, fmt.Errorf("checkpoint: %d manifest(s) present, none intact: %w", len(epochs), lastErr)
}

// tryRecover loads and fully validates one epoch.
func (c *Checkpointer) tryRecover(epoch uint64) (*Snapshot, *manifest, error) {
	blob, err := c.store.Get(manifestKey(epoch))
	if err != nil {
		return nil, nil, fmt.Errorf("epoch %d: %w", epoch, err)
	}
	m, err := decodeManifest(blob)
	if err != nil {
		return nil, nil, fmt.Errorf("epoch %d: %w", epoch, err)
	}
	if m.Epoch != epoch {
		return nil, nil, fmt.Errorf("epoch %d: %w: manifest claims epoch %d", epoch, ErrCorrupt, m.Epoch)
	}
	snap := &Snapshot{
		Rel:       m.Rel,
		JoinerID:  m.JoinerID,
		Epoch:     m.Epoch,
		Frontiers: m.Frontiers,
		Pending:   m.Pending,
		Dedup:     m.Dedup,
		Retry:     m.Retry,
	}
	for _, ref := range m.Refs {
		sb, err := c.store.Get(ref.Key)
		if err != nil {
			return nil, nil, fmt.Errorf("epoch %d: segment %s: %w", epoch, ref.Key, err)
		}
		if uint32(len(sb)) != ref.Len || blobCRC(sb) != ref.CRC {
			return nil, nil, fmt.Errorf("epoch %d: segment %s: %w: crc/len mismatch", epoch, ref.Key, ErrCorrupt)
		}
		seg, err := decodeSegment(sb)
		if err != nil {
			return nil, nil, fmt.Errorf("epoch %d: segment %s: %w", epoch, ref.Key, err)
		}
		if seg.ID != ref.ID || seg.Origin != ref.Origin || seg.Sealed != ref.Sealed {
			return nil, nil, fmt.Errorf("epoch %d: segment %s: %w: identity mismatch", epoch, ref.Key, ErrCorrupt)
		}
		snap.Segments = append(snap.Segments, seg)
	}
	return snap, m, nil
}

// blobCRC is the checksum the manifest records per segment blob: the
// CRC-32C of the whole blob including its own trailing CRC.
func blobCRC(blob []byte) uint32 {
	return crc32.Checksum(blob, crcTable)
}
