package tuple

import (
	"math"
	"testing"
)

// sameTuple compares decoded tuples semantically (NaN-aware).
func sameTuple(a, b *Tuple) bool {
	if a.Rel != b.Rel || a.Seq != b.Seq || a.TS != b.TS || a.TraceNS != b.TraceNS || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		va, vb := a.Values[i], b.Values[i]
		if va.Kind() != vb.Kind() {
			return false
		}
		if va.Kind() == KindFloat && math.IsNaN(va.AsFloat()) && math.IsNaN(vb.AsFloat()) {
			continue
		}
		if !va.Equal(vb) && va.IsValid() {
			return false
		}
	}
	return true
}

// FuzzUnmarshal checks the tuple codec never panics on arbitrary input
// and that everything it accepts round-trips semantically (byte
// identity is not required: varint lengths have non-canonical
// encodings that decode fine but re-encode minimally).
func FuzzUnmarshal(f *testing.F) {
	f.Add(Marshal(New(R, 1, 2, Int(3))))
	f.Add(Marshal(New(S, 1<<60, -9, Float(3.25), String("héllo"), Int(-1))))
	traced := New(R, 7, 8, Int(9))
	traced.TraceNS = 1_700_000_000_000_000_001
	f.Add(Marshal(traced))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, err := Unmarshal(data)
		if err != nil {
			return
		}
		tp2, err := Unmarshal(Marshal(tp))
		if err != nil {
			t.Fatalf("re-encoded tuple does not decode: %v", err)
		}
		if !sameTuple(tp, tp2) {
			t.Fatalf("semantic round-trip mismatch: %v vs %v", tp, tp2)
		}
	})
}

// FuzzUnmarshalPair does the same for the result-pair codec.
func FuzzUnmarshalPair(f *testing.F) {
	pair := AppendBinary(Marshal(New(R, 1, 2, Int(3))), New(S, 4, 5, Int(3)))
	f.Add(pair)
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, err := UnmarshalPair(data)
		if err != nil {
			return
		}
		a2, b2, err := UnmarshalPair(AppendBinary(Marshal(a), b))
		if err != nil {
			t.Fatalf("re-encoded pair does not decode: %v", err)
		}
		if !sameTuple(a, a2) || !sameTuple(b, b2) {
			t.Fatal("semantic round-trip mismatch")
		}
	})
}
