package tuple

import "fmt"

// Decoder is a batch-oriented tuple decoder: it parses the same wire
// format as Unmarshal but allocates the decoded Tuple structs and their
// Value slices out of chunked slabs, so decoding a batch of envelopes
// costs O(1) allocations per chunk instead of two per tuple.
//
// The slabs are an allocation amortizer, not a reuse pool: a Decoder is
// never reset, so decoded tuples remain valid for as long as anything
// references them and are reclaimed by the garbage collector chunk by
// chunk once every tuple in a chunk is dead. That preserves the
// engine-wide invariant that tuples are immutable once decoded — a
// tuple stored in a joiner's window keeps its chunk alive, while a
// transient probe tuple lets its chunk go as soon as the batch drains.
//
// A Decoder is not safe for concurrent use; each consume loop owns one.
type Decoder struct {
	tuples []Tuple // current tuple chunk; grows to cap, then replaced
	values []Value // current value slab; grows to cap, then replaced
}

// Slab sizing: one tuple chunk holds a consume batch comfortably, and
// the value slab assumes a handful of values per tuple. Oversized
// tuples get a dedicated slab via valueSlab's max().
const (
	decoderTupleChunk = 512
	decoderValueChunk = 2048
)

// Unmarshal decodes one tuple previously produced by Marshal or
// AppendBinary, exactly like the package-level Unmarshal, but allocates
// from the decoder's slabs.
func (d *Decoder) Unmarshal(data []byte) (*Tuple, error) {
	if len(d.tuples) == cap(d.tuples) {
		d.tuples = make([]Tuple, 0, decoderTupleChunk)
	}
	d.tuples = d.tuples[:len(d.tuples)+1]
	t := &d.tuples[len(d.tuples)-1]
	rest, err := parseInto(t, data, d)
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	if err != nil {
		// Hand the slot back; the next decode overwrites it in full.
		d.tuples = d.tuples[:len(d.tuples)-1]
		return nil, err
	}
	return t, nil
}

// valueSlab returns the current value slab, guaranteed to have room for
// n more values without growing — growth mid-tuple would be harmless
// (append copies, earlier tuples keep the old array) but would defeat
// the amortization.
func (d *Decoder) valueSlab(n int) []Value {
	if cap(d.values)-len(d.values) < n {
		size := decoderValueChunk
		if n > size {
			size = n
		}
		d.values = make([]Value, 0, size)
	}
	return d.values
}
