package tuple

import (
	"fmt"
	"strings"
)

// Relation identifies which of the two streaming relations a tuple
// belongs to. The join-biclique model is defined over exactly two
// relations R and S (Definition 6), so a boolean-like enum suffices.
type Relation uint8

// The two streaming relations.
const (
	R Relation = iota
	S
)

// String returns "R" or "S".
func (r Relation) String() string {
	if r == R {
		return "R"
	}
	return "S"
}

// Opposite returns the other relation: tuples of one relation are
// stored on their own side of the biclique and join-processed on the
// opposite side.
func (r Relation) Opposite() Relation {
	if r == R {
		return S
	}
	return R
}

// Field describes one attribute of a schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of attributes (Definition 1). The schema is
// immutable after construction and shared by all tuples of a relation.
type Schema struct {
	fields []Field
	byName map[string]int
}

// NewSchema builds a schema from the given fields. Field names must be
// unique and non-empty.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{
		fields: append([]Field(nil), fields...),
		byName: make(map[string]int, len(fields)),
	}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("tuple: schema field %d has empty name", i)
		}
		if f.Kind == KindInvalid {
			return nil, fmt.Errorf("tuple: schema field %q has invalid kind", f.Name)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("tuple: duplicate schema field %q", f.Name)
		}
		s.byName[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and examples
// with literal schemas.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumFields returns the number of attributes.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th attribute descriptor.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// String renders the schema as "<name kind, ...>".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Kind.String())
	}
	b.WriteByte('>')
	return b.String()
}

// Tuple is one streaming item. TS is the tuple's event timestamp in
// milliseconds of the virtual time domain; Seq is a source-assigned
// sequence number useful for debugging and result verification.
//
// Tuples are treated as immutable once emitted by a source: routers and
// joiners share them without copying.
type Tuple struct {
	Rel    Relation
	Seq    uint64
	TS     int64 // event time, Unix milliseconds in the virtual domain
	Values []Value

	// TraceNS is the ingest wall clock in Unix nanoseconds when this
	// tuple was selected for stage tracing, or 0 for the (vast)
	// unsampled majority. It rides the wire encoding behind a flag bit
	// so per-stage latency histograms work across process boundaries
	// (subject to clock synchronization between hosts).
	TraceNS int64
}

// New allocates a tuple for the given relation.
func New(rel Relation, seq uint64, ts int64, values ...Value) *Tuple {
	return &Tuple{Rel: rel, Seq: seq, TS: ts, Values: values}
}

// Value returns the i-th attribute, or the zero Value if out of range.
func (t *Tuple) Value(i int) Value {
	if i < 0 || i >= len(t.Values) {
		return Value{}
	}
	return t.Values[i]
}

// MemSize estimates the resident size of the tuple in bytes. The joiner
// uses this to account window memory for the memory-based autoscaling
// experiments; it intentionally counts Go object overhead so the numbers
// behave like a real heap.
func (t *Tuple) MemSize() int {
	// struct header + slice header + per-value struct; strings add
	// their backing array.
	const tupleHeader = 8 /*Rel+pad*/ + 8 /*Seq*/ + 8 /*TS*/ + 24 /*slice hdr*/
	size := tupleHeader + len(t.Values)*40
	for _, v := range t.Values {
		if v.kind == KindString {
			size += len(v.s)
		}
	}
	return size
}

// String renders the tuple for logs: "R#17@1234(v1, v2)".
func (t *Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s#%d@%d(", t.Rel, t.Seq, t.TS)
	for i, v := range t.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.GoString())
	}
	b.WriteByte(')')
	return b.String()
}

// JoinResult is the concatenation of one R tuple and one S tuple whose
// attributes satisfied the join predicate (Definition 4). The output
// timestamp policy follows the text's suggestion of taking the more
// recent of the two input timestamps, preserving ordering in the derived
// stream.
type JoinResult struct {
	Left  *Tuple // the R-side tuple
	Right *Tuple // the S-side tuple
	TS    int64  // max(Left.TS, Right.TS)
}

// NewJoinResult pairs an R tuple with an S tuple regardless of the order
// in which the engine discovered them.
func NewJoinResult(a, b *Tuple) JoinResult {
	if a.Rel == S {
		a, b = b, a
	}
	ts := a.TS
	if b.TS > ts {
		ts = b.TS
	}
	return JoinResult{Left: a, Right: b, TS: ts}
}

// Key returns a canonical identity for the result pair, used by tests to
// detect duplicate or missing join results (the Fig. 8 error scenarios).
func (jr JoinResult) Key() [2]uint64 {
	return [2]uint64{jr.Left.Seq, jr.Right.Seq}
}

func (jr JoinResult) String() string {
	return fmt.Sprintf("(%s ⋈ %s)@%d", jr.Left, jr.Right, jr.TS)
}

// Flatten concatenates the result pair's attributes into a single tuple
// of the given relation, carrying the result's timestamp. This is how
// multi-way joins cascade through chained biclique engines: the output
// of R ⋈ S re-enters a second engine as one of its input relations.
// Pass seq 0 to let the downstream engine assign one.
func (jr JoinResult) Flatten(rel Relation, seq uint64) *Tuple {
	values := make([]Value, 0, len(jr.Left.Values)+len(jr.Right.Values))
	values = append(values, jr.Left.Values...)
	values = append(values, jr.Right.Values...)
	return New(rel, seq, jr.TS, values...)
}
