package tuple

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{String("x"), KindString},
		{Value{}, KindInvalid},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%#v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if (Value{}).IsValid() {
		t.Error("zero Value should be invalid")
	}
	if !Int(0).IsValid() {
		t.Error("Int(0) should be valid")
	}
}

func TestValueAccessors(t *testing.T) {
	if got := Int(-7).AsInt(); got != -7 {
		t.Errorf("AsInt = %d, want -7", got)
	}
	if got := Int(3).AsFloat(); got != 3.0 {
		t.Errorf("Int.AsFloat = %v, want 3", got)
	}
	if got := Float(2.25).AsFloat(); got != 2.25 {
		t.Errorf("AsFloat = %v, want 2.25", got)
	}
	if got := String("abc").AsString(); got != "abc" {
		t.Errorf("AsString = %q, want abc", got)
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Float(1.5), Float(1.5), true},
		{Float(1.5), Float(2.5), false},
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Int(2), Float(2.0), true},
		{Float(2.0), Int(2), true},
		{Int(2), Float(2.5), false},
		{Int(1), String("1"), false},
		{Value{}, Value{}, false},
		{Value{}, Int(0), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%#v, %#v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(1), Float(1.5), -1},
		{Float(2.5), Int(2), 1},
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{String("a"), String("a"), 0},
		{Int(99), String(""), -1}, // numerics order before strings
		{String(""), Int(99), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%#v, %#v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueHashEqualImpliesSameHash(t *testing.T) {
	// Int and integral Float that compare Equal must hash identically,
	// otherwise hash routing would separate joinable tuples.
	f := func(v int32) bool {
		a, b := Int(int64(v)), Float(float64(v))
		return !a.Equal(b) || a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Float(math.Inf(1)).Hash() == Float(math.Inf(-1)).Hash() {
		t.Error("±Inf should hash differently")
	}
}

func TestValueHashSpread(t *testing.T) {
	seen := map[uint64]bool{}
	for i := int64(0); i < 1000; i++ {
		seen[Int(i).Hash()] = true
	}
	if len(seen) != 1000 {
		t.Errorf("hash collisions over 1000 sequential ints: %d distinct", len(seen))
	}
}

func TestSchema(t *testing.T) {
	s, err := NewSchema(Field{"id", KindInt}, Field{"price", KindFloat}, Field{"sym", KindString})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFields() != 3 {
		t.Fatalf("NumFields = %d", s.NumFields())
	}
	if s.Index("price") != 1 {
		t.Errorf("Index(price) = %d", s.Index("price"))
	}
	if s.Index("nope") != -1 {
		t.Errorf("Index(nope) = %d", s.Index("nope"))
	}
	if got := s.Field(2).Name; got != "sym" {
		t.Errorf("Field(2) = %q", got)
	}
	if !strings.Contains(s.String(), "price float") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(Field{"", KindInt}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema(Field{"a", KindInvalid}); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := NewSchema(Field{"a", KindInt}, Field{"a", KindInt}); err == nil {
		t.Error("duplicate name accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on error")
		}
	}()
	MustSchema(Field{"", KindInt})
}

func TestRelation(t *testing.T) {
	if R.Opposite() != S || S.Opposite() != R {
		t.Error("Opposite is wrong")
	}
	if R.String() != "R" || S.String() != "S" {
		t.Error("String is wrong")
	}
}

func TestTupleValue(t *testing.T) {
	tp := New(R, 1, 100, Int(5), String("x"))
	if !tp.Value(0).Equal(Int(5)) {
		t.Error("Value(0) mismatch")
	}
	if tp.Value(-1).IsValid() || tp.Value(2).IsValid() {
		t.Error("out-of-range Value should be invalid")
	}
	if s := tp.String(); !strings.Contains(s, "R#1@100") {
		t.Errorf("String = %q", s)
	}
}

func TestTupleMemSize(t *testing.T) {
	small := New(R, 1, 1, Int(1))
	big := New(R, 1, 1, Int(1), String(strings.Repeat("x", 1000)))
	if small.MemSize() <= 0 {
		t.Error("MemSize should be positive")
	}
	if big.MemSize() < small.MemSize()+1000 {
		t.Errorf("MemSize should count string bytes: small=%d big=%d",
			small.MemSize(), big.MemSize())
	}
}

func TestJoinResultNormalizesSides(t *testing.T) {
	r := New(R, 1, 10, Int(1))
	s := New(S, 2, 20, Int(1))
	jr1 := NewJoinResult(r, s)
	jr2 := NewJoinResult(s, r)
	if jr1.Left.Rel != R || jr1.Right.Rel != S {
		t.Error("JoinResult sides not normalized")
	}
	if jr1.Key() != jr2.Key() {
		t.Error("Key should be order independent")
	}
	if jr1.TS != 20 {
		t.Errorf("TS = %d, want max(10,20)=20", jr1.TS)
	}
	if !strings.Contains(jr1.String(), "⋈") {
		t.Errorf("String = %q", jr1.String())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []*Tuple{
		New(R, 0, 0),
		New(S, 18446744073709551615, -5, Int(math.MinInt64), Int(math.MaxInt64)),
		New(R, 7, 123456, Float(math.Pi), String("héllo"), Int(-1)),
		New(S, 1, 1, String("")),
	}
	for _, in := range cases {
		data := Marshal(in)
		out, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal(%v): %v", in, err)
		}
		if out.Rel != in.Rel || out.Seq != in.Seq || out.TS != in.TS ||
			len(out.Values) != len(in.Values) {
			t.Fatalf("round trip mismatch: %v vs %v", in, out)
		}
		for i := range in.Values {
			if !in.Values[i].Equal(out.Values[i]) && in.Values[i].IsValid() {
				t.Fatalf("value %d mismatch: %v vs %v", i, in, out)
			}
		}
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	f := func(seq uint64, ts int64, i int64, fl float64, s string) bool {
		in := New(S, seq, ts, Int(i), Float(fl), String(s))
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			return false
		}
		if out.Seq != seq || out.TS != ts {
			return false
		}
		okF := out.Values[1].AsFloat() == fl || (math.IsNaN(fl) && math.IsNaN(out.Values[1].AsFloat()))
		return out.Values[0].AsInt() == i && okF && out.Values[2].AsString() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecCorruptInputs(t *testing.T) {
	good := Marshal(New(R, 1, 2, Int(3), String("abcd")))
	cases := [][]byte{
		nil,
		{},
		good[:5],
		good[:len(good)-1],
		append(append([]byte{}, good...), 0xff),
		func() []byte { b := append([]byte{}, good...); b[0] = 9; return b }(), // bad relation
		func() []byte { b := append([]byte{}, good...); b[17] = 200; return b }(),
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestCodecCorruptQuick(t *testing.T) {
	// Random byte slices must never panic, only error or decode.
	f := func(data []byte) bool {
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	tp := New(R, 42, 123456789, Int(7), Float(3.14), String("abcdefgh"))
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendBinary(buf[:0], tp)
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	data := Marshal(New(R, 42, 123456789, Int(7), Float(3.14), String("abcdefgh")))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJoinResultFlatten(t *testing.T) {
	r := New(R, 1, 10, Int(7), String("order"))
	s := New(S, 2, 20, Int(7), Float(1.5))
	flat := NewJoinResult(r, s).Flatten(R, 99)
	if flat.Rel != R || flat.Seq != 99 || flat.TS != 20 {
		t.Errorf("flat header = %v", flat)
	}
	if len(flat.Values) != 4 {
		t.Fatalf("flat has %d values", len(flat.Values))
	}
	if !flat.Value(0).Equal(Int(7)) || flat.Value(1).AsString() != "order" ||
		!flat.Value(2).Equal(Int(7)) || flat.Value(3).AsFloat() != 1.5 {
		t.Errorf("flat values = %v", flat)
	}
}
