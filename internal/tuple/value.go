// Package tuple defines the streaming data model of the system: typed
// attribute values, relation schemas, and the streaming tuples that flow
// between routers and joiners.
//
// The model follows Definitions 1-3 of the source text: a tuple is an
// instance of a schema E = <e1, ..., eN>; every tuple carries a timestamp
// drawn from a discrete, totally ordered time domain T, which establishes
// the natural ordering used by the time-based sliding windows.
package tuple

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
)

// Kind enumerates the attribute types supported by the engine.
type Kind uint8

// Supported attribute kinds.
const (
	KindInvalid Kind = iota
	KindInt          // 64-bit signed integer
	KindFloat        // IEEE-754 double
	KindString       // UTF-8 string
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed attribute value. The zero Value has
// KindInvalid and compares unequal to every valid value.
//
// Value is a small immutable struct passed by value; it never aliases
// mutable state, so tuples may be shared freely across goroutines.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns a Value holding an integer.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a Value holding a float.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a Value holding a string.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; it is only meaningful for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload; for KindInt it converts.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload; it is only meaningful for KindString.
func (v Value) AsString() string { return v.s }

// IsValid reports whether the value holds a typed payload.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// Equal reports deep equality. Values of different kinds are unequal
// except for the int/float pair, which compares numerically so that an
// equi-join across an int attribute and a float attribute behaves as SQL
// users expect.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case KindInt:
			return v.i == o.i
		case KindFloat:
			return v.f == o.f
		case KindString:
			return v.s == o.s
		default:
			return false
		}
	}
	if v.kind == KindInt && o.kind == KindFloat {
		return float64(v.i) == o.f
	}
	if v.kind == KindFloat && o.kind == KindInt {
		return v.f == float64(o.i)
	}
	return false
}

// Compare orders two values. It returns -1, 0 or +1. Numeric kinds
// compare numerically with each other; strings compare lexicographically;
// comparing a string against a numeric value orders the numeric first,
// which gives a stable (if arbitrary) total order for the tree index.
func (v Value) Compare(o Value) int {
	vn, vIsNum := v.numeric()
	on, oIsNum := o.numeric()
	switch {
	case vIsNum && oIsNum:
		switch {
		case vn < on:
			return -1
		case vn > on:
			return 1
		default:
			return 0
		}
	case vIsNum && !oIsNum:
		return -1
	case !vIsNum && oIsNum:
		return 1
	default:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	}
}

func (v Value) numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Hash returns a 64-bit hash of the value, suitable for hash-partition
// routing. Int and Float values that compare Equal hash identically.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	switch v.kind {
	case KindInt:
		putUint64(buf[:], uint64(v.i))
		// An integral float must hash like the equal int, because
		// Equal treats them as the same value.
		h.Write(buf[:])
	case KindFloat:
		if f := v.f; f == math.Trunc(f) && !math.IsInf(f, 0) &&
			f >= math.MinInt64 && f <= math.MaxInt64 {
			putUint64(buf[:], uint64(int64(f)))
		} else {
			putUint64(buf[:], math.Float64bits(f))
		}
		h.Write(buf[:])
	case KindString:
		h.Write([]byte(v.s))
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// GoString implements fmt.GoStringer for debugging output.
func (v Value) GoString() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	default:
		return "<invalid>"
	}
}

// Format implements fmt.Formatter by delegating to GoString for %v.
func (v Value) Format(f fmt.State, verb rune) {
	fmt.Fprint(f, v.GoString())
}
