package tuple

import (
	"testing"
)

func decodeCases() []*Tuple {
	traced := New(R, 5, 50, Int(99))
	traced.TraceNS = 1234
	return []*Tuple{
		New(R, 1, 10, Int(7)),
		New(S, 2, 20, Int(-3), Float(2.5)),
		New(R, 3, 30),
		New(S, 4, 40, String("hello"), String(""), Int(0)),
		traced,
	}
}

func wantSameTuple(t *testing.T, got, want *Tuple) {
	t.Helper()
	if got.Rel != want.Rel || got.Seq != want.Seq || got.TS != want.TS || got.TraceNS != want.TraceNS {
		t.Fatalf("header mismatch: got %+v, want %+v", got, want)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("got %d values, want %d", len(got.Values), len(want.Values))
	}
	for i := range want.Values {
		if !got.Values[i].Equal(want.Values[i]) || got.Values[i].Kind() != want.Values[i].Kind() {
			t.Fatalf("value %d: got %#v, want %#v", i, got.Values[i], want.Values[i])
		}
	}
}

func TestDecoderMatchesUnmarshal(t *testing.T) {
	var d Decoder
	for _, want := range decodeCases() {
		body := Marshal(want)
		got, err := d.Unmarshal(body)
		if err != nil {
			t.Fatalf("Decoder.Unmarshal(%v): %v", want, err)
		}
		wantSameTuple(t, got, want)
		plain, err := Unmarshal(body)
		if err != nil {
			t.Fatal(err)
		}
		wantSameTuple(t, got, plain)
	}
}

func TestDecoderEarlierTuplesSurviveChunkGrowth(t *testing.T) {
	var d Decoder
	// Decode far more tuples than one chunk holds and verify pointers
	// handed out before every chunk rollover still read correctly: the
	// decoder must never recycle a slab in place.
	const n = 3 * decoderTupleChunk
	got := make([]*Tuple, 0, n)
	for i := 0; i < n; i++ {
		body := Marshal(New(R, uint64(i), int64(i), Int(int64(i)), String("v")))
		tp, err := d.Unmarshal(body)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tp)
	}
	for i, tp := range got {
		if tp.Seq != uint64(i) || tp.TS != int64(i) {
			t.Fatalf("tuple %d corrupted: %+v", i, tp)
		}
		if v := tp.Values[0]; v.AsInt() != int64(i) {
			t.Fatalf("tuple %d value corrupted: %#v", i, v)
		}
		if v := tp.Values[1]; v.AsString() != "v" {
			t.Fatalf("tuple %d string corrupted: %#v", i, v)
		}
	}
}

func TestDecoderWideTupleGetsOwnSlab(t *testing.T) {
	var d Decoder
	vals := make([]Value, 2*decoderValueChunk)
	for i := range vals {
		vals[i] = Int(int64(i))
	}
	wide := New(R, 1, 1, vals...)
	got, err := d.Unmarshal(Marshal(wide))
	if err != nil {
		t.Fatal(err)
	}
	wantSameTuple(t, got, wide)
	// And the decoder still works for the next (normal) tuple.
	next, err := d.Unmarshal(Marshal(New(S, 2, 2, Int(5))))
	if err != nil {
		t.Fatal(err)
	}
	if next.Values[0].AsInt() != 5 {
		t.Fatalf("tuple after wide decode corrupted: %+v", next)
	}
}

func TestDecoderRejectsCorrupt(t *testing.T) {
	var d Decoder
	good := Marshal(New(R, 1, 10, Int(7)))
	cases := [][]byte{
		nil,
		good[:3],
		good[:len(good)-2],
		append(append([]byte{}, good...), 0xff), // trailing byte
		{0x07, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // bad relation
	}
	for i, body := range cases {
		if _, err := d.Unmarshal(body); err == nil {
			t.Errorf("case %d: corrupt body decoded without error", i)
		}
	}
	// The decoder stays usable after errors and hands back the slots.
	got, err := d.Unmarshal(good)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 || got.Values[0].AsInt() != 7 {
		t.Fatalf("decode after errors corrupted: %+v", got)
	}
}

// BenchmarkDecodeBatch measures the batched decode path against the
// allocation profile the consume loop sees: one slab-backed decoder
// amortizing tuple and value allocations across a stream of bodies.
func BenchmarkDecodeBatch(b *testing.B) {
	bodies := make([][]byte, 512)
	for i := range bodies {
		bodies[i] = Marshal(New(R, uint64(i), int64(i), Int(int64(i%1000)), Int(int64(i))))
	}
	b.Run("decoder", func(b *testing.B) {
		var d Decoder
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := d.Unmarshal(bodies[i%len(bodies)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Unmarshal(bodies[i%len(bodies)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
