package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary tuple encoding, used by the TCP wire protocol and by the broker
// when it needs a stable byte representation of a message body.
//
// Layout (little endian):
//
//	byte    relation (0=R, 1=S), high bit set when a trace stamp follows
//	uint64  seq
//	int64   ts
//	int64   trace stamp in Unix nanoseconds (only when flagged)
//	uvarint number of values
//	per value:
//	    byte kind
//	    KindInt:    int64
//	    KindFloat:  float64 bits
//	    KindString: uvarint length + bytes
//
// The encoding is self-describing (no schema needed to decode), compact,
// and allocation-light on the encode path.

// ErrCorrupt is returned when a byte slice cannot be decoded as a tuple.
var ErrCorrupt = errors.New("tuple: corrupt encoding")

// traceFlag on the relation byte marks a tuple carrying a trace stamp.
const traceFlag = 0x80

// AppendBinary appends the binary encoding of t to dst and returns the
// extended slice.
func AppendBinary(dst []byte, t *Tuple) []byte {
	rel := byte(t.Rel)
	if t.TraceNS != 0 {
		rel |= traceFlag
	}
	dst = append(dst, rel)
	dst = binary.LittleEndian.AppendUint64(dst, t.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.TS))
	if t.TraceNS != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(t.TraceNS))
	}
	dst = binary.AppendUvarint(dst, uint64(len(t.Values)))
	for _, v := range t.Values {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.i))
		case KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		}
	}
	return dst
}

// Marshal returns the binary encoding of t.
func Marshal(t *Tuple) []byte {
	return AppendBinary(make([]byte, 0, 17+len(t.Values)*9), t)
}

// Unmarshal decodes a tuple previously produced by Marshal/AppendBinary.
func Unmarshal(data []byte) (*Tuple, error) {
	t, rest, err := consume(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return t, nil
}

// UnmarshalPair decodes two concatenated tuples, the encoding joiners
// use for join results (left tuple followed by right tuple).
func UnmarshalPair(data []byte) (*Tuple, *Tuple, error) {
	a, rest, err := consume(data)
	if err != nil {
		return nil, nil, err
	}
	b, rest, err := consume(rest)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes after pair", ErrCorrupt, len(rest))
	}
	return a, b, nil
}

func consume(data []byte) (*Tuple, []byte, error) {
	t := new(Tuple)
	rest, err := parseInto(t, data, nil)
	if err != nil {
		return nil, nil, err
	}
	return t, rest, nil
}

// parseInto decodes one tuple from the front of data into t, returning
// the unconsumed remainder. With a non-nil Decoder the value slice is
// carved out of the decoder's current slab instead of freshly
// allocated; on error the slab is left unchanged.
func parseInto(t *Tuple, data []byte, d *Decoder) ([]byte, error) {
	if len(data) < 17 {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	traced := data[0]&traceFlag != 0
	rel := Relation(data[0] &^ traceFlag)
	if rel != R && rel != S {
		return nil, fmt.Errorf("%w: bad relation byte %d", ErrCorrupt, data[0])
	}
	seq := binary.LittleEndian.Uint64(data[1:9])
	ts := int64(binary.LittleEndian.Uint64(data[9:17]))
	data = data[17:]
	var traceNS int64
	if traced {
		if len(data) < 8 {
			return nil, fmt.Errorf("%w: truncated trace stamp", ErrCorrupt)
		}
		traceNS = int64(binary.LittleEndian.Uint64(data[:8]))
		if traceNS == 0 {
			// A flagged-but-zero stamp would not round-trip (the encoder
			// only flags nonzero stamps); reject it as non-canonical.
			return nil, fmt.Errorf("%w: zero trace stamp", ErrCorrupt)
		}
		data = data[8:]
	}
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad value count", ErrCorrupt)
	}
	data = data[sz:]
	if n > uint64(len(data)) { // each value needs at least 1 byte
		return nil, fmt.Errorf("%w: value count %d exceeds payload", ErrCorrupt, n)
	}
	var values []Value
	base := 0
	if d != nil {
		values = d.valueSlab(int(n))
		base = len(values)
	} else {
		values = make([]Value, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		if len(data) < 1 {
			return nil, fmt.Errorf("%w: truncated value", ErrCorrupt)
		}
		kind := Kind(data[0])
		data = data[1:]
		switch kind {
		case KindInt:
			if len(data) < 8 {
				return nil, fmt.Errorf("%w: truncated int", ErrCorrupt)
			}
			values = append(values, Int(int64(binary.LittleEndian.Uint64(data))))
			data = data[8:]
		case KindFloat:
			if len(data) < 8 {
				return nil, fmt.Errorf("%w: truncated float", ErrCorrupt)
			}
			values = append(values, Float(math.Float64frombits(binary.LittleEndian.Uint64(data))))
			data = data[8:]
		case KindString:
			l, sz := binary.Uvarint(data)
			if sz <= 0 || l > uint64(len(data)-sz) {
				return nil, fmt.Errorf("%w: truncated string", ErrCorrupt)
			}
			data = data[sz:]
			values = append(values, String(string(data[:l])))
			data = data[l:]
		default:
			return nil, fmt.Errorf("%w: unknown value kind %d", ErrCorrupt, kind)
		}
	}
	if d != nil {
		d.values = values
		// Cap the tuple's view at its own values so a later append through
		// the tuple (which immutability forbids anyway) could never step on
		// the next tuple's slab region.
		values = values[base:len(values):len(values)]
	}
	*t = Tuple{Rel: rel, Seq: seq, TS: ts, Values: values, TraceNS: traceNS}
	return data, nil
}
