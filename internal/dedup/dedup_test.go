package dedup

import "testing"

func TestSeenOrAdd(t *testing.T) {
	s := New(4)
	k := Key{1, 2}
	if s.SeenOrAdd(k) {
		t.Fatal("fresh key reported seen")
	}
	if !s.SeenOrAdd(k) {
		t.Fatal("repeated key not suppressed")
	}
	if s.Suppressed() != 1 {
		t.Fatalf("suppressed = %d, want 1", s.Suppressed())
	}
}

func TestRotationBoundsMemory(t *testing.T) {
	s := New(8)
	for i := uint64(0); i < 100; i++ {
		s.Add(Key{i, 0})
	}
	if s.Len() > 16 {
		t.Fatalf("len = %d, want <= 2*cap", s.Len())
	}
	// Recent keys survive a rotation; ancient ones age out.
	if !s.Seen(Key{99, 0}) {
		t.Error("most recent key evicted")
	}
	if s.Seen(Key{0, 0}) {
		t.Error("ancient key still retained")
	}
}

func TestExplicitRotateAgesEntries(t *testing.T) {
	s := New(1 << 20)
	s.Add(Key{1, 0})
	s.Rotate()
	if !s.Seen(Key{1, 0}) {
		t.Error("entry lost after a single rotation")
	}
	s.Rotate()
	if s.Seen(Key{1, 0}) {
		t.Error("entry survived two rotations")
	}
	if s.Len() != 0 {
		t.Errorf("len = %d after draining both generations, want 0", s.Len())
	}
}

func TestRetentionAcrossOneRotation(t *testing.T) {
	s := New(4)
	s.Add(Key{1, 1})
	for i := uint64(10); i < 14; i++ { // forces one rotation
		s.Add(Key{i, 0})
	}
	if !s.Seen(Key{1, 1}) {
		t.Error("key evicted before two generations elapsed")
	}
}
