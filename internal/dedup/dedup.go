// Package dedup provides a bounded-memory set of recently seen keys,
// the idempotency filter that turns the broker's at-least-once
// redelivery into exactly-once processing: consumers remember the
// identity of every tuple (or result) they have already handled and
// suppress duplicates.
//
// Memory is bounded by generation rotation: keys live in a current and
// a previous map; when the current map reaches capacity it becomes the
// previous one and a fresh map starts. A key is therefore remembered
// for at least cap and at most 2*cap subsequent insertions — plenty for
// redelivery, which the broker performs promptly after a consumer
// crash, while old traffic ages out instead of growing without bound.
package dedup

// Key identifies one unit of work: (relation, seq) for tuples,
// (leftSeq, rightSeq) for join results.
type Key [2]uint64

// Set is the rotating two-generation set. It is not safe for
// concurrent use; callers serialize access (the joiner service mutex,
// the engine's single sink goroutine).
type Set struct {
	cap        int
	cur, prev  map[Key]struct{}
	suppressed int64
}

// DefaultCap is the per-generation capacity used when New is given a
// non-positive capacity: 64k keys × 2 generations ≈ 3 MiB worst case.
const DefaultCap = 1 << 16

// New creates a set that rotates generations every cap insertions.
func New(cap int) *Set {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Set{cap: cap, cur: make(map[Key]struct{})}
}

// Seen reports whether k was added within the retention horizon.
func (s *Set) Seen(k Key) bool {
	if _, ok := s.cur[k]; ok {
		return true
	}
	_, ok := s.prev[k]
	return ok
}

// Add records k, rotating generations when the current one is full.
func (s *Set) Add(k Key) {
	if len(s.cur) >= s.cap {
		s.prev = s.cur
		s.cur = make(map[Key]struct{}, s.cap/4)
	}
	s.cur[k] = struct{}{}
}

// SeenOrAdd records k and reports whether it was already present — the
// one-call form consumers use per delivery.
func (s *Set) SeenOrAdd(k Key) bool {
	if s.Seen(k) {
		s.suppressed++
		return true
	}
	s.Add(k)
	return false
}

// Suppressed returns how many SeenOrAdd calls found their key already
// present.
func (s *Set) Suppressed() int64 { return s.suppressed }

// Rotate forces a generation rotation regardless of how full the
// current one is: the current generation becomes the previous one and a
// fresh map starts, discarding what the old previous generation held.
// Callers with a time-like watermark (the joiner's reorder frontier)
// use this to age entries out by elapsed stamp-time instead of by
// insertion count, so the set stays bounded even when ingest is slow
// and the count-cap rotation never fires.
func (s *Set) Rotate() {
	s.prev = s.cur
	s.cur = make(map[Key]struct{}, len(s.prev)/4)
}

// State is a serializable snapshot of the set: the generation watermark
// a checkpoint manifest carries so a cold-restarted consumer still
// suppresses redeliveries of work it handled before the checkpoint.
type State struct {
	Cap        int
	Suppressed int64
	Cur, Prev  []Key
}

// Export snapshots the set's retained keys and generation split. Key
// order within a generation is unspecified.
func (s *Set) Export() State {
	st := State{Cap: s.cap, Suppressed: s.suppressed}
	st.Cur = make([]Key, 0, len(s.cur))
	for k := range s.cur {
		st.Cur = append(st.Cur, k)
	}
	st.Prev = make([]Key, 0, len(s.prev))
	for k := range s.prev {
		st.Prev = append(st.Prev, k)
	}
	return st
}

// FromState rebuilds a set from an exported snapshot, preserving the
// generation split so rotation resumes where it left off.
func FromState(st State) *Set {
	s := New(st.Cap)
	s.suppressed = st.Suppressed
	for _, k := range st.Cur {
		s.cur[k] = struct{}{}
	}
	if len(st.Prev) > 0 {
		s.prev = make(map[Key]struct{}, len(st.Prev))
		for _, k := range st.Prev {
			s.prev[k] = struct{}{}
		}
	}
	return s
}

// Len returns the number of retained keys (both generations).
func (s *Set) Len() int { return len(s.cur) + len(s.prev) }
