package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"bistream/internal/metrics"
)

func testRegistry() *metrics.Registry {
	r := metrics.NewRegistry()
	r.Counter("router.0.routed").Add(12)
	r.Gauge("broker.queue.depth").Set(3)
	r.GaugeFunc("engine.routers", func() float64 { return 2 })
	r.Meter("router.0.input_rate", time.Second).Observe(time.Now(), 5)
	h := r.Histogram("stage.e2e")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	return r
}

// parseProm is a minimal Prometheus text-format parser: it validates
// every line and returns sample values keyed by "name{labels}".
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	types := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			switch fields[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, fields[3])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unbalanced labels in %q", ln+1, key)
			}
			name = key[:i]
		}
		for i, c := range name {
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && i > 0)
			if !ok {
				t.Fatalf("line %d: invalid metric name %q", ln+1, name)
			}
		}
		v, _ := strconv.ParseFloat(valStr, 64)
		out[key] = v
	}
	if len(types) == 0 {
		t.Fatal("no TYPE comments in exposition")
	}
	return out
}

func TestWritePrometheusParsesBack(t *testing.T) {
	var sb strings.Builder
	WritePrometheus(&sb, testRegistry())
	samples := parseProm(t, sb.String())

	if v := samples["router_0_routed_total"]; v != 12 {
		t.Errorf("router_0_routed_total = %v, want 12", v)
	}
	if v := samples["broker_queue_depth"]; v != 3 {
		t.Errorf("broker_queue_depth = %v, want 3", v)
	}
	if v := samples["engine_routers"]; v != 2 {
		t.Errorf("engine_routers = %v, want 2", v)
	}
	if v := samples["router_0_input_rate_events_total"]; v != 5 {
		t.Errorf("meter events total = %v, want 5", v)
	}
	if v := samples["stage_e2e_count"]; v != 100 {
		t.Errorf("stage_e2e_count = %v, want 100", v)
	}
	if v := samples[`stage_e2e{quantile="0.5"}`]; v <= 0 {
		t.Errorf("stage_e2e p50 = %v, want > 0", v)
	}
	if v := samples["stage_e2e_sum"]; v != 5050*1000 {
		t.Errorf("stage_e2e_sum = %v, want %d", v, 5050*1000)
	}
}

func TestServerEndpoints(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if samples := parseProm(t, body); samples["router_0_routed_total"] != 12 {
		t.Errorf("served /metrics missing counter: %v", samples)
	}

	body, ct = get("/debug/vars")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/vars content type = %q", ct)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if v, ok := vars["router.0.routed"].(float64); !ok || v != 12 {
		t.Errorf("vars[router.0.routed] = %v", vars["router.0.routed"])
	}
	if _, ok := vars["stage.e2e"].(map[string]any); !ok {
		t.Errorf("vars[stage.e2e] = %T, want histogram object", vars["stage.e2e"])
	}

	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"joiner.R.2.window_bytes": "joiner_R_2_window_bytes",
		"0weird":                  "_weird",
		"ok_name:x9":              "ok_name:x9",
		"spaces and-dashes":       "spaces_and_dashes",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatFloatIntegral(t *testing.T) {
	if got := formatFloat(1234567); got != "1234567" {
		t.Errorf("formatFloat(1234567) = %q", got)
	}
	if got := formatFloat(2.5); got != "2.5" {
		t.Errorf("formatFloat(2.5) = %q", got)
	}
}
