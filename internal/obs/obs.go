// Package obs exposes a metrics.Registry over HTTP: Prometheus text
// format at /metrics, a JSON snapshot at /debug/vars, and the standard
// net/http/pprof profiling endpoints. It is mounted by the daemons
// (brokerd, routerd, joinerd), by the in-process engine when
// Config.MetricsAddr is set, and by anything else holding a registry.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"bistream/internal/metrics"
)

// Register mounts the observability endpoints on mux:
//
//	GET /metrics        Prometheus text exposition format
//	GET /debug/vars     JSON snapshot of every instrument
//	GET /debug/pprof/…  the standard Go profiling handlers
func Register(mux *http.ServeMux, reg *metrics.Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, reg)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Vars(reg))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a standalone handler serving the Register endpoints.
func Handler(reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	Register(mux, reg)
	return mux
}

// Server is a running observability HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for the registry on addr (":0" picks a
// free port; Addr reports the bound address). It returns immediately;
// Close shuts the listener down.
func Serve(addr string, reg *metrics.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the server's bound address ("127.0.0.1:43641").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// PromName sanitizes a hierarchical instrument name into a valid
// Prometheus metric name: dots and any other invalid runes become
// underscores, and a leading digit gains an underscore prefix.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		valid := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !valid {
			b.WriteByte('_')
			continue
		}
		b.WriteRune(c)
	}
	return b.String()
}

// WritePrometheus gathers the registry and writes the text exposition
// format. Counters export as "<name>_total"; meters as a rate gauge
// plus an event-count counter; histograms as summaries (quantile
// series, _sum, _count) with _min/_max gauges.
func WritePrometheus(w io.Writer, reg *metrics.Registry) {
	for _, s := range reg.Gather() {
		name := PromName(s.Name)
		switch s.Kind {
		case metrics.KindCounterMetric:
			fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %s\n", name, name, formatFloat(s.Value))
		case metrics.KindGaugeMetric, metrics.KindGaugeFuncMetric:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(s.Value))
		case metrics.KindMeterMetric:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(s.Value))
			fmt.Fprintf(w, "# TYPE %s_events_total counter\n%s_events_total %d\n", name, name, s.Total)
		case metrics.KindHistogramMetric:
			h := s.Hist
			if h == nil {
				continue
			}
			fmt.Fprintf(w, "# TYPE %s summary\n", name)
			fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", name, h.P50)
			fmt.Fprintf(w, "%s{quantile=\"0.95\"} %d\n", name, h.P95)
			fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", name, h.P99)
			fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
			fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
			fmt.Fprintf(w, "# TYPE %s_min gauge\n%s_min %d\n", name, name, h.Min)
			fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %d\n", name, name, h.Max)
		}
	}
}

// formatFloat renders integral values without an exponent so counters
// stay exact, falling back to %g for true floats.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Vars renders the gathered samples as a JSON-marshalable map keyed by
// the raw (unsanitized) instrument name, the /debug/vars payload.
func Vars(reg *metrics.Registry) map[string]any {
	out := make(map[string]any)
	for _, s := range reg.Gather() {
		switch s.Kind {
		case metrics.KindMeterMetric:
			out[s.Name] = map[string]any{"rate": s.Value, "total": s.Total}
		case metrics.KindHistogramMetric:
			if s.Hist != nil {
				out[s.Name] = *s.Hist
			}
		default:
			out[s.Name] = s.Value
		}
	}
	return out
}

// SortedNames returns the gathered sample names in order (test helper
// and debug aid).
func SortedNames(reg *metrics.Registry) []string {
	samples := reg.Gather()
	names := make([]string, len(samples))
	for i, s := range samples {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
