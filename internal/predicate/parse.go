package predicate

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a predicate from a compact spec string, the format the
// command-line tools accept:
//
//	equi(i,j)        R[i] =  S[j]
//	band(i,j,w)      |R[i] - S[j]| <= w
//	theta(i,op,j)    R[i] op S[j]   with op ∈ {<, <=, >, >=, !=}
//
// Attribute positions are zero-based.
func Parse(spec string) (Predicate, error) {
	spec = strings.TrimSpace(spec)
	open := strings.IndexByte(spec, '(')
	if open < 0 || !strings.HasSuffix(spec, ")") {
		return nil, fmt.Errorf("predicate: bad spec %q (want kind(args))", spec)
	}
	kind := strings.TrimSpace(spec[:open])
	args := strings.Split(spec[open+1:len(spec)-1], ",")
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	switch kind {
	case "equi":
		if len(args) != 2 {
			return nil, fmt.Errorf("predicate: equi wants 2 args, got %d", len(args))
		}
		r, err1 := strconv.Atoi(args[0])
		s, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil || r < 0 || s < 0 {
			return nil, fmt.Errorf("predicate: bad equi attrs %q", spec)
		}
		return NewEqui(r, s), nil
	case "band":
		if len(args) != 3 {
			return nil, fmt.Errorf("predicate: band wants 3 args, got %d", len(args))
		}
		r, err1 := strconv.Atoi(args[0])
		s, err2 := strconv.Atoi(args[1])
		w, err3 := strconv.ParseFloat(args[2], 64)
		if err1 != nil || err2 != nil || err3 != nil || r < 0 || s < 0 {
			return nil, fmt.Errorf("predicate: bad band spec %q", spec)
		}
		return NewBand(r, s, w), nil
	case "theta":
		if len(args) != 3 {
			return nil, fmt.Errorf("predicate: theta wants 3 args, got %d", len(args))
		}
		r, err1 := strconv.Atoi(args[0])
		s, err2 := strconv.Atoi(args[2])
		if err1 != nil || err2 != nil || r < 0 || s < 0 {
			return nil, fmt.Errorf("predicate: bad theta attrs %q", spec)
		}
		var op Op
		switch args[1] {
		case "<":
			op = LT
		case "<=":
			op = LE
		case ">":
			op = GT
		case ">=":
			op = GE
		case "!=":
			op = NE
		default:
			return nil, fmt.Errorf("predicate: unknown operator %q", args[1])
		}
		return NewTheta(r, s, op), nil
	default:
		return nil, fmt.Errorf("predicate: unknown kind %q", kind)
	}
}
