package predicate

import (
	"strings"
	"testing"
	"testing/quick"

	"bistream/internal/tuple"
)

func rt(v tuple.Value) *tuple.Tuple { return tuple.New(tuple.R, 1, 0, v) }
func st(v tuple.Value) *tuple.Tuple { return tuple.New(tuple.S, 2, 0, v) }

func TestEqui(t *testing.T) {
	p := NewEqui(0, 0)
	if !p.Match(rt(tuple.Int(5)), st(tuple.Int(5))) {
		t.Error("equal ints should match")
	}
	if p.Match(rt(tuple.Int(5)), st(tuple.Int(6))) {
		t.Error("unequal ints should not match")
	}
	if !p.Match(rt(tuple.Int(5)), st(tuple.Float(5.0))) {
		t.Error("int/float equality should match")
	}
	if !p.Partitionable() {
		t.Error("equi should be partitionable")
	}
	if p.IndexAttr(tuple.R) != 0 || p.IndexAttr(tuple.S) != 0 {
		t.Error("IndexAttr wrong")
	}
	plan := p.Plan(st(tuple.Int(7)))
	if plan.Kind != ProbePoint || !plan.Key.Equal(tuple.Int(7)) {
		t.Errorf("plan = %+v", plan)
	}
	if !strings.Contains(p.String(), "=") {
		t.Errorf("String = %q", p.String())
	}
}

func TestEquiDifferentAttrs(t *testing.T) {
	p := NewEqui(1, 0)
	r := tuple.New(tuple.R, 1, 0, tuple.String("pad"), tuple.Int(9))
	s := tuple.New(tuple.S, 2, 0, tuple.Int(9))
	if !p.Match(r, s) {
		t.Error("should match on R[1] = S[0]")
	}
	if plan := p.Plan(r); plan.Kind != ProbePoint || !plan.Key.Equal(tuple.Int(9)) {
		t.Errorf("plan for R probe = %+v", plan)
	}
}

func TestBand(t *testing.T) {
	p := NewBand(0, 0, 2.5)
	cases := []struct {
		r, s float64
		want bool
	}{
		{10, 10, true},
		{10, 12.5, true},
		{10, 12.6, false},
		{10, 7.5, true},
		{10, 7.4, false},
	}
	for _, c := range cases {
		if got := p.Match(rt(tuple.Float(c.r)), st(tuple.Float(c.s))); got != c.want {
			t.Errorf("Band(%v,%v) = %v, want %v", c.r, c.s, got, c.want)
		}
	}
	if p.Partitionable() {
		t.Error("band should not be partitionable")
	}
	plan := p.Plan(st(tuple.Float(10)))
	if plan.Kind != ProbeRange || plan.Lo.AsFloat() != 7.5 || plan.Hi.AsFloat() != 12.5 || !plan.LoInc || !plan.HiInc {
		t.Errorf("plan = %+v", plan)
	}
	if !p.Match(rt(tuple.Int(10)), st(tuple.Int(12))) {
		t.Error("band over ints should work")
	}
	if p.Match(rt(tuple.Value{}), st(tuple.Int(1))) {
		t.Error("invalid values must not match")
	}
}

func TestBandNegativeWidthNormalizes(t *testing.T) {
	p := NewBand(0, 0, -3)
	if p.Width != 3 {
		t.Errorf("Width = %v", p.Width)
	}
}

func TestBandSymmetric(t *testing.T) {
	p := NewBand(0, 0, 5)
	f := func(a, b int16) bool {
		m1 := p.Match(rt(tuple.Int(int64(a))), st(tuple.Int(int64(b))))
		m2 := p.Match(rt(tuple.Int(int64(b))), st(tuple.Int(int64(a))))
		return m1 == m2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThetaMatch(t *testing.T) {
	mk := func(op Op) Theta { return NewTheta(0, 0, op) }
	cases := []struct {
		op   Op
		r, s int64
		want bool
	}{
		{LT, 1, 2, true}, {LT, 2, 2, false}, {LT, 3, 2, false},
		{LE, 1, 2, true}, {LE, 2, 2, true}, {LE, 3, 2, false},
		{GT, 3, 2, true}, {GT, 2, 2, false}, {GT, 1, 2, false},
		{GE, 3, 2, true}, {GE, 2, 2, true}, {GE, 1, 2, false},
		{NE, 1, 2, true}, {NE, 2, 2, false},
	}
	for _, c := range cases {
		p := mk(c.op)
		if got := p.Match(rt(tuple.Int(c.r)), st(tuple.Int(c.s))); got != c.want {
			t.Errorf("R %v S with (%d,%d) = %v, want %v", c.op, c.r, c.s, got, c.want)
		}
	}
	if mk(LT).Partitionable() {
		t.Error("theta should not be partitionable")
	}
}

func TestThetaPlanDirections(t *testing.T) {
	p := NewTheta(0, 0, LT) // R < S
	// Probing the R index with an S tuple: find stored R values < s.
	plan := p.Plan(st(tuple.Int(10)))
	if plan.Kind != ProbeRange || plan.Lo.IsValid() || !plan.Hi.Equal(tuple.Int(10)) || plan.HiInc {
		t.Errorf("S-probe plan = %+v", plan)
	}
	// Probing the S index with an R tuple: find stored S values > r.
	plan = p.Plan(rt(tuple.Int(10)))
	if plan.Kind != ProbeRange || plan.Hi.IsValid() || !plan.Lo.Equal(tuple.Int(10)) || plan.LoInc {
		t.Errorf("R-probe plan = %+v", plan)
	}
	// GE flips to LE.
	p = NewTheta(0, 0, GE)
	plan = p.Plan(rt(tuple.Int(3)))
	if !plan.Hi.Equal(tuple.Int(3)) || !plan.HiInc {
		t.Errorf("GE R-probe plan = %+v", plan)
	}
	// NE scans everything.
	if plan := NewTheta(0, 0, NE).Plan(st(tuple.Int(1))); plan.Kind != ProbeAll {
		t.Errorf("NE plan = %+v", plan)
	}
}

// TestThetaPlanSoundness is the key invariant: every matching stored
// tuple must be covered by the plan the probe generates.
func TestThetaPlanSoundness(t *testing.T) {
	ops := []Op{LT, LE, GT, GE, NE}
	f := func(stored, probe int16, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		p := NewTheta(0, 0, op)
		// Case 1: stored R tuple, S probe.
		r, s := rt(tuple.Int(int64(stored))), st(tuple.Int(int64(probe)))
		if p.Match(r, s) && !planCovers(p.Plan(s), tuple.Int(int64(stored))) {
			return false
		}
		// Case 2: stored S tuple, R probe.
		r2, s2 := rt(tuple.Int(int64(probe))), st(tuple.Int(int64(stored)))
		if p.Match(r2, s2) && !planCovers(p.Plan(r2), tuple.Int(int64(stored))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBandPlanSoundness(t *testing.T) {
	f := func(stored, probe int16, width uint8) bool {
		p := NewBand(0, 0, float64(width))
		r, s := rt(tuple.Int(int64(stored))), st(tuple.Int(int64(probe)))
		if p.Match(r, s) && !planCovers(p.Plan(s), tuple.Int(int64(stored))) {
			return false
		}
		if p.Match(r, s) && !planCovers(p.Plan(r), tuple.Int(int64(probe))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// planCovers reports whether a plan's range/point includes the value.
func planCovers(plan Plan, v tuple.Value) bool {
	switch plan.Kind {
	case ProbeAll:
		return true
	case ProbePoint:
		return plan.Key.Equal(v)
	default:
		if plan.Lo.IsValid() {
			c := v.Compare(plan.Lo)
			if c < 0 || (c == 0 && !plan.LoInc) {
				return false
			}
		}
		if plan.Hi.IsValid() {
			c := v.Compare(plan.Hi)
			if c > 0 || (c == 0 && !plan.HiInc) {
				return false
			}
		}
		return true
	}
}

func TestFunc(t *testing.T) {
	p := NewFunc("same parity", func(r, s *tuple.Tuple) bool {
		return r.Value(0).AsInt()%2 == s.Value(0).AsInt()%2
	})
	if !p.Match(rt(tuple.Int(2)), st(tuple.Int(4))) {
		t.Error("same parity should match")
	}
	if p.Match(rt(tuple.Int(2)), st(tuple.Int(3))) {
		t.Error("different parity should not match")
	}
	if p.Plan(rt(tuple.Int(1))).Kind != ProbeAll {
		t.Error("Func must plan a full scan")
	}
	if p.IndexAttr(tuple.R) != -1 {
		t.Error("Func has no index attr")
	}
	if p.Partitionable() {
		t.Error("Func is not partitionable")
	}
	if p.String() != "same parity" {
		t.Errorf("String = %q", p.String())
	}
	if (Func{Fn: p.Fn}).String() == "" {
		t.Error("fallback description empty")
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{LT: "<", LE: "<=", GT: ">", GE: ">=", NE: "!="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), s)
		}
	}
	if Op(99).String() != "?" {
		t.Error("unknown op should render ?")
	}
}
