package predicate

import (
	"testing"

	"bistream/internal/tuple"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		spec  string
		match bool // does (R:5, S:5) match?
	}{
		{"equi(0,0)", true},
		{"equi( 0 , 0 )", true},
		{"band(0,0,1)", true},
		{"band(0,0,0.0)", true},
		{"theta(0,<=,0)", true},
		{"theta(0,<,0)", false},
		{"theta(0,!=,0)", false},
		{"theta(0,>=,0)", true},
		{"theta(0,>,0)", false},
	}
	r := tuple.New(tuple.R, 1, 0, tuple.Int(5))
	s := tuple.New(tuple.S, 2, 0, tuple.Int(5))
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q) = %v", c.spec, err)
			continue
		}
		if got := p.Match(r, s); got != c.match {
			t.Errorf("Parse(%q).Match(5,5) = %v, want %v", c.spec, got, c.match)
		}
	}
}

func TestParseRoundTripString(t *testing.T) {
	p, err := Parse("band(1,2,3.5)")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := p.(Band)
	if !ok || b.RAttr != 1 || b.SAttr != 2 || b.Width != 3.5 {
		t.Errorf("parsed = %#v", p)
	}
}

func TestParseInvalid(t *testing.T) {
	invalid := []string{
		"", "equi", "equi(0)", "equi(0,1,2)", "equi(a,b)", "equi(-1,0)",
		"band(0,0)", "band(0,0,x)", "theta(0,?,0)", "theta(0,<)",
		"hash(0,0)", "equi(0,0", "(0,0)",
	}
	for _, spec := range invalid {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}
