// Package predicate defines join predicates and the probe plans they
// induce over the in-memory indexes.
//
// The join-biclique model supports arbitrary theta-joins because each
// edge of the biclique can compute a full Cartesian comparison; the
// predicate abstraction additionally tells the engine how to do better
// than that: an equi-join probes a hash index point-wise and is
// hash-partitionable (low selectivity → hash routing), while band and
// inequality joins probe an ordered index by range and require the
// random (broadcast) routing strategy.
package predicate

import (
	"fmt"
	"math"

	"bistream/internal/tuple"
)

// Predicate decides whether an R tuple joins with an S tuple, and
// exposes enough structure for indexing and routing decisions.
type Predicate interface {
	// Match reports whether the pair joins. r must be from relation R
	// and s from relation S.
	Match(r, s *tuple.Tuple) bool
	// IndexAttr returns the indexed attribute position for tuples of
	// the given relation, or -1 when the predicate cannot use an index
	// on that side (full scan).
	IndexAttr(rel tuple.Relation) int
	// Plan builds the probe plan for finding matches of probe (a tuple
	// of relation probe.Rel) inside the index holding the opposite
	// relation.
	Plan(probe *tuple.Tuple) Plan
	// Partitionable reports whether matching pairs always agree on the
	// hash of their join attributes, enabling hash-partition routing.
	Partitionable() bool
	// String describes the predicate.
	String() string
}

// PlanKind selects the index access path.
type PlanKind uint8

// Access paths.
const (
	ProbePoint PlanKind = iota // hash lookup on Key
	ProbeRange                 // ordered scan of [Lo, Hi]
	ProbeAll                   // full scan
)

// Plan tells an index how to locate join candidates. Candidates are
// verified with Predicate.Match, so a plan may over-approximate.
type Plan struct {
	Kind PlanKind
	Key  tuple.Value // ProbePoint
	// KeyHash optionally carries Key.Hash(), computed once at plan build
	// so a point probe walking a chain of hash sub-indexes does not
	// rehash per sub-index. Zero means "not precomputed": consumers fall
	// back to Key.Hash(), which stays correct even for a key whose real
	// hash is zero (the recomputation returns the same value).
	KeyHash uint64
	Lo      tuple.Value // ProbeRange; invalid Value = unbounded
	Hi      tuple.Value // ProbeRange; invalid Value = unbounded
	LoInc   bool
	HiInc   bool
}

// HashOfKey returns the point-probe key's hash, using the precomputed
// KeyHash when present.
func (p Plan) HashOfKey() uint64 {
	if p.KeyHash != 0 {
		return p.KeyHash
	}
	return p.Key.Hash()
}

// Equi is the equality join R.attr = S.attr.
type Equi struct {
	RAttr, SAttr int
}

// NewEqui builds an equality predicate over the given attribute
// positions.
func NewEqui(rAttr, sAttr int) Equi { return Equi{RAttr: rAttr, SAttr: sAttr} }

// Match implements Predicate.
func (p Equi) Match(r, s *tuple.Tuple) bool {
	return r.Value(p.RAttr).Equal(s.Value(p.SAttr))
}

// IndexAttr implements Predicate.
func (p Equi) IndexAttr(rel tuple.Relation) int {
	if rel == tuple.R {
		return p.RAttr
	}
	return p.SAttr
}

// Plan implements Predicate: a point probe with the probing tuple's own
// join attribute.
func (p Equi) Plan(probe *tuple.Tuple) Plan {
	key := probe.Value(p.IndexAttr(probe.Rel))
	return Plan{Kind: ProbePoint, Key: key, KeyHash: key.Hash()}
}

// Partitionable implements Predicate: equality is hash-partitionable.
func (p Equi) Partitionable() bool { return true }

func (p Equi) String() string { return fmt.Sprintf("R[%d] = S[%d]", p.RAttr, p.SAttr) }

// Band is the band join |R.attr - S.attr| <= Width over numeric
// attributes, the classic high-selectivity predicate of streaming
// evaluations.
type Band struct {
	RAttr, SAttr int
	Width        float64
}

// NewBand builds a band predicate.
func NewBand(rAttr, sAttr int, width float64) Band {
	return Band{RAttr: rAttr, SAttr: sAttr, Width: math.Abs(width)}
}

// Match implements Predicate.
func (p Band) Match(r, s *tuple.Tuple) bool {
	rv, sv := r.Value(p.RAttr), s.Value(p.SAttr)
	if !rv.IsValid() || !sv.IsValid() {
		return false
	}
	return math.Abs(rv.AsFloat()-sv.AsFloat()) <= p.Width
}

// IndexAttr implements Predicate.
func (p Band) IndexAttr(rel tuple.Relation) int {
	if rel == tuple.R {
		return p.RAttr
	}
	return p.SAttr
}

// Plan implements Predicate: scan [v-Width, v+Width].
func (p Band) Plan(probe *tuple.Tuple) Plan {
	v := probe.Value(p.IndexAttr(probe.Rel)).AsFloat()
	return Plan{
		Kind:  ProbeRange,
		Lo:    tuple.Float(v - p.Width),
		Hi:    tuple.Float(v + p.Width),
		LoInc: true,
		HiInc: true,
	}
}

// Partitionable implements Predicate: a band join can match across hash
// partitions, so it is not partitionable.
func (p Band) Partitionable() bool { return false }

func (p Band) String() string {
	return fmt.Sprintf("|R[%d] - S[%d]| <= %g", p.RAttr, p.SAttr, p.Width)
}

// Op is a comparison operator for Theta predicates.
type Op uint8

// Comparison operators, applied as R.attr Op S.attr.
const (
	LT Op = iota
	LE
	GT
	GE
	NE
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case NE:
		return "!="
	default:
		return "?"
	}
}

// Theta is the inequality join R.attr Op S.attr.
type Theta struct {
	RAttr, SAttr int
	Op           Op
}

// NewTheta builds an inequality predicate.
func NewTheta(rAttr, sAttr int, op Op) Theta {
	return Theta{RAttr: rAttr, SAttr: sAttr, Op: op}
}

// Match implements Predicate.
func (p Theta) Match(r, s *tuple.Tuple) bool {
	rv, sv := r.Value(p.RAttr), s.Value(p.SAttr)
	if !rv.IsValid() || !sv.IsValid() {
		return false
	}
	c := rv.Compare(sv)
	switch p.Op {
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	case NE:
		return c != 0
	default:
		return false
	}
}

// IndexAttr implements Predicate.
func (p Theta) IndexAttr(rel tuple.Relation) int {
	if rel == tuple.R {
		return p.RAttr
	}
	return p.SAttr
}

// Plan implements Predicate. The plan direction flips with the probing
// side: probing the R index with an S tuple under R.attr < S.attr means
// scanning R values below the S value.
func (p Theta) Plan(probe *tuple.Tuple) Plan {
	v := probe.Value(p.IndexAttr(probe.Rel))
	op := p.Op
	if probe.Rel == tuple.R {
		// Probing the S index: invert the comparison to S.attr ? R.attr.
		switch op {
		case LT:
			op = GT
		case LE:
			op = GE
		case GT:
			op = LT
		case GE:
			op = LE
		}
	}
	// Now op expresses indexedValue Op probeValue.
	switch op {
	case LT:
		return Plan{Kind: ProbeRange, Hi: v, HiInc: false}
	case LE:
		return Plan{Kind: ProbeRange, Hi: v, HiInc: true}
	case GT:
		return Plan{Kind: ProbeRange, Lo: v, LoInc: false}
	case GE:
		return Plan{Kind: ProbeRange, Lo: v, LoInc: true}
	default: // NE: nearly everything matches; scan all and verify
		return Plan{Kind: ProbeAll}
	}
}

// Partitionable implements Predicate.
func (p Theta) Partitionable() bool { return false }

func (p Theta) String() string {
	return fmt.Sprintf("R[%d] %s S[%d]", p.RAttr, p.Op, p.SAttr)
}

// Func wraps an arbitrary matching function. It forces full scans and
// random routing, the model's worst case, which the biclique still
// supports because every R/S pair meets on some edge.
type Func struct {
	Fn   func(r, s *tuple.Tuple) bool
	Desc string
}

// NewFunc wraps fn with a description for diagnostics.
func NewFunc(desc string, fn func(r, s *tuple.Tuple) bool) Func {
	return Func{Fn: fn, Desc: desc}
}

// Match implements Predicate.
func (p Func) Match(r, s *tuple.Tuple) bool { return p.Fn(r, s) }

// IndexAttr implements Predicate: no index help.
func (p Func) IndexAttr(tuple.Relation) int { return -1 }

// Plan implements Predicate: full scan.
func (p Func) Plan(*tuple.Tuple) Plan { return Plan{Kind: ProbeAll} }

// Partitionable implements Predicate.
func (p Func) Partitionable() bool { return false }

func (p Func) String() string {
	if p.Desc != "" {
		return p.Desc
	}
	return "custom predicate"
}
