package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"bistream/internal/cluster"
	"bistream/internal/core"
	"bistream/internal/metrics"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/vclock"
	"bistream/internal/workload"
)

// AutoscaleConfig parameterizes the dynamic-scaling experiments of
// Figures 20 and 21: a real join engine processes the stepped input
// stream while simulated joiner pods expose their genuine CPU/memory
// load to a Horizontal Pod Autoscaler, whose replica decisions feed
// back into the engine's joiner groups.
type AutoscaleConfig struct {
	// Duration is the experiment length in virtual time (60 minutes in
	// the text).
	Duration time.Duration
	// Profile is the input-rate schedule.
	Profile workload.RateProfile
	// WindowSpan is the sliding window (10 minutes in the text).
	WindowSpan time.Duration
	// Target is the HPA metric target (80% CPU for Fig. 20, 520 MB
	// memory for Fig. 21).
	Target cluster.Target
	// MinPods/MaxPods bound each joiner deployment (1 and 3).
	MinPods, MaxPods int
	// Keys is the join-attribute domain (large → low selectivity, the
	// "single equi-join query" of §5.2).
	Keys int64
	// PayloadBytes pads tuples so window memory is lifelike.
	PayloadBytes int
	// PodCPURequestMilli is each joiner pod's CPU request.
	PodCPURequestMilli int64
	// PodMemRequest is each joiner pod's memory request.
	PodMemRequest int64
	// CPUMilliPerWork converts a joiner's work rate (work units/s) into
	// simulated millicores. Calibrated so 300 tuples/s on one joiner
	// shows ≈145% utilization of a 200m request, matching §5.2.
	CPUMilliPerWork float64
	// HeapPolicy models the pods' JVM footprint behaviour (memory
	// experiments); zero value means the tuned policy of §5.2.
	HeapPolicy cluster.HeapPolicy
	// TickPeriod is the virtual driver step (1s).
	TickPeriod time.Duration
	// ScrapePeriod is the metrics/HPA control period (30s).
	ScrapePeriod time.Duration
	// StabilizationWindow delays scale-down decisions.
	StabilizationWindow time.Duration
	// Nodes is the simulated cluster size (8 in the text).
	Nodes int
	// Seed makes the workload reproducible.
	Seed int64
}

// Fig20Config returns the CPU-autoscaling configuration of Figure 20.
func Fig20Config() AutoscaleConfig {
	return AutoscaleConfig{
		Duration:            60 * time.Minute,
		Profile:             workload.Fig20Profile(),
		WindowSpan:          10 * time.Minute,
		Target:              cluster.Target{Resource: cluster.CPU, AverageUtilization: 80},
		MinPods:             1,
		MaxPods:             3,
		Keys:                100_000,
		PayloadBytes:        64,
		PodCPURequestMilli:  200,
		PodMemRequest:       926 << 20,
		CPUMilliPerWork:     0.65,
		HeapPolicy:          cluster.TunedHeapPolicy(),
		TickPeriod:          time.Second,
		ScrapePeriod:        30 * time.Second,
		StabilizationWindow: 3 * time.Minute,
		Nodes:               8,
		Seed:                20,
	}
}

// Fig21Config returns the memory-autoscaling configuration of
// Figure 21: the HPA watches the pods' mapped JVM heap against a raw
// 520 MB target.
func Fig21Config() AutoscaleConfig {
	cfg := Fig20Config()
	cfg.Profile = workload.Fig21Profile()
	cfg.Target = cluster.Target{Resource: cluster.Memory, AverageValue: 520 << 20}
	// ≈445 MB live set per joiner at 400 tuples/s → ≈580 MB mapped heap,
	// crossing the 520 MB target; at 300 tuples/s the mapped heap
	// plateaus near 435 MB, bounded by window discarding.
	cfg.PayloadBytes = 3600
	cfg.Seed = 21
	return cfg
}

func (c *AutoscaleConfig) applyDefaults() error {
	if c.Duration <= 0 || c.WindowSpan <= 0 {
		return fmt.Errorf("experiments: duration and window must be positive")
	}
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if c.MinPods <= 0 {
		c.MinPods = 1
	}
	if c.MaxPods < c.MinPods {
		c.MaxPods = c.MinPods
	}
	if c.Keys <= 0 {
		c.Keys = 100_000
	}
	if c.PodCPURequestMilli <= 0 {
		c.PodCPURequestMilli = 200
	}
	if c.PodMemRequest <= 0 {
		c.PodMemRequest = 926 << 20
	}
	if c.CPUMilliPerWork <= 0 {
		c.CPUMilliPerWork = 0.65
	}
	if c.HeapPolicy == (cluster.HeapPolicy{}) {
		c.HeapPolicy = cluster.TunedHeapPolicy()
	}
	if c.TickPeriod <= 0 {
		c.TickPeriod = time.Second
	}
	if c.ScrapePeriod <= 0 {
		c.ScrapePeriod = 30 * time.Second
	}
	if c.StabilizationWindow <= 0 {
		c.StabilizationWindow = 3 * time.Minute
	}
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	return nil
}

// AutoscaleResult captures the run's time series and summary.
type AutoscaleResult struct {
	// Recorder holds the plotted series: "rate" (tuples/s),
	// "joiner_r_pods", "joiner_s_pods", "cpu_pct" (mean R-joiner
	// utilization %), "mem_mb" (mean R-joiner mapped heap MiB).
	Recorder *metrics.Recorder
	// ReplicaPath is the sequence of distinct joiner-r replica counts.
	ReplicaPath []int
	// MaxReplicas is the peak joiner-r replica count.
	MaxReplicas int
	// FinalReplicas is the count at the end of the run.
	FinalReplicas int
	// PeakMemMB / FinalMemMB summarize the memory series.
	PeakMemMB, FinalMemMB float64
	// Results is the number of join results produced.
	Results int64
	// TuplesIn is the number of tuples ingested.
	TuplesIn int64
}

// RunFig20 executes the CPU-based dynamic scaling experiment.
func RunFig20() (*AutoscaleResult, error) { return RunAutoscale(Fig20Config()) }

// RunFig21 executes the memory-based dynamic scaling experiment.
func RunFig21() (*AutoscaleResult, error) { return RunAutoscale(Fig21Config()) }

// RunAutoscale drives the coupled engine+cluster simulation.
func RunAutoscale(cfg AutoscaleConfig) (*AutoscaleResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	sim := vclock.NewSim(time.Time{})
	var resultCount atomic.Int64
	eng, err := core.New(core.Config{
		Predicate:           predicate.NewEqui(0, 0),
		Window:              cfg.WindowSpan,
		Routers:             2,
		RJoiners:            cfg.MinPods,
		SJoiners:            cfg.MinPods,
		PunctuationInterval: 2 * time.Millisecond,
		Clock:               sim,
		OnResult:            func(tuple.JoinResult) { resultCount.Add(1) },
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	defer eng.Stop()

	cl := cluster.New()
	cl.AddStandardNodes(cfg.Nodes)
	ms := cl.NewMetricsServer()

	podSpec := func(name string) cluster.PodSpec {
		return cluster.PodSpec{
			Image:    "eangelog/" + name + "-service",
			Requests: cluster.ResourceList{MilliCPU: cfg.PodCPURequestMilli, MemBytes: cfg.PodMemRequest},
			Labels:   map[string]string{"run": "biclique-" + name},
		}
	}
	// Fixed-size tiers for completeness of the deployment picture.
	rabbit := cl.NewDeployment("biclique-rabbitmq", podSpec("rabbitmq"), 1, cluster.PodHooks{})
	rabbit.Reconcile(sim.Now())
	routerDep := cl.NewDeployment("biclique-router", podSpec("router"), 2, cluster.PodHooks{})
	routerDep.Reconcile(sim.Now())

	// Joiner deployments: each pod's usage comes from the live stats of
	// the engine member it is bound to (same index, LIFO on both sides).
	bind := newPodBinder(eng, sim, cfg)
	joinerR := cl.NewDeployment("biclique-joiner-r", podSpec("join-r-processing"), cfg.MinPods, bind.hooks(tuple.R))
	joinerS := cl.NewDeployment("biclique-joiner-s", podSpec("join-s-processing"), cfg.MinPods, bind.hooks(tuple.S))
	joinerR.Reconcile(sim.Now())
	joinerS.Reconcile(sim.Now())

	hpaR, err := cluster.NewHPA("biclique-joiner-r", joinerR, cfg.MinPods, cfg.MaxPods, cfg.Target)
	if err != nil {
		return nil, err
	}
	hpaS, err := cluster.NewHPA("biclique-joiner-s", joinerS, cfg.MinPods, cfg.MaxPods, cfg.Target)
	if err != nil {
		return nil, err
	}
	hpaR.StabilizationWindow = cfg.StabilizationWindow
	hpaS.StabilizationWindow = cfg.StabilizationWindow

	gen, err := workload.New(workload.Config{
		Profile:      cfg.Profile,
		Keys:         workload.Uniform{N: cfg.Keys},
		PayloadBytes: cfg.PayloadBytes,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	rec := metrics.NewRecorder()
	res := &AutoscaleResult{Recorder: rec}
	record := func(now time.Time) {
		rec.Record("hpa_ratio", now, hpaR.CurrentRatio())
		elapsed := now.Sub(time.Unix(0, 0).UTC())
		rec.Record("rate", now, cfg.Profile.At(elapsed))
		rPods := joinerR.Pods()
		rec.Record("joiner_r_pods", now, float64(len(rPods)))
		rec.Record("joiner_s_pods", now, float64(len(joinerS.Pods())))
		var cpuSum, memSum float64
		n := 0
		for _, p := range rPods {
			u := p.Usage()
			cpuSum += float64(u.MilliCPU) / float64(cfg.PodCPURequestMilli) * 100
			memSum += float64(u.MemBytes) / (1 << 20)
			n++
		}
		if n > 0 {
			rec.Record("cpu_pct", now, cpuSum/float64(n))
			rec.Record("mem_mb", now, memSum/float64(n))
		}
		if cur := len(rPods); len(res.ReplicaPath) == 0 || res.ReplicaPath[len(res.ReplicaPath)-1] != cur {
			res.ReplicaPath = append(res.ReplicaPath, cur)
		}
		if len(rPods) > res.MaxReplicas {
			res.MaxReplicas = len(rPods)
		}
	}

	steps := int(cfg.Duration / cfg.TickPeriod)
	scrapeEvery := int(cfg.ScrapePeriod / cfg.TickPeriod)
	if scrapeEvery < 1 {
		scrapeEvery = 1
	}
	now := sim.Now()
	gen.Tick(now) // establish the origin
	for step := 1; step <= steps; step++ {
		now = now.Add(cfg.TickPeriod)
		sim.RunUntil(now)
		for _, t := range gen.Tick(now) {
			if err := eng.Ingest(t); err != nil {
				return nil, err
			}
		}
		if err := eng.Quiesce(30 * time.Second); err != nil {
			return nil, fmt.Errorf("step %d: %w", step, err)
		}
		if step%scrapeEvery == 0 {
			ms.Scrape(now)
			hpaR.Reconcile(now)
			hpaS.Reconcile(now)
			// Apply the autoscaler's verdicts to the real engine.
			if err := eng.ScaleJoiners(tuple.R, joinerR.ReadyReplicas()); err != nil {
				return nil, err
			}
			if err := eng.ScaleJoiners(tuple.S, joinerS.ReadyReplicas()); err != nil {
				return nil, err
			}
			record(now)
		}
	}
	res.FinalReplicas = len(joinerR.Pods())
	memSeries := rec.Series("mem_mb")
	res.PeakMemMB = memSeries.Max()
	if len(memSeries) > 0 {
		res.FinalMemMB = memSeries[len(memSeries)-1].V
	}
	res.Results = resultCount.Load()
	st := eng.Stats()
	res.TuplesIn = st.TuplesIn
	return res, nil
}

// podBinder couples deployment pods to engine joiner members: pod index
// i of the joiner-r deployment reads the live metrics of the i-th R
// member. Both sides create and remove in LIFO order, so the binding is
// stable.
//
// Usage is read from the engine's metric registry — the same
// joiner.<rel>.<id>.work_units and .window_bytes series the /metrics
// endpoint exports — so the simulated kubelet observes exactly what an
// external scraper would. Pod index maps to member id through
// MemberIDs: ids are monotonic, not dense, after scale in/out.
type podBinder struct {
	eng  *core.Engine
	sim  *vclock.Sim
	cfg  AutoscaleConfig
	next map[tuple.Relation]int
}

func newPodBinder(eng *core.Engine, sim *vclock.Sim, cfg AutoscaleConfig) *podBinder {
	return &podBinder{eng: eng, sim: sim, cfg: cfg, next: map[tuple.Relation]int{}}
}

func (b *podBinder) hooks(rel tuple.Relation) cluster.PodHooks {
	return cluster.PodHooks{OnStart: func(p *cluster.Pod) (cluster.UsageFunc, func()) {
		idx := b.next[rel]
		b.next[rel]++
		heap, err := cluster.NewManagedHeap(b.cfg.HeapPolicy, 0, 0)
		if err != nil {
			panic(err) // validated in applyDefaults
		}
		reg := b.eng.Metrics()
		var lastWork int64
		var lastAt time.Time
		usage := func() cluster.ResourceList {
			ids := b.eng.MemberIDs(rel)
			if idx >= len(ids) {
				return cluster.ResourceList{}
			}
			prefix := fmt.Sprintf("joiner.%s.%d.", rel, ids[idx])
			workF, ok := reg.Value(prefix + "work_units")
			if !ok {
				return cluster.ResourceList{}
			}
			memF, _ := reg.Value(prefix + "window_bytes")
			work := int64(workF)
			now := b.sim.Now()
			var milli int64
			if !lastAt.IsZero() && now.After(lastAt) {
				rate := float64(work-lastWork) / now.Sub(lastAt).Seconds()
				milli = int64(rate * b.cfg.CPUMilliPerWork)
			}
			lastWork, lastAt = work, now
			return cluster.ResourceList{
				MilliCPU: milli,
				MemBytes: heap.Observe(int64(memF)),
			}
		}
		stop := func() { b.next[rel]-- }
		return usage, stop
	}}
}

// FormatAutoscaleResult renders the run like the thesis's figures: the
// input schedule, the replica path, and compact charts.
func FormatAutoscaleResult(res *AutoscaleResult, cfg AutoscaleConfig) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "input schedule: %s\n", cfg.Profile)
	fmt.Fprintf(&sb, "joiner-r replica path: %v (peak %d, final %d)\n",
		res.ReplicaPath, res.MaxReplicas, res.FinalReplicas)
	fmt.Fprintf(&sb, "tuples in: %d, results: %d\n\n", res.TuplesIn, res.Results)
	sb.WriteString(res.Recorder.FormatASCII("rate", 60, 6))
	if cfg.Target.Resource == cluster.CPU {
		sb.WriteString(res.Recorder.FormatASCII("cpu_pct", 60, 8))
	} else {
		sb.WriteString(res.Recorder.FormatASCII("mem_mb", 60, 8))
	}
	sb.WriteString(res.Recorder.FormatASCII("joiner_r_pods", 60, 4))
	return sb.String()
}
