package experiments

import (
	"fmt"
	"strings"
	"time"

	"bistream/internal/broker"
	"bistream/internal/cluster"
	"bistream/internal/core"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
)

// RunStatus reproduces E7, the deployment snapshots of Figures 16-18:
// it stands up the default topology (one broker, two routers, two
// joiners per relation) in a simulated cluster, runs a burst of tuples
// through the real engine, and renders the services, deployments, HPA
// and broker-queue tables the way the Kubernetes dashboard and RabbitMQ
// management UI show them in the text.
func RunStatus() (string, error) {
	// The simulated cluster of Figure 14: 8 × n1-standard-1.
	cl := cluster.New()
	cl.AddStandardNodes(8)
	spec := func(name string, cpu int64) cluster.PodSpec {
		return cluster.PodSpec{
			Image:    "eangelog/" + name + "-service",
			Requests: cluster.ResourceList{MilliCPU: cpu, MemBytes: 256 << 20},
			Labels:   map[string]string{"run": "biclique-" + name},
		}
	}
	now := time.Unix(0, 0).UTC()
	rabbit := cl.NewDeployment("biclique-rabbitmq", spec("rabbitmq", 100), 1, cluster.PodHooks{})
	routerDep := cl.NewDeployment("biclique-router", spec("router", 200), 2, cluster.PodHooks{})
	joinerR := cl.NewDeployment("biclique-joiner-r", spec("join-r-processing", 200), 2, cluster.PodHooks{})
	joinerS := cl.NewDeployment("biclique-joiner-s", spec("join-s-processing", 200), 2, cluster.PodHooks{})
	deployments := []*cluster.Deployment{joinerR, joinerS, rabbit, routerDep}
	for _, d := range deployments {
		d.Reconcile(now)
	}
	services := []*cluster.Service{
		cl.NewService("rabbitmq", map[string]string{"run": "biclique-rabbitmq"}, 5672, "10.3.249.77", ""),
		cl.NewService("rabbitmq-mgmt", map[string]string{"run": "biclique-rabbitmq"}, 15672, "10.3.242.40", "146.148.112.213"),
	}
	hpa, err := cluster.NewHPA("biclique-joiner-r", joinerR, 1, 3,
		cluster.Target{Resource: cluster.CPU, AverageUtilization: 80})
	if err != nil {
		return "", err
	}

	// A real engine over a real broker so the queue table has content.
	b := broker.New(nil)
	defer b.Close()
	eng, err := core.New(core.Config{
		Predicate:           predicate.NewEqui(0, 0),
		Window:              10 * time.Minute,
		Routers:             2,
		RJoiners:            2,
		SJoiners:            2,
		PunctuationInterval: time.Millisecond,
		Broker:              b,
		OnResult:            func(tuple.JoinResult) {},
	})
	if err != nil {
		return "", err
	}
	if err := eng.Start(); err != nil {
		return "", err
	}
	defer eng.Stop()
	for i := 0; i < 200; i++ {
		rel := tuple.R
		if i%2 == 1 {
			rel = tuple.S
		}
		if err := eng.Ingest(tuple.New(rel, uint64(i+1), int64(i), tuple.Int(int64(i%10)))); err != nil {
			return "", err
		}
	}
	if err := eng.Quiesce(10 * time.Second); err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString("=== Cluster (Figure 14) ===\n")
	sb.WriteString(cl.FormatNodes())
	sb.WriteString("\n=== Services (Figure 16) ===\n")
	sb.WriteString(cluster.FormatServices(services))
	sb.WriteString("\n=== Deployments (Figure 17) ===\n")
	sb.WriteString(cluster.FormatDeployments(deployments))
	sb.WriteString("\n=== Horizontal Pod Autoscaler (Figure 19) ===\n")
	fmt.Fprintf(&sb, "%-24s %-18s %-10s %3s %3s %8s\n", "NAME", "REFERENCE", "TARGET", "MIN", "MAX", "REPLICAS")
	sb.WriteString(hpa.FormatHPA())
	sb.WriteString("\n\n=== Broker queues (Figure 18) ===\n")
	sb.WriteString(b.FormatQueueTable())
	return sb.String(), nil
}
