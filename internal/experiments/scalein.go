package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"bistream/internal/checkpoint"
	"bistream/internal/cluster"
	"bistream/internal/core"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
)

// ScaleInConfig parameterizes the live-migration scale-in experiment:
// a full-history equi-join accumulates state on a large joiner group,
// the HPA decides to shrink, and its OnScale hook drives
// Engine.ScaleJoiners — live state migration. The experiment measures
// the migration pause and proves result completeness: every pre-shrink
// tuple must still join with every post-shrink probe.
type ScaleInConfig struct {
	// Tuples is the per-relation workload before the shrink.
	Tuples int
	// PostTuples is the per-relation probe workload after the shrink.
	PostTuples int
	// Keys is the join-attribute domain.
	Keys int64
	// StartJoiners and EndJoiners are the R group sizes before and
	// after the HPA's shrink verdict.
	StartJoiners, EndJoiners int
	// Routers is the router-tier size.
	Routers int
	// Seed drives the workload.
	Seed int64
}

// DefaultScaleInConfig shrinks 4 -> 2 under a 20k-tuple history.
func DefaultScaleInConfig() ScaleInConfig {
	return ScaleInConfig{
		Tuples:       10_000,
		PostTuples:   2_000,
		Keys:         2_000,
		StartJoiners: 4,
		EndJoiners:   2,
		Routers:      2,
		Seed:         17,
	}
}

// ScaleInResult is the experiment's measurement.
type ScaleInResult struct {
	// MigrationMS is the wall time of the HPA-triggered ScaleJoiners
	// call: drain barrier, state transfer, graft, cut-over.
	MigrationMS float64
	// Migrations and MovedTuples are the engine's migration counters.
	Migrations  int64
	MovedTuples int64
	// Results and Expected compare the delivered result count against
	// the exact reference count; Complete is their equality.
	Results  int64
	Expected int64
	Complete bool
	// ScaleEvents counts HPA rescales observed through OnScale.
	ScaleEvents int
}

// RunScaleIn executes the scale-in experiment.
func RunScaleIn(cfg ScaleInConfig) (*ScaleInResult, error) {
	if cfg.Tuples <= 0 || cfg.StartJoiners <= cfg.EndJoiners || cfg.EndJoiners < 1 {
		return nil, fmt.Errorf("experiments: bad scale-in config")
	}
	var results atomic.Int64
	eng, err := core.New(core.Config{
		Predicate:           predicate.NewEqui(0, 0),
		FullHistory:         true,
		Routers:             cfg.Routers,
		RJoiners:            cfg.StartJoiners,
		SJoiners:            2,
		PunctuationInterval: 2 * time.Millisecond,
		Checkpoint:          checkpoint.NewMemProvider(),
		CheckpointInterval:  25 * time.Millisecond,
		OnResult:            func(tuple.JoinResult) { results.Add(1) },
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	defer eng.Stop()

	// Exact reference count, maintained incrementally: each new tuple
	// contributes one pair per opposite-side tuple sharing its key.
	rng := rand.New(rand.NewSource(cfg.Seed))
	rCount := make(map[int64]int64, cfg.Keys)
	sCount := make(map[int64]int64, cfg.Keys)
	var expected int64
	seq := uint64(1)
	ingest := func(n int) error {
		for i := 0; i < n; i++ {
			k := rng.Int63n(cfg.Keys)
			expected += sCount[k]
			rCount[k]++
			if err := eng.Ingest(tuple.New(tuple.R, seq, int64(seq), tuple.Int(k))); err != nil {
				return err
			}
			seq++
			k = rng.Int63n(cfg.Keys)
			expected += rCount[k]
			sCount[k]++
			if err := eng.Ingest(tuple.New(tuple.S, seq, int64(seq), tuple.Int(k))); err != nil {
				return err
			}
			seq++
		}
		return nil
	}
	if err := ingest(cfg.Tuples); err != nil {
		return nil, err
	}
	if err := eng.Quiesce(2 * time.Minute); err != nil {
		return nil, err
	}

	// The simulated control plane: an HPA over the joiner-R deployment,
	// its OnScale hook bound to the engine. Low reported usage drives a
	// shrink verdict once the stabilization window passes.
	res := &ScaleInResult{}
	cl := cluster.New()
	cl.AddStandardNodes(cfg.StartJoiners + 1)
	dep := cl.NewDeployment("biclique-joiner-r", cluster.PodSpec{
		Image:    "eangelog/join-r-processing-service",
		Requests: cluster.ResourceList{MilliCPU: 500, MemBytes: 256 << 20},
	}, cfg.StartJoiners, cluster.PodHooks{
		OnStart: func(*cluster.Pod) (cluster.UsageFunc, func()) {
			return func() cluster.ResourceList {
				return cluster.ResourceList{MilliCPU: 20} // nearly idle
			}, func() {}
		},
	})
	now := time.Unix(0, 0).UTC()
	dep.Reconcile(now)
	hpa, err := cluster.NewHPA("biclique-joiner-r", dep, cfg.EndJoiners, cfg.StartJoiners,
		cluster.Target{Resource: cluster.CPU, AverageUtilization: 50})
	if err != nil {
		return nil, err
	}
	hpa.StabilizationWindow = time.Second
	var migErr error
	hpa.OnScale = func(from, to int) {
		res.ScaleEvents++
		start := time.Now()
		if err := eng.ScaleJoiners(tuple.R, to); err != nil {
			migErr = err
			return
		}
		res.MigrationMS = float64(time.Since(start).Microseconds()) / 1000
	}
	ms := cl.NewMetricsServer()
	for tick := 0; tick < 4 && res.ScaleEvents == 0; tick++ {
		now = now.Add(time.Second)
		ms.Scrape(now)
		hpa.Reconcile(now)
	}
	if migErr != nil {
		return nil, migErr
	}
	if res.ScaleEvents == 0 {
		return nil, fmt.Errorf("experiments: HPA never issued the shrink verdict")
	}
	if got := eng.NumJoiners(tuple.R); got != cfg.EndJoiners {
		return nil, fmt.Errorf("experiments: joiner group at %d after shrink, want %d", got, cfg.EndJoiners)
	}

	// Post-shrink probes must find the migrated history.
	if err := ingest(cfg.PostTuples); err != nil {
		return nil, err
	}
	if err := eng.Quiesce(2 * time.Minute); err != nil {
		return nil, err
	}

	reg := eng.Metrics()
	if v, ok := reg.Value("engine.migrations"); ok {
		res.Migrations = int64(v)
	}
	if v, ok := reg.Value("engine.migrated_tuples"); ok {
		res.MovedTuples = int64(v)
	}
	res.Results = results.Load()
	res.Expected = expected
	res.Complete = res.Results == res.Expected
	return res, nil
}

// FormatScaleIn renders the experiment report.
func FormatScaleIn(res *ScaleInResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scale-in migration (full history)\n")
	fmt.Fprintf(&sb, "  HPA scale events : %d\n", res.ScaleEvents)
	fmt.Fprintf(&sb, "  migrations       : %d (%d tuples moved)\n", res.Migrations, res.MovedTuples)
	fmt.Fprintf(&sb, "  migration pause  : %.1f ms\n", res.MigrationMS)
	fmt.Fprintf(&sb, "  results          : %d / %d expected (complete=%v)\n",
		res.Results, res.Expected, res.Complete)
	return sb.String()
}
