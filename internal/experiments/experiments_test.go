package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/window"
	"bistream/internal/workload"
)

func TestSyncBicliqueMatchesReference(t *testing.T) {
	win := window.Sliding{Span: time.Minute}
	pred := predicate.NewEqui(0, 0)
	sb, err := NewSyncBiclique(pred, win, 3, 2, 3, 2) // hash routing
	if err != nil {
		t.Fatal(err)
	}
	tuples := modelWorkload(1000, 20, 3)
	got := map[[2]uint64]int{}
	for _, tp := range tuples {
		if err := sb.Process(tp, func(jr tuple.JoinResult) { got[jr.Key()]++ }); err != nil {
			t.Fatal(err)
		}
	}
	want := map[[2]uint64]int{}
	for _, a := range tuples {
		if a.Rel != tuple.R {
			continue
		}
		for _, b := range tuples {
			if b.Rel == tuple.S && pred.Match(a, b) && win.Contains(a.TS, b.TS) {
				want[[2]uint64{a.Seq, b.Seq}]++
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for k, n := range got {
		if n != 1 {
			t.Fatalf("pair %v produced %d times", k, n)
		}
	}
}

func TestSyncBicliqueHashFanout(t *testing.T) {
	sb, err := NewSyncBiclique(predicate.NewEqui(0, 0), window.Sliding{Span: time.Minute}, 4, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range modelWorkload(100, 50, 1) {
		if err := sb.Process(tp, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Hash routing: 1 store + 1 join copy per tuple.
	if got := sb.CopiesPerTuple(); got != 2 {
		t.Errorf("CopiesPerTuple = %v, want 2", got)
	}
}

func TestRunModelComparisonShape(t *testing.T) {
	cfg := DefaultModelComparisonConfig()
	cfg.UnitCounts = []int{4, 16}
	cfg.Tuples = 4000
	rows, err := RunModelComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Communication: biclique sends ≈ p/2+1 copies, matrix √p; both
		// measured values must match the analytic ones.
		if math.Abs(r.BicliqueCopies-r.AnalyticBiclique) > 0.01 {
			t.Errorf("p=%d biclique copies %v != analytic %v", r.Units, r.BicliqueCopies, r.AnalyticBiclique)
		}
		if math.Abs(r.MatrixCopies-r.AnalyticMatrix) > 0.01 {
			t.Errorf("p=%d matrix copies %v != analytic %v", r.Units, r.MatrixCopies, r.AnalyticMatrix)
		}
		// Memory: biclique stores each tuple once, matrix √p times.
		if r.MatrixStored <= r.BicliqueStored {
			t.Errorf("p=%d matrix stored %d should exceed biclique %d", r.Units, r.MatrixStored, r.BicliqueStored)
		}
		ratio := float64(r.MatrixStored) / float64(r.BicliqueStored)
		if math.Abs(ratio-r.AnalyticMatrix) > 0.2 {
			t.Errorf("p=%d replication ratio %v, want ≈√p=%v", r.Units, ratio, r.AnalyticMatrix)
		}
		// Both models compute the same join.
		if r.BicliqueResults != r.MatrixResults {
			t.Errorf("p=%d results differ: %d vs %d", r.Units, r.BicliqueResults, r.MatrixResults)
		}
	}
	// The communication gap must widen with p (the §2.4.1 trade-off).
	if rows[1].BicliqueCopies/rows[1].MatrixCopies <= rows[0].BicliqueCopies/rows[0].MatrixCopies {
		t.Error("biclique/matrix communication ratio should grow with p")
	}
	out := FormatModelRows(rows)
	if !strings.Contains(out, "copies/tuple") {
		t.Errorf("table: %s", out)
	}
}

func TestRunModelComparisonValidation(t *testing.T) {
	if _, err := RunModelComparison(ModelComparisonConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := DefaultModelComparisonConfig()
	cfg.UnitCounts = []int{5} // not a square
	if _, err := RunModelComparison(cfg); err == nil {
		t.Error("non-square unit count accepted")
	}
}

func TestRunOrderingProtocolExactlyOnce(t *testing.T) {
	cfg := DefaultOrderingConfig()
	cfg.Pairs = 500
	with, without, err := RunOrdering(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if with.Exact != cfg.Pairs || with.Missed != 0 || with.Duplicated != 0 {
		t.Errorf("with protocol: %+v", with)
	}
	// Without the protocol the Figure 8 anomalies must actually appear.
	if without.Missed == 0 && without.Duplicated == 0 {
		t.Errorf("without protocol saw no anomalies: %+v", without)
	}
	if without.Exact == cfg.Pairs {
		t.Error("unordered mode accidentally exact")
	}
	out := FormatOrdering(with, without)
	if !strings.Contains(out, "order-consistent") || !strings.Contains(out, "unordered") {
		t.Errorf("format: %s", out)
	}
}

func TestRunChainSweep(t *testing.T) {
	cfg := DefaultChainConfig()
	cfg.Tuples = 40_000
	rows, err := RunChainSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Periods)+1 {
		t.Fatalf("rows = %d", len(rows))
	}
	flat := rows[len(rows)-1]
	if flat.Label != "flat (tuple-level)" {
		t.Fatalf("last row = %+v", flat)
	}
	// Every configuration must discard roughly the same tuples (same
	// window) — chained at sub-index granularity, flat per tuple.
	for _, r := range rows[:len(rows)-1] {
		if r.Dropped == 0 {
			t.Errorf("%s dropped nothing", r.Label)
		}
		if r.FinalLen <= 0 {
			t.Errorf("%s has empty window", r.Label)
		}
	}
	// Larger archive periods keep more stale data live (fewer, coarser
	// discards): live size must be non-decreasing in P.
	for i := 1; i < len(rows)-1; i++ {
		if rows[i].FinalLen < rows[i-1].FinalLen {
			t.Errorf("live size decreased with larger P: %+v -> %+v", rows[i-1], rows[i])
		}
	}
	out := FormatChainRows(rows)
	if !strings.Contains(out, "flat") {
		t.Errorf("table: %s", out)
	}
}

func TestRunRoutingStrategies(t *testing.T) {
	cfg := DefaultRoutingConfig()
	cfg.Tuples = 20_000
	rows, err := RunRoutingStrategies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]RoutingRow{}
	for _, r := range rows {
		byKey[r.Strategy+"/"+r.Distribution] = r
	}
	// ContRand under skew: communication stays near hash (most keys are
	// cold) while balance beats pure hash (hot keys scatter).
	cr, hz, rz := byKey["contrand/zipf"], byKey["hash/zipf"], byKey["random/zipf"]
	if cr.Imbalance >= hz.Imbalance {
		t.Errorf("contrand imbalance %.2f should beat hash %.2f under zipf", cr.Imbalance, hz.Imbalance)
	}
	if cr.CopiesPerTuple >= rz.CopiesPerTuple {
		t.Errorf("contrand copies %.2f should be far below random %.2f", cr.CopiesPerTuple, rz.CopiesPerTuple)
	}
	if cr.Results != hz.Results || hz.Results != rz.Results {
		t.Errorf("results differ across strategies: contrand=%d hash=%d random=%d",
			cr.Results, hz.Results, rz.Results)
	}
	// Communication: random broadcasts to the whole group, hash sends
	// one copy, subgroup sits in between.
	if byKey["random/uniform"].CopiesPerTuple <= byKey["subgroup/uniform"].CopiesPerTuple {
		t.Error("random should cost more copies than subgroup")
	}
	if byKey["subgroup/uniform"].CopiesPerTuple <= byKey["hash/uniform"].CopiesPerTuple {
		t.Error("subgroup should cost more copies than hash")
	}
	if got := byKey["hash/uniform"].CopiesPerTuple; got != 2 {
		t.Errorf("hash copies/tuple = %v, want 2", got)
	}
	// Balance under skew: random stays near 1.0, hash gets hot spots.
	if byKey["hash/zipf"].Imbalance < byKey["random/zipf"].Imbalance {
		t.Errorf("hash under zipf (%.2f) should be more imbalanced than random (%.2f)",
			byKey["hash/zipf"].Imbalance, byKey["random/zipf"].Imbalance)
	}
	if byKey["random/zipf"].Imbalance > 1.2 {
		t.Errorf("random imbalance = %.2f, want ≈1", byKey["random/zipf"].Imbalance)
	}
	out := FormatRoutingRows(rows)
	if !strings.Contains(out, "imbalance") {
		t.Errorf("table: %s", out)
	}
}

// shortAutoscale compresses the Figure 20 run for unit testing: same
// control loops, ~6 virtual minutes.
func shortAutoscale() AutoscaleConfig {
	cfg := Fig20Config()
	cfg.Duration = 6 * time.Minute
	cfg.WindowSpan = 2 * time.Minute
	cfg.Profile = workload.RateProfile{
		{From: 0, TuplesPerSec: 300},
		{From: 3 * time.Minute, TuplesPerSec: 450},
	}
	cfg.StabilizationWindow = time.Minute
	return cfg
}

func TestRunAutoscaleCPUShape(t *testing.T) {
	res, err := RunAutoscale(shortAutoscale())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxReplicas < 2 {
		t.Errorf("autoscaler never scaled up: path %v", res.ReplicaPath)
	}
	if res.ReplicaPath[0] != 1 {
		t.Errorf("path should start at 1: %v", res.ReplicaPath)
	}
	if res.TuplesIn == 0 || res.Results == 0 {
		t.Errorf("no traffic processed: %+v", res)
	}
	for _, name := range []string{"rate", "cpu_pct", "joiner_r_pods", "mem_mb"} {
		if len(res.Recorder.Series(name)) == 0 {
			t.Errorf("series %q missing", name)
		}
	}
	out := FormatAutoscaleResult(res, shortAutoscale())
	if !strings.Contains(out, "replica path") {
		t.Errorf("format: %s", out)
	}
}

func TestRunAutoscaleMemoryShape(t *testing.T) {
	cfg := Fig21Config()
	cfg.Duration = 8 * time.Minute
	cfg.WindowSpan = 2 * time.Minute
	cfg.Profile = workload.RateProfile{
		{From: 0, TuplesPerSec: 300},
		{From: 3 * time.Minute, TuplesPerSec: 500},
		{From: 6 * time.Minute, TuplesPerSec: 100},
	}
	// Rescale the payload for the shorter window: ≈560MB live at
	// 500 t/s (250/s R × 120s window = 30k tuples).
	cfg.PayloadBytes = 18_000
	cfg.StabilizationWindow = time.Minute
	res, err := RunAutoscale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxReplicas < 2 {
		t.Errorf("memory autoscaler never scaled: path %v peak %.0fMB", res.ReplicaPath, res.PeakMemMB)
	}
	if res.PeakMemMB < 520 {
		t.Errorf("peak memory %.0fMB never crossed the target", res.PeakMemMB)
	}
	// Window discarding must bound memory: final << peak after the
	// rate drop.
	if res.FinalMemMB > res.PeakMemMB {
		t.Errorf("memory not bounded: final %.0f > peak %.0f", res.FinalMemMB, res.PeakMemMB)
	}
}

func TestRunAutoscaleValidation(t *testing.T) {
	if _, err := RunAutoscale(AutoscaleConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := Fig20Config()
	cfg.Profile = nil
	if _, err := RunAutoscale(cfg); err == nil {
		t.Error("empty profile accepted")
	}
}

func TestRunScaleOutThroughputGrows(t *testing.T) {
	cfg := DefaultScaleOutConfig()
	cfg.JoinerCounts = []int{1, 4}
	cfg.Tuples = 20_000
	rows, err := RunScaleOut(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Same predicate, same workload: result counts must not depend on
	// the cluster size (scaling correctness).
	if rows[0].Results != rows[1].Results {
		t.Errorf("equi results differ across sizes: %d vs %d", rows[0].Results, rows[1].Results)
	}
	if rows[2].Results != rows[3].Results {
		t.Errorf("band results differ across sizes: %d vs %d", rows[2].Results, rows[3].Results)
	}
	out := FormatScaleOutRows(rows)
	if !strings.Contains(out, "tuples/s") {
		t.Errorf("table: %s", out)
	}
}

func TestRunHeapAblation(t *testing.T) {
	cfg := Fig21Config()
	cfg.Duration = 8 * time.Minute
	cfg.WindowSpan = 2 * time.Minute
	cfg.Profile = workload.RateProfile{
		{From: 0, TuplesPerSec: 300},
		{From: 3 * time.Minute, TuplesPerSec: 500},
		{From: 6 * time.Minute, TuplesPerSec: 100},
	}
	cfg.PayloadBytes = 18_000
	cfg.StabilizationWindow = time.Minute
	rows, err := RunHeapAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	tuned, def := rows[0], rows[1]
	if !tuned.MemRecovered {
		t.Errorf("tuned policy should recover memory: %+v", tuned)
	}
	if def.MemRecovered {
		t.Errorf("default policy should ratchet, not recover: %+v", def)
	}
	out := FormatHeapAblation(rows)
	if !strings.Contains(out, "tuned") || !strings.Contains(out, "default") {
		t.Errorf("table: %s", out)
	}
}

func TestRunStatus(t *testing.T) {
	out, err := RunStatus()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Figure 14", "Figure 16", "Figure 17", "Figure 18", "Figure 19",
		"rabbitmq-mgmt", "biclique-joiner-r", "Rstore.exchange",
		"tuple.exchange.routergroup", "80% cpu",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q", want)
		}
	}
}

func TestRunPunctuationSweep(t *testing.T) {
	cfg := DefaultPunctuationConfig()
	cfg.Intervals = []time.Duration{2 * time.Millisecond, 50 * time.Millisecond}
	cfg.Tuples = 1000
	rows, err := RunPunctuationSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fast, slow := rows[0], rows[1]
	// The protocol's latency scales with the punctuation interval.
	if slow.MeanLatency <= fast.MeanLatency {
		t.Errorf("latency should grow with interval: %v @2ms vs %v @50ms",
			fast.MeanLatency, slow.MeanLatency)
	}
	// And its message overhead shrinks with the interval.
	if slow.SignalShare >= fast.SignalShare {
		t.Errorf("signal share should shrink with interval: %.3f @2ms vs %.3f @50ms",
			fast.SignalShare, slow.SignalShare)
	}
	// Same workload, same results regardless of cadence.
	if fast.Results != slow.Results {
		t.Errorf("results differ across intervals: %d vs %d", fast.Results, slow.Results)
	}
	out := FormatPunctuationRows(rows)
	if !strings.Contains(out, "signal share") {
		t.Errorf("table: %s", out)
	}
}

func TestRunPunctuationValidation(t *testing.T) {
	if _, err := RunPunctuationSweep(PunctuationConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestRunScaleInMigratesCompletely(t *testing.T) {
	cfg := DefaultScaleInConfig()
	cfg.Tuples = 2_000
	cfg.PostTuples = 500
	cfg.Keys = 400
	res, err := RunScaleIn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleEvents == 0 {
		t.Error("HPA issued no scale event")
	}
	if res.Migrations == 0 || res.MovedTuples == 0 {
		t.Errorf("no migration happened: migrations=%d moved=%d", res.Migrations, res.MovedTuples)
	}
	if !res.Complete {
		t.Errorf("result set incomplete after scale-in: %d / %d", res.Results, res.Expected)
	}
	t.Log("\n" + FormatScaleIn(res))
}

func TestRunBrokerFail(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second broker failover run")
	}
	cfg := BrokerFailConfig{
		Nodes:             3,
		Quorum:            2,
		Messages:          200,
		Publishers:        2,
		Body:              32,
		HeartbeatInterval: 5 * time.Millisecond,
		LeaseTimeout:      60 * time.Millisecond,
		Seed:              5,
	}
	res, err := RunBrokerFail(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SoloMsgsPerSec <= 0 || res.ReplMsgsPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
	if res.FailoverPauseMS <= 0 {
		t.Fatalf("failover pause not measured: %+v", res)
	}
	if res.PromotedID == res.KilledID || res.PromotedID == "" {
		t.Fatalf("promotion did not happen: %+v", res)
	}
	// Both throughput phases published Messages each; the failover
	// probe adds at least one more on the promoted leader's queue.
	if res.PostFailoverReady <= cfg.Messages {
		t.Fatalf("replicated log lost traffic across failover: ready=%d", res.PostFailoverReady)
	}
	if !strings.Contains(FormatBrokerFail(res, cfg), "failover pause") {
		t.Fatal("report missing failover pause line")
	}
}

func TestRunSkewDriftAdaptiveBalances(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-engine sweep")
	}
	cfg := DefaultSkewDriftConfig()
	cfg.Pairs = 4000
	cfg.Eras = 2
	rows, err := RunSkewDrift(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]SkewDriftRow{}
	for _, r := range rows {
		byName[r.Strategy+"/"+r.Distribution] = r
		if r.TuplesPer <= 0 || r.Results <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if len(r.EraImbalance) != cfg.Eras || len(r.EraTuplesPer) != cfg.Eras {
			t.Fatalf("era curves truncated: %+v", r)
		}
	}
	hash, adaptive := byName["hash/drift"], byName["adaptive/drift"]
	// The directional claim, not the full-size acceptance numbers: the
	// adaptive loop must hold stores materially flatter than static hash
	// under the same rotating skew, and must actually have migrated.
	if adaptive.MaxImbalance >= hash.MaxImbalance {
		t.Errorf("adaptive imbalance %.2f not below hash %.2f",
			adaptive.MaxImbalance, hash.MaxImbalance)
	}
	if adaptive.KeyMoves == 0 || adaptive.MovedTuples == 0 {
		t.Errorf("no key migration ran: moves=%d moved=%d",
			adaptive.KeyMoves, adaptive.MovedTuples)
	}
	if hash.KeyMoves != 0 {
		t.Errorf("static hash reported %d key moves", hash.KeyMoves)
	}
	t.Log("\n" + FormatSkewDriftRows(rows))
}

func TestRunSkewDriftValidation(t *testing.T) {
	cfg := DefaultSkewDriftConfig()
	cfg.Eras = 3 // does not divide Pairs
	cfg.Pairs = 100
	if _, err := RunSkewDrift(cfg); err == nil {
		t.Fatal("indivisible Pairs/Eras accepted")
	}
}
