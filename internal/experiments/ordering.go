package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"bistream/internal/joiner"
	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// OrderingConfig parameterizes E4, the Figure 8 experiment: pairs of
// joinable tuples are delivered to both sides' joiners under random
// interleavings (always respecting per-path FIFO), with and without the
// ordering protocol, and the results are checked for the missed and
// duplicated anomalies of Figures 8(c)/8(d).
type OrderingConfig struct {
	// Pairs is the number of joinable (r, s) pairs to push through.
	Pairs int
	// Routers is the number of stamping routers the tuples come from.
	Routers int
	// Seed drives the interleavings.
	Seed int64
}

// DefaultOrderingConfig uses enough pairs for the anomaly rates to be
// stable.
func DefaultOrderingConfig() OrderingConfig {
	return OrderingConfig{Pairs: 2000, Routers: 2, Seed: 8}
}

// OrderingResult reports exactly-once accounting for one mode.
type OrderingResult struct {
	Protocol   bool
	Pairs      int
	Exact      int // pairs producing exactly one result
	Missed     int // pairs producing zero results (Fig. 8(c))
	Duplicated int // pairs producing two results (Fig. 8(d))
}

// RunOrdering executes E4 for both modes and returns
// (withProtocol, withoutProtocol).
func RunOrdering(cfg OrderingConfig) (OrderingResult, OrderingResult, error) {
	if cfg.Pairs <= 0 || cfg.Routers <= 0 {
		return OrderingResult{}, OrderingResult{}, fmt.Errorf("experiments: bad ordering config %+v", cfg)
	}
	with, err := runOrderingMode(cfg, true)
	if err != nil {
		return OrderingResult{}, OrderingResult{}, err
	}
	without, err := runOrderingMode(cfg, false)
	if err != nil {
		return OrderingResult{}, OrderingResult{}, err
	}
	return with, without, nil
}

// event is one envelope delivery on one path of one joiner.
type orderingEvent struct {
	env protocol.Envelope
	src protocol.Source
	toR bool
}

func runOrderingMode(cfg OrderingConfig, ordered bool) (OrderingResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	win := window.Sliding{Span: time.Minute}
	pred := predicate.NewEqui(0, 0)
	mk := func(rel tuple.Relation) (*joiner.Core, error) {
		return joiner.NewCore(joiner.Config{
			ID: 0, Rel: rel, Pred: pred, Window: win, Unordered: !ordered,
		})
	}
	rJoiner, err := mk(tuple.R)
	if err != nil {
		return OrderingResult{}, err
	}
	sJoiner, err := mk(tuple.S)
	if err != nil {
		return OrderingResult{}, err
	}
	stampers := make([]*protocol.Stamper, cfg.Routers)
	for i := range stampers {
		id := int32(i)
		stampers[i] = protocol.NewStamperFunc(id, func() uint64 { return 0 })
		rJoiner.AddRouter(id)
		sJoiner.AddRouter(id)
	}

	counts := make(map[uint64]int, cfg.Pairs) // pair id -> results
	emit := func(jr tuple.JoinResult) { counts[jr.Left.Seq]++ }

	// Each pair uses a distinct key so results attribute cleanly.
	// Tuples of a pair may come from different routers; all four
	// deliveries (r/s × store/join) are interleaved randomly, but each
	// (router, path) sequence stays FIFO because we queue per path and
	// drain randomly.
	type path struct {
		events []orderingEvent
	}
	paths := map[[3]int32]*path{} // (router, src, joinerIsR) -> queue
	pushEvent := func(router int32, src protocol.Source, toR bool, e orderingEvent) {
		k := [3]int32{router, int32(src), b2i(toR)}
		p := paths[k]
		if p == nil {
			p = &path{}
			paths[k] = p
		}
		p.events = append(p.events, e)
	}
	// punctuate appends each router's punctuation signal to all four of
	// its paths; like the real router service, the signal travels the
	// same queues as the tuples, so pairwise FIFO guarantees everything
	// it covers has already been delivered when it arrives.
	punctuate := func() {
		for _, st := range stampers {
			env := protocol.Envelope{Kind: protocol.KindPunctuation, RouterID: st.RouterID(), Counter: st.Punctuation()}
			for _, src := range []protocol.Source{protocol.SourceStore, protocol.SourceJoin} {
				for _, toR := range []bool{true, false} {
					pushEvent(st.RouterID(), src, toR, orderingEvent{env, src, toR})
				}
			}
		}
	}
	for i := 0; i < cfg.Pairs; i++ {
		key := tuple.Int(int64(i))
		ts := int64(i)
		r := tuple.New(tuple.R, uint64(i), ts, key)
		s := tuple.New(tuple.S, uint64(i)+1_000_000, ts, key)
		rRouter := stampers[rng.Intn(len(stampers))]
		sRouter := stampers[rng.Intn(len(stampers))]
		rC, sC := rRouter.Next(), sRouter.Next()
		rStore := protocol.Envelope{Kind: protocol.KindTuple, RouterID: rRouter.RouterID(), Counter: rC, Stream: protocol.StreamStore, Tuple: r}
		rJoin := rStore
		rJoin.Stream = protocol.StreamJoin
		sStore := protocol.Envelope{Kind: protocol.KindTuple, RouterID: sRouter.RouterID(), Counter: sC, Stream: protocol.StreamStore, Tuple: s}
		sJoin := sStore
		sJoin.Stream = protocol.StreamJoin
		pushEvent(rRouter.RouterID(), protocol.SourceStore, true, orderingEvent{rStore, protocol.SourceStore, true})
		pushEvent(rRouter.RouterID(), protocol.SourceJoin, false, orderingEvent{rJoin, protocol.SourceJoin, false})
		pushEvent(sRouter.RouterID(), protocol.SourceStore, false, orderingEvent{sStore, protocol.SourceStore, false})
		pushEvent(sRouter.RouterID(), protocol.SourceJoin, true, orderingEvent{sJoin, protocol.SourceJoin, true})
		if i%16 == 15 {
			punctuate()
		}
	}
	punctuate()
	// Drain paths in random order; per-path FIFO is preserved because
	// each path's queue pops from the front.
	keys := make([][3]int32, 0, len(paths))
	for k := range paths {
		keys = append(keys, k)
	}
	for len(paths) > 0 {
		k := keys[rng.Intn(len(keys))]
		p, ok := paths[k]
		if !ok || len(p.events) == 0 {
			delete(paths, k)
			continue
		}
		ev := p.events[0]
		p.events = p.events[1:]
		if len(p.events) == 0 {
			delete(paths, k)
		}
		target := rJoiner
		if !ev.toR {
			target = sJoiner
		}
		target.Handle(ev.env, ev.src, emit)
	}
	rJoiner.Flush(emit)
	sJoiner.Flush(emit)

	res := OrderingResult{Protocol: ordered, Pairs: cfg.Pairs}
	for i := 0; i < cfg.Pairs; i++ {
		switch counts[uint64(i)] {
		case 0:
			res.Missed++
		case 1:
			res.Exact++
		default:
			res.Duplicated++
		}
	}
	return res, nil
}
func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// FormatOrdering renders the E4 comparison.
func FormatOrdering(with, without OrderingResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %8s %8s %8s %11s\n", "mode", "pairs", "exact", "missed", "duplicated")
	for _, r := range []OrderingResult{with, without} {
		mode := "order-consistent"
		if !r.Protocol {
			mode = "unordered"
		}
		fmt.Fprintf(&sb, "%-18s %8d %8d %8d %11d\n", mode, r.Pairs, r.Exact, r.Missed, r.Duplicated)
	}
	return sb.String()
}
