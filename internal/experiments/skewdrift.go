package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"bistream/internal/core"
	"bistream/internal/predicate"
	"bistream/internal/tuple"
	"bistream/internal/workload"
)

// SkewDriftConfig parameterizes E14, the drifting-skew extension of E6:
// a rotating zipf workload (the hot head of the key distribution moves
// to fresh keys every era) pushed through the full asynchronous engine
// under three routing strategies — static hash, ContRand placement
// flips alone, and the full adaptive loop with hot-key migration — plus
// a flat (no-skew) hash baseline. Unlike E6's synchronous harness, E14
// measures the live engine: wall-clock throughput per era and the
// max/mean imbalance of tuples actually *held* per member (stores plus
// grafted-in minus migrated-out), which is what the key migration
// changes and the stored-counter alone cannot see.
type SkewDriftConfig struct {
	// Joiners per relation group.
	Joiners int
	// Routers is the router-tier size.
	Routers int
	// Pairs is the number of (R,S) tuple pairs per run; event time
	// advances 1ms per pair.
	Pairs int
	// Eras splits the run; each era rotates the zipf head onto new keys.
	Eras int
	// Keys is the attribute domain of the skewed draws.
	Keys int64
	// ZipfS is the skew exponent (>1).
	ZipfS float64
	// RotateStep offsets the key mapping per era; any value coprime-ish
	// with Keys works.
	RotateStep int64
	// WindowSpan is the sliding join window (event time).
	WindowSpan time.Duration
	// HotFraction is the promotion threshold for the contrand/adaptive
	// strategies.
	HotFraction float64
	// FlatKeys is the flat baseline's key-set size; the values are
	// chosen so hash routing spreads them perfectly evenly (the no-skew
	// ideal) and the collision mass — and so the result volume — is
	// comparable to the zipf runs.
	FlatKeys int
	// Seed drives the key draws.
	Seed int64
}

// DefaultSkewDriftConfig uses 4 joiners per side and 4 eras.
func DefaultSkewDriftConfig() SkewDriftConfig {
	return SkewDriftConfig{
		Joiners:     4,
		Routers:     2,
		Pairs:       16000,
		Eras:        4,
		Keys:        400,
		ZipfS:       1.6,
		RotateStep:  131,
		WindowSpan:  200 * time.Millisecond,
		HotFraction: 0.02,
		FlatKeys:    4,
		Seed:        14,
	}
}

// SkewDriftRow is one (strategy, distribution) measurement.
type SkewDriftRow struct {
	Strategy     string
	Distribution string
	// TuplesPer is overall ingest throughput (tuples/s over ingest and
	// drain, excluding the inter-era sampling pauses).
	TuplesPer float64
	// MaxImbalance is the worst per-era max/mean of held tuples across
	// the R members.
	MaxImbalance float64
	Results      int64
	KeyMoves     int64 // completed per-relation key migrations
	MovedTuples  int64 // tuples relocated by those migrations
	// Per-era curves (throughput and held-store imbalance).
	EraTuplesPer []float64
	EraImbalance []float64
}

// RunSkewDrift executes E14.
func RunSkewDrift(cfg SkewDriftConfig) ([]SkewDriftRow, error) {
	if cfg.Joiners < 2 || cfg.Pairs <= 0 || cfg.Eras <= 0 || cfg.Pairs%cfg.Eras != 0 {
		return nil, fmt.Errorf("experiments: bad skew-drift config")
	}
	type strat struct {
		name     string
		contRand bool
		adaptive bool
	}
	strategies := []strat{
		{"hash", false, false},
		{"contrand", true, false},
		{"adaptive", true, true},
	}
	var rows []SkewDriftRow
	// Flat baseline: evenly-hashed uniform keys under static hash
	// routing — what every strategy should approach without skew.
	flat, err := runSkewDriftOnce(cfg, "hash", "flat", false, false)
	if err != nil {
		return nil, err
	}
	rows = append(rows, flat)
	for _, s := range strategies {
		row, err := runSkewDriftOnce(cfg, s.name, "drift", s.contRand, s.adaptive)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runSkewDriftOnce(cfg SkewDriftConfig, strategy, dist string, contRand, adaptive bool) (SkewDriftRow, error) {
	var results atomic.Int64
	eng, err := core.New(core.Config{
		Predicate:           predicate.NewEqui(0, 0),
		Window:              cfg.WindowSpan,
		Routers:             cfg.Routers,
		RJoiners:            cfg.Joiners,
		SJoiners:            cfg.Joiners,
		ContRand:            contRand && !adaptive,
		AdaptiveRouting:     adaptive,
		HotFraction:         cfg.HotFraction,
		PunctuationInterval: 2 * time.Millisecond,
		OnResult:            func(tuple.JoinResult) { results.Add(1) },
	})
	if err != nil {
		return SkewDriftRow{}, err
	}
	if err := eng.Start(); err != nil {
		return SkewDriftRow{}, err
	}
	defer eng.Stop()

	rng := rand.New(rand.NewSource(cfg.Seed))
	var draw func(era int) int64
	if dist == "flat" {
		keys := evenlyHashedKeys(cfg.FlatKeys, cfg.Joiners)
		draw = func(int) int64 { return keys[rng.Intn(len(keys))] }
	} else {
		zipf, err := workload.NewZipf(rand.New(rand.NewSource(cfg.Seed+1)), cfg.Keys, cfg.ZipfS)
		if err != nil {
			return SkewDriftRow{}, err
		}
		// Rotating the zipf draw through the domain each era moves the
		// hot head onto fresh keys: yesterday's hotspot cools, a new one
		// appears — the drifting-skew regime static hash cannot follow.
		draw = func(era int) int64 {
			return (zipf.Next(rng) + int64(era)*cfg.RotateStep) % cfg.Keys
		}
	}

	reg := eng.Metrics()
	held := func() []float64 {
		out := make([]float64, cfg.Joiners)
		for id := 0; id < cfg.Joiners; id++ {
			var h float64
			for _, c := range []string{"stored", "migrated_in_tuples"} {
				v, _ := reg.Value(fmt.Sprintf("joiner.R.%d.%s", id, c))
				h += v
			}
			v, _ := reg.Value(fmt.Sprintf("joiner.R.%d.migrated_out_tuples", id))
			out[id] = h - v
		}
		return out
	}

	row := SkewDriftRow{Strategy: strategy, Distribution: dist}
	perEra := cfg.Pairs / cfg.Eras
	seq := uint64(1)
	prev := held()
	var wall time.Duration
	for era := 0; era < cfg.Eras; era++ {
		start := time.Now()
		for i := 0; i < perEra; i++ {
			ts := int64(era*perEra + i) // 1ms per pair
			r := tuple.New(tuple.R, seq, ts, tuple.Int(draw(era)))
			seq++
			s := tuple.New(tuple.S, seq, ts, tuple.Int(draw(era)))
			seq++
			if err := eng.Ingest(r); err != nil {
				return SkewDriftRow{}, err
			}
			if err := eng.Ingest(s); err != nil {
				return SkewDriftRow{}, err
			}
		}
		if err := eng.Quiesce(2 * time.Minute); err != nil {
			return SkewDriftRow{}, err
		}
		eraWall := time.Since(start)
		wall += eraWall
		// Sampling pause, outside the timed region: let any in-flight
		// key migration land so the imbalance reflects the adapted
		// placement, not a move half done.
		if adaptive {
			waitUntil := time.Now().Add(15 * time.Second)
			for time.Now().Before(waitUntil) {
				pending, _ := reg.Value("router_adapt.pending_keys")
				inflight, _ := reg.Value("router_adapt.inflight")
				if pending == 0 && inflight == 0 {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		cur := held()
		delta := make([]float64, len(cur))
		for i := range cur {
			delta[i] = cur[i] - prev[i]
		}
		prev = cur
		imb := imbalanceF(delta)
		row.EraImbalance = append(row.EraImbalance, imb)
		row.EraTuplesPer = append(row.EraTuplesPer, float64(2*perEra)/eraWall.Seconds())
		if imb > row.MaxImbalance {
			row.MaxImbalance = imb
		}
	}
	row.TuplesPer = float64(2*cfg.Pairs) / wall.Seconds()
	row.Results = results.Load()
	km, _ := reg.Value("router_adapt.key_migrations")
	mt, _ := reg.Value("router_adapt.moved_tuples")
	row.KeyMoves, row.MovedTuples = int64(km), int64(mt)
	return row, nil
}

// evenlyHashedKeys scans the integers for n key values that hash-route
// evenly across j members: the flat baseline should be flat by
// construction, not by luck of the draw.
func evenlyHashedKeys(n, j int) []int64 {
	per := (n + j - 1) / j
	buckets := make([]int, j)
	var keys []int64
	for v := int64(0); len(keys) < n; v++ {
		b := int(tuple.Int(v).Hash() % uint64(j))
		if buckets[b] < per {
			buckets[b]++
			keys = append(keys, v)
		}
	}
	return keys
}

// imbalanceF returns max/mean over the loads; 0 if empty or zero-mean.
func imbalanceF(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	mean := sum / float64(len(loads))
	if mean == 0 {
		return 0
	}
	return max / mean
}

// FormatSkewDriftRows renders the E14 table with per-era curves.
func FormatSkewDriftRows(rows []SkewDriftRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s %-6s %12s %12s %9s %9s %8s\n",
		"strategy", "keys", "tuples/s", "imbalance", "results", "keymoves", "moved")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %-6s %12.0f %12.2f %9d %9d %8d\n",
			r.Strategy, r.Distribution, r.TuplesPer, r.MaxImbalance,
			r.Results, r.KeyMoves, r.MovedTuples)
	}
	sb.WriteString("\nper-era curves (throughput ktuples/s | held-store imbalance):\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %-6s ", r.Strategy, r.Distribution)
		for i := range r.EraTuplesPer {
			fmt.Fprintf(&sb, " e%d %6.1f|%4.2f", i+1, r.EraTuplesPer[i]/1000, r.EraImbalance[i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
