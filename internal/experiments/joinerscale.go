package experiments

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"strings"
	"time"

	"bistream/internal/joiner"
	"bistream/internal/predicate"
	"bistream/internal/protocol"
	"bistream/internal/tuple"
	"bistream/internal/window"
)

// JoinerScaleConfig parameterizes E13, the core-sharded joiner hot-path
// scaling curve: the same envelope stream (decode → ordering-protocol
// release → store/probe) is pushed through joiner cores configured with
// increasing per-core shard counts, measuring aggregate tuples/s per
// joiner process.
type JoinerScaleConfig struct {
	// Tuples per shard-count run (half stored, half probing).
	Tuples int
	// Batch is the tuples per HandleBatch cycle, split into a store
	// half and a join half like the service's consume loop produces.
	Batch int
	// Keys is the join-attribute domain.
	Keys int64
	// WindowSpan is the sliding window.
	WindowSpan time.Duration
	// ArchivePeriod is the chained-index sub-index span (0 = default).
	ArchivePeriod time.Duration
	// Shards are the per-core shard counts to sweep; 0 entries mean
	// GOMAXPROCS.
	Shards []int
}

// DefaultJoinerScaleConfig sweeps 1..2×GOMAXPROCS shards with the
// hot-path tuning from docs/OPERATIONS.md.
func DefaultJoinerScaleConfig() JoinerScaleConfig {
	procs := runtime.GOMAXPROCS(0)
	shards := []int{1}
	for n := 2; n <= 2*procs; n *= 2 {
		shards = append(shards, n)
	}
	return JoinerScaleConfig{
		Tuples:        1_000_000,
		Batch:         512,
		Keys:          65_536,
		WindowSpan:    10 * time.Second,
		ArchivePeriod: 2500 * time.Millisecond,
		Shards:        shards,
	}
}

// JoinerScaleRow is one measured shard count.
type JoinerScaleRow struct {
	Shards       int
	TuplesPerSec float64
	NsPerTuple   float64
	Results      int
	WindowLen    int
}

// RunJoinerScale executes E13: the direct joiner-core hot path (no
// broker hops), timed per shard count over an identical workload.
func RunJoinerScale(cfg JoinerScaleConfig) ([]JoinerScaleRow, error) {
	if cfg.Tuples <= 0 || cfg.Batch < 2 || cfg.Keys <= 0 || len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("experiments: bad joinerscale config")
	}
	var rows []JoinerScaleRow
	for _, shards := range cfg.Shards {
		row, err := runJoinerScaleOnce(cfg, shards)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runJoinerScaleOnce(cfg JoinerScaleConfig, shards int) (JoinerScaleRow, error) {
	core, err := joiner.NewCore(joiner.Config{
		Rel:           tuple.R,
		Pred:          predicate.NewEqui(0, 0),
		Window:        window.Sliding{Span: cfg.WindowSpan},
		ArchivePeriod: cfg.ArchivePeriod,
		Shards:        shards,
	})
	if err != nil {
		return JoinerScaleRow{}, err
	}
	core.AddRouter(1)

	// Envelope bodies are marshaled once and patched in place per cycle
	// (counter, seq, ts, key), so the measured loop pays decode cost —
	// like the consume loop — but not encode cost.
	half := cfg.Batch / 2
	storeBodies := make([][]byte, half)
	joinBodies := make([][]byte, half)
	for i := range storeBodies {
		storeBodies[i] = protocol.Envelope{
			Kind: protocol.KindTuple, RouterID: 1, Stream: protocol.StreamStore,
			Tuple: tuple.New(tuple.R, 1, 0, tuple.Int(0)),
		}.Marshal()
		joinBodies[i] = protocol.Envelope{
			Kind: protocol.KindTuple, RouterID: 1, Stream: protocol.StreamJoin,
			Tuple: tuple.New(tuple.S, 1, 0, tuple.Int(0)),
		}.Marshal()
	}
	patch := func(body []byte, counter, seq uint64, ts, key int64) {
		binary.LittleEndian.PutUint64(body[5:13], counter)
		binary.LittleEndian.PutUint64(body[15:23], seq)
		binary.LittleEndian.PutUint64(body[23:31], uint64(ts))
		binary.LittleEndian.PutUint64(body[33:41], uint64(key))
	}

	var (
		dec     tuple.Decoder
		envs    = make([]protocol.Envelope, 0, half+1)
		counter uint64
		seq     uint64
		keyBase int64
		results int
	)
	emit := func(tuple.JoinResult) { results++ }
	start := time.Now()
	for done := 0; done < cfg.Tuples; done += 2 * half {
		envs = envs[:0]
		for i := 0; i < half; i++ {
			counter++
			seq++
			patch(storeBodies[i], counter, seq, int64(seq)/5, (keyBase+int64(i))%cfg.Keys)
			e, err := protocol.DecodeEnvelope(storeBodies[i], &dec)
			if err != nil {
				return JoinerScaleRow{}, err
			}
			envs = append(envs, e)
		}
		punct := protocol.Envelope{Kind: protocol.KindPunctuation, RouterID: 1, Counter: counter + uint64(half) + 1}
		envs = append(envs, punct)
		core.HandleBatch(envs, protocol.SourceStore, emit)

		envs = envs[:0]
		for i := 0; i < half; i++ {
			counter++
			seq++
			patch(joinBodies[i], counter, seq, int64(seq)/5, (keyBase+int64(i))%cfg.Keys)
			e, err := protocol.DecodeEnvelope(joinBodies[i], &dec)
			if err != nil {
				return JoinerScaleRow{}, err
			}
			envs = append(envs, e)
		}
		counter++
		envs = append(envs, punct)
		core.HandleBatch(envs, protocol.SourceJoin, emit)
		keyBase += int64(half)
	}
	dur := time.Since(start)
	st := core.Stats()
	if st.Stored == 0 || st.Probed == 0 {
		return JoinerScaleRow{}, fmt.Errorf("experiments: joinerscale pipeline idle (stored=%d probed=%d)", st.Stored, st.Probed)
	}
	return JoinerScaleRow{
		Shards:       core.NumShards(),
		TuplesPerSec: float64(cfg.Tuples) / dur.Seconds(),
		NsPerTuple:   float64(dur.Nanoseconds()) / float64(cfg.Tuples),
		Results:      results,
		WindowLen:    st.WindowLen,
	}, nil
}

// FormatJoinerScaleRows renders the E13 table.
func FormatJoinerScaleRows(rows []JoinerScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %12s %10s %10s\n", "shards", "tuples/s", "ns/tuple", "results", "window")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %14.0f %12.1f %10d %10d\n",
			r.Shards, r.TuplesPerSec, r.NsPerTuple, r.Results, r.WindowLen)
	}
	return b.String()
}
